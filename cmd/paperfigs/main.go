// Command paperfigs regenerates the tables and figures of the paper's
// evaluation section. Each experiment prints the same rows/series the
// paper reports; absolute numbers differ (different substrate and
// workloads) but the shape — who wins, by roughly what factor, where the
// crossovers fall — is the reproduction target.
//
// The series-shaped figures (fig5a, fig6a, fig6c, fig7, ddt, storeonly,
// trackers) are committed scenario specs under internal/scenario/specs;
// -scenario runs any committed or on-disk spec directly.
//
// Usage:
//
//	paperfigs                 # everything
//	paperfigs -exp fig6a      # one experiment
//	paperfigs -scenario branch-hostile   # a committed scenario by name
//	paperfigs -scenario my.scenario      # or a spec file
//	paperfigs -measure 300000 # longer runs
//	paperfigs -store fs:.simcache  # reuse simulations across invocations
//	paperfigs -backend pool:8      # crash-isolated worker subprocesses
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cliflags"
	"repro/internal/dispatch"
	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	dispatch.MaybeWorker()
	var (
		exp     = flag.String("exp", "all", "experiment: table1|fig4|fig5a|fig5b|fig6a|fig6b|fig6c|fig7|ddt|storeonly|cwidth|ports|rob512|singlebit|disthist|trackers|storage|all")
		scen    = flag.String("scenario", "", "run one scenario instead: a builtin name or a .scenario file path")
		warmup  = flag.Uint64("warmup", experiments.DefaultRunLengths.Warmup, "warmup instructions per run")
		measure = flag.Uint64("measure", experiments.DefaultRunLengths.Measure, "measured instructions per run")
	)
	rf := cliflags.RegisterRunnerFlags(flag.CommandLine)
	flag.Parse()

	if rf.PrintVersion(os.Stdout) {
		return
	}
	b, err := rf.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer b.Close()

	// ^C cancels the context; the session's figure methods then panic
	// with a sim.ErrCanceled-wrapping error, which the deferred recover
	// turns into a clean exit (completed simulations stay in -store).
	ctx := sim.SignalContext()
	runner := sim.New(b.RunnerOptions()...)
	progress := sim.NewProgress(os.Stderr, runner, 0)
	defer func() {
		if v := recover(); v != nil {
			if err, ok := v.(error); ok && errors.Is(err, sim.ErrCanceled) {
				progress.Finish()
				fmt.Fprintln(os.Stderr, "interrupted")
				os.Exit(130)
			}
			panic(v)
		}
	}()
	start := time.Now()

	if *scen != "" {
		if *exp != "all" {
			fmt.Fprintln(os.Stderr, "use either -exp or -scenario, not both")
			os.Exit(1)
		}
		spec, err := scenario.Resolve(*scen)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		matrix, err := spec.Expand(scenario.CommandOverrides(warmup, measure, ""))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		progress.AddTotal(len(matrix.Requests))
		rep, err := matrix.Run(ctx, runner, progress.Observe)
		progress.Finish()
		if err != nil {
			if errors.Is(err, sim.ErrCanceled) {
				fmt.Fprintln(os.Stderr, "interrupted")
				os.Exit(130)
			}
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(rep.Table())
		reportCounters(runner, start)
		return
	}

	// Figure sweeps discover work figure by figure, so the total is
	// unknown upfront; the progress line shows the running done count.
	s := experiments.NewSessionContext(ctx, experiments.RunLengths{Warmup: *warmup, Measure: *measure}, runner)
	s.OnEvent = progress.Observe
	want := func(name string) bool { return *exp == "all" || *exp == name }
	// show terminates the live progress line before each table so stdout
	// and the stderr progress line never interleave mid-draw.
	show := func(v fmt.Stringer) {
		progress.Finish()
		fmt.Println(v)
	}

	if want("table1") {
		show(experiments.Table1())
	}
	if want("storage") {
		show(experiments.StorageTable())
	}
	if want("fig4") {
		show(s.Fig4())
	}
	if want("fig5a") {
		t, _ := s.Fig5a()
		show(t)
	}
	if want("fig5b") {
		t, _ := s.Fig5b()
		show(t)
	}
	if want("fig6a") {
		t, _ := s.Fig6a()
		show(t)
	}
	if want("fig6b") {
		show(s.Fig6b())
	}
	if want("fig6c") {
		t, _ := s.Fig6c()
		show(t)
	}
	if want("fig7") {
		t, _ := s.Fig7()
		show(t)
	}
	if want("ddt") {
		t, _ := s.DDTSizing()
		show(t)
	}
	if want("storeonly") {
		t, _ := s.StoreOnly()
		show(t)
	}
	if want("cwidth") {
		t, _ := s.CounterWidth()
		show(t)
	}
	if want("ports") {
		show(s.ISRBTraffic())
	}
	if want("rob512") {
		t, _ := s.ROB512Lazy()
		show(t)
	}
	if want("singlebit") {
		t, _ := s.SingleBitME()
		show(t)
	}
	if want("disthist") {
		t, _ := s.DistanceHistorySweep()
		show(t)
	}
	if want("trackers") {
		t, _ := s.TrackerComparison()
		show(t)
	}

	known := "table1 storage fig4 fig5a fig5b fig6a fig6b fig6c fig7 ddt storeonly cwidth ports rob512 singlebit disthist trackers all"
	if !strings.Contains(known, *exp) {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (known: %s)\n", *exp, known)
		os.Exit(1)
	}
	progress.Finish()
	reportCounters(runner, start)
}

// reportCounters prints the run's cost accounting on stderr.
func reportCounters(runner *sim.Runner, start time.Time) {
	c := runner.Counters()
	fmt.Fprintf(os.Stderr, "total time: %v (%d simulated, %d deduplicated, %d from disk cache)\n",
		time.Since(start).Round(time.Millisecond), c.Simulated, c.MemHits, c.DiskHits)
}
