// Command regsim runs one benchmark on one machine configuration and
// prints the run's statistics. Plain runs go through the shared
// internal/sim runner (so -store reuses results across invocations);
// -trace drives the core directly because tracing needs the live
// pipeline.
//
// -json emits the run's full sim.Result as one JSON object on stdout —
// the same value a dispatch pool worker or the regshared service would
// return for the request — which makes regsim scriptable as a worker
// smoke-check: run it on a prospective worker machine and diff the
// object against a known-good host.
//
// Usage:
//
//	regsim -bench crafty -me -smb -tracker isrb -entries 24 -measure 200000
//	regsim -bench crafty -json | jq .IPC
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/smb"
	"repro/internal/workloads"
)

func main() {
	var (
		bench     = flag.String("bench", "crafty", "workload name: catalog benchmark or gen:family?k=v (see -list)")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		me        = flag.Bool("me", false, "enable Move Elimination")
		smbOn     = flag.Bool("smb", false, "enable Speculative Memory Bypassing")
		loadLoad  = flag.Bool("loadload", true, "SMB: allow load-load pairs")
		committed = flag.Bool("committed", false, "SMB: bypass from committed instructions (lazy reclaim)")
		pred      = flag.String("pred", "tage", "SMB distance predictor: tage|nosq")
		ddt       = flag.Int("ddt", 0, "DDT entries (0 = unlimited)")
		tracker   = flag.String("tracker", "unlimited", "tracker: isrb|unlimited|counters|mit|rda")
		entries   = flag.Int("entries", 32, "tracker entries")
		ctrBits   = flag.Int("ctrbits", 3, "ISRB counter bits")
		warmup    = flag.Uint64("warmup", 50_000, "warmup instructions")
		measure   = flag.Uint64("measure", 200_000, "measured instructions")
		verbose   = flag.Bool("v", false, "print extended statistics")
		trace     = flag.Uint64("trace", 0, "print a pipeline trace for the first N cycles of measurement")
		jsonOut   = flag.Bool("json", false, "emit the run's full sim.Result as one JSON object")
	)
	rf := cliflags.RegisterRunnerFlags(flag.CommandLine, cliflags.WithoutBackend())
	flag.Parse()

	if rf.PrintVersion(os.Stdout) {
		return
	}

	if *list {
		members, _ := workloads.Members("all")
		for _, m := range members {
			fmt.Println(m.Name)
		}
		for _, g := range workloads.Generators() {
			fmt.Printf("gen:%s — %s\n", g.Family, g.Doc)
			for _, p := range g.Params {
				fmt.Printf("    %s=%v  %s\n", p.Key, p.Def, p.Doc)
			}
		}
		return
	}

	cfg := core.DefaultConfig()
	cfg.ME.Enabled = *me
	cfg.SMB.Enabled = *smbOn
	cfg.SMB.LoadLoad = *loadLoad
	cfg.SMB.BypassCommitted = *committed
	if *pred == "nosq" {
		cfg.SMB.Predictor = core.DistanceNoSQ
	}
	if *ddt > 0 {
		cfg.SMB.DDT = smb.DDTConfig{Entries: *ddt, TagBits: 5}
	}
	cfg.Tracker = core.TrackerConfig{
		Kind:        core.TrackerKind(*tracker),
		Entries:     *entries,
		CounterBits: *ctrBits,
	}

	// One validation contract for both paths: the -trace path drives the
	// core directly, so check the request here instead of letting
	// core.New panic on a config the runner would have rejected cleanly.
	req := sim.Request{Bench: *bench, Config: cfg, Warmup: *warmup, Measure: *measure}
	if err := req.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// ^C aborts the run mid-cycle-loop with a typed error instead of
	// killing the process.
	ctx := sim.SignalContext()
	var res *sim.Result
	if *trace > 0 {
		res = traceRun(ctx, cfg, *bench, *warmup, *measure, *trace)
	} else {
		store, err := rf.OpenStore()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runner := sim.New(sim.WithStore(store))
		res, err = runner.Run(ctx, req)
		if err != nil {
			if errors.Is(err, sim.ErrCanceled) {
				fmt.Fprintln(os.Stderr, "interrupted")
				os.Exit(130)
			}
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	st := &res.S

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("benchmark      %s (%d static µops)\n", res.Bench, res.StaticUops)
	fmt.Printf("tracker        %s\n", res.TrackerName)
	fmt.Printf("cycles         %d\n", st.Cycles)
	fmt.Printf("committed      %d\n", st.Committed)
	fmt.Printf("IPC            %.3f\n", st.IPC())
	fmt.Printf("branch misp.   %d (%.2f MPKI)\n", st.BranchMispredicts,
		1000*float64(st.BranchMispredicts)/float64(st.Committed))
	fmt.Printf("memory traps   %d\n", st.MemTraps)
	fmt.Printf("false deps     %d\n", st.FalseDeps)
	if *me {
		fmt.Printf("eliminated     %d (%.1f%% of committed)\n", st.CommittedEliminated, 100*st.ElimRate())
	}
	if *smbOn {
		fmt.Printf("bypassed loads %d (%.1f%% of loads)\n", st.CommittedBypassed, 100*st.BypassRate())
		fmt.Printf("bypass misp.   %d\n", st.BypassMispredicts)
		fmt.Printf("traps avoided  %d\n", st.TrapsAvoidedSMB)
	}
	if *verbose {
		ts := res.Tracker
		fmt.Printf("-- tracker: sharesME=%d sharesSMB=%d failsFull=%d failsSat=%d frees=%d recoveryFrees=%d\n",
			ts.SharesME, ts.SharesSMB, ts.ShareFailsFull, ts.ShareFailsSat, ts.Frees, ts.RecoveryFrees)
		fmt.Printf("-- loads: stlf=%d partialWaits=%d toMemory=%d\n",
			st.STLFForwards, st.PartialWaits, st.LoadsToMemory)
		fmt.Printf("-- squashed=%d renamed=%d fetched=%d\n", st.SquashedUops, st.RenamedUops, st.FetchedUops)
		fmt.Printf("-- share dist=%.1f reclaim checks=%d dist=%.1f b2b=%.1f%% skipped-by-flag=%d\n",
			st.ShareDistance(), st.ReclaimChecks, st.ReclaimCheckDistance(),
			100*st.ReclaimBackToBackRate(), st.ReclaimSkippedByFlag)
		m := res.Mem
		fmt.Printf("-- L1D: acc=%d miss=%d | L2: acc=%d miss=%d | DRAM reads=%d\n",
			m.L1DAccesses, m.L1DMisses, m.L2Accesses, m.L2Misses, m.DRAMReads)
	}
}

// traceRun builds the core directly, warms it up, traces the first n
// cycles of measurement, then finishes the measured region and packages
// the statistics in the sim.Result shape the printers expect. The
// warmup and post-trace regions observe ctx like any other run.
func traceRun(ctx context.Context, cfg core.Config, bench string, warmup, measure, n uint64) *sim.Result {
	spec, err := workloads.Resolve(bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prog := workloads.Build(spec)
	c := core.New(cfg, prog)
	finish := func(st *core.Stats, err error) *core.Stats {
		if err != nil {
			fmt.Fprintln(os.Stderr, "interrupted")
			os.Exit(130)
		}
		return st
	}
	finish(c.RunContext(ctx, warmup, 1))
	c.AttachTracer(&core.TextTracer{W: os.Stderr})
	for i := uint64(0); i < n; i++ {
		c.Cycle()
	}
	c.AttachTracer(nil)
	st := finish(c.RunContext(ctx, 0, measure))
	return sim.Snapshot(spec.Name, prog.NumInsts(), c, st)
}
