// Command fakes3 serves the in-process S3 fake (internal/objstore/s3test)
// over a real TCP port, so shell scripts and CI jobs can point
// `-store s3://bucket/prefix -s3-endpoint http://ADDR` at a bucket
// without MinIO or network access. It speaks exactly the REST subset
// the objstore s3 backend uses — SigV4-verified GET/PUT/HEAD plus
// ListObjectsV2 — and holds everything in memory.
//
// The listening address is printed on stdout as the first line
// ("listening on http://127.0.0.1:PORT"), which doubles as the
// readiness signal: once the line appears, the server is accepting
// requests. -addr :0 picks a free port.
//
// Usage:
//
//	fakes3 -addr 127.0.0.1:9000 -bucket simstore &
//	sweep -store s3://simstore/grid -s3-endpoint http://127.0.0.1:9000 ...
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"repro/internal/objstore/s3test"
	"repro/internal/objstore/sigv4"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:0", "listen address (host:port; port 0 picks a free port)")
		bucket    = flag.String("bucket", "simstore", "bucket name the fake serves")
		accessKey = flag.String("access-key", "test", "access key ID clients must sign with")
		secretKey = flag.String("secret-key", "testsecret", "secret access key clients must sign with")
		region    = flag.String("region", "us-east-1", "region the signatures are scoped to")
	)
	flag.Parse()

	srv := s3test.New(*bucket, sigv4.Credentials{AccessKeyID: *accessKey, SecretAccessKey: *secretKey}, *region)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fakes3:", err)
		os.Exit(1)
	}
	fmt.Printf("listening on http://%s\n", ln.Addr())
	if err := http.Serve(ln, srv); err != nil {
		fmt.Fprintln(os.Stderr, "fakes3:", err)
		os.Exit(1)
	}
}
