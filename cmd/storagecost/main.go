// Command storagecost reproduces every storage-arithmetic claim the paper
// makes (§3.1, §4.2, §4.3.3, §6.3): the 2D matrix cost, the ISRB's 480
// CPU bits and 24/48/96-bit checkpoints, the rename-map checkpoint
// reference point, and the predictor/DDT budgets.
package main

import (
	"fmt"

	"repro/internal/experiments"
)

func main() {
	fmt.Println(experiments.StorageTable())
	fmt.Println("Paper reference points: Roth matrix ≈7.8KB vs 0.44KB scheduler matrix;")
	fmt.Println("ISRB-32 with 3-bit counters = 480 bits + 96 bits/checkpoint; rename map")
	fmt.Println("checkpoint ≥256 bits; TAGE-like distance predictor ≈12.2KB vs 17KB NoSQ;")
	fmt.Println("DDT 156KB (16K entries) vs 8.6KB (1K entries).")
}
