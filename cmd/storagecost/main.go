// Command storagecost reproduces every storage-arithmetic claim the paper
// makes (§3.1, §4.2, §4.3.3, §6.3) — the 2D matrix cost, the ISRB's 480
// CPU bits and 24/48/96-bit checkpoints, the rename-map checkpoint
// reference point, and the predictor/DDT budgets — and, with -frontier,
// joins that arithmetic with measured performance: it runs the committed
// "storage-frontier" scenario through the shared internal/sim runner
// (deduplicated, cached via -store like every other command) and
// prints gmean ME+SMB speedup against the storage each scheme costs.
//
// Usage:
//
//	storagecost                      # the paper's closed-form accounting
//	storagecost -frontier            # measured speedup vs storage frontier
//	storagecost -frontier -bench branch-hostile -store fs:.simcache
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/refcount"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	var (
		frontier = flag.Bool("frontier", false, "measure the per-scheme storage-cost frontier (runs simulations)")
		bench    = flag.String("bench", "", "frontier: single benchmark or group (default: the spec's set)")
		warmup   = flag.Uint64("warmup", 0, "frontier: override the spec's warmup µops (explicit 0 = no warmup)")
		measure  = flag.Uint64("measure", 0, "frontier: override the spec's measured µops")
	)
	rf := cliflags.RegisterRunnerFlags(flag.CommandLine, cliflags.WithoutBackend())
	flag.Parse()

	if rf.PrintVersion(os.Stdout) {
		return
	}

	fmt.Println(experiments.StorageTable())
	fmt.Println("Paper reference points: Roth matrix ≈7.8KB vs 0.44KB scheduler matrix;")
	fmt.Println("ISRB-32 with 3-bit counters = 480 bits + 96 bits/checkpoint; rename map")
	fmt.Println("checkpoint ≥256 bits; TAGE-like distance predictor ≈12.2KB vs 17KB NoSQ;")
	fmt.Println("DDT 156KB (16K entries) vs 8.6KB (1K entries).")

	if !*frontier {
		return
	}

	spec, err := scenario.Builtin("storage-frontier")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	matrix, err := spec.Expand(scenario.CommandOverrides(warmup, measure, *bench))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// ^C aborts the frontier sweep mid-simulation; completed cells stay
	// in the -store store for the next invocation.
	ctx := sim.SignalContext()
	store, err := rf.OpenStore()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	runner := sim.New(sim.WithStore(store))
	progress := sim.NewProgress(os.Stderr, runner, len(matrix.Requests))
	rep, err := matrix.Run(ctx, runner, progress.Observe)
	progress.Finish()
	if err != nil {
		if errors.Is(err, sim.ErrCanceled) {
			fmt.Fprintln(os.Stderr, "interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Join the measured speedups with each cell's exact storage price:
	// the tracker the cell's configuration would instantiate knows its
	// own arithmetic (the same Storage() the paper's table is built on).
	t := stats.NewTable(rep.Title,
		"scheme", "CPU bits", "bits/checkpoint", "gmean speedup", "speedup per KB")
	for i, c := range rep.Cells {
		cfg := matrix.Cells[i].OptConfig
		cpu, ck, perKB := "unlimited (ideal)", "-", "-"
		// The unlimited tracker is a modelling device, not a design
		// point — pricing its hypothetical storage would present the
		// ideal reference as a real scheme.
		if cfg.Tracker.Kind != core.TrackerUnlimited {
			cost := cfg.NewTracker().Storage()
			cpu = fmt.Sprint(cost.CPUBits)
			ck = fmt.Sprint(cost.CheckpointBits)
			if cost.CPUBits > 0 {
				perKB = fmt.Sprintf("%+.2f%%/KB", 100*(c.Series.GMean-1)/refcount.KB(cost.CPUBits))
			}
		}
		t.AddRow(c.Name, cpu, ck, stats.Pct(c.Series.GMean), perKB)
	}
	fmt.Println()
	fmt.Println(t)
	fmt.Fprintln(os.Stderr, progress.Summary())
}
