package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cliflags"
	"repro/internal/fleet"
	"repro/internal/objstore"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// drainConfig carries the -drain flag values into runDrain.
type drainConfig struct {
	scenario   string
	host       string
	shardCells int
	cells      string
	stalePolls int
	poll       time.Duration
	// warmup and measure point at the -warmup/-measure flag values;
	// scenario.CommandOverrides only applies the ones actually set.
	warmup, measure *uint64
}

// runDrain is the fleet one-shot: expand the scenario, lease-shard its
// cells over the shared bucket's lease area, drain this host's share
// through the ordinary runner, and print the drain summary JSON.
func runDrain(runner *sim.Runner, store *sim.Store, rf *cliflags.Flags, dc drainConfig) error {
	if store == nil {
		return fmt.Errorf("regshared: -drain needs a shared -store (fs:DIR or s3://bucket/prefix)")
	}
	spec, err := scenario.Resolve(dc.scenario)
	if err != nil {
		return err
	}
	matrix, err := spec.Expand(scenario.CommandOverrides(dc.warmup, dc.measure, ""))
	if err != nil {
		return err
	}

	storeSpec, err := rf.Store.Spec()
	if err != nil {
		return err
	}
	leaseSpec, err := fleet.LeaseSpec(storeSpec)
	if err != nil {
		return err
	}
	leases, err := objstore.New(leaseSpec, rf.Store.Options()...)
	if err != nil {
		return err
	}
	defer leases.Close()

	cfg := fleet.Config{
		Host:       dc.host,
		ShardCells: dc.shardCells,
		StalePolls: dc.stalePolls,
		Sleep: func(ctx context.Context) error {
			t := time.NewTimer(dc.poll)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return context.Cause(ctx)
			case <-t.C:
				return nil
			}
		},
	}
	if cfg.Host == "" {
		hostname, err := os.Hostname()
		if err != nil || hostname == "" {
			hostname = "host"
		}
		cfg.Host = fmt.Sprintf("%s.%d", hostname, os.Getpid())
	}
	if dc.cells != "" {
		cfg.Cells, err = parseCellRange(dc.cells)
		if err != nil {
			return err
		}
	}

	log.Printf("regshared: draining %s (%d cells, %d unique requests) as host %s, %d cells/shard, leases %s",
		spec.Name, len(matrix.Cells), len(matrix.Requests), cfg.Host, cfg.ShardCells, leaseSpec)
	sum, err := fleet.Drain(sim.SignalContext(), matrix, runner, leases, cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(sum)
}

// parseCellRange parses the -cells LO:HI argument.
func parseCellRange(s string) (fleet.Range, error) {
	lo, hi, ok := strings.Cut(s, ":")
	if ok {
		l, errL := strconv.Atoi(lo)
		h, errH := strconv.Atoi(hi)
		if errL == nil && errH == nil {
			return fleet.Range{Lo: l, Hi: h}, nil
		}
	}
	return fleet.Range{}, fmt.Errorf("regshared: -cells %q: want LO:HI (cell indices)", s)
}
