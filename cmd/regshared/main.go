// Command regshared serves simulation results over HTTP: the
// result service behind the `-backend http://addr` flag of cmd/sweep,
// cmd/bench and cmd/paperfigs, and a plain JSON API for everything
// else.
//
// Endpoints:
//
//	POST /v1/run            one sim.Request in, one sim.Result out
//	POST /v1/stream         {"requests":[...]} in, an NDJSON stream of
//	                        completion events out (mirrors sim.Stream)
//	GET  /v1/results/{key}  a completed result straight from the sharded
//	                        on-disk store, addressed by sim.Key
//
// All requests flow through one shared sim.Runner, so concurrent
// clients asking for the same cell share a single simulation, and
// -cachedir persists every completed result in the store /v1/results
// serves from. The execution backend is itself pluggable: `-backend
// pool:N` farms the simulations out to N crash-isolated worker
// subprocesses instead of running them in the server process.
//
// Usage:
//
//	regshared -addr :8347 -cachedir /var/lib/regshared
//	regshared -addr :8347 -backend pool:8
//	regshared -simver          # print the store envelope version and exit
//
// SIGINT/SIGTERM shut the server down gracefully: in-flight requests
// get 10 seconds to finish (their runner contexts are canceled by the
// forced close after that), and only completed simulations ever reach
// the store.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/dispatch"
	"repro/internal/sim"
)

func main() {
	dispatch.MaybeWorker()
	var (
		addr     = flag.String("addr", ":8347", "listen address")
		cachedir = flag.String("cachedir", "", "directory for the sharded on-disk result store (empty: off; /v1/results then always misses)")
		backend  = flag.String("backend", "local", "execution backend: local | pool:N")
		workers  = flag.Int("workers", 0, "cap the runner's concurrent simulations (0: GOMAXPROCS, or the pool size)")
		simver   = flag.Bool("simver", false, "print the simulator version tag (the store envelope simver) and exit")
	)
	flag.Parse()

	if *simver {
		fmt.Println(sim.Version())
		return
	}

	be, err := dispatch.New(*backend)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if _, ok := be.(*dispatch.HTTP); ok {
		// A service proxying to a service invites request loops — most
		// treacherously to itself, where every /v1/run would re-enter
		// /v1/run until sockets run out. Chain by pointing clients at
		// the upstream service instead.
		fmt.Fprintln(os.Stderr, "regshared: an http backend is not allowed here (known: local | pool:N)")
		os.Exit(1)
	}
	defer be.Close()

	opts := dispatch.Options(be)
	var store *sim.Store
	if *cachedir != "" {
		store = sim.NewStore(*cachedir)
		opts = append(opts, sim.WithStore(store))
	}
	if *workers > 0 {
		opts = append(opts, sim.WithWorkers(*workers))
	}
	runner := sim.New(opts...)

	srv := &http.Server{Addr: *addr, Handler: dispatch.NewService(runner, store).Handler()}

	// ^C / SIGTERM: stop accepting, give in-flight requests 10s, then
	// force-close (which cancels their request contexts mid-cycle-loop;
	// the store only ever holds completed results, so this is safe).
	ctx := sim.SignalContext()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		log.Print("regshared: shutting down")
		shctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shctx); err != nil {
			srv.Close()
		}
	}()

	log.Printf("regshared: serving on %s (backend %s, store %s)", *addr, *backend, storeDesc(*cachedir))
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	<-done
}

// storeDesc names the store configuration for the startup log line.
func storeDesc(dir string) string {
	if dir == "" {
		return "off"
	}
	return dir
}
