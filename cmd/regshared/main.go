// Command regshared serves simulation results over HTTP: the
// result service behind the `-backend http://addr` flag of cmd/sweep,
// cmd/bench and cmd/paperfigs, and a plain JSON API for everything
// else.
//
// Endpoints:
//
//	POST /v1/run              one sim.Request in, one sim.Result out
//	POST /v1/stream           {"requests":[...]} in, an NDJSON stream of
//	                          completion events out (mirrors sim.Stream),
//	                          sealed by a {"done":true,"events":N} trailer
//	GET  /v1/results/{key}    a completed result straight from the sharded
//	                          on-disk store, addressed by sim.Key
//	GET  /metrics             service counters, queue/in-flight gauges,
//	                          store hit rate, per-endpoint p50/p99
//	GET  /v1/requests/recent  the last-N requests' stage-stamped metrics
//
// All requests flow through one shared sim.Runner, so concurrent
// clients asking for the same cell share a single simulation, and
// -cachedir persists every completed result in the store /v1/results
// serves from. The execution backend is itself pluggable: `-backend
// pool:N` farms the simulations out to N crash-isolated worker
// subprocesses instead of running them in the server process.
//
// Execution requests pass a bounded admission gate (-max-inflight,
// -max-queue) with per-client fair dequeue; beyond both bounds the
// service answers 429 with a Retry-After hint instead of queueing
// unboundedly. cmd/loadgen drives the saturation curve.
//
// Usage:
//
//	regshared -addr :8347 -cachedir /var/lib/regshared
//	regshared -addr :8347 -backend pool:8 -max-inflight 16 -max-queue 256
//	regshared -simver          # print the store envelope version and exit
//
// SIGINT/SIGTERM shut the server down gracefully: in-flight requests
// get 10 seconds to finish (their runner contexts are canceled by the
// forced close after that), and only completed simulations ever reach
// the store.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/dispatch"
	"repro/internal/sim"
)

func main() {
	dispatch.MaybeWorker()
	var (
		addr        = flag.String("addr", ":8347", "listen address")
		cachedir    = flag.String("cachedir", "", "directory for the sharded on-disk result store (empty: off; /v1/results then always misses)")
		backend     = flag.String("backend", "local", "execution backend: local | pool:N")
		workers     = flag.Int("workers", 0, "cap the runner's concurrent simulations (0: GOMAXPROCS, or the pool size)")
		maxInflight = flag.Int("max-inflight", 0, "admission: max concurrently executing requests (0: 4×GOMAXPROCS, min 16)")
		maxQueue    = flag.Int("max-queue", 1024, "admission: max queued requests before 429 + Retry-After (negative: no queue, reject beyond -max-inflight)")
		recent      = flag.Int("recent", 256, "size of the /v1/requests/recent ring buffer")
		simver      = flag.Bool("simver", false, "print the simulator version tag (the store envelope simver) and exit")
	)
	flag.Parse()

	if *simver {
		fmt.Println(sim.Version())
		return
	}

	be, err := dispatch.New(*backend)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if _, ok := be.(*dispatch.HTTP); ok {
		// A service proxying to a service invites request loops — most
		// treacherously to itself, where every /v1/run would re-enter
		// /v1/run until sockets run out. Chain by pointing clients at
		// the upstream service instead.
		fmt.Fprintln(os.Stderr, "regshared: an http backend is not allowed here (known: local | pool:N)")
		os.Exit(1)
	}
	defer be.Close()

	opts := dispatch.Options(be)
	var store *sim.Store
	if *cachedir != "" {
		store = sim.NewStore(*cachedir)
		opts = append(opts, sim.WithStore(store))
	}
	if *workers > 0 {
		opts = append(opts, sim.WithWorkers(*workers))
	}
	runner := sim.New(opts...)

	service := dispatch.NewService(runner, store,
		dispatch.WithAdmission(*maxInflight, *maxQueue),
		dispatch.WithRecent(*recent))
	srv := &http.Server{
		Addr:    *addr,
		Handler: service.Handler(),
		// Slowloris guard: a client gets 10s to deliver its headers, so
		// one slow-header connection cannot hold an accept slot forever.
		ReadHeaderTimeout: 10 * time.Second,
		// Request bodies are decoded up front and bounded at 16MB by the
		// handlers, so a healthy client finishes writing one well within
		// this; a stalled body read no longer pins the connection.
		ReadTimeout: 2 * time.Minute,
		// Reap idle keep-alive connections instead of accumulating them.
		IdleTimeout: 2 * time.Minute,
		// WriteTimeout stays 0 DELIBERATELY: /v1/run responses wait on
		// legitimately minutes-long simulations and /v1/stream writes
		// NDJSON for the lifetime of a whole grid, so any fixed write
		// deadline would cut healthy long responses. Stuck writers are
		// bounded instead by the per-request context (canceled when the
		// client goes away) and by graceful shutdown's force-close.
	}

	// ^C / SIGTERM: stop accepting, give in-flight requests 10s, then
	// force-close (which cancels their request contexts mid-cycle-loop;
	// the store only ever holds completed results, so this is safe).
	ctx := sim.SignalContext()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		log.Print("regshared: shutting down")
		shctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shctx); err != nil {
			srv.Close()
		}
	}()

	log.Printf("regshared: serving on %s (backend %s, store %s)", *addr, *backend, storeDesc(*cachedir))
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	<-done
}

// storeDesc names the store configuration for the startup log line.
func storeDesc(dir string) string {
	if dir == "" {
		return "off"
	}
	return dir
}
