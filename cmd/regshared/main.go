// Command regshared serves simulation results over HTTP: the
// result service behind the `-backend http://addr` flag of cmd/sweep,
// cmd/bench and cmd/paperfigs, and a plain JSON API for everything
// else.
//
// Endpoints:
//
//	POST /v1/run              one sim.Request in, one sim.Result out
//	POST /v1/runs             a batch of requests in, per-item results or
//	                          typed errors out (one HTTP round trip; 429
//	                          shedding is per item, in band)
//	POST /v1/stream           {"requests":[...]} in, an NDJSON stream of
//	                          completion events out (mirrors sim.Stream),
//	                          sealed by a {"done":true,"events":N} trailer
//	GET  /v1/results/{key}    a completed result straight from the sharded
//	                          on-disk store, addressed by sim.Key
//	GET  /v1/manifest         the store's Merkle manifest summary (root
//	                          hash, height, entry count)
//	GET  /v1/manifest/node    one manifest tree node by ?path= ('0'/'1'
//	                          bits from the root), for the sync diff walk
//	GET  /v1/manifest/shard/{shard}  one shard's entry names and digests
//	GET  /v1/store/{name}     one raw store envelope by entry name
//	POST /v1/sync             envelopes pushed by a peer; each is
//	                          validated (schema, simulator version,
//	                          key-derived name) before landing in the store
//	GET  /metrics             service counters, queue/in-flight gauges,
//	                          store hit rate, per-endpoint p50/p99
//	GET  /v1/requests/recent  the last-N requests' stage-stamped metrics
//
// All requests flow through one shared sim.Runner, so concurrent
// clients asking for the same cell share a single simulation, and
// -store persists every completed result in the store /v1/results
// serves from. The execution backend is itself pluggable: `-backend
// pool:N` farms the simulations out to N crash-isolated worker
// subprocesses instead of running them in the server process.
//
// Execution requests pass a bounded admission gate (-max-inflight,
// -max-queue) with per-client fair dequeue; beyond both bounds the
// service answers 429 with a Retry-After hint instead of queueing
// unboundedly. cmd/loadgen drives the saturation curve.
//
// Two hosts running regshared with their own -store federate
// through the manifest: `regshared -store fs:DIR -sync URL` walks the
// peer's Merkle tree (O(log shards) hash exchanges), transfers only
// the envelopes one side is missing — pulls and pushes — and exits.
//
// N hosts sharing ONE -store bucket instead drain a fleet-scale grid
// cooperatively: `regshared -store fs:DIR -drain fleet-grid` leases
// contiguous cell shards via claim objects in the bucket's lease area
// (see internal/fleet), simulates its share, and exits with a drain
// summary — resumable, exactly-once across hosts, with the store's
// Merkle manifest as the single source of truth.
//
// Usage:
//
//	regshared -addr :8347 -store fs:/var/lib/regshared
//	regshared -addr :8347 -store s3://simstore/grid -s3-endpoint http://minio:9000
//	regshared -addr :8347 -backend pool:8 -max-inflight 16 -max-queue 256
//	regshared -simver          # print the store envelope version and exit
//	regshared -store fs:DIR -manifest       # print the store manifest summary and exit
//	regshared -store fs:DIR -sync http://peer:8347   # reconcile with a peer and exit
//	regshared -store fs:DIR -drain fleet-grid -host a   # drain one grid as a fleet host
//
// SIGINT/SIGTERM shut the server down gracefully: in-flight requests
// get 10 seconds to finish (their runner contexts are canceled by the
// forced close after that), and only completed simulations ever reach
// the store.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cliflags"
	"repro/internal/dispatch"
	"repro/internal/sim"
)

func main() {
	dispatch.MaybeWorker()
	var (
		addr        = flag.String("addr", ":8347", "listen address")
		workers     = flag.Int("workers", 0, "cap the runner's concurrent simulations (0: GOMAXPROCS, or the pool size)")
		maxInflight = flag.Int("max-inflight", 0, "admission: max concurrently executing requests (0: 4×GOMAXPROCS, min 16)")
		maxQueue    = flag.Int("max-queue", 1024, "admission: max queued requests before 429 + Retry-After (negative: no queue, reject beyond -max-inflight)")
		recent      = flag.Int("recent", 256, "size of the /v1/requests/recent ring buffer")
		manifest    = flag.Bool("manifest", false, "print the -store store's Merkle manifest summary and exit")
		syncURL     = flag.String("sync", "", "reconcile the -store store with the regshared at this URL, print the transfer stats, and exit")

		drainSpec  = flag.String("drain", "", "drain a scenario's grid as one fleet host and exit: a builtin name or .scenario path (needs a shared fs:/s3:// -store)")
		host       = flag.String("host", "", "-drain: this host's name in lease claims (default hostname.pid)")
		shardCells = flag.Int("shard-cells", 64, "-drain: cells per lease shard (every host draining a grid must agree)")
		cellRange  = flag.String("cells", "", "-drain: restrict to cell range LO:HI (shard-aligned; default the whole grid)")
		stalePolls = flag.Int("stale-polls", 30, "-drain: consecutive no-progress polls of a peer's claim before seizing it")
		poll       = flag.Duration("poll", 2*time.Second, "-drain: pause between poll passes when every remaining shard is held by a live peer")
		warmup     = flag.Uint64("warmup", 0, "-drain: override the scenario's warmup µops (explicit 0 = no warmup)")
		measure    = flag.Uint64("measure", 0, "-drain: override the scenario's measured µops")
	)
	rf := cliflags.RegisterRunnerFlags(flag.CommandLine,
		cliflags.WithBackendHelp("execution backend: local | pool:N | batched:local | batched:pool:N"))
	flag.Parse()

	if rf.PrintVersion(os.Stdout) {
		return
	}
	if *manifest || *syncURL != "" {
		store, err := rf.OpenStore()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if store == nil {
			fmt.Fprintln(os.Stderr, "regshared: -manifest and -sync need a -store (or deprecated -cachedir)")
			os.Exit(1)
		}
		if *manifest {
			if err := printManifest(store); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return
		}
		if err := runSync(store, *syncURL); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	backendSpec := rf.BackendSpec()
	if strings.Contains(backendSpec, "http://") || strings.Contains(backendSpec, "https://") {
		// A service proxying to a service invites request loops — most
		// treacherously to itself, where every /v1/run would re-enter
		// /v1/run until sockets run out (batched: wrapping does not make
		// that safe, hence the spec check rather than a type check).
		// Chain by pointing clients at the upstream service instead; the
		// same holds for a drain host.
		fmt.Fprintln(os.Stderr, "regshared: an http backend is not allowed here (known: local | pool:N | batched:...)")
		os.Exit(1)
	}
	b, err := rf.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if _, ok := b.Backend.(*dispatch.HTTP); ok {
		fmt.Fprintln(os.Stderr, "regshared: an http backend is not allowed here (known: local | pool:N | batched:...)")
		os.Exit(1)
	}
	defer b.Close()

	var workerOpts []sim.Option
	if *workers > 0 {
		workerOpts = append(workerOpts, sim.WithWorkers(*workers))
	}
	runner := sim.New(b.RunnerOptions(workerOpts...)...)

	if *drainSpec != "" {
		if err := runDrain(runner, b.Store, rf, drainConfig{
			scenario: *drainSpec, host: *host, shardCells: *shardCells,
			cells: *cellRange, stalePolls: *stalePolls, poll: *poll,
			warmup: warmup, measure: measure,
		}); err != nil {
			if errors.Is(err, sim.ErrCanceled) {
				fmt.Fprintln(os.Stderr, "interrupted")
				os.Exit(130)
			}
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	service := dispatch.NewService(runner, b.Store,
		dispatch.WithAdmission(*maxInflight, *maxQueue),
		dispatch.WithRecent(*recent))
	srv := &http.Server{
		Addr:    *addr,
		Handler: service.Handler(),
		// Slowloris guard: a client gets 10s to deliver its headers, so
		// one slow-header connection cannot hold an accept slot forever.
		ReadHeaderTimeout: 10 * time.Second,
		// Request bodies are decoded up front and bounded at 16MB by the
		// handlers, so a healthy client finishes writing one well within
		// this; a stalled body read no longer pins the connection.
		ReadTimeout: 2 * time.Minute,
		// Reap idle keep-alive connections instead of accumulating them.
		IdleTimeout: 2 * time.Minute,
		// WriteTimeout stays 0 DELIBERATELY: /v1/run responses wait on
		// legitimately minutes-long simulations and /v1/stream writes
		// NDJSON for the lifetime of a whole grid, so any fixed write
		// deadline would cut healthy long responses. Stuck writers are
		// bounded instead by the per-request context (canceled when the
		// client goes away) and by graceful shutdown's force-close.
	}

	// ^C / SIGTERM: stop accepting, give in-flight requests 10s, then
	// force-close (which cancels their request contexts mid-cycle-loop;
	// the store only ever holds completed results, so this is safe).
	ctx := sim.SignalContext()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		log.Print("regshared: shutting down")
		shctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shctx); err != nil {
			srv.Close()
		}
	}()

	log.Printf("regshared: serving on %s (backend %s, store %s)", *addr, backendSpec, storeDesc(b.Store))
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	<-done
}

// storeDesc names the store configuration for the startup log line.
func storeDesc(store *sim.Store) string {
	if store == nil {
		return "off"
	}
	return store.Spec()
}

// printManifest prints the local store's Merkle manifest summary —
// what a peer would see from GET /v1/manifest.
func printManifest(store *sim.Store) error {
	m, err := store.Manifest(sim.SignalContext())
	if err != nil {
		return err
	}
	fmt.Printf("schema:      %s\n", m.Schema)
	fmt.Printf("sim_version: %s\n", m.SimVersion)
	fmt.Printf("root:        %s\n", m.Root)
	fmt.Printf("height:      %d (%d shards)\n", m.Height, sim.ShardCount)
	fmt.Printf("entries:     %d\n", m.Entries)
	return nil
}

// runSync reconciles the local store with the regshared at url and
// prints the transfer stats.
func runSync(store *sim.Store, url string) error {
	h := dispatch.NewHTTP(url)
	defer h.Close()
	st, err := h.Sync(sim.SignalContext(), store)
	if err != nil {
		return err
	}
	if st.InSync {
		fmt.Printf("in sync with %s (1 hash exchange, nothing transferred)\n", url)
		return nil
	}
	fmt.Printf("synced with %s: %d shards differed, %d hash exchanges\n", url, st.ShardsDiffer, st.HashExchanges)
	fmt.Printf("pulled: %d (%d rejected locally)\n", st.Pulled, st.PullRejected)
	fmt.Printf("pushed: %d (%d rejected by the peer)\n", st.Pushed, st.PushRejected)
	m, err := store.Manifest(sim.SignalContext())
	if err != nil {
		return err
	}
	fmt.Printf("root:   %s (%d entries)\n", m.Root, m.Entries)
	return nil
}
