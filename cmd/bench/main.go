// Command bench measures raw simulator speed — simulated cycles per
// wall-clock second — on the pinned workload set of internal/sim, and
// writes the BENCH_*.json report that tracks the simulator's performance
// trajectory across PRs.
//
// Usage:
//
//	bench -o BENCH_2.json                 # full pinned set
//	bench -quick -o /tmp/smoke.json       # 3-point CI smoke subset
//	bench -o BENCH_2.json -baseline BENCH_1.json   # embed speedup
//	bench -quick -baseline BENCH_2.json -gate 0.90 # CI regression gate
//	bench -backend pool:4                 # measure delivered pool throughput
//
// The workload set, machine configuration and run lengths are pinned in
// internal/sim so reports from different PRs are comparable; -quick
// selects the small smoke subset CI runs on every push. A -baseline file
// (any earlier report) is embedded into the output together with the
// gmean cycles/sec speedup against it; -gate then turns the comparison
// into a pass/fail check (exit status 2 on a regression past the
// threshold), which is what the CI perf gate runs.
//
// The default measurement drives the core directly — no runner layers
// between the wall clock and the cycle loop. -backend instead times
// requests through a dispatch backend (worker pool, regshared service),
// measuring *delivered* throughput including framing or network
// overhead; such reports record the backend so they are never mistaken
// for simulator-speed data points.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflags"
	"repro/internal/dispatch"
	"repro/internal/sim"
)

func main() {
	dispatch.MaybeWorker()
	var (
		quick    = flag.Bool("quick", false, "run the 3-point smoke subset")
		out      = flag.String("o", "", "write the JSON report to this file")
		baseline = flag.String("baseline", "", "earlier BENCH_*.json to embed and compare against")
		gate     = flag.Float64("gate", 0, "fail (exit 2) when gmean cycles/sec falls below this fraction of the -baseline gmean (0: off)")
		label    = flag.String("label", "", "free-form label recorded in the report")
		list     = flag.Bool("list", false, "print the pinned points and exit")
	)
	rf := cliflags.RegisterRunnerFlags(flag.CommandLine,
		cliflags.WithBackendHelp("execution backend: local | pool:N | http://addr (non-local reports measure delivered backend throughput)"))
	flag.Parse()
	backendSpec := rf.BackendSpec()

	if rf.PrintVersion(os.Stdout) {
		return
	}

	points := sim.BenchPoints(*quick)
	if *list {
		for _, p := range points {
			fmt.Printf("%-10s %-10s warmup=%d measure=%d\n", p.Bench, p.Tracker, p.Warmup, p.Measure)
		}
		return
	}

	if *gate > 0 && *baseline == "" {
		fmt.Fprintln(os.Stderr, "bench: -gate needs a -baseline to compare against")
		os.Exit(1)
	}
	if *gate > 0 && backendSpec != "" && backendSpec != "local" {
		// Backend runs measure delivered throughput (framing, network);
		// gating those numbers against a simulator-speed baseline
		// thresholds the backend overhead, not the simulator.
		fmt.Fprintln(os.Stderr, "bench: -gate only gates the in-process measurement; drop -backend")
		os.Exit(1)
	}

	store, err := rf.OpenStore()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if store != nil && (backendSpec == "" || backendSpec == "local") {
		// The in-process measurement times the bare cycle loop; serving
		// points from a store would measure the store, not the simulator.
		fmt.Fprintln(os.Stderr, "bench: -store needs a non-local -backend (store-backed runs measure delivered throughput)")
		os.Exit(1)
	}

	// ^C aborts the current point mid-simulation; a partial report is
	// not written (the pinned set is only comparable when complete).
	ctx := sim.SignalContext()
	done := 0
	progress := func(r sim.BenchResult) {
		done++
		fmt.Printf("[%d/%d] %-10s %-10s %9d cycles  ipc=%5.3f  %8.1f ms  %10.0f cycles/sec\n",
			done, len(points), r.Bench, r.Tracker, r.Cycles, r.IPC, float64(r.WallNS)/1e6, r.CyclesPerSec)
	}
	var rep *sim.BenchReport
	if backendSpec == "" || backendSpec == "local" {
		rep, err = sim.RunBench(ctx, points, *quick, progress)
	} else {
		var be dispatch.Backend
		be, err = dispatch.New(backendSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer be.Close()
		exec := be.Execute
		backendLabel := backendSpec
		if store != nil {
			// Store-first execution: a hit skips the backend entirely, a
			// miss runs and backfills. The label records the store so the
			// report is never mistaken for raw backend throughput.
			exec = func(ctx context.Context, req sim.Request) (*sim.Result, error) {
				key := sim.Key(req)
				if res, ok := store.Load(ctx, key); ok {
					return res, nil
				}
				res, err := be.Execute(ctx, req)
				if err == nil {
					store.Put(context.WithoutCancel(ctx), key, res)
				}
				return res, err
			}
			backendLabel += "+" + store.Spec()
		}
		rep, err = sim.RunBenchVia(ctx, points, *quick, exec, progress)
		if rep != nil {
			rep.Backend = backendLabel
		}
	}
	if err != nil {
		if errors.Is(err, sim.ErrCanceled) {
			fmt.Fprintln(os.Stderr, "interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	rep.Label = *label

	var base *sim.BenchReport
	if *baseline != "" {
		base, err = sim.LoadBenchReport(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		rep.AttachBaseline(base, *baseline)
	}

	fmt.Printf("\ngmean %.0f cycles/sec, total wall %.2f s\n",
		rep.GMeanCPS, float64(rep.TotalWallNS)/1e9)
	if rep.Baseline != nil {
		fmt.Printf("baseline %s: gmean %.0f cycles/sec  ->  speedup %.2fx\n",
			rep.Baseline.Label, rep.Baseline.GMeanCPS, rep.SpeedupVsBaseline)
		if rep.Baseline.MatchedPoints > 0 {
			fmt.Printf("matched %d points: baseline gmean %.0f cycles/sec  ->  speedup %.2fx\n",
				rep.Baseline.MatchedPoints, rep.Baseline.MatchedGMeanCPS,
				rep.SpeedupVsBaselineMatched)
		}
	}

	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}

	// The regression gate runs after the report is written, so CI can
	// upload the failing run as an artifact before the job dies. It
	// thresholds the matched-point speedup — the -quick subset against a
	// full-set baseline compares only the points both actually ran. A
	// baseline sharing no points is a gate misconfiguration, not a
	// verdict: gmean ratios across disjoint point sets measure the sets,
	// not the simulator.
	if *gate > 0 {
		if base.Backend != "" {
			fmt.Fprintf(os.Stderr, "bench: gate cannot compare: the baseline measured backend %q, not the in-process simulator\n", base.Backend)
			os.Exit(1)
		}
		if rep.Baseline.MatchedPoints == 0 {
			fmt.Fprintln(os.Stderr, "bench: gate cannot compare: the baseline shares no (benchmark, tracker) points with this run")
			os.Exit(1)
		}
		speedup := rep.SpeedupVsBaselineMatched
		basis := fmt.Sprintf("%d matched points", rep.Baseline.MatchedPoints)
		if speedup < *gate {
			fmt.Fprintf(os.Stderr, "bench: gate FAILED: %.2fx the baseline over %s (threshold %.2fx)\n",
				speedup, basis, *gate)
			os.Exit(2)
		}
		fmt.Printf("gate ok: %.2fx the baseline over %s (threshold %.2fx)\n", speedup, basis, *gate)
	}
}
