// Command bench measures raw simulator speed — simulated cycles per
// wall-clock second — on the pinned workload set of internal/sim, and
// writes the BENCH_*.json report that tracks the simulator's performance
// trajectory across PRs.
//
// Usage:
//
//	bench -o BENCH_2.json                 # full pinned set
//	bench -quick -o /tmp/smoke.json       # 3-point CI smoke subset
//	bench -o BENCH_2.json -baseline BENCH_1.json   # embed speedup
//
// The workload set, machine configuration and run lengths are pinned in
// internal/sim so reports from different PRs are comparable; -quick
// selects the small smoke subset CI runs on every push. A -baseline file
// (any earlier report) is embedded into the output together with the
// gmean cycles/sec speedup against it.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "run the 3-point smoke subset")
		out      = flag.String("o", "", "write the JSON report to this file")
		baseline = flag.String("baseline", "", "earlier BENCH_*.json to embed and compare against")
		label    = flag.String("label", "", "free-form label recorded in the report")
		list     = flag.Bool("list", false, "print the pinned points and exit")
	)
	flag.Parse()

	points := sim.BenchPoints(*quick)
	if *list {
		for _, p := range points {
			fmt.Printf("%-10s %-10s warmup=%d measure=%d\n", p.Bench, p.Tracker, p.Warmup, p.Measure)
		}
		return
	}

	// ^C aborts the current point mid-simulation; a partial report is
	// not written (the pinned set is only comparable when complete).
	ctx := sim.SignalContext()
	done := 0
	rep, err := sim.RunBench(ctx, points, *quick, func(r sim.BenchResult) {
		done++
		fmt.Printf("[%d/%d] %-10s %-10s %9d cycles  ipc=%5.3f  %8.1f ms  %10.0f cycles/sec\n",
			done, len(points), r.Bench, r.Tracker, r.Cycles, r.IPC, float64(r.WallNS)/1e6, r.CyclesPerSec)
	})
	if err != nil {
		if errors.Is(err, sim.ErrCanceled) {
			fmt.Fprintln(os.Stderr, "interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	rep.Label = *label

	if *baseline != "" {
		base, err := sim.LoadBenchReport(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		rep.AttachBaseline(base, *baseline)
	}

	fmt.Printf("\ngmean %.0f cycles/sec, total wall %.2f s\n",
		rep.GMeanCPS, float64(rep.TotalWallNS)/1e9)
	if rep.Baseline != nil {
		fmt.Printf("baseline %s: gmean %.0f cycles/sec  ->  speedup %.2fx\n",
			rep.Baseline.Label, rep.Baseline.GMeanCPS, rep.SpeedupVsBaseline)
	}

	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}
}
