// Command repolint machine-checks the repository's determinism,
// zero-alloc and API invariants. It speaks the `go vet -vettool`
// protocol, so CI runs it as
//
//	go build -o repolint ./cmd/repolint
//	go vet -vettool=$(pwd)/repolint ./...
//
// and invoked with package patterns directly (`repolint ./...`) it
// re-execs itself through go vet for local use. The analyzers and the
// directives they honor (//repro:hotpath, //repro:wire, //repro:allow)
// are documented in docs/ANALYZERS.md.
package main

import (
	"repro/internal/analysis"
	"repro/internal/analysis/repolint"
)

func main() {
	analysis.Main(repolint.Analyzers...)
}
