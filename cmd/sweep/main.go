// Command sweep runs declarative parameter sweeps: every grid — axes,
// configuration patches, benchmark set, run lengths, report shape —
// comes from a scenario spec (see internal/scenario and docs/SCENARIOS.md),
// either a committed builtin or a `.scenario` file.
//
// The paper's design-point sweeps remain available under their original
// -kind names, now as committed specs:
//
//   - isrb:   ISRB entries × counter width (ME+SMB, the §6.3 trade space)
//   - rob:    ROB size × ISRB entries (SMB)
//   - stlf:   store-to-load forwarding latency × SMB on/off (the §3
//     motivation: SMB gains grow with the STLF latency)
//
// All simulations go through one internal/sim runner, so shared cells —
// notably the baseline, which every grid cell compares against — run
// exactly once, and -store persists results in the sharded
// content-addressed store (fs:DIR, mem:, or s3://bucket/prefix) shared
// with every other command. The -cachedir flag remains as a deprecated
// alias for -store fs:DIR.
//
// Usage:
//
//	sweep -kind isrb -bench hmmer
//	sweep -kind stlf                  # geometric mean over the whole suite
//	sweep -scenario isrb-rob-grid     # any builtin scenario by name
//	sweep -spec my.scenario -json     # a spec file, machine-readable report
//	sweep -list                       # list the committed scenarios
//	sweep -store fs:.simcache         # persist results between runs
//	sweep -store s3://simstore/grid   # share one bucket across a fleet
//	sweep -backend pool:8             # crash-isolated worker subprocesses
//	sweep -backend http://host:8347   # farm out to a regshared service
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflags"
	"repro/internal/dispatch"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// exitCanceled handles ^C uniformly: a canceled run reports
// "interrupted" and exits with the conventional SIGINT status.
func exitCanceled(err error) {
	if errors.Is(err, sim.ErrCanceled) {
		fmt.Fprintln(os.Stderr, "interrupted")
		os.Exit(130)
	}
}

func main() {
	dispatch.MaybeWorker()
	var (
		kind     = flag.String("kind", "", "paper sweep kind: isrb|rob|stlf (shorthand for -scenario sweep-<kind>)")
		name     = flag.String("scenario", "", "builtin scenario name (see -list)")
		specPath = flag.String("spec", "", "path to a .scenario spec file")
		list     = flag.Bool("list", false, "list builtin scenarios and exit")
		bench    = flag.String("bench", "", "single benchmark or group (default: the spec's benchmark set)")
		warmup   = flag.Uint64("warmup", 0, "override the spec's warmup µops (explicit 0 = no warmup)")
		measure  = flag.Uint64("measure", 0, "override the spec's measured µops")
		jsonOut  = flag.Bool("json", false, "emit the machine-readable report instead of the table")
		verbose  = flag.Bool("v", false, "report runner counters on stderr")
	)
	rf := cliflags.RegisterRunnerFlags(flag.CommandLine)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if rf.PrintVersion(os.Stdout) {
		return
	}

	if *list {
		for _, n := range scenario.BuiltinNames() {
			s, err := scenario.Builtin(n)
			if err != nil {
				fail(err)
			}
			fmt.Printf("%-18s %s\n", n, s.Title)
		}
		return
	}

	modes := 0
	for _, set := range []bool{*specPath != "", *name != "", *kind != ""} {
		if set {
			modes++
		}
	}
	if modes > 1 {
		fail(errors.New("use only one of -kind, -scenario, -spec"))
	}

	var spec *scenario.Spec
	var err error
	switch {
	case *specPath != "":
		spec, err = scenario.LoadFile(*specPath)
	case *name != "":
		spec, err = scenario.Resolve(*name)
	case *kind != "":
		spec, err = scenario.Builtin("sweep-" + *kind)
		if errors.Is(err, scenario.ErrUnknownBuiltin) {
			err = fmt.Errorf("unknown sweep kind %q (known: isrb rob stlf)", *kind)
		}
	default:
		// Preserve the historical default: `sweep` alone runs the ISRB
		// trade-space sweep.
		spec, err = scenario.Builtin("sweep-isrb")
	}
	if err != nil {
		fail(err)
	}

	matrix, err := spec.Expand(scenario.CommandOverrides(warmup, measure, *bench))
	if err != nil {
		fail(err)
	}

	// ^C cancels the context, which aborts the in-flight simulations
	// mid-cycle-loop; completed cells are already in the store (if
	// -store is set), so a re-run resumes where this one stopped.
	ctx := sim.SignalContext()
	b, err := rf.Build()
	if err != nil {
		fail(err)
	}
	defer b.Close()
	runner := sim.New(b.RunnerOptions()...)
	progress := sim.NewProgress(os.Stderr, runner, len(matrix.Requests))
	rep, err := matrix.Run(ctx, runner, progress.Observe)
	progress.Finish()
	if err != nil {
		exitCanceled(err)
		fail(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
	} else {
		fmt.Println(rep.Table())
	}
	if *verbose {
		fmt.Fprintln(os.Stderr, progress.Summary())
	}
}
