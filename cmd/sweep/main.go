// Command sweep runs two-dimensional parameter sweeps around the paper's
// design points and prints speedup grids:
//
//   - isrb:   ISRB entries × counter width (ME+SMB, the §6.3 trade space)
//   - rob:    ROB size × ISRB entries (SMB)
//   - stlf:   store-to-load forwarding latency × SMB on/off (the §3
//     motivation: SMB gains grow with the STLF latency)
//
// All simulations go through one internal/sim runner, so shared cells —
// notably the baseline, which every grid cell compares against — run
// exactly once, and -cachedir reuses results across invocations.
//
// Usage:
//
//	sweep -kind isrb -bench hmmer
//	sweep -kind stlf            # geometric mean over the whole suite
//	sweep -cachedir .simcache   # persist results between runs
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

var (
	kind     = flag.String("kind", "isrb", "sweep kind: isrb|rob|stlf")
	bench    = flag.String("bench", "", "single benchmark (default: gmean over the suite)")
	warmup   = flag.Uint64("warmup", 20_000, "warmup µops")
	measure  = flag.Uint64("measure", 80_000, "measured µops")
	cachedir = flag.String("cachedir", "", "directory for the on-disk result cache (empty: off)")

	runner *sim.Runner
)

// speedup returns the gmean speedup of cfg over base across the selected
// benchmarks. The runner deduplicates: repeated base configurations
// across grid cells cost nothing.
func speedup(baseFor, cfgFor func() core.Config) float64 {
	names := workloads.Names()
	if *bench != "" {
		names = []string{*bench}
	}
	reqs := func(cfg core.Config) []sim.Request {
		rs := make([]sim.Request, len(names))
		for i, n := range names {
			rs[i] = sim.Request{Bench: n, Config: cfg, Warmup: *warmup, Measure: *measure}
		}
		return rs
	}
	base, err := runner.RunAll(reqs(baseFor()))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opt, err := runner.RunAll(reqs(cfgFor()))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return sim.GMeanSpeedup(base, opt)
}

func combined(entries, bits int) core.Config {
	cfg := core.DefaultConfig()
	cfg.ME.Enabled = true
	cfg.SMB.Enabled = true
	cfg.Tracker = core.TrackerConfig{Kind: core.TrackerISRB, Entries: entries, CounterBits: bits}
	return cfg
}

func main() {
	flag.Parse()
	runner = sim.New(sim.WithCacheDir(*cachedir))
	switch *kind {
	case "isrb":
		t := stats.NewTable("ME+SMB speedup: ISRB entries × counter bits",
			"entries", "1-bit", "2-bit", "3-bit", "4-bit")
		for _, n := range []int{8, 16, 24, 32, 48} {
			row := []string{fmt.Sprint(n)}
			for _, w := range []int{1, 2, 3, 4} {
				s := speedup(core.DefaultConfig, func() core.Config { return combined(n, w) })
				row = append(row, stats.Pct(s))
			}
			t.AddRow(row...)
		}
		fmt.Println(t)
	case "rob":
		t := stats.NewTable("SMB speedup: ROB size × ISRB entries",
			"ROB", "ISRB-8", "ISRB-24", "unlimited")
		for _, rob := range []int{96, 192, 384} {
			rob := rob
			row := []string{fmt.Sprint(rob)}
			for _, n := range []int{8, 24, 0} {
				n := n
				base := func() core.Config {
					cfg := core.DefaultConfig()
					cfg.ROBSize = rob
					return cfg
				}
				opt := func() core.Config {
					cfg := base()
					cfg.SMB.Enabled = true
					if n > 0 {
						cfg.Tracker = core.TrackerConfig{Kind: core.TrackerISRB, Entries: n, CounterBits: 3}
					}
					return cfg
				}
				row = append(row, stats.Pct(speedup(base, opt)))
			}
			t.AddRow(row...)
		}
		fmt.Println(t)
	case "stlf":
		t := stats.NewTable("SMB speedup vs store-to-load forwarding latency (§3's motivation)",
			"STLF cycles", "SMB speedup")
		for _, lat := range []uint64{1, 2, 4, 8} {
			lat := lat
			base := func() core.Config {
				cfg := core.DefaultConfig()
				cfg.STLFLatency = lat
				return cfg
			}
			opt := func() core.Config {
				cfg := base()
				cfg.SMB.Enabled = true
				return cfg
			}
			t.AddRow(fmt.Sprint(lat), stats.Pct(speedup(base, opt)))
		}
		fmt.Println(t)
	default:
		fmt.Fprintf(os.Stderr, "unknown sweep kind %q\n", *kind)
		os.Exit(1)
	}
}
