// Command sweep runs two-dimensional parameter sweeps around the paper's
// design points and prints speedup grids:
//
//   - isrb:   ISRB entries × counter width (ME+SMB, the §6.3 trade space)
//   - rob:    ROB size × ISRB entries (SMB)
//   - stlf:   store-to-load forwarding latency × SMB on/off (the §3
//     motivation: SMB gains grow with the STLF latency)
//
// Usage:
//
//	sweep -kind isrb -bench hmmer
//	sweep -kind stlf            # geometric mean over the whole suite
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workloads"
)

var (
	kind    = flag.String("kind", "isrb", "sweep kind: isrb|rob|stlf")
	bench   = flag.String("bench", "", "single benchmark (default: gmean over the suite)")
	warmup  = flag.Uint64("warmup", 20_000, "warmup µops")
	measure = flag.Uint64("measure", 80_000, "measured µops")
)

// run simulates one (benchmark, config) pair.
func run(name string, cfg core.Config) float64 {
	spec, err := workloads.ByName(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	c := core.New(cfg, workloads.Build(spec))
	return c.Run(*warmup, *measure).IPC()
}

// speedup returns the gmean speedup of cfg over base across the selected
// benchmarks, running them in parallel.
func speedup(baseFor, cfgFor func() core.Config) float64 {
	names := workloads.Names()
	if *bench != "" {
		names = []string{*bench}
	}
	ratios := make([]float64, len(names))
	sem := make(chan struct{}, runtime.NumCPU())
	var wg sync.WaitGroup
	for i, n := range names {
		wg.Add(1)
		go func(i int, n string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ratios[i] = stats.Speedup(run(n, cfgFor()), run(n, baseFor()))
		}(i, n)
	}
	wg.Wait()
	return stats.GeoMean(ratios)
}

func combined(entries, bits int) core.Config {
	cfg := core.DefaultConfig()
	cfg.ME.Enabled = true
	cfg.SMB.Enabled = true
	cfg.Tracker = core.TrackerConfig{Kind: core.TrackerISRB, Entries: entries, CounterBits: bits}
	return cfg
}

func main() {
	flag.Parse()
	switch *kind {
	case "isrb":
		t := stats.NewTable("ME+SMB speedup: ISRB entries × counter bits",
			"entries", "1-bit", "2-bit", "3-bit", "4-bit")
		for _, n := range []int{8, 16, 24, 32, 48} {
			row := []string{fmt.Sprint(n)}
			for _, w := range []int{1, 2, 3, 4} {
				s := speedup(core.DefaultConfig, func() core.Config { return combined(n, w) })
				row = append(row, stats.Pct(s))
			}
			t.AddRow(row...)
		}
		fmt.Println(t)
	case "rob":
		t := stats.NewTable("SMB speedup: ROB size × ISRB entries",
			"ROB", "ISRB-8", "ISRB-24", "unlimited")
		for _, rob := range []int{96, 192, 384} {
			rob := rob
			row := []string{fmt.Sprint(rob)}
			for _, n := range []int{8, 24, 0} {
				n := n
				base := func() core.Config {
					cfg := core.DefaultConfig()
					cfg.ROBSize = rob
					return cfg
				}
				opt := func() core.Config {
					cfg := base()
					cfg.SMB.Enabled = true
					if n > 0 {
						cfg.Tracker = core.TrackerConfig{Kind: core.TrackerISRB, Entries: n, CounterBits: 3}
					}
					return cfg
				}
				row = append(row, stats.Pct(speedup(base, opt)))
			}
			t.AddRow(row...)
		}
		fmt.Println(t)
	case "stlf":
		t := stats.NewTable("SMB speedup vs store-to-load forwarding latency (§3's motivation)",
			"STLF cycles", "SMB speedup")
		for _, lat := range []uint64{1, 2, 4, 8} {
			lat := lat
			base := func() core.Config {
				cfg := core.DefaultConfig()
				cfg.STLFLatency = lat
				return cfg
			}
			opt := func() core.Config {
				cfg := base()
				cfg.SMB.Enabled = true
				return cfg
			}
			t.AddRow(fmt.Sprint(lat), stats.Pct(speedup(base, opt)))
		}
		fmt.Println(t)
	default:
		fmt.Fprintf(os.Stderr, "unknown sweep kind %q\n", *kind)
		os.Exit(1)
	}
}
