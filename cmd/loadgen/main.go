// Command loadgen replays concurrent synthetic sweep clients against a
// regshared service and reports the saturation curve: offered load vs
// p50/p99 latency vs delivered simulated cycles per second. It is the
// load-test harness behind the table in docs/BENCH.md.
//
// Each offered-load point spawns N clients. Every client identifies
// itself with an X-Client header (admission fairness is per client),
// then replays a small synthetic sweep — -grid distinct machine
// configurations of -bench — in a loop against POST /v1/run until
// -duration elapses. 429 rejections honor the service's Retry-After
// hint. After the last point, the service's GET /metrics snapshot is
// fetched and summarized.
//
// -bulk B switches the wire from POST /v1/run to the batch endpoint:
// each loop iteration sends B sweep cells as one POST /v1/runs call.
// Accounting stays per item — every cell in a batch counts ok,
// rejected or failed individually (in-band per-item 429s are how the
// admission gate sheds bulk load), so the ok/rejected/failed columns
// compare directly against the per-request curve; only the wire
// round-trip count changes.
//
// Usage:
//
//	loadgen -url http://localhost:8347 -points 1,2,4,8,16 -duration 5s
//	loadgen -url http://localhost:8347 -points 1,2,4 -duration 5s -bulk 8
//	loadgen -url http://localhost:8347 -points 4 -duration 2s -check
//	loadgen -store s3://simstore/grid -s3-endpoint http://127.0.0.1:9000 -points 1,4 -duration 2s
//
// -store switches loadgen from driving a regshared service to driving
// the storage tier itself: each client loops PutIfAbsent + Get
// round-trips over a shared synthetic working set, the saturation
// table reports op throughput and latency, and the summary line prints
// the backend's tier counters (gets/puts/local hits/remote bytes).
//
// -check turns the run into a smoke test: any transport/5xx-class
// failure, or a malformed /metrics snapshot, exits nonzero (429s are
// expected backpressure, not failures).
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/objstore"
	"repro/internal/sim"
)

func main() {
	var (
		url      = flag.String("url", "http://localhost:8347", "regshared service URL")
		points   = flag.String("points", "1,2,4,8", "comma-separated offered-load points (concurrent clients)")
		duration = flag.Duration("duration", 5*time.Second, "how long to drive each point")
		bench    = flag.String("bench", "crafty", "benchmark each synthetic sweep runs")
		warmup   = flag.Uint64("warmup", 200, "warmup µops per request")
		measure  = flag.Uint64("measure", 20000, "measured µops per request")
		grid     = flag.Int("grid", 8, "distinct sweep cells (ROB sizes) per client loop")
		bulk     = flag.Int("bulk", 0, "cells per POST /v1/runs batch (0 or 1: per-request POST /v1/run)")
		check    = flag.Bool("check", false, "smoke mode: exit 1 on any failure or malformed /metrics snapshot")
	)
	rf := cliflags.RegisterRunnerFlags(flag.CommandLine, cliflags.WithoutBackend())
	flag.Parse()

	if rf.PrintVersion(os.Stdout) {
		return
	}
	clients, err := parsePoints(*points)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}

	if spec, err := rf.Store.Spec(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	} else if spec != "" {
		os.Exit(runStoreLoad(spec, rf.Store.Options(), clients, *duration, *grid, *check))
	}

	reqs := buildSweep(*bench, *warmup, *measure, *grid)

	ctx := sim.SignalContext()
	var rows []row
	for _, c := range clients {
		r := runPoint(ctx, *url, c, *duration, reqs, *bulk)
		rows = append(rows, r)
		if ctx.Err() != nil {
			break
		}
	}
	printTable(os.Stdout, rows)

	snapErr := summarizeMetrics(ctx, *url)
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "loadgen: interrupted")
		os.Exit(130)
	}

	failed := 0
	for _, r := range rows {
		failed += r.failed
	}
	if *check {
		switch {
		case failed > 0:
			fmt.Fprintf(os.Stderr, "loadgen: smoke check FAILED: %d request failures (429 rejections excluded)\n", failed)
			os.Exit(1)
		case snapErr != nil:
			fmt.Fprintf(os.Stderr, "loadgen: smoke check FAILED: /metrics snapshot: %v\n", snapErr)
			os.Exit(1)
		}
		fmt.Println("loadgen: smoke check passed: zero failures, well-formed /metrics snapshot")
	} else if snapErr != nil {
		fmt.Fprintln(os.Stderr, "loadgen: /metrics:", snapErr)
	}
}

// runStoreLoad is the storage-tier load mode (-store): instead of
// driving a regshared service, the clients hammer the store backend
// itself — PutIfAbsent + Get round-trips over a synthetic
// content-addressed working set — and the summary reports the
// backend's tier counters. The saturation table's columns keep their
// meaning (ok = verified round-trips; the cycles column is zero:
// nothing simulates). Returns the process exit code.
func runStoreLoad(spec string, opts []objstore.Option, clients []int, d time.Duration, grid int, check bool) int {
	b, err := objstore.New(spec, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 1
	}
	defer b.Close()
	if grid < 1 {
		grid = 1
	}
	ctx := sim.SignalContext()
	fmt.Printf("storage-tier load against %s\n", b.String())
	var rows []row
	for _, c := range clients {
		r := runStorePoint(ctx, b, c, d, grid)
		rows = append(rows, r)
		if ctx.Err() != nil {
			break
		}
	}
	printTable(os.Stdout, rows)
	st := b.Stats()
	fmt.Printf("store: %d gets (%d local hits, %d remote, %d remote bytes), %d puts, %d lists\n",
		st.Gets, st.LocalHits, st.RemoteGets, st.RemoteBytes, st.Puts, st.Lists)
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "loadgen: interrupted")
		return 130
	}
	failed := 0
	for _, r := range rows {
		failed += r.failed
	}
	if check {
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "loadgen: store smoke check FAILED: %d op failures\n", failed)
			return 1
		}
		fmt.Println("loadgen: store smoke check passed: zero failures")
	}
	return 0
}

// runStorePoint drives one offered-load point against the backend: c
// concurrent clients looping over a per-client working set of grid
// entries. Each iteration is one PutIfAbsent + Get pair whose payload
// is derived from the entry name, so a read must round-trip
// byte-identically no matter which client stored it first.
func runStorePoint(ctx context.Context, b objstore.Backend, c int, d time.Duration, grid int) row {
	results := make([]clientResult, c)
	start := time.Now()
	deadline := start.Add(d)
	var wg sync.WaitGroup
	for id := range c {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cr := &results[id]
			for i := 0; time.Now().Before(deadline) && ctx.Err() == nil; i++ {
				// Shared working set: every client cycles the same grid
				// names, so concurrent PutIfAbsent calls race on purpose.
				seed := fmt.Sprintf("loadgen-store-%d", i%grid)
				sum := sha256.Sum256([]byte(seed))
				name := hex.EncodeToString(sum[:])
				payload := []byte("loadgen store payload for " + seed)
				t0 := time.Now()
				_, err := b.PutIfAbsent(ctx, name, payload)
				var got []byte
				if err == nil {
					got, err = b.Get(ctx, name)
				}
				lat := time.Since(t0)
				switch {
				case ctx.Err() != nil:
					return
				case err != nil:
					cr.failed++
					if cr.firstErr == nil {
						cr.firstErr = err
					}
				case !bytes.Equal(got, payload):
					cr.failed++
					if cr.firstErr == nil {
						cr.firstErr = fmt.Errorf("entry %s round-tripped %d bytes, want %d", name, len(got), len(payload))
					}
				default:
					cr.ok++
					cr.lats = append(cr.lats, lat)
				}
			}
		}(id)
	}
	wg.Wait()

	r := row{clients: c, elapsed: time.Since(start)}
	var lats []time.Duration
	for i := range results {
		cr := &results[i]
		r.ok += cr.ok
		r.failed += cr.failed
		r.cycles += cr.cycles
		lats = append(lats, cr.lats...)
		if r.firstErr == nil {
			r.firstErr = cr.firstErr
		}
	}
	r.attempted = r.ok + r.failed
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	r.p50 = quantile(lats, 0.50)
	r.p99 = quantile(lats, 0.99)
	if r.firstErr != nil {
		fmt.Fprintf(os.Stderr, "loadgen: store point %d: %d failures, first: %v\n", c, r.failed, r.firstErr)
	}
	return r
}

// parsePoints parses the -points list.
func parsePoints(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -points entry %q: want positive integers", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// buildSweep builds the synthetic sweep every client replays: n
// distinct cells varying the ROB size around the paper's core, each a
// different dedup/store key so the service sees a realistic mix of
// simulations and (once warm) shared-store hits.
func buildSweep(bench string, warmup, measure uint64, n int) []sim.Request {
	if n < 1 {
		n = 1
	}
	reqs := make([]sim.Request, n)
	for i := range n {
		cfg := core.DefaultConfig()
		cfg.ME.Enabled = true
		cfg.ROBSize = 96 + 16*i
		reqs[i] = sim.Request{Bench: bench, Config: cfg, Warmup: warmup, Measure: measure}
	}
	return reqs
}

// row is one offered-load point's aggregate.
type row struct {
	clients   int
	bulk      int
	elapsed   time.Duration
	attempted int
	ok        int
	rejected  int
	failed    int
	cycles    uint64
	p50, p99  time.Duration
	firstErr  error
}

// clientResult is one client's per-item tally for a point.
type clientResult struct {
	ok, rejected, failed int
	cycles               uint64
	lats                 []time.Duration
	firstErr             error
}

// runPoint drives one offered-load point: c concurrent clients looping
// over the sweep for d, each iteration one POST /v1/run — or, with
// bulk > 1, one POST /v1/runs carrying bulk cells.
func runPoint(ctx context.Context, url string, c int, d time.Duration, reqs []sim.Request, bulk int) row {
	results := make([]clientResult, c)
	start := time.Now()
	deadline := start.Add(d)
	var wg sync.WaitGroup
	for id := range c {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := dispatch.NewHTTP(url)
			h.SetClientID(fmt.Sprintf("loadgen-%d", id))
			defer h.Close()
			cr := &results[id]
			for i := id; time.Now().Before(deadline) && ctx.Err() == nil; {
				if bulk > 1 {
					chunk := make([]sim.Request, bulk)
					for j := range bulk {
						chunk[j] = reqs[(i+j)%len(reqs)]
					}
					i += bulk
					if !runBatch(ctx, h, chunk, cr) {
						return
					}
					continue
				}
				req := reqs[i%len(reqs)]
				i++
				t0 := time.Now()
				res, err := h.Execute(ctx, req)
				lat := time.Since(t0)
				switch {
				case err == nil:
					cr.ok++
					cr.cycles += res.S.Cycles
					cr.lats = append(cr.lats, lat)
				case errors.Is(err, dispatch.ErrOverloaded):
					cr.rejected++
					sleepCtx(ctx, overloadBackoff(err))
				case errors.Is(err, sim.ErrCanceled):
					return
				default:
					cr.failed++
					if cr.firstErr == nil {
						cr.firstErr = err
					}
				}
			}
		}(id)
	}
	wg.Wait()

	r := row{clients: c, bulk: bulk, elapsed: time.Since(start)}
	var lats []time.Duration
	for i := range results {
		cr := &results[i]
		r.ok += cr.ok
		r.rejected += cr.rejected
		r.failed += cr.failed
		r.cycles += cr.cycles
		lats = append(lats, cr.lats...)
		if r.firstErr == nil {
			r.firstErr = cr.firstErr
		}
	}
	r.attempted = r.ok + r.rejected + r.failed
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	r.p50 = quantile(lats, 0.50)
	r.p99 = quantile(lats, 0.99)
	if r.firstErr != nil {
		fmt.Fprintf(os.Stderr, "loadgen: point %d: %d failures, first: %v\n", c, r.failed, r.firstErr)
	}
	return r
}

// runBatch sends one bulk batch and books every item individually, so
// the curve's ok/rejected/failed columns mean the same thing they mean
// per-request. Each item is charged the batch's wall latency — the
// latency a caller of that cell actually observed. Returns false when
// the run is canceled.
func runBatch(ctx context.Context, h *dispatch.HTTP, chunk []sim.Request, cr *clientResult) bool {
	t0 := time.Now()
	items, err := h.ExecuteBatch(ctx, chunk)
	lat := time.Since(t0)
	if err != nil {
		if errors.Is(err, sim.ErrCanceled) {
			return false
		}
		// A whole-batch transport failure failed every cell in it.
		cr.failed += len(chunk)
		if cr.firstErr == nil {
			cr.firstErr = err
		}
		return true
	}
	backoff := time.Duration(0)
	for _, it := range items {
		switch {
		case it.Err == nil:
			cr.ok++
			cr.cycles += it.Res.S.Cycles
			cr.lats = append(cr.lats, lat)
		case errors.Is(it.Err, dispatch.ErrOverloaded):
			cr.rejected++
			backoff = max(backoff, overloadBackoff(it.Err))
		case errors.Is(it.Err, sim.ErrCanceled):
			return false
		default:
			cr.failed++
			if cr.firstErr == nil {
				cr.firstErr = it.Err
			}
		}
	}
	// One backoff per batch, sized by the worst per-item hint: the
	// shed items all came from the same gate snapshot.
	if backoff > 0 {
		sleepCtx(ctx, backoff)
	}
	return true
}

// overloadBackoff sizes the 429 backoff from the error's Retry-After
// hint, capped at a second so short smoke runs still make progress.
func overloadBackoff(err error) time.Duration {
	backoff := 100 * time.Millisecond
	if ra, ok := dispatch.RetryAfter(err); ok {
		backoff = min(ra, time.Second)
	}
	return backoff
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// quantile picks q from sorted latencies.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// printTable renders the saturation table (markdown, which reads fine
// raw and pastes straight into docs/BENCH.md).
func printTable(w *os.File, rows []row) {
	fmt.Fprintln(w, "| clients | bulk | offered cells/s | ok cells/s | rejected/s | p50 ms | p99 ms | delivered Mcycles/s |")
	fmt.Fprintln(w, "|---:|---:|---:|---:|---:|---:|---:|---:|")
	for _, r := range rows {
		secs := r.elapsed.Seconds()
		if secs <= 0 {
			secs = 1e-9
		}
		mode := "-"
		if r.bulk > 1 {
			mode = strconv.Itoa(r.bulk)
		}
		fmt.Fprintf(w, "| %d | %s | %.1f | %.1f | %.1f | %.2f | %.2f | %.2f |\n",
			r.clients,
			mode,
			float64(r.attempted)/secs,
			float64(r.ok)/secs,
			float64(r.rejected)/secs,
			float64(r.p50)/float64(time.Millisecond),
			float64(r.p99)/float64(time.Millisecond),
			float64(r.cycles)/secs/1e6)
	}
}

// summarizeMetrics fetches and sanity-checks the service's /metrics
// snapshot, printing a one-line summary. The returned error is the
// smoke-mode verdict on the snapshot's shape.
func summarizeMetrics(ctx context.Context, url string) error {
	h := dispatch.NewHTTP(url)
	defer h.Close()
	snap, err := h.Metrics(ctx)
	if err != nil {
		return err
	}
	switch {
	case snap.Accepted == 0:
		return errors.New("snapshot reports zero accepted requests after a load run")
	case snap.NowNS < snap.StartedNS:
		return fmt.Errorf("snapshot clock went backwards: started %d, now %d", snap.StartedNS, snap.NowNS)
	case snap.Completed+snap.Errors+snap.Rejected > snap.Accepted:
		return fmt.Errorf("snapshot counters inconsistent: completed %d + errors %d + rejected %d > accepted %d",
			snap.Completed, snap.Errors, snap.Rejected, snap.Accepted)
	case snap.HitRate < 0 || snap.HitRate > 1:
		return fmt.Errorf("snapshot hit rate %v outside [0,1]", snap.HitRate)
	case len(snap.Endpoints) == 0:
		return errors.New("snapshot has no per-endpoint aggregates after a load run")
	}
	fmt.Printf("service: accepted %d (ok %d, rejected %d, errors %d), in-flight %d, queue %d, hit rate %.2f, %.2f Mcycles/s delivered lifetime\n",
		snap.Accepted, snap.Completed, snap.Rejected, snap.Errors,
		snap.InFlight, snap.QueueDepth, snap.HitRate, snap.CyclesPerSec/1e6)
	return nil
}
