package regshare

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one Benchmark* per experiment) and reports the headline
// number of each as a custom metric. Absolute IPCs are not expected to
// match the paper (different substrate, synthetic workloads); the shapes
// are the reproduction target and are asserted by the test suite in
// internal/experiments.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// All simulations flow through the shared internal/sim runner (via the
// experiments session and regshare.RunContext), which deduplicates and
// caches results, so repeated benchmark iterations after the first are
// nearly free.

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/refcount"
	"repro/internal/regfile"
	"repro/internal/smb"
	"repro/internal/tage"
	"repro/internal/workloads"
)

var (
	sessOnce sync.Once
	sess     *experiments.Session
)

func session() *experiments.Session {
	sessOnce.Do(func() {
		sess = experiments.NewSession(experiments.QuickRunLengths)
	})
	return sess
}

func reportGMean(b *testing.B, series []experiments.Series) {
	for _, s := range series {
		b.ReportMetric((s.GMean-1)*100, s.Name+"_gmean_%")
	}
}

// BenchmarkTable1Config renders the configuration table.
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Table1().String()
	}
}

// BenchmarkFig4Baseline regenerates Figure 4 (baseline IPC, traps, false
// dependencies across the 36 benchmarks).
func BenchmarkFig4Baseline(b *testing.B) {
	s := session()
	for i := 0; i < b.N; i++ {
		_ = s.Fig4()
	}
	res := s.Baseline()
	var ipcs []float64
	for _, r := range res {
		ipcs = append(ipcs, r.IPC)
	}
	sum := 0.0
	for _, v := range ipcs {
		sum += v
	}
	b.ReportMetric(sum/float64(len(ipcs)), "mean_IPC")
}

// BenchmarkFig5aMoveElim regenerates Figure 5a (ME speedup vs ISRB size).
func BenchmarkFig5aMoveElim(b *testing.B) {
	s := session()
	var series []experiments.Series
	for i := 0; i < b.N; i++ {
		_, series = s.Fig5a()
	}
	reportGMean(b, series)
}

// BenchmarkFig5bElimRate regenerates Figure 5b (% µops eliminated).
func BenchmarkFig5bElimRate(b *testing.B) {
	s := session()
	var rates map[string]float64
	for i := 0; i < b.N; i++ {
		_, rates = s.Fig5b()
	}
	sum := 0.0
	for _, v := range rates {
		sum += v
	}
	b.ReportMetric(100*sum/float64(len(rates)), "mean_elim_%")
}

// BenchmarkFig6aSMB regenerates Figure 6a (SMB speedup vs ISRB size and
// distance predictor flavour).
func BenchmarkFig6aSMB(b *testing.B) {
	s := session()
	var series []experiments.Series
	for i := 0; i < b.N; i++ {
		_, series = s.Fig6a()
	}
	reportGMean(b, series)
}

// BenchmarkFig6bTrapReduction regenerates Figure 6b.
func BenchmarkFig6bTrapReduction(b *testing.B) {
	s := session()
	for i := 0; i < b.N; i++ {
		_ = s.Fig6b()
	}
}

// BenchmarkFig6cLazyReclaim regenerates Figure 6c (eager vs lazy reclaim).
func BenchmarkFig6cLazyReclaim(b *testing.B) {
	s := session()
	var series []experiments.Series
	for i := 0; i < b.N; i++ {
		_, series = s.Fig6c()
	}
	reportGMean(b, series)
}

// BenchmarkFig7Combined regenerates Figure 7 (ME+SMB vs ISRB size).
func BenchmarkFig7Combined(b *testing.B) {
	s := session()
	var series []experiments.Series
	for i := 0; i < b.N; i++ {
		_, series = s.Fig7()
	}
	reportGMean(b, series)
}

// BenchmarkDDTSizing regenerates the §3.1 DDT capacity study.
func BenchmarkDDTSizing(b *testing.B) {
	s := session()
	var series []experiments.Series
	for i := 0; i < b.N; i++ {
		_, series = s.DDTSizing()
	}
	reportGMean(b, series)
}

// BenchmarkStoreOnlySMB regenerates the §6.2 store-only ablation.
func BenchmarkStoreOnlySMB(b *testing.B) {
	s := session()
	var series []experiments.Series
	for i := 0; i < b.N; i++ {
		_, series = s.StoreOnly()
	}
	reportGMean(b, series)
}

// BenchmarkCounterWidth regenerates the §6.3 counter-width study.
func BenchmarkCounterWidth(b *testing.B) {
	s := session()
	var gmeans map[int]float64
	for i := 0; i < b.N; i++ {
		_, gmeans = s.CounterWidth()
	}
	b.ReportMetric((gmeans[3]-1)*100, "3bit_gmean_%")
	b.ReportMetric((gmeans[0]-1)*100, "unlimited_gmean_%")
}

// BenchmarkISRBTraffic regenerates the §6.3 port-pressure statistics.
func BenchmarkISRBTraffic(b *testing.B) {
	s := session()
	for i := 0; i < b.N; i++ {
		_ = s.ISRBTraffic()
	}
}

// BenchmarkStorageTable regenerates the storage accounting (§4.2/§4.3.3).
func BenchmarkStorageTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.StorageTable().String()
	}
}

// --- ablation benches beyond the paper (DESIGN.md §4) ------------------

// BenchmarkAblationRecoveryScheme compares checkpointed ISRB recovery
// against per-register counters' sequential rollback on a branchy
// workload.
func BenchmarkAblationRecoveryScheme(b *testing.B) {
	run := func(kind core.TrackerKind) float64 {
		cfg := Combined(0)
		cfg.Tracker = core.TrackerConfig{Kind: kind, Entries: 64, CounterBits: 8}
		r, err := RunContext(context.Background(), RunSpec{Benchmark: "gobmk", Config: cfg, Warmup: 5000, Measure: 40000})
		if err != nil {
			b.Fatal(err)
		}
		return r.Stats.IPC()
	}
	var isrb, counters float64
	for i := 0; i < b.N; i++ {
		isrb = run(core.TrackerISRB)
		counters = run(core.TrackerCounters)
	}
	b.ReportMetric(isrb, "isrb_IPC")
	b.ReportMetric(counters, "seqwalk_IPC")
}

// BenchmarkAblationReclaimFlag measures the §4.3.4 reclaim-flag filter:
// the fraction of commits that skip the ISRB CAM.
func BenchmarkAblationReclaimFlag(b *testing.B) {
	var skipped, checks uint64
	for i := 0; i < b.N; i++ {
		cfg := Combined(32)
		r, err := RunContext(context.Background(), RunSpec{Benchmark: "hmmer", Config: cfg, Warmup: 5000, Measure: 40000})
		if err != nil {
			b.Fatal(err)
		}
		skipped = r.Stats.ReclaimSkippedByFlag
		checks = r.Stats.ReclaimChecks
	}
	b.ReportMetric(100*float64(skipped)/float64(skipped+checks), "cam_skipped_%")
}

// BenchmarkAblationPrefetcher measures the stride prefetcher's effect on a
// streaming benchmark (substrate validation).
func BenchmarkAblationPrefetcher(b *testing.B) {
	var on, off float64
	for i := 0; i < b.N; i++ {
		cfg := Baseline()
		results, err := StreamSpecs(context.Background(), []RunSpec{
			{Benchmark: "libquantum", Config: cfg, Warmup: 5000, Measure: 30000},
			{Benchmark: "libquantum", Config: func() Config {
				c := cfg
				c.Mem.PrefEnable = false
				return c
			}(), Warmup: 5000, Measure: 30000},
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		on = results[0].Stats.IPC()
		off = results[1].Stats.IPC()
	}
	b.ReportMetric(on, "prefetch_on_IPC")
	b.ReportMetric(off, "prefetch_off_IPC")
}

// --- microbenchmarks of the core data structures ------------------------

// BenchmarkSimulatorThroughput measures raw simulation speed.
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec, _ := workloads.Resolve("crafty")
	prog := workloads.Build(spec)
	c := core.New(Combined(32), prog)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Cycle()
	}
}

// BenchmarkISRBTrySharePlusReclaim measures the hot tracker path.
func BenchmarkISRBTrySharePlusReclaim(b *testing.B) {
	isrb := refcount.NewISRB(32, 3)
	p := regfile.MakePhys(isa.IntReg, 42)
	for i := 0; i < b.N; i++ {
		isrb.TryShare(p, refcount.KindSMB, isa.IntR(1), isa.NoReg)
		isrb.OnCommitOverwrite(p, isa.IntR(0))
		isrb.OnCommitOverwrite(p, isa.IntR(1))
	}
}

// BenchmarkISRBCheckpointRestore measures checkpoint capture + restore.
func BenchmarkISRBCheckpointRestore(b *testing.B) {
	isrb := refcount.NewISRB(32, 3)
	for i := 0; i < 16; i++ {
		isrb.TryShare(regfile.MakePhys(isa.IntReg, i), refcount.KindSMB, isa.IntR(1), isa.NoReg)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := isrb.Checkpoint()
		isrb.Restore(s)
	}
}

// BenchmarkTAGEBranchPredict measures the front-end predictor.
func BenchmarkTAGEBranchPredict(b *testing.B) {
	p := tage.NewBranchPredictor(tage.DefaultBranchConfig())
	var h tage.History
	for i := 0; i < b.N; i++ {
		pc := uint64(0x1000 + (i%64)*4)
		pr := p.Predict(pc, &h)
		taken := i%3 == 0
		p.Update(pc, &pr, taken)
		h.Push(taken, pc)
	}
}

// BenchmarkDistancePredict measures the SMB distance predictor.
func BenchmarkDistancePredict(b *testing.B) {
	p := smb.NewTAGEDistance()
	var h tage.History
	for i := 0; i < b.N; i++ {
		pc := uint64(0x2000 + (i%32)*4)
		p.Train(pc, &h, uint16(7+(i%4)))
		p.Predict(pc, &h)
	}
}

// BenchmarkWorkloadGeneration measures program construction.
func BenchmarkWorkloadGeneration(b *testing.B) {
	spec, _ := workloads.Resolve("gcc")
	for i := 0; i < b.N; i++ {
		_ = workloads.Build(spec)
	}
}

// BenchmarkFunctionalExecution measures the trace generator.
func BenchmarkFunctionalExecution(b *testing.B) {
	spec, _ := workloads.Resolve("gcc")
	prog := workloads.Build(spec)
	e := program.NewExecutor(prog)
	var u isa.Uop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Next(&u)
	}
}

// BenchmarkExtROB512Lazy regenerates the §6.2 ROB-512 lazy-reclaim check.
func BenchmarkExtROB512Lazy(b *testing.B) {
	s := session()
	var gmeans map[string]float64
	for i := 0; i < b.N; i++ {
		_, gmeans = s.ROB512Lazy()
	}
	b.ReportMetric((gmeans["rob512-lazy"]-1)*100, "rob512_lazy_gmean_%")
	b.ReportMetric((gmeans["rob512-eager"]-1)*100, "rob512_eager_gmean_%")
}

// BenchmarkExtSingleBitME regenerates §6.3 footnote 10.
func BenchmarkExtSingleBitME(b *testing.B) {
	s := session()
	var gmeans map[int]float64
	for i := 0; i < b.N; i++ {
		_, gmeans = s.SingleBitME()
	}
	b.ReportMetric((gmeans[1]-1)*100, "1bit_gmean_%")
}

// BenchmarkExtDistanceHistory sweeps the distance predictor geometry.
func BenchmarkExtDistanceHistory(b *testing.B) {
	s := session()
	var gmeans map[string]float64
	for i := 0; i < b.N; i++ {
		_, gmeans = s.DistanceHistorySweep()
	}
	b.ReportMetric((gmeans["paper-2..64"]-1)*100, "paper_geom_gmean_%")
	b.ReportMetric((gmeans["pc-only"]-1)*100, "pconly_gmean_%")
}

// BenchmarkExtTrackerComparison quantifies §4.2's scheme comparison.
func BenchmarkExtTrackerComparison(b *testing.B) {
	s := session()
	var gmeans map[string]float64
	for i := 0; i < b.N; i++ {
		_, gmeans = s.TrackerComparison()
	}
	b.ReportMetric((gmeans["ISRB-32x3b"]-1)*100, "isrb_gmean_%")
	b.ReportMetric((gmeans["MIT-16"]-1)*100, "mit_gmean_%")
	b.ReportMetric((gmeans["counters"]-1)*100, "counters_gmean_%")
}
