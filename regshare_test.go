package regshare

import "testing"

func TestQuickstartAPI(t *testing.T) {
	r, err := Run(RunSpec{Benchmark: "crafty", Config: Baseline(), Warmup: 2000, Measure: 15000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Committed < 15000 || r.Stats.IPC() <= 0 {
		t.Fatalf("bad result: committed=%d ipc=%v", r.Stats.Committed, r.Stats.IPC())
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if _, err := Run(RunSpec{Benchmark: "nope", Config: Baseline()}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestConfigBuilders(t *testing.T) {
	if !WithME(16).ME.Enabled {
		t.Fatal("WithME did not enable ME")
	}
	if !WithSMB(24).SMB.Enabled {
		t.Fatal("WithSMB did not enable SMB")
	}
	c := Combined(32)
	if !c.ME.Enabled || !c.SMB.Enabled {
		t.Fatal("Combined missing a mechanism")
	}
	if !WithLazyReclaim(c).SMB.BypassCommitted {
		t.Fatal("WithLazyReclaim did not set BypassCommitted")
	}
	if StoreOnly(c).SMB.LoadLoad {
		t.Fatal("StoreOnly left load-load on")
	}
	if UseRealisticDDT(c).SMB.DDT.Entries != 1024 {
		t.Fatal("UseRealisticDDT wrong size")
	}
	if UseLargeDDT(c).SMB.DDT.Entries != 16384 {
		t.Fatal("UseLargeDDT wrong size")
	}
}

func TestBenchmarkLists(t *testing.T) {
	if len(Benchmarks()) != 36 {
		t.Fatalf("benchmarks = %d, want 36", len(Benchmarks()))
	}
	if len(IntBenchmarks())+len(FPBenchmarks()) != 36 {
		t.Fatal("suite split broken")
	}
}
