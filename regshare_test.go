package regshare

import (
	"context"
	"errors"
	"testing"
)

func TestQuickstartAPI(t *testing.T) {
	r, err := Run(RunSpec{Benchmark: "crafty", Config: Baseline(), Warmup: 2000, Measure: 15000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Committed < 15000 || r.Stats.IPC() <= 0 {
		t.Fatalf("bad result: committed=%d ipc=%v", r.Stats.Committed, r.Stats.IPC())
	}
	// Run is a shim over RunContext: the same spec through the explicit
	// entry point is the same memoized record.
	r2, err := RunContext(context.Background(), RunSpec{Benchmark: "crafty", Config: Baseline(), Warmup: 2000, Measure: 15000})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Detail != r.Detail {
		t.Fatal("RunContext did not share the shim's memoized record")
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	_, err := Run(RunSpec{Benchmark: "nope", Config: Baseline()})
	if !errors.Is(err, ErrUnknownBenchmark) {
		t.Fatalf("err = %v, want ErrUnknownBenchmark", err)
	}
}

func TestRunContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, RunSpec{Benchmark: "gzip", Config: Baseline(), Warmup: 100, Measure: 5000})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
}

func TestStreamSpecs(t *testing.T) {
	specs := []RunSpec{
		{Benchmark: "crafty", Config: Baseline(), Warmup: 500, Measure: 6000},
		{Benchmark: "crafty", Config: WithME(16), Warmup: 500, Measure: 6000},
		{Benchmark: "nope", Config: Baseline(), Warmup: 500, Measure: 6000},
	}
	events := 0
	results, err := StreamSpecs(context.Background(), specs, func(ev Event) { events++ })
	if !errors.Is(err, ErrUnknownBenchmark) {
		t.Fatalf("err = %v, want ErrUnknownBenchmark for the bad spec", err)
	}
	if events != len(specs) {
		t.Fatalf("got %d events, want %d", events, len(specs))
	}
	if results[0] == nil || results[1] == nil || results[2] != nil {
		t.Fatalf("results = %v: good specs must settle, the bad one must be nil", results)
	}
	if results[0].Stats.IPC() <= 0 || results[1].Benchmark != "crafty" {
		t.Fatal("streamed results malformed")
	}
}

func TestConfigBuilders(t *testing.T) {
	if !WithME(16).ME.Enabled {
		t.Fatal("WithME did not enable ME")
	}
	if !WithSMB(24).SMB.Enabled {
		t.Fatal("WithSMB did not enable SMB")
	}
	c := Combined(32)
	if !c.ME.Enabled || !c.SMB.Enabled {
		t.Fatal("Combined missing a mechanism")
	}
	if !WithLazyReclaim(c).SMB.BypassCommitted {
		t.Fatal("WithLazyReclaim did not set BypassCommitted")
	}
	if StoreOnly(c).SMB.LoadLoad {
		t.Fatal("StoreOnly left load-load on")
	}
	if UseRealisticDDT(c).SMB.DDT.Entries != 1024 {
		t.Fatal("UseRealisticDDT wrong size")
	}
	if UseLargeDDT(c).SMB.DDT.Entries != 16384 {
		t.Fatal("UseLargeDDT wrong size")
	}
}

func TestBenchmarkLists(t *testing.T) {
	if len(Benchmarks()) != 36 {
		t.Fatalf("benchmarks = %d, want 36", len(Benchmarks()))
	}
	if len(IntBenchmarks())+len(FPBenchmarks()) != 36 {
		t.Fatal("suite split broken")
	}
}
