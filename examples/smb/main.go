// Speculative Memory Bypassing walkthrough (paper §3, Figure 6): run the
// spill/reload-heavy hmmer analogue under SMB with both Instruction
// Distance predictors, show the trap/false-dependence reductions of
// Figure 6b, and the store-only ablation of §6.2.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	regshare "repro"
)

var short = flag.Bool("short", false, "run much shorter simulations (CI smoke mode)")

func run(ctx context.Context, bench string, cfg regshare.Config) *regshare.Result {
	// Warmup 1, not 0: effectively no warmup, so the one-time dependence
	// training events stay visible (the runner treats 0 as "use the
	// 50k default").
	spec := regshare.RunSpec{
		Benchmark: bench, Config: cfg,
		Warmup: 1, Measure: 200_000,
	}
	if *short {
		spec.Measure = 30_000
	}
	r, err := regshare.RunContext(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	const bench = "hmmer"
	base := run(ctx, bench, regshare.Baseline())
	fmt.Printf("%s baseline:  IPC %.3f, %d memory traps, %d false dependencies\n",
		bench, base.Stats.IPC(), base.Stats.MemTraps, base.Stats.FalseDeps)

	tage := run(ctx, bench, regshare.WithSMB(24))
	fmt.Printf("SMB (TAGE-like distance predictor, 24-entry ISRB):\n")
	fmt.Printf("  IPC %.3f (%+.1f%%), bypassed %.1f%% of loads\n",
		tage.Stats.IPC(), 100*(tage.Stats.IPC()/base.Stats.IPC()-1), 100*tage.Stats.BypassRate())
	fmt.Printf("  traps %d -> %d, false deps %d -> %d, traps avoided by re-validation: %d\n",
		base.Stats.MemTraps, tage.Stats.MemTraps,
		base.Stats.FalseDeps, tage.Stats.FalseDeps, tage.Stats.TrapsAvoidedSMB)

	nosq := run(ctx, bench, regshare.UseNoSQPredictor(regshare.WithSMB(24)))
	fmt.Printf("SMB (NoSQ-style 2-table predictor): IPC %.3f (%+.1f%%), bypassed %.1f%%\n",
		nosq.Stats.IPC(), 100*(nosq.Stats.IPC()/base.Stats.IPC()-1), 100*nosq.Stats.BypassRate())

	so := run(ctx, bench, regshare.StoreOnly(regshare.WithSMB(24)))
	fmt.Printf("SMB store-load only (no load-load): IPC %.3f (%+.1f%%), bypassed %.1f%%\n",
		so.Stats.IPC(), 100*(so.Stats.IPC()/base.Stats.IPC()-1), 100*so.Stats.BypassRate())

	lazy := run(ctx, bench, regshare.WithLazyReclaim(regshare.WithSMB(24)))
	fmt.Printf("SMB + lazy reclaim (bypass from committed): IPC %.3f, %d bypasses from committed producers\n",
		lazy.Stats.IPC(), lazy.Stats.BypassedFromCommitted)
}
