// Quickstart: run one benchmark on the baseline machine and on the
// paper's headline configuration (ME + SMB over a 32-entry ISRB with
// 3-bit counters — 480 bits of tracking storage, §6.3), and print the
// speedup. The context-first API means ^C aborts the simulations
// mid-cycle-loop instead of killing the process.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	regshare "repro"
)

func main() {
	short := flag.Bool("short", false, "run much shorter simulations (CI smoke mode)")
	flag.Parse()
	var warmup, measure uint64
	if *short {
		warmup, measure = 5_000, 20_000
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	base, err := regshare.RunContext(ctx, regshare.RunSpec{
		Benchmark: "crafty",
		Config:    regshare.Baseline(),
		Warmup:    warmup,
		Measure:   measure,
	})
	if err != nil {
		log.Fatal(err)
	}

	opt, err := regshare.RunContext(ctx, regshare.RunSpec{
		Benchmark: "crafty",
		Config:    regshare.Combined(32),
		Warmup:    warmup,
		Measure:   measure,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("crafty baseline:         IPC %.3f\n", base.Stats.IPC())
	fmt.Printf("crafty ME+SMB (ISRB-32): IPC %.3f\n", opt.Stats.IPC())
	fmt.Printf("speedup:                 %+.1f%%\n", 100*(opt.Stats.IPC()/base.Stats.IPC()-1))
	fmt.Printf("moves eliminated:        %d\n", opt.Stats.CommittedEliminated)
	fmt.Printf("loads bypassed:          %d (%.1f%% of loads)\n",
		opt.Stats.CommittedBypassed, 100*opt.Stats.BypassRate())
}
