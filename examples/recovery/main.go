// Checkpoint recovery walkthrough: replays the paper's Figure 3 worked
// example directly against the ISRB — the dual up-counter scheme that
// makes register reference counting checkpointable — then contrasts the
// whole-machine recovery cost of the ISRB against per-register counters
// with sequential rollback (§4.2) on a branchy workload.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	regshare "repro"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/refcount"
	"repro/internal/regfile"
)

var short = flag.Bool("short", false, "run much shorter simulations (CI smoke mode)")

func main() {
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	figure3()
	machineComparison(ctx)
}

// figure3 narrates the paper's working example (§4.3.1).
func figure3() {
	fmt.Println("== Figure 3: dual-counter recovery, step by step ==")
	isrb := refcount.NewISRB(8, 3)
	p1 := regfile.MakePhys(isa.IntReg, 1)

	fmt.Println("sub1 allocates p1 for rax (allocation itself is not tracked)")

	isrb.TryShare(p1, refcount.KindSMB, isa.IntR(1), isa.NoReg)
	fmt.Println("load4 bypasses to p1 (rbx => p1): referenced=1")

	snap := isrb.Checkpoint()
	fmt.Println("jmp8 checkpoints the ISRB's referenced fields")

	isrb.TryShare(p1, refcount.KindSMB, isa.IntR(3), isa.NoReg)
	fmt.Println("load10 (wrong path) bypasses to p1 (rdx => p1): referenced=2")

	freed := isrb.OnCommitOverwrite(p1, isa.IntR(0))
	fmt.Printf("shl3 commits, overwriting rax=>p1: committed=1, freed=%v\n", freed)
	freed = isrb.OnCommitOverwrite(p1, isa.IntR(1))
	fmt.Printf("sub7 commits, overwriting rbx=>p1: committed=2, freed=%v\n", freed)

	fmt.Println("jmp8 was mispredicted -> restore the checkpoint:")
	recovered := isrb.Restore(snap)
	fmt.Printf("  restored referenced=1 < committed=2, so recovery frees %v\n", recovered)
	fmt.Printf("  p1 still tracked: %v (entry released during recovery)\n", isrb.IsShared(p1))
	fmt.Println()
}

// machineComparison runs the same branchy benchmark with the ISRB and with
// per-register counters (sequential rollback) to show the recovery cost.
func machineComparison(ctx context.Context) {
	fmt.Println("== Recovery scheme comparison on a mispredict-heavy workload ==")
	mk := func(kind core.TrackerKind) *regshare.Result {
		cfg := regshare.Combined(0)
		cfg.Tracker = core.TrackerConfig{Kind: kind, Entries: 64, CounterBits: 8}
		spec := regshare.RunSpec{Benchmark: "gobmk", Config: cfg}
		if *short {
			spec.Warmup, spec.Measure = 5_000, 20_000
		}
		r, err := regshare.RunContext(ctx, spec)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	isrb := mk(core.TrackerISRB)
	counters := mk(core.TrackerCounters)
	fmt.Printf("ISRB (checkpointable, 1-cycle restore): IPC %.3f, %6d recovery cycles\n",
		isrb.Stats.IPC(), isrb.Stats.RecoveryCycles)
	fmt.Printf("per-register counters (sequential walk): IPC %.3f, %6d recovery cycles\n",
		counters.Stats.IPC(), counters.Stats.RecoveryCycles)
	fmt.Printf("branch mispredictions: %d — every one pays the walk (§4.2)\n",
		counters.Stats.BranchMispredicts)
}
