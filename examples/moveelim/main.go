// Move Elimination walkthrough (paper §2, Figure 5): sweep the ISRB size
// on the move-heavy crafty analogue and on the move-rich-but-insensitive
// vortex analogue, showing that (a) a handful of entries suffice and
// (b) elimination *rate* does not imply *gain*.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	regshare "repro"
)

var short = flag.Bool("short", false, "run much shorter simulations (CI smoke mode)")

func spec(bench string, cfg regshare.Config) regshare.RunSpec {
	s := regshare.RunSpec{Benchmark: bench, Config: cfg}
	if *short {
		s.Warmup, s.Measure = 5_000, 20_000
	}
	return s
}

func run(ctx context.Context, bench string, cfg regshare.Config) *regshare.Result {
	r, err := regshare.RunContext(ctx, spec(bench, cfg))
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Warm the whole sweep through the streaming API: every (benchmark,
	// config) pair runs once, in parallel, and the per-run prints below
	// are then served from the runner's in-memory store.
	var specs []regshare.RunSpec
	benches := []string{"crafty", "vortex", "namd"}
	for _, bench := range benches {
		specs = append(specs, spec(bench, regshare.Baseline()))
		for _, entries := range []int{8, 16, 32, 0} {
			specs = append(specs, spec(bench, regshare.WithME(entries)))
		}
	}
	done := 0
	if _, err := regshare.StreamSpecs(ctx, specs, func(ev regshare.Event) {
		done++
		fmt.Fprintf(os.Stderr, "\rsimulating %d/%d", done, len(specs))
	}); err != nil {
		fmt.Fprintln(os.Stderr)
		log.Fatal(err)
	}
	fmt.Fprint(os.Stderr, "\r                      \r")

	for _, bench := range benches {
		base := run(ctx, bench, regshare.Baseline())
		fmt.Printf("%s: baseline IPC %.3f\n", bench, base.Stats.IPC())
		for _, entries := range []int{8, 16, 32, 0} {
			label := fmt.Sprintf("ISRB-%d", entries)
			if entries == 0 {
				label = "unlimited"
			}
			r := run(ctx, bench, regshare.WithME(entries))
			fmt.Printf("  ME %-10s IPC %.3f (%+.1f%%), eliminated %5.2f%% of µops\n",
				label, r.Stats.IPC(),
				100*(r.Stats.IPC()/base.Stats.IPC()-1),
				100*r.Stats.ElimRate())
		}
	}
	fmt.Println()
	fmt.Println("Note the §6.1 contrast: vortex eliminates the most moves but gains")
	fmt.Println("the least — its moves sit off the critical path — while crafty's")
	fmt.Println("on-chain moves make it the top gainer.")
}
