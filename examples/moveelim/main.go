// Move Elimination walkthrough (paper §2, Figure 5): sweep the ISRB size
// on the move-heavy crafty analogue and on the move-rich-but-insensitive
// vortex analogue, showing that (a) a handful of entries suffice and
// (b) elimination *rate* does not imply *gain*.
package main

import (
	"flag"
	"fmt"
	"log"

	regshare "repro"
)

var short = flag.Bool("short", false, "run much shorter simulations (CI smoke mode)")

func run(bench string, cfg regshare.Config) *regshare.Result {
	spec := regshare.RunSpec{Benchmark: bench, Config: cfg}
	if *short {
		spec.Warmup, spec.Measure = 5_000, 20_000
	}
	r, err := regshare.Run(spec)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	flag.Parse()
	for _, bench := range []string{"crafty", "vortex", "namd"} {
		base := run(bench, regshare.Baseline())
		fmt.Printf("%s: baseline IPC %.3f\n", bench, base.Stats.IPC())
		for _, entries := range []int{8, 16, 32, 0} {
			label := fmt.Sprintf("ISRB-%d", entries)
			if entries == 0 {
				label = "unlimited"
			}
			r := run(bench, regshare.WithME(entries))
			fmt.Printf("  ME %-10s IPC %.3f (%+.1f%%), eliminated %5.2f%% of µops\n",
				label, r.Stats.IPC(),
				100*(r.Stats.IPC()/base.Stats.IPC()-1),
				100*r.Stats.ElimRate())
		}
	}
	fmt.Println()
	fmt.Println("Note the §6.1 contrast: vortex eliminates the most moves but gains")
	fmt.Println("the least — its moves sit off the critical path — while crafty's")
	fmt.Println("on-chain moves make it the top gainer.")
}
