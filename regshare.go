// Package regshare is the public API of the reproduction of "Cost
// Effective Physical Register Sharing" (Perais & Seznec, HPCA 2016).
//
// It exposes the cycle-level out-of-order core of Table 1, the paper's two
// register-sharing optimizations (Move Elimination and Speculative Memory
// Bypassing), the reference-counting schemes of §4 (ISRB, ideal counters,
// per-register counters, MIT, RDA), and the 36 synthetic SPEC-analogue
// workloads used by every experiment.
//
// Quick start:
//
//	cfg := regshare.Combined(24) // ME + SMB over a 24-entry ISRB
//	res, err := regshare.Run(regshare.RunSpec{
//		Benchmark: "crafty",
//		Config:    cfg,
//		Warmup:    50_000,
//		Measure:   200_000,
//	})
//	fmt.Println(res.Stats.IPC())
package regshare

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/smb"
	"repro/internal/workloads"
)

// Config aliases the core machine configuration (Table 1).
type Config = core.Config

// Stats aliases the per-run statistics.
type Stats = core.Stats

// DefaultWarmup and DefaultMeasure are the run lengths used by the
// experiment harness: the paper simulates 50M warmup + 100M measured
// instructions; the synthetic workloads reach steady state far sooner, so
// the harness uses proportionally smaller regions.
const (
	DefaultWarmup  = 50_000
	DefaultMeasure = 200_000
)

// Baseline returns the Figure 4 baseline: Table 1, no sharing.
func Baseline() Config { return core.DefaultConfig() }

// WithME enables Move Elimination over an ISRB with the given entry count
// (entries <= 0 selects the unlimited ideal tracker), as in Figure 5.
func WithME(entries int) Config {
	cfg := core.DefaultConfig()
	cfg.ME.Enabled = true
	applyTracker(&cfg, entries)
	return cfg
}

// WithSMB enables Speculative Memory Bypassing (store-load + load-load,
// TAGE-like distance predictor, unlimited DDT) over an ISRB with the given
// entry count (<= 0: unlimited tracker), as in Figure 6a.
func WithSMB(entries int) Config {
	cfg := core.DefaultConfig()
	cfg.SMB.Enabled = true
	applyTracker(&cfg, entries)
	return cfg
}

// Combined enables both ME and SMB (Figure 7).
func Combined(entries int) Config {
	cfg := core.DefaultConfig()
	cfg.ME.Enabled = true
	cfg.SMB.Enabled = true
	applyTracker(&cfg, entries)
	return cfg
}

func applyTracker(cfg *Config, entries int) {
	if entries <= 0 {
		cfg.Tracker = core.TrackerConfig{Kind: core.TrackerUnlimited}
		return
	}
	cfg.Tracker = core.TrackerConfig{Kind: core.TrackerISRB, Entries: entries, CounterBits: 3}
}

// UseNoSQPredictor switches SMB to the NoSQ-style two-table distance
// predictor (§3.1's baseline).
func UseNoSQPredictor(cfg Config) Config {
	cfg.SMB.Predictor = core.DistanceNoSQ
	return cfg
}

// UseRealisticDDT switches the DDT from the unlimited modelling device to
// the paper's 1K-entry, 5-bit-tag table (§3.1).
func UseRealisticDDT(cfg Config) Config {
	cfg.SMB.DDT = smb.DDTConfig{Entries: 1024, TagBits: 5}
	return cfg
}

// UseLargeDDT selects the paper's 16K-entry, 14-bit-tag design point.
func UseLargeDDT(cfg Config) Config {
	cfg.SMB.DDT = smb.DDTConfig{Entries: 16384, TagBits: 14}
	return cfg
}

// StoreOnly disables load-load bypassing (the §6.2 ablation).
func StoreOnly(cfg Config) Config {
	cfg.SMB.LoadLoad = false
	return cfg
}

// WithLazyReclaim enables bypassing from committed instructions with lazy
// register reclaiming (§3.3 / Figure 6c).
func WithLazyReclaim(cfg Config) Config {
	cfg.SMB.BypassCommitted = true
	return cfg
}

// RunSpec names one simulation.
type RunSpec struct {
	Benchmark string
	Config    Config
	Warmup    uint64
	Measure   uint64
}

// Result is the outcome of one simulation.
type Result struct {
	Benchmark string
	Stats     *Stats
	// Detail carries the full result record (tracker, move-elimination
	// and memory-hierarchy statistics) from the shared runner.
	Detail *sim.Result
}

// runner is the process-wide simulation runner behind Run: deterministic
// simulations are deduplicated and cached, so repeated calls with the
// same RunSpec — e.g. benchmark iterations — simulate once.
var runner = sim.New()

// Run simulates the named benchmark through the shared process-wide
// runner. Results are memoized for the process lifetime (the simulator
// is deterministic, so they never go stale); sweeps over very many
// distinct RunSpecs accumulate one cached Result each. The returned
// Detail record is shared with the cache and must not be mutated; Stats
// is the caller's own copy.
func Run(spec RunSpec) (*Result, error) {
	if spec.Warmup == 0 {
		spec.Warmup = DefaultWarmup
	}
	if spec.Measure == 0 {
		spec.Measure = DefaultMeasure
	}
	r, err := runner.Run(sim.Request{
		Bench:   spec.Benchmark,
		Config:  spec.Config,
		Warmup:  spec.Warmup,
		Measure: spec.Measure,
	})
	if err != nil {
		return nil, err
	}
	st := r.S // copy: the cached record is shared
	return &Result{Benchmark: spec.Benchmark, Stats: &st, Detail: r}, nil
}

// MustRun is Run for harness code where a config error is a bug.
func MustRun(spec RunSpec) *Result {
	r, err := Run(spec)
	if err != nil {
		panic(fmt.Sprintf("regshare: %v", err))
	}
	return r
}

// Benchmarks lists the 36 workload names (integer suite first).
func Benchmarks() []string { return workloads.Names() }

// IntBenchmarks lists the integer suite.
func IntBenchmarks() []string { return workloads.IntNames() }

// FPBenchmarks lists the floating-point suite.
func FPBenchmarks() []string { return workloads.FPNames() }
