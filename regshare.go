// Package regshare is the public API of the reproduction of "Cost
// Effective Physical Register Sharing" (Perais & Seznec, HPCA 2016).
//
// It exposes the cycle-level out-of-order core of Table 1, the paper's two
// register-sharing optimizations (Move Elimination and Speculative Memory
// Bypassing), the reference-counting schemes of §4 (ISRB, ideal counters,
// per-register counters, MIT, RDA), and the 36 synthetic SPEC-analogue
// workloads used by every experiment.
//
// Quick start:
//
//	cfg := regshare.Combined(24) // ME + SMB over a 24-entry ISRB
//	res, err := regshare.RunContext(ctx, regshare.RunSpec{
//		Benchmark: "crafty",
//		Config:    cfg,
//		Warmup:    50_000,
//		Measure:   200_000,
//	})
//	fmt.Println(res.Stats.IPC())
//
// The API is context-first: RunContext aborts mid-simulation when ctx
// is canceled, StreamSpecs fans a batch out and delivers per-spec
// completion events as workers finish, and errors wrap the typed
// taxonomy (ErrUnknownBenchmark, ErrBadConfig, ErrCanceled). Run is a
// convenience shim over RunContext with a background context.
package regshare

import (
	"context"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/smb"
	"repro/internal/workloads"
)

// Config aliases the core machine configuration (Table 1).
type Config = core.Config

// Stats aliases the per-run statistics.
type Stats = core.Stats

// DefaultWarmup and DefaultMeasure are the run lengths used by the
// experiment harness: the paper simulates 50M warmup + 100M measured
// instructions; the synthetic workloads reach steady state far sooner, so
// the harness uses proportionally smaller regions.
const (
	DefaultWarmup  = 50_000
	DefaultMeasure = 200_000
)

// Baseline returns the Figure 4 baseline: Table 1, no sharing.
func Baseline() Config { return core.DefaultConfig() }

// WithME enables Move Elimination over an ISRB with the given entry count
// (entries <= 0 selects the unlimited ideal tracker), as in Figure 5.
func WithME(entries int) Config {
	cfg := core.DefaultConfig()
	cfg.ME.Enabled = true
	applyTracker(&cfg, entries)
	return cfg
}

// WithSMB enables Speculative Memory Bypassing (store-load + load-load,
// TAGE-like distance predictor, unlimited DDT) over an ISRB with the given
// entry count (<= 0: unlimited tracker), as in Figure 6a.
func WithSMB(entries int) Config {
	cfg := core.DefaultConfig()
	cfg.SMB.Enabled = true
	applyTracker(&cfg, entries)
	return cfg
}

// Combined enables both ME and SMB (Figure 7).
func Combined(entries int) Config {
	cfg := core.DefaultConfig()
	cfg.ME.Enabled = true
	cfg.SMB.Enabled = true
	applyTracker(&cfg, entries)
	return cfg
}

func applyTracker(cfg *Config, entries int) {
	if entries <= 0 {
		cfg.Tracker = core.TrackerConfig{Kind: core.TrackerUnlimited}
		return
	}
	cfg.Tracker = core.TrackerConfig{Kind: core.TrackerISRB, Entries: entries, CounterBits: 3}
}

// UseNoSQPredictor switches SMB to the NoSQ-style two-table distance
// predictor (§3.1's baseline).
func UseNoSQPredictor(cfg Config) Config {
	cfg.SMB.Predictor = core.DistanceNoSQ
	return cfg
}

// UseRealisticDDT switches the DDT from the unlimited modelling device to
// the paper's 1K-entry, 5-bit-tag table (§3.1).
func UseRealisticDDT(cfg Config) Config {
	cfg.SMB.DDT = smb.DDTConfig{Entries: 1024, TagBits: 5}
	return cfg
}

// UseLargeDDT selects the paper's 16K-entry, 14-bit-tag design point.
func UseLargeDDT(cfg Config) Config {
	cfg.SMB.DDT = smb.DDTConfig{Entries: 16384, TagBits: 14}
	return cfg
}

// StoreOnly disables load-load bypassing (the §6.2 ablation).
func StoreOnly(cfg Config) Config {
	cfg.SMB.LoadLoad = false
	return cfg
}

// WithLazyReclaim enables bypassing from committed instructions with lazy
// register reclaiming (§3.3 / Figure 6c).
func WithLazyReclaim(cfg Config) Config {
	cfg.SMB.BypassCommitted = true
	return cfg
}

// The typed error taxonomy of the execution API (see internal/sim):
// every error Run/RunContext/StreamSpecs returns wraps exactly one of
// these sentinels, testable with errors.Is. Cancellation errors also
// wrap the context's own cause (context.Canceled or
// context.DeadlineExceeded).
var (
	// ErrUnknownBenchmark: the spec names a benchmark outside the catalog.
	ErrUnknownBenchmark = sim.ErrUnknownBenchmark
	// ErrBadConfig: the machine configuration or run lengths cannot be
	// simulated.
	ErrBadConfig = sim.ErrBadConfig
	// ErrCanceled: the run was interrupted by its context.
	ErrCanceled = sim.ErrCanceled
)

// Event is one per-spec completion notification from StreamSpecs (see
// sim.Event): the spec's index, its result or typed error, provenance
// and simulation speed.
type Event = sim.Event

// RunSpec names one simulation.
type RunSpec struct {
	Benchmark string
	Config    Config
	Warmup    uint64
	Measure   uint64
}

// request normalizes the spec (default run lengths) into the shared
// runner's request form.
func (spec RunSpec) request() sim.Request {
	if spec.Warmup == 0 {
		spec.Warmup = DefaultWarmup
	}
	if spec.Measure == 0 {
		spec.Measure = DefaultMeasure
	}
	return sim.Request{
		Bench:   spec.Benchmark,
		Config:  spec.Config,
		Warmup:  spec.Warmup,
		Measure: spec.Measure,
	}
}

// Result is the outcome of one simulation.
type Result struct {
	Benchmark string
	Stats     *Stats
	// Detail carries the full result record (tracker, move-elimination
	// and memory-hierarchy statistics) from the shared runner.
	Detail *sim.Result
}

// runner is the process-wide simulation runner behind Run: deterministic
// simulations are deduplicated and cached, so repeated calls with the
// same RunSpec — e.g. benchmark iterations — simulate once.
var runner = sim.New()

// RunContext simulates the named benchmark through the shared
// process-wide runner. Results are memoized for the process lifetime
// (the simulator is deterministic, so they never go stale); sweeps over
// very many distinct RunSpecs accumulate one cached Result each.
// Canceling ctx aborts the simulation mid-cycle-loop; the error then
// wraps ErrCanceled and the context's cause, and nothing partial is
// cached. The returned Detail record is shared with the cache and must
// not be mutated; Stats is the caller's own copy.
func RunContext(ctx context.Context, spec RunSpec) (*Result, error) {
	r, err := runner.Run(ctx, spec.request())
	if err != nil {
		return nil, err
	}
	return wrapResult(spec.Benchmark, r), nil
}

// Run is RunContext with a background context — the non-cancelable
// convenience shim for short interactive runs.
func Run(spec RunSpec) (*Result, error) {
	return RunContext(context.Background(), spec)
}

// StreamSpecs fans the specs out over the shared runner's worker pool
// and invokes sink (may be nil; calls are serialized) with a completion
// event as each spec settles — Event.Index is the spec's position in
// specs. Results come back in spec order, nil where a spec failed; the
// returned error is the first typed error after all specs settle.
// Identical specs — and specs another concurrent caller is already
// running — are deduplicated through the runner's singleflight.
func StreamSpecs(ctx context.Context, specs []RunSpec, sink func(Event)) ([]*Result, error) {
	reqs := make([]sim.Request, len(specs))
	for i, spec := range specs {
		reqs[i] = spec.request()
	}
	raw, err := runner.Stream(ctx, reqs, sink)
	results := make([]*Result, len(specs))
	for i, r := range raw {
		if r != nil {
			results[i] = wrapResult(specs[i].Benchmark, r)
		}
	}
	return results, err
}

// wrapResult packages a shared runner record into the public Result
// form (Stats is the caller's own copy).
func wrapResult(bench string, r *sim.Result) *Result {
	st := r.S // copy: the cached record is shared
	return &Result{Benchmark: bench, Stats: &st, Detail: r}
}

// MustRun is Run for harness code where a config error is a bug. It
// panics with the typed error value.
func MustRun(spec RunSpec) *Result {
	r, err := Run(spec)
	if err != nil {
		panic(err)
	}
	return r
}

// Benchmarks lists the 36 workload names (integer suite first).
func Benchmarks() []string { return memberNames("all") }

// IntBenchmarks lists the integer suite.
func IntBenchmarks() []string { return memberNames("int") }

// FPBenchmarks lists the floating-point suite.
func FPBenchmarks() []string { return memberNames("fp") }

// memberNames projects a workload group onto a fresh name slice, so the
// public API never hands out the memoized tables for mutation.
func memberNames(group string) []string {
	members, _ := workloads.Members(group)
	names := make([]string, len(members))
	for i, m := range members {
		names[i] = m.Name
	}
	return names
}
