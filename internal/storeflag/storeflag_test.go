package storeflag

import (
	"flag"
	"strings"
	"testing"
)

func parse(t *testing.T, args ...string) *Flags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	var warn strings.Builder
	f.Warn = &warn
	t.Cleanup(func() {
		t.Logf("warnings: %q", warn.String())
	})
	return f
}

func TestSpecPassesThrough(t *testing.T) {
	for _, spec := range []string{"", "fs:/tmp/x", "mem:", "s3://bucket/prefix"} {
		f := parse(t, "-store", spec)
		got, err := f.Spec()
		if err != nil || got != spec {
			t.Errorf("-store %q resolved to (%q, %v)", spec, got, err)
		}
	}
}

func TestCachedirAliasWarnsAndMaps(t *testing.T) {
	f := parse(t, "-cachedir", "/tmp/dir")
	var warn strings.Builder
	f.Warn = &warn
	got, err := f.Spec()
	if err != nil || got != "fs:/tmp/dir" {
		t.Fatalf("-cachedir resolved to (%q, %v), want fs:/tmp/dir", got, err)
	}
	if !strings.Contains(warn.String(), "deprecated") {
		t.Fatalf("no deprecation warning emitted, got %q", warn.String())
	}
	// The warning is once per resolution, on stderr only — stdout
	// consumers (e.g. -manifest piped to a script) stay clean. Both
	// flags together are an error, not a silent precedence choice.
	f2 := parse(t, "-cachedir", "/tmp/dir", "-store", "mem:")
	if _, err := f2.Spec(); err == nil {
		t.Fatal("-store and -cachedir together did not error")
	}
}

func TestOpenResolvesBackends(t *testing.T) {
	cases := []struct {
		args []string
		spec string
	}{
		{[]string{"-store", "fs:" + t.TempDir()}, "fs:"},
		{[]string{"-store", "mem:"}, "mem:"},
		{[]string{"-cachedir", t.TempDir()}, "fs:"},
	}
	for _, tc := range cases {
		f := parse(t, tc.args...)
		s, err := f.Open()
		if err != nil {
			t.Fatalf("Open(%v): %v", tc.args, err)
		}
		if s == nil || !strings.HasPrefix(s.Spec(), tc.spec) {
			t.Fatalf("Open(%v) spec = %v, want prefix %q", tc.args, s, tc.spec)
		}
		s.Close()
	}

	// Storage off: no flags, nil store, nil error.
	f := parse(t)
	if s, err := f.Open(); s != nil || err != nil {
		t.Fatalf("Open() with no flags = (%v, %v), want (nil, nil)", s, err)
	}

	// A bad spec surfaces the objstore error.
	f = parse(t, "-store", "ftp://nope")
	if _, err := f.Open(); err == nil {
		t.Fatal("bad -store spec did not error")
	}
}
