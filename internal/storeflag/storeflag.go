// Package storeflag registers the result-store flags every command
// shares: -store (the objstore spec), the deprecated -cachedir alias,
// and the s3 knobs (-s3-endpoint, -store-cache). Centralizing the
// parsing keeps the flag contract — and the deprecation warning —
// identical across cmd/sweep, cmd/bench, cmd/regshared, cmd/loadgen,
// cmd/regsim, cmd/paperfigs and cmd/storagecost.
package storeflag

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/objstore"
	"repro/internal/sim"
)

// Flags holds the registered flag values until Open resolves them.
type Flags struct {
	store     *string
	cachedir  *string
	endpoint  *string
	cacheTier *string

	// Warn receives the -cachedir deprecation warning (default
	// os.Stderr; tests substitute a buffer).
	Warn io.Writer
}

// Register installs the store flags on fs and returns the holder to
// resolve after fs.Parse.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{Warn: os.Stderr}
	f.store = fs.String("store", "", "result store spec: fs:DIR | mem: | s3://bucket/prefix (empty: storage off)")
	f.cachedir = fs.String("cachedir", "", "deprecated alias for -store fs:DIR")
	f.endpoint = fs.String("s3-endpoint", "", "override the s3 endpoint URL for -store s3:// (MinIO / fake server; default AWS_ENDPOINT_URL or the AWS regional endpoint)")
	f.cacheTier = fs.String("store-cache", "", "local read-through cache directory for a remote -store (s3 misses fill it; ignored for fs:/mem:)")
	return f
}

// Spec resolves the flags to one store spec, emitting the -cachedir
// deprecation warning when the alias was used. An empty spec means
// storage off.
func (f *Flags) Spec() (string, error) {
	if *f.store != "" && *f.cachedir != "" {
		return "", fmt.Errorf("storeflag: -store and -cachedir are both set; -cachedir is a deprecated alias, use -store %s alone", *f.store)
	}
	if *f.cachedir != "" {
		fmt.Fprintf(f.Warn, "warning: -cachedir is deprecated, use -store fs:%s\n", *f.cachedir)
		return "fs:" + *f.cachedir, nil
	}
	return *f.store, nil
}

// Options returns the objstore options the s3 knobs imply.
func (f *Flags) Options() []objstore.Option {
	var opts []objstore.Option
	if *f.endpoint != "" {
		opts = append(opts, objstore.WithEndpoint(*f.endpoint))
	}
	if *f.cacheTier != "" {
		opts = append(opts, objstore.WithLocalCache(*f.cacheTier))
	}
	return opts
}

// Open resolves the flags to a store. A nil store with a nil error
// means storage off.
func (f *Flags) Open() (*sim.Store, error) {
	spec, err := f.Spec()
	if err != nil {
		return nil, err
	}
	return sim.OpenStore(spec, f.Options()...)
}
