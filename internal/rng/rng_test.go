package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs out of 1000", same)
	}
}

func TestIntnBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint16) bool {
		if n == 0 {
			n = 1
		}
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRangeBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64, lo8, span8 uint8) bool {
		lo, span := int(lo8), int(span8)
		r := New(seed)
		for i := 0; i < 20; i++ {
			v := r.Range(lo, lo+span)
			if v < lo || v > lo+span {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64InUnitInterval(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(99)
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / trials
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("Bool(0.25) frequency %v, want ~0.25", frac)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64BitBalance(t *testing.T) {
	// Each bit should be set roughly half the time.
	r := New(1234)
	const trials = 20000
	var counts [64]int
	for i := 0; i < trials; i++ {
		v := r.Uint64()
		for b := 0; b < 64; b++ {
			if v>>b&1 == 1 {
				counts[b]++
			}
		}
	}
	for b, c := range counts {
		f := float64(c) / trials
		if f < 0.45 || f > 0.55 {
			t.Fatalf("bit %d set with frequency %v", b, f)
		}
	}
}
