// Package rng provides a small, deterministic pseudo-random number
// generator used by the synthetic workload generators and the DRAM model.
//
// The simulator must be fully reproducible: the same seed must yield the
// same dynamic instruction stream and the same timing on every platform,
// which is why we do not use math/rand (whose algorithm may change across
// Go releases). The generator is xorshift128+, which is small, fast and
// has more than enough statistical quality for workload synthesis.
package rng

// RNG is a deterministic xorshift128+ generator. The zero value is not
// usable; construct with New.
type RNG struct {
	s0, s1 uint64
}

// New returns a generator seeded from the given seed. Two distinct seeds
// yield uncorrelated streams for the purposes of workload generation.
func New(seed uint64) *RNG {
	// splitmix64 to spread the seed over both words, per Vigna's
	// recommendation for seeding xorshift generators.
	r := &RNG{}
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	r.s0 = z ^ (z >> 31)
	z = r.s0 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	r.s1 = z ^ (z >> 31)
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1 // the all-zero state is the only forbidden one
	}
	return r
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.s0
	y := r.s1
	r.s0 = y
	x ^= x << 23
	r.s1 = x ^ y ^ (x >> 17) ^ (y >> 26)
	return r.s1 + y
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Range returns a pseudo-random int in [lo, hi]. It panics if hi < lo.
func (r *RNG) Range(lo, hi int) int {
	if hi < lo {
		panic("rng: Range with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}
