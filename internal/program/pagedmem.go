package program

// PagedMem is a sparse uint64→uint64 store used where the simulator used
// to reach for map[uint64]uint64 on a hot path (the functional executor's
// memory, the ideal DDT): values live in fixed-size pages found through a
// small map, with the last-touched page cached so the strided and looping
// access patterns the workloads generate stay off the map entirely.
type PagedMem struct {
	pages    map[uint64]*memPage
	lastKey  uint64
	lastPage *memPage
}

// pagedMemBits sets the page size: 4096 words (32KB of simulated memory)
// per page.
const pagedMemBits = 12

type memPage struct {
	words [1 << pagedMemBits]uint64
	// present marks stored words, one bit each, so Load can distinguish
	// a stored 0 from an untouched word.
	present [1 << pagedMemBits / 64]uint64
}

// NewPagedMem builds an empty store.
func NewPagedMem() *PagedMem {
	return &PagedMem{pages: make(map[uint64]*memPage)}
}

func (m *PagedMem) page(key uint64, create bool) *memPage {
	pk := key >> pagedMemBits
	if m.lastPage != nil && m.lastKey == pk {
		return m.lastPage
	}
	pg, ok := m.pages[pk]
	if !ok {
		if !create {
			return nil
		}
		pg = new(memPage)
		m.pages[pk] = pg
	}
	m.lastKey, m.lastPage = pk, pg
	return pg
}

// Load returns the value stored at key, with ok reporting whether the
// key was ever stored.
func (m *PagedMem) Load(key uint64) (uint64, bool) {
	pg := m.page(key, false)
	if pg == nil {
		return 0, false
	}
	off := key & (1<<pagedMemBits - 1)
	if pg.present[off/64]>>(off%64)&1 == 0 {
		return 0, false
	}
	return pg.words[off], true
}

// LoadZero returns the value stored at key, or 0 when absent (the map
// read semantics the executor's memory wants).
func (m *PagedMem) LoadZero(key uint64) uint64 {
	v, _ := m.Load(key)
	return v
}

// Store records value at key.
func (m *PagedMem) Store(key, value uint64) {
	pg := m.page(key, true)
	off := key & (1<<pagedMemBits - 1)
	pg.words[off] = value
	pg.present[off/64] |= 1 << (off % 64)
}
