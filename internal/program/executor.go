package program

import (
	"fmt"

	"repro/internal/isa"
)

// Executor runs a Program functionally, producing the architecturally
// correct dynamic µop stream. Call stack semantics: BrCall pushes pc+4
// onto an internal return stack consumed by BrRet (the synthetic programs
// use structured calls only).
type Executor struct {
	prog *Program
	regs [2][isa.NumArchRegs]uint64
	mem  *PagedMem
	pc   uint64
	rets []uint64
	seq  uint64
}

// NewExecutor builds an executor positioned at the program entry with the
// program's initial memory and register state.
func NewExecutor(p *Program) *Executor {
	e := &Executor{
		prog: p,
		mem:  NewPagedMem(),
		pc:   p.Entry(),
	}
	for a, v := range p.InitMem {
		if a&7 == 0 {
			e.mem.Store(a>>3, v)
		}
		// Unaligned seed addresses were unreachable under the old raw-key
		// map too (loads and stores key on the aligned word).
	}
	e.regs = p.InitRegs
	return e
}

func (e *Executor) reg(r isa.Reg) uint64 {
	if !r.Valid() {
		return 0
	}
	return e.regs[r.Class][r.Index]
}

func (e *Executor) setReg(r isa.Reg, v uint64) {
	if r.Valid() {
		e.regs[r.Class][r.Index] = v
	}
}

// Memory is keyed by 8-byte word index (addr>>3 drops the byte offset
// the &^7 masking used to), so PagedMem pages cover their full span.
func (e *Executor) load(addr uint64) uint64 { return e.mem.LoadZero(addr >> 3) }
func (e *Executor) store(addr, v uint64)    { e.mem.Store(addr>>3, v) }

// evalValue computes an instruction's result value.
func (e *Executor) evalValue(in *SInst, addr uint64) uint64 {
	switch in.Sem {
	case SemAdd:
		return e.reg(in.Src[0]) + e.reg(in.Src[1])
	case SemSub:
		return e.reg(in.Src[0]) - e.reg(in.Src[1])
	case SemXor:
		return e.reg(in.Src[0]) ^ e.reg(in.Src[1])
	case SemAnd:
		return e.reg(in.Src[0]) & e.reg(in.Src[1])
	case SemShl:
		return e.reg(in.Src[0]) << (in.Imm & 63)
	case SemAndImm:
		return e.reg(in.Src[0]) & in.Imm
	case SemSubImm:
		return in.Imm - e.reg(in.Src[0])
	case SemShrImm:
		return e.reg(in.Src[0]) >> (in.Imm & 63)
	case SemAddImm:
		return e.reg(in.Src[0]) + in.Imm
	case SemMulImm:
		return e.reg(in.Src[0])*in.Imm + 0x9e3779b97f4a7c15
	case SemMovImm:
		return in.Imm
	case SemMov:
		v := e.reg(in.Src[0])
		if in.Width == 32 {
			v &= 0xFFFFFFFF // x86_64 32-bit moves zero-extend
		}
		return v
	case SemLoad:
		return e.load(addr)
	case SemStore:
		return e.reg(in.Src[0])
	default:
		return 0
	}
}

func (e *Executor) evalCond(in *SInst) bool {
	v := e.reg(in.Src[0])
	switch in.Cond {
	case CondAlways:
		return true
	case CondEQImm:
		return v == in.Imm
	case CondNEImm:
		return v != in.Imm
	case CondLTImm:
		return v < in.Imm
	case CondBitSet:
		return v>>(in.Imm&63)&1 == 1
	default:
		return false
	}
}

// Next executes one instruction and fills u with the dynamic µop. It
// returns false only if the program flows off defined code, which is a
// workload construction bug.
func (e *Executor) Next(u *isa.Uop) bool {
	in, ok := e.prog.StaticAt(e.pc)
	if !ok {
		return false
	}
	*u = isa.Uop{
		PC:          in.PC,
		Seq:         e.seq,
		Op:          in.Op,
		Kind:        in.Kind,
		Heavy:       in.Heavy,
		Src:         [isa.MaxSrcRegs]isa.Reg{in.Src[0], in.Src[1], isa.NoReg},
		Dest:        in.Dest,
		Width:       in.Width,
		FallThrough: in.PC + 4,
	}
	e.seq++

	var addr uint64
	if in.Op == isa.Load || in.Op == isa.Store {
		addr = e.reg(in.AddrReg) + in.Imm
		addr &^= 7 // keep the functional model 8-byte aligned
		u.MemAddr = addr
		if in.Op == isa.Store {
			// The address register is a real dataflow input of the store.
			u.Src[1] = in.AddrReg
		} else {
			u.Src[0] = in.AddrReg
			u.Src[1] = isa.NoReg
		}
	}

	u.Value = e.evalValue(in, addr)

	switch in.Op {
	case isa.Branch:
		taken := e.evalCond(in)
		u.Taken = taken
		switch in.Kind {
		case isa.BrCall:
			u.Taken = true
			u.Target = in.Target
			e.rets = append(e.rets, in.PC+4)
		case isa.BrRet:
			u.Taken = true
			if n := len(e.rets); n > 0 {
				u.Target = e.rets[n-1]
				e.rets = e.rets[:n-1]
			} else {
				u.Target = in.PC + 4
			}
		case isa.BrUncond:
			u.Taken = true
			u.Target = in.Target
		default: // BrCond
			u.Target = in.Target
		}
		if u.Taken {
			e.pc = u.Target
		} else {
			e.pc = in.PC + 4
		}
	case isa.Store:
		e.store(addr, u.Value)
		e.pc = in.PC + 4
	default:
		e.setReg(in.Dest, u.Value)
		e.pc = in.PC + 4
	}
	return true
}

// WrongPathUop synthesizes the µop the front-end fetches at pc on a
// mispredicted path. Register names and op class come from the static
// code; memory instructions use memAddr, the caller's record of the
// instruction's most recent correct-path effective address, which
// preserves plausible wrong-path cache behaviour. Values are unspecified:
// wrong-path results are never committed.
func WrongPathUop(p *Program, pc, seq, memAddr uint64, u *isa.Uop) bool {
	in, ok := p.StaticAt(pc)
	if !ok {
		return false
	}
	*u = isa.Uop{
		PC:          in.PC,
		Seq:         seq,
		Op:          in.Op,
		Kind:        in.Kind,
		Heavy:       in.Heavy,
		Src:         [isa.MaxSrcRegs]isa.Reg{in.Src[0], in.Src[1], isa.NoReg},
		Dest:        in.Dest,
		Width:       in.Width,
		FallThrough: in.PC + 4,
		Target:      in.Target,
		WrongPath:   true,
	}
	if in.Op == isa.Load || in.Op == isa.Store {
		u.MemAddr = memAddr &^ 7
		if in.Op == isa.Store {
			u.Src[1] = in.AddrReg
		} else {
			u.Src[0] = in.AddrReg
			u.Src[1] = isa.NoReg
		}
	}
	return true
}

// TraceWindow adapts an Executor into random-access over a sliding window
// of the correct-path stream, which is what the timing core needs: fetch
// walks forward, squashes rewind to a checkpointed position, and commit
// bounds how far back a rewind can reach.
type TraceWindow struct {
	exec *Executor
	buf  []isa.Uop
	base uint64 // stream index of buf slot (base % len)
	next uint64 // first index not yet generated
}

// NewTraceWindow wraps exec with a window of the given capacity, which
// must exceed the maximum in-flight µop count (ROB + front-end buffering).
func NewTraceWindow(exec *Executor, capacity int) *TraceWindow {
	if capacity < 1024 {
		capacity = 1024
	}
	return &TraceWindow{exec: exec, buf: make([]isa.Uop, capacity)}
}

// At returns the correct-path µop at stream index idx. Indexes must not
// precede the window (enforced by panic — it would be a core bug).
func (w *TraceWindow) At(idx uint64) *isa.Uop {
	for idx >= w.next {
		slot := &w.buf[w.next%uint64(len(w.buf))]
		if !w.exec.Next(slot) {
			panic(fmt.Sprintf("program: %s ran off code at stream index %d", w.exec.prog.Name, w.next))
		}
		slot.Seq = w.next
		w.next++
		if w.next-w.base > uint64(len(w.buf)) {
			w.base = w.next - uint64(len(w.buf))
		}
	}
	if idx < w.base {
		panic(fmt.Sprintf("program: trace window rewind too deep (idx %d < base %d)", idx, w.base))
	}
	return &w.buf[idx%uint64(len(w.buf))]
}
