// Package program provides the synthetic-workload substrate that stands in
// for the paper's SPEC CPU binaries: a tiny register-machine program
// representation with a real control-flow graph, a functional executor
// that produces the architecturally-correct dynamic µop stream (with true
// register dataflow, memory values and branch outcomes), and static-code
// lookup so the timing core can fetch down mispredicted paths.
//
// Real wrong-path fetch matters here more than in most simulators: the
// ISRB's contribution is *recovery* of reference-counting state after
// squashes, so squashed instructions must really rename, really share
// registers, and really be rolled back.
package program

import (
	"fmt"

	"repro/internal/isa"
)

// Semantic selects the functional operation an instruction performs. The
// set is deliberately small: the timing model only needs the op class,
// while the functional model needs enough value diversity for speculation
// (SMB validation, branch conditions) to be meaningfully testable.
type Semantic uint8

const (
	// SemNop produces no value.
	SemNop Semantic = iota
	// SemAdd computes src0 + src1.
	SemAdd
	// SemSub computes src0 - src1.
	SemSub
	// SemXor computes src0 ^ src1.
	SemXor
	// SemAddImm computes src0 + imm.
	SemAddImm
	// SemMulImm computes src0*imm + 0x9e3779b97f4a7c15 (value scrambler).
	SemMulImm
	// SemMovImm produces imm.
	SemMovImm
	// SemMov copies src0 (width-masked: 32-bit moves zero-extend).
	SemMov
	// SemLoad reads memory at addrReg+imm.
	SemLoad
	// SemStore writes src0 to memory at addrReg+imm.
	SemStore
	// SemAnd computes src0 & src1.
	SemAnd
	// SemShl computes src0 << (imm & 63).
	SemShl
	// SemAndImm computes src0 & imm.
	SemAndImm
	// SemSubImm computes imm - src0 (reverse subtract, used to build
	// 0/1 selectors from flags).
	SemSubImm
	// SemShrImm computes src0 >> (imm & 63).
	SemShrImm
)

// CondKind selects a conditional branch's predicate, evaluated on the
// functional value of the first source register.
type CondKind uint8

const (
	// CondAlways is an unconditional transfer.
	CondAlways CondKind = iota
	// CondEQImm branches when src0 == imm.
	CondEQImm
	// CondNEImm branches when src0 != imm.
	CondNEImm
	// CondLTImm branches when src0 < imm (unsigned).
	CondLTImm
	// CondBitSet branches when bit (imm&63) of src0 is set: applied to
	// hashed data this yields hard-to-predict branches.
	CondBitSet
)

// SInst is one static instruction. PCs are assigned by the Builder, 4
// bytes apart, so 16-byte fetch blocks hold 4 instructions.
type SInst struct {
	PC    uint64
	Op    isa.Op
	Kind  isa.BranchKind
	Heavy bool
	Sem   Semantic
	Cond  CondKind

	Src     [2]isa.Reg
	Dest    isa.Reg
	AddrReg isa.Reg
	Width   uint8
	Imm     uint64

	// Target is the branch target PC (calls/jumps/taken conditionals).
	Target uint64
}

// Program is a fully built static program.
type Program struct {
	Name  string
	insts []SInst
	entry uint64
	// InitMem seeds functional memory (8-byte granularity).
	InitMem map[uint64]uint64
	// InitRegs seeds the architectural registers.
	InitRegs [2][isa.NumArchRegs]uint64
}

// Entry returns the program's entry PC.
func (p *Program) Entry() uint64 { return p.entry }

// NumInsts returns the static instruction count.
func (p *Program) NumInsts() int { return len(p.insts) }

// StaticIndex returns the dense instruction index of pc, or -1 when pc is
// outside the program. The Builder assigns PCs contiguously 4 bytes
// apart, so the lookup is pure arithmetic — StaticAt sits on the
// simulator's fetch path (including wrong-path fetch) and must not cost
// a map probe per µop.
func (p *Program) StaticIndex(pc uint64) int {
	off := pc - p.insts[0].PC
	if off%4 != 0 || off/4 >= uint64(len(p.insts)) {
		return -1
	}
	return int(off / 4)
}

// StaticAt returns the static instruction at pc.
func (p *Program) StaticAt(pc uint64) (*SInst, bool) {
	i := p.StaticIndex(pc)
	if i < 0 {
		return nil, false
	}
	return &p.insts[i], true
}

// NextPC returns the fall-through PC after pc.
func (p *Program) NextPC(pc uint64) uint64 { return pc + 4 }

// Builder assembles a Program from labelled basic blocks.
type Builder struct {
	name    string
	insts   []SInst
	labels  map[string]uint64
	fixups  []fixup
	initMem map[uint64]uint64
	pc      uint64
	err     error
}

type fixup struct {
	inst  int
	label string
}

// NewBuilder starts a program named name at the given base PC.
func NewBuilder(name string, basePC uint64) *Builder {
	return &Builder{
		name:    name,
		labels:  make(map[string]uint64),
		initMem: make(map[uint64]uint64),
		pc:      basePC,
	}
}

// Label marks the current position with a (unique) label.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup && b.err == nil {
		b.err = fmt.Errorf("program: duplicate label %q", name)
	}
	b.labels[name] = b.pc
	return b
}

// PC returns the address the next emitted instruction will get.
func (b *Builder) PC() uint64 { return b.pc }

// Emit appends a static instruction, assigning its PC.
func (b *Builder) Emit(in SInst) *Builder {
	in.PC = b.pc
	b.insts = append(b.insts, in)
	b.pc += 4
	return b
}

// EmitBranchTo appends a branch whose target is resolved from a label at
// Build time.
func (b *Builder) EmitBranchTo(in SInst, label string) *Builder {
	in.PC = b.pc
	b.insts = append(b.insts, in)
	b.fixups = append(b.fixups, fixup{inst: len(b.insts) - 1, label: label})
	b.pc += 4
	return b
}

// InitMem seeds one 8-byte memory word.
func (b *Builder) InitMem(addr, value uint64) *Builder {
	b.initMem[addr] = value
	return b
}

// Build resolves labels and returns the program. The entry point is the
// first instruction.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.insts) == 0 {
		return nil, fmt.Errorf("program %q: empty", b.name)
	}
	for _, f := range b.fixups {
		pc, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("program %q: undefined label %q", b.name, f.label)
		}
		b.insts[f.inst].Target = pc
	}
	p := &Program{
		Name:    b.name,
		insts:   b.insts,
		entry:   b.insts[0].PC,
		InitMem: b.initMem,
	}
	return p, nil
}

// MustBuild is Build that panics on error; workload construction errors
// are programming bugs, not runtime conditions.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
