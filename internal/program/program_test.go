package program

import (
	"testing"

	"repro/internal/isa"
)

// buildCounterLoop builds: r0 = 0; loop: r0 += 1; if r0 < n goto loop;
// then an unconditional self-loop at "end".
func buildCounterLoop(n uint64) *Program {
	b := NewBuilder("counter", 0x1000)
	b.Emit(SInst{Op: isa.ALU, Sem: SemMovImm, Dest: isa.IntR(0), Imm: 0, Width: 64})
	b.Label("loop")
	b.Emit(SInst{Op: isa.ALU, Sem: SemAddImm, Src: [2]isa.Reg{isa.IntR(0)}, Dest: isa.IntR(0), Imm: 1, Width: 64})
	b.EmitBranchTo(SInst{Op: isa.Branch, Kind: isa.BrCond, Cond: CondLTImm,
		Src: [2]isa.Reg{isa.IntR(0)}, Imm: n, Width: 64}, "loop")
	b.Label("end")
	b.EmitBranchTo(SInst{Op: isa.Branch, Kind: isa.BrUncond, Cond: CondAlways, Width: 64}, "end")
	return b.MustBuild()
}

func TestExecutorCounterLoop(t *testing.T) {
	p := buildCounterLoop(5)
	e := NewExecutor(p)
	var u isa.Uop
	takenCount := 0
	for i := 0; i < 50; i++ {
		if !e.Next(&u) {
			t.Fatal("executor ran off code")
		}
		if u.Op == isa.Branch && u.Kind == isa.BrCond && u.Taken {
			takenCount++
		}
		if u.Op == isa.Branch && u.Kind == isa.BrUncond {
			break
		}
	}
	// r0: 1..5; branch taken while r0 < 5, i.e., for r0=1..4.
	if takenCount != 4 {
		t.Fatalf("loop branch taken %d times, want 4", takenCount)
	}
}

func TestExecutorMemory(t *testing.T) {
	b := NewBuilder("mem", 0x1000)
	b.InitMem(0x8000, 99)
	b.Emit(SInst{Op: isa.ALU, Sem: SemMovImm, Dest: isa.IntR(1), Imm: 0x8000, Width: 64})
	b.Emit(SInst{Op: isa.Load, Sem: SemLoad, Dest: isa.IntR(2), AddrReg: isa.IntR(1), Imm: 0, Width: 64})
	b.Emit(SInst{Op: isa.ALU, Sem: SemAddImm, Src: [2]isa.Reg{isa.IntR(2)}, Dest: isa.IntR(3), Imm: 1, Width: 64})
	b.Emit(SInst{Op: isa.Store, Sem: SemStore, Src: [2]isa.Reg{isa.IntR(3)}, AddrReg: isa.IntR(1), Imm: 8, Width: 64})
	b.Emit(SInst{Op: isa.Load, Sem: SemLoad, Dest: isa.IntR(4), AddrReg: isa.IntR(1), Imm: 8, Width: 64})
	b.Label("spin")
	b.EmitBranchTo(SInst{Op: isa.Branch, Kind: isa.BrUncond, Cond: CondAlways, Width: 64}, "spin")
	p := b.MustBuild()

	e := NewExecutor(p)
	var u isa.Uop
	var vals []uint64
	for i := 0; i < 5; i++ {
		e.Next(&u)
		vals = append(vals, u.Value)
	}
	if vals[1] != 99 {
		t.Fatalf("load read %d, want 99 (InitMem)", vals[1])
	}
	if vals[3] != 100 {
		t.Fatalf("store wrote %d, want 100", vals[3])
	}
	if vals[4] != 100 {
		t.Fatalf("reload read %d, want 100", vals[4])
	}
}

func TestExecutorMoveZeroExtend(t *testing.T) {
	b := NewBuilder("mov", 0x1000)
	b.Emit(SInst{Op: isa.ALU, Sem: SemMovImm, Dest: isa.IntR(0), Imm: 0xFFFF_FFFF_1234_5678, Width: 64})
	b.Emit(SInst{Op: isa.Move, Sem: SemMov, Src: [2]isa.Reg{isa.IntR(0)}, Dest: isa.IntR(1), Width: 32})
	b.Emit(SInst{Op: isa.Move, Sem: SemMov, Src: [2]isa.Reg{isa.IntR(0)}, Dest: isa.IntR(2), Width: 64})
	b.Label("spin")
	b.EmitBranchTo(SInst{Op: isa.Branch, Kind: isa.BrUncond, Cond: CondAlways, Width: 64}, "spin")
	p := b.MustBuild()
	e := NewExecutor(p)
	var u isa.Uop
	e.Next(&u)
	e.Next(&u)
	if u.Value != 0x1234_5678 {
		t.Fatalf("32-bit move = %#x, want zero-extended low half", u.Value)
	}
	e.Next(&u)
	if u.Value != 0xFFFF_FFFF_1234_5678 {
		t.Fatalf("64-bit move = %#x", u.Value)
	}
}

func TestCallReturnPairing(t *testing.T) {
	b := NewBuilder("call", 0x1000)
	b.EmitBranchTo(SInst{Op: isa.Branch, Kind: isa.BrCall, Cond: CondAlways, Width: 64}, "fn")
	b.Label("after")
	b.EmitBranchTo(SInst{Op: isa.Branch, Kind: isa.BrUncond, Cond: CondAlways, Width: 64}, "after")
	b.Label("fn")
	b.Emit(SInst{Op: isa.ALU, Sem: SemAddImm, Src: [2]isa.Reg{isa.IntR(0)}, Dest: isa.IntR(0), Imm: 1, Width: 64})
	b.Emit(SInst{Op: isa.Branch, Kind: isa.BrRet, Cond: CondAlways, Width: 64})
	p := b.MustBuild()
	e := NewExecutor(p)
	var u isa.Uop
	e.Next(&u) // call
	if !u.Taken || u.Target != p.Entry()+8 {
		t.Fatalf("call target %#x", u.Target)
	}
	e.Next(&u) // fn body
	e.Next(&u) // ret
	if u.Kind != isa.BrRet || u.Target != p.Entry()+4 {
		t.Fatalf("ret to %#x, want %#x", u.Target, p.Entry()+4)
	}
}

func TestWrongPathUopSynthesis(t *testing.T) {
	p := buildCounterLoop(5)
	// The loop-body add is at entry+4.
	var u isa.Uop
	if !WrongPathUop(p, p.Entry()+4, 1<<63, 0, &u) {
		t.Fatal("wrong-path fetch failed on valid PC")
	}
	if !u.WrongPath || u.Op != isa.ALU || u.Dest != isa.IntR(0) {
		t.Fatalf("synthesized µop wrong: %+v", u)
	}
	if WrongPathUop(p, 0xDEAD000, 0, 0, &u) {
		t.Fatal("wrong-path fetch succeeded off the program")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("bad", 0x1000)
	b.EmitBranchTo(SInst{Op: isa.Branch, Kind: isa.BrUncond, Cond: CondAlways, Width: 64}, "nowhere")
	if _, err := b.Build(); err == nil {
		t.Fatal("undefined label not reported")
	}
	b2 := NewBuilder("dup", 0x1000)
	b2.Label("x")
	b2.Emit(SInst{Op: isa.Nop})
	b2.Label("x")
	b2.Emit(SInst{Op: isa.Nop})
	if _, err := b2.Build(); err == nil {
		t.Fatal("duplicate label not reported")
	}
	if _, err := NewBuilder("empty", 0).Build(); err == nil {
		t.Fatal("empty program not reported")
	}
}

func TestTraceWindowRandomAccess(t *testing.T) {
	p := buildCounterLoop(1000)
	w := NewTraceWindow(NewExecutor(p), 2048)
	u100 := *w.At(100)
	u50 := *w.At(50) // rewind within the window
	u100b := *w.At(100)
	if u100 != u100b {
		t.Fatal("re-reading the same index changed the µop")
	}
	if u50.Seq != 50 || u100.Seq != 100 {
		t.Fatal("sequence numbering wrong")
	}
}

func TestTraceWindowDeepRewindPanics(t *testing.T) {
	p := buildCounterLoop(100000)
	w := NewTraceWindow(NewExecutor(p), 1024)
	w.At(5000)
	defer func() {
		if recover() == nil {
			t.Fatal("deep rewind did not panic")
		}
	}()
	w.At(10)
}
