package program

import (
	"testing"

	"repro/internal/rng"
)

// TestPagedMemMatchesMap: PagedMem must behave exactly like a
// map[uint64]uint64 for random sparse key/value traffic, including
// stored zeros, max values, and page-boundary keys.
func TestPagedMemMatchesMap(t *testing.T) {
	pm := NewPagedMem()
	ref := map[uint64]uint64{}
	r := rng.New(42)
	keyOf := func() uint64 {
		base := []uint64{0, 1, 4095, 4096, 4097, 1 << 20, 1 << 40, ^uint64(0) >> 1}[r.Intn(8)]
		return base + uint64(r.Intn(64))
	}
	for i := 0; i < 200_000; i++ {
		k := keyOf()
		if r.Bool(0.5) {
			v := r.Uint64()
			switch r.Intn(4) {
			case 0:
				v = 0
			case 1:
				v = ^uint64(0)
			}
			pm.Store(k, v)
			ref[k] = v
		} else {
			got, ok := pm.Load(k)
			want, wantOK := ref[k]
			if got != want || ok != wantOK {
				t.Fatalf("Load(%d) = (%d, %v), want (%d, %v)", k, got, ok, want, wantOK)
			}
			if z := pm.LoadZero(k); z != want {
				t.Fatalf("LoadZero(%d) = %d, want %d", k, z, want)
			}
		}
	}
}

// TestStaticIndexBounds: the dense PC lookup must accept exactly the
// program's PCs and reject everything else (misaligned, below base,
// past the end) — wrong-path fetch probes all of those.
func TestStaticIndexBounds(t *testing.T) {
	b := NewBuilder("idx", 0x4000)
	for i := 0; i < 5; i++ {
		b.Emit(SInst{Sem: SemNop})
	}
	p := b.MustBuild()
	for i := 0; i < 5; i++ {
		pc := uint64(0x4000 + 4*i)
		if got := p.StaticIndex(pc); got != i {
			t.Fatalf("StaticIndex(%#x) = %d, want %d", pc, got, i)
		}
		if in, ok := p.StaticAt(pc); !ok || in.PC != pc {
			t.Fatalf("StaticAt(%#x) = (%v, %v)", pc, in, ok)
		}
	}
	for _, pc := range []uint64{0x3FFC, 0x4001, 0x4002, 0x4014, 0, ^uint64(0)} {
		if got := p.StaticIndex(pc); got != -1 {
			t.Fatalf("StaticIndex(%#x) = %d, want -1", pc, got)
		}
		if _, ok := p.StaticAt(pc); ok {
			t.Fatalf("StaticAt(%#x) unexpectedly ok", pc)
		}
	}
}
