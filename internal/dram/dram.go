// Package dram models the single-channel DDR3-1600 (11-11-11) main memory
// of Table 1: 2 ranks of 8 banks, 8KB row buffers, open-page policy,
// periodic refresh (tREFI = 7.8µs), and a 64B data bus.
//
// Timing is expressed in CPU cycles at the paper's 4GHz clock. With 11-11-11
// timings at 800MHz (13.75ns each), tCAS = tRCD = tRP = 55 CPU cycles and a
// 64B burst occupies the bus for 20 cycles. These constants reproduce the
// paper's stated read latency band exactly: a row-buffer hit on an idle bank
// completes in 55+20 = 75 cycles (the paper's minimum) and a row conflict
// costs 55·3+20 = 185 cycles (the paper's maximum).
package dram

// Config sizes the memory model. All latencies are CPU cycles.
type Config struct {
	Ranks        int
	BanksPerRank int
	RowBytes     uint64
	TCAS         uint64 // column access
	TRCD         uint64 // activate
	TRP          uint64 // precharge
	TBurst       uint64 // 64B transfer on the 64-bit bus
	TREFI        uint64 // refresh interval
	TRFC         uint64 // refresh duration
}

// DefaultConfig mirrors Table 1 at 4GHz.
func DefaultConfig() Config {
	return Config{
		Ranks:        2,
		BanksPerRank: 8,
		RowBytes:     8 * 1024,
		TCAS:         55,
		TRCD:         55,
		TRP:          55,
		TBurst:       20,
		TREFI:        31200, // 7.8µs at 4GHz
		TRFC:         440,   // ~110ns
	}
}

type bank struct {
	rowOpen bool
	row     uint64
	readyAt uint64
}

// Memory is the DDR3 channel model. It is deliberately time-ordered but
// tolerant: accesses may arrive with non-monotone timestamps (the simulator
// resolves loads at issue), and each access simply queues behind the bank
// and channel busy times.
type Memory struct {
	cfg       Config
	banks     []bank
	channelAt uint64 // bus free time

	// Stats
	Reads     uint64
	Writes    uint64
	RowHits   uint64
	RowMisses uint64
	RowConfl  uint64
}

// New builds a Memory from cfg.
func New(cfg Config) *Memory {
	return &Memory{
		cfg:   cfg,
		banks: make([]bank, cfg.Ranks*cfg.BanksPerRank),
	}
}

// bankOf maps a physical block address to (bank index, row id).
func (m *Memory) bankOf(addr uint64) (int, uint64) {
	nb := uint64(len(m.banks))
	row := addr / m.cfg.RowBytes
	b := int(row % nb) // row-interleaved banks spread streams across banks
	return b, row / nb
}

// refreshDelay pushes start out of any refresh window it falls into.
func (m *Memory) refreshDelay(start uint64) uint64 {
	if m.cfg.TREFI == 0 {
		return start
	}
	phase := start % m.cfg.TREFI
	if phase < m.cfg.TRFC {
		return start + (m.cfg.TRFC - phase)
	}
	return start
}

// Read performs a 64B read beginning no earlier than now and returns the
// cycle at which the data is available to the requester.
func (m *Memory) Read(addr uint64, now uint64) uint64 {
	m.Reads++
	return m.access(addr, now)
}

// Write performs a 64B writeback. The returned cycle is when the bank is
// again available; callers typically ignore it (write completion is not on
// the load critical path).
func (m *Memory) Write(addr uint64, now uint64) uint64 {
	m.Writes++
	return m.access(addr, now)
}

func (m *Memory) access(addr uint64, now uint64) uint64 {
	bi, row := m.bankOf(addr)
	b := &m.banks[bi]

	start := now
	if b.readyAt > start {
		start = b.readyAt
	}
	start = m.refreshDelay(start)

	var lat uint64
	switch {
	case b.rowOpen && b.row == row:
		m.RowHits++
		lat = m.cfg.TCAS
	case !b.rowOpen:
		m.RowMisses++
		lat = m.cfg.TRCD + m.cfg.TCAS
	default:
		m.RowConfl++
		lat = m.cfg.TRP + m.cfg.TRCD + m.cfg.TCAS
	}

	// Serialize bursts on the shared data bus.
	dataStart := start + lat
	if m.channelAt > dataStart {
		dataStart = m.channelAt
	}
	done := dataStart + m.cfg.TBurst
	m.channelAt = done

	b.rowOpen = true
	b.row = row
	b.readyAt = start + lat // bank busy until CAS completes

	return done
}

// MinReadLatency returns the unloaded row-hit latency (75 in Table 1).
func (m *Memory) MinReadLatency() uint64 { return m.cfg.TCAS + m.cfg.TBurst }

// MaxReadLatency returns the unloaded row-conflict latency (185 in Table 1).
func (m *Memory) MaxReadLatency() uint64 {
	return m.cfg.TRP + m.cfg.TRCD + m.cfg.TCAS + m.cfg.TBurst
}
