package dram

import "testing"

// TestLatencyBandMatchesTable1: the paper's DDR3-1600 (11-11-11) gives a
// minimum read latency of 75 cycles (row hit, idle) and a maximum of 185
// (row conflict) at 4GHz.
func TestLatencyBandMatchesTable1(t *testing.T) {
	m := New(DefaultConfig())
	if got := m.MinReadLatency(); got != 75 {
		t.Fatalf("min read latency = %d, want 75", got)
	}
	if got := m.MaxReadLatency(); got != 185 {
		t.Fatalf("max read latency = %d, want 185", got)
	}
}

func TestRowMissThenHit(t *testing.T) {
	m := New(DefaultConfig())
	// First access: bank closed -> activate + CAS.
	done := m.Read(0x1000, 1000)
	lat := done - 1000
	if lat != 55+55+20 { // tRCD + tCAS + burst
		t.Fatalf("closed-row read latency = %d, want 130", lat)
	}
	// Same row, bank now open: row hit.
	done2 := m.Read(0x1040, done)
	if got := done2 - done; got != 75 {
		t.Fatalf("row-hit latency = %d, want 75", got)
	}
	if m.RowHits != 1 || m.RowMisses != 1 {
		t.Fatalf("hit/miss counters = %d/%d, want 1/1", m.RowHits, m.RowMisses)
	}
}

func TestRowConflict(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	addr1 := uint64(0)
	// Same bank, different row: banks are row-interleaved, so stepping by
	// rowBytes*numBanks stays in bank 0.
	addr2 := cfg.RowBytes * uint64(cfg.Ranks*cfg.BanksPerRank)
	start := uint64(10000)
	first := m.Read(addr1, start)
	second := m.Read(addr2, first)
	if got := second - first; got != 185 {
		t.Fatalf("row-conflict latency = %d, want 185 (tRP+tRCD+tCAS+burst)", got)
	}
	if m.RowConfl != 1 {
		t.Fatalf("row conflicts = %d, want 1", m.RowConfl)
	}
}

// TestBankQueueing: two back-to-back accesses to the same bank serialize
// on the bank.
func TestBankQueueing(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	a := m.Read(0x0, 0)
	b := m.Read(cfg.RowBytes*uint64(cfg.Ranks*cfg.BanksPerRank), 0) // same bank, other row
	if b <= a {
		t.Fatalf("same-bank conflicting reads did not serialize: %d then %d", a, b)
	}
}

// TestChannelSerialization: different banks still share the data bus; two
// simultaneous reads differ by at least the burst time.
func TestChannelSerialization(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	a := m.Read(0, 0)            // bank 0
	b := m.Read(cfg.RowBytes, 0) // bank 1 (row-interleaved)
	if d := b - a; d < cfg.TBurst {
		t.Fatalf("bus did not serialize bursts: completions %d and %d", a, b)
	}
}

// TestRefreshDelaysAccess: an access landing in a refresh window is pushed
// past it.
func TestRefreshDelaysAccess(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	// Phase 0 of each tREFI window is the refresh (tRFC long).
	done := m.Read(0x2000, cfg.TREFI) // exactly at refresh start
	lat := done - cfg.TREFI
	if lat < cfg.TRFC {
		t.Fatalf("access during refresh completed after %d cycles, want >= %d", lat, cfg.TRFC)
	}
}

func TestReadWriteCounters(t *testing.T) {
	m := New(DefaultConfig())
	m.Read(0, 0)
	m.Write(64, 0)
	m.Write(128, 0)
	if m.Reads != 1 || m.Writes != 2 {
		t.Fatalf("reads/writes = %d/%d, want 1/2", m.Reads, m.Writes)
	}
}
