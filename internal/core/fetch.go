package core

import (
	"repro/internal/isa"
	"repro/internal/program"
)

// fetch models the front end of Table 1: up to FetchWidth µops per cycle
// from at most two 16-byte blocks, continuing over at most one taken
// branch, with a 1-cycle L1I. Branches are predicted here (TAGE/BTB/RAS);
// a fetch-time mismatch against the architecturally-correct trace diverges
// fetch down the predicted (wrong) path through the program's static code,
// so wrong-path µops really rename and really get squashed later.
//
//repro:hotpath
func (c *Core) fetch() {
	if c.cycle < c.fetchStallUntil {
		return
	}
	if c.fqTail-c.fqHead >= uint64(len(c.fq))-uint64(c.cfg.FetchWidth) {
		return // front-end queue full
	}

	fetched := 0
	blocks := 0
	takenSeen := false
	var curBlock uint64
	haveBlock := false

	for fetched < c.cfg.FetchWidth {
		var u isa.Uop
		var streamIdx uint64

		if !c.diverged {
			u = *c.trace.At(c.fetchPos)
			streamIdx = c.fetchPos
		} else {
			var lastAddr uint64
			if si := c.prog.StaticIndex(c.wrongPC); si >= 0 {
				lastAddr = c.lastAddr[si]
			}
			if !program.WrongPathUop(c.prog, c.wrongPC, 1<<63|c.wrongSeq, lastAddr, &u) {
				break // fell off static code; wait for recovery
			}
			c.wrongSeq++
			streamIdx = ^uint64(0)
		}

		// Block accounting: two 16B blocks per cycle, one taken branch.
		blk := u.PC >> 4
		if !haveBlock || blk != curBlock {
			blocks++
			if blocks > 2 {
				break
			}
			// L1I probe once per new block.
			if c.lastICachePC != blk {
				fill := c.mem.FetchInst(u.PC, c.cycle)
				c.lastICachePC = blk
				if fill > c.cycle+1 {
					c.fetchStallUntil = fill
					break
				}
			}
			curBlock = blk
			haveBlock = true
		}

		fe := fqEntry{
			u:         u,
			streamIdx: streamIdx,
			readyAt:   c.cycle + c.cfg.FrontEndDepth,
		}

		if u.Op == isa.Load {
			fe.histSnap = *c.bp.History()
			if c.dist != nil {
				fe.smbDist, fe.smbConf = c.dist.Predict(u.PC, c.bp.History())
			}
		}

		endCycle := false
		if u.IsBranch() {
			fe.bpSnap = c.bp.Snapshot()
			fe.pred = c.bp.Predict(&u)
			predNext := u.FallThrough
			if fe.pred.Taken {
				predNext = fe.pred.Target
				if takenSeen {
					// Second taken branch: fetch group ends after it.
					endCycle = true
				}
				takenSeen = true
			}
			if !c.diverged {
				actualNext := u.FallThrough
				if u.Taken {
					actualNext = u.Target
				}
				fe.resumePos = c.fetchPos + 1
				if predNext != actualNext {
					fe.fetchMispred = true
					c.diverged = true
					c.wrongPC = predNext
					c.fetchPos++
				} else {
					c.fetchPos++
				}
			} else {
				// Wrong-path branch: follow the prediction.
				c.wrongPC = predNext
			}
		} else {
			if !c.diverged {
				if u.IsMemRef() {
					if si := c.prog.StaticIndex(u.PC); si >= 0 {
						c.lastAddr[si] = u.MemAddr
					}
				}
				c.fetchPos++
			} else {
				c.wrongPC = u.FallThrough
			}
		}

		c.fq[c.fqTail%uint64(len(c.fq))] = fe
		c.fqTail++
		fetched++
		c.stats.FetchedUops++
		if endCycle {
			break
		}
	}
}
