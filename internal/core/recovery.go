package core

import "repro/internal/isa"

// recoverFromBranch handles a resolved branch misprediction with
// checkpoint-based recovery (§4.1): squash everything younger than the
// branch, copy the checkpointed Rename Map and Free List heads back,
// restore the tracker's referenced fields (gang copy + compare, §4.3.1),
// restore the front-end snapshot and redirect fetch. The extra recovery
// latency is the tracker's SquashPenalty — 1 cycle for checkpointable
// schemes, a sequential walk for per-register counters (§4.2).
func (c *Core) recoverFromBranch(brIdx int) {
	br := &c.rob[brIdx]
	if br.ckptIdx < 0 || !c.ckpts[br.ckptIdx].inUse {
		panic("core: mispredicted branch without a live checkpoint")
	}
	ck := &c.ckpts[br.ckptIdx]

	nSquashed := c.squashAfter(brIdx, br.csn)
	if c.tracer != nil {
		c.tracer.Flush(c.cycle, "branch misprediction", nSquashed)
	}

	// Renamer restore.
	c.rf.RM = ck.rm
	c.flags = ck.flags
	c.rf.FreeList(isa.IntReg).RestoreHead(ck.flHead[0])
	c.rf.FreeList(isa.FPReg).RestoreHead(ck.flHead[1])
	c.rf.NoteHeadRestored(isa.IntReg)
	c.rf.NoteHeadRestored(isa.FPReg)
	for _, p := range c.tracker.Restore(ck.tracker) {
		c.releaseReg(p)
	}
	c.renameCSN = ck.renameCSN

	// Front-end restore: the snapshot was taken before the branch was
	// predicted; re-apply the now-known outcome.
	c.bp.Restore(&ck.bp)
	c.bp.FixHistoryAfterResolve(&br.u)

	// Fetch redirect onto the architecturally correct path.
	c.fetchPos = ck.resumePos
	c.diverged = false
	c.fqHead, c.fqTail = 0, 0
	penalty := c.tracker.SquashPenalty(nSquashed)
	c.fetchStallUntil = c.cycle + 1 + penalty
	c.stats.RecoveryCycles += penalty

	// The branch has resolved; it no longer needs its checkpoint (we
	// retain the paper's model of freeing it at retirement for all other
	// branches; this one's state was just consumed).
	br.fetchMispred = false // recovery done; commit should not re-trigger
	c.stats.BranchMispredicts++
}

// squashAfter removes every ROB entry younger than csn (exclusive),
// releasing scheduler slots, LSQ entries and checkpoints. Returns the
// number of squashed µops.
func (c *Core) squashAfter(keepIdx int, csn uint64) int {
	n := 0
	// Walk back from the tail until we reach keepIdx.
	for c.robCount > 0 {
		last := c.robTail - 1
		if last < 0 {
			last = len(c.rob) - 1
		}
		if last == keepIdx {
			break
		}
		e := &c.rob[last]
		if e.valid && e.csn <= csn {
			break
		}
		if e.valid {
			if c.tracer != nil {
				c.tracer.Squashed(c.cycle, e.csn)
			}
			if e.ckptIdx >= 0 {
				c.releaseCheckpoint(e.ckptIdx)
			}
			if e.lqIdx >= 0 {
				c.lq[uint64(e.lqIdx)%uint64(len(c.lq))].valid = false
				if uint64(e.lqIdx) == c.lqTail-1 {
					c.lqTail--
				}
			}
			if e.sqIdx >= 0 {
				c.sq[uint64(e.sqIdx)%uint64(len(c.sq))].valid = false
				if uint64(e.sqIdx) == c.sqTail-1 {
					c.sqTail--
				}
			}
			w := c.windowAt(e.csn)
			if w.valid && w.csn == e.csn {
				w.valid = false
			}
			e.valid = false
			n++
			c.stats.SquashedUops++
		}
		c.robTail = last
		c.robCount--
	}
	// Roll LSQ tails past any interior invalidated entries.
	for c.lqTail > c.lqHead && !c.lq[(c.lqTail-1)%uint64(len(c.lq))].valid {
		c.lqTail--
	}
	for c.sqTail > c.sqHead && !c.sq[(c.sqTail-1)%uint64(len(c.sq))].valid {
		c.sqTail--
	}
	// Drop squashed entries from the scheduler.
	keep := c.iq[:0]
	for _, idx := range c.iq {
		if c.rob[idx].valid && c.rob[idx].inIQ {
			keep = append(keep, idx)
		}
	}
	c.iq = keep
	// Prune the in-flight completion list: the rename CSN counter rolls
	// back on recovery, so stale references must not survive into a
	// region where their (slot, csn) pair could be recycled.
	keepIF := c.inflight[:0]
	for _, ref := range c.inflight {
		e := &c.rob[ref.robIdx]
		if e.valid && e.csn == ref.csn {
			keepIF = append(keepIF, ref)
		}
	}
	c.inflight = keepIF
	return n
}
