package core

// Golden rename→commit traces: small hand-written programs whose
// cycle-level outcomes — cycle count, free-list occupancy after a full
// drain, and reference-counting totals — are pinned exactly, for every
// tracker scheme. The simulator is deterministic, so any drift in these
// numbers means the rename/commit/recovery pipeline changed behaviour,
// which is precisely what a hot-path refactor must not do.

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

// goldenProgram mixes the behaviours the tracker sees: an ME chain
// (rename-time shares), a constant-distance store→load pair (SMB
// shares), a chaotic branch (checkpoint recovery rolls the tracker
// back), and a late-address store (memory trap: flush at commit uses
// RestoreToCommit).
func goldenProgram() *program.Program {
	b := program.NewBuilder("golden", 0x1000)
	b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemMovImm, Dest: isa.IntR(1), Imm: 0x10000, Width: 64})
	b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemMovImm, Dest: isa.IntR(0), Imm: 0, Width: 64})
	b.Label("loop")
	// ME chain: mov + add, twice.
	for i := 0; i < 2; i++ {
		b.Emit(program.SInst{Op: isa.Move, Sem: program.SemMov,
			Src: [2]isa.Reg{isa.IntR(8)}, Dest: isa.IntR(9), Width: 64})
		b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAddImm,
			Src: [2]isa.Reg{isa.IntR(9)}, Dest: isa.IntR(8), Imm: 1, Width: 64})
	}
	// Constant-distance spill/reload: SMB bypass material.
	b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAddImm,
		Src: [2]isa.Reg{isa.IntR(0)}, Dest: isa.IntR(2), Imm: 9, Width: 64})
	b.Emit(program.SInst{Op: isa.Store, Sem: program.SemStore,
		Src: [2]isa.Reg{isa.IntR(2)}, AddrReg: isa.IntR(1), Imm: 8, Width: 64})
	b.Emit(program.SInst{Op: isa.Load, Sem: program.SemLoad,
		Dest: isa.IntR(3), AddrReg: isa.IntR(1), Imm: 8, Width: 64})
	b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAddImm,
		Src: [2]isa.Reg{isa.IntR(3)}, Dest: isa.IntR(4), Imm: 0, Width: 64})
	// Chaotic branch: checkpoint recoveries.
	b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemMulImm,
		Src: [2]isa.Reg{isa.IntR(5)}, Dest: isa.IntR(5), Imm: 0x9E3779B97F4A7C15, Width: 64})
	b.EmitBranchTo(program.SInst{Op: isa.Branch, Kind: isa.BrCond, Cond: program.CondBitSet,
		Src: [2]isa.Reg{isa.IntR(5)}, Imm: 43, Width: 64}, "skip")
	b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAddImm,
		Src: [2]isa.Reg{isa.IntR(6)}, Dest: isa.IntR(6), Imm: 1, Width: 64})
	b.Label("skip")
	// Late-address store vs early load: occasional memory trap.
	b.Emit(program.SInst{Op: isa.Load, Sem: program.SemLoad,
		Dest: isa.IntR(10), AddrReg: isa.IntR(1), Imm: 64, Width: 64})
	b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAndImm,
		Src: [2]isa.Reg{isa.IntR(10)}, Dest: isa.IntR(11), Imm: 0, Width: 64})
	b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAdd,
		Src: [2]isa.Reg{isa.IntR(1), isa.IntR(11)}, Dest: isa.IntR(12), Width: 64})
	b.Emit(program.SInst{Op: isa.Store, Sem: program.SemStore,
		Src: [2]isa.Reg{isa.IntR(2)}, AddrReg: isa.IntR(12), Imm: 128, Width: 64})
	b.Emit(program.SInst{Op: isa.Load, Sem: program.SemLoad,
		Dest: isa.IntR(13), AddrReg: isa.IntR(1), Imm: 128, Width: 64})
	b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAddImm,
		Src: [2]isa.Reg{isa.IntR(0)}, Dest: isa.IntR(0), Imm: 1, Width: 64})
	b.EmitBranchTo(program.SInst{Op: isa.Branch, Kind: isa.BrUncond, Cond: program.CondAlways,
		Src: [2]isa.Reg{isa.IntR(0)}, Width: 64}, "loop")
	return b.MustBuild()
}

// goldenOutcome is what one scheme's run must reproduce exactly.
type goldenOutcome struct {
	cycles    uint64
	sharesME  uint64
	sharesSMB uint64
	frees     uint64
	restores  uint64
	intFree   int // INT free-list occupancy after drain
	fpFree    int // FP free-list occupancy after drain
}

func runGolden(t *testing.T, kind TrackerKind) goldenOutcome {
	t.Helper()
	cfg := DefaultConfig()
	cfg.ME.Enabled = true
	cfg.SMB.Enabled = true
	cfg.Tracker.Kind = kind
	c := New(cfg, goldenProgram())
	st := c.Run(2_000, 20_000)
	if err := c.DrainAndAudit(); err != nil {
		t.Fatalf("%s: audit after golden run: %v", kind, err)
	}
	ts := c.Tracker().Stats()
	return goldenOutcome{
		cycles:    st.Cycles,
		sharesME:  ts.SharesME,
		sharesSMB: ts.SharesSMB,
		frees:     ts.Frees,
		restores:  ts.Restores,
		intFree:   c.rf.FreeList(isa.IntReg).Len(),
		fpFree:    c.rf.FreeList(isa.FPReg).Len(),
	}
}

// TestGoldenRenameToCommit pins the exact cycle-level outcome of the
// golden program for every reference-counting scheme. The per-scheme
// stories the numbers tell: the ISRB tracks slightly fewer SMB shares
// than the ideal tracker (finite entries saturate), the MIT rejects SMB
// entirely so the run is slower and an extra INT register stays
// architecturally shared, and per-register counters pay a sequential
// recovery walk after every flush (the ~20% cycle inflation).
func TestGoldenRenameToCommit(t *testing.T) {
	want := map[TrackerKind]goldenOutcome{
		TrackerUnlimited: {cycles: 22629, sharesME: 7514, sharesSMB: 9962, frees: 4054, restores: 626, intFree: 241, fpFree: 240},
		TrackerISRB:      {cycles: 22629, sharesME: 7514, sharesSMB: 9895, frees: 4054, restores: 626, intFree: 241, fpFree: 240},
		TrackerRDA:       {cycles: 22629, sharesME: 7514, sharesSMB: 9962, frees: 4054, restores: 626, intFree: 241, fpFree: 240},
		TrackerMIT:       {cycles: 22630, sharesME: 7514, sharesSMB: 0, frees: 2519, restores: 626, intFree: 240, fpFree: 240},
		TrackerCounters:  {cycles: 27109, sharesME: 7512, sharesSMB: 9962, frees: 4054, restores: 626, intFree: 241, fpFree: 240},
	}
	for _, kind := range []TrackerKind{TrackerUnlimited, TrackerISRB, TrackerRDA, TrackerMIT, TrackerCounters} {
		got := runGolden(t, kind)
		if got != want[kind] {
			t.Errorf("%s: outcome %+v, want %+v", kind, got, want[kind])
		}
	}
}
