// Package core implements the cycle-level out-of-order superscalar
// processor of Table 1 — the substrate the paper's mechanisms (ISRB, Move
// Elimination, Speculative Memory Bypassing) are evaluated on.
//
// The pipeline models an aggressive 4GHz, 8-wide-front-end, 6-issue core:
// a 19-cycle fetch-to-commit depth, checkpoint-based branch recovery (20
// cycles minimum misprediction penalty), a 192-entry ROB, a 60-entry
// unified scheduler with the paper's functional-unit pool, 72/48-entry
// load/store queues with 4-cycle store-to-load forwarding, 256+256
// physical registers, Store Sets memory dependence prediction, TAGE branch
// prediction and a three-level memory hierarchy.
//
// One simulated cycle runs the stages back to front (commit, writeback,
// issue, rename, fetch), so each µop advances at most one stage per
// cycle; see docs/ARCHITECTURE.md for the full data flow and the mapping
// of every sibling package onto the paper's sections.
package core

import (
	"context"
	"fmt"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/moveelim"
	"repro/internal/program"
	"repro/internal/refcount"
	"repro/internal/regfile"
	"repro/internal/smb"
	"repro/internal/storesets"
	"repro/internal/tage"
)

// pendingCompletion marks an issued µop whose completion time is not yet
// known (a load blocked on a store writeback).
const pendingCompletion = ^uint64(0)

// Flush causes recorded in a ROB entry and resolved when it reaches the
// commit head.
const (
	flushNone uint8 = iota
	flushMemOrder
	flushBypass
)

type robEntry struct {
	valid     bool
	u         isa.Uop
	csn       uint64
	streamIdx uint64 // correct-path trace index (wrong path: ^0)

	srcPhys     [isa.MaxSrcRegs]regfile.PhysReg
	destPhys    regfile.PhysReg
	oldDestPhys regfile.PhysReg
	oldDestFlag bool
	allocatedFL bool

	eliminated          bool
	bypassed            bool
	bypassPhys          regfile.PhysReg
	bypassFromCommitted bool

	hasMemDep  bool
	memDepCSN  uint64
	depDelayed bool

	lqIdx, sqIdx int64 // absolute LSQ slot ids (-1 = none)
	ckptIdx      int

	inIQ       bool
	issued     bool
	completed  bool
	readyAt    uint64
	dispatchAt uint64
	needsFlush uint8

	pred         branch.Prediction
	bpSnap       branch.Snapshot
	fetchMispred bool
	resumePos    uint64
	histSnap     tage.History
	smbDist      uint16
	smbConf      bool
}

type winEntry struct {
	valid     bool
	csn       uint64
	destPhys  regfile.PhysReg
	hasDest   bool
	committed bool
	epoch     uint32
}

type lqEntry struct {
	valid        bool
	robIdx       int
	csn          uint64
	addr         uint64
	width        uint8
	issued       bool
	doneAt       uint64
	forwardedCSN uint64 // 0 = from memory
	waitWBStore  uint64 // csn of store whose writeback unblocks us (0 = none)
	violated     bool
}

type sqEntry struct {
	valid    bool
	robIdx   int
	csn      uint64
	pc       uint64
	addr     uint64
	width    uint8
	executed bool
	dataAt   uint64
	wrong    bool // wrong-path store
}

type checkpoint struct {
	inUse     bool
	csn       uint64
	rm        regfile.RenameMap
	flags     [2][isa.NumArchRegs]bool
	flHead    [2]uint64
	tracker   refcount.Snapshot
	bp        branch.Snapshot
	resumePos uint64
	renameCSN uint64
}

type fqEntry struct {
	u            isa.Uop
	streamIdx    uint64
	readyAt      uint64
	pred         branch.Prediction
	bpSnap       branch.Snapshot
	fetchMispred bool
	resumePos    uint64
	histSnap     tage.History
	smbDist      uint16
	smbConf      bool
}

type inflightRef struct {
	robIdx int
	csn    uint64
}

type reclaimItem struct {
	phys regfile.PhysReg
	arch isa.Reg
	flag bool
	prod uint64 // csn of the overwriting (committing) instruction
}

// Core is one simulated processor running one program.
type Core struct {
	cfg     Config
	prog    *program.Program
	trace   *program.TraceWindow
	bp      *branch.Predictor
	mem     *cache.Hierarchy
	ss      *storesets.StoreSets
	rf      *regfile.File
	tracker refcount.Tracker
	me      *moveelim.Eliminator
	dist    smb.DistancePredictor
	trainer *smb.Trainer

	cycle uint64

	// Fetch.
	fetchPos        uint64
	diverged        bool
	wrongPC         uint64
	wrongSeq        uint64
	fetchStallUntil uint64
	// lastAddr records each memory instruction's most recent correct-path
	// effective address, indexed by static instruction (wrong-path fetch
	// replays it for plausible cache behaviour).
	lastAddr       []uint64
	lastICachePC   uint64
	fq             []fqEntry
	fqHead, fqTail uint64

	// Rename.
	renameCSN uint64
	flags     [2][isa.NumArchRegs]bool

	// ROB (ring).
	rob                        []robEntry
	robHead, robTail, robCount int

	// Producer window (CSN ring, covers in-flight + retained committed).
	window       []winEntry
	releaseEpoch [2][]uint32

	// Scheduler.
	iq []int // robIdx, age-ordered

	// Writeback scan state: issued-but-incomplete µops, so writeback does
	// not walk the full ROB every cycle. Entries are (robIdx, csn) pairs;
	// the csn disambiguates slots recycled by a squash.
	inflight   []inflightRef
	completing []int // robIdx scratch, csn-sorted per cycle

	// LSQ (rings with absolute ids).
	lq             []lqEntry
	lqHead, lqTail uint64
	sq             []sqEntry
	sqHead, sqTail uint64

	// Checkpoints.
	ckpts     []checkpoint
	liveCkpts int

	// Unpipelined units.
	mulDivBusyUntil uint64
	fpDivBusyUntil  []uint64

	tracer Tracer

	// auditMapped is DrainAndAudit's reachability scratch (one flag per
	// physical register, reused across invocations).
	auditMapped []bool

	// Commit side.
	commitCSN       uint64
	crmFlags        [2][isa.NumArchRegs]bool
	committedFLHead [2]uint64
	commitHist      tage.History
	commitRAS       []uint64
	commitRASTop    int
	pendingReclaim  []reclaimItem

	stats Stats
}

// New builds a core for the given program.
func New(cfg Config, prog *program.Program) *Core {
	cfg.validate()
	c := &Core{
		cfg:            cfg,
		prog:           prog,
		trace:          program.NewTraceWindow(program.NewExecutor(prog), 4096),
		bp:             branch.New(cfg.Branch),
		mem:            cache.NewHierarchy(cfg.Mem),
		ss:             storesets.New(cfg.StoreSets),
		rf:             regfile.NewFile(cfg.PhysRegsPerClass),
		tracker:        cfg.NewTracker(),
		me:             moveelim.New(cfg.ME),
		lastAddr:       make([]uint64, prog.NumInsts()),
		rob:            make([]robEntry, cfg.ROBSize),
		window:         make([]winEntry, 1024),
		iq:             make([]int, 0, cfg.IQSize),
		inflight:       make([]inflightRef, 0, cfg.ROBSize),
		completing:     make([]int, 0, cfg.ROBSize),
		lq:             make([]lqEntry, cfg.LQSize),
		sq:             make([]sqEntry, cfg.SQSize),
		ckpts:          make([]checkpoint, cfg.MaxCheckpoints),
		fq:             make([]fqEntry, 512),
		fpDivBusyUntil: make([]uint64, cfg.NumFPMulDiv),
		commitRAS:      make([]uint64, cfg.Branch.RASEntries),
		pendingReclaim: make([]reclaimItem, 0, 2*cfg.ROBSize),
	}
	c.releaseEpoch[0] = make([]uint32, cfg.PhysRegsPerClass)
	c.releaseEpoch[1] = make([]uint32, cfg.PhysRegsPerClass)
	if cfg.SMB.Enabled {
		switch cfg.SMB.Predictor {
		case DistanceNoSQ:
			c.dist = smb.NewNoSQDistance()
		default:
			c.dist = smb.NewTAGEDistanceWithConfig(smb.TAGEConfigWithHistories(cfg.SMB.TAGEGeometry))
		}
		c.trainer = smb.NewTrainer(smb.NewDDT(cfg.SMB.DDT), c.dist, cfg.SMB.LoadLoad)
	} else {
		// The trainer still maintains CSN bookkeeping cheaply when SMB is
		// off; skip it entirely for speed.
		c.trainer = nil
	}
	return c
}

// Tracker exposes the reference counting scheme (for stats and tests).
func (c *Core) Tracker() refcount.Tracker { return c.tracker }

// Mem exposes the memory hierarchy (for stats).
func (c *Core) Mem() *cache.Hierarchy { return c.mem }

// BranchUnit exposes the branch predictor (for stats).
func (c *Core) BranchUnit() *branch.Predictor { return c.bp }

// MoveElim exposes the eliminator (for stats).
func (c *Core) MoveElim() *moveelim.Eliminator { return c.me }

// Distance exposes the SMB distance predictor (nil when SMB is off).
func (c *Core) Distance() smb.DistancePredictor { return c.dist }

// Trainer exposes the SMB commit-side trainer (nil when SMB is off).
func (c *Core) Trainer() *smb.Trainer { return c.trainer }

// Cycle advances the machine by one clock.
func (c *Core) Cycle() {
	c.commit()
	c.writeback()
	c.issue()
	c.rename()
	c.fetch()
	c.cycle++
	c.stats.Cycles++
}

// Run executes until `measure` µops have committed after a warmup of
// `warmup` committed µops; statistics cover only the measured region.
// It cannot be interrupted; long or batched runs should use RunContext.
func (c *Core) Run(warmup, measure uint64) *Stats {
	st, err := c.RunContext(context.Background(), warmup, measure)
	if err != nil {
		// Unreachable: the background context is never canceled.
		panic(fmt.Sprintf("core: %v", err))
	}
	return st
}

// cancelCheckInterval is how many cycles the run loop executes between
// context checks. At simulator speeds (hundreds of thousands of cycles
// per second) 4096 cycles is a few milliseconds of wall clock — far
// below any human-visible progress interval — while keeping the check
// itself (one predictable branch per cycle, one ctx.Err call per
// interval) invisible in the hot-loop profile.
const cancelCheckInterval = 4096

// RunContext is Run with cancellation: the cycle loop checks ctx every
// cancelCheckInterval cycles and returns ctx.Err() — the machine state
// is left mid-flight and must not be reused for measurement — when the
// context is canceled or its deadline passes. Statistics cover only the
// measured region.
func (c *Core) RunContext(ctx context.Context, warmup, measure uint64) (*Stats, error) {
	if err := c.runUntil(ctx, c.stats.Committed+warmup); err != nil {
		return nil, err
	}
	c.stats.reset()
	start := c.cycle
	err := c.runUntil(ctx, c.stats.Committed+measure)
	c.stats.Cycles = c.cycle - start
	if err != nil {
		return nil, err
	}
	return &c.stats, nil
}

func (c *Core) runUntil(ctx context.Context, committedTarget uint64) error {
	lastCommitted := c.stats.Committed
	stuck := uint64(0)
	check := uint64(cancelCheckInterval)
	for c.stats.Committed < committedTarget {
		c.Cycle()
		if c.stats.Committed == lastCommitted {
			stuck++
			if stuck > 200000 {
				panic(fmt.Sprintf("core: no commit for %d cycles at cycle %d (%s)", stuck, c.cycle, c.debugState()))
			}
		} else {
			stuck = 0
			lastCommitted = c.stats.Committed
		}
		check--
		if check == 0 {
			check = cancelCheckInterval
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *Core) debugState() string {
	head := "empty"
	if c.robCount > 0 {
		e := &c.rob[c.robHead]
		head = fmt.Sprintf("head %v csn=%d issued=%v completed=%v readyAt=%d inIQ=%v wrong=%v",
			e.u.String(), e.csn, e.issued, e.completed, e.readyAt, e.inIQ, e.u.WrongPath)
	}
	return fmt.Sprintf("rob=%d iq=%d lq=%d sq=%d freeInt=%d ckpts=%d diverged=%v fstall=%d; %s",
		c.robCount, len(c.iq), c.lqTail-c.lqHead, c.sqTail-c.sqHead,
		c.rf.FreeList(isa.IntReg).Len(), c.liveCkpts, c.diverged, c.fetchStallUntil, head)
}

// robIndexAfter returns the ring index i+1.
func (c *Core) robNext(i int) int {
	i++
	if i == len(c.rob) {
		return 0
	}
	return i
}

// forEachROB visits valid entries oldest-first.
func (c *Core) forEachROB(f func(idx int, e *robEntry) bool) {
	i := c.robHead
	for n := 0; n < c.robCount; n++ {
		if !f(i, &c.rob[i]) {
			return
		}
		i = c.robNext(i)
	}
}

func (c *Core) windowAt(csn uint64) *winEntry {
	return &c.window[csn%uint64(len(c.window))]
}

func (c *Core) epochOf(p regfile.PhysReg) uint32 {
	return c.releaseEpoch[p.Class()][p.Index()]
}

// releaseReg returns p to the free list and bumps its epoch so stale
// window entries can no longer offer it for bypassing.
func (c *Core) releaseReg(p regfile.PhysReg) {
	c.releaseEpoch[p.Class()][p.Index()]++
	c.rf.Release(p)
}

func (c *Core) sqFind(csn uint64) *sqEntry {
	for i := c.sqHead; i < c.sqTail; i++ {
		e := &c.sq[i%uint64(len(c.sq))]
		if e.valid && e.csn == csn {
			return e
		}
	}
	return nil
}

// overlap reports whether two byte ranges intersect.
func overlap(addrA uint64, widthA uint8, addrB uint64, widthB uint8) bool {
	endA := addrA + uint64(widthA)/8
	endB := addrB + uint64(widthB)/8
	return addrA < endB && addrB < endA
}

// contains reports whether [addrB,widthB) fully covers [addrA,widthA).
func contains(addrOuter uint64, widthOuter uint8, addrInner uint64, widthInner uint8) bool {
	return addrOuter <= addrInner &&
		addrInner+uint64(widthInner)/8 <= addrOuter+uint64(widthOuter)/8
}
