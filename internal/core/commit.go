package core

import "repro/internal/isa"

// commit retires up to CommitWidth completed µops in order. Retiring an
// instruction that overwrites an architectural mapping reclaims the old
// physical register — through the tracking structure's CAM when the
// reclaim flag is set (§4.3.4) — either eagerly or lazily (release_head,
// §3.3). Committing also trains the SMB infrastructure (CSN map, DDT,
// distance predictor, §3.1) and maintains the committed front-end state
// used by commit-level flushes (memory traps, bypass validation failures).
//
//repro:hotpath
func (c *Core) commit() {
	for n := 0; n < c.cfg.CommitWidth; n++ {
		if c.robCount == 0 {
			return
		}
		e := &c.rob[c.robHead]
		if !e.completed {
			return
		}
		if e.u.WrongPath {
			// A wrong-path µop can only reach the head if its branch has
			// not resolved yet — it cannot, commit must wait.
			return
		}
		if e.needsFlush != flushNone {
			c.commitFlush(e)
			return
		}
		c.retire(e)
		e.valid = false
		c.robHead = c.robNext(c.robHead)
		c.robCount--
	}
}

func (c *Core) retire(e *robEntry) {
	u := &e.u
	myCSN := e.csn
	if c.tracer != nil {
		c.tracer.Committed(c.cycle, myCSN)
	}

	c.stats.Committed++
	switch u.Op {
	case isa.Load:
		c.stats.CommittedLoads++
		if e.bypassed {
			c.stats.CommittedBypassed++
			if e.bypassFromCommitted {
				c.stats.BypassedFromCommitted++
			}
		}
	case isa.Store:
		c.stats.CommittedStores++
	case isa.Branch:
		c.stats.CommittedBranches++
		if u.Kind == isa.BrCond {
			c.stats.CommittedCondBranches++
		}
	case isa.Move:
		c.stats.CommittedMoves++
	}
	if e.eliminated {
		c.stats.CommittedEliminated++
	}

	// Architectural mapping update + old register reclaim.
	if u.HasDest() {
		if e.oldDestPhys.Valid() {
			item := reclaimItem{
				phys: e.oldDestPhys,
				arch: u.Dest,
				flag: e.oldDestFlag,
				prod: myCSN,
			}
			if c.cfg.SMB.BypassCommitted {
				c.pendingReclaim = append(c.pendingReclaim, item)
				if len(c.pendingReclaim) >= c.cfg.ROBSize {
					c.drainPendingReclaim(c.cfg.CommitWidth)
				}
			} else {
				c.processReclaim(item)
			}
		}
		c.rf.CRM.Set(u.Dest, e.destPhys)
		if e.allocatedFL {
			c.committedFLHead[u.Dest.Class]++
		}
		if e.eliminated || e.bypassed {
			c.tracker.OnCommitShare(e.destPhys)
		}
	}

	// Committed reclaim-flag maintenance (mirrors applyFlagRules).
	switch u.Op {
	case isa.Load:
		c.setCRMFlag(u.Dest, true)
	case isa.Store:
		if u.Src[0].Valid() {
			c.setCRMFlag(u.Src[0], true)
		}
	default:
		if u.HasDest() {
			c.setCRMFlag(u.Dest, e.eliminated || e.bypassed)
		}
	}
	if e.eliminated {
		c.setCRMFlag(u.Src[0], true)
		c.setCRMFlag(u.Dest, true)
	}

	// Committed front-end state for commit-level flush recovery.
	if u.IsBranch() {
		switch u.Kind {
		case isa.BrCond:
			c.commitHist.Push(u.Taken, u.PC)
		case isa.BrCall:
			c.commitRASTop = (c.commitRASTop + 1) % len(c.commitRAS)
			c.commitRAS[c.commitRASTop] = u.FallThrough
		case isa.BrRet:
			c.commitRASTop--
			if c.commitRASTop < 0 {
				c.commitRASTop = len(c.commitRAS) - 1
			}
		}
		c.releaseCheckpoint(e.ckptIdx)
	}

	// Stores write back after commit; unblock partial-overlap loads and
	// retire the Store Sets LFST entry.
	if u.Op == isa.Store {
		wbAt := c.mem.WriteData(u.PC, u.MemAddr, c.cycle)
		c.resolveBlockedLoads(e.csn, wbAt)
		c.ss.StoreRetired(u.PC, e.csn)
		s := &c.sq[uint64(e.sqIdx)%uint64(len(c.sq))]
		s.valid = false
		for c.sqHead < c.sqTail && !c.sq[c.sqHead%uint64(len(c.sq))].valid {
			c.sqHead++
		}
	}
	if u.Op == isa.Load {
		l := &c.lq[uint64(e.lqIdx)%uint64(len(c.lq))]
		l.valid = false
		for c.lqHead < c.lqTail && !c.lq[c.lqHead%uint64(len(c.lq))].valid {
			c.lqHead++
		}
	}

	// SMB commit-side training.
	if c.trainer != nil {
		c.trainer.Commit(u, myCSN, &e.histSnap)
	}

	// Mark the producer window entry committed (reachable for committed
	// bypassing until its register is reclaimed, §3.3).
	w := c.windowAt(myCSN)
	if w.valid && w.csn == myCSN {
		w.committed = true
	}

	c.commitCSN = myCSN + 1
}

// processReclaim frees the old physical register of a committed
// architectural overwrite, consulting the tracking structure when the
// reclaim flag requires it.
func (c *Core) processReclaim(item reclaimItem) {
	if c.cfg.ReclaimFlagFilter && !item.flag {
		c.stats.ReclaimSkippedByFlag++
		c.releaseReg(item.phys)
		return
	}
	c.stats.noteReclaimCheck(item.prod)
	if c.tracker.OnCommitOverwrite(item.phys, item.arch) {
		c.releaseReg(item.phys)
	}
}

// drainPendingReclaim processes up to n deferred reclaims (lazy mode's
// post-commit scan from release_head, §3.3).
func (c *Core) drainPendingReclaim(n int) {
	if n > len(c.pendingReclaim) {
		n = len(c.pendingReclaim)
	}
	for i := 0; i < n; i++ {
		c.processReclaim(c.pendingReclaim[i])
	}
	c.pendingReclaim = c.pendingReclaim[:copy(c.pendingReclaim, c.pendingReclaim[n:])]
}

func (c *Core) setCRMFlag(r isa.Reg, v bool) {
	if r.Valid() {
		c.crmFlags[r.Class][r.Index] = v
	}
}

// commitFlush handles flush-at-commit events: memory-order traps and SMB
// validation failures. Everything in flight (including the offender) is
// squashed; the renamer is restored from the committed state (CRM +
// committed free-list pointers, §4.1's "no checkpointing necessary" path);
// the tracker rolls back to its architectural reference counts; fetch
// restarts at the offending µop.
func (c *Core) commitFlush(e *robEntry) {
	u := &e.u
	switch e.needsFlush {
	case flushMemOrder:
		c.stats.MemTraps++
	case flushBypass:
		c.stats.BypassMispredicts++
		if c.dist != nil {
			// Reset confidence so the refetched load does not
			// immediately re-bypass with the same wrong distance.
			c.dist.Mispredict(u.PC, &e.histSnap)
		}
	}

	resume := e.streamIdx
	nSquashed := c.robCount
	if c.tracer != nil {
		kind := "memory-order trap"
		if e.needsFlush == flushBypass {
			kind = "bypass validation failure"
		}
		c.tracer.Flush(c.cycle, kind, nSquashed)
	}

	// Squash everything.
	c.forEachROB(func(idx int, re *robEntry) bool {
		if c.tracer != nil {
			c.tracer.Squashed(c.cycle, re.csn)
		}
		if re.ckptIdx >= 0 {
			c.releaseCheckpoint(re.ckptIdx)
		}
		re.valid = false
		return true
	})
	c.stats.SquashedUops += uint64(nSquashed)
	c.robHead, c.robTail, c.robCount = 0, 0, 0
	c.iq = c.iq[:0]
	c.inflight = c.inflight[:0]
	c.lqHead, c.lqTail = 0, 0
	c.sqHead, c.sqTail = 0, 0
	for i := range c.lq {
		c.lq[i].valid = false
	}
	for i := range c.sq {
		c.sq[i].valid = false
	}
	c.fqHead, c.fqTail = 0, 0

	// Renamer: committed state.
	c.rf.RM = c.rf.CRM
	c.flags = c.crmFlags
	c.rf.FreeList(isa.IntReg).RestoreHead(c.committedFLHead[0])
	c.rf.FreeList(isa.FPReg).RestoreHead(c.committedFLHead[1])
	c.rf.NoteHeadRestored(isa.IntReg)
	c.rf.NoteHeadRestored(isa.FPReg)
	for _, p := range c.tracker.RestoreToCommit() {
		c.releaseReg(p)
	}

	// Front end: committed history and RAS.
	c.bp.RestoreCommitted(c.commitHist, c.commitRAS, c.commitRASTop)

	c.renameCSN = c.commitCSN
	c.fetchPos = resume
	c.diverged = false
	penalty := c.tracker.SquashPenalty(nSquashed)
	c.fetchStallUntil = c.cycle + 1 + penalty
	c.stats.RecoveryCycles += penalty
}
