package core

import (
	"repro/internal/isa"
	"repro/internal/refcount"
	"repro/internal/regfile"
)

// rename processes up to RenameWidth µops per cycle from the front-end
// queue: register renaming, Move Elimination (§2), SMB bypassing through
// the ROB-indexed producer window (§3.2), Store Sets lookups, and
// checkpoint allocation at branches (§4.1).
//
//repro:hotpath
func (c *Core) rename() {
	for n := 0; n < c.cfg.RenameWidth; n++ {
		if c.fqHead == c.fqTail {
			return
		}
		fe := &c.fq[c.fqHead%uint64(len(c.fq))]
		if fe.readyAt > c.cycle {
			if n == 0 {
				c.stats.StallFrontEnd++
			}
			return
		}
		if c.robCount >= c.cfg.ROBSize {
			if n == 0 {
				c.stats.StallROB++
			}
			return
		}
		u := &fe.u

		// Resource checks before any state change. Eliminated moves will
		// not occupy the scheduler, but rename conservatively requires a
		// free slot (elimination can still be rejected by the tracker).
		if len(c.iq) >= c.cfg.IQSize {
			if n == 0 {
				c.stats.StallIQ++
			}
			return
		}
		if u.Op == isa.Load && c.lqTail-c.lqHead >= uint64(c.cfg.LQSize) {
			if n == 0 {
				c.stats.StallLQ++
			}
			return
		}
		if u.Op == isa.Store && c.sqTail-c.sqHead >= uint64(c.cfg.SQSize) {
			if n == 0 {
				c.stats.StallSQ++
			}
			return
		}
		if u.HasDest() && c.rf.FreeList(u.Dest.Class).Len() == 0 {
			// Conservative: even a bypassed µop stalls when no register is
			// free, matching a machine that checks availability up front.
			if c.cfg.SMB.BypassCommitted {
				c.drainPendingReclaim(c.cfg.RenameWidth)
			}
			if c.rf.FreeList(u.Dest.Class).Len() == 0 {
				if n == 0 {
					c.stats.StallFreeList++
				}
				return
			}
		}
		ckptIdx := -1
		if u.IsBranch() {
			ckptIdx = c.freeCheckpointSlot()
			if ckptIdx < 0 {
				if n == 0 {
					c.stats.StallCkpt++
				}
				return // out of checkpoints
			}
		}
		if c.cfg.SMB.BypassCommitted &&
			c.rf.FreeList(isa.IntReg).Len() < c.cfg.LazyReclaimLowWater {
			c.drainPendingReclaim(c.cfg.RenameWidth)
		}

		c.fqHead++
		c.stats.RenamedUops++

		// Allocate the ROB entry.
		idx := c.robTail
		c.robTail = c.robNext(c.robTail)
		c.robCount++
		e := &c.rob[idx]
		*e = robEntry{
			valid:        true,
			u:            *u,
			csn:          c.renameCSN,
			streamIdx:    fe.streamIdx,
			destPhys:     regfile.NoPhysReg,
			oldDestPhys:  regfile.NoPhysReg,
			bypassPhys:   regfile.NoPhysReg,
			lqIdx:        -1,
			sqIdx:        -1,
			ckptIdx:      ckptIdx,
			pred:         fe.pred,
			bpSnap:       fe.bpSnap,
			fetchMispred: fe.fetchMispred,
			resumePos:    fe.resumePos,
			histSnap:     fe.histSnap,
			smbDist:      fe.smbDist,
			smbConf:      fe.smbConf,
			dispatchAt:   c.cycle + c.cfg.RenameToDispatch + 1,
		}
		c.renameCSN++

		// Source lookups.
		for i, s := range u.Src {
			if s.Valid() {
				e.srcPhys[i] = c.rf.RM.Get(s)
			} else {
				e.srcPhys[i] = regfile.NoPhysReg
			}
		}

		// Memory dependence prediction (Store Sets). The tables are not
		// rolled back on squashes (Table 1), so an LFST entry can be
		// stale and — after the rename counter itself was rolled back —
		// even name a younger µop; a dependence is honoured only when it
		// points strictly backwards (as hardware inum comparison would).
		switch u.Op {
		case isa.Load:
			if dep, ok := c.ss.RenameLoad(u.PC); ok && dep < e.csn {
				e.hasMemDep = true
				e.memDepCSN = dep
			}
		case isa.Store:
			if dep, ok := c.ss.RenameStore(u.PC, e.csn); ok && dep < e.csn {
				e.hasMemDep = true
				e.memDepCSN = dep
			}
		}

		// Move Elimination.
		if c.me.Candidate(u) {
			if c.tryEliminate(e) {
				c.finishRename(e, idx)
				continue
			}
		}

		// Speculative Memory Bypassing.
		if u.Op == isa.Load && c.cfg.SMB.Enabled && e.smbConf && e.smbDist > 0 {
			c.trySMB(e)
		}

		// Destination allocation for non-shared µops.
		if u.HasDest() && !e.eliminated && !e.bypassed {
			p, ok := c.rf.Alloc(u.Dest.Class)
			if !ok {
				panic("core: free list empty after availability check")
			}
			e.allocatedFL = true
			e.oldDestPhys = c.rf.RM.Get(u.Dest)
			e.oldDestFlag = c.getFlag(u.Dest)
			e.destPhys = p
			c.rf.RM.Set(u.Dest, p)
		}

		c.applyFlagRules(e)
		c.finishRename(e, idx)
	}
}

// traceRenamed reports a rename event to an attached tracer.
func (c *Core) traceRenamed(e *robEntry) {
	if c.tracer != nil {
		c.tracer.Renamed(c.cycle, &e.u, e.csn, e.eliminated, e.bypassed)
	}
}

// tryEliminate performs Move Elimination: map the destination onto the
// source's physical register and record the share (§2). Returns false when
// the tracking structure rejects the share (the move then executes
// normally).
func (c *Core) tryEliminate(e *robEntry) bool {
	u := &e.u
	src := u.Src[0]
	p := c.rf.RM.Get(src)

	if src == u.Dest {
		// Self-move: the mapping is unchanged and no reference is
		// created; oldDestPhys stays invalid so commit skips reclaim.
		c.me.NoteSelfMove()
		e.eliminated = true
		e.destPhys = p
		e.completed = true
		e.issued = true
		e.readyAt = c.cycle
		return true
	}

	c.stats.noteShareAttempt(e.csn)
	if !c.tracker.TryShare(p, refcount.KindME, u.Dest, src) {
		c.me.NoteRejected()
		return false
	}
	c.me.NoteEliminated()
	e.eliminated = true
	e.destPhys = p
	e.oldDestPhys = c.rf.RM.Get(u.Dest)
	e.oldDestFlag = c.getFlag(u.Dest)
	c.rf.RM.Set(u.Dest, p)
	// Eliminated moves complete at rename: they never issue.
	e.completed = true
	e.issued = true
	e.readyAt = c.cycle
	// Flag both architectural registers (§4.3.4).
	c.setFlag(src, true)
	c.setFlag(u.Dest, true)
	return true
}

// trySMB attempts to bypass the load's destination onto the physical
// register of the instruction `smbDist` µops back, located through the
// producer window (pending-dispatch µops, ROB entries, and — with lazy
// reclaim — recently committed entries, §3.2-3.3).
func (c *Core) trySMB(e *robEntry) {
	u := &e.u
	if e.csn < uint64(e.smbDist) {
		return
	}
	target := e.csn - uint64(e.smbDist)
	w := c.windowAt(target)
	if !w.valid || w.csn != target || !w.hasDest {
		return
	}
	if w.destPhys.Class() != u.Dest.Class {
		return // cross-class bypass is not a register share
	}
	fromCommitted := false
	if w.committed {
		if !c.cfg.SMB.BypassCommitted {
			return // case (iii) of §3.2: already out of the window
		}
		if w.epoch != c.epochOf(w.destPhys) {
			return // register already reclaimed: not safe
		}
		fromCommitted = true
	}

	c.stats.noteShareAttempt(e.csn)
	if !c.tracker.TryShare(w.destPhys, refcount.KindSMB, u.Dest, isa.NoReg) {
		c.stats.BypassAborted++
		return
	}
	e.bypassed = true
	e.bypassFromCommitted = fromCommitted
	e.bypassPhys = w.destPhys
	e.destPhys = w.destPhys
	e.oldDestPhys = c.rf.RM.Get(u.Dest)
	e.oldDestFlag = c.getFlag(u.Dest)
	c.rf.RM.Set(u.Dest, w.destPhys)
}

// applyFlagRules maintains the reclaim-filter flags of §4.3.4: loads flag
// their destination, stores flag their data source, other instructions
// clear their destination's flag (ME flagged both already in
// tryEliminate).
func (c *Core) applyFlagRules(e *robEntry) {
	u := &e.u
	switch u.Op {
	case isa.Load:
		c.setFlag(u.Dest, true)
	case isa.Store:
		if u.Src[0].Valid() {
			c.setFlag(u.Src[0], true)
		}
	default:
		if u.HasDest() {
			if e.bypassed || e.eliminated {
				c.setFlag(u.Dest, true)
			} else {
				c.setFlag(u.Dest, false)
			}
		}
	}
}

// finishRename inserts the renamed µop into the scheduler/LSQ/producer
// window and takes the branch checkpoint.
func (c *Core) finishRename(e *robEntry, idx int) {
	u := &e.u
	c.traceRenamed(e)

	// Producer window entry (reachable by SMB's ROB indexing).
	w := c.windowAt(e.csn)
	*w = winEntry{
		valid:    true,
		csn:      e.csn,
		hasDest:  u.HasDest(),
		destPhys: e.destPhys,
	}
	if u.HasDest() {
		w.epoch = c.epochOf(e.destPhys)
	}

	// LSQ allocation.
	switch u.Op {
	case isa.Load:
		slot := c.lqTail % uint64(len(c.lq))
		c.lq[slot] = lqEntry{valid: true, robIdx: idx, csn: e.csn, addr: u.MemAddr, width: u.Width}
		e.lqIdx = int64(c.lqTail)
		c.lqTail++
	case isa.Store:
		slot := c.sqTail % uint64(len(c.sq))
		c.sq[slot] = sqEntry{valid: true, robIdx: idx, csn: e.csn, pc: u.PC, addr: u.MemAddr, width: u.Width, wrong: u.WrongPath}
		e.sqIdx = int64(c.sqTail)
		c.sqTail++
	}

	// Scheduler entry (eliminated moves skip it).
	if !e.eliminated {
		e.inIQ = true
		c.iq = append(c.iq, idx)
	}

	// Branch checkpoint, capturing post-branch renamer state and the
	// fetch-time front-end snapshot (§4.1).
	if u.IsBranch() && e.ckptIdx >= 0 {
		ck := &c.ckpts[e.ckptIdx]
		ck.inUse = true
		ck.csn = e.csn
		ck.rm = c.rf.RM
		ck.flags = c.flags
		ck.flHead[0] = c.rf.FreeList(isa.IntReg).Head()
		ck.flHead[1] = c.rf.FreeList(isa.FPReg).Head()
		ck.tracker = c.tracker.Checkpoint()
		ck.bp = e.bpSnap
		ck.resumePos = e.resumePos
		ck.renameCSN = c.renameCSN
		c.liveCkpts++
		c.noteCheckpointCount()
	}
}

func (c *Core) freeCheckpointSlot() int {
	for i := range c.ckpts {
		if !c.ckpts[i].inUse {
			return i
		}
	}
	return -1
}

func (c *Core) releaseCheckpoint(idx int) {
	if idx >= 0 && c.ckpts[idx].inUse {
		c.ckpts[idx].inUse = false
		c.tracker.ReleaseSnapshot(c.ckpts[idx].tracker)
		c.ckpts[idx].tracker = nil
		c.liveCkpts--
		c.noteCheckpointCount()
	}
}

// noteCheckpointCount informs trackers that model per-checkpoint commit
// costs (the RDA) how many checkpoints are live.
func (c *Core) noteCheckpointCount() {
	if t, ok := c.tracker.(interface{ NoteLiveCheckpoints(int) }); ok {
		t.NoteLiveCheckpoints(c.liveCkpts)
	}
}

func (c *Core) getFlag(r isa.Reg) bool {
	if !r.Valid() {
		return false
	}
	return c.flags[r.Class][r.Index]
}

func (c *Core) setFlag(r isa.Reg, v bool) {
	if r.Valid() {
		c.flags[r.Class][r.Index] = v
	}
}
