package core

// Steady-state allocation regression tests: after warmup, the per-cycle
// simulation loop must not touch the heap at all — map-backed reference
// counting, per-branch RAS/tracker snapshot allocation and per-call
// scratch buffers used to dominate the hot loop's profile.

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/workloads"
)

// moveChainProgram is a loop of eliminable moves interleaved with
// single-cycle adds: every move is an ME candidate, so rename exercises
// the tracker share path at full width.
func moveChainProgram() *program.Program {
	return loopProgram(func(b *program.Builder) {
		for i := 0; i < 6; i++ {
			b.Emit(program.SInst{Op: isa.Move, Sem: program.SemMov,
				Src: [2]isa.Reg{isa.IntR(8)}, Dest: isa.IntR(9), Width: 64})
			b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAddImm,
				Src: [2]isa.Reg{isa.IntR(9)}, Dest: isa.IntR(8), Imm: 1, Width: 64})
		}
	})
}

// steadyCore builds a core with the full optimization stack and runs it
// past every warmup transient (structure growth, page faults in the
// functional memory, pool filling).
func steadyCore(tb testing.TB, kind TrackerKind, bench string) *Core {
	tb.Helper()
	cfg := DefaultConfig()
	cfg.ME.Enabled = true
	cfg.SMB.Enabled = true
	cfg.SMB.BypassCommitted = true
	cfg.Tracker.Kind = kind
	spec, err := workloads.Resolve(bench)
	if err != nil {
		tb.Fatal(err)
	}
	c := New(cfg, workloads.Build(spec))
	c.Run(0, 100_000)
	return c
}

// TestSteadyStateCycleDoesNotAllocate pins zero heap allocations per
// cycle in the steady-state loop for every tracker scheme.
func TestSteadyStateCycleDoesNotAllocate(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation regression needs the long warmup")
	}
	for _, kind := range []TrackerKind{TrackerISRB, TrackerUnlimited, TrackerRDA, TrackerMIT, TrackerCounters} {
		c := steadyCore(t, kind, "crafty")
		per := testing.AllocsPerRun(10, func() {
			for i := 0; i < 1000; i++ {
				c.Cycle()
			}
		})
		if per != 0 {
			t.Errorf("%s: %.1f allocations per 1000 steady-state cycles, want 0", kind, per)
		}
	}
}

// BenchmarkCycleISRB measures the full-pipeline per-cycle cost with the
// optimization stack on (the configuration cmd/bench pins).
func BenchmarkCycleISRB(b *testing.B) {
	c := steadyCore(b, TrackerISRB, "crafty")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Cycle()
	}
}

// BenchmarkCycleUnlimited is the same loop under the ideal tracker (the
// scheme whose map-backed storage used to dominate).
func BenchmarkCycleUnlimited(b *testing.B) {
	c := steadyCore(b, TrackerUnlimited, "crafty")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Cycle()
	}
}

// BenchmarkRenameMoveChain isolates the rename stage as far as the
// pipeline allows: a pure eliminable-move chain renames at full width
// every cycle while the scheduler and memory system stay idle, so the
// per-cycle cost is rename (ME lookups, tracker shares, checkpointing)
// plus commit-side reclaim.
func BenchmarkRenameMoveChain(b *testing.B) {
	cfg := DefaultConfig()
	cfg.ME.Enabled = true
	cfg.Tracker.Kind = TrackerISRB
	c := New(cfg, moveChainProgram())
	c.Run(0, 50_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Cycle()
	}
}
