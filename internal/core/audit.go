package core

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/regfile"
)

// DrainAndAudit stops fetching, drains the pipeline, forces all deferred
// (lazy) reclaims, and then audits physical register conservation: every
// register must be accounted for exactly once as free, architecturally
// mapped, or retained by the reference-counting structure. With register
// sharing, the failure mode the paper's scheme must exclude is a *leak* —
// a register that is neither free nor reachable — which is exactly what a
// lost `referenced`/`committed` count would produce (§4.3).
//
// It returns an error describing the first discrepancy found. The test
// suite runs it after full simulations under every tracker scheme.
func (c *Core) DrainAndAudit() error {
	// Drain: stop fetch by clearing the front-end queue and refusing to
	// refill it, then cycle until the ROB empties.
	c.fetchStallUntil = ^uint64(0) >> 1
	c.fqHead, c.fqTail = 0, 0
	for guard := 0; c.robCount > 0; guard++ {
		if guard > 1_000_000 {
			return fmt.Errorf("core: pipeline failed to drain (%s)", c.debugState())
		}
		c.Cycle()
	}
	// Force every deferred reclaim (lazy mode retains them indefinitely).
	c.drainPendingReclaim(len(c.pendingReclaim))

	// The reachability scratch is reused across invocations (the audit
	// runs after every directed/property simulation; allocating a fresh
	// map per call was a measurable cost there): one flag per physical
	// register, cleared on the way in.
	if len(c.auditMapped) < c.cfg.PhysRegsPerClass {
		c.auditMapped = make([]bool, c.cfg.PhysRegsPerClass)
	}
	for class := 0; class < 2; class++ {
		cls := isa.RegClass(class)
		mapped := c.auditMapped[:c.cfg.PhysRegsPerClass]
		for i := range mapped {
			mapped[i] = false
		}
		// After a drain RM == CRM must hold: every speculative mapping
		// either committed or was squashed.
		nMapped := 0
		for i := 0; i < isa.NumArchRegs; i++ {
			r := isa.Reg{Class: cls, Index: uint8(i)}
			if c.rf.RM.Get(r) != c.rf.CRM.Get(r) {
				return fmt.Errorf("core: drained RM/CRM disagree on %v: %v vs %v",
					r, c.rf.RM.Get(r), c.rf.CRM.Get(r))
			}
			p := c.rf.RM.Get(r)
			if p.Class() != cls {
				return fmt.Errorf("core: %v maps to %v of the wrong class", r, p)
			}
			if !mapped[p.Index()] {
				mapped[p.Index()] = true
				nMapped++
			}
		}

		free, trackedOnly := 0, 0
		for i := 0; i < c.cfg.PhysRegsPerClass; i++ {
			p := regfile.MakePhys(cls, i)
			inFL := c.rf.InFreeList(p)
			if inFL {
				free++
			}
			tracked := c.tracker.IsShared(p)
			switch {
			case inFL && mapped[i]:
				return fmt.Errorf("core: %v is free AND architecturally mapped", p)
			case inFL && tracked:
				return fmt.Errorf("core: %v is free AND still tracked by %s", p, c.tracker.Name())
			case !inFL && !mapped[i] && !tracked:
				return fmt.Errorf("core: %v leaked: neither free, mapped, nor tracked", p)
			}
			if tracked && !mapped[i] && !inFL {
				trackedOnly++
			}
		}
		// Exact conservation. Note that |mapped| can be below
		// NumArchRegs: after an eliminated move commits, two
		// architectural registers legitimately share one physical
		// register (that is the whole point of the paper).
		if free+nMapped+trackedOnly != c.cfg.PhysRegsPerClass {
			return fmt.Errorf("core: %s conservation broken: free=%d mapped=%d tracked-only=%d of %d",
				cls, free, nMapped, trackedOnly, c.cfg.PhysRegsPerClass)
		}
	}
	return nil
}
