package core

import "repro/internal/isa"

// issue is the 6-wide unified scheduler of Table 1. Entries are selected
// oldest-first once their sources are ready (full bypass network: a
// dependent of a 1-cycle op issues back-to-back) and a functional unit of
// the right class is free: 4 ALUs, 1 integer mul/div unit (divide not
// pipelined), 2 FP adders, 2 FP mul/div units (divide not pipelined), two
// load/store ports and one store-only port.
//
//repro:hotpath
func (c *Core) issue() {
	issued := 0
	alu, fp, fpDiv, ldst, st := 0, 0, 0, 0, 0
	mulDivUsed := false

	keep := c.iq[:0]
	for qi := 0; qi < len(c.iq); qi++ {
		idx := c.iq[qi]
		e := &c.rob[idx]
		if !e.valid || !e.inIQ {
			continue // squashed or already gone
		}
		if issued >= c.cfg.IssueWidth || e.dispatchAt > c.cycle || !c.srcsReady(e) {
			keep = append(keep, idx) //repro:allow hotalloc -- amortized: appends into a buffer retained on c and resliced to [:0]; steady state never grows
			continue
		}

		ok := false
		switch e.u.Op {
		case isa.ALU, isa.Move, isa.Nop, isa.Branch:
			if alu < c.cfg.NumALU {
				alu++
				ok = true
				c.execute(idx, e, ExecLatency(&e.u))
			}
		case isa.MulDiv:
			if !mulDivUsed && c.cycle >= c.mulDivBusyUntil {
				mulDivUsed = true
				ok = true
				lat := ExecLatency(&e.u)
				if e.u.Heavy {
					c.mulDivBusyUntil = c.cycle + lat // not pipelined
				}
				c.execute(idx, e, lat)
			}
		case isa.FP:
			if fp < c.cfg.NumFP {
				fp++
				ok = true
				c.execute(idx, e, ExecLatency(&e.u))
			}
		case isa.FPMulDiv:
			if fpDiv < c.cfg.NumFPMulDiv {
				if unit := c.freeFPDivUnit(); unit >= 0 {
					fpDiv++
					ok = true
					lat := ExecLatency(&e.u)
					if e.u.Heavy {
						c.fpDivBusyUntil[unit] = c.cycle + lat
					}
					c.execute(idx, e, lat)
				}
			}
		case isa.Load:
			if ldst < c.cfg.NumLdStr && c.loadReadyToIssue(e) {
				ldst++
				ok = true
				c.issueLoad(idx, e)
			}
		case isa.Store:
			if (ldst < c.cfg.NumLdStr || st < c.cfg.NumStr) && c.storeReadyToIssue(e) {
				if ldst < c.cfg.NumLdStr {
					ldst++
				} else {
					st++
				}
				ok = true
				c.execute(idx, e, 1)
			}
		}

		if ok {
			e.inIQ = false
			issued++
			if c.tracer != nil {
				c.tracer.Issued(c.cycle, e.csn)
			}
		} else {
			keep = append(keep, idx) //repro:allow hotalloc -- amortized: appends into a buffer retained on c and resliced to [:0]; steady state never grows
		}
	}
	c.iq = keep
}

// srcsReady reports whether every register source (including the SMB
// validation source) holds its final value.
func (c *Core) srcsReady(e *robEntry) bool {
	for _, p := range e.srcPhys {
		if p.Valid() && !c.rf.Ready(p) {
			return false
		}
	}
	if e.bypassed && !c.rf.Ready(e.bypassPhys) {
		return false
	}
	return true
}

// loadReadyToIssue enforces the Store Sets dependence. Bypassed loads
// also respect it for their VALIDATION access — the dependents read the
// shared register and never wait, which is how SMB removes the cost of
// false dependencies (§3.1) without turning store-queue forwards into
// extra cache traffic.
func (c *Core) loadReadyToIssue(e *robEntry) bool {
	if !e.hasMemDep {
		return true
	}
	s := c.sqFind(e.memDepCSN)
	if s == nil || s.executed {
		return true
	}
	e.depDelayed = true
	return false
}

// storeReadyToIssue enforces same-set store ordering.
func (c *Core) storeReadyToIssue(e *robEntry) bool {
	if !e.hasMemDep {
		return true
	}
	s := c.sqFind(e.memDepCSN)
	return s == nil || s.executed
}

func (c *Core) freeFPDivUnit() int {
	for i, busy := range c.fpDivBusyUntil {
		if c.cycle >= busy {
			return i
		}
	}
	return -1
}

// execute schedules completion of a non-load µop.
func (c *Core) execute(idx int, e *robEntry, latency uint64) {
	e.issued = true
	e.readyAt = c.cycle + latency
	c.inflight = append(c.inflight, inflightRef{robIdx: idx, csn: e.csn})
}

// issueLoad performs the load's memory access: store-queue search with
// containment-based forwarding (4-cycle STLF), partial-overlap stalls
// until the store's writeback, or a cache access.
func (c *Core) issueLoad(idx int, e *robEntry) {
	e.issued = true
	c.inflight = append(c.inflight, inflightRef{robIdx: idx, csn: e.csn})
	l := &c.lq[uint64(e.lqIdx)%uint64(len(c.lq))]
	l.issued = true

	// False-dependence accounting: the load was given a Store Sets
	// dependence on a store that does not actually overlap it — an
	// enforced-but-unnecessary serialization (Fig. 4). A bypassed load's
	// dependents read the shared register and never wait, so the event
	// is not counted for it — the reduction Figure 6b reports.
	if e.hasMemDep && !e.bypassed {
		if s := c.sqFind(e.memDepCSN); s != nil && s.executed {
			if !overlap(s.addr, s.width, l.addr, l.width) {
				c.stats.FalseDeps++
			}
		}
	}

	// Youngest older overlapping store with a known address. A store
	// whose execution completes within a cycle also counts: its address
	// CAM result is on the wire when the load's access starts, exactly
	// the same-cycle boundary real disambiguation hardware resolves in
	// the store's favour.
	var best *sqEntry
	var bestData uint64
	for i := c.sqHead; i < c.sqTail; i++ {
		s := &c.sq[i%uint64(len(c.sq))]
		if !s.valid || s.csn >= e.csn {
			continue
		}
		dataAt := s.dataAt
		if !s.executed {
			re := &c.rob[s.robIdx]
			if !(re.valid && re.csn == s.csn && re.issued && re.readyAt <= c.cycle+1) {
				continue
			}
			dataAt = re.readyAt
		}
		if overlap(s.addr, s.width, l.addr, l.width) {
			if best == nil || s.csn > best.csn {
				best = s
				bestData = dataAt
			}
		}
	}

	switch {
	case best != nil && contains(best.addr, best.width, l.addr, l.width):
		// Store-to-load forwarding.
		start := c.cycle
		if bestData > start {
			start = bestData
		}
		e.readyAt = start + c.cfg.STLFLatency
		l.forwardedCSN = best.csn + 1
		l.doneAt = e.readyAt
		c.stats.STLFForwards++
	case best != nil:
		// Partial overlap: wait for the store to write back (Table 1).
		e.readyAt = pendingCompletion
		l.waitWBStore = best.csn
		l.doneAt = pendingCompletion
		c.stats.PartialWaits++
	default:
		e.readyAt = c.mem.ReadData(e.u.PC, l.addr, c.cycle)
		l.doneAt = e.readyAt
		c.stats.LoadsToMemory++
	}
}
