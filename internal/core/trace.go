package core

import (
	"fmt"
	"io"

	"repro/internal/isa"
)

// Tracer receives per-µop pipeline lifecycle events. Attach one with
// Core.AttachTracer to debug workloads or the pipeline itself; the
// TextTracer implementation prints a gem5-O3-pipeview-style line per
// event.
type Tracer interface {
	// Renamed fires when a µop enters the ROB. eliminated/bypassed report
	// the rename-time optimizations applied to it.
	Renamed(cycle uint64, u *isa.Uop, csn uint64, eliminated, bypassed bool)
	// Issued fires when the scheduler selects the µop.
	Issued(cycle uint64, csn uint64)
	// Completed fires at writeback.
	Completed(cycle uint64, csn uint64)
	// Committed fires at retirement.
	Committed(cycle uint64, csn uint64)
	// Squashed fires when the µop is discarded by a recovery.
	Squashed(cycle uint64, csn uint64)
	// Flush fires on commit-level flushes (memory traps, bypass
	// validation failures) and branch recoveries.
	Flush(cycle uint64, kind string, squashed int)
}

// AttachTracer installs t (nil detaches). Tracing is for debugging; it
// does not affect timing.
func (c *Core) AttachTracer(t Tracer) { c.tracer = t }

// TextTracer writes one line per event.
type TextTracer struct {
	W io.Writer
	// OnlyWrongPath limits µop events to wrong-path work (useful when
	// studying recovery).
	OnlyWrongPath bool
}

// Renamed implements Tracer.
func (t *TextTracer) Renamed(cycle uint64, u *isa.Uop, csn uint64, eliminated, bypassed bool) {
	if t.OnlyWrongPath && !u.WrongPath {
		return
	}
	tag := ""
	if eliminated {
		tag = " [eliminated]"
	}
	if bypassed {
		tag = " [bypassed]"
	}
	wp := ""
	if u.WrongPath {
		wp = " [wrong-path]"
	}
	fmt.Fprintf(t.W, "%8d rename  #%-8d %v%s%s\n", cycle, csn, u, tag, wp)
}

// Issued implements Tracer.
func (t *TextTracer) Issued(cycle uint64, csn uint64) {
	fmt.Fprintf(t.W, "%8d issue   #%d\n", cycle, csn)
}

// Completed implements Tracer.
func (t *TextTracer) Completed(cycle uint64, csn uint64) {
	fmt.Fprintf(t.W, "%8d complete #%d\n", cycle, csn)
}

// Committed implements Tracer.
func (t *TextTracer) Committed(cycle uint64, csn uint64) {
	fmt.Fprintf(t.W, "%8d commit  #%d\n", cycle, csn)
}

// Squashed implements Tracer.
func (t *TextTracer) Squashed(cycle uint64, csn uint64) {
	fmt.Fprintf(t.W, "%8d squash  #%d\n", cycle, csn)
}

// Flush implements Tracer.
func (t *TextTracer) Flush(cycle uint64, kind string, squashed int) {
	fmt.Fprintf(t.W, "%8d FLUSH   %s (%d squashed)\n", cycle, kind, squashed)
}

var _ Tracer = (*TextTracer)(nil)
