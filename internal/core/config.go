// This file holds the machine configuration (the paper's Table 1) and
// the tracker/latency selection it implies; the package documentation
// lives in core.go with the pipeline itself.
package core

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/moveelim"
	"repro/internal/refcount"
	"repro/internal/smb"
	"repro/internal/storesets"
)

// TrackerKind selects the register reference counting scheme.
type TrackerKind string

// Tracker kinds (§4).
const (
	TrackerISRB      TrackerKind = "isrb"
	TrackerUnlimited TrackerKind = "unlimited"
	TrackerCounters  TrackerKind = "counters"
	TrackerMIT       TrackerKind = "mit"
	TrackerRDA       TrackerKind = "rda"
)

// TrackerConfig selects and sizes the reference counting scheme.
type TrackerConfig struct {
	Kind        TrackerKind
	Entries     int // ISRB/MIT/RDA entries
	CounterBits int // ISRB counter width (§6.3: 3 bits suffice)
}

// DistanceKind selects the SMB distance predictor.
type DistanceKind string

// Distance predictor kinds (§3.1).
const (
	DistanceTAGE DistanceKind = "tage"
	DistanceNoSQ DistanceKind = "nosq"
)

// SMBConfig controls Speculative Memory Bypassing.
type SMBConfig struct {
	Enabled bool
	// LoadLoad generalizes bypassing to load-load pairs (§3).
	LoadLoad bool
	// Predictor picks the Instruction Distance predictor flavour.
	Predictor DistanceKind
	// DDT sizes the Data Dependency Table (Entries == 0: unlimited).
	DDT smb.DDTConfig
	// BypassCommitted allows bypassing from committed instructions still
	// resident in the ROB, with lazy register reclaiming (§3.3).
	BypassCommitted bool
	// TAGEGeometry optionally overrides the TAGE-like distance
	// predictor's history lengths (extension experiments): nil keeps the
	// paper's 2/5/11/27/64 series; a non-nil empty slice selects a
	// PC-indexed base table only.
	TAGEGeometry []int
}

// Config is the full machine configuration.
type Config struct {
	// Widths.
	FetchWidth  int
	RenameWidth int
	IssueWidth  int
	CommitWidth int

	// Window sizes.
	ROBSize int
	IQSize  int
	LQSize  int
	SQSize  int

	PhysRegsPerClass int
	MaxCheckpoints   int

	// Depths: fetch-to-rename and rename-to-dispatch; the paper's core is
	// 19 cycles fetch-to-commit with a 20-cycle minimum branch penalty.
	FrontEndDepth    uint64
	RenameToDispatch uint64

	// STLFLatency is the store-to-load forwarding latency (Table 1: 4).
	STLFLatency uint64

	// Functional units (Table 1): 4 ALU (1c), 1 MulDiv (3c/25c, divide
	// not pipelined), 2 FP (3c), 2 FPMulDiv (5c/10c, divide not
	// pipelined), 2 load/store ports + 1 store-only port.
	NumALU      int
	NumMulDiv   int
	NumFP       int
	NumFPMulDiv int
	NumLdStr    int
	NumStr      int

	Branch    branch.Config
	Mem       cache.HierarchyConfig
	StoreSets storesets.Config

	ME      moveelim.Config
	SMB     SMBConfig
	Tracker TrackerConfig

	// ReclaimFlagFilter enables the Rename-Map flag of §4.3.4 that lets
	// most commits skip the ISRB CAM. It is a port-pressure optimization
	// only; turning it off changes statistics, not behaviour.
	ReclaimFlagFilter bool

	// LazyReclaimLowWater triggers the deferred reclaim scan when fewer
	// than this many registers are free (§3.3 uses rename_width × 2).
	LazyReclaimLowWater int
}

// DefaultConfig mirrors Table 1 with all optimizations OFF (the Figure 4
// baseline).
func DefaultConfig() Config {
	return Config{
		FetchWidth:  8,
		RenameWidth: 8,
		IssueWidth:  6,
		CommitWidth: 8,

		ROBSize: 192,
		IQSize:  60,
		LQSize:  72,
		SQSize:  48,

		PhysRegsPerClass: 256,
		MaxCheckpoints:   64,

		FrontEndDepth:    13,
		RenameToDispatch: 2,

		STLFLatency: 4,

		NumALU:      4,
		NumMulDiv:   1,
		NumFP:       2,
		NumFPMulDiv: 2,
		NumLdStr:    2,
		NumStr:      1,

		Branch:    branch.DefaultConfig(),
		Mem:       cache.DefaultHierarchyConfig(),
		StoreSets: storesets.DefaultConfig(),

		ME: moveelim.Config{Enabled: false, IntOnly: true},
		SMB: SMBConfig{
			Enabled:   false,
			LoadLoad:  true,
			Predictor: DistanceTAGE,
			DDT:       smb.DDTConfig{Entries: 0},
		},
		Tracker: TrackerConfig{Kind: TrackerUnlimited, Entries: 32, CounterBits: 3},

		ReclaimFlagFilter:   true,
		LazyReclaimLowWater: 16,
	}
}

// NewTracker instantiates the configured reference counting scheme.
func (c *Config) NewTracker() refcount.Tracker {
	tc := c.Tracker
	if tc.Entries <= 0 {
		tc.Entries = 32
	}
	if tc.CounterBits <= 0 {
		tc.CounterBits = 3
	}
	switch tc.Kind {
	case TrackerISRB:
		return refcount.NewISRB(tc.Entries, tc.CounterBits)
	case TrackerCounters:
		return refcount.NewPerRegCounters(2*c.PhysRegsPerClass, tc.CounterBits, c.CommitWidth)
	case TrackerMIT:
		return refcount.NewMIT(tc.Entries)
	case TrackerRDA:
		return refcount.NewRDA(tc.Entries)
	default:
		return refcount.NewUnlimited()
	}
}

// ExecLatency returns the execution latency and which unit class a µop
// uses.
func ExecLatency(u *isa.Uop) uint64 {
	switch u.Op {
	case isa.MulDiv:
		if u.Heavy {
			return 25
		}
		return 3
	case isa.FP:
		return 3
	case isa.FPMulDiv:
		if u.Heavy {
			return 10
		}
		return 5
	default: // ALU, Move (non-eliminated), Branch
		return 1
	}
}

// Check reports whether the configuration names a machine the simulator
// can build, as an error value. It is the validation the execution API
// layers (internal/sim's typed ErrBadConfig) surface to callers before
// constructing a core; New itself panics on the same conditions, since
// a caller reaching New with an unchecked bad configuration is a bug.
func (c *Config) Check() error {
	if c.ROBSize <= 0 || c.IQSize <= 0 || c.LQSize <= 0 || c.SQSize <= 0 {
		return fmt.Errorf("non-positive window size (rob=%d iq=%d lq=%d sq=%d)",
			c.ROBSize, c.IQSize, c.LQSize, c.SQSize)
	}
	if c.PhysRegsPerClass <= isa.NumArchRegs {
		return fmt.Errorf("need more than %d physical registers per class, have %d",
			isa.NumArchRegs, c.PhysRegsPerClass)
	}
	if c.RenameWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0 {
		return fmt.Errorf("non-positive pipeline width (rename=%d issue=%d commit=%d)",
			c.RenameWidth, c.IssueWidth, c.CommitWidth)
	}
	switch c.Tracker.Kind {
	case "", TrackerISRB, TrackerUnlimited, TrackerCounters, TrackerMIT, TrackerRDA:
	default:
		return fmt.Errorf("unknown tracker kind %q (known: isrb unlimited counters mit rda)", c.Tracker.Kind)
	}
	switch c.SMB.Predictor {
	case "", DistanceTAGE, DistanceNoSQ:
	default:
		return fmt.Errorf("unknown SMB distance predictor %q (known: tage nosq)", c.SMB.Predictor)
	}
	return nil
}

// Sanity checks used by New.
func (c *Config) validate() {
	if err := c.Check(); err != nil {
		panic("core: " + err.Error())
	}
}
