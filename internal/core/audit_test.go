package core

// DrainAndAudit regression tests: the audit's reachability scratch is
// reused across invocations, so it must stay correct when called
// repeatedly and on cores that have been through every recovery flavour
// (checkpoint restores, flush-at-commit traps, SMB validation failures).

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

// recoveryHeavyProgram mixes chaotic branches (checkpoint recoveries)
// with a late-address store aliasing an early load (memory traps) and a
// spill/reload pair (SMB shares to roll back).
func recoveryHeavyProgram() *program.Program {
	return loopProgram(func(b *program.Builder) {
		b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemMulImm,
			Src: [2]isa.Reg{isa.IntR(5)}, Dest: isa.IntR(5), Imm: 0x9E3779B97F4A7C15, Width: 64})
		b.EmitBranchTo(program.SInst{Op: isa.Branch, Kind: isa.BrCond, Cond: program.CondBitSet,
			Src: [2]isa.Reg{isa.IntR(5)}, Imm: 43, Width: 64}, "sk")
		b.Emit(program.SInst{Op: isa.Move, Sem: program.SemMov,
			Src: [2]isa.Reg{isa.IntR(8)}, Dest: isa.IntR(9), Width: 64})
		b.Label("sk")
		b.Emit(program.SInst{Op: isa.Load, Sem: program.SemLoad,
			Dest: isa.IntR(10), AddrReg: isa.IntR(1), Imm: 64, Width: 64})
		b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAndImm,
			Src: [2]isa.Reg{isa.IntR(10)}, Dest: isa.IntR(11), Imm: 0, Width: 64})
		b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAdd,
			Src: [2]isa.Reg{isa.IntR(1), isa.IntR(11)}, Dest: isa.IntR(12), Width: 64})
		b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAddImm,
			Src: [2]isa.Reg{isa.IntR(0)}, Dest: isa.IntR(2), Imm: 21, Width: 64})
		b.Emit(program.SInst{Op: isa.Store, Sem: program.SemStore,
			Src: [2]isa.Reg{isa.IntR(2)}, AddrReg: isa.IntR(12), Imm: 128, Width: 64})
		b.Emit(program.SInst{Op: isa.Load, Sem: program.SemLoad,
			Dest: isa.IntR(3), AddrReg: isa.IntR(1), Imm: 128, Width: 64})
	})
}

// TestAuditPassesOnPostRecoveryCore runs the recovery-heavy program under
// every scheme, requires that both recovery flavours actually fired, and
// audits register conservation afterwards — twice, because the audit's
// scratch buffer is reused between calls.
func TestAuditPassesOnPostRecoveryCore(t *testing.T) {
	for _, kind := range []TrackerKind{TrackerUnlimited, TrackerISRB, TrackerRDA, TrackerMIT, TrackerCounters} {
		cfg := DefaultConfig()
		cfg.ME.Enabled = true
		cfg.SMB.Enabled = true
		cfg.Tracker.Kind = kind
		cfg.StoreSets.ClearPeriod = 1000 // keep the trap pattern re-learning
		c := New(cfg, recoveryHeavyProgram())
		st := c.Run(0, 30_000)
		if st.BranchMispredicts == 0 {
			t.Fatalf("%s: no checkpoint recoveries exercised", kind)
		}
		if st.MemTraps == 0 {
			t.Fatalf("%s: no flush-at-commit recoveries exercised", kind)
		}
		if err := c.DrainAndAudit(); err != nil {
			t.Errorf("%s: post-recovery audit: %v", kind, err)
		}
		if err := c.DrainAndAudit(); err != nil {
			t.Errorf("%s: second audit (scratch reuse): %v", kind, err)
		}
	}
}
