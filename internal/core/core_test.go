package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/workloads"
)

// runBench simulates a catalog benchmark under cfg.
func runBench(t *testing.T, name string, cfg Config, warmup, measure uint64) (*Core, *Stats) {
	t.Helper()
	spec, err := workloads.Resolve(name)
	if err != nil {
		t.Fatal(err)
	}
	c := New(cfg, workloads.Build(spec))
	st := c.Run(warmup, measure)
	return c, st
}

// TestBaselinePipelineSanity: the baseline machine commits exactly the
// requested work at a plausible IPC on a representative benchmark.
func TestBaselinePipelineSanity(t *testing.T) {
	_, st := runBench(t, "crafty", DefaultConfig(), 5000, 40000)
	if st.Committed < 40000 {
		t.Fatalf("committed %d < requested", st.Committed)
	}
	ipc := st.IPC()
	if ipc < 0.1 || ipc > 6 {
		t.Fatalf("implausible IPC %v", ipc)
	}
	if st.CommittedLoads == 0 || st.CommittedStores == 0 || st.CommittedBranches == 0 {
		t.Fatal("degenerate committed mix")
	}
}

// TestIPCNeverExceedsWidth: fundamental bound.
func TestIPCNeverExceedsWidth(t *testing.T) {
	for _, name := range []string{"gzip", "hmmer", "lbm", "vortex"} {
		_, st := runBench(t, name, DefaultConfig(), 2000, 20000)
		if st.IPC() > float64(DefaultConfig().CommitWidth) {
			t.Fatalf("%s: IPC %v exceeds commit width", name, st.IPC())
		}
	}
}

// TestCommittedStreamIdenticalAcrossConfigs: ME/SMB are microarchitectural
// — the committed instruction mix must be identical whatever the
// configuration (same trace, same instruction boundaries).
func TestCommittedStreamIdenticalAcrossConfigs(t *testing.T) {
	mix := func(cfg Config) [4]uint64 {
		_, st := runBench(t, "hmmer", cfg, 3000, 30000)
		return [4]uint64{st.CommittedLoads, st.CommittedStores, st.CommittedBranches, st.CommittedMoves}
	}
	base := mix(DefaultConfig())

	me := DefaultConfig()
	me.ME.Enabled = true
	me.Tracker = TrackerConfig{Kind: TrackerISRB, Entries: 16, CounterBits: 3}

	smbCfg := DefaultConfig()
	smbCfg.SMB.Enabled = true
	smbCfg.Tracker = TrackerConfig{Kind: TrackerISRB, Entries: 24, CounterBits: 3}

	both := DefaultConfig()
	both.ME.Enabled = true
	both.SMB.Enabled = true
	both.Tracker = TrackerConfig{Kind: TrackerISRB, Entries: 32, CounterBits: 3}

	for i, cfg := range []Config{me, smbCfg, both} {
		got := mix(cfg)
		// Commit boundaries may differ by up to a commit group at the
		// measurement edges.
		for k := 0; k < 4; k++ {
			d := int64(got[k]) - int64(base[k])
			if d < -64 || d > 64 {
				t.Fatalf("config %d: committed mix field %d differs: %v vs %v", i, k, got, base)
			}
		}
	}
}

// TestTrackersBehaviourallyEquivalentWhenAmple: with capacity to spare,
// every tracking scheme commits the same stream; only timing may differ.
func TestTrackersBehaviourallyEquivalentWhenAmple(t *testing.T) {
	for _, kind := range []TrackerKind{TrackerISRB, TrackerUnlimited, TrackerCounters, TrackerRDA} {
		cfg := DefaultConfig()
		cfg.ME.Enabled = true
		cfg.SMB.Enabled = true
		cfg.Tracker = TrackerConfig{Kind: kind, Entries: 64, CounterBits: 8}
		_, st := runBench(t, "gamess", cfg, 3000, 25000)
		if st.Committed < 25000 {
			t.Fatalf("tracker %s: committed %d", kind, st.Committed)
		}
	}
}

// TestMITRejectsSMBShares: the MIT can support ME but not SMB (§4.2), so
// an MIT-tracked machine with SMB enabled must bypass nothing.
func TestMITRejectsSMBShares(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SMB.Enabled = true
	cfg.Tracker = TrackerConfig{Kind: TrackerMIT, Entries: 16}
	c, st := runBench(t, "hmmer", cfg, 3000, 25000)
	if st.CommittedBypassed != 0 {
		t.Fatalf("MIT machine bypassed %d loads", st.CommittedBypassed)
	}
	if c.Tracker().Stats().ShareFailsKind == 0 {
		t.Fatal("MIT recorded no kind rejections despite SMB attempts")
	}
}

// TestMESpeedsUpCrafty: the paper's headline ME result, end to end.
func TestMESpeedsUpCrafty(t *testing.T) {
	_, base := runBench(t, "crafty", DefaultConfig(), 5000, 40000)
	cfg := DefaultConfig()
	cfg.ME.Enabled = true
	cfg.Tracker = TrackerConfig{Kind: TrackerISRB, Entries: 16, CounterBits: 3}
	c, me := runBench(t, "crafty", cfg, 5000, 40000)
	if me.IPC() <= base.IPC() {
		t.Fatalf("ME did not speed up crafty: %v vs %v", me.IPC(), base.IPC())
	}
	if me.CommittedEliminated == 0 {
		t.Fatal("no moves eliminated")
	}
	if c.MoveElim().Candidates < c.MoveElim().Eliminated {
		t.Fatal("eliminated more than candidates")
	}
}

// TestSMBSpeedsUpSpillCode: SMB end to end on a spill-heavy workload with
// bypasses validated (no value mispredictions on a clean pattern).
func TestSMBSpeedsUpSpillCode(t *testing.T) {
	spec := workloads.Spec{Name: "spilly", SpillPct: 0.3, SpillDist: 4, ILP: 2, LoadOnChainPct: 0.8}
	prog := workloads.Build(spec)

	base := New(DefaultConfig(), prog)
	bst := base.Run(3000, 30000)

	cfg := DefaultConfig()
	cfg.SMB.Enabled = true
	cfg.Tracker = TrackerConfig{Kind: TrackerISRB, Entries: 24, CounterBits: 3}
	c := New(cfg, workloads.Build(spec))
	st := c.Run(3000, 30000)

	if st.IPC() <= bst.IPC() {
		t.Fatalf("SMB did not speed up spill code: %v vs %v", st.IPC(), bst.IPC())
	}
	if st.CommittedBypassed == 0 {
		t.Fatal("no loads bypassed")
	}
	if st.BypassMispredicts > st.CommittedBypassed/50 {
		t.Fatalf("excessive bypass mispredictions: %d of %d", st.BypassMispredicts, st.CommittedBypassed)
	}
}

// TestBranchRecovery: a branch-heavy benchmark must recover (mispredicts
// and squashes both nonzero) and still commit everything.
func TestBranchRecovery(t *testing.T) {
	_, st := runBench(t, "gcc", DefaultConfig(), 3000, 30000)
	if st.BranchMispredicts == 0 {
		t.Fatal("gcc analogue had no branch mispredictions")
	}
	if st.SquashedUops == 0 {
		t.Fatal("mispredictions squashed nothing")
	}
}

// TestPerRegCountersRecoveryPenalty: the sequential-walk scheme must lose
// cycles to recovery relative to the checkpointable ISRB on a
// mispredict-heavy workload (§4.2 — the paper's motivation).
func TestPerRegCountersRecoveryPenalty(t *testing.T) {
	mk := func(kind TrackerKind) *Stats {
		cfg := DefaultConfig()
		cfg.ME.Enabled = true
		cfg.SMB.Enabled = true
		cfg.Tracker = TrackerConfig{Kind: kind, Entries: 64, CounterBits: 8}
		_, st := runBench(t, "gobmk", cfg, 3000, 40000)
		return st
	}
	isrb := mk(TrackerISRB)
	counters := mk(TrackerCounters)
	if counters.RecoveryCycles <= isrb.RecoveryCycles {
		t.Fatalf("sequential rollback recovery cycles (%d) not larger than ISRB's (%d)",
			counters.RecoveryCycles, isrb.RecoveryCycles)
	}
	if counters.IPC() >= isrb.IPC() {
		t.Fatalf("per-register counters IPC %v >= ISRB IPC %v on a branchy workload",
			counters.IPC(), isrb.IPC())
	}
}

// TestLazyReclaimEnablesCommittedBypass: with lazy reclaim, some bypasses
// come from committed producers (§3.3); with eager reclaim, none do.
func TestLazyReclaimEnablesCommittedBypass(t *testing.T) {
	eager := DefaultConfig()
	eager.SMB.Enabled = true
	_, est := runBench(t, "astar", eager, 5000, 50000)
	if est.BypassedFromCommitted != 0 {
		t.Fatalf("eager mode bypassed %d from committed", est.BypassedFromCommitted)
	}
	lazy := eager
	lazy.SMB.BypassCommitted = true
	_, lst := runBench(t, "astar", lazy, 5000, 50000)
	if lst.BypassedFromCommitted == 0 {
		t.Fatal("lazy mode never bypassed from committed instructions")
	}
}

// TestStoreOnlyReducesBypasses: disabling load-load pairs must reduce the
// bypass rate on redundancy-heavy code (§6.2).
func TestStoreOnlyReducesBypasses(t *testing.T) {
	full := DefaultConfig()
	full.SMB.Enabled = true
	_, fst := runBench(t, "astar", full, 5000, 50000)
	so := full
	so.SMB.LoadLoad = false
	_, sst := runBench(t, "astar", so, 5000, 50000)
	if sst.CommittedBypassed >= fst.CommittedBypassed {
		t.Fatalf("store-only bypassed %d >= full %d", sst.CommittedBypassed, fst.CommittedBypassed)
	}
}

// TestMemoryTrapsOccurAndResolve: the trap machinery produces traps on a
// trap-configured workload without warmup, and the machine survives.
func TestMemoryTrapsOccurAndResolve(t *testing.T) {
	_, st := runBench(t, "hmmer", DefaultConfig(), 0, 60000)
	if st.MemTraps == 0 {
		t.Fatal("no memory-order traps on the trap-configured benchmark")
	}
	if st.FalseDeps == 0 {
		t.Fatal("no false dependencies on the fd-configured benchmark")
	}
}

// TestSTLFHappens: store-to-load forwarding fires on spill code.
func TestSTLFHappens(t *testing.T) {
	_, st := runBench(t, "gcc", DefaultConfig(), 3000, 30000)
	if st.STLFForwards == 0 {
		t.Fatal("no store-to-load forwarding on spill-heavy code")
	}
}

// TestEliminatedMovesSkipScheduler: the paper's ME contract — eliminated
// moves are renamed but never issue. We verify through the counters: with
// an always-succeeding tracker, (committed eliminated) approaches the
// number of 32/64-bit int moves.
func TestEliminatedMovesSkipScheduler(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ME.Enabled = true
	_, st := runBench(t, "vortex", cfg, 3000, 30000)
	if st.CommittedEliminated == 0 {
		t.Fatal("nothing eliminated")
	}
	if st.CommittedEliminated > st.CommittedMoves {
		t.Fatalf("eliminated (%d) exceeds committed moves (%d)", st.CommittedEliminated, st.CommittedMoves)
	}
}

// TestCheckpointPressure: a tiny checkpoint pool must still make forward
// progress (rename stalls, no deadlock).
func TestCheckpointPressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCheckpoints = 4
	_, st := runBench(t, "gobmk", cfg, 1000, 15000)
	if st.Committed < 15000 {
		t.Fatal("did not complete under checkpoint pressure")
	}
	if st.StallCkpt == 0 {
		t.Fatal("no checkpoint stalls recorded with a 4-entry pool on a branchy workload")
	}
}

// TestTinyWindows: extreme resource pressure must not deadlock.
func TestTinyWindows(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ROBSize = 16
	cfg.IQSize = 8
	cfg.LQSize = 6
	cfg.SQSize = 6
	cfg.MaxCheckpoints = 8
	cfg.PhysRegsPerClass = 48
	cfg.SMB.Enabled = true
	cfg.ME.Enabled = true
	cfg.Tracker = TrackerConfig{Kind: TrackerISRB, Entries: 8, CounterBits: 3}
	_, st := runBench(t, "parser", cfg, 1000, 10000)
	if st.Committed < 10000 {
		t.Fatal("tiny machine did not complete")
	}
}

// TestSmallISRBAbortsShares: a 1-entry ISRB must reject most sharing but
// never break correctness.
func TestSmallISRBAbortsShares(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ME.Enabled = true
	cfg.SMB.Enabled = true
	cfg.Tracker = TrackerConfig{Kind: TrackerISRB, Entries: 1, CounterBits: 3}
	c, st := runBench(t, "hmmer", cfg, 2000, 20000)
	ts := c.Tracker().Stats()
	if ts.ShareFailsFull == 0 {
		t.Fatal("1-entry ISRB rejected nothing")
	}
	if st.Committed < 20000 {
		t.Fatal("run did not complete")
	}
}

// TestDeterministicSimulation: identical configuration and benchmark give
// identical cycle counts.
func TestDeterministicSimulation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SMB.Enabled = true
	_, a := runBench(t, "wupwise", cfg, 2000, 20000)
	_, b := runBench(t, "wupwise", cfg, 2000, 20000)
	if a.Cycles != b.Cycles || a.Committed != b.Committed {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d cycles/committed",
			a.Cycles, a.Committed, b.Cycles, b.Committed)
	}
}

// TestAllBenchmarksRunBaseline is the broad integration sweep: every
// catalog benchmark must run (the regfile double-free guard is armed
// throughout).
func TestAllBenchmarksRunBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	members, _ := workloads.Members("all")
	for _, m := range members {
		name := m.Name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig()
			cfg.ME.Enabled = true
			cfg.SMB.Enabled = true
			cfg.SMB.BypassCommitted = name[0]%2 == 0 // exercise both modes
			cfg.Tracker = TrackerConfig{Kind: TrackerISRB, Entries: 24, CounterBits: 3}
			_, st := runBench(t, name, cfg, 2000, 15000)
			if st.Committed < 15000 {
				t.Fatalf("committed %d", st.Committed)
			}
		})
	}
}

// TestExecLatencies: Table 1's functional-unit latencies.
func TestExecLatencies(t *testing.T) {
	cases := []struct {
		u    isa.Uop
		want uint64
	}{
		{isa.Uop{Op: isa.ALU}, 1},
		{isa.Uop{Op: isa.Move}, 1},
		{isa.Uop{Op: isa.Branch}, 1},
		{isa.Uop{Op: isa.MulDiv}, 3},
		{isa.Uop{Op: isa.MulDiv, Heavy: true}, 25},
		{isa.Uop{Op: isa.FP}, 3},
		{isa.Uop{Op: isa.FPMulDiv}, 5},
		{isa.Uop{Op: isa.FPMulDiv, Heavy: true}, 10},
	}
	for _, c := range cases {
		if got := ExecLatency(&c.u); got != c.want {
			t.Errorf("latency(%v,heavy=%v) = %d, want %d", c.u.Op, c.u.Heavy, got, c.want)
		}
	}
}

// TestOverlapContains: the byte-range helpers the LSQ relies on.
func TestOverlapContains(t *testing.T) {
	if !overlap(0x100, 64, 0x100, 64) {
		t.Fatal("identical ranges must overlap")
	}
	if overlap(0x100, 64, 0x108, 64) {
		t.Fatal("adjacent 8-byte ranges must not overlap")
	}
	if !overlap(0x100, 64, 0x104, 32) {
		t.Fatal("contained range must overlap")
	}
	if !contains(0x100, 64, 0x104, 32) {
		t.Fatal("32-bit load inside 64-bit store must be contained")
	}
	if contains(0x104, 32, 0x100, 64) {
		t.Fatal("64-bit load cannot be contained in a 32-bit store")
	}
}

// TestMinimumBranchPenalty approximates Table 1's 20-cycle minimum
// misprediction penalty: on an unpredictable-branch microbenchmark the
// per-mispredict cost must be at least ~15 cycles.
func TestMinimumBranchPenalty(t *testing.T) {
	spec := workloads.Spec{Name: "brancher", BranchPct: 0.9, HardBranchPct: 1.0, ILP: 4, BlockLen: 12}
	prog := workloads.Build(spec)
	c := New(DefaultConfig(), prog)
	st := c.Run(3000, 30000)
	if st.BranchMispredicts < 100 {
		t.Fatalf("microbenchmark produced only %d mispredicts", st.BranchMispredicts)
	}
	// Cycles beyond a 2-IPC ideal, attributed to mispredicts.
	ideal := st.Committed / 4
	if st.Cycles < ideal {
		return
	}
	perMisp := float64(st.Cycles-ideal) / float64(st.BranchMispredicts)
	if perMisp < 10 {
		t.Fatalf("misprediction penalty ≈ %.1f cycles, below the deep-pipeline minimum", perMisp)
	}
}

// TestWrongPathActivity: wrong-path fetch really happens (squashed µops
// renamed beyond the committed count).
func TestWrongPathActivity(t *testing.T) {
	_, st := runBench(t, "gcc", DefaultConfig(), 2000, 25000)
	if st.RenamedUops <= st.Committed {
		t.Fatal("no wrong-path µops renamed; wrong-path fetch is not exercised")
	}
}

// countingTracer verifies lifecycle-event consistency.
type countingTracer struct {
	renamed, issued, completed, committed, squashed, flushes int
}

func (t *countingTracer) Renamed(uint64, *isa.Uop, uint64, bool, bool) { t.renamed++ }
func (t *countingTracer) Issued(uint64, uint64)                        { t.issued++ }
func (t *countingTracer) Completed(uint64, uint64)                     { t.completed++ }
func (t *countingTracer) Committed(uint64, uint64)                     { t.committed++ }
func (t *countingTracer) Squashed(uint64, uint64)                      { t.squashed++ }
func (t *countingTracer) Flush(uint64, string, int)                    { t.flushes++ }

// TestTracerLifecycleConsistency: renamed = committed + squashed +
// in-flight; committed events match the committed count.
func TestTracerLifecycleConsistency(t *testing.T) {
	spec, _ := workloads.Resolve("gcc")
	cfg := DefaultConfig()
	c := New(cfg, workloads.Build(spec))
	tr := &countingTracer{}
	c.AttachTracer(tr)
	st := c.Run(0, 20000)
	if uint64(tr.committed) != st.Committed {
		t.Fatalf("tracer committed %d, stats %d", tr.committed, st.Committed)
	}
	inflight := tr.renamed - tr.committed - tr.squashed
	if inflight < 0 || inflight > cfg.ROBSize+64 {
		t.Fatalf("lifecycle imbalance: renamed=%d committed=%d squashed=%d",
			tr.renamed, tr.committed, tr.squashed)
	}
	if tr.flushes == 0 {
		t.Fatal("branchy run produced no flush events")
	}
	if tr.issued == 0 || tr.completed < tr.committed {
		t.Fatalf("issue/complete counts wrong: issued=%d completed=%d committed=%d",
			tr.issued, tr.completed, tr.committed)
	}
}

// TestRegisterConservationAudit drains full simulations under every
// tracker scheme and optimization mix and audits physical register
// conservation: no register may leak or be double-accounted (§4.3's
// correctness requirement).
func TestRegisterConservationAudit(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"baseline", DefaultConfig()},
		{"me-isrb8", func() Config {
			cfg := DefaultConfig()
			cfg.ME.Enabled = true
			cfg.Tracker = TrackerConfig{Kind: TrackerISRB, Entries: 8, CounterBits: 3}
			return cfg
		}()},
		{"smb-isrb24", func() Config {
			cfg := DefaultConfig()
			cfg.SMB.Enabled = true
			cfg.Tracker = TrackerConfig{Kind: TrackerISRB, Entries: 24, CounterBits: 3}
			return cfg
		}()},
		{"combined-lazy", func() Config {
			cfg := DefaultConfig()
			cfg.ME.Enabled = true
			cfg.SMB.Enabled = true
			cfg.SMB.BypassCommitted = true
			cfg.Tracker = TrackerConfig{Kind: TrackerISRB, Entries: 32, CounterBits: 3}
			return cfg
		}()},
		{"combined-rda", func() Config {
			cfg := DefaultConfig()
			cfg.ME.Enabled = true
			cfg.SMB.Enabled = true
			cfg.Tracker = TrackerConfig{Kind: TrackerRDA, Entries: 32}
			return cfg
		}()},
		{"combined-counters", func() Config {
			cfg := DefaultConfig()
			cfg.ME.Enabled = true
			cfg.SMB.Enabled = true
			cfg.Tracker = TrackerConfig{Kind: TrackerCounters, Entries: 0, CounterBits: 8}
			return cfg
		}()},
	}
	for _, cs := range cases {
		cs := cs
		for _, bench := range []string{"hmmer", "gcc", "astar"} {
			t.Run(cs.name+"/"+bench, func(t *testing.T) {
				t.Parallel()
				spec, _ := workloads.Resolve(bench)
				c := New(cs.cfg, workloads.Build(spec))
				c.Run(2000, 20000)
				if err := c.DrainAndAudit(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
