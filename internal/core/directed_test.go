package core

// Directed tests: hand-built programs that pin down individual pipeline
// behaviours — STLF containment rules, partial-overlap stalls, memory
// traps, SMB validation, and checkpoint recovery — with exact expectations.

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

// loopProgram wraps body instructions in an infinite loop, with an
// optional per-iteration preamble that bumps a counter in r0.
func loopProgram(build func(b *program.Builder)) *program.Program {
	b := program.NewBuilder("directed", 0x1000)
	b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemMovImm, Dest: isa.IntR(1), Imm: 0x10000, Width: 64})
	b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemMovImm, Dest: isa.IntR(0), Imm: 0, Width: 64})
	b.Label("loop")
	build(b)
	b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAddImm,
		Src: [2]isa.Reg{isa.IntR(0)}, Dest: isa.IntR(0), Imm: 1, Width: 64})
	b.EmitBranchTo(program.SInst{Op: isa.Branch, Kind: isa.BrUncond, Cond: program.CondAlways,
		Src: [2]isa.Reg{isa.IntR(0)}, Width: 64}, "loop")
	return b.MustBuild()
}

// TestDirectedSTLFContained: a 64-bit load fully covered by a recent
// 64-bit store must forward (count STLFForwards), never trap.
func TestDirectedSTLFContained(t *testing.T) {
	p := loopProgram(func(b *program.Builder) {
		// r2 = r0 + 7 (data); store [r1]; load [r1]; use.
		b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAddImm,
			Src: [2]isa.Reg{isa.IntR(0)}, Dest: isa.IntR(2), Imm: 7, Width: 64})
		b.Emit(program.SInst{Op: isa.Store, Sem: program.SemStore,
			Src: [2]isa.Reg{isa.IntR(2)}, AddrReg: isa.IntR(1), Imm: 0, Width: 64})
		b.Emit(program.SInst{Op: isa.Load, Sem: program.SemLoad,
			Dest: isa.IntR(3), AddrReg: isa.IntR(1), Imm: 0, Width: 64})
		b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAddImm,
			Src: [2]isa.Reg{isa.IntR(3)}, Dest: isa.IntR(4), Imm: 0, Width: 64})
	})
	c := New(DefaultConfig(), p)
	st := c.Run(1000, 10000)
	if st.STLFForwards == 0 {
		t.Fatal("contained reload never forwarded")
	}
	if st.MemTraps != 0 {
		t.Fatalf("clean forwarding pattern trapped %d times", st.MemTraps)
	}
	if st.PartialWaits != 0 {
		t.Fatalf("contained loads counted as partial: %d", st.PartialWaits)
	}
}

// TestDirectedPartialOverlap: a 64-bit load of a word written by a 32-bit
// store is NOT contained and must wait for writeback (PartialWaits).
func TestDirectedPartialOverlap(t *testing.T) {
	p := loopProgram(func(b *program.Builder) {
		b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAddImm,
			Src: [2]isa.Reg{isa.IntR(0)}, Dest: isa.IntR(2), Imm: 3, Width: 64})
		b.Emit(program.SInst{Op: isa.Store, Sem: program.SemStore,
			Src: [2]isa.Reg{isa.IntR(2)}, AddrReg: isa.IntR(1), Imm: 0, Width: 32})
		b.Emit(program.SInst{Op: isa.Load, Sem: program.SemLoad,
			Dest: isa.IntR(3), AddrReg: isa.IntR(1), Imm: 0, Width: 64})
	})
	c := New(DefaultConfig(), p)
	st := c.Run(1000, 10000)
	if st.PartialWaits == 0 {
		t.Fatal("partial overlap never made a load wait for writeback")
	}
}

// TestDirectedSMBConstantDistance: with a constant producer→load distance
// the distance predictor saturates and nearly every instance bypasses,
// with zero validation failures.
func TestDirectedSMBConstantDistance(t *testing.T) {
	p := loopProgram(func(b *program.Builder) {
		b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAddImm,
			Src: [2]isa.Reg{isa.IntR(0)}, Dest: isa.IntR(2), Imm: 9, Width: 64})
		b.Emit(program.SInst{Op: isa.Store, Sem: program.SemStore,
			Src: [2]isa.Reg{isa.IntR(2)}, AddrReg: isa.IntR(1), Imm: 8, Width: 64})
		for i := 0; i < 4; i++ {
			b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAddImm,
				Src: [2]isa.Reg{isa.IntR(5)}, Dest: isa.IntR(5), Imm: 1, Width: 64})
		}
		b.Emit(program.SInst{Op: isa.Load, Sem: program.SemLoad,
			Dest: isa.IntR(3), AddrReg: isa.IntR(1), Imm: 8, Width: 64})
		b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAddImm,
			Src: [2]isa.Reg{isa.IntR(3)}, Dest: isa.IntR(4), Imm: 0, Width: 64})
	})
	cfg := DefaultConfig()
	cfg.SMB.Enabled = true
	cfg.Tracker = TrackerConfig{Kind: TrackerISRB, Entries: 8, CounterBits: 3}
	c := New(cfg, p)
	st := c.Run(2000, 20000)
	if st.CommittedBypassed < st.CommittedLoads/2 {
		t.Fatalf("only %d of %d loads bypassed on a constant-distance pattern",
			st.CommittedBypassed, st.CommittedLoads)
	}
	if st.BypassMispredicts != 0 {
		t.Fatalf("%d validation failures on a deterministic pattern", st.BypassMispredicts)
	}
}

// TestDirectedSMBAlternatingDistance: the producer distance alternates
// with a register value the predictor cannot see (no branch signature), so
// confidence must mostly gate bypassing; any bypass misprediction must be
// recovered architecturally (the run completes with correct counts).
func TestDirectedSMBAlternatingDistance(t *testing.T) {
	p := loopProgram(func(b *program.Builder) {
		// sel = (r0 & 1) << 3: write X or X+8 alternately...
		b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAndImm,
			Src: [2]isa.Reg{isa.IntR(0)}, Dest: isa.IntR(6), Imm: 1, Width: 64})
		b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemShl,
			Src: [2]isa.Reg{isa.IntR(6)}, Dest: isa.IntR(6), Imm: 3, Width: 64})
		b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAdd,
			Src: [2]isa.Reg{isa.IntR(1), isa.IntR(6)}, Dest: isa.IntR(7), Width: 64})
		b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAddImm,
			Src: [2]isa.Reg{isa.IntR(0)}, Dest: isa.IntR(2), Imm: 13, Width: 64})
		b.Emit(program.SInst{Op: isa.Store, Sem: program.SemStore,
			Src: [2]isa.Reg{isa.IntR(2)}, AddrReg: isa.IntR(7), Imm: 16, Width: 64})
		// ...but always read X: the last writer alternates iteration by
		// iteration, so the DDT-trained distance alternates too.
		b.Emit(program.SInst{Op: isa.Load, Sem: program.SemLoad,
			Dest: isa.IntR(3), AddrReg: isa.IntR(1), Imm: 16, Width: 64})
	})
	cfg := DefaultConfig()
	cfg.SMB.Enabled = true
	c := New(cfg, p)
	st := c.Run(2000, 20000)
	if st.Committed < 20000 {
		t.Fatal("did not complete")
	}
	// The alternation has no history signature: an alternating distance
	// never accumulates 15 straight correct observations, so bypassing
	// must be (almost) fully suppressed by the confidence mechanism.
	if st.CommittedBypassed > st.CommittedLoads/4 {
		t.Fatalf("confidence gate leaked: %d of %d unpredictable loads bypassed",
			st.CommittedBypassed, st.CommittedLoads)
	}
}

// TestDirectedTrapAndRetrain: a store with a late address and an early
// load to the same location traps exactly once, then Store Sets
// serializes the pair.
func TestDirectedTrapAndRetrain(t *testing.T) {
	p := loopProgram(func(b *program.Builder) {
		// Slow store address: a load feeds the address computation.
		b.Emit(program.SInst{Op: isa.Load, Sem: program.SemLoad,
			Dest: isa.IntR(5), AddrReg: isa.IntR(1), Imm: 64, Width: 64})
		b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAndImm,
			Src: [2]isa.Reg{isa.IntR(5)}, Dest: isa.IntR(6), Imm: 0, Width: 64})
		b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAdd,
			Src: [2]isa.Reg{isa.IntR(1), isa.IntR(6)}, Dest: isa.IntR(7), Width: 64})
		b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAddImm,
			Src: [2]isa.Reg{isa.IntR(0)}, Dest: isa.IntR(2), Imm: 21, Width: 64})
		b.Emit(program.SInst{Op: isa.Store, Sem: program.SemStore,
			Src: [2]isa.Reg{isa.IntR(2)}, AddrReg: isa.IntR(7), Imm: 128, Width: 64})
		b.Emit(program.SInst{Op: isa.Load, Sem: program.SemLoad,
			Dest: isa.IntR(3), AddrReg: isa.IntR(1), Imm: 128, Width: 64})
		b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAddImm,
			Src: [2]isa.Reg{isa.IntR(3)}, Dest: isa.IntR(4), Imm: 0, Width: 64})
	})
	cfg := DefaultConfig()
	cfg.StoreSets.ClearPeriod = 0 // isolate: no cyclic retraining
	c := New(cfg, p)
	st := c.Run(0, 20000)
	if st.MemTraps == 0 {
		t.Fatal("late-address store never trapped the early load")
	}
	if st.MemTraps > 4 {
		t.Fatalf("trapped %d times; Store Sets should learn after the first", st.MemTraps)
	}
}

// TestDirectedMEChainShortening: a move inserted in a serial dependency
// chain costs one cycle per iteration; ME must recover it exactly.
func TestDirectedMEChainShortening(t *testing.T) {
	p := loopProgram(func(b *program.Builder) {
		for i := 0; i < 4; i++ {
			b.Emit(program.SInst{Op: isa.Move, Sem: program.SemMov,
				Src: [2]isa.Reg{isa.IntR(8)}, Dest: isa.IntR(9), Width: 64})
			b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAddImm,
				Src: [2]isa.Reg{isa.IntR(9)}, Dest: isa.IntR(8), Imm: 1, Width: 64})
		}
	})
	base := New(DefaultConfig(), p)
	bst := base.Run(1000, 12000)

	run := func(entries int) *Stats {
		cfg := DefaultConfig()
		cfg.ME.Enabled = true
		cfg.Tracker = TrackerConfig{Kind: TrackerISRB, Entries: entries, CounterBits: 3}
		me := New(cfg, p)
		return me.Run(1000, 12000)
	}

	// With an ample ISRB every move is eliminated: the chain per
	// iteration drops from mov(1)+add(1) ×4 = 8 cycles to 4.
	ample := run(128)
	speedup := ample.IPC() / bst.IPC()
	if speedup < 1.5 {
		t.Fatalf("ME speedup on a pure move chain = %.2f, want ~2x", speedup)
	}

	// This microbenchmark is 40%% moves with a full ROB: ~76 registers
	// are shared concurrently, so an 8-entry ISRB must reject most
	// candidates and recover far less (real code is far sparser — the
	// reason 8 entries suffice in Figure 5a).
	tiny := run(8)
	if tiny.IPC() >= ample.IPC()-0.1 {
		t.Fatalf("8-entry ISRB IPC %.3f too close to ample %.3f on a saturating pattern",
			tiny.IPC(), ample.IPC())
	}
}

// TestDirectedWindowEpochGuard: with lazy reclaim the committed-bypass
// path must refuse registers that were already reclaimed (epoch guard) —
// exercised here by a distance that reaches far beyond the ROB while the
// free list is kept under pressure.
func TestDirectedWindowEpochGuard(t *testing.T) {
	p := loopProgram(func(b *program.Builder) {
		b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAddImm,
			Src: [2]isa.Reg{isa.IntR(0)}, Dest: isa.IntR(2), Imm: 5, Width: 64})
		b.Emit(program.SInst{Op: isa.Store, Sem: program.SemStore,
			Src: [2]isa.Reg{isa.IntR(2)}, AddrReg: isa.IntR(1), Imm: 24, Width: 64})
		for i := 0; i < 6; i++ {
			b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAddImm,
				Src: [2]isa.Reg{isa.IntR(10)}, Dest: isa.IntR(10), Imm: 1, Width: 64})
		}
		b.Emit(program.SInst{Op: isa.Load, Sem: program.SemLoad,
			Dest: isa.IntR(3), AddrReg: isa.IntR(1), Imm: 24, Width: 64})
	})
	cfg := DefaultConfig()
	cfg.SMB.Enabled = true
	cfg.SMB.BypassCommitted = true
	cfg.PhysRegsPerClass = 40 // heavy free-list pressure: reclaim churns
	cfg.LazyReclaimLowWater = 12
	c := New(cfg, p)
	st := c.Run(1000, 15000)
	if st.Committed < 15000 {
		t.Fatal("did not complete under register pressure with lazy reclaim")
	}
	if st.BypassMispredicts > st.CommittedBypassed/20 {
		t.Fatalf("epoch guard leak? %d mispredicts / %d bypasses",
			st.BypassMispredicts, st.CommittedBypassed)
	}
}

// TestDirectedUnpredictableBranchPenalty: a 50/50 branch on a chaotic
// value must cost roughly the fetch-to-execute depth per misprediction.
func TestDirectedUnpredictableBranchPenalty(t *testing.T) {
	p := loopProgram(func(b *program.Builder) {
		// Accumulating multiplicative scramble (an MLCG): bit 43 of r5
		// is effectively random and has no learnable short period.
		b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemMulImm,
			Src: [2]isa.Reg{isa.IntR(5)}, Dest: isa.IntR(5), Imm: 0x9E3779B97F4A7C15, Width: 64})
		skip := "s"
		b.EmitBranchTo(program.SInst{Op: isa.Branch, Kind: isa.BrCond, Cond: program.CondBitSet,
			Src: [2]isa.Reg{isa.IntR(5)}, Imm: 43, Width: 64}, skip)
		b.Emit(program.SInst{Op: isa.ALU, Sem: program.SemAddImm,
			Src: [2]isa.Reg{isa.IntR(6)}, Dest: isa.IntR(6), Imm: 1, Width: 64})
		b.Label(skip)
	})
	c := New(DefaultConfig(), p)
	st := c.Run(2000, 20000)
	mispRate := float64(st.BranchMispredicts) / float64(st.CommittedCondBranches)
	if mispRate < 0.25 {
		t.Fatalf("chaotic branch misprediction rate %.2f; pattern leaked into the predictor", mispRate)
	}
}
