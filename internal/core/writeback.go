package core

import "repro/internal/isa"

// writeback completes µops whose results arrive this cycle: it marks
// destination registers ready (waking dependents), validates SMB bypasses
// against the data from the memory hierarchy (§3.2), runs the memory-order
// violation check when stores resolve their addresses, and resolves
// branches — triggering checkpoint recovery on a misprediction.
//
// Instead of walking the full ROB every cycle it scans the in-flight
// list (issued-but-incomplete µops, maintained by issue and pruned on
// squashes). Completions are applied oldest-first, exactly like the old
// ROB-order scan — the order is architecturally visible through the
// memory-order violation checks, which consult other µops' executed
// state.
//
//repro:hotpath
func (c *Core) writeback() {
	keep := c.inflight[:0]
	completing := c.completing[:0]
	for _, ref := range c.inflight {
		e := &c.rob[ref.robIdx]
		if !e.valid || e.csn != ref.csn || !e.issued || e.completed {
			continue // squashed, or the slot was recycled
		}
		if e.readyAt > c.cycle {
			keep = append(keep, ref) //repro:allow hotalloc -- amortized: appends into a buffer retained on c and resliced to [:0]; steady state never grows
			continue
		}
		completing = append(completing, ref.robIdx) //repro:allow hotalloc -- amortized: appends into a buffer retained on c and resliced to [:0]; steady state never grows
	}
	c.inflight = keep

	// Oldest first (insertion sort: completions per cycle are few).
	for i := 1; i < len(completing); i++ {
		for j := i; j > 0 && c.rob[completing[j]].csn < c.rob[completing[j-1]].csn; j-- {
			completing[j], completing[j-1] = completing[j-1], completing[j]
		}
	}

	mispredIdx := -1
	for _, idx := range completing {
		e := &c.rob[idx]
		if e.completed {
			continue
		}
		if e.readyAt > c.cycle {
			// An older µop completing this same cycle pushed this one's
			// completion into the future (a store's checkViolations
			// re-running a bypassed load's validation access). The old
			// ROB-order scan re-checked readyAt at visit time; re-queue
			// the µop so it completes when the new time arrives.
			c.inflight = append(c.inflight, inflightRef{robIdx: idx, csn: e.csn}) //repro:allow hotalloc -- amortized: appends into a buffer retained on c and resliced to [:0]; steady state never grows
			continue
		}
		c.complete(idx, e)
		if mispredIdx < 0 && e.u.IsBranch() && !e.u.WrongPath && e.fetchMispred {
			mispredIdx = idx
		}
	}
	c.completing = completing[:0]
	if mispredIdx >= 0 {
		c.recoverFromBranch(mispredIdx)
	}
}

func (c *Core) complete(idx int, e *robEntry) {
	e.completed = true
	if c.tracer != nil {
		c.tracer.Completed(c.cycle, e.csn)
	}
	u := &e.u

	// Produce the result.
	if u.HasDest() && !e.eliminated && !e.bypassed {
		c.rf.SetReady(e.destPhys, u.Value)
	}

	switch u.Op {
	case isa.Store:
		s := &c.sq[uint64(e.sqIdx)%uint64(len(c.sq))]
		s.executed = true
		s.dataAt = e.readyAt
		c.checkViolations(s)
	case isa.Load:
		if e.bypassed && !u.WrongPath {
			// Validation: compare the bypassed register against the data
			// from the memory hierarchy (the trace's architecturally
			// correct value).
			if c.rf.Value(e.bypassPhys) != u.Value {
				e.needsFlush = flushBypass
			}
		}
	case isa.Branch:
		if !u.WrongPath {
			c.bp.Resolve(u, &e.pred)
		}
	}
}

// checkViolations runs when store s resolves its address: any younger load
// that already read memory (or forwarded from an older store) without
// seeing s has consumed stale data. For a normal load this is a memory
// trap (flush at commit, Store Sets trained). For an SMB-bypassed load the
// dependents consumed the *register*, so only the validation read is
// re-run — the trap is avoided (§3.1).
func (c *Core) checkViolations(s *sqEntry) {
	for i := c.lqHead; i < c.lqTail; i++ {
		l := &c.lq[i%uint64(len(c.lq))]
		if !l.valid || !l.issued || l.csn <= s.csn || l.violated {
			continue
		}
		if l.waitWBStore != 0 || l.doneAt == pendingCompletion {
			continue // not yet performed
		}
		if !overlap(s.addr, s.width, l.addr, l.width) {
			continue
		}
		if l.forwardedCSN != 0 && l.forwardedCSN-1 >= s.csn {
			continue // got its data from this store or a younger one
		}
		if c.coveredByYounger(s, l) {
			continue // a younger executed store masks s for this load
		}
		le := &c.rob[l.robIdx]
		if !le.valid || le.csn != l.csn {
			continue // stale LQ entry
		}
		if le.bypassed {
			// Re-run the validation access only.
			redo := s.dataAt
			if redo < c.cycle {
				redo = c.cycle
			}
			newDone := redo + c.cfg.STLFLatency
			l.forwardedCSN = s.csn + 1
			l.doneAt = newDone
			if le.completed {
				// Validation verdict is unchanged (values are
				// architectural); nothing more to do.
			} else {
				le.readyAt = newDone
			}
			if !le.u.WrongPath {
				c.stats.TrapsAvoidedSMB++
			}
			continue
		}
		l.violated = true
		le.needsFlush = flushMemOrder
		if !le.u.WrongPath {
			c.ss.Violation(le.u.PC, s.pc)
		}
	}
}

// coveredByYounger reports whether some executed store between s and the
// load fully covers the load's bytes: the load's value cannot come from s,
// so s resolving its address is not a violation against this load.
func (c *Core) coveredByYounger(s *sqEntry, l *lqEntry) bool {
	for i := c.sqHead; i < c.sqTail; i++ {
		t := &c.sq[i%uint64(len(c.sq))]
		if !t.valid || !t.executed || t.csn <= s.csn || t.csn >= l.csn {
			continue
		}
		if contains(t.addr, t.width, l.addr, l.width) {
			return true
		}
	}
	return false
}

// resolveBlockedLoads unblocks partial-overlap loads when store csn writes
// back at wbAt (called from commit).
func (c *Core) resolveBlockedLoads(storeCSN uint64, wbAt uint64) {
	for i := c.lqHead; i < c.lqTail; i++ {
		l := &c.lq[i%uint64(len(c.lq))]
		if !l.valid || l.waitWBStore != storeCSN {
			continue
		}
		done := wbAt + c.cfg.Mem.L1D.Latency // read again once the store is in the cache
		l.waitWBStore = 0
		l.doneAt = done
		le := &c.rob[l.robIdx]
		if le.valid && le.csn == l.csn && !le.completed {
			le.readyAt = done
		}
	}
}
