package core

// Stats aggregates everything the paper's figures report. Counters are for
// the measured region only (Run resets them after warmup).
type Stats struct {
	Cycles    uint64
	Committed uint64

	CommittedLoads        uint64
	CommittedStores       uint64
	CommittedBranches     uint64
	CommittedCondBranches uint64
	CommittedMoves        uint64
	CommittedEliminated   uint64 // ME-eliminated µops that retired
	CommittedBypassed     uint64 // SMB-bypassed loads that retired
	BypassedFromCommitted uint64 // of those, producer already committed

	BranchMispredicts uint64
	MemTraps          uint64 // memory-order violations causing a flush (Fig. 4)
	FalseDeps         uint64 // enforced Store Sets deps with no real conflict (Fig. 4)
	TrapsAvoidedSMB   uint64
	BypassMispredicts uint64 // SMB validation failures causing a flush
	BypassAborted     uint64 // bypasses aborted by the tracking structure

	SquashedUops uint64
	RenamedUops  uint64
	FetchedUops  uint64

	STLFForwards  uint64
	PartialWaits  uint64
	LoadsToMemory uint64

	// ISRB traffic accounting (§6.3).
	ShareAttempts           uint64
	ShareDistSum            uint64
	LastShareCSN            uint64
	HaveLastShare           bool
	ReclaimChecks           uint64
	ReclaimSkippedByFlag    uint64
	ReclaimDistSum          uint64
	LastReclaimCSN          uint64
	HaveLastReclaim         bool
	ReclaimChecksBackToBack uint64

	// Flush recovery accounting.
	RecoveryCycles uint64

	// Rename stall accounting (first blocking reason, once per cycle).
	StallFrontEnd uint64
	StallROB      uint64
	StallIQ       uint64
	StallLQ       uint64
	StallSQ       uint64
	StallFreeList uint64
	StallCkpt     uint64
}

// reset clears the measured-region counters (called after warmup).
func (s *Stats) reset() { *s = Stats{} }

// IPC returns committed µops per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// ElimRate returns the fraction of committed µops removed by ME (Fig. 5b).
func (s *Stats) ElimRate() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.CommittedEliminated) / float64(s.Committed)
}

// BypassRate returns the fraction of retired loads that were bypassed
// (§6.2/6.3 report 32.3%-35.7% averages).
func (s *Stats) BypassRate() float64 {
	if s.CommittedLoads == 0 {
		return 0
	}
	return float64(s.CommittedBypassed) / float64(s.CommittedLoads)
}

// ShareDistance returns the mean distance in µops between consecutive
// ISRB allocation attempts (§6.3: 19.7 average on the paper's suite).
func (s *Stats) ShareDistance() float64 {
	if s.ShareAttempts <= 1 {
		return 0
	}
	return float64(s.ShareDistSum) / float64(s.ShareAttempts-1)
}

// ReclaimCheckDistance returns the mean distance in committed µops between
// commits that must CAM the tracking structure (§6.3: 3.4 average).
func (s *Stats) ReclaimCheckDistance() float64 {
	if s.ReclaimChecks <= 1 {
		return 0
	}
	return float64(s.ReclaimDistSum) / float64(s.ReclaimChecks-1)
}

// ReclaimBackToBackRate returns the fraction of CAM-needing commits
// immediately followed by another one (§6.3: up to 53%, 32% average).
func (s *Stats) ReclaimBackToBackRate() float64 {
	if s.ReclaimChecks == 0 {
		return 0
	}
	return float64(s.ReclaimChecksBackToBack) / float64(s.ReclaimChecks)
}

func (s *Stats) noteShareAttempt(csn uint64) {
	if s.HaveLastShare && csn > s.LastShareCSN {
		s.ShareDistSum += csn - s.LastShareCSN
	}
	s.LastShareCSN = csn
	s.HaveLastShare = true
	s.ShareAttempts++
}

func (s *Stats) noteReclaimCheck(commitCSN uint64) {
	if s.HaveLastReclaim && commitCSN > s.LastReclaimCSN {
		d := commitCSN - s.LastReclaimCSN
		s.ReclaimDistSum += d
		if d == 1 {
			s.ReclaimChecksBackToBack++
		}
	}
	s.LastReclaimCSN = commitCSN
	s.HaveLastReclaim = true
	s.ReclaimChecks++
}
