package storesets

import "testing"

func cfgNoClear() Config {
	c := DefaultConfig()
	c.ClearPeriod = 0
	return c
}

// TestViolationCreatesDependence: after a violation, the load waits for
// the store's next instance.
func TestViolationCreatesDependence(t *testing.T) {
	s := New(cfgNoClear())
	loadPC, storePC := uint64(0x100), uint64(0x200)

	if _, ok := s.RenameLoad(loadPC); ok {
		t.Fatal("untrained load was given a dependence")
	}
	s.Violation(loadPC, storePC)

	s.RenameStore(storePC, 10)
	dep, ok := s.RenameLoad(loadPC)
	if !ok || dep != 10 {
		t.Fatalf("load dependence = (%d,%v), want (10,true)", dep, ok)
	}
}

// TestStoreRetiredInvalidatesLFST: once the last fetched store retires,
// loads stop waiting.
func TestStoreRetiredInvalidatesLFST(t *testing.T) {
	s := New(cfgNoClear())
	s.Violation(0x100, 0x200)
	s.RenameStore(0x200, 5)
	s.StoreRetired(0x200, 5)
	if _, ok := s.RenameLoad(0x100); ok {
		t.Fatal("load depends on a retired store")
	}
	// Retiring an older instance must not clear a newer one.
	s.RenameStore(0x200, 8)
	s.StoreRetired(0x200, 5)
	if _, ok := s.RenameLoad(0x100); !ok {
		t.Fatal("newer store's LFST entry was cleared by an older retirement")
	}
}

// TestStoreStoreOrdering: two stores of one set serialize through the
// LFST.
func TestStoreStoreOrdering(t *testing.T) {
	s := New(cfgNoClear())
	// Merge both stores into the load's set via two violations.
	s.Violation(0x100, 0x200)
	s.Violation(0x100, 0x300)
	s.RenameStore(0x200, 20)
	prev, ok := s.RenameStore(0x300, 21)
	if !ok || prev != 20 {
		t.Fatalf("second store's predecessor = (%d,%v), want (20,true)", prev, ok)
	}
}

// TestMergeRules: Chrysos & Emer's declining merge — the smaller SSID
// wins when both parties are assigned.
func TestMergeRules(t *testing.T) {
	s := New(cfgNoClear())
	// Create two distinct sets.
	s.Violation(0x100, 0x200) // set A
	s.Violation(0x104, 0x204) // set B
	a := s.ssit[s.ssitIndex(0x100)]
	b := s.ssit[s.ssitIndex(0x104)]
	if a == b {
		t.Fatal("distinct pairs merged prematurely")
	}
	// Cross violation merges them.
	s.Violation(0x100, 0x204)
	a2 := s.ssit[s.ssitIndex(0x100)]
	b2 := s.ssit[s.ssitIndex(0x204)]
	if a2 != b2 {
		t.Fatal("cross violation did not merge sets")
	}
	want := a
	if b < a {
		want = b
	}
	if a2 != want {
		t.Fatalf("merge kept SSID %d, want the smaller of (%d,%d)", a2, a, b)
	}
}

// TestCyclicClearing: after ClearPeriod renames the tables are wiped
// (Chrysos & Emer's periodic clearing; sustains the trap trickle the
// paper's Figure 4 shows).
func TestCyclicClearing(t *testing.T) {
	cfg := cfgNoClear()
	cfg.ClearPeriod = 10
	s := New(cfg)
	s.Violation(0x100, 0x200)
	s.RenameStore(0x200, 1)
	if _, ok := s.RenameLoad(0x100); !ok {
		t.Fatal("dependence missing before clear")
	}
	for i := 0; i < 12; i++ {
		s.RenameLoad(0x900 + uint64(i*4))
	}
	if s.Clears == 0 {
		t.Fatal("no cyclic clear happened")
	}
	if _, ok := s.RenameLoad(0x100); ok {
		t.Fatal("dependence survived the cyclic clear")
	}
}

func TestStoragePositive(t *testing.T) {
	if New(DefaultConfig()).Storage() <= 0 {
		t.Fatal("storage must be positive")
	}
}
