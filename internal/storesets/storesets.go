// Package storesets implements the Store Sets memory dependence predictor
// of Chrysos & Emer that the paper's baseline uses (Table 1: 4K-entry SSIT
// and LFST, not rolled back on squash).
//
// Loads and stores that have collided in the past are placed in a common
// "store set". At rename, a store records itself as the last fetched store
// of its set (LFST); a load belonging to a set must wait for that store.
// Because the tables are not repaired on a squash, wrong-path stores can
// linger in the LFST and create false dependencies — one of the two event
// classes SMB is shown to mitigate (Fig. 6b).
package storesets

// Config sizes the predictor.
type Config struct {
	SSITEntries int // store-set ID table entries (PC-indexed)
	LFSTEntries int // last-fetched-store table entries (SSID-indexed)
	// ClearPeriod is Chrysos & Emer's cyclic clearing: after this many
	// load/store renames the tables are wiped, breaking stale sets
	// (gem5's StoreSet model does the same). 0 disables clearing.
	ClearPeriod uint64
}

// DefaultConfig mirrors Table 1. gem5's store-set clear period is on the
// order of hundreds of thousands of memory operations against 100M-
// instruction SimPoints; the default here is scaled to this harness's
// run lengths (~10^5 µops) so the steady-state trap trickle of Figure 4
// is visible at the same events-per-instruction rate.
func DefaultConfig() Config {
	return Config{SSITEntries: 4096, LFSTEntries: 4096, ClearPeriod: 25_000}
}

const invalidSSID = int32(-1)

type lfstEntry struct {
	valid bool
	seq   uint64 // dynamic sequence number of the last fetched store
}

// StoreSets is the predictor state.
type StoreSets struct {
	cfg      Config
	ssit     []int32
	lfst     []lfstEntry
	accesses uint64

	// Stats
	Assignments uint64 // violations that trained the tables
	LoadDeps    uint64 // loads given a store dependence at rename
	StoreDeps   uint64 // stores serialized behind same-set stores
	Clears      uint64 // cyclic table clears
}

// New builds the predictor.
func New(cfg Config) *StoreSets {
	s := &StoreSets{
		cfg:  cfg,
		ssit: make([]int32, cfg.SSITEntries),
		lfst: make([]lfstEntry, cfg.LFSTEntries),
	}
	for i := range s.ssit {
		s.ssit[i] = invalidSSID
	}
	return s
}

func (s *StoreSets) ssitIndex(pc uint64) int {
	return int((pc >> 2) % uint64(len(s.ssit)))
}

// tick advances the cyclic-clearing counter; called once per load/store
// rename.
func (s *StoreSets) tick() {
	if s.cfg.ClearPeriod == 0 {
		return
	}
	s.accesses++
	if s.accesses >= s.cfg.ClearPeriod {
		s.accesses = 0
		s.Clears++
		for i := range s.ssit {
			s.ssit[i] = invalidSSID
		}
		for i := range s.lfst {
			s.lfst[i] = lfstEntry{}
		}
	}
}

// RenameLoad is called when a load is renamed. If the load belongs to a
// store set whose last fetched store is still in flight, it returns that
// store's sequence number and true: the load must not issue before the
// store's address and data are known.
func (s *StoreSets) RenameLoad(pc uint64) (uint64, bool) {
	s.tick()
	ssid := s.ssit[s.ssitIndex(pc)]
	if ssid == invalidSSID {
		return 0, false
	}
	e := &s.lfst[int(ssid)%len(s.lfst)]
	if !e.valid {
		return 0, false
	}
	s.LoadDeps++
	return e.seq, true
}

// RenameStore is called when a store is renamed. It returns the previous
// last-fetched store of the set (for store-store ordering) and records
// this store as the new last fetched store of its set.
func (s *StoreSets) RenameStore(pc uint64, seq uint64) (uint64, bool) {
	s.tick()
	ssid := s.ssit[s.ssitIndex(pc)]
	if ssid == invalidSSID {
		return 0, false
	}
	e := &s.lfst[int(ssid)%len(s.lfst)]
	prev, had := e.seq, e.valid
	e.valid = true
	e.seq = seq
	if had {
		s.StoreDeps++
	}
	return prev, had
}

// StoreRetired is called when a store leaves the window (issues its data
// or commits); if it is still the set's last fetched store, the entry is
// invalidated so later loads do not wait on a departed store.
func (s *StoreSets) StoreRetired(pc uint64, seq uint64) {
	ssid := s.ssit[s.ssitIndex(pc)]
	if ssid == invalidSSID {
		return
	}
	e := &s.lfst[int(ssid)%len(s.lfst)]
	if e.valid && e.seq == seq {
		e.valid = false
	}
}

// Violation trains the tables after a memory-order violation between the
// load at loadPC and the store at storePC, using Chrysos & Emer's merge
// rules: both instructions end up in a common set, preferring the smaller
// existing SSID.
func (s *StoreSets) Violation(loadPC, storePC uint64) {
	s.Assignments++
	li, si := s.ssitIndex(loadPC), s.ssitIndex(storePC)
	lset, sset := s.ssit[li], s.ssit[si]
	switch {
	case lset == invalidSSID && sset == invalidSSID:
		ssid := int32(li % len(s.lfst))
		s.ssit[li] = ssid
		s.ssit[si] = ssid
	case lset != invalidSSID && sset == invalidSSID:
		s.ssit[si] = lset
	case lset == invalidSSID && sset != invalidSSID:
		s.ssit[li] = sset
	default:
		// Both assigned: winner is the smaller SSID (declining merge).
		if lset < sset {
			s.ssit[si] = lset
		} else {
			s.ssit[li] = sset
		}
	}
}

// Storage returns the predictor's storage in bits (SSID width derived from
// the LFST size; LFST holds a sequence-number-sized tag per entry).
func (s *StoreSets) Storage() int {
	ssidBits := 12 // log2(4096)
	return len(s.ssit)*ssidBits + len(s.lfst)*(1+16)
}
