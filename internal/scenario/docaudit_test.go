package scenario

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// auditedPackages are the directories whose exported identifiers must
// all carry doc comments — the packages this repo's docs pass gates (CI
// runs this test in the docs job).
var auditedPackages = []string{".", "../sim"}

// TestExportedIdentifiersDocumented fails on any exported top-level
// identifier without a doc comment in the audited packages.
func TestExportedIdentifiersDocumented(t *testing.T) {
	for _, dir := range auditedPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				auditFile(t, fset, f)
			}
		}
	}
}

func auditFile(t *testing.T, fset *token.FileSet, f *ast.File) {
	report := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		t.Errorf("%s:%d: exported %s has no doc comment", filepath.Base(p.Filename), p.Line, name)
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				report(d.Pos(), "func "+d.Name.Name)
			}
		case *ast.GenDecl:
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !groupDoc && s.Doc == nil {
						report(s.Pos(), "type "+s.Name.Name)
					}
				case *ast.ValueSpec:
					// A const/var group is fine with one group-level
					// comment; individual specs may document instead.
					if groupDoc || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(s.Pos(), n.Name)
						}
					}
				}
			}
		}
	}
}
