package scenario

import (
	"embed"
	"errors"
	"fmt"
	"os"
	"path"
	"sort"
	"strings"
)

// ErrUnknownBuiltin marks a Builtin lookup for a name that is not in
// the committed catalog — as opposed to a catalog spec that exists but
// fails to parse, which callers must not mask behind "unknown name".
var ErrUnknownBuiltin = errors.New("unknown builtin scenario")

// The committed scenario catalog: the paper's headline figures and
// sweeps plus the beyond-paper grids, as data instead of harness code.
//
//go:embed specs/*.scenario
var specFS embed.FS

// BuiltinNames lists the committed scenarios, sorted.
func BuiltinNames() []string {
	entries, err := specFS.ReadDir("specs")
	if err != nil {
		panic(fmt.Sprintf("scenario: embedded specs unreadable: %v", err))
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".scenario"))
	}
	sort.Strings(names)
	return names
}

// Builtin parses the committed scenario with the given name.
func Builtin(name string) (*Spec, error) {
	data, err := specFS.ReadFile(path.Join("specs", name+".scenario"))
	if err != nil {
		return nil, fmt.Errorf("%w %q (known: %v)", ErrUnknownBuiltin, name, BuiltinNames())
	}
	s, err := ParseBytes(data)
	if err != nil {
		return nil, fmt.Errorf("builtin %q: %w", name, err)
	}
	return s, nil
}

// MustBuiltin is Builtin for harness code where a missing or invalid
// committed spec is a bug.
func MustBuiltin(name string) *Spec {
	s, err := Builtin(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Resolve loads a spec from a name-or-path, the shared rule of every
// command's -scenario flag: an existing file path wins (so its parse
// errors surface verbatim), anything else is a committed-catalog lookup.
func Resolve(nameOrPath string) (*Spec, error) {
	if _, err := os.Stat(nameOrPath); err == nil {
		return LoadFile(nameOrPath)
	}
	return Builtin(nameOrPath)
}
