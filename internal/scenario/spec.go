// Package scenario is the declarative experiment engine: it turns a
// JSON `.scenario` spec — a grid of workloads × configuration mutations
// × tracker schemes × run lengths — into a deduplicated sim.Request
// matrix, executes it batched through a shared sim.Runner (bounded
// parallelism, singleflight dedup, sharded on-disk store), and
// aggregates the results into a stable report: per-cell speedup series,
// geometric means, and the text tables cmd/sweep and cmd/paperfigs
// print.
//
// The paper's evaluation is exactly such a grid (ME/SMB on/off × five
// reference-counting schemes × ISRB sizes × 36 workloads), so the
// headline figures ship as committed specs under specs/ (see Builtin)
// instead of hard-coded harness Go; opening a new sweep axis means
// writing a spec, not editing a command.
//
// A minimal spec:
//
//	{
//	  "name": "isrb-sweep",
//	  "title": "SMB speedup vs ISRB size",
//	  "benchmarks": ["branch-hostile"],
//	  "warmup": 20000, "measure": 80000,
//	  "opt": {"smb": true},
//	  "axes": [{"name": "entries", "values": [
//	    {"label": "8",  "patch": {"tracker": "isrb", "entries": 8, "ctrbits": 3}},
//	    {"label": "24", "patch": {"tracker": "isrb", "entries": 24, "ctrbits": 3}}]}],
//	  "report": {"kind": "grid", "rowheader": "entries", "valueheader": "SMB speedup"}
//	}
//
// Each cell's baseline is default-config + `base` + the patches of every
// axis marked `"shared": true`; its optimized configuration additionally
// applies `opt` and the non-shared axis patches. The reported number is
// always the speedup of the optimized configuration over the cell's own
// baseline, geometric-mean'd across the benchmark list.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/workloads"
)

// Value is one point on an axis: a display label plus the configuration
// patch selecting the point.
//
//repro:wire
type Value struct {
	Label string `json:"label"`
	Patch Patch  `json:"patch"`
}

// Axis is one sweep dimension. A shared axis patches the cell's baseline
// as well as its optimized configuration (e.g. a ROB-size axis, where
// each cell compares against a baseline of the same ROB size); a
// non-shared axis patches only the optimized side (e.g. an ISRB-size
// axis, where every cell compares against the one unmodified baseline).
//
//repro:wire
type Axis struct {
	Name   string  `json:"name"`
	Shared bool    `json:"shared,omitempty"`
	Values []Value `json:"values"`
}

// Report kinds.
const (
	// ReportGrid renders one row per first-axis value and one column per
	// second-axis value (or a single value column for one axis); each
	// cell is the gmean speedup over the cell baseline.
	ReportGrid = "grid"
	// ReportSeries renders one row per benchmark and one column per cell
	// (the figures' shape), plus a gmean row.
	ReportSeries = "series"
)

// ReportSpec selects how a scenario's results are rendered as a table.
//
//repro:wire
type ReportSpec struct {
	Kind        string `json:"kind"`                  // "grid" | "series"
	RowHeader   string `json:"rowheader,omitempty"`   // grid: first column's header
	ValueHeader string `json:"valueheader,omitempty"` // 1-axis grid: the value column's header
}

// Spec is one parsed scenario.
//
//repro:wire
type Spec struct {
	Name        string `json:"name"`
	Title       string `json:"title"`
	Description string `json:"description,omitempty"`
	// Benchmarks mixes explicit workload names and group names ("all",
	// "int", "fp", "branch-hostile"); groups expand in place, duplicates
	// collapse on first occurrence.
	Benchmarks []string   `json:"benchmarks"`
	Warmup     uint64     `json:"warmup"`
	Measure    uint64     `json:"measure"`
	Base       Patch      `json:"base,omitempty"`
	Opt        Patch      `json:"opt,omitempty"`
	Axes       []Axis     `json:"axes"`
	Report     ReportSpec `json:"report"`
}

// Parse reads one spec from r, rejecting unknown fields (a typo'd knob
// must fail loudly, not silently sweep nothing) and validating it.
func Parse(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ParseBytes parses a spec held in memory.
func ParseBytes(data []byte) (*Spec, error) { return Parse(bytes.NewReader(data)) }

// LoadFile parses the spec at path.
func LoadFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := ParseBytes(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}

// Validate checks the spec's internal consistency: a non-empty name and
// grid, resolvable benchmarks, positive run lengths, known patch values
// and a renderable report shape.
func (s *Spec) Validate() error {
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("scenario %q: %s", s.Name, fmt.Sprintf(format, args...))
	}
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if s.Measure == 0 {
		return fail("measure must be positive")
	}
	if _, err := s.ResolveBenchmarks(); err != nil {
		return fail("%v", err)
	}
	if len(s.Axes) == 0 {
		return fail("no axes: the grid is empty")
	}
	for _, a := range s.Axes {
		if a.Name == "" {
			return fail("axis with no name")
		}
		if len(a.Values) == 0 {
			return fail("axis %q has no values: the grid is empty", a.Name)
		}
		for _, v := range a.Values {
			if v.Label == "" {
				return fail("axis %q has a value with no label", a.Name)
			}
			if err := v.Patch.Validate(); err != nil {
				return fail("axis %q value %q: %v", a.Name, v.Label, err)
			}
		}
	}
	for _, sp := range []struct {
		side string
		p    *Patch
	}{{"base", &s.Base}, {"opt", &s.Opt}} {
		if err := sp.p.Validate(); err != nil {
			return fail("%s patch: %v", sp.side, err)
		}
	}
	switch s.Report.Kind {
	case ReportGrid:
		if len(s.Axes) > 2 {
			return fail("grid report needs 1 or 2 axes, spec has %d", len(s.Axes))
		}
	case ReportSeries:
		if len(s.Axes) != 1 {
			return fail("series report needs exactly 1 axis, spec has %d", len(s.Axes))
		}
	default:
		return fail("unknown report kind %q (known: grid series)", s.Report.Kind)
	}
	return nil
}

// ResolveBenchmarks expands groups and validates names, preserving order
// and dropping duplicates.
func (s *Spec) ResolveBenchmarks() ([]string, error) {
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmarks selected")
	}
	var names []string
	seen := make(map[string]bool)
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for _, b := range s.Benchmarks {
		if members, ok := workloads.Group(b); ok {
			for _, n := range members {
				add(n)
			}
			continue
		}
		if _, err := workloads.ByName(b); err != nil {
			return nil, fmt.Errorf("benchmark %q: not a workload and not a group (groups: %v)",
				b, workloads.GroupNames())
		}
		add(b)
	}
	return names, nil
}
