// Package scenario is the declarative experiment engine: it turns a
// JSON `.scenario` spec — a grid of workloads × configuration mutations
// × tracker schemes × run lengths — into a deduplicated sim.Request
// matrix, executes it batched through a shared sim.Runner (bounded
// parallelism, singleflight dedup, sharded on-disk store), and
// aggregates the results into a stable report: per-cell speedup series,
// geometric means, and the text tables cmd/sweep and cmd/paperfigs
// print.
//
// The paper's evaluation is exactly such a grid (ME/SMB on/off × five
// reference-counting schemes × ISRB sizes × 36 workloads), so the
// headline figures ship as committed specs under specs/ (see Builtin)
// instead of hard-coded harness Go; opening a new sweep axis means
// writing a spec, not editing a command.
//
// A minimal spec:
//
//	{
//	  "name": "isrb-sweep",
//	  "title": "SMB speedup vs ISRB size",
//	  "benchmarks": ["branch-hostile"],
//	  "warmup": 20000, "measure": 80000,
//	  "opt": {"smb": true},
//	  "axes": [{"name": "entries", "values": [
//	    {"label": "8",  "patch": {"tracker": "isrb", "entries": 8, "ctrbits": 3}},
//	    {"label": "24", "patch": {"tracker": "isrb", "entries": 24, "ctrbits": 3}}]}],
//	  "report": {"kind": "grid", "rowheader": "entries", "valueheader": "SMB speedup"}
//	}
//
// Each cell's baseline is default-config + `base` + the patches of every
// axis marked `"shared": true`; its optimized configuration additionally
// applies `opt` and the non-shared axis patches. The reported number is
// always the speedup of the optimized configuration over the cell's own
// baseline, geometric-mean'd across the benchmark list.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/workloads"
)

// Value is one point on an axis: a display label plus the configuration
// patch selecting the point.
//
//repro:wire
type Value struct {
	Label string `json:"label"`
	Patch Patch  `json:"patch"`
}

// Axis is one sweep dimension. A shared axis patches the cell's baseline
// as well as its optimized configuration (e.g. a ROB-size axis, where
// each cell compares against a baseline of the same ROB size); a
// non-shared axis patches only the optimized side (e.g. an ISRB-size
// axis, where every cell compares against the one unmodified baseline).
//
//repro:wire
type Axis struct {
	Name   string  `json:"name"`
	Shared bool    `json:"shared,omitempty"`
	Values []Value `json:"values"`
}

// WorkloadValue is one point on a workload axis: a display label plus
// the benchmark list — workload names, gen: generator names or group
// names — the point selects.
//
//repro:wire
type WorkloadValue struct {
	Label      string   `json:"label"`
	Benchmarks []string `json:"benchmarks"`
}

// WorkloadAxis is a sweep dimension over *program shape* rather than
// machine configuration: each value swaps the benchmark list instead of
// patching the config. Workload axes are always outermost in the cell
// order (they vary slowest), and combine freely with config axes — a
// scheme × ROB × workload-shape grid is three axes like any other.
// Every cell still compares its optimized configuration against its own
// baseline on the cell's own benchmarks, so speedups stay comparable
// across shapes.
//
//repro:wire
type WorkloadAxis struct {
	Name   string          `json:"name"`
	Values []WorkloadValue `json:"values"`
}

// Report kinds.
const (
	// ReportGrid renders one row per first-axis value and one column per
	// second-axis value (or a single value column for one axis); each
	// cell is the gmean speedup over the cell baseline. Workload axes
	// count as axes here, outermost first.
	ReportGrid = "grid"
	// ReportSeries renders one row per benchmark and one column per cell
	// (the figures' shape), plus a gmean row.
	ReportSeries = "series"
	// ReportCells renders one row per cell — its joined labels and gmean
	// speedup — with no dimensional layout. It is the only kind that
	// scales to grids with three or more axes (the fleet-sized specs).
	ReportCells = "cells"
)

// ReportSpec selects how a scenario's results are rendered as a table.
//
//repro:wire
type ReportSpec struct {
	Kind        string `json:"kind"`                  // "grid" | "series"
	RowHeader   string `json:"rowheader,omitempty"`   // grid: first column's header
	ValueHeader string `json:"valueheader,omitempty"` // 1-axis grid: the value column's header
}

// Spec is one parsed scenario.
//
//repro:wire
type Spec struct {
	Name        string `json:"name"`
	Title       string `json:"title"`
	Description string `json:"description,omitempty"`
	// Benchmarks mixes explicit workload names, gen: generator names and
	// group names ("all", "int", "fp", "branch-hostile"); groups expand
	// in place, duplicates collapse on first occurrence. It may be empty
	// when WorkloadAxes supplies every cell's benchmarks; when both are
	// present, every cell runs this list plus its axis values' lists.
	Benchmarks []string `json:"benchmarks,omitempty"`
	Warmup     uint64   `json:"warmup"`
	Measure    uint64   `json:"measure"`
	Base       Patch    `json:"base,omitempty"`
	Opt        Patch    `json:"opt,omitempty"`
	// WorkloadAxes sweep program shape; Axes sweep machine
	// configuration. Cell order is row-major over workload axes first
	// (outermost), then config axes (the last config axis varies
	// fastest).
	WorkloadAxes []WorkloadAxis `json:"workload_axes,omitempty"`
	Axes         []Axis         `json:"axes,omitempty"`
	Report       ReportSpec     `json:"report"`
}

// Parse reads one spec from r, rejecting unknown fields (a typo'd knob
// must fail loudly, not silently sweep nothing) and validating it.
func Parse(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ParseBytes parses a spec held in memory.
func ParseBytes(data []byte) (*Spec, error) { return Parse(bytes.NewReader(data)) }

// LoadFile parses the spec at path.
func LoadFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := ParseBytes(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}

// Validate checks the spec's internal consistency: a non-empty name and
// grid, resolvable benchmarks, positive run lengths, known patch values
// and a renderable report shape.
func (s *Spec) Validate() error {
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("scenario %q: %s", s.Name, fmt.Sprintf(format, args...))
	}
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if s.Measure == 0 {
		return fail("measure must be positive")
	}
	if len(s.Benchmarks) == 0 && len(s.WorkloadAxes) == 0 {
		return fail("no benchmarks selected")
	}
	if len(s.Benchmarks) != 0 {
		if _, err := s.ResolveBenchmarks(); err != nil {
			return fail("%v", err)
		}
	}
	if len(s.Axes) == 0 && len(s.WorkloadAxes) == 0 {
		return fail("no axes: the grid is empty")
	}
	for _, a := range s.WorkloadAxes {
		if a.Name == "" {
			return fail("workload axis with no name")
		}
		if len(a.Values) == 0 {
			return fail("workload axis %q has no values: the grid is empty", a.Name)
		}
		for _, v := range a.Values {
			if v.Label == "" {
				return fail("workload axis %q has a value with no label", a.Name)
			}
			if _, err := resolveBenchList(append(append([]string{}, s.Benchmarks...), v.Benchmarks...)); err != nil {
				return fail("workload axis %q value %q: %v", a.Name, v.Label, err)
			}
		}
	}
	for _, a := range s.Axes {
		if a.Name == "" {
			return fail("axis with no name")
		}
		if len(a.Values) == 0 {
			return fail("axis %q has no values: the grid is empty", a.Name)
		}
		for _, v := range a.Values {
			if v.Label == "" {
				return fail("axis %q has a value with no label", a.Name)
			}
			if err := v.Patch.Validate(); err != nil {
				return fail("axis %q value %q: %v", a.Name, v.Label, err)
			}
		}
	}
	for _, sp := range []struct {
		side string
		p    *Patch
	}{{"base", &s.Base}, {"opt", &s.Opt}} {
		if err := sp.p.Validate(); err != nil {
			return fail("%s patch: %v", sp.side, err)
		}
	}
	nAxes := len(s.WorkloadAxes) + len(s.Axes)
	switch s.Report.Kind {
	case ReportGrid:
		if nAxes > 2 {
			return fail("grid report needs 1 or 2 axes (workload axes included), spec has %d", nAxes)
		}
	case ReportSeries:
		if nAxes != 1 {
			return fail("series report needs exactly 1 axis (workload axes included), spec has %d", nAxes)
		}
	case ReportCells:
	default:
		return fail("unknown report kind %q (known: grid series cells)", s.Report.Kind)
	}
	return nil
}

// axisView is the dimension-agnostic face of one sweep axis — its name
// and value labels — in combined cell order: workload axes first, then
// config axes. Report rendering lays out cells with it, so a grid over
// a workload axis and a grid over a config axis render identically.
type axisView struct {
	name   string
	labels []string
}

// combinedAxes lists the spec's sweep dimensions in cell order.
func (s *Spec) combinedAxes() []axisView {
	out := make([]axisView, 0, len(s.WorkloadAxes)+len(s.Axes))
	for _, a := range s.WorkloadAxes {
		v := axisView{name: a.Name, labels: make([]string, len(a.Values))}
		for i, val := range a.Values {
			v.labels[i] = val.Label
		}
		out = append(out, v)
	}
	for _, a := range s.Axes {
		v := axisView{name: a.Name, labels: make([]string, len(a.Values))}
		for i, val := range a.Values {
			v.labels[i] = val.Label
		}
		out = append(out, v)
	}
	return out
}

// ResolveBenchmarks expands groups and validates names, preserving
// order and dropping duplicates. Names are returned in canonical form
// (gen: generator names have many equivalent spellings), so everything
// downstream — matrix cells, dedup keys, store envelopes — addresses
// one workload by exactly one string.
func (s *Spec) ResolveBenchmarks() ([]string, error) {
	return resolveBenchList(s.Benchmarks)
}

// resolveBenchList is the group-expanding, canonicalizing name
// resolver shared by the top-level benchmark list and workload-axis
// values.
func resolveBenchList(list []string) ([]string, error) {
	if len(list) == 0 {
		return nil, fmt.Errorf("no benchmarks selected")
	}
	var names []string
	seen := make(map[string]bool)
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for _, b := range list {
		if members, ok := workloads.Members(b); ok {
			for _, m := range members {
				add(m.Name)
			}
			continue
		}
		canonical, err := workloads.CanonicalName(b)
		if err != nil {
			return nil, fmt.Errorf("benchmark %q: not a workload and not a group (groups: %v): %w",
				b, workloads.Groups(), err)
		}
		add(canonical)
	}
	return names, nil
}
