package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestRunSmallScenario: end-to-end over a tiny grid — cells aggregate
// into per-benchmark speedup series and both table shapes render.
func TestRunSmallScenario(t *testing.T) {
	s, err := ParseBytes([]byte(gridSpec))
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Expand(Overrides{Warmup: u64p(500), Measure: u64p(4000)})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(context.Background(), sim.New(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.Series.GMean <= 0 {
			t.Fatalf("cell %s has degenerate gmean %v", c.Name, c.Series.GMean)
		}
		for _, b := range rep.Benches {
			if c.Series.Per[b] <= 0 {
				t.Fatalf("cell %s missing benchmark %s", c.Name, b)
			}
		}
	}
	tbl := rep.Table().String()
	for _, want := range []string{"== G ==", "ROB", "ISRB-8", "unlimited", "96", "192"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("grid table missing %q:\n%s", want, tbl)
		}
	}

	// The report is a stable, self-describing JSON value.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != reportSchema || back.Scenario != "g" || len(back.Cells) != 4 {
		t.Fatalf("report did not round-trip: %+v", back)
	}
	if back.Cells[0].Series.GMean != rep.Cells[0].Series.GMean {
		t.Fatal("gmean lost in the JSON round-trip")
	}
}

// TestSeriesReportShape: a series scenario renders one row per
// benchmark plus the gmean row, one column per cell.
func TestSeriesReportShape(t *testing.T) {
	spec := `{
	  "name": "s", "title": "S",
	  "benchmarks": ["crafty", "gcc"],
	  "warmup": 500, "measure": 4000,
	  "opt": {"me": true},
	  "axes": [{"name": "ISRB", "values": [
	    {"label": "ME-8",   "patch": {"tracker": "isrb", "entries": 8, "ctrbits": 3}},
	    {"label": "ME-unl", "patch": {"tracker": "unlimited"}}]}],
	  "report": {"kind": "series"}
	}`
	s, err := ParseBytes([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.MustExpand(Overrides{}).Run(context.Background(), sim.New(), nil)
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.Table().String()
	for _, want := range []string{"benchmark", "ME-8", "ME-unl", "crafty", "gcc", "gmean"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("series table missing %q:\n%s", want, tbl)
		}
	}
	if got := rep.Series(); len(got) != 2 || got[0].Name != "ME-8" {
		t.Fatalf("Series() = %+v", got)
	}
}

// bigGrid builds a ≥100-cell spec (14 entries × 8 counter widths = 112
// cells) over one benchmark with very short runs.
func bigGrid() *Spec {
	var values1, values2 []string
	for e := 1; e <= 14; e++ {
		values1 = append(values1,
			fmt.Sprintf(`{"label": "%d", "patch": {"entries": %d}}`, e, e))
	}
	for b := 1; b <= 8; b++ {
		values2 = append(values2,
			fmt.Sprintf(`{"label": "%db", "patch": {"ctrbits": %d}}`, b, b))
	}
	spec := fmt.Sprintf(`{
	  "name": "big", "title": "Big",
	  "benchmarks": ["crafty"],
	  "warmup": 200, "measure": 1500,
	  "opt": {"me": true, "smb": true, "tracker": "isrb"},
	  "axes": [
	    {"name": "entries", "values": [%s]},
	    {"name": "bits", "values": [%s]}
	  ],
	  "report": {"kind": "grid", "rowheader": "entries"}
	}`, strings.Join(values1, ","), strings.Join(values2, ","))
	s, err := ParseBytes([]byte(spec))
	if err != nil {
		panic(err)
	}
	return s
}

// TestHundredCellGridThroughStore is the scale acceptance check: one run
// over a 112-cell grid populates the sharded store, and a second,
// fresh-process-equivalent invocation (new Runner on the same dir) is
// served entirely from the store without simulating anything.
func TestHundredCellGridThroughStore(t *testing.T) {
	dir := t.TempDir()
	s := bigGrid()
	m := s.MustExpand(Overrides{})
	if len(m.Cells) < 100 {
		t.Fatalf("grid has %d cells, want >= 100", len(m.Cells))
	}
	// 112 distinct optimized configs + 1 shared baseline.
	if want := 113; len(m.Requests) != want {
		t.Fatalf("got %d deduplicated requests, want %d", len(m.Requests), want)
	}

	r1 := sim.New(sim.WithCacheDir(dir))
	rep1, err := m.Run(context.Background(), r1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c := r1.Counters(); c.Simulated != uint64(len(m.Requests)) {
		t.Fatalf("first run simulated %d, want %d", c.Simulated, len(m.Requests))
	}
	if got := sim.NewStore(dir).Len(); got != len(m.Requests) {
		t.Fatalf("store holds %d entries after the run, want %d", got, len(m.Requests))
	}

	r2 := sim.New(sim.WithCacheDir(dir))
	rep2, err := s.MustExpand(Overrides{}).Run(context.Background(), r2, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := r2.Counters()
	if c.Simulated != 0 || c.DiskHits != uint64(len(m.Requests)) {
		t.Fatalf("second run not served from the store: %+v", c)
	}
	for i := range rep1.Cells {
		if rep1.Cells[i].Series.GMean != rep2.Cells[i].Series.GMean {
			t.Fatalf("cell %s changed across the store round-trip", rep1.Cells[i].Name)
		}
	}
}
