package scenario

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
)

// gridSpec is a 2×2 grid with a shared ROB axis — the shape where
// deduplication matters: both cells of a row share the row's baseline.
const gridSpec = `{
  "name": "g",
  "title": "G",
  "benchmarks": ["crafty", "gcc"],
  "warmup": 100,
  "measure": 1000,
  "opt": {"smb": true},
  "axes": [
    {"name": "ROB", "shared": true, "values": [
      {"label": "96",  "patch": {"rob": 96}},
      {"label": "192", "patch": {"rob": 192}}
    ]},
    {"name": "ISRB", "values": [
      {"label": "ISRB-8",    "patch": {"tracker": "isrb", "entries": 8, "ctrbits": 3}},
      {"label": "unlimited", "patch": {}}
    ]}
  ],
  "report": {"kind": "grid", "rowheader": "ROB"}
}`

// u64p builds the pointer form Overrides uses to distinguish "unset"
// from an explicit zero.
func u64p(v uint64) *uint64 { return &v }

// describe renders a request's distinguishing fields for the golden
// comparison.
func describe(r sim.Request) string {
	return fmt.Sprintf("%s w=%d m=%d rob=%d smb=%v tracker=%s/%d/%d",
		r.Bench, r.Warmup, r.Measure, r.Config.ROBSize, r.Config.SMB.Enabled,
		r.Config.Tracker.Kind, r.Config.Tracker.Entries, r.Config.Tracker.CounterBits)
}

// TestExpandGolden pins the spec→request-matrix expansion: cell order
// (row-major, last axis fastest), per-cell labels, the deduplicated
// request list in first-use order, and which requests each cell maps to.
func TestExpandGolden(t *testing.T) {
	s, err := ParseBytes([]byte(gridSpec))
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Expand(Overrides{})
	if err != nil {
		t.Fatal(err)
	}

	var got strings.Builder
	for _, r := range m.Requests {
		fmt.Fprintf(&got, "req %s\n", describe(r))
	}
	for _, c := range m.Cells {
		fmt.Fprintf(&got, "cell %s base=%v opt=%v\n", strings.Join(c.Labels, "/"), c.Base, c.Opt)
	}

	want := strings.TrimLeft(`
req crafty w=100 m=1000 rob=96 smb=false tracker=unlimited/32/3
req gcc w=100 m=1000 rob=96 smb=false tracker=unlimited/32/3
req crafty w=100 m=1000 rob=96 smb=true tracker=isrb/8/3
req gcc w=100 m=1000 rob=96 smb=true tracker=isrb/8/3
req crafty w=100 m=1000 rob=96 smb=true tracker=unlimited/32/3
req gcc w=100 m=1000 rob=96 smb=true tracker=unlimited/32/3
req crafty w=100 m=1000 rob=192 smb=false tracker=unlimited/32/3
req gcc w=100 m=1000 rob=192 smb=false tracker=unlimited/32/3
req crafty w=100 m=1000 rob=192 smb=true tracker=isrb/8/3
req gcc w=100 m=1000 rob=192 smb=true tracker=isrb/8/3
req crafty w=100 m=1000 rob=192 smb=true tracker=unlimited/32/3
req gcc w=100 m=1000 rob=192 smb=true tracker=unlimited/32/3
cell 96/ISRB-8 base=[0 1] opt=[2 3]
cell 96/unlimited base=[0 1] opt=[4 5]
cell 192/ISRB-8 base=[6 7] opt=[8 9]
cell 192/unlimited base=[6 7] opt=[10 11]
`, "\n")
	if got.String() != want {
		t.Fatalf("expansion drifted:\n--- got ---\n%s--- want ---\n%s", got.String(), want)
	}

	// The same spec expands identically every time (map iteration must
	// not leak into the order).
	m2 := s.MustExpand(Overrides{})
	for i := range m.Requests {
		if sim.Key(m.Requests[i]) != sim.Key(m2.Requests[i]) {
			t.Fatalf("expansion not deterministic at request %d", i)
		}
	}
}

// TestExpandOverrides: run-length and benchmark overrides replace the
// spec's choices without editing it.
func TestExpandOverrides(t *testing.T) {
	s, err := ParseBytes([]byte(gridSpec))
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Expand(Overrides{Warmup: u64p(7), Measure: u64p(77), Benchmarks: []string{"hmmer"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Benches) != 1 || m.Benches[0] != "hmmer" {
		t.Fatalf("bench override ignored: %v", m.Benches)
	}
	for _, r := range m.Requests {
		if r.Bench != "hmmer" || r.Warmup != 7 || r.Measure != 77 {
			t.Fatalf("override not applied: %s", describe(r))
		}
	}
	// A pointer to zero is an explicit request for no warmup, not
	// "keep the spec's value".
	m0, err := s.Expand(Overrides{Warmup: u64p(0)})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range m0.Requests {
		if r.Warmup != 0 {
			t.Fatalf("explicit zero warmup ignored: %s", describe(r))
		}
	}
	if _, err := s.Expand(Overrides{Benchmarks: []string{"nope"}}); err == nil {
		t.Fatal("unknown benchmark override accepted")
	}
}

// wgSpec sweeps workload shape (one axis value per generator point,
// spelled non-canonically on purpose) against an ISRB config axis, with
// a shared catalog benchmark riding along in every cell.
const wgSpec = `{
  "name": "wg",
  "title": "WG",
  "benchmarks": ["crafty"],
  "warmup": 100,
  "measure": 1000,
  "opt": {"smb": true},
  "workload_axes": [
    {"name": "shape", "values": [
      {"label": "spill8", "benchmarks": ["gen:spill?seed=1&depth=8"]},
      {"label": "chase",  "benchmarks": ["gen:chase?mix=0.50"]}
    ]}
  ],
  "axes": [
    {"name": "ISRB", "values": [
      {"label": "ISRB-8",    "patch": {"tracker": "isrb", "entries": 8, "ctrbits": 3}},
      {"label": "unlimited", "patch": {}}
    ]}
  ],
  "report": {"kind": "grid", "rowheader": "shape"}
}`

// TestExpandWorkloadAxesGolden pins the workload-axis expansion: the
// workload axis is outermost, each cell carries its own canonicalized
// benchmark list (the non-canonical gen: spellings above must collapse
// to canonical form — depth=8 is the spill default and 0.50 prints as
// 0.5), requests dedup across workload combos (the shared crafty
// baseline appears once), and FirstUse maps each request to the cell
// that interned it in nondecreasing order.
func TestExpandWorkloadAxesGolden(t *testing.T) {
	s, err := ParseBytes([]byte(wgSpec))
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Expand(Overrides{})
	if err != nil {
		t.Fatal(err)
	}

	var got strings.Builder
	fmt.Fprintf(&got, "benches %v\n", m.Benches)
	for i, r := range m.Requests {
		fmt.Fprintf(&got, "req %s first=%d\n", describe(r), m.FirstUse[i])
	}
	for _, c := range m.Cells {
		fmt.Fprintf(&got, "cell %s benches=%v base=%v opt=%v\n",
			strings.Join(c.Labels, "/"), c.Benches, c.Base, c.Opt)
	}

	want := strings.TrimLeft(`
benches [crafty gen:spill?seed=1 gen:chase?mix=0.5]
req crafty w=100 m=1000 rob=192 smb=false tracker=unlimited/32/3 first=0
req gen:spill?seed=1 w=100 m=1000 rob=192 smb=false tracker=unlimited/32/3 first=0
req crafty w=100 m=1000 rob=192 smb=true tracker=isrb/8/3 first=0
req gen:spill?seed=1 w=100 m=1000 rob=192 smb=true tracker=isrb/8/3 first=0
req crafty w=100 m=1000 rob=192 smb=true tracker=unlimited/32/3 first=1
req gen:spill?seed=1 w=100 m=1000 rob=192 smb=true tracker=unlimited/32/3 first=1
req gen:chase?mix=0.5 w=100 m=1000 rob=192 smb=false tracker=unlimited/32/3 first=2
req gen:chase?mix=0.5 w=100 m=1000 rob=192 smb=true tracker=isrb/8/3 first=2
req gen:chase?mix=0.5 w=100 m=1000 rob=192 smb=true tracker=unlimited/32/3 first=3
cell spill8/ISRB-8 benches=[crafty gen:spill?seed=1] base=[0 1] opt=[2 3]
cell spill8/unlimited benches=[crafty gen:spill?seed=1] base=[0 1] opt=[4 5]
cell chase/ISRB-8 benches=[crafty gen:chase?mix=0.5] base=[0 6] opt=[2 7]
cell chase/unlimited benches=[crafty gen:chase?mix=0.5] base=[0 6] opt=[4 8]
`, "\n")
	if got.String() != want {
		t.Fatalf("workload-axis expansion drifted:\n--- got ---\n%s--- want ---\n%s", got.String(), want)
	}

	// FirstUse must be nondecreasing — the contiguity property fleet
	// sharding's exactly-once split depends on.
	for i := 1; i < len(m.FirstUse); i++ {
		if m.FirstUse[i] < m.FirstUse[i-1] {
			t.Fatalf("FirstUse not nondecreasing at %d: %v", i, m.FirstUse)
		}
	}

	// A -bench override cannot meaningfully apply to a workload-axis
	// spec; it must be rejected, not silently collapse the axis.
	if _, err := s.Expand(Overrides{Benchmarks: []string{"crafty"}}); err == nil {
		t.Fatal("bench override accepted for a workload-axis spec")
	}
}

// TestExpandRejectsUnsizedTracker: a cell whose composed patches select
// an entry-based tracker but never size it must fail loudly —
// core.NewTracker would otherwise silently coerce it to 32 entries /
// 3 bits, a configuration the spec never named.
func TestExpandRejectsUnsizedTracker(t *testing.T) {
	for _, patch := range []string{
		`{"tracker": "isrb", "ctrbits": 3}`, // no entries
		`{"tracker": "isrb", "entries": 8}`, // no counter bits
		`{"tracker": "rda"}`,                // no entries
	} {
		spec := strings.Replace(gridSpec,
			`{"tracker": "isrb", "entries": 8, "ctrbits": 3}`, patch, 1)
		s, err := ParseBytes([]byte(spec))
		if err != nil {
			t.Fatal(err)
		}
		_, err = s.Expand(Overrides{})
		if err == nil || !strings.Contains(err.Error(), "tracker") {
			t.Fatalf("unsized tracker patch %s expanded without error (err=%v)", patch, err)
		}
	}
}

// TestExpandDedupAcrossAxisPaths: two axis paths that reach the same
// configuration produce one request, not two.
func TestExpandDedupAcrossAxisPaths(t *testing.T) {
	spec := strings.Replace(gridSpec,
		`{"label": "ISRB-8",    "patch": {"tracker": "isrb", "entries": 8, "ctrbits": 3}}`,
		`{"label": "also-unl",  "patch": {}}`, 1)
	s, err := ParseBytes([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	m := s.MustExpand(Overrides{})
	// Per ROB row: 2 baseline + 2 opt (both columns identical) = 4
	// unique requests; 2 rows = 8.
	if len(m.Requests) != 8 {
		t.Fatalf("got %d requests, want 8 (identical columns must collapse)", len(m.Requests))
	}
	for _, c := range m.Cells {
		if len(c.Base) != 2 || len(c.Opt) != 2 {
			t.Fatalf("cell %v has wrong index widths", c)
		}
	}
}
