package scenario

import (
	"context"
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// reportSchema versions the RunReport JSON so downstream consumers of
// archived reports can detect layout changes.
const reportSchema = "sr1"

// CellResult is one grid point's aggregated outcome.
//
//repro:wire
type CellResult struct {
	// Labels are the axis value labels selecting this cell.
	Labels []string `json:"labels"`
	// Name joins the labels ("rob=192/entries=24" style) for flat
	// consumers; for single-axis scenarios it is just the value label.
	Name string `json:"name"`
	// Series is the per-benchmark speedup of the cell's optimized
	// configuration over the cell's own baseline, plus the gmean.
	Series sim.Series `json:"series"`
}

// RunReport is a scenario's stable machine-readable outcome.
//
//repro:wire
type RunReport struct {
	Schema   string       `json:"schema"`
	Scenario string       `json:"scenario"`
	Title    string       `json:"title"`
	Benches  []string     `json:"benchmarks"`
	Warmup   uint64       `json:"warmup"`
	Measure  uint64       `json:"measure"`
	Cells    []CellResult `json:"cells"`

	spec *Spec //repro:allow wirecheck -- runtime handle for rendering; deliberately not serialized
}

// Run executes the matrix through r — one batched Stream over the
// deduplicated request list, so the runner's worker pool, singleflight
// dedup and on-disk store see the whole grid at once — and aggregates
// every cell's speedup series. sink (may be nil) receives each
// request's completion event as workers finish, in completion order:
// progress lines in the commands hang off it. Canceling ctx aborts the
// in-flight simulations mid-cycle-loop and returns an error wrapping
// sim.ErrCanceled; already-completed requests stay in the runner's
// stores, so a fresh-context re-run resumes instead of restarting.
func (m *Matrix) Run(ctx context.Context, r *sim.Runner, sink func(sim.Event)) (*RunReport, error) {
	results, err := r.Stream(ctx, m.Requests, sink)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", m.Spec.Name, err)
	}
	rep := &RunReport{
		Schema:   reportSchema,
		Scenario: m.Spec.Name,
		Title:    m.Spec.Title,
		Benches:  m.Benches,
		Warmup:   m.Warmup,
		Measure:  m.Measure,
		spec:     m.Spec,
	}
	pick := func(idxs []int) []*sim.Result {
		out := make([]*sim.Result, len(idxs))
		for i, at := range idxs {
			out[i] = results[at]
		}
		return out
	}
	for _, c := range m.Cells {
		name := c.Labels[0]
		for _, l := range c.Labels[1:] {
			name += "/" + l
		}
		rep.Cells = append(rep.Cells, CellResult{
			Labels: c.Labels,
			Name:   name,
			Series: sim.MakeSeries(name, pick(c.Base), pick(c.Opt)),
		})
	}
	return rep, nil
}

// Series returns every cell's speedup series in cell order.
func (rep *RunReport) Series() []sim.Series {
	out := make([]sim.Series, len(rep.Cells))
	for i, c := range rep.Cells {
		out[i] = c.Series
	}
	return out
}

// Table renders the report in the spec's chosen shape.
func (rep *RunReport) Table() *stats.Table {
	if rep.spec != nil {
		switch rep.spec.Report.Kind {
		case ReportGrid:
			return rep.gridTable()
		case ReportCells:
			return rep.cellsTable()
		}
	}
	return rep.seriesTable()
}

// seriesTable renders the figures' shape: one row per benchmark, one
// column per cell, and a gmean row. With workload axes, cells can run
// different benchmark lists; a benchmark absent from a cell renders
// as "-".
func (rep *RunReport) seriesTable() *stats.Table {
	cols := []string{"benchmark"}
	for _, c := range rep.Cells {
		cols = append(cols, c.Name)
	}
	t := stats.NewTable(rep.Title, cols...)
	for _, b := range rep.Benches {
		row := []string{b}
		for _, c := range rep.Cells {
			if v, ok := c.Series.Per[b]; ok {
				row = append(row, stats.Pct(v))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	gm := []string{"gmean"}
	for _, c := range rep.Cells {
		gm = append(gm, stats.Pct(c.Series.GMean))
	}
	t.AddRow(gm...)
	return t
}

// cellsTable renders the flat shape for grids too big or too deep to
// lay out dimensionally: one row per cell, joined labels plus gmean.
func (rep *RunReport) cellsTable() *stats.Table {
	t := stats.NewTable(rep.Title, "cell", "speedup")
	for _, c := range rep.Cells {
		t.AddRow(c.Name, stats.Pct(c.Series.GMean))
	}
	return t
}

// gridTable renders the sweeps' shape: first axis down, second axis (or
// the single value column) across, gmean speedup per cell. Workload
// axes lay out exactly like config axes (they are outermost in cell
// order, so they come first in the combined view).
func (rep *RunReport) gridTable() *stats.Table {
	spec := rep.spec
	axes := spec.combinedAxes()
	rowHeader := spec.Report.RowHeader
	if rowHeader == "" {
		rowHeader = axes[0].name
	}
	rows := axes[0].labels
	if len(axes) == 1 {
		valueHeader := spec.Report.ValueHeader
		if valueHeader == "" {
			valueHeader = "speedup"
		}
		t := stats.NewTable(rep.Title, rowHeader, valueHeader)
		for i, label := range rows {
			t.AddRow(label, stats.Pct(rep.Cells[i].Series.GMean))
		}
		return t
	}
	cols := []string{rowHeader}
	cols = append(cols, axes[1].labels...)
	t := stats.NewTable(rep.Title, cols...)
	width := len(axes[1].labels)
	for i, label := range rows {
		row := []string{label}
		for j := 0; j < width; j++ {
			row = append(row, stats.Pct(rep.Cells[i*width+j].Series.GMean))
		}
		t.AddRow(row...)
	}
	return t
}
