package scenario

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/sim"
)

// TestCancelMidGridLeavesStoreConsistent is the cancellation acceptance
// check at scenario scale: cancel a 100+-cell grid a few completions in;
// the run must stop with a typed error, the sharded store must hold only
// complete entries, and a fresh-context re-run over the same store must
// be bit-identical to an uninterrupted control run.
func TestCancelMidGridLeavesStoreConsistent(t *testing.T) {
	dir := t.TempDir()
	s := bigGrid()
	m := s.MustExpand(Overrides{})
	if len(m.Cells) < 100 {
		t.Fatalf("grid has %d cells, want >= 100", len(m.Cells))
	}

	// Cancel from inside the progress sink after a handful of cells
	// complete — the deterministic stand-in for ^C mid-sweep.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	completed := 0
	r1 := sim.New(sim.WithCacheDir(dir))
	_, err := m.Run(ctx, r1, func(ev sim.Event) {
		mu.Lock()
		defer mu.Unlock()
		if ev.Err == nil {
			completed++
		}
		if completed == 5 {
			cancel()
		}
	})
	if !errors.Is(err, sim.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want sim.ErrCanceled wrapping context.Canceled", err)
	}
	if completed >= len(m.Requests) {
		t.Fatalf("all %d requests completed before the cancel took effect", completed)
	}

	// Every store entry must be a complete, loadable result — no
	// partials from the aborted simulations.
	store := sim.NewStore(dir)
	if n := store.Len(); n == 0 {
		t.Fatal("no completed cells reached the store before the cancel")
	}
	for _, req := range m.Requests {
		if res, ok := store.Load(context.Background(), sim.Key(req)); ok && (res == nil || res.S.Cycles == 0) {
			t.Fatalf("store holds a partial entry for %s", req.Bench)
		}
	}

	// Resume with a fresh context on the same store: the completed
	// prefix is served from disk, the rest simulates, and the report is
	// bit-identical to an uninterrupted control run.
	r2 := sim.New(sim.WithCacheDir(dir))
	resumed, err := s.MustExpand(Overrides{}).Run(context.Background(), r2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c := r2.Counters(); c.DiskHits == 0 {
		t.Fatalf("resume did not reuse the canceled run's completed cells: %+v", c)
	}

	control, err := s.MustExpand(Overrides{}).Run(context.Background(), sim.New(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Cells) != len(control.Cells) {
		t.Fatalf("resumed run has %d cells, control %d", len(resumed.Cells), len(control.Cells))
	}
	for i := range control.Cells {
		rc, cc := resumed.Cells[i], control.Cells[i]
		if rc.Series.GMean != cc.Series.GMean {
			t.Fatalf("cell %s gmean differs after resume: %v vs %v", cc.Name, rc.Series.GMean, cc.Series.GMean)
		}
		for b, v := range cc.Series.Per {
			if rc.Series.Per[b] != v {
				t.Fatalf("cell %s benchmark %s differs after resume: %v vs %v", cc.Name, b, rc.Series.Per[b], v)
			}
		}
	}
}
