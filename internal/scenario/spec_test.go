package scenario

import (
	"strings"
	"testing"
)

// minimal returns a valid single-axis spec as a mutable JSON template.
const minimal = `{
  "name": "t",
  "title": "T",
  "benchmarks": ["crafty"],
  "warmup": 100,
  "measure": 1000,
  "opt": {"smb": true},
  "axes": [{"name": "a", "values": [{"label": "x", "patch": {"entries": 8}}]}],
  "report": {"kind": "grid", "rowheader": "a"}
}`

func TestParseMinimal(t *testing.T) {
	s, err := ParseBytes([]byte(minimal))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "t" || len(s.Axes) != 1 || s.Axes[0].Values[0].Label != "x" {
		t.Fatalf("parsed spec wrong: %+v", s)
	}
}

// TestParseRejects: every malformed or invalid spec must fail with an
// error naming the problem, never sweep a silently-wrong grid.
func TestParseRejects(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the error
	}{
		{"unknown top-level field",
			strings.Replace(minimal, `"title"`, `"titel"`, 1), "titel"},
		{"unknown patch knob",
			strings.Replace(minimal, `"entries": 8`, `"entriess": 8`, 1), "entriess"},
		{"unknown tracker kind",
			strings.Replace(minimal, `{"entries": 8}`, `{"tracker": "lru"}`, 1), "tracker"},
		{"unknown predictor",
			strings.Replace(minimal, `{"entries": 8}`, `{"pred": "oracle"}`, 1), "predictor"},
		{"negative size",
			strings.Replace(minimal, `{"entries": 8}`, `{"rob": -1}`, 1), "negative"},
		{"unknown workload",
			strings.Replace(minimal, `["crafty"]`, `["craftee"]`, 1), "craftee"},
		{"unknown group",
			strings.Replace(minimal, `["crafty"]`, `["specfp2000"]`, 1), "not a workload and not a group"},
		{"no benchmarks",
			strings.Replace(minimal, `["crafty"]`, `[]`, 1), "no benchmarks"},
		{"no axes (empty grid)",
			strings.Replace(minimal, `[{"name": "a", "values": [{"label": "x", "patch": {"entries": 8}}]}]`, `[]`, 1),
			"empty"},
		{"axis with no values (empty grid)",
			strings.Replace(minimal, `[{"label": "x", "patch": {"entries": 8}}]`, `[]`, 1), "empty"},
		{"value without label",
			strings.Replace(minimal, `"label": "x"`, `"label": ""`, 1), "no label"},
		{"missing name",
			strings.Replace(minimal, `"name": "t"`, `"name": ""`, 1), "name"},
		{"zero measure",
			strings.Replace(minimal, `"measure": 1000`, `"measure": 0`, 1), "measure"},
		{"bad report kind",
			strings.Replace(minimal, `"kind": "grid"`, `"kind": "heatmap"`, 1), "report kind"},
		{"series report over two axes",
			strings.Replace(strings.Replace(minimal, `"kind": "grid"`, `"kind": "series"`, 1),
				`"axes": [`, `"axes": [{"name": "b", "values": [{"label": "y", "patch": {}}]},`, 1),
			"series report"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseBytes([]byte(tc.json))
			if err == nil {
				t.Fatalf("spec accepted:\n%s", tc.json)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestResolveBenchmarksGroups: group names expand in catalog order and
// duplicates collapse.
func TestResolveBenchmarksGroups(t *testing.T) {
	s, err := ParseBytes([]byte(strings.Replace(minimal,
		`["crafty"]`, `["crafty", "branch-hostile", "vpr"]`, 1)))
	if err != nil {
		t.Fatal(err)
	}
	names, err := s.ResolveBenchmarks()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"crafty", "vpr", "mcf", "parser", "twolf", "gobmk", "sjeng"}
	if len(names) != len(want) {
		t.Fatalf("resolved %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("resolved %v, want %v", names, want)
		}
	}
}

// TestBuiltinSpecsAllValid: every committed spec parses, validates, and
// is filed under its own name.
func TestBuiltinSpecsAllValid(t *testing.T) {
	names := BuiltinNames()
	if len(names) < 13 {
		t.Fatalf("only %d builtin scenarios: %v", len(names), names)
	}
	for _, n := range names {
		s, err := Builtin(n)
		if err != nil {
			t.Errorf("builtin %q: %v", n, err)
			continue
		}
		if s.Name != n {
			t.Errorf("builtin file %q holds scenario named %q", n, s.Name)
		}
		if s.Description == "" {
			t.Errorf("builtin %q has no description", n)
		}
		if _, err := s.Expand(Overrides{}); err != nil {
			t.Errorf("builtin %q does not expand: %v", n, err)
		}
	}
	if _, err := Builtin("no-such-scenario"); err == nil {
		t.Fatal("unknown builtin accepted")
	}
}

// TestFleetGridShape pins the committed fleet-scale grid: 17 workload
// shapes × 5 schemes × 5 ROB × 5 tracker sizes × 5 counter widths =
// 10625 cells, deduplicating to 10710 unique requests (85 shared
// baselines, one per shape × ROB, plus one optimized point per cell).
func TestFleetGridShape(t *testing.T) {
	m := MustBuiltin("fleet-grid").MustExpand(Overrides{})
	if len(m.Cells) != 10625 {
		t.Fatalf("fleet-grid has %d cells, want 10625", len(m.Cells))
	}
	if len(m.Requests) != 10710 {
		t.Fatalf("fleet-grid dedups to %d requests, want 10710", len(m.Requests))
	}
	if len(m.Benches) != 17 {
		t.Fatalf("fleet-grid covers %d shapes, want 17", len(m.Benches))
	}
	if m.Spec.Report.Kind != ReportCells {
		t.Fatalf("fleet-grid must use the cells report (grids cannot lay out 4+ axes)")
	}
}
