package scenario

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Overrides carries the command-line knobs that may override a committed
// spec without editing it. Nil/empty fields leave the spec's own choice
// in place; a pointer to zero is an explicit zero (e.g. no warmup).
type Overrides struct {
	Warmup     *uint64
	Measure    *uint64
	Benchmarks []string // names or group names
}

// CommandOverrides collects the standard -warmup/-measure/-bench
// override flags every scenario-driving command exposes. flag.Visit
// distinguishes flags the user actually set from defaults, so an
// explicit `-warmup 0` overrides while an untouched flag leaves the
// spec's choice in place. Call after flag.Parse.
func CommandOverrides(warmup, measure *uint64, bench string) Overrides {
	var ov Overrides
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "warmup":
			ov.Warmup = warmup
		case "measure":
			ov.Measure = measure
		}
	})
	if bench != "" {
		ov.Benchmarks = []string{bench}
	}
	return ov
}

// Cell is one grid point: the combination of one value per axis, with
// the fully-materialized baseline and optimized configurations.
type Cell struct {
	// Labels holds the selected value label per axis — workload axes
	// first, then config axes, matching the spec's combined axis order.
	Labels []string
	// Benches is the cell's canonical benchmark list: the spec's
	// top-level list plus the cell's workload-axis values, groups
	// expanded and names canonicalized. Cells in the same workload combo
	// share the slice; callers must not mutate it.
	Benches []string
	// Base and Opt index into Matrix.Requests, one entry per benchmark
	// (aligned with Benches): the cell's baseline and optimized runs.
	// Several cells typically share baseline request indices — that is
	// the deduplication.
	Base []int
	Opt  []int
	// BaseConfig and OptConfig are the cell's materialized machine
	// configurations, for consumers that need more than the results
	// (e.g. cmd/storagecost instantiating each cell's tracker to price
	// its storage).
	BaseConfig core.Config
	OptConfig  core.Config
}

// Matrix is a fully-expanded scenario: the deduplicated request list
// plus the cells mapping into it. Cells are in row-major combined-axis
// order: workload axes outermost, then config axes, the last config
// axis varying fastest.
type Matrix struct {
	Spec *Spec
	// Benches is the union of every cell's benchmark list, in first-use
	// order. For specs without workload axes it is exactly each cell's
	// list.
	Benches []string
	Warmup  uint64
	Measure uint64
	Cells   []Cell
	// Requests is the deduplicated simulation list in first-use order;
	// running a scenario is exactly one Stream over it.
	Requests []sim.Request
	// FirstUse maps each Requests index to the cell that interned it.
	// Because cells intern their requests in cell order, a contiguous
	// cell range [lo, hi) owns exactly the requests with
	// lo <= FirstUse[i] < hi — the property fleet sharding leans on to
	// run every request exactly once across hosts leasing disjoint cell
	// ranges.
	FirstUse []int
}

// Expand materializes the spec's grid: the cross-product of all axis
// values × the benchmark list, as one deduplicated request matrix.
// Requests shared between cells — every cell's baseline against an
// unmodified machine, identical configs reached along different axis
// paths — appear exactly once.
func (s *Spec) Expand(ov Overrides) (*Matrix, error) {
	m := &Matrix{Spec: s, Warmup: s.Warmup, Measure: s.Measure}
	if ov.Warmup != nil {
		m.Warmup = *ov.Warmup
	}
	if ov.Measure != nil {
		m.Measure = *ov.Measure
	}
	// Overrides bypass Validate, so re-check the invariant it enforces:
	// a zero measured region yields NaN speedups, not results.
	if m.Measure == 0 {
		return nil, fmt.Errorf("scenario %q: measure override must be positive", s.Name)
	}
	sel := *s
	if len(ov.Benchmarks) != 0 {
		if len(s.WorkloadAxes) != 0 {
			// A -bench override would make every workload-axis value
			// select the same list, collapsing the axis into duplicate
			// cells; reject instead of silently sweeping nothing.
			return nil, fmt.Errorf("scenario %q: a benchmark override cannot apply to a spec with workload axes", s.Name)
		}
		sel.Benchmarks = ov.Benchmarks
	}

	index := make(map[string]int)      // sim.Key -> Requests index
	benchSeen := make(map[string]bool) // union membership for m.Benches
	intern := func(benches []string, cfg core.Config) []int {
		idxs := make([]int, len(benches))
		for i, b := range benches {
			req := sim.Request{Bench: b, Config: cfg, Warmup: m.Warmup, Measure: m.Measure}
			key := sim.Key(req)
			at, ok := index[key]
			if !ok {
				at = len(m.Requests)
				index[key] = at
				m.Requests = append(m.Requests, req)
				m.FirstUse = append(m.FirstUse, len(m.Cells))
			}
			idxs[i] = at
		}
		return idxs
	}

	// Row-major walk: workload axes outermost, config axes within.
	wCombo := make([]int, len(s.WorkloadAxes))
	for {
		// This workload combo's canonical benchmark list: the top-level
		// list plus each selected axis value's list.
		names := append([]string{}, sel.Benchmarks...)
		wLabels := make([]string, len(s.WorkloadAxes))
		for ai, vi := range wCombo {
			v := s.WorkloadAxes[ai].Values[vi]
			wLabels[ai] = v.Label
			names = append(names, v.Benchmarks...)
		}
		benches, err := resolveBenchList(names)
		if err != nil {
			return nil, fmt.Errorf("scenario %q cell %v: %w", s.Name, wLabels, err)
		}
		for _, b := range benches {
			if !benchSeen[b] {
				benchSeen[b] = true
				m.Benches = append(m.Benches, b)
			}
		}

		combo := make([]int, len(s.Axes))
		for {
			cell := Cell{
				Labels:  append(append([]string{}, wLabels...), make([]string, len(s.Axes))...),
				Benches: benches,
			}
			baseCfg := core.DefaultConfig()
			s.Base.Apply(&baseCfg)
			for ai, vi := range combo {
				cell.Labels[len(wLabels)+ai] = s.Axes[ai].Values[vi].Label
				if s.Axes[ai].Shared {
					s.Axes[ai].Values[vi].Patch.Apply(&baseCfg)
				}
			}
			optCfg := baseCfg
			s.Opt.Apply(&optCfg)
			for ai, vi := range combo {
				if !s.Axes[ai].Shared {
					s.Axes[ai].Values[vi].Patch.Apply(&optCfg)
				}
			}
			if err := checkTrackerSized(&baseCfg); err != nil {
				return nil, fmt.Errorf("scenario %q cell %v: baseline config: %w", s.Name, cell.Labels, err)
			}
			if err := checkTrackerSized(&optCfg); err != nil {
				return nil, fmt.Errorf("scenario %q cell %v: optimized config: %w", s.Name, cell.Labels, err)
			}
			cell.Base = intern(benches, baseCfg)
			cell.Opt = intern(benches, optCfg)
			cell.BaseConfig = baseCfg
			cell.OptConfig = optCfg
			m.Cells = append(m.Cells, cell)

			// Advance the config odometer, last axis fastest.
			ai := len(combo) - 1
			for ; ai >= 0; ai-- {
				combo[ai]++
				if combo[ai] < len(s.Axes[ai].Values) {
					break
				}
				combo[ai] = 0
			}
			if ai < 0 {
				break
			}
		}

		// Advance the workload odometer.
		ai := len(wCombo) - 1
		for ; ai >= 0; ai-- {
			wCombo[ai]++
			if wCombo[ai] < len(s.WorkloadAxes[ai].Values) {
				break
			}
			wCombo[ai] = 0
		}
		if ai < 0 {
			break
		}
	}
	return m, nil
}

// checkTrackerSized rejects a materialized cell configuration whose
// entry-based tracker was left unsized. core.NewTracker would silently
// coerce zero entries/counter bits to 32/3, so a cell that composed its
// patches wrongly (e.g. a tracker axis without an entries axis) would
// sweep a configuration the spec never named — the engine's contract is
// to fail loudly instead.
func checkTrackerSized(cfg *core.Config) error {
	t := cfg.Tracker
	switch t.Kind {
	case core.TrackerISRB, core.TrackerMIT, core.TrackerRDA:
		if t.Entries == 0 {
			return fmt.Errorf("tracker %q has no entries (0 does not mean unlimited; patch \"entries\" explicitly)", t.Kind)
		}
	}
	if t.Kind == core.TrackerISRB && t.CounterBits == 0 {
		return fmt.Errorf("isrb tracker has no counter width (patch \"ctrbits\" explicitly)")
	}
	return nil
}

// MustExpand is Expand for harness code where a spec error is a bug.
func (s *Spec) MustExpand(ov Overrides) *Matrix {
	m, err := s.Expand(ov)
	if err != nil {
		panic(err)
	}
	return m
}
