package scenario

import (
	"fmt"

	"repro/internal/core"
)

// Patch is a declarative, partial machine-configuration mutation: every
// field is optional, and only the fields present in the spec's JSON are
// applied. Patches compose — a cell's configuration is the stack
// default-config → spec base → shared axis values → spec opt →
// non-shared axis values, each layer applied in order.
//
// The field set deliberately mirrors the knobs the paper's evaluation
// turns (plus the window/width knobs the extension scenarios sweep); it
// is the schema of the `.scenario` files, so additions must keep old
// specs parsing.
type Patch struct {
	// Optimization toggles.
	ME              *bool `json:"me,omitempty"`        // Move Elimination (§2)
	SMB             *bool `json:"smb,omitempty"`       // Speculative Memory Bypassing (§3)
	LoadLoad        *bool `json:"loadload,omitempty"`  // SMB load-load pairs (§3)
	BypassCommitted *bool `json:"committed,omitempty"` // lazy reclaim (§3.3)

	// Distance predictor and DDT (§3.1).
	Predictor    *string `json:"pred,omitempty"`       // "tage" | "nosq"
	TAGEGeometry *[]int  `json:"tagegeom,omitempty"`   // history lengths ([] = PC-only)
	DDTEntries   *int    `json:"ddt,omitempty"`        // 0 = unlimited
	DDTTagBits   *int    `json:"ddttagbits,omitempty"` // partial tag width

	// Reference-counting scheme (§4). Setting "tracker" resets the whole
	// TrackerConfig to the named kind with zero entries/counter bits, so
	// a patch {"tracker":"isrb","entries":24,"ctrbits":3} builds exactly
	// {ISRB,24,3} regardless of what earlier layers chose.
	Tracker     *string `json:"tracker,omitempty"` // isrb|unlimited|counters|mit|rda
	Entries     *int    `json:"entries,omitempty"`
	CounterBits *int    `json:"ctrbits,omitempty"`

	// Window sizes and widths.
	ROBSize     *int `json:"rob,omitempty"`
	IQSize      *int `json:"iq,omitempty"`
	LQSize      *int `json:"lq,omitempty"`
	SQSize      *int `json:"sq,omitempty"`
	PhysRegs    *int `json:"physregs,omitempty"` // per class
	Checkpoints *int `json:"checkpoints,omitempty"`
	FetchWidth  *int `json:"fetchwidth,omitempty"`
	RenameWidth *int `json:"renamewidth,omitempty"`
	IssueWidth  *int `json:"issuewidth,omitempty"`
	CommitWidth *int `json:"commitwidth,omitempty"`

	// Memory timing.
	STLFLatency *uint64 `json:"stlf,omitempty"` // store-to-load forwarding cycles

	// Reclaim plumbing (§4.3.4, §3.3).
	ReclaimFlagFilter   *bool `json:"reclaimflag,omitempty"`
	LazyReclaimLowWater *int  `json:"lazylowwater,omitempty"`
}

// trackerKinds maps the spec-file tracker names onto core kinds.
var trackerKinds = map[string]core.TrackerKind{
	"isrb":      core.TrackerISRB,
	"unlimited": core.TrackerUnlimited,
	"counters":  core.TrackerCounters,
	"mit":       core.TrackerMIT,
	"rda":       core.TrackerRDA,
}

// Validate rejects field values the simulator would refuse or silently
// misread: unknown tracker/predictor names and negative sizes.
func (p *Patch) Validate() error {
	if p.Tracker != nil {
		if _, ok := trackerKinds[*p.Tracker]; !ok {
			return fmt.Errorf("unknown tracker kind %q (known: isrb unlimited counters mit rda)", *p.Tracker)
		}
	}
	if p.Predictor != nil && *p.Predictor != "tage" && *p.Predictor != "nosq" {
		return fmt.Errorf("unknown distance predictor %q (known: tage nosq)", *p.Predictor)
	}
	if p.CounterBits != nil && *p.CounterBits > 8 {
		return fmt.Errorf("ctrbits %d out of range (ISRB counters are 1..8 bits wide)", *p.CounterBits)
	}
	for _, f := range []struct {
		name string
		v    *int
	}{
		{"entries", p.Entries}, {"ctrbits", p.CounterBits}, {"ddt", p.DDTEntries},
		{"ddttagbits", p.DDTTagBits}, {"rob", p.ROBSize}, {"iq", p.IQSize},
		{"lq", p.LQSize}, {"sq", p.SQSize}, {"physregs", p.PhysRegs},
		{"checkpoints", p.Checkpoints}, {"fetchwidth", p.FetchWidth},
		{"renamewidth", p.RenameWidth}, {"issuewidth", p.IssueWidth},
		{"commitwidth", p.CommitWidth}, {"lazylowwater", p.LazyReclaimLowWater},
	} {
		if f.v != nil && *f.v < 0 {
			return fmt.Errorf("negative %s: %d", f.name, *f.v)
		}
	}
	return nil
}

// Apply mutates cfg in place with every field the patch carries.
func (p *Patch) Apply(cfg *core.Config) {
	if p.ME != nil {
		cfg.ME.Enabled = *p.ME
	}
	if p.SMB != nil {
		cfg.SMB.Enabled = *p.SMB
	}
	if p.LoadLoad != nil {
		cfg.SMB.LoadLoad = *p.LoadLoad
	}
	if p.BypassCommitted != nil {
		cfg.SMB.BypassCommitted = *p.BypassCommitted
	}
	if p.Predictor != nil {
		if *p.Predictor == "nosq" {
			cfg.SMB.Predictor = core.DistanceNoSQ
		} else {
			cfg.SMB.Predictor = core.DistanceTAGE
		}
	}
	if p.TAGEGeometry != nil {
		cfg.SMB.TAGEGeometry = append([]int{}, (*p.TAGEGeometry)...)
	}
	if p.DDTEntries != nil {
		cfg.SMB.DDT.Entries = *p.DDTEntries
	}
	if p.DDTTagBits != nil {
		cfg.SMB.DDT.TagBits = *p.DDTTagBits
	}
	if p.Tracker != nil {
		cfg.Tracker = core.TrackerConfig{Kind: trackerKinds[*p.Tracker]}
	}
	if p.Entries != nil {
		cfg.Tracker.Entries = *p.Entries
	}
	if p.CounterBits != nil {
		cfg.Tracker.CounterBits = *p.CounterBits
	}
	if p.ROBSize != nil {
		cfg.ROBSize = *p.ROBSize
	}
	if p.IQSize != nil {
		cfg.IQSize = *p.IQSize
	}
	if p.LQSize != nil {
		cfg.LQSize = *p.LQSize
	}
	if p.SQSize != nil {
		cfg.SQSize = *p.SQSize
	}
	if p.PhysRegs != nil {
		cfg.PhysRegsPerClass = *p.PhysRegs
	}
	if p.Checkpoints != nil {
		cfg.MaxCheckpoints = *p.Checkpoints
	}
	if p.FetchWidth != nil {
		cfg.FetchWidth = *p.FetchWidth
	}
	if p.RenameWidth != nil {
		cfg.RenameWidth = *p.RenameWidth
	}
	if p.IssueWidth != nil {
		cfg.IssueWidth = *p.IssueWidth
	}
	if p.CommitWidth != nil {
		cfg.CommitWidth = *p.CommitWidth
	}
	if p.STLFLatency != nil {
		cfg.STLFLatency = *p.STLFLatency
	}
	if p.ReclaimFlagFilter != nil {
		cfg.ReclaimFlagFilter = *p.ReclaimFlagFilter
	}
	if p.LazyReclaimLowWater != nil {
		cfg.LazyReclaimLowWater = *p.LazyReclaimLowWater
	}
}
