package sim

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestWithExecutorReplacesExecution: a custom executor sees every
// validated request exactly once (dedup and the stores still sit above
// it) and its results flow through events and stores unchanged.
func TestWithExecutorReplacesExecution(t *testing.T) {
	calls := 0
	exec := func(ctx context.Context, req Request) (*Result, error) {
		calls++
		return Simulate(ctx, req)
	}
	dir := t.TempDir()
	r := New(WithExecutor(exec), WithCacheDir(dir))

	req := quickReq("gzip")
	var ev Event
	res, err := r.Stream(bg, []Request{req, req}, func(e Event) {
		if e.Source == SourceSimulated {
			ev = e
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("executor ran %d times for two identical requests, want 1 (dedup sits above the backend)", calls)
	}
	if res[0] != res[1] || ev.Res != res[0] {
		t.Fatal("deduplicated results must be the same shared value")
	}

	// The result reached the on-disk store: a fresh runner with the
	// plain executor serves it without calling a backend at all.
	failing := func(ctx context.Context, req Request) (*Result, error) {
		return nil, errors.New("must not execute: the store has this result")
	}
	r2 := New(WithExecutor(failing), WithCacheDir(dir))
	if _, err := r2.Run(bg, req); err != nil {
		t.Fatal(err)
	}
	if c := r2.Counters(); c.DiskHits != 1 {
		t.Fatalf("counters %+v, want one disk hit", c)
	}

	// An invalid request is rejected before the executor sees it.
	bad := quickReq("gzip")
	bad.Measure = 0
	if _, err := r2.Run(bg, bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("got %v, want ErrBadConfig (and no executor call)", err)
	}
}

// TestWithExecutorErrorsAreTyped: executor errors surface through the
// event/error plumbing untouched, and failed calls are not cached.
func TestWithExecutorErrorsAreTyped(t *testing.T) {
	boom := fmt.Errorf("backend exploded: %w", ErrCanceled)
	fails := 0
	r := New(WithExecutor(func(ctx context.Context, req Request) (*Result, error) {
		fails++
		if fails == 1 {
			return nil, boom
		}
		return Simulate(ctx, req)
	}))
	req := quickReq("crafty")
	if _, err := r.Run(bg, req); !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want the executor's typed error", err)
	}
	// The failure did not poison the singleflight slot.
	if _, err := r.Run(bg, req); err != nil {
		t.Fatalf("retry after a failed executor call: %v", err)
	}
	if fails != 2 {
		t.Fatalf("executor ran %d times, want 2", fails)
	}
}
