package sim

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// bg is the test suite's background context for runs that exercise
// behaviors other than cancellation.
var bg = context.Background()

func quickReq(bench string) Request {
	return Request{Bench: bench, Config: core.DefaultConfig(), Warmup: 1_000, Measure: 8_000}
}

// TestDedupConcurrent: N concurrent callers asking for the same request
// must trigger exactly one simulation.
func TestDedupConcurrent(t *testing.T) {
	r := New()
	const callers = 16
	results := make([]*Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = r.MustRun(bg, quickReq("crafty"))
		}(i)
	}
	wg.Wait()
	c := r.Counters()
	if c.Simulated != 1 {
		t.Fatalf("simulated %d times for %d identical concurrent requests, want 1", c.Simulated, callers)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different result pointer", i)
		}
	}
}

// TestCacheHitMiss: distinct keys miss, repeated keys hit; the key must
// cover benchmark, configuration and run lengths.
func TestCacheHitMiss(t *testing.T) {
	r := New()
	a := r.MustRun(bg, quickReq("crafty"))
	if c := r.Counters(); c.Simulated != 1 || c.MemHits != 0 {
		t.Fatalf("first run: %+v", c)
	}
	if b := r.MustRun(bg, quickReq("crafty")); b != a {
		t.Fatal("repeat request did not hit the in-memory store")
	}
	if c := r.Counters(); c.Simulated != 1 || c.MemHits != 1 {
		t.Fatalf("after repeat: %+v", c)
	}

	// Different benchmark, different config, different lengths: all miss.
	r.MustRun(bg, quickReq("gcc"))
	me := quickReq("crafty")
	me.Config.ME.Enabled = true
	r.MustRun(bg, me)
	long := quickReq("crafty")
	long.Measure += 1
	r.MustRun(bg, long)
	if c := r.Counters(); c.Simulated != 4 {
		t.Fatalf("distinct requests deduplicated wrongly: %+v", c)
	}
}

func TestKeyDistinguishesRequests(t *testing.T) {
	base := quickReq("crafty")
	me := base
	me.Config.ME.Enabled = true
	other := base
	other.Bench = "gcc"
	longer := base
	longer.Warmup++
	keys := map[string]bool{Key(base): true, Key(me): true, Key(other): true, Key(longer): true}
	if len(keys) != 4 {
		t.Fatalf("key collisions: %v", keys)
	}
	if Key(base) != Key(quickReq("crafty")) {
		t.Fatal("key not deterministic")
	}
}

// TestDiskRoundTrip: a second runner pointed at the same cache dir loads
// the result instead of simulating.
func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r1 := New(WithCacheDir(dir))
	want := r1.MustRun(bg, quickReq("crafty"))
	files, err := filepath.Glob(filepath.Join(dir, "*", "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cache dir files = %v, err = %v", files, err)
	}

	r2 := New(WithCacheDir(dir))
	got := r2.MustRun(bg, quickReq("crafty"))
	if c := r2.Counters(); c.Simulated != 0 || c.DiskHits != 1 {
		t.Fatalf("second runner did not load from disk: %+v", c)
	}
	if *got != *want {
		t.Fatalf("disk round-trip changed the result:\n got %+v\nwant %+v", got, want)
	}
}

// TestDiskCacheIgnoresCorruptFile: a truncated cache entry falls back to
// simulation instead of failing or returning garbage.
func TestDiskCacheIgnoresCorruptFile(t *testing.T) {
	dir := t.TempDir()
	r1 := New(WithCacheDir(dir))
	r1.MustRun(bg, quickReq("crafty"))
	files, _ := filepath.Glob(filepath.Join(dir, "*", "*.json"))
	if err := os.WriteFile(files[0], []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	r2 := New(WithCacheDir(dir))
	r2.MustRun(bg, quickReq("crafty"))
	if c := r2.Counters(); c.Simulated != 1 || c.DiskHits != 0 {
		t.Fatalf("corrupt cache entry not re-simulated: %+v", c)
	}
}

// TestDeterminism: two independent runners produce bit-identical
// statistics for the same request — the property that makes caching and
// deduplication sound at all.
func TestDeterminism(t *testing.T) {
	req := quickReq("gobmk")
	req.Config.ME.Enabled = true
	req.Config.SMB.Enabled = true
	a := New().MustRun(bg, req)
	b := New().MustRun(bg, req)
	if a.S != b.S || a.Tracker != b.Tracker || a.Mem != b.Mem || a.IPC != b.IPC {
		t.Fatalf("repeated runs differ:\n a %+v\n b %+v", a, b)
	}
}

// TestRunAllOrderAndErrors: results come back in request order, and an
// unknown benchmark surfaces as an error without poisoning the store.
func TestRunAllOrderAndErrors(t *testing.T) {
	r := New()
	reqs := []Request{quickReq("crafty"), quickReq("gcc"), quickReq("gobmk")}
	results := r.MustRunAll(bg, reqs)
	for i, res := range results {
		if res.Bench != reqs[i].Bench {
			t.Fatalf("result %d is %s, want %s", i, res.Bench, reqs[i].Bench)
		}
	}

	if _, err := r.Run(bg, quickReq("no-such-benchmark")); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := r.Run(bg, quickReq("no-such-benchmark")); err == nil {
		t.Fatal("unknown benchmark accepted on retry")
	}
	if _, err := r.RunAll(bg, []Request{quickReq("crafty"), quickReq("nope")}); err == nil ||
		!strings.Contains(err.Error(), "nope") {
		t.Fatalf("RunAll error = %v, want unknown-benchmark error naming nope", err)
	}
}

// TestWorkerBound: WithWorkers(1) still completes a fan-out wider than
// the pool.
func TestWorkerBound(t *testing.T) {
	r := New(WithWorkers(1))
	reqs := []Request{quickReq("crafty"), quickReq("gcc"), quickReq("gobmk"), quickReq("hmmer")}
	results := r.MustRunAll(bg, reqs)
	if len(results) != len(reqs) {
		t.Fatalf("got %d results", len(results))
	}
	if c := r.Counters(); c.Simulated != uint64(len(reqs)) {
		t.Fatalf("simulated %d, want %d", c.Simulated, len(reqs))
	}
}
