package sim

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/workloads"
)

// TestBenchReportRoundTrip: a (tiny) bench run must produce a coherent
// report that survives the JSON round-trip and computes a baseline
// speedup.
func TestBenchReportRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	points := []BenchPoint{{Bench: "gzip", Tracker: "isrb", Warmup: 1000, Measure: 5000}}
	rep, err := RunBench(context.Background(), points, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 1 || rep.Points[0].Cycles == 0 || rep.Points[0].CyclesPerSec <= 0 {
		t.Fatalf("malformed report: %+v", rep)
	}
	if r := rep.GMeanCPS / rep.Points[0].CyclesPerSec; r < 1-1e-9 || r > 1+1e-9 {
		t.Fatalf("gmean %f != single point %f", rep.GMeanCPS, rep.Points[0].CyclesPerSec)
	}

	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.GMeanCPS != rep.GMeanCPS || back.Schema != BenchSchema || len(back.Points) != 1 {
		t.Fatalf("round-trip mismatch: %+v vs %+v", back, rep)
	}

	rep2 := *rep
	base := *rep
	base.GMeanCPS = rep.GMeanCPS / 2
	rep2.AttachBaseline(&base, "half")
	if rep2.SpeedupVsBaseline < 1.99 || rep2.SpeedupVsBaseline > 2.01 {
		t.Fatalf("speedup vs halved baseline = %f, want 2.0", rep2.SpeedupVsBaseline)
	}
}

// TestBenchPointsPinned: the pinned sets must stay stable — cross-PR
// comparability is the whole point — and every named benchmark must
// exist in the catalog.
func TestBenchPointsPinned(t *testing.T) {
	quick := BenchPoints(true)
	full := BenchPoints(false)
	if len(quick) != 3 {
		t.Fatalf("quick set has %d points, want 3", len(quick))
	}
	if len(full) != 16 {
		t.Fatalf("full set has %d points, want 16", len(full))
	}
	for _, pt := range append(quick, full...) {
		if pt.Warmup == 0 || pt.Measure == 0 {
			t.Fatalf("point %+v has no pinned run lengths", pt)
		}
		if _, err := workloads.ByName(pt.Bench); err != nil {
			t.Fatalf("pinned point names a benchmark outside the catalog: %v", err)
		}
	}
}
