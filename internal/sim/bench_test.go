package sim

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/workloads"
)

// TestBenchReportRoundTrip: a (tiny) bench run must produce a coherent
// report that survives the JSON round-trip and computes a baseline
// speedup.
func TestBenchReportRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation")
	}
	points := []BenchPoint{{Bench: "gzip", Tracker: "isrb", Warmup: 1000, Measure: 5000}}
	rep, err := RunBench(context.Background(), points, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 1 || rep.Points[0].Cycles == 0 || rep.Points[0].CyclesPerSec <= 0 {
		t.Fatalf("malformed report: %+v", rep)
	}
	if r := rep.GMeanCPS / rep.Points[0].CyclesPerSec; r < 1-1e-9 || r > 1+1e-9 {
		t.Fatalf("gmean %f != single point %f", rep.GMeanCPS, rep.Points[0].CyclesPerSec)
	}

	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.GMeanCPS != rep.GMeanCPS || back.Schema != BenchSchema || len(back.Points) != 1 {
		t.Fatalf("round-trip mismatch: %+v vs %+v", back, rep)
	}

	rep2 := *rep
	base := *rep
	base.GMeanCPS = rep.GMeanCPS / 2
	rep2.AttachBaseline(&base, "half")
	if rep2.SpeedupVsBaseline < 1.99 || rep2.SpeedupVsBaseline > 2.01 {
		t.Fatalf("speedup vs halved baseline = %f, want 2.0", rep2.SpeedupVsBaseline)
	}
}

// TestBenchPointsPinned: the pinned sets must stay stable — cross-PR
// comparability is the whole point — and every named benchmark must
// exist in the catalog. The quick set must additionally be an exact
// subset of the full set, or the CI gate's matched-point comparison
// against a full-set baseline stops comparing like with like.
func TestBenchPointsPinned(t *testing.T) {
	quick := BenchPoints(true)
	full := BenchPoints(false)
	if len(quick) != 3 {
		t.Fatalf("quick set has %d points, want 3", len(quick))
	}
	if len(full) != 16 {
		t.Fatalf("full set has %d points, want 16", len(full))
	}
	for _, pt := range append(append([]BenchPoint{}, quick...), full...) {
		if pt.Warmup == 0 || pt.Measure == 0 {
			t.Fatalf("point %+v has no pinned run lengths", pt)
		}
		if _, err := workloads.Resolve(pt.Bench); err != nil {
			t.Fatalf("pinned point names a benchmark outside the catalog: %v", err)
		}
	}
	inFull := make(map[BenchPoint]bool, len(full))
	for _, pt := range full {
		inFull[pt] = true
	}
	for _, pt := range quick {
		if !inFull[pt] {
			t.Fatalf("quick point %+v (run lengths included) is not in the full set", pt)
		}
	}
}

// TestAttachBaselineMatchedPoints: comparing a quick-style subset
// against a full-set baseline must compute the matched-point speedup
// over the shared points only — the whole-report gmean ratio mixes
// different point sets and would gate on an artifact.
func TestAttachBaselineMatchedPoints(t *testing.T) {
	base := &BenchReport{
		Schema:   BenchSchema,
		GMeanCPS: 400, // gmean over all four baseline points
		Points: []BenchResult{
			{Bench: "gzip", Tracker: "isrb", CyclesPerSec: 100},
			{Bench: "crafty", Tracker: "isrb", CyclesPerSec: 400},
			{Bench: "gzip", Tracker: "unlimited", CyclesPerSec: 1600},
			{Bench: "swim", Tracker: "isrb", CyclesPerSec: 6400},
		},
	}
	rep := &BenchReport{
		Schema:   BenchSchema,
		GMeanCPS: 300,
		Points: []BenchResult{
			{Bench: "gzip", Tracker: "isrb", CyclesPerSec: 150},   // 1.5x
			{Bench: "crafty", Tracker: "isrb", CyclesPerSec: 600}, // 1.5x
			{Bench: "hmmer", Tracker: "isrb", CyclesPerSec: 9999}, // unmatched
		},
	}
	rep.AttachBaseline(base, "b")
	if rep.Baseline.MatchedPoints != 2 {
		t.Fatalf("matched %d points, want 2", rep.Baseline.MatchedPoints)
	}
	// gmean(100,400) = 200 on the baseline side.
	if g := rep.Baseline.MatchedGMeanCPS; g < 199.99 || g > 200.01 {
		t.Fatalf("matched baseline gmean = %f, want 200", g)
	}
	if s := rep.SpeedupVsBaselineMatched; s < 1.499 || s > 1.501 {
		t.Fatalf("matched speedup = %f, want 1.5", s)
	}
	// The whole-report ratio keeps its old meaning alongside.
	if s := rep.SpeedupVsBaseline; s < 0.749 || s > 0.751 {
		t.Fatalf("whole-report speedup = %f, want 0.75", s)
	}

	// Disjoint reports: no matched comparison at all.
	alien := &BenchReport{GMeanCPS: 1, Points: []BenchResult{{Bench: "mcf", Tracker: "rda", CyclesPerSec: 1}}}
	alien.AttachBaseline(base, "b")
	if alien.Baseline.MatchedPoints != 0 || alien.SpeedupVsBaselineMatched != 0 {
		t.Fatalf("disjoint reports matched: %+v", alien.Baseline)
	}

	// When both reports record run lengths, a same-named point that ran
	// different lengths must NOT match — rates from different-length
	// runs are not comparable.
	longBase := &BenchReport{GMeanCPS: 100, Points: []BenchResult{
		{Bench: "gzip", Tracker: "isrb", Warmup: 50_000, Measure: 300_000, CyclesPerSec: 100},
		{Bench: "crafty", Tracker: "isrb", Warmup: 50_000, Measure: 300_000, CyclesPerSec: 100},
	}}
	shortRun := &BenchReport{GMeanCPS: 100, Points: []BenchResult{
		{Bench: "gzip", Tracker: "isrb", Warmup: 20_000, Measure: 100_000, CyclesPerSec: 100},
		{Bench: "crafty", Tracker: "isrb", Warmup: 50_000, Measure: 300_000, CyclesPerSec: 200},
	}}
	shortRun.AttachBaseline(longBase, "b")
	if shortRun.Baseline.MatchedPoints != 1 {
		t.Fatalf("length-aware match found %d points, want 1 (the identical-length crafty)", shortRun.Baseline.MatchedPoints)
	}
	if s := shortRun.SpeedupVsBaselineMatched; s < 1.99 || s > 2.01 {
		t.Fatalf("length-aware matched speedup = %f, want 2.0", s)
	}
}
