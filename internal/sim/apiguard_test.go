package sim

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/ctxfirst"
)

// TestContextFirstEntryPoints is the API-regression guard: every
// exported Run*/Stream*/MustRun* entry point in the execution-spine
// packages must take a context.Context as its first parameter. The
// check itself is the ctxfirst analyzer — the same one `go vet
// -vettool=repolint` runs in CI — driven here over freshly parsed (not
// type-checked) trees, so the guard still fires in a plain `go test
// ./...` with no vet step. The analyzer owns the allowlist of
// sanctioned background-context shims; this test only maps directories
// to import paths and sanity-checks that the scan still sees the API.
func TestContextFirstEntryPoints(t *testing.T) {
	// Directories forming the execution spine, with the import path the
	// analyzer scopes on.
	spine := []struct {
		dir  string
		path string
	}{
		{"../../", "repro"},
		{".", "repro/internal/sim"},
		{"../dispatch", "repro/internal/dispatch"},
		{"../scenario", "repro/internal/scenario"},
		{"../experiments", "repro/internal/experiments"},
		{"../core", "repro/internal/core"},
	}

	found := 0
	for _, sp := range spine {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, sp.dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", sp.dir, err)
		}
		for _, pkg := range pkgs {
			var files []*ast.File
			for _, f := range pkg.Files {
				files = append(files, f)
				for _, decl := range f.Decls {
					if fn, ok := decl.(*ast.FuncDecl); ok && ctxfirst.IsEntryPoint(fn) {
						found++
					}
				}
			}
			findings, err := analysis.Run(fset, files, sp.path, nil, nil,
				[]*analysis.Analyzer{ctxfirst.Analyzer})
			if err != nil {
				t.Fatalf("%s: %v", sp.path, err)
			}
			for _, f := range findings {
				t.Errorf("%s", f)
			}
		}
	}
	if found < 10 {
		t.Fatalf("guard only saw %d Run/Stream entry points; the scan is broken", found)
	}
}
