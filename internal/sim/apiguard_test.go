package sim

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestContextFirstEntryPoints is the API-regression guard behind the CI
// docs job: every exported Run*/Stream*/MustRun* entry point in the
// execution-API packages must take a context.Context as its first
// parameter. The only sanctioned exceptions are the documented
// background-context shims; anything else regaining a context-free
// signature is exactly the fire-and-forget API this guard exists to
// keep out.
func TestContextFirstEntryPoints(t *testing.T) {
	// Packages forming the execution spine: the public regshare API
	// (repo root), the runner, the dispatch backends, the scenario
	// engine, the experiment harness and the core's run loop.
	dirs := []string{"../../", ".", "../dispatch", "../scenario", "../experiments", "../core"}

	// Sanctioned context-free shims, as package-qualified names. Each
	// must be a thin wrapper over a context-first sibling.
	allowed := map[string]bool{
		"regshare.Run":     true, // shim over RunContext
		"regshare.MustRun": true, // shim over Run
		"core.Core.Run":    true, // shim over RunContext
	}

	found := 0
	for _, dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, 0)
		if err != nil {
			t.Fatalf("parsing %s: %v", dir, err)
		}
		for pkgName, pkg := range pkgs {
			for path, file := range pkg.Files {
				for _, decl := range file.Decls {
					fn, ok := decl.(*ast.FuncDecl)
					if !ok || !fn.Name.IsExported() {
						continue
					}
					name := fn.Name.Name
					if name == "Runner" || // accessor, not an entry point
						(!strings.HasPrefix(name, "Run") &&
							!strings.HasPrefix(name, "Stream") &&
							!strings.HasPrefix(name, "MustRun")) {
						continue
					}
					found++
					qual := pkgName + "." + qualify(fn)
					if allowed[qual] {
						continue
					}
					if !firstParamIsContext(fn) {
						t.Errorf("%s: %s (%s) is a public Run entry point without a leading context.Context",
							filepath.Clean(path), qual, fset.Position(fn.Pos()))
					}
				}
			}
		}
	}
	if found < 10 {
		t.Fatalf("guard only saw %d Run/Stream entry points; the scan is broken", found)
	}
}

// qualify names a method as Recv.Name, a function as Name.
func qualify(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	typ := fn.Recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if id, ok := typ.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}

// firstParamIsContext reports whether fn's first parameter is typed
// context.Context.
func firstParamIsContext(fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil || len(fn.Type.Params.List) == 0 {
		return false
	}
	sel, ok := fn.Type.Params.List[0].Type.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "context" && sel.Sel.Name == "Context"
}
