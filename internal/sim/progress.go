package sim

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"
)

// SignalContext returns a context canceled by SIGINT or SIGTERM — the
// root context every command hands to the runner, so ^C aborts a grid
// mid-simulation instead of killing the process with caches half
// written. After the first signal cancels the context, signal handling
// is restored, so a second ^C force-kills a run that is somehow stuck.
func SignalContext() context.Context {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ctx
}

// Progress renders a live `done/total (hit/sim) cycles/sec` line from a
// Stream's completion events. Pass Observe as the sink; call Finish
// before printing the final report. The line is only drawn when w is a
// terminal — piped and CI output stays clean — but the counters are
// always maintained, so Summary works either way. Observe is already
// serialized by Stream's sink contract; Progress carries its own mutex
// anyway so several concurrent Streams may share one instance.
type Progress struct {
	w     io.Writer
	r     *Runner
	tty   bool
	start time.Time

	mu        sync.Mutex
	total     int
	done      int
	simCycles uint64
	live      bool
}

// NewProgress builds a progress line over total expected events,
// reading hit/sim counters from r.
func NewProgress(w io.Writer, r *Runner, total int) *Progress {
	p := &Progress{w: w, r: r, total: total, start: time.Now()} //repro:allow nodeterm -- progress display only; never reaches a result
	if f, ok := w.(*os.File); ok {
		if fi, err := f.Stat(); err == nil && fi.Mode()&os.ModeCharDevice != 0 {
			p.tty = true
		}
	}
	return p
}

// AddTotal grows the expected event count (for drivers that discover
// work incrementally, like cmd/paperfigs running figure after figure).
func (p *Progress) AddTotal(n int) {
	p.mu.Lock()
	p.total += n
	p.mu.Unlock()
}

// Observe consumes one completion event and redraws the line.
func (p *Progress) Observe(ev Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if ev.Res != nil && ev.Source == SourceSimulated {
		p.simCycles += ev.Res.S.Cycles
	}
	if !p.tty {
		return
	}
	p.drawLocked()
}

// drawLocked renders the current counters over the live line. Callers
// hold p.mu.
func (p *Progress) drawLocked() {
	c := p.r.Counters()
	count := fmt.Sprintf("%d", p.done)
	if p.total > 0 {
		count = fmt.Sprintf("%d/%d", p.done, p.total)
	}
	fmt.Fprintf(p.w, "\r%s (%d hit, %d sim) %.0f cycles/sec   ",
		count, c.MemHits+c.DiskHits, c.Simulated, p.rate())
	p.live = true
}

// rate is the aggregate simulated-cycles-per-wall-second since the
// progress line started. Callers hold p.mu.
func (p *Progress) rate() float64 {
	secs := time.Since(p.start).Seconds() //repro:allow nodeterm -- progress display only; never reaches a result
	if secs <= 0 {
		return 0
	}
	return float64(p.simCycles) / secs
}

// Finish terminates the live line (if one was drawn) so subsequent
// output starts on a fresh line. It first redraws one final complete
// done/total line: the stream can end between refreshes (a batch whose
// last events settled after the final redraw, or a total that grew via
// AddTotal), and without the flush the terminal would keep showing a
// stale partial count.
func (p *Progress) Finish() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.live {
		p.drawLocked()
		fmt.Fprintln(p.w)
		p.live = false
	}
}

// Summary returns the one-line cost accounting every command prints on
// stderr after a run.
func (p *Progress) Summary() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	c := p.r.Counters()
	return fmt.Sprintf("%d requests: %d simulated, %d deduplicated, %d from the store (%.0f cycles/sec)",
		p.done, c.Simulated, c.MemHits, c.DiskHits, p.rate())
}
