package sim

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
)

// The Merkle manifest over the sharded content-addressed store: a
// versioned tree whose 256 leaves are shard digests, so two hosts can
// decide whether their stores agree by comparing one root hash, and —
// when they disagree — find the differing shards by walking down the
// tree exchanging O(log n) hashes instead of full entry lists. The
// manifest is computed over the raw envelope bytes on disk: envelopes
// are written deterministically (MarshalIndent of a fixed header plus
// the Result), so two stores holding the same results under the same
// simulator version are byte-identical and hash to the same root.
//
// internal/dispatch serves the tree over GET /v1/manifest (summary),
// GET /v1/manifest/node (one tree node with its child hashes) and
// GET /v1/manifest/shard/{shard} (one leaf's entry list), and accepts
// missing envelopes over POST /v1/sync; HTTP.Sync is the client-side
// diff walk.

// ManifestSchema tags the manifest wire layout. Bump it when the tree
// shape or digest recipe changes incompatibly.
const ManifestSchema = "m1"

// ShardCount is the store's fixed directory fan-out: entries shard by
// the first byte of their key digest.
const ShardCount = 256

// ManifestHeight is the depth of the binary Merkle tree over the
// shards: 2^ManifestHeight == ShardCount, so a root-to-leaf walk
// crosses ManifestHeight levels.
const ManifestHeight = 8

// ShardEntry names one store file inside a manifest leaf: the entry's
// file stem (the 64-hex SHA-256 of its sim.Key) and the SHA-256 of the
// file's raw bytes. Name addresses the entry; Digest changes whenever
// the envelope's content does.
//
//repro:wire
type ShardEntry struct {
	Name   string `json:"name"`
	Digest string `json:"digest"`
}

// Manifest is one store's full Merkle state: the 256 leaf (shard)
// digests in shard order plus the root they hash up to. Interior nodes
// are derived on demand (see Node), so only the leaves travel when a
// whole manifest is exchanged; the summary endpoints ship just the
// root.
//
//repro:wire
type Manifest struct {
	Schema     string   `json:"schema"`
	SimVersion string   `json:"sim_version"`
	Root       string   `json:"root"`
	Height     int      `json:"height"`
	Entries    int      `json:"entries"`
	Shards     []string `json:"shards"`
}

// ManifestNode is one node of the Merkle tree, addressed by its
// root-to-node path as a string of '0'/'1' branch choices (empty =
// root). Interior nodes carry their two child hashes — which is what
// lets a diff walk descend one level per exchange — and leaves carry
// the shard directory name their digest summarizes.
//
//repro:wire
type ManifestNode struct {
	Path     string   `json:"path"`
	Hash     string   `json:"hash"`
	Children []string `json:"children,omitempty"`
	Shard    string   `json:"shard,omitempty"`
}

// shardName returns the shard directory name for shard index i.
func shardName(i int) string {
	return fmt.Sprintf("%02x", i)
}

// emptyShardDigest is the digest of a shard with no entries: the hash
// of the empty entry list. A missing shard directory and an empty one
// are deliberately indistinguishable.
func emptyShardDigest() string {
	h := sha256.Sum256(nil)
	return hex.EncodeToString(h[:])
}

// hashPair combines two child hashes into their parent's.
func hashPair(left, right string) string {
	h := sha256.Sum256([]byte(left + right))
	return hex.EncodeToString(h[:])
}

// merkleRoot folds the 256 shard digests up to the root.
func merkleRoot(shards []string) string {
	level := append([]string(nil), shards...)
	for len(level) > 1 {
		next := level[:len(level)/2]
		for i := range next {
			next[i] = hashPair(level[2*i], level[2*i+1])
		}
		level = next
	}
	return level[0]
}

// isHex reports whether s is exactly n lowercase-hex characters.
func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Node derives the tree node at path: '0' descends left (lower shard
// indices), '1' right; the empty path is the root. Interior nodes
// return both child hashes; a full-height path returns the leaf with
// its shard name.
func (m *Manifest) Node(path string) (ManifestNode, error) {
	if len(m.Shards) != ShardCount {
		return ManifestNode{}, fmt.Errorf("sim: manifest has %d shard digests, want %d", len(m.Shards), ShardCount)
	}
	if len(path) > ManifestHeight {
		return ManifestNode{}, fmt.Errorf("sim: manifest path %q longer than the tree height %d", path, ManifestHeight)
	}
	idx := 0
	for i := 0; i < len(path); i++ {
		switch path[i] {
		case '0':
			idx = idx * 2
		case '1':
			idx = idx*2 + 1
		default:
			return ManifestNode{}, fmt.Errorf("sim: manifest path %q: want only '0' and '1'", path)
		}
	}
	if len(path) == ManifestHeight {
		return ManifestNode{Path: path, Hash: m.Shards[idx], Shard: shardName(idx)}, nil
	}
	left := m.subtree(idx*2, len(path)+1)
	right := m.subtree(idx*2+1, len(path)+1)
	return ManifestNode{Path: path, Hash: hashPair(left, right), Children: []string{left, right}}, nil
}

// subtree computes the hash of the node at (index idx, depth) by
// folding its leaf range.
func (m *Manifest) subtree(idx, depth int) string {
	width := 1 << (ManifestHeight - depth)
	lo := idx * width
	if width == 1 {
		return m.Shards[lo]
	}
	return merkleRoot(m.Shards[lo : lo+width])
}

// DecodeManifest parses and validates a full manifest: the schema and
// tree shape must match this code's, every shard digest must be a
// 64-hex string, and the root must equal the recomputation from the
// leaves — a manifest whose root disagrees with its own shards is
// corrupt or forged and must not steer a sync walk.
func DecodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("sim: decoding manifest: %w", err)
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("sim: manifest schema %q, want %q", m.Schema, ManifestSchema)
	}
	if m.Height != ManifestHeight {
		return nil, fmt.Errorf("sim: manifest height %d, want %d", m.Height, ManifestHeight)
	}
	if len(m.Shards) != ShardCount {
		return nil, fmt.Errorf("sim: manifest has %d shard digests, want %d", len(m.Shards), ShardCount)
	}
	for i, d := range m.Shards {
		if !isHex(d, 64) {
			return nil, fmt.Errorf("sim: manifest shard %s digest %q is not 64-hex", shardName(i), d)
		}
	}
	if m.Entries < 0 {
		return nil, fmt.Errorf("sim: manifest entry count %d is negative", m.Entries)
	}
	if root := merkleRoot(m.Shards); m.Root != root {
		return nil, fmt.Errorf("sim: manifest root %q does not match its shard digests (want %q)", m.Root, root)
	}
	return &m, nil
}

// Manifest computes the store's current Merkle manifest. Shard digests
// are cached per shard and revalidated against the backend's generation
// token, so the first call scans the whole store and later calls
// re-read only shards that changed — including changes made by other
// processes sharing the backend, which is what lets a long-running
// service answer manifest walks cheaply while a sync pushes entries
// underneath it. Backends without generation tokens (s3) re-list every
// time, but per-entry ETag caching still avoids re-fetching bytes.
func (s *Store) Manifest(ctx context.Context) (*Manifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := &Manifest{
		Schema:     ManifestSchema,
		SimVersion: cacheVersion(),
		Height:     ManifestHeight,
		Shards:     make([]string, ShardCount),
	}
	for i := 0; i < ShardCount; i++ {
		entries, digest, err := s.shardStateLocked(ctx, shardName(i))
		if err != nil {
			return nil, err
		}
		m.Shards[i] = digest
		m.Entries += len(entries)
	}
	m.Root = merkleRoot(m.Shards)
	return m, nil
}

// ShardList returns the entries of one shard (by its two-hex name),
// sorted by entry name — one Merkle leaf's preimage, which is what two
// hosts exchange for the few shards a diff walk found to differ.
func (s *Store) ShardList(ctx context.Context, shard string) ([]ShardEntry, error) {
	if !isHex(shard, 2) {
		return nil, fmt.Errorf("sim: bad shard name %q: want two hex characters", shard)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, _, err := s.shardStateLocked(ctx, shard)
	if err != nil {
		return nil, err
	}
	return append([]ShardEntry(nil), entries...), nil
}

// ReadRaw returns the raw envelope bytes of the entry named name (the
// 64-hex key digest), exactly as stored — the transfer unit of a sync.
// A missing entry returns an error wrapping fs.ErrNotExist.
func (s *Store) ReadRaw(ctx context.Context, name string) ([]byte, error) {
	if !isHex(name, 64) {
		return nil, fmt.Errorf("sim: bad entry name %q: want 64 hex characters", name)
	}
	data, err := s.backend.Get(ctx, name)
	if err != nil {
		return nil, fmt.Errorf("sim: reading store entry %s: %w", name, err)
	}
	return data, nil
}

// PutRaw stores one envelope received from a peer after validating its
// integrity: the bytes must parse as a store envelope of this store's
// schema and this process's simulator version, and must carry a
// completed result under a key whose digest determines — and therefore
// proves — the entry's name. The accepted envelope is re-encoded in the
// same canonical form Put writes, so the stored bytes — and with them
// the shard digests and the Merkle root — do not depend on how the
// transport formatted the JSON in flight. The validated name is
// returned.
//
// The write is conditional: a peer's entry never clobbers an existing
// one (first writer wins, and with canonical encoding the bytes are
// identical anyway). If an existing entry's bytes genuinely differ —
// which means one side is corrupt — the validated peer copy replaces
// it, so repeated syncs converge on one root instead of disagreeing
// forever.
func (s *Store) PutRaw(ctx context.Context, data []byte) (string, error) {
	var e envelope
	if err := json.Unmarshal(data, &e); err != nil {
		return "", fmt.Errorf("sim: sync envelope does not parse: %w", err)
	}
	if e.Schema != storeSchema {
		return "", fmt.Errorf("sim: sync envelope schema %q, want %q", e.Schema, storeSchema)
	}
	if e.SimVersion != cacheVersion() {
		return "", fmt.Errorf("sim: sync envelope from simulator version %q, this process is %q: refusing foreign results", e.SimVersion, cacheVersion())
	}
	if e.Key == "" || e.Result == nil {
		return "", errors.New("sim: sync envelope carries no key or no result")
	}
	canonical, err := json.MarshalIndent(e, "", " ")
	if err != nil {
		return "", err
	}
	name := entryName(e.Key)
	stored, err := s.backend.PutIfAbsent(ctx, name, canonical)
	if err != nil {
		return "", err
	}
	if !stored {
		existing, err := s.backend.Get(ctx, name)
		if err != nil || !bytes.Equal(existing, canonical) {
			if err := s.backend.Put(ctx, name, canonical); err != nil {
				return "", err
			}
		} else {
			return name, nil // identical bytes already present
		}
	}
	s.invalidate(name[:2])
	return name, nil
}

// shardStateLocked returns one shard's sorted entry list and digest,
// served from the per-shard cache when the backend's generation token
// for the shard is unchanged since the cached scan. Callers hold s.mu.
func (s *Store) shardStateLocked(ctx context.Context, shard string) ([]ShardEntry, string, error) {
	// Read the generation before listing: a write landing mid-scan moves
	// the token past this value, so the next Manifest call rescans —
	// conservative, never stale.
	gen, genOK := s.backend.Generation(ctx, shard)
	prev := s.shards[shard]
	if prev != nil && prev.valid && prev.genOK && genOK && prev.gen == gen {
		return prev.entries, prev.digest, nil
	}
	objs, err := s.backend.List(ctx, shard)
	if err != nil {
		return nil, "", fmt.Errorf("sim: listing shard %s: %w", shard, err)
	}
	if len(objs) == 0 {
		// An absent shard and an empty one are deliberately
		// indistinguishable.
		s.cacheShard(shard, &shardCache{gen: gen, genOK: genOK, digest: emptyShardDigest(), valid: true})
		return nil, emptyShardDigest(), nil
	}
	entries := make([]ShardEntry, 0, len(objs))
	digests := make(map[string]entryDigest, len(objs))
	h := sha256.New()
	for _, obj := range objs { // List returns name-sorted entries
		digest := obj.SHA256
		if digest == "" && prev != nil && obj.ETag != "" {
			// No digest hint: reuse the previous scan's digest when the
			// backend's ETag proves the bytes are unchanged.
			if c, ok := prev.digests[obj.Name]; ok && c.etag == obj.ETag {
				digest = c.digest
			}
		}
		if digest == "" {
			data, err := s.backend.Get(ctx, obj.Name)
			if err != nil {
				continue // deleted mid-scan: the generation move forces a rescan
			}
			d := sha256.Sum256(data)
			digest = hex.EncodeToString(d[:])
		}
		e := ShardEntry{Name: obj.Name, Digest: digest}
		entries = append(entries, e)
		digests[obj.Name] = entryDigest{etag: obj.ETag, digest: digest}
		h.Write([]byte(e.Name + " " + e.Digest + "\n"))
	}
	digest := hex.EncodeToString(h.Sum(nil))
	s.cacheShard(shard, &shardCache{gen: gen, genOK: genOK, digest: digest, entries: entries, digests: digests, valid: true})
	return entries, digest, nil
}

// cacheShard records one shard's freshly scanned state.
func (s *Store) cacheShard(shard string, c *shardCache) {
	if s.shards == nil {
		s.shards = make(map[string]*shardCache)
	}
	s.shards[shard] = c
}

// invalidate drops the shard's cached digest after a local write.
func (s *Store) invalidate(shard string) {
	s.mu.Lock()
	if c, ok := s.shards[shard]; ok {
		c.valid = false
	}
	s.mu.Unlock()
}

// ParseShardIndex converts a shard directory name back to its index —
// the inverse of the naming the manifest leaves use.
func ParseShardIndex(shard string) (int, error) {
	if !isHex(shard, 2) {
		return 0, fmt.Errorf("sim: bad shard name %q: want two hex characters", shard)
	}
	n, err := strconv.ParseInt(shard, 16, 32)
	if err != nil {
		return 0, fmt.Errorf("sim: bad shard name %q: %w", shard, err)
	}
	return int(n), nil
}
