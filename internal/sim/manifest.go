package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The Merkle manifest over the sharded content-addressed store: a
// versioned tree whose 256 leaves are shard digests, so two hosts can
// decide whether their stores agree by comparing one root hash, and —
// when they disagree — find the differing shards by walking down the
// tree exchanging O(log n) hashes instead of full entry lists. The
// manifest is computed over the raw envelope bytes on disk: envelopes
// are written deterministically (MarshalIndent of a fixed header plus
// the Result), so two stores holding the same results under the same
// simulator version are byte-identical and hash to the same root.
//
// internal/dispatch serves the tree over GET /v1/manifest (summary),
// GET /v1/manifest/node (one tree node with its child hashes) and
// GET /v1/manifest/shard/{shard} (one leaf's entry list), and accepts
// missing envelopes over POST /v1/sync; HTTP.Sync is the client-side
// diff walk.

// ManifestSchema tags the manifest wire layout. Bump it when the tree
// shape or digest recipe changes incompatibly.
const ManifestSchema = "m1"

// ShardCount is the store's fixed directory fan-out: entries shard by
// the first byte of their key digest.
const ShardCount = 256

// ManifestHeight is the depth of the binary Merkle tree over the
// shards: 2^ManifestHeight == ShardCount, so a root-to-leaf walk
// crosses ManifestHeight levels.
const ManifestHeight = 8

// ShardEntry names one store file inside a manifest leaf: the entry's
// file stem (the 64-hex SHA-256 of its sim.Key) and the SHA-256 of the
// file's raw bytes. Name addresses the entry; Digest changes whenever
// the envelope's content does.
//
//repro:wire
type ShardEntry struct {
	Name   string `json:"name"`
	Digest string `json:"digest"`
}

// Manifest is one store's full Merkle state: the 256 leaf (shard)
// digests in shard order plus the root they hash up to. Interior nodes
// are derived on demand (see Node), so only the leaves travel when a
// whole manifest is exchanged; the summary endpoints ship just the
// root.
//
//repro:wire
type Manifest struct {
	Schema     string   `json:"schema"`
	SimVersion string   `json:"sim_version"`
	Root       string   `json:"root"`
	Height     int      `json:"height"`
	Entries    int      `json:"entries"`
	Shards     []string `json:"shards"`
}

// ManifestNode is one node of the Merkle tree, addressed by its
// root-to-node path as a string of '0'/'1' branch choices (empty =
// root). Interior nodes carry their two child hashes — which is what
// lets a diff walk descend one level per exchange — and leaves carry
// the shard directory name their digest summarizes.
//
//repro:wire
type ManifestNode struct {
	Path     string   `json:"path"`
	Hash     string   `json:"hash"`
	Children []string `json:"children,omitempty"`
	Shard    string   `json:"shard,omitempty"`
}

// shardName returns the shard directory name for shard index i.
func shardName(i int) string {
	return fmt.Sprintf("%02x", i)
}

// emptyShardDigest is the digest of a shard with no entries: the hash
// of the empty entry list. A missing shard directory and an empty one
// are deliberately indistinguishable.
func emptyShardDigest() string {
	h := sha256.Sum256(nil)
	return hex.EncodeToString(h[:])
}

// hashPair combines two child hashes into their parent's.
func hashPair(left, right string) string {
	h := sha256.Sum256([]byte(left + right))
	return hex.EncodeToString(h[:])
}

// merkleRoot folds the 256 shard digests up to the root.
func merkleRoot(shards []string) string {
	level := append([]string(nil), shards...)
	for len(level) > 1 {
		next := level[:len(level)/2]
		for i := range next {
			next[i] = hashPair(level[2*i], level[2*i+1])
		}
		level = next
	}
	return level[0]
}

// isHex reports whether s is exactly n lowercase-hex characters.
func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Node derives the tree node at path: '0' descends left (lower shard
// indices), '1' right; the empty path is the root. Interior nodes
// return both child hashes; a full-height path returns the leaf with
// its shard name.
func (m *Manifest) Node(path string) (ManifestNode, error) {
	if len(m.Shards) != ShardCount {
		return ManifestNode{}, fmt.Errorf("sim: manifest has %d shard digests, want %d", len(m.Shards), ShardCount)
	}
	if len(path) > ManifestHeight {
		return ManifestNode{}, fmt.Errorf("sim: manifest path %q longer than the tree height %d", path, ManifestHeight)
	}
	idx := 0
	for i := 0; i < len(path); i++ {
		switch path[i] {
		case '0':
			idx = idx * 2
		case '1':
			idx = idx*2 + 1
		default:
			return ManifestNode{}, fmt.Errorf("sim: manifest path %q: want only '0' and '1'", path)
		}
	}
	if len(path) == ManifestHeight {
		return ManifestNode{Path: path, Hash: m.Shards[idx], Shard: shardName(idx)}, nil
	}
	left := m.subtree(idx*2, len(path)+1)
	right := m.subtree(idx*2+1, len(path)+1)
	return ManifestNode{Path: path, Hash: hashPair(left, right), Children: []string{left, right}}, nil
}

// subtree computes the hash of the node at (index idx, depth) by
// folding its leaf range.
func (m *Manifest) subtree(idx, depth int) string {
	width := 1 << (ManifestHeight - depth)
	lo := idx * width
	if width == 1 {
		return m.Shards[lo]
	}
	return merkleRoot(m.Shards[lo : lo+width])
}

// DecodeManifest parses and validates a full manifest: the schema and
// tree shape must match this code's, every shard digest must be a
// 64-hex string, and the root must equal the recomputation from the
// leaves — a manifest whose root disagrees with its own shards is
// corrupt or forged and must not steer a sync walk.
func DecodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("sim: decoding manifest: %w", err)
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("sim: manifest schema %q, want %q", m.Schema, ManifestSchema)
	}
	if m.Height != ManifestHeight {
		return nil, fmt.Errorf("sim: manifest height %d, want %d", m.Height, ManifestHeight)
	}
	if len(m.Shards) != ShardCount {
		return nil, fmt.Errorf("sim: manifest has %d shard digests, want %d", len(m.Shards), ShardCount)
	}
	for i, d := range m.Shards {
		if !isHex(d, 64) {
			return nil, fmt.Errorf("sim: manifest shard %s digest %q is not 64-hex", shardName(i), d)
		}
	}
	if m.Entries < 0 {
		return nil, fmt.Errorf("sim: manifest entry count %d is negative", m.Entries)
	}
	if root := merkleRoot(m.Shards); m.Root != root {
		return nil, fmt.Errorf("sim: manifest root %q does not match its shard digests (want %q)", m.Root, root)
	}
	return &m, nil
}

// Manifest computes the store's current Merkle manifest. Shard digests
// are cached per shard and revalidated against the shard directory's
// mtime, so the first call scans the whole store and later calls
// re-read only shards that changed — including changes made by other
// processes sharing the directory, which is what lets a long-running
// service answer manifest walks cheaply while a sync pushes entries
// underneath it.
func (s *Store) Manifest() (*Manifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := &Manifest{
		Schema:     ManifestSchema,
		SimVersion: cacheVersion(),
		Height:     ManifestHeight,
		Shards:     make([]string, ShardCount),
	}
	for i := 0; i < ShardCount; i++ {
		entries, digest, err := s.shardStateLocked(shardName(i))
		if err != nil {
			return nil, err
		}
		m.Shards[i] = digest
		m.Entries += len(entries)
	}
	m.Root = merkleRoot(m.Shards)
	return m, nil
}

// ShardList returns the entries of one shard (by its two-hex directory
// name), sorted by entry name — one Merkle leaf's preimage, which is
// what two hosts exchange for the few shards a diff walk found to
// differ.
func (s *Store) ShardList(shard string) ([]ShardEntry, error) {
	if !isHex(shard, 2) {
		return nil, fmt.Errorf("sim: bad shard name %q: want two hex characters", shard)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, _, err := s.shardStateLocked(shard)
	if err != nil {
		return nil, err
	}
	return append([]ShardEntry(nil), entries...), nil
}

// ReadRaw returns the raw envelope bytes of the entry named name (the
// 64-hex key digest), exactly as stored — the transfer unit of a sync.
// A missing entry returns an error wrapping fs.ErrNotExist.
func (s *Store) ReadRaw(name string) ([]byte, error) {
	if !isHex(name, 64) {
		return nil, fmt.Errorf("sim: bad entry name %q: want 64 hex characters", name)
	}
	data, err := os.ReadFile(filepath.Join(s.dir, name[:2], name+".json"))
	if err != nil {
		return nil, fmt.Errorf("sim: reading store entry %s: %w", name, err)
	}
	return data, nil
}

// PutRaw stores one envelope received from a peer after validating its
// integrity: the bytes must parse as a store envelope of this store's
// schema and this process's simulator version, and must carry a
// completed result under a key whose digest determines — and therefore
// proves — the entry's name. The accepted envelope is re-encoded in the
// same canonical form Put writes, so the bytes on disk — and with them
// the shard digests and the Merkle root — do not depend on how the
// transport formatted the JSON in flight. The validated name is
// returned; writing is the same atomic temp+rename as Put, so
// concurrent readers never observe partial entries.
func (s *Store) PutRaw(data []byte) (string, error) {
	var e envelope
	if err := json.Unmarshal(data, &e); err != nil {
		return "", fmt.Errorf("sim: sync envelope does not parse: %w", err)
	}
	if e.Schema != storeSchema {
		return "", fmt.Errorf("sim: sync envelope schema %q, want %q", e.Schema, storeSchema)
	}
	if e.SimVersion != cacheVersion() {
		return "", fmt.Errorf("sim: sync envelope from simulator version %q, this process is %q: refusing foreign results", e.SimVersion, cacheVersion())
	}
	if e.Key == "" || e.Result == nil {
		return "", errors.New("sim: sync envelope carries no key or no result")
	}
	canonical, err := json.MarshalIndent(e, "", " ")
	if err != nil {
		return "", err
	}
	d := sha256.Sum256([]byte(e.Key))
	name := hex.EncodeToString(d[:])
	if err := s.writeEntry(filepath.Join(s.dir, name[:2], name+".json"), canonical); err != nil {
		return "", err
	}
	s.invalidate(name[:2])
	return name, nil
}

// shardStateLocked returns one shard's sorted entry list and digest,
// served from the per-shard cache when the shard directory's mtime is
// unchanged since the cached scan. Callers hold s.mu.
func (s *Store) shardStateLocked(shard string) ([]ShardEntry, string, error) {
	dir := filepath.Join(s.dir, shard)
	st, err := os.Stat(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, emptyShardDigest(), nil
		}
		return nil, "", fmt.Errorf("sim: stat shard %s: %w", shard, err)
	}
	if c, ok := s.shards[shard]; ok && c.valid && c.mtime.Equal(st.ModTime()) {
		return c.entries, c.digest, nil
	}
	// Read the mtime before scanning: a write landing mid-scan bumps it
	// past this value, so the next Manifest call rescans — conservative,
	// never stale.
	mtime := st.ModTime()
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", fmt.Errorf("sim: reading shard %s: %w", shard, err)
	}
	var entries []ShardEntry
	h := sha256.New()
	for _, de := range des { // ReadDir sorts by name
		stem := strings.TrimSuffix(de.Name(), ".json")
		if len(stem) == len(de.Name()) || !isHex(stem, 64) {
			continue // temp files and foreign droppings are not entries
		}
		data, err := os.ReadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			continue // deleted mid-scan: the mtime bump forces a rescan
		}
		d := sha256.Sum256(data)
		e := ShardEntry{Name: stem, Digest: hex.EncodeToString(d[:])}
		entries = append(entries, e)
		h.Write([]byte(e.Name + " " + e.Digest + "\n"))
	}
	digest := hex.EncodeToString(h.Sum(nil))
	if s.shards == nil {
		s.shards = make(map[string]*shardCache)
	}
	s.shards[shard] = &shardCache{mtime: mtime, digest: digest, entries: entries, valid: true}
	return entries, digest, nil
}

// invalidate drops the shard's cached digest after a local write.
func (s *Store) invalidate(shard string) {
	s.mu.Lock()
	if c, ok := s.shards[shard]; ok {
		c.valid = false
	}
	s.mu.Unlock()
}

// ParseShardIndex converts a shard directory name back to its index —
// the inverse of the naming the manifest leaves use.
func ParseShardIndex(shard string) (int, error) {
	if !isHex(shard, 2) {
		return 0, fmt.Errorf("sim: bad shard name %q: want two hex characters", shard)
	}
	n, err := strconv.ParseInt(shard, 16, 32)
	if err != nil {
		return 0, fmt.Errorf("sim: bad shard name %q: %w", shard, err)
	}
	return int(n), nil
}
