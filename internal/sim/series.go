package sim

import "repro/internal/stats"

// Series is one named speedup curve over a benchmark list — the unit
// every figure and sweep reports. It used to be re-implemented by both
// internal/experiments and cmd/sweep; this is the single copy.
type Series struct {
	Name    string
	Per     map[string]float64
	GMean   float64
	MaxName string
	Max     float64
}

// MakeSeries builds the speedup series of opt over base. The two slices
// must be positionally aligned (same benchmarks, same order), as
// RunBenchmarks guarantees.
func MakeSeries(name string, base, opt []*Result) Series {
	s := Series{Name: name, Per: make(map[string]float64, len(base))}
	sp := make([]float64, 0, len(base))
	for i := range base {
		v := stats.Speedup(opt[i].IPC, base[i].IPC)
		s.Per[base[i].Bench] = v
		sp = append(sp, v)
		if v > s.Max {
			s.Max = v
			s.MaxName = base[i].Bench
		}
	}
	s.GMean = stats.GeoMean(sp)
	return s
}

// GMeanSpeedup returns the geometric-mean speedup of opt over base
// across positionally aligned result slices.
func GMeanSpeedup(base, opt []*Result) float64 {
	return MakeSeries("", base, opt).GMean
}
