package sim

import (
	"errors"
	"fmt"

	"repro/internal/workloads"
)

// The runner's error taxonomy. Every error the execution API returns
// wraps exactly one of these sentinels, so callers branch with
// errors.Is instead of matching message strings:
//
//   - ErrUnknownBenchmark: the request's workload name is one
//     workloads.Resolve rejects — neither a catalog benchmark nor a
//     well-formed gen: generator name;
//   - ErrBadConfig: the request's machine configuration or run lengths
//     cannot be simulated (zero measured region, unsized windows,
//     unknown tracker kind, ...);
//   - ErrCanceled: the run was interrupted — the error also wraps the
//     context's own cause, so errors.Is(err, context.Canceled) and
//     errors.Is(err, context.DeadlineExceeded) keep working.
var (
	ErrUnknownBenchmark = errors.New("unknown benchmark")
	ErrBadConfig        = errors.New("bad configuration")
	ErrCanceled         = errors.New("run canceled")
)

// canceledErr wraps a context cancellation into the typed taxonomy,
// keeping the context's own sentinel reachable through errors.Is.
func canceledErr(bench string, cause error) error {
	return fmt.Errorf("sim: %s: %w: %w", bench, ErrCanceled, cause)
}

// Validate rejects a request the runner cannot execute, with a typed
// error. Every entry point — Run, Stream and everything layered on them
// — applies the same contract, so regshare, the scenario engine and
// direct callers cannot drift apart on what a runnable request is.
func (req Request) Validate() error {
	if req.Measure == 0 {
		return fmt.Errorf("sim: %s: %w: measure must be positive (a zero measured region yields no statistics)",
			req.Bench, ErrBadConfig)
	}
	if err := req.Config.Check(); err != nil {
		return fmt.Errorf("sim: %s: %w: %w", req.Bench, ErrBadConfig, err)
	}
	if _, err := workloads.Resolve(req.Bench); err != nil {
		return fmt.Errorf("sim: %w %q: %w", ErrUnknownBenchmark, req.Bench, err)
	}
	return nil
}
