package sim

import (
	"testing"

	"repro/internal/workloads"
)

// TestCanonicalNameSharesEntry pins the canonicalization seam in the
// runner: every spelling of one generator point funnels into one
// singleflight slot, one result and one store envelope, keyed by the
// canonical name. The fleet protocol leans on this — two hosts spelling
// a cell differently must still converge on identical store bytes.
func TestCanonicalNameSharesEntry(t *testing.T) {
	spellings := []string{
		"gen:spill?depth=4&dist=16",          // canonical
		"gen:spill?dist=16&depth=4",          // unsorted keys
		"gen:spill?depth=4&dist=16&seed=0",   // explicit default
		"gen:spill?depth=4&dist=16&far=0.25", // another explicit default
	}
	canonical, err := workloads.CanonicalName(spellings[0])
	if err != nil {
		t.Fatal(err)
	}
	if canonical != spellings[0] {
		t.Fatalf("expected %q to be canonical, got %q", spellings[0], canonical)
	}

	store := NewStore(t.TempDir())
	r := New(WithStore(store))
	var first *Result
	for _, name := range spellings {
		res, err := r.Run(bg, quickReq(name))
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if res.Bench != canonical {
			t.Fatalf("%q: result carries bench %q, want the canonical %q", name, res.Bench, canonical)
		}
		if first == nil {
			first = res
		} else if res != first {
			t.Fatalf("%q: got a distinct result value; spellings did not share the singleflight slot", name)
		}
	}
	c := r.Counters()
	if c.Simulated != 1 || c.MemHits != uint64(len(spellings)-1) {
		t.Fatalf("counters %+v: want 1 simulated, %d mem hits", c, len(spellings)-1)
	}
	if store.Len() != 1 {
		t.Fatalf("store holds %d entries, want 1 (all spellings share the canonical envelope)", store.Len())
	}

	// A fresh runner over the same store must hit disk for every
	// spelling — the envelope is addressed by the canonical key.
	r2 := New(WithStore(store))
	for _, name := range spellings {
		if _, err := r2.Run(bg, quickReq(name)); err != nil {
			t.Fatalf("%q: %v", name, err)
		}
	}
	if c2 := r2.Counters(); c2.Simulated != 0 || c2.DiskHits != 1 || c2.MemHits != uint64(len(spellings)-1) {
		t.Fatalf("fresh-runner counters %+v: want 0 simulated, 1 disk hit, %d mem hits", c2, len(spellings)-1)
	}
}
