package sim

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// This file is the performance-tracking half of the runner: a pinned
// workload set, a wall-clock harness measuring simulated cycles per
// second, and the BENCH_*.json report every PR appends to so the
// simulator's raw speed has a recorded trajectory (ROADMAP: "as fast as
// the hardware allows").

// BenchSchema tags the report layout; bump it when BenchReport changes
// incompatibly.
const BenchSchema = "bench-1"

// BenchPoint names one pinned measurement: a benchmark from the catalog
// simulated under one tracker scheme with the full optimization stack
// (ME + SMB + lazy reclaim) enabled, so the measurement exercises the
// rename/issue/writeback/commit hot path and the reference-counting
// machinery together.
type BenchPoint struct {
	Bench   string
	Tracker core.TrackerKind
	Warmup  uint64
	Measure uint64
}

// BenchResult is one executed BenchPoint. Warmup and Measure echo the
// point's run lengths so a report is self-describing: the matched-point
// baseline comparison refuses to match points that ran different
// lengths (older reports predate the fields — omitempty keeps them
// loadable, and matching then falls back to benchmark+tracker).
//
//repro:wire
type BenchResult struct {
	Bench        string  `json:"bench"`
	Tracker      string  `json:"tracker"`
	Warmup       uint64  `json:"warmup,omitempty"`
	Measure      uint64  `json:"measure,omitempty"`
	Cycles       uint64  `json:"cycles"`
	Committed    uint64  `json:"committed"`
	IPC          float64 `json:"ipc"`
	WallNS       int64   `json:"wall_ns"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
}

// BenchBaseline is an earlier report's aggregate, embedded so a report
// is self-contained evidence of a speedup (or regression).
//
//repro:wire
type BenchBaseline struct {
	Label        string  `json:"label"`
	GMeanCPS     float64 `json:"gmean_cycles_per_sec"`
	TotalWallNS  int64   `json:"total_wall_ns"`
	GMeanWallNS  float64 `json:"gmean_wall_ns"`
	SchemaOfFile string  `json:"schema,omitempty"`
	// MatchedPoints counts the points shared by both reports — same
	// benchmark and tracker; the pinned sets key points uniquely, and
	// the quick set is an exact subset of the full set, so matched
	// points ran identical lengths — and MatchedGMeanCPS is the
	// baseline's gmean over just those. They make a -quick run
	// comparable against a full-set baseline: the whole-report gmeans
	// aggregate different point sets, the matched gmeans do not.
	MatchedPoints   int     `json:"matched_points,omitempty"`
	MatchedGMeanCPS float64 `json:"matched_gmean_cycles_per_sec,omitempty"`
}

// BenchReport is the full BENCH_*.json payload.
//
//repro:wire
type BenchReport struct {
	Schema string `json:"schema"`
	Label  string `json:"label,omitempty"`
	// Backend names the execution backend the points ran through when it
	// was not the default in-process path ("pool:4", "http://..."), so a
	// report measuring subprocess or network overhead is never mistaken
	// for a simulator-speed data point.
	Backend     string        `json:"backend,omitempty"`
	GoVersion   string        `json:"go_version"`
	GOARCH      string        `json:"goarch"`
	NumCPU      int           `json:"num_cpu"`
	Quick       bool          `json:"quick"`
	Points      []BenchResult `json:"points"`
	TotalWallNS int64         `json:"total_wall_ns"`
	// GMeanWallNS is the geometric mean of per-point wall times.
	GMeanWallNS float64 `json:"gmean_wall_ns"`
	// GMeanCPS is the geometric mean of per-point simulated cycles/sec —
	// the headline number the acceptance criteria track.
	GMeanCPS float64 `json:"gmean_cycles_per_sec"`

	Baseline *BenchBaseline `json:"baseline,omitempty"`
	// SpeedupVsBaseline is GMeanCPS / Baseline.GMeanCPS when a baseline
	// is embedded.
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
	// SpeedupVsBaselineMatched compares gmeans over the matched points
	// only (see BenchBaseline.MatchedPoints); zero when the reports
	// share no points. This is the number the CI regression gate
	// thresholds: it stays meaningful when this run is the -quick
	// subset and the baseline a full-set BENCH_*.json.
	SpeedupVsBaselineMatched float64 `json:"speedup_vs_baseline_matched,omitempty"`
}

// benchConfig is the pinned machine configuration: Table 1 with the full
// optimization stack on, parameterized by tracker scheme only. Pinning it
// here (rather than taking a Config) keeps every PR's BENCH_*.json
// comparable.
func benchConfig(kind core.TrackerKind) core.Config {
	cfg := core.DefaultConfig()
	cfg.ME.Enabled = true
	cfg.SMB.Enabled = true
	cfg.SMB.BypassCommitted = true
	cfg.Tracker.Kind = kind
	return cfg
}

// BenchPoints returns the pinned workload set. quick selects the 3-point
// smoke subset CI runs on every push; the full set covers integer and FP
// benchmarks with diverse bottlenecks (move-rich, trap-rich, pointer
// chasing, streaming) under both the ISRB and the unlimited tracker.
func BenchPoints(quick bool) []BenchPoint {
	// The quick points are an exact subset of the full set — same
	// benchmarks, tracker and run lengths — so a quick run's per-point
	// cycles/sec is directly comparable against a full BENCH_*.json
	// baseline (the matched-point comparison the CI gate relies on).
	if quick {
		return []BenchPoint{
			{Bench: "gzip", Tracker: core.TrackerISRB, Warmup: 50_000, Measure: 300_000},
			{Bench: "crafty", Tracker: core.TrackerISRB, Warmup: 50_000, Measure: 300_000},
			{Bench: "wupwise", Tracker: core.TrackerISRB, Warmup: 50_000, Measure: 300_000},
		}
	}
	benches := []string{"gzip", "crafty", "hmmer", "mcf", "astar", "wupwise", "swim", "namd"}
	var pts []BenchPoint
	for _, b := range benches {
		for _, k := range []core.TrackerKind{core.TrackerISRB, core.TrackerUnlimited} {
			pts = append(pts, BenchPoint{Bench: b, Tracker: k, Warmup: 50_000, Measure: 300_000})
		}
	}
	return pts
}

// RunBench executes the pinned points sequentially on one goroutine (the
// measurement is wall-clock, so the harness must not share the machine
// with its own sibling runs) and aggregates the report. Canceling ctx
// aborts the current point mid-simulation and returns a typed
// ErrCanceled wrap. progress may be nil; otherwise it is invoked after
// each point.
func RunBench(ctx context.Context, points []BenchPoint, quick bool, progress func(BenchResult)) (*BenchReport, error) {
	return runBench(ctx, points, quick, directPoint, progress)
}

// RunBenchVia runs the pinned points through exec — a dispatch backend's
// Execute — timing the wall clock around each call, so the report
// measures the backend's delivered throughput: subprocess framing for a
// worker pool, the network round-trip for the regshared service. The
// simulated cycle counts are bit-identical to RunBench's; only the wall
// times (and so cycles/sec) reflect the backend. Points still run
// sequentially: the measurement owns the wall clock either way.
func RunBenchVia(ctx context.Context, points []BenchPoint, quick bool, exec Executor, progress func(BenchResult)) (*BenchReport, error) {
	return runBench(ctx, points, quick, func(ctx context.Context, pt BenchPoint) (BenchResult, error) {
		req := Request{Bench: pt.Bench, Config: benchConfig(pt.Tracker), Warmup: pt.Warmup, Measure: pt.Measure}
		start := time.Now() //repro:allow nodeterm -- wall-clock measurement metadata, not a simulated result
		res, err := exec(ctx, req)
		if err != nil {
			return BenchResult{}, err
		}
		wall := time.Since(start) //repro:allow nodeterm -- wall-clock measurement metadata, not a simulated result
		if wall <= 0 {
			wall = time.Nanosecond
		}
		return BenchResult{
			Bench:        pt.Bench,
			Tracker:      string(pt.Tracker),
			Warmup:       pt.Warmup,
			Measure:      pt.Measure,
			Cycles:       res.S.Cycles,
			Committed:    res.S.Committed,
			IPC:          res.IPC,
			WallNS:       wall.Nanoseconds(),
			CyclesPerSec: float64(res.S.Cycles) / wall.Seconds(),
		}, nil
	}, progress)
}

// directPoint is RunBench's measurement: the core driven directly, with
// no runner layers between the wall clock and the cycle loop, so the
// number tracks the simulator itself across PRs.
func directPoint(ctx context.Context, pt BenchPoint) (BenchResult, error) {
	spec, err := workloads.Resolve(pt.Bench)
	if err != nil {
		return BenchResult{}, fmt.Errorf("sim: %w %q", ErrUnknownBenchmark, pt.Bench)
	}
	prog := workloads.Build(spec)
	c := core.New(benchConfig(pt.Tracker), prog)
	start := time.Now() //repro:allow nodeterm -- wall-clock measurement metadata, not a simulated result
	st, err := c.RunContext(ctx, pt.Warmup, pt.Measure)
	if err != nil {
		return BenchResult{}, canceledErr(pt.Bench, err)
	}
	wall := time.Since(start) //repro:allow nodeterm -- wall-clock measurement metadata, not a simulated result
	if wall <= 0 {
		wall = time.Nanosecond
	}
	return BenchResult{
		Bench:        pt.Bench,
		Tracker:      string(pt.Tracker),
		Warmup:       pt.Warmup,
		Measure:      pt.Measure,
		Cycles:       st.Cycles,
		Committed:    st.Committed,
		IPC:          st.IPC(),
		WallNS:       wall.Nanoseconds(),
		CyclesPerSec: float64(st.Cycles) / wall.Seconds(),
	}, nil
}

// runBench drives the per-point measurement and aggregates the report.
func runBench(ctx context.Context, points []BenchPoint, quick bool, run func(context.Context, BenchPoint) (BenchResult, error), progress func(BenchResult)) (*BenchReport, error) {
	rep := &BenchReport{
		Schema:    BenchSchema,
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Quick:     quick,
	}
	cps := make([]float64, 0, len(points))
	walls := make([]float64, 0, len(points))
	for _, pt := range points {
		res, err := run(ctx, pt)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, res)
		rep.TotalWallNS += res.WallNS
		cps = append(cps, res.CyclesPerSec)
		walls = append(walls, float64(res.WallNS))
		if progress != nil {
			progress(res)
		}
	}
	rep.GMeanCPS = stats.GeoMean(cps)
	rep.GMeanWallNS = stats.GeoMean(walls)
	return rep, nil
}

// AttachBaseline embeds an earlier report's aggregates into rep and
// computes both speedups: the whole-report gmean ratio, and the
// matched-point ratio over the points the two reports share (same
// benchmark and tracker). When the point sets are equal the two
// coincide; when they differ — a -quick run against a full baseline —
// only the matched ratio compares like with like.
func (rep *BenchReport) AttachBaseline(base *BenchReport, label string) {
	rep.Baseline = &BenchBaseline{
		Label:        label,
		GMeanCPS:     base.GMeanCPS,
		TotalWallNS:  base.TotalWallNS,
		GMeanWallNS:  base.GMeanWallNS,
		SchemaOfFile: base.Schema,
	}
	if base.GMeanCPS > 0 {
		rep.SpeedupVsBaseline = rep.GMeanCPS / base.GMeanCPS
	}

	// Points match on benchmark+tracker, and — when both reports record
	// run lengths — on identical lengths too, so a re-pinned quick set
	// can never silently compare against a baseline that ran different
	// lengths. Reports written before the Warmup/Measure fields existed
	// carry zeros; lengths are then unknowable and excluded from the key.
	withLengths := hasRunLengths(rep.Points) && hasRunLengths(base.Points)
	key := func(p BenchResult) string {
		if withLengths {
			return fmt.Sprintf("%s|%s|%d|%d", p.Bench, p.Tracker, p.Warmup, p.Measure)
		}
		return fmt.Sprintf("%s|%s", p.Bench, p.Tracker)
	}
	baseCPS := make(map[string]float64, len(base.Points))
	for _, p := range base.Points {
		if _, dup := baseCPS[key(p)]; !dup {
			baseCPS[key(p)] = p.CyclesPerSec
		}
	}
	var mine, theirs []float64
	for _, p := range rep.Points {
		if cps, ok := baseCPS[key(p)]; ok && cps > 0 {
			mine = append(mine, p.CyclesPerSec)
			theirs = append(theirs, cps)
		}
	}
	if len(mine) > 0 {
		rep.Baseline.MatchedPoints = len(mine)
		rep.Baseline.MatchedGMeanCPS = stats.GeoMean(theirs)
		rep.SpeedupVsBaselineMatched = stats.GeoMean(mine) / rep.Baseline.MatchedGMeanCPS
	}
}

// hasRunLengths reports whether every point records its run lengths
// (reports written before the fields existed carry zeros).
func hasRunLengths(points []BenchResult) bool {
	for _, p := range points {
		if p.Warmup == 0 && p.Measure == 0 {
			return false
		}
	}
	return len(points) > 0
}

// WriteFile serializes the report to path (indented JSON, trailing
// newline, atomic-enough for a results file).
func (rep *BenchReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBenchReport reads a BENCH_*.json file.
func LoadBenchReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("sim: parsing %s: %w", path, err)
	}
	return &rep, nil
}
