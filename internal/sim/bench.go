package sim

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// This file is the performance-tracking half of the runner: a pinned
// workload set, a wall-clock harness measuring simulated cycles per
// second, and the BENCH_*.json report every PR appends to so the
// simulator's raw speed has a recorded trajectory (ROADMAP: "as fast as
// the hardware allows").

// BenchSchema tags the report layout; bump it when BenchReport changes
// incompatibly.
const BenchSchema = "bench-1"

// BenchPoint names one pinned measurement: a benchmark from the catalog
// simulated under one tracker scheme with the full optimization stack
// (ME + SMB + lazy reclaim) enabled, so the measurement exercises the
// rename/issue/writeback/commit hot path and the reference-counting
// machinery together.
type BenchPoint struct {
	Bench   string
	Tracker core.TrackerKind
	Warmup  uint64
	Measure uint64
}

// BenchResult is one executed BenchPoint.
type BenchResult struct {
	Bench        string  `json:"bench"`
	Tracker      string  `json:"tracker"`
	Cycles       uint64  `json:"cycles"`
	Committed    uint64  `json:"committed"`
	IPC          float64 `json:"ipc"`
	WallNS       int64   `json:"wall_ns"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
}

// BenchBaseline is an earlier report's aggregate, embedded so a report
// is self-contained evidence of a speedup (or regression).
type BenchBaseline struct {
	Label        string  `json:"label"`
	GMeanCPS     float64 `json:"gmean_cycles_per_sec"`
	TotalWallNS  int64   `json:"total_wall_ns"`
	GMeanWallNS  float64 `json:"gmean_wall_ns"`
	SchemaOfFile string  `json:"schema,omitempty"`
}

// BenchReport is the full BENCH_*.json payload.
type BenchReport struct {
	Schema      string        `json:"schema"`
	Label       string        `json:"label,omitempty"`
	GoVersion   string        `json:"go_version"`
	GOARCH      string        `json:"goarch"`
	NumCPU      int           `json:"num_cpu"`
	Quick       bool          `json:"quick"`
	Points      []BenchResult `json:"points"`
	TotalWallNS int64         `json:"total_wall_ns"`
	// GMeanWallNS is the geometric mean of per-point wall times.
	GMeanWallNS float64 `json:"gmean_wall_ns"`
	// GMeanCPS is the geometric mean of per-point simulated cycles/sec —
	// the headline number the acceptance criteria track.
	GMeanCPS float64 `json:"gmean_cycles_per_sec"`

	Baseline *BenchBaseline `json:"baseline,omitempty"`
	// SpeedupVsBaseline is GMeanCPS / Baseline.GMeanCPS when a baseline
	// is embedded.
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// benchConfig is the pinned machine configuration: Table 1 with the full
// optimization stack on, parameterized by tracker scheme only. Pinning it
// here (rather than taking a Config) keeps every PR's BENCH_*.json
// comparable.
func benchConfig(kind core.TrackerKind) core.Config {
	cfg := core.DefaultConfig()
	cfg.ME.Enabled = true
	cfg.SMB.Enabled = true
	cfg.SMB.BypassCommitted = true
	cfg.Tracker.Kind = kind
	return cfg
}

// BenchPoints returns the pinned workload set. quick selects the 3-point
// smoke subset CI runs on every push; the full set covers integer and FP
// benchmarks with diverse bottlenecks (move-rich, trap-rich, pointer
// chasing, streaming) under both the ISRB and the unlimited tracker.
func BenchPoints(quick bool) []BenchPoint {
	if quick {
		return []BenchPoint{
			{Bench: "gzip", Tracker: core.TrackerISRB, Warmup: 20_000, Measure: 100_000},
			{Bench: "crafty", Tracker: core.TrackerISRB, Warmup: 20_000, Measure: 100_000},
			{Bench: "wupwise", Tracker: core.TrackerISRB, Warmup: 20_000, Measure: 100_000},
		}
	}
	benches := []string{"gzip", "crafty", "hmmer", "mcf", "astar", "wupwise", "swim", "namd"}
	var pts []BenchPoint
	for _, b := range benches {
		for _, k := range []core.TrackerKind{core.TrackerISRB, core.TrackerUnlimited} {
			pts = append(pts, BenchPoint{Bench: b, Tracker: k, Warmup: 50_000, Measure: 300_000})
		}
	}
	return pts
}

// RunBench executes the pinned points sequentially on one goroutine (the
// measurement is wall-clock, so the harness must not share the machine
// with its own sibling runs) and aggregates the report. Canceling ctx
// aborts the current point mid-simulation and returns a typed
// ErrCanceled wrap. progress may be nil; otherwise it is invoked after
// each point.
func RunBench(ctx context.Context, points []BenchPoint, quick bool, progress func(BenchResult)) (*BenchReport, error) {
	rep := &BenchReport{
		Schema:    BenchSchema,
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Quick:     quick,
	}
	cps := make([]float64, 0, len(points))
	walls := make([]float64, 0, len(points))
	for _, pt := range points {
		spec, err := workloads.ByName(pt.Bench)
		if err != nil {
			return nil, fmt.Errorf("sim: %w %q", ErrUnknownBenchmark, pt.Bench)
		}
		prog := workloads.Build(spec)
		c := core.New(benchConfig(pt.Tracker), prog)
		start := time.Now()
		st, err := c.RunContext(ctx, pt.Warmup, pt.Measure)
		if err != nil {
			return nil, canceledErr(pt.Bench, err)
		}
		wall := time.Since(start)
		if wall <= 0 {
			wall = time.Nanosecond
		}
		res := BenchResult{
			Bench:        pt.Bench,
			Tracker:      string(pt.Tracker),
			Cycles:       st.Cycles,
			Committed:    st.Committed,
			IPC:          st.IPC(),
			WallNS:       wall.Nanoseconds(),
			CyclesPerSec: float64(st.Cycles) / wall.Seconds(),
		}
		rep.Points = append(rep.Points, res)
		rep.TotalWallNS += res.WallNS
		cps = append(cps, res.CyclesPerSec)
		walls = append(walls, float64(res.WallNS))
		if progress != nil {
			progress(res)
		}
	}
	rep.GMeanCPS = stats.GeoMean(cps)
	rep.GMeanWallNS = stats.GeoMean(walls)
	return rep, nil
}

// AttachBaseline embeds an earlier report's aggregates into rep and
// computes the speedup.
func (rep *BenchReport) AttachBaseline(base *BenchReport, label string) {
	rep.Baseline = &BenchBaseline{
		Label:        label,
		GMeanCPS:     base.GMeanCPS,
		TotalWallNS:  base.TotalWallNS,
		GMeanWallNS:  base.GMeanWallNS,
		SchemaOfFile: base.Schema,
	}
	if base.GMeanCPS > 0 {
		rep.SpeedupVsBaseline = rep.GMeanCPS / base.GMeanCPS
	}
}

// WriteFile serializes the report to path (indented JSON, trailing
// newline, atomic-enough for a results file).
func (rep *BenchReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBenchReport reads a BENCH_*.json file.
func LoadBenchReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("sim: parsing %s: %w", path, err)
	}
	return &rep, nil
}
