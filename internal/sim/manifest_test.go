package sim

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// putKeys writes one distinct result per key into s.
func putKeys(t *testing.T, s *Store, keys []string) {
	t.Helper()
	for _, k := range keys {
		if err := s.Put(bg, k, storeResult(k)); err != nil {
			t.Fatal(err)
		}
	}
}

// keyShard returns the shard directory name a key's entry lands in.
func keyShard(s *Store, key string) string {
	return filepath.Base(filepath.Dir(s.Path(key)))
}

// diffShards walks two manifests' trees from the root — the local mirror
// of the HTTP sync walk — and returns the disagreeing leaf shards.
func diffShards(t *testing.T, a, b *Manifest) map[string]bool {
	t.Helper()
	differ := map[string]bool{}
	var walk func(path string)
	walk = func(path string) {
		na, err := a.Node(path)
		if err != nil {
			t.Fatal(err)
		}
		nb, err := b.Node(path)
		if err != nil {
			t.Fatal(err)
		}
		if na.Hash == nb.Hash {
			return
		}
		if len(path) == ManifestHeight {
			differ[na.Shard] = true
			return
		}
		walk(path + "0")
		walk(path + "1")
	}
	walk("")
	return differ
}

// TestManifestEmptyStore: an empty (even nonexistent) store has a
// well-defined manifest — 256 empty-shard leaves — and it round-trips
// through DecodeManifest.
func TestManifestEmptyStore(t *testing.T) {
	s := NewStore(filepath.Join(t.TempDir(), "never-created"))
	m, err := s.Manifest(bg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Entries != 0 {
		t.Fatalf("empty store manifest counts %d entries", m.Entries)
	}
	for i, d := range m.Shards {
		if d != emptyShardDigest() {
			t.Fatalf("shard %d of an empty store has digest %q", i, d)
		}
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Root != m.Root {
		t.Fatalf("decode changed the root: %q vs %q", back.Root, m.Root)
	}
}

// TestManifestDeterministicAcrossStores: two stores holding the same
// results are byte-identical on disk and therefore share one root —
// the convergence property federation rests on.
func TestManifestDeterministicAcrossStores(t *testing.T) {
	keys := []string{"a-1", "b-2", "c-3", "d-4", "e-5"}
	s1 := NewStore(t.TempDir())
	s2 := NewStore(t.TempDir())
	putKeys(t, s1, keys)
	// Different insertion order must not matter.
	for i := len(keys) - 1; i >= 0; i-- {
		if err := s2.Put(bg, keys[i], storeResult(keys[i])); err != nil {
			t.Fatal(err)
		}
	}
	m1, err := s1.Manifest(bg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s2.Manifest(bg)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Root != m2.Root {
		t.Fatalf("same results, different roots:\n%q\n%q", m1.Root, m2.Root)
	}
	if m1.Entries != len(keys) || m2.Entries != len(keys) {
		t.Fatalf("entry counts %d/%d, want %d", m1.Entries, m2.Entries, len(keys))
	}
}

// TestManifestRootFlipsOnMutation: changing any single envelope's bytes
// flips its shard digest and the root; every other leaf is untouched.
// Each manifest is computed on a fresh Store handle: the mutation here
// rewrites a file in place, which no legitimate writer does (writes are
// temp+rename, which bumps the shard directory mtime the cache keys on).
func TestManifestRootFlipsOnMutation(t *testing.T) {
	s := NewStore(t.TempDir())
	keys := []string{"k-0", "k-1", "k-2", "k-3", "k-4", "k-5", "k-6", "k-7"}
	putKeys(t, s, keys)
	before, err := s.Manifest(bg)
	if err != nil {
		t.Fatal(err)
	}

	for _, key := range keys {
		path := s.Path(key)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Flip one byte in the envelope body.
		mutated := []byte(strings.Replace(string(data), `"schema"`, `"sChema"`, 1))
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		after, err := NewStore(s.Dir()).Manifest(bg)
		if err != nil {
			t.Fatal(err)
		}
		if after.Root == before.Root {
			t.Fatalf("mutating the entry for %q did not flip the root", key)
		}
		shard := keyShard(s, key)
		for i, d := range after.Shards {
			name := shardName(i)
			if name == shard {
				if d == before.Shards[i] {
					t.Fatalf("mutating %q did not flip its shard %s digest", key, shard)
				}
				continue
			}
			if d != before.Shards[i] {
				t.Fatalf("mutating %q in shard %s also flipped shard %s", key, shard, name)
			}
		}
		// Restore for the next iteration.
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	restored, err := NewStore(s.Dir()).Manifest(bg)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Root != before.Root {
		t.Fatal("restoring the original bytes did not restore the root")
	}
}

// TestManifestDiffFindsSymmetricDifference is the federation property
// test: over randomized two-host populations, the Merkle diff walk
// finds exactly the shards holding the symmetric difference of the two
// stores — never a shard both sides agree on, never missing one they
// do not.
func TestManifestDiffFindsSymmetricDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := range 10 {
		a := NewStore(t.TempDir())
		b := NewStore(t.TempDir())
		nCommon, nA, nB := rng.Intn(30), rng.Intn(12), rng.Intn(12)
		expect := map[string]bool{}
		for i := range nCommon {
			key := fmt.Sprintf("common-%d-%d", round, i)
			putKeys(t, a, []string{key})
			putKeys(t, b, []string{key})
		}
		for i := range nA {
			key := fmt.Sprintf("only-a-%d-%d", round, i)
			putKeys(t, a, []string{key})
			expect[keyShard(a, key)] = true
		}
		for i := range nB {
			key := fmt.Sprintf("only-b-%d-%d", round, i)
			putKeys(t, b, []string{key})
			expect[keyShard(b, key)] = true
		}
		// A shard can host both a common key and an only-X key; the diff
		// must still flag it (handled above: expect is keyed by shard).
		ma, err := a.Manifest(bg)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := b.Manifest(bg)
		if err != nil {
			t.Fatal(err)
		}
		got := diffShards(t, ma, mb)
		if len(got) != len(expect) {
			t.Fatalf("round %d: diff found shards %v, want %v", round, got, expect)
		}
		for shard := range expect {
			if !got[shard] {
				t.Fatalf("round %d: diff missed differing shard %s", round, shard)
			}
		}
		if (len(expect) == 0) != (ma.Root == mb.Root) {
			t.Fatalf("round %d: root equality %v disagrees with %d differing shards",
				round, ma.Root == mb.Root, len(expect))
		}
	}
}

// TestManifestNodeConsistency: every interior node's hash is the hash
// of its children, leaf hashes are the shard digests, and the empty
// path is the root — so a walk can trust any node it fetched.
func TestManifestNodeConsistency(t *testing.T) {
	s := NewStore(t.TempDir())
	putKeys(t, s, []string{"x-1", "y-2", "z-3"})
	m, err := s.Manifest(bg)
	if err != nil {
		t.Fatal(err)
	}
	root, err := m.Node("")
	if err != nil {
		t.Fatal(err)
	}
	if root.Hash != m.Root {
		t.Fatalf("Node(\"\") hash %q != manifest root %q", root.Hash, m.Root)
	}
	rng := rand.New(rand.NewSource(3))
	for range 200 {
		path := ""
		for range rng.Intn(ManifestHeight) {
			path += string('0' + byte(rng.Intn(2)))
		}
		n, err := m.Node(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(path) == ManifestHeight {
			continue
		}
		if len(n.Children) != 2 {
			t.Fatalf("interior node %q has %d children", path, len(n.Children))
		}
		if hashPair(n.Children[0], n.Children[1]) != n.Hash {
			t.Fatalf("node %q hash is not the hash of its children", path)
		}
		left, err := m.Node(path + "0")
		if err != nil {
			t.Fatal(err)
		}
		if left.Hash != n.Children[0] {
			t.Fatalf("node %q left child hash mismatch", path)
		}
	}
	for i, d := range m.Shards {
		path := fmt.Sprintf("%08b", i)
		leaf, err := m.Node(path)
		if err != nil {
			t.Fatal(err)
		}
		if leaf.Hash != d || leaf.Shard != shardName(i) {
			t.Fatalf("leaf %q = %+v, want shard %s digest %q", path, leaf, shardName(i), d)
		}
	}
	if _, err := m.Node("2"); err == nil {
		t.Fatal("Node accepted a non-binary path")
	}
	if _, err := m.Node(strings.Repeat("0", ManifestHeight+1)); err == nil {
		t.Fatal("Node accepted a path below the leaves")
	}
}

// TestManifestSeesExternalWrites: a long-lived Store handle must notice
// entries written to its directory by another process (here: another
// handle) — the situation a running regshared host is in while a sync
// pushes envelopes underneath it.
func TestManifestSeesExternalWrites(t *testing.T) {
	dir := t.TempDir()
	mine := NewStore(dir)
	putKeys(t, mine, []string{"warm-1", "warm-2"})
	before, err := mine.Manifest(bg)
	if err != nil {
		t.Fatal(err)
	}

	other := NewStore(dir)
	putKeys(t, other, []string{"external-1"})

	after, err := mine.Manifest(bg)
	if err != nil {
		t.Fatal(err)
	}
	if after.Root == before.Root {
		t.Fatal("manifest cache missed an external write")
	}
	if after.Entries != 3 {
		t.Fatalf("manifest counts %d entries after the external write, want 3", after.Entries)
	}
}

// TestPutRawValidation: PutRaw accepts only verbatim envelopes of this
// store's schema and simulator version, re-derives the entry name from
// the key itself, and stores the bytes unchanged — so synced stores
// converge to byte-equality and a peer cannot plant foreign entries.
func TestPutRawValidation(t *testing.T) {
	src := NewStore(t.TempDir())
	putKeys(t, src, []string{"donor-key"})
	donorName := strings.TrimSuffix(filepath.Base(src.Path("donor-key")), ".json")
	raw, err := src.ReadRaw(bg, donorName)
	if err != nil {
		t.Fatal(err)
	}

	dst := NewStore(t.TempDir())
	name, err := dst.PutRaw(bg, raw)
	if err != nil {
		t.Fatal(err)
	}
	if name != donorName {
		t.Fatalf("PutRaw stored under %q, want the key-derived name %q", name, donorName)
	}
	back, err := dst.ReadRaw(bg, name)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(raw) {
		t.Fatal("PutRaw did not store the envelope verbatim")
	}
	if res, ok := dst.Load(bg, "donor-key"); !ok || res.Bench != "donor-key" {
		t.Fatalf("synced entry not loadable: ok=%v res=%+v", ok, res)
	}
	ms, err := src.Manifest(bg)
	if err != nil {
		t.Fatal(err)
	}
	md, err := dst.Manifest(bg)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Root != md.Root {
		t.Fatal("a fully synced store does not share the donor's root")
	}

	reject := func(label string, data []byte) {
		t.Helper()
		if _, err := dst.PutRaw(bg, data); err == nil {
			t.Errorf("PutRaw accepted %s", label)
		}
	}
	reject("garbage bytes", []byte("not json"))
	reject("an empty object", []byte("{}"))
	reject("a foreign schema", []byte(strings.Replace(string(raw), storeSchema, "rs0", 1)))
	var e envelope
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatal(err)
	}
	e.SimVersion = "s1-deadbeef"
	foreign, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if e.SimVersion != cacheVersion() {
		reject("a foreign simulator version", foreign)
	}
	e.SimVersion = cacheVersion()
	e.Result = nil
	hollow, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	reject("an envelope with no result", hollow)
}

// FuzzDecodeManifest: DecodeManifest must never accept a manifest whose
// root disagrees with its leaves, and everything it does accept must be
// internally consistent and re-encodable.
func FuzzDecodeManifest(f *testing.F) {
	s := NewStore(f.TempDir())
	for _, k := range []string{"seed-a", "seed-b"} {
		if err := s.Put(bg, k, storeResult(k)); err != nil {
			f.Fatal(err)
		}
	}
	m, err := s.Manifest(bg)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := json.Marshal(m)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(""))
	f.Add([]byte("{}"))
	f.Add([]byte(`{"schema":"m1","height":8}`))
	f.Add([]byte(strings.Replace(string(valid), m.Root, strings.Repeat("0", 64), 1)))
	f.Add(valid[:len(valid)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err != nil {
			return
		}
		if m.Schema != ManifestSchema || m.Height != ManifestHeight || len(m.Shards) != ShardCount {
			t.Fatalf("DecodeManifest accepted a malformed manifest: %+v", m)
		}
		if root := merkleRoot(m.Shards); m.Root != root {
			t.Fatalf("DecodeManifest accepted root %q over leaves hashing to %q", m.Root, root)
		}
		if n, err := m.Node(""); err != nil || n.Hash != m.Root {
			t.Fatalf("accepted manifest's root node is broken: %+v, %v", n, err)
		}
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("accepted manifest does not re-encode: %v", err)
		}
		if _, err := DecodeManifest(out); err != nil {
			t.Fatalf("re-encoded manifest no longer decodes: %v", err)
		}
	})
}
