package sim

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestProgressFlushesFinalCompleteLine: the stream can end between
// refreshes, so Finish must redraw one final complete done/total line
// before terminating it — the terminal must never be left showing a
// stale partial count.
func TestProgressFlushesFinalCompleteLine(t *testing.T) {
	r := New()
	reqs := make([]Request, 3)
	for i := range reqs {
		reqs[i] = Request{Bench: "gzip", Warmup: uint64(100 + i), Measure: 2000}
		reqs[i].Config = core.DefaultConfig()
	}

	var buf bytes.Buffer
	p := NewProgress(&buf, r, len(reqs))
	p.tty = true // the writer is not a terminal; force the live line on

	if _, err := r.Stream(context.Background(), reqs, p.Observe); err != nil {
		t.Fatal(err)
	}
	p.Finish()

	out := buf.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("Finish did not terminate the live line: %q", out)
	}
	lines := strings.Split(out, "\r")
	last := strings.TrimSuffix(lines[len(lines)-1], "\n")
	if !strings.HasPrefix(last, "3/3 ") {
		t.Fatalf("final line is %q, want a complete 3/3 count", last)
	}

	// Finish on an already-finished (or never-drawn) line adds nothing.
	n := buf.Len()
	p.Finish()
	if buf.Len() != n {
		t.Fatal("second Finish wrote more output")
	}
}

// TestProgressNonTTYStaysSilent: counters are maintained but nothing is
// drawn when the writer is not a terminal.
func TestProgressNonTTYStaysSilent(t *testing.T) {
	r := New()
	var buf bytes.Buffer
	p := NewProgress(&buf, r, 1)
	req := Request{Bench: "gzip", Config: core.DefaultConfig(), Warmup: 100, Measure: 2000}
	if _, err := r.Stream(context.Background(), []Request{req}, p.Observe); err != nil {
		t.Fatal(err)
	}
	p.Finish()
	if buf.Len() != 0 {
		t.Fatalf("non-tty progress wrote %q", buf.String())
	}
	if !strings.HasPrefix(p.Summary(), "1 requests: 1 simulated") {
		t.Fatalf("summary = %q", p.Summary())
	}
}
