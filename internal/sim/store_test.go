package sim

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func storeResult(bench string) *Result {
	return &Result{Bench: bench, StaticUops: 1234, TrackerName: "isrb", IPC: 2.5}
}

// TestStoreRoundTrip: Put then Load returns the identical record, under
// the sharded path for the key.
func TestStoreRoundTrip(t *testing.T) {
	s := NewStore(t.TempDir())
	key := "crafty-1000-8000-0011223344556677"
	want := storeResult("crafty")
	if err := s.Put(bg, key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Load(bg, key)
	if !ok {
		t.Fatal("entry not found after Put")
	}
	if *got != *want {
		t.Fatalf("round-trip changed the result:\n got %+v\nwant %+v", got, want)
	}
	if s.Len() != 1 {
		t.Fatalf("store Len = %d, want 1", s.Len())
	}
}

// TestStoreShardFanOut: entries fan out into two-hex-character shard
// directories derived from the key digest, and the shard dir matches the
// file name prefix.
func TestStoreShardFanOut(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir)
	keys := []string{"a-1-2-x", "b-3-4-y", "c-5-6-z", "d-7-8-w"}
	for _, k := range keys {
		if err := s.Put(bg, k, storeResult(k)); err != nil {
			t.Fatal(err)
		}
	}
	files, err := filepath.Glob(filepath.Join(dir, "*", "*.json"))
	if err != nil || len(files) != len(keys) {
		t.Fatalf("files = %v, err = %v", files, err)
	}
	shards := map[string]bool{}
	for _, f := range files {
		shard := filepath.Base(filepath.Dir(f))
		if len(shard) != 2 {
			t.Fatalf("shard dir %q is not a two-character prefix", shard)
		}
		if !strings.HasPrefix(filepath.Base(f), shard) {
			t.Fatalf("file %q not in its digest-prefix shard %q", f, shard)
		}
		shards[shard] = true
	}
	if len(shards) < 2 {
		t.Fatalf("four keys landed in %d shard(s); digest fan-out broken", len(shards))
	}
	// No temp files may survive the atomic writes.
	leftovers, _ := filepath.Glob(filepath.Join(dir, "*", ".put*"))
	if len(leftovers) != 0 {
		t.Fatalf("temp files left behind: %v", leftovers)
	}
}

// TestStoreVersionedHeader: entries whose header does not match —
// another store schema, another simulator build, or another key — are
// misses, not stale hits.
func TestStoreVersionedHeader(t *testing.T) {
	s := NewStore(t.TempDir())
	key := "crafty-1-2-abc"
	if err := s.Put(bg, key, storeResult("crafty")); err != nil {
		t.Fatal(err)
	}

	tamper := func(mutate func(*envelope)) {
		t.Helper()
		data, err := os.ReadFile(s.Path(key))
		if err != nil {
			t.Fatal(err)
		}
		var e envelope
		if err := json.Unmarshal(data, &e); err != nil {
			t.Fatal(err)
		}
		mutate(&e)
		out, _ := json.Marshal(e)
		if err := os.WriteFile(s.Path(key), out, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	tamper(func(e *envelope) { e.Schema = "rs0" })
	if _, ok := s.Load(bg, key); ok {
		t.Fatal("foreign store schema served as a hit")
	}
	if err := s.Put(bg, key, storeResult("crafty")); err != nil {
		t.Fatal(err)
	}
	tamper(func(e *envelope) { e.SimVersion = "s1-someoldbuild" })
	if _, ok := s.Load(bg, key); ok {
		t.Fatal("foreign simulator version served as a hit")
	}
	if err := s.Put(bg, key, storeResult("crafty")); err != nil {
		t.Fatal(err)
	}
	tamper(func(e *envelope) { e.Key = "other-1-2-abc" })
	if _, ok := s.Load(bg, key); ok {
		t.Fatal("key mismatch (digest collision guard) served as a hit")
	}
}

// TestStoreSharedByRunners: WithStore lets two runners share one store
// instance; the second serves from disk without simulating.
func TestStoreSharedByRunners(t *testing.T) {
	s := NewStore(t.TempDir())
	r1 := New(WithStore(s))
	want := r1.MustRun(bg, quickReq("crafty"))
	r2 := New(WithStore(s))
	got := r2.MustRun(bg, quickReq("crafty"))
	if c := r2.Counters(); c.Simulated != 0 || c.DiskHits != 1 {
		t.Fatalf("second runner did not hit the shared store: %+v", c)
	}
	if *got != *want {
		t.Fatal("shared-store result differs")
	}
}
