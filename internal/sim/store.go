package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// storeSchema tags the on-disk envelope layout. Bump it when the envelope
// or Result shape changes incompatibly; entries with another schema are
// treated as misses and eventually overwritten.
const storeSchema = "rs1"

// Store is the sharded, content-addressed on-disk result store behind
// WithCacheDir. One store directory can be shared by many concurrent
// processes (and by grids of many thousands of cells):
//
//   - entries are addressed by the request's content — the file name is
//     the SHA-256 digest of the sim.Key, so identical requests from any
//     process land on the same file and distinct requests never collide;
//   - files fan out into 256 shard directories keyed by the digest's
//     first byte, keeping any single directory small even for very large
//     grids;
//   - writes go through a temp file + rename in the target shard, so a
//     reader never observes a partial entry;
//   - every entry carries a versioned header (store schema + simulator
//     identity + the full key); a mismatch on any of them is a miss, so
//     a long-lived store directory survives simulator rebuilds without
//     ever serving stale or foreign results.
type Store struct {
	dir string

	// Per-shard digest cache behind the Merkle manifest (manifest.go):
	// a shard's scan is reused as long as the shard directory's mtime
	// is unchanged, and local writes invalidate it eagerly.
	mu     sync.Mutex
	shards map[string]*shardCache
}

// shardCache is one shard's cached manifest state.
type shardCache struct {
	mtime   time.Time
	digest  string
	entries []ShardEntry
	valid   bool
}

// envelope is the on-disk entry format: a versioned header wrapped
// around the cached Result.
//
//repro:wire
type envelope struct {
	Schema     string  `json:"schema"`      // storeSchema at write time
	SimVersion string  `json:"sim_version"` // cacheVersion at write time
	Key        string  `json:"key"`         // full sim.Key (collision guard)
	Result     *Result `json:"result"`
}

// NewStore opens (lazily — no I/O happens until the first access) the
// store rooted at dir.
func NewStore(dir string) *Store {
	return &Store{dir: dir}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the entry path for key: <dir>/<shard>/<digest>.json where
// shard is the first byte of the key's SHA-256 digest.
func (s *Store) Path(key string) string {
	d := sha256.Sum256([]byte(key))
	digest := hex.EncodeToString(d[:])
	return filepath.Join(s.dir, digest[:2], digest+".json")
}

// Load returns the stored result for key, or false on any miss: absent
// entry, unreadable or partial JSON, or a header whose schema, simulator
// version or key does not match.
func (s *Store) Load(key string) (*Result, bool) {
	data, err := os.ReadFile(s.Path(key))
	if err != nil {
		return nil, false
	}
	var e envelope
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	if e.Schema != storeSchema || e.SimVersion != cacheVersion() || e.Key != key || e.Result == nil {
		return nil, false
	}
	return e.Result, true
}

// Put writes res under key atomically (temp file + rename inside the
// shard directory). Errors are returned for tests and diagnostics, but
// callers holding the in-memory result may ignore them: a failed cache
// write never affects correctness.
func (s *Store) Put(key string, res *Result) error {
	path := s.Path(key)
	data, err := json.MarshalIndent(envelope{
		Schema:     storeSchema,
		SimVersion: cacheVersion(),
		Key:        key,
		Result:     res,
	}, "", " ")
	if err != nil {
		return err
	}
	if err := s.writeEntry(path, data); err != nil {
		return err
	}
	s.invalidate(filepath.Base(filepath.Dir(path)))
	return nil
}

// writeEntry writes one entry file atomically: temp file + rename in
// the target shard directory, so a reader never observes a partial
// entry. Put and PutRaw share it, which keeps local and synced entries
// byte-equivalent on disk.
func (s *Store) writeEntry(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".put*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Len walks the store and returns the number of entries on disk,
// regardless of schema or simulator version. Intended for tests and
// diagnostics, not hot paths.
func (s *Store) Len() int {
	n := 0
	filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n
}
