package sim

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"path/filepath"
	"sync"

	"repro/internal/objstore"
)

// storeSchema tags the envelope layout. Bump it when the envelope
// or Result shape changes incompatibly; entries with another schema are
// treated as misses and eventually overwritten.
const storeSchema = "rs1"

// Store is the sharded, content-addressed result store behind the
// -store flag (and the deprecated WithCacheDir). It is a thin envelope-validation
// layer over a pluggable objstore.Backend — the local filesystem, an
// in-process map, or an s3/MinIO bucket shared by a whole fleet — and
// one store (or one shared bucket) can serve many concurrent processes
// and grids of many thousands of cells:
//
//   - entries are addressed by the request's content — the entry name is
//     the SHA-256 digest of the sim.Key, so identical requests from any
//     process land on the same entry and distinct requests never collide;
//   - entries fan out into 256 shards keyed by the digest's first byte,
//     keeping any single shard small even for very large grids;
//   - backends write atomically (temp+rename on fs, conditional PUT on
//     s3), so a reader never observes a partial entry;
//   - every entry carries a versioned header (store schema + simulator
//     identity + the full key); a mismatch on any of them is a miss, so
//     a long-lived store survives simulator rebuilds without ever
//     serving stale or foreign results.
//
// The envelope bytes are canonical (MarshalIndent of a fixed header
// plus the Result), so two stores holding the same results under the
// same simulator version are byte-identical across backends — which is
// what makes the Merkle manifest (manifest.go) comparable between an
// fs host and an s3 bucket.
type Store struct {
	backend objstore.Backend
	dir     string // fs root when filesystem-backed, "" otherwise

	// Per-shard digest cache behind the Merkle manifest (manifest.go):
	// a shard's scan is reused as long as the backend's generation
	// token for the shard is unchanged, and local writes invalidate it
	// eagerly. Backends without generations (s3) revalidate via List
	// and per-entry ETags instead.
	mu     sync.Mutex
	shards map[string]*shardCache
}

// shardCache is one shard's cached manifest state.
type shardCache struct {
	gen     string
	genOK   bool
	digest  string
	entries []ShardEntry
	// digests caches entry digests by name, validated by the ETag the
	// backend reported when the digest was computed — what lets a
	// hint-less backend (s3) skip per-entry fetches on rescan.
	digests map[string]entryDigest
	valid   bool
}

// entryDigest is one cached entry digest plus the ETag that validates
// it.
type entryDigest struct {
	etag   string
	digest string
}

// envelope is the stored entry format: a versioned header wrapped
// around the cached Result.
//
//repro:wire
type envelope struct {
	Schema     string  `json:"schema"`      // storeSchema at write time
	SimVersion string  `json:"sim_version"` // cacheVersion at write time
	Key        string  `json:"key"`         // full sim.Key (collision guard)
	Result     *Result `json:"result"`
}

// NewStore opens (lazily — no I/O happens until the first access) the
// filesystem-backed store rooted at dir.
func NewStore(dir string) *Store {
	return &Store{backend: objstore.Meter(objstore.NewFS(dir)), dir: dir}
}

// NewStoreWith wraps an existing backend in a Store.
func NewStoreWith(b objstore.Backend) *Store {
	s := &Store{backend: b}
	inner := b
	if m, ok := b.(*objstore.Metered); ok {
		inner = m.Backend
	}
	if f, ok := inner.(*objstore.FS); ok {
		s.dir = f.Root()
	}
	return s
}

// OpenStore builds a store from its -store spec (fs:DIR, mem:, or
// s3://bucket/prefix — see objstore.New). An empty spec returns a nil
// store and no error: storage off.
func OpenStore(spec string, opts ...objstore.Option) (*Store, error) {
	if spec == "" {
		return nil, nil
	}
	m, err := objstore.New(spec, opts...)
	if err != nil {
		return nil, err
	}
	return NewStoreWith(m), nil
}

// Spec describes the store's backend in -store spec form.
func (s *Store) Spec() string { return s.backend.String() }

// TierStats returns the backend's operation counters when the backend
// is metered (every Store built by NewStore / OpenStore is), or zeros.
func (s *Store) TierStats() objstore.TierStats {
	if m, ok := s.backend.(*objstore.Metered); ok {
		return m.Stats()
	}
	return objstore.TierStats{}
}

// Close releases the backend's resources.
func (s *Store) Close() error { return s.backend.Close() }

// Dir returns the store's root directory when it is filesystem-backed,
// "" otherwise.
func (s *Store) Dir() string { return s.dir }

// entryName returns the 64-hex entry name for key.
func entryName(key string) string {
	d := sha256.Sum256([]byte(key))
	return hex.EncodeToString(d[:])
}

// Path returns the entry path for key on a filesystem-backed store:
// <dir>/<shard>/<digest>.json where shard is the first byte of the
// key's SHA-256 digest. Only meaningful when Dir() is non-empty; tests
// use it to inspect and tamper with raw entries.
func (s *Store) Path(key string) string {
	name := entryName(key)
	return filepath.Join(s.dir, name[:2], name+".json")
}

// Load returns the stored result for key, or false on any miss: absent
// entry, unreadable or partial JSON, a backend error, or a header whose
// schema, simulator version or key does not match.
func (s *Store) Load(ctx context.Context, key string) (*Result, bool) {
	data, err := s.backend.Get(ctx, entryName(key))
	if err != nil {
		return nil, false
	}
	var e envelope
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	if e.Schema != storeSchema || e.SimVersion != cacheVersion() || e.Key != key || e.Result == nil {
		return nil, false
	}
	return e.Result, true
}

// Put writes res under key atomically, replacing any existing entry —
// an entry whose envelope header went stale (other schema or simulator
// version) must be rewritable in place. Errors are returned for tests
// and diagnostics, but callers holding the in-memory result may ignore
// them: a failed cache write never affects correctness.
func (s *Store) Put(ctx context.Context, key string, res *Result) error {
	data, err := json.MarshalIndent(envelope{
		Schema:     storeSchema,
		SimVersion: cacheVersion(),
		Key:        key,
		Result:     res,
	}, "", " ")
	if err != nil {
		return err
	}
	name := entryName(key)
	if err := s.backend.Put(ctx, name, data); err != nil {
		return err
	}
	s.invalidate(name[:2])
	return nil
}

// Len returns the number of entries in the store, regardless of schema
// or simulator version. Intended for tests and diagnostics, not hot
// paths, which is why it takes no context.
func (s *Store) Len() int {
	n := 0
	for i := 0; i < ShardCount; i++ {
		objs, err := s.backend.List(context.Background(), shardName(i))
		if err == nil {
			n += len(objs)
		}
	}
	return n
}
