// Package sim is the simulation runner every entry point shares: the
// experiment harness (internal/experiments), the sweep and figure
// commands (cmd/sweep, cmd/paperfigs), the single-run driver
// (cmd/regsim) and the public regshare API all obtain results through a
// Runner rather than driving internal/core directly.
//
// A Runner owns
//
//   - a bounded worker pool sized off runtime.GOMAXPROCS, so arbitrarily
//     wide fan-outs (a figure function asking for 36 benchmarks × 6
//     configurations at once) never oversubscribe the machine;
//   - request deduplication with singleflight semantics, keyed by
//     (benchmark, configuration, warmup, measure): concurrent callers
//     asking for the same run block on one simulation instead of
//     re-running it — e.g. every figure's speedup series shares one
//     baseline sweep;
//   - an in-memory result store (the simulator is deterministic, so a
//     result never goes stale) with an optional sharded on-disk store
//     (see Store) so separate invocations — and separate concurrent
//     processes sharing one -cachedir — reuse each other's runs.
package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sync"

	"repro/internal/core"
	"repro/internal/refcount"
	"repro/internal/workloads"
)

// Request names one simulation: a benchmark from the workload catalog, a
// full machine configuration and the run lengths.
type Request struct {
	Bench   string
	Config  core.Config
	Warmup  uint64
	Measure uint64
}

// MEStats snapshots the move-elimination counters of one run. It is the
// pure-value subset of moveelim.Eliminator (whose policy config would
// not survive the disk cache's JSON round-trip).
type MEStats struct {
	Candidates      uint64
	Eliminated      uint64
	TrackerRejected uint64
	SelfMoves       uint64
}

// MemStats summarizes the memory hierarchy counters of one run (the
// subset cmd/regsim -v reports).
type MemStats struct {
	L1DAccesses uint64
	L1DMisses   uint64
	L2Accesses  uint64
	L2Misses    uint64
	DRAMReads   uint64
}

// Result captures one simulation's outcome. It is a pure value — safe to
// share between callers and to round-trip through the disk cache — so it
// carries statistics snapshots, not the simulated core itself.
type Result struct {
	Bench       string
	StaticUops  int
	TrackerName string
	IPC         float64
	S           core.Stats
	Tracker     refcount.Stats
	ME          MEStats
	Mem         MemStats
}

// Counters reports what the Runner did, for tests and -v diagnostics.
type Counters struct {
	Simulated uint64 // runs actually executed
	MemHits   uint64 // served from the in-memory store (incl. singleflight waits)
	DiskHits  uint64 // served from the on-disk cache
}

// Option configures a Runner.
type Option func(*Runner)

// WithWorkers bounds the worker pool at n (default: GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(r *Runner) {
		if n > 0 {
			r.workers = n
		}
	}
}

// WithCacheDir enables the sharded on-disk result store under dir (see
// Store). An empty dir leaves the disk cache off.
func WithCacheDir(dir string) Option {
	return func(r *Runner) {
		if dir != "" {
			r.store = NewStore(dir)
		}
	}
}

// WithStore attaches an existing on-disk result store to the Runner.
func WithStore(s *Store) Option {
	return func(r *Runner) { r.store = s }
}

// Runner runs simulations with deduplication, caching and a bounded
// worker pool. The zero value is not usable; call New.
type Runner struct {
	workers int
	sem     chan struct{}
	store   *Store

	mu    sync.Mutex
	calls map[string]*call
	ctr   Counters
}

// call is one singleflight slot: the first requester simulates, everyone
// else blocks on done.
type call struct {
	done chan struct{}
	res  *Result
	err  error
}

// New builds a Runner.
func New(opts ...Option) *Runner {
	r := &Runner{
		workers: runtime.GOMAXPROCS(0),
		calls:   make(map[string]*call),
	}
	for _, o := range opts {
		o(r)
	}
	if r.workers < 1 {
		r.workers = 1
	}
	r.sem = make(chan struct{}, r.workers)
	return r
}

// cacheVersion tags disk-cache filenames with the simulator's identity,
// so a long-lived -cachedir is invalidated automatically when the
// simulator changes instead of silently serving stale results. A clean
// VCS build is tagged with its revision (stable across rebuilds of the
// same commit); anything else — go run, test binaries, dirty trees —
// falls back to a digest of the executable itself, which changes on
// every rebuild. The "s1" schema number covers Result layout changes.
var cacheVersion = sync.OnceValue(func() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev string
		dirty := false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" && !dirty {
			return "s1-" + rev[:min(12, len(rev))]
		}
	}
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			h := sha256.Sum256(data)
			return "s1-x" + hex.EncodeToString(h[:6])
		}
	}
	return "s1-unversioned"
})

// Key returns the deduplication key of req: the benchmark name, a digest
// of the full configuration (which is pure data, so its JSON encoding is
// deterministic) and the run lengths. The simulator version tag is NOT
// part of this key — in-memory results can never be stale — the on-disk
// Store instead records it in each entry's envelope header and treats a
// mismatch as a miss (see Store.Load).
func Key(req Request) string {
	cfg, err := json.Marshal(req.Config)
	if err != nil {
		panic(fmt.Sprintf("sim: config not encodable: %v", err))
	}
	h := sha256.Sum256(cfg)
	return fmt.Sprintf("%s-%d-%d-%s", req.Bench, req.Warmup, req.Measure, hex.EncodeToString(h[:8]))
}

// Counters returns a snapshot of the Runner's activity counters.
func (r *Runner) Counters() Counters {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ctr
}

// Run returns the result for req, simulating it at most once per Runner
// (and at most once per cache directory when the disk cache is enabled).
// Concurrent calls for the same request block on a single simulation.
// The returned Result is shared: callers must not mutate it.
func (r *Runner) Run(req Request) (*Result, error) {
	key := Key(req)

	r.mu.Lock()
	if c, ok := r.calls[key]; ok {
		r.ctr.MemHits++
		r.mu.Unlock()
		<-c.done
		return c.res, c.err
	}
	c := &call{done: make(chan struct{})}
	r.calls[key] = c
	r.mu.Unlock()

	c.res, c.err = r.fill(key, req)
	close(c.done)

	if c.err != nil {
		// Do not poison the store with failures: let a later caller retry.
		r.mu.Lock()
		delete(r.calls, key)
		r.mu.Unlock()
	}
	return c.res, c.err
}

// fill produces the result for key: disk cache first, then a worker slot
// and a real simulation (written back to the disk cache on the way out).
func (r *Runner) fill(key string, req Request) (*Result, error) {
	if res, ok := r.loadDisk(key); ok {
		r.mu.Lock()
		r.ctr.DiskHits++
		r.mu.Unlock()
		return res, nil
	}

	r.sem <- struct{}{}
	defer func() { <-r.sem }()

	res, err := simulate(req)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.ctr.Simulated++
	r.mu.Unlock()
	r.storeDisk(key, res)
	return res, nil
}

// MustRun is Run for harness code where a request error is a bug.
func (r *Runner) MustRun(req Request) *Result {
	res, err := r.Run(req)
	if err != nil {
		panic(fmt.Sprintf("sim: %v", err))
	}
	return res
}

// RunAll fans the requests out over the worker pool and returns results
// in request order. The first error (if any) is returned after all
// requests settle; successful entries are still filled in.
func (r *Runner) RunAll(reqs []Request) ([]*Result, error) {
	results := make([]*Result, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = r.Run(reqs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// MustRunAll is RunAll for harness code where a request error is a bug.
func (r *Runner) MustRunAll(reqs []Request) []*Result {
	results, err := r.RunAll(reqs)
	if err != nil {
		panic(fmt.Sprintf("sim: %v", err))
	}
	return results
}

// RunBenchmarks runs cfgFor(bench) for every benchmark in the workload
// catalog, preserving catalog order — the shape every figure sweep uses.
func (r *Runner) RunBenchmarks(warmup, measure uint64, cfgFor func(bench string) core.Config) []*Result {
	names := workloads.Names()
	reqs := make([]Request, len(names))
	for i, n := range names {
		reqs[i] = Request{Bench: n, Config: cfgFor(n), Warmup: warmup, Measure: measure}
	}
	return r.MustRunAll(reqs)
}

// simulate executes one run on a fresh core.
func simulate(req Request) (*Result, error) {
	spec, err := workloads.ByName(req.Bench)
	if err != nil {
		return nil, err
	}
	prog := workloads.Build(spec)
	c := core.New(req.Config, prog)
	st := c.Run(req.Warmup, req.Measure)
	return Snapshot(req.Bench, prog.NumInsts(), c, st), nil
}

// Snapshot packages a finished simulation into a Result. It is the one
// place the simulated core's statistics are flattened into the pure
// value form; callers that drive a core directly (cmd/regsim -trace)
// use it too, so the two paths cannot drift apart.
func Snapshot(bench string, staticUops int, c *core.Core, st *core.Stats) *Result {
	h := c.Mem()
	me := c.MoveElim()
	return &Result{
		Bench:       bench,
		StaticUops:  staticUops,
		TrackerName: c.Tracker().Name(),
		IPC:         st.IPC(),
		S:           *st,
		Tracker:     *c.Tracker().Stats(),
		ME: MEStats{
			Candidates:      me.Candidates,
			Eliminated:      me.Eliminated,
			TrackerRejected: me.TrackerRejected,
			SelfMoves:       me.SelfMoves,
		},
		Mem: MemStats{
			L1DAccesses: h.L1D.Accesses,
			L1DMisses:   h.L1D.Misses,
			L2Accesses:  h.L2.Accesses,
			L2Misses:    h.L2.Misses,
			DRAMReads:   h.Mem.Reads,
		},
	}
}

// --- on-disk cache ------------------------------------------------------

func (r *Runner) loadDisk(key string) (*Result, bool) {
	if r.store == nil {
		return nil, false
	}
	return r.store.Load(key)
}

// storeDisk writes res to the attached store, if any. Cache write
// failures are ignored: the in-memory result is already correct.
func (r *Runner) storeDisk(key string, res *Result) {
	if r.store != nil {
		r.store.Put(key, res)
	}
}
