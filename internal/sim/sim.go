// Package sim is the simulation runner every entry point shares: the
// experiment harness (internal/experiments), the sweep and figure
// commands (cmd/sweep, cmd/paperfigs), the single-run driver
// (cmd/regsim) and the public regshare API all obtain results through a
// Runner rather than driving internal/core directly.
//
// The API is context-first and streaming: Run(ctx, req) executes one
// request, Stream(ctx, reqs, sink) fans a batch out over the worker
// pool and delivers a completion Event — request key, provenance
// (simulated, in-memory, on-disk store), simulation speed — as each
// request settles. Cancellation reaches into the core cycle loop
// (core.RunContext checks the context every few thousand cycles), so a
// deadline or SIGINT aborts a long grid mid-simulation; errors carry
// the typed taxonomy of errors.go (ErrUnknownBenchmark, ErrBadConfig,
// ErrCanceled).
//
// A Runner owns
//
//   - a bounded worker pool sized off runtime.GOMAXPROCS, so arbitrarily
//     wide fan-outs (a figure function asking for 36 benchmarks × 6
//     configurations at once) never oversubscribe the machine;
//   - request deduplication with singleflight semantics, keyed by
//     (benchmark, configuration, warmup, measure): concurrent callers
//     asking for the same run block on one simulation instead of
//     re-running it — e.g. every figure's speedup series shares one
//     baseline sweep. A canceled leader does not poison the slot: the
//     failed call is dropped and surviving waiters retry it themselves;
//   - an in-memory result store (the simulator is deterministic, so a
//     result never goes stale) with an optional sharded on-disk store
//     (see Store) so separate invocations — and separate concurrent
//     processes or machines sharing one -store — reuse each other's
//     runs. Only
//     completed simulations are written back, so an interrupted run
//     never leaves partial entries.
package sim

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/refcount"
	"repro/internal/workloads"
)

// Request names one simulation: a workload name (a catalog benchmark or
// a gen: generator point — anything workloads.Resolve accepts), a full
// machine configuration and the run lengths. The Runner canonicalizes
// Bench before keying, so equivalent spellings of one generator point
// share a dedup slot and a store entry.
type Request struct {
	Bench   string
	Config  core.Config
	Warmup  uint64
	Measure uint64
}

// MEStats snapshots the move-elimination counters of one run. It is the
// pure-value subset of moveelim.Eliminator (whose policy config would
// not survive the disk cache's JSON round-trip).
type MEStats struct {
	Candidates      uint64
	Eliminated      uint64
	TrackerRejected uint64
	SelfMoves       uint64
}

// MemStats summarizes the memory hierarchy counters of one run (the
// subset cmd/regsim -v reports).
type MemStats struct {
	L1DAccesses uint64
	L1DMisses   uint64
	L2Accesses  uint64
	L2Misses    uint64
	DRAMReads   uint64
}

// Result captures one simulation's outcome. It is a pure value — safe to
// share between callers and to round-trip through the disk cache — so it
// carries statistics snapshots, not the simulated core itself.
type Result struct {
	Bench       string
	StaticUops  int
	TrackerName string
	IPC         float64
	S           core.Stats
	Tracker     refcount.Stats
	ME          MEStats
	Mem         MemStats
}

// Counters reports what the Runner did, for tests and -v diagnostics.
type Counters struct {
	Simulated uint64 // runs actually executed
	MemHits   uint64 // served from the in-memory store (incl. singleflight waits)
	DiskHits  uint64 // served from the on-disk cache
}

// Option configures a Runner.
type Option func(*Runner)

// Executor produces the result of one validated request. It is the
// Runner's pluggable execution backend: the default, Simulate, runs the
// request in-process on a fresh core; internal/dispatch substitutes a
// pool of crash-isolated worker subprocesses or a remote regshared
// service. Everything above the executor — validation, singleflight
// deduplication, the in-memory and on-disk stores, streaming events —
// is backend-independent, which is what makes results bit-identical
// across backends.
type Executor func(ctx context.Context, req Request) (*Result, error)

// WithExecutor replaces the Runner's execution backend (default:
// Simulate, in-process). A nil executor leaves the default in place.
func WithExecutor(e Executor) Option {
	return func(r *Runner) {
		if e != nil {
			r.exec = e
		}
	}
}

// WithWorkers bounds the worker pool at n (default: GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(r *Runner) {
		if n > 0 {
			r.workers = n
		}
	}
}

// WithCacheDir enables the filesystem-backed result store under dir
// (see Store). An empty dir leaves the store off.
//
// Deprecated: WithCacheDir predates the pluggable storage seam; new
// code should open a store from its -store spec (OpenStore / the
// internal/storeflag block) and pass it via WithStore.
func WithCacheDir(dir string) Option {
	return func(r *Runner) {
		if dir != "" {
			r.store = NewStore(dir)
		}
	}
}

// WithStore attaches an existing on-disk result store to the Runner.
func WithStore(s *Store) Option {
	return func(r *Runner) { r.store = s }
}

// Runner runs simulations with deduplication, caching and a bounded
// worker pool. The zero value is not usable; call New.
type Runner struct {
	workers int
	sem     chan struct{}
	store   *Store
	exec    Executor

	mu    sync.Mutex
	calls map[string]*call
	ctr   Counters
}

// call is one singleflight slot: the first requester simulates, everyone
// else blocks on done.
type call struct {
	done chan struct{}
	res  *Result
	err  error
	src  Source
	cps  float64
}

// Source is the provenance of a completed request: where its result
// came from.
type Source uint8

// Event provenance values.
const (
	// SourceSimulated: this call executed the simulation.
	SourceSimulated Source = iota
	// SourceMemory: served by the in-memory store — a singleflight join
	// with a concurrent caller, or a repeat of a completed request.
	SourceMemory
	// SourceStore: loaded from the sharded on-disk store.
	SourceStore
)

// String names the provenance for progress lines and logs.
func (s Source) String() string {
	switch s {
	case SourceSimulated:
		return "simulated"
	case SourceMemory:
		return "memory"
	case SourceStore:
		return "store"
	default:
		return fmt.Sprintf("source(%d)", uint8(s))
	}
}

// Event is one per-request completion notification from Stream: which
// request settled (Index into the request slice, plus its deduplication
// Key), its result or typed error, where the result came from, and —
// for freshly simulated requests — the simulation speed.
type Event struct {
	// Index is the request's position in the Stream call's slice (-1
	// for single-request Run paths).
	Index int
	// Key is the request's deduplication key (empty if the request
	// failed validation before keying).
	Key string
	// Req echoes the request.
	Req Request
	// Res is the completed result (nil when Err is set).
	Res *Result
	// Err is the request's typed error, if any (see errors.go).
	Err error
	// Source is the result's provenance.
	Source Source
	// CyclesPerSec is the simulated-cycles-per-wall-second rate of the
	// simulation that produced the result. In-memory joins carry the
	// original simulation's rate; results loaded from the on-disk store
	// report zero (the producing process is gone). Aggregate throughput
	// should therefore only sum events with Source == SourceSimulated
	// (as Progress does).
	CyclesPerSec float64
}

// New builds a Runner.
func New(opts ...Option) *Runner {
	r := &Runner{
		workers: runtime.GOMAXPROCS(0),
		calls:   make(map[string]*call),
		exec:    Simulate,
	}
	for _, o := range opts {
		o(r)
	}
	if r.workers < 1 {
		r.workers = 1
	}
	r.sem = make(chan struct{}, r.workers)
	return r
}

// cacheVersion tags disk-cache filenames with the simulator's identity,
// so a long-lived -store is invalidated automatically when the
// simulator changes instead of silently serving stale results. A clean
// VCS build is tagged with its revision (stable across rebuilds of the
// same commit); anything else — go run, test binaries, dirty trees —
// falls back to a digest of the executable itself, which changes on
// every rebuild. The "s1" schema number covers Result layout changes.
var cacheVersion = sync.OnceValue(func() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev string
		dirty := false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" && !dirty {
			return "s1-" + rev[:min(12, len(rev))]
		}
	}
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			h := sha256.Sum256(data)
			return "s1-x" + hex.EncodeToString(h[:6])
		}
	}
	return "s1-unversioned"
})

// Version returns the simulator identity tag recorded in every on-disk
// store envelope (see Store): entries written by a different simulator
// version are treated as misses. CI uses it as the cache key for the
// shared store directory (`sweep -simver` / `regshared -simver`), so a
// workflow cache is reused exactly as long as the store itself would
// serve its entries.
func Version() string { return cacheVersion() }

// Key returns the deduplication key of req: the benchmark name, a digest
// of the full configuration (which is pure data, so its JSON encoding is
// deterministic) and the run lengths. The simulator version tag is NOT
// part of this key — in-memory results can never be stale — the on-disk
// Store instead records it in each entry's envelope header and treats a
// mismatch as a miss (see Store.Load).
func Key(req Request) string {
	cfg, err := json.Marshal(req.Config)
	if err != nil {
		panic(fmt.Sprintf("sim: config not encodable: %v", err))
	}
	h := sha256.Sum256(cfg)
	return fmt.Sprintf("%s-%d-%d-%s", req.Bench, req.Warmup, req.Measure, hex.EncodeToString(h[:8]))
}

// Counters returns a snapshot of the Runner's activity counters.
func (r *Runner) Counters() Counters {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ctr
}

// Run returns the result for req, simulating it at most once per Runner
// (and at most once per cache directory when the disk cache is enabled).
// Concurrent calls for the same request block on a single simulation.
// Canceling ctx aborts the simulation mid-cycle-loop (and the wait, if
// this caller joined another caller's simulation); the error then wraps
// ErrCanceled and the context's own cause. The returned Result is
// shared: callers must not mutate it.
func (r *Runner) Run(ctx context.Context, req Request) (*Result, error) {
	ev := r.do(ctx, -1, req)
	return ev.Res, ev.Err
}

// do executes one request and packages the outcome as an Event. It is
// the single execution path under Run and Stream: validation, then the
// singleflight map, then fill. A caller that joins a leader which gets
// canceled — while its own context is still live — retries the request
// itself rather than inheriting the leader's cancellation, so one
// aborted Stream never fails an unrelated concurrent caller.
func (r *Runner) do(ctx context.Context, idx int, req Request) Event {
	// Canonicalize the workload name before anything keys on it, so the
	// many equivalent spellings of a gen: point share one singleflight
	// slot and one store entry. An invalid name passes through unchanged
	// for Validate to reject with the typed error.
	if name, err := workloads.CanonicalName(req.Bench); err == nil {
		req.Bench = name
	}
	ev := Event{Index: idx, Req: req}
	if err := req.Validate(); err != nil {
		ev.Err = err
		return ev
	}
	ev.Key = Key(req)
	for {
		r.mu.Lock()
		c, ok := r.calls[ev.Key]
		if !ok {
			c = &call{done: make(chan struct{})}
			r.calls[ev.Key] = c
			r.mu.Unlock()

			c.res, c.src, c.cps, c.err = r.fill(ctx, ev.Key, req)
			if c.err != nil {
				// Do not poison the slot with a failure (cancellation
				// included): drop it — before waking the waiters, so
				// their retries cannot rejoin the dead call — and let
				// any later caller re-run the request.
				r.mu.Lock()
				delete(r.calls, ev.Key)
				r.mu.Unlock()
			}
			close(c.done)
			ev.Res, ev.Source, ev.CyclesPerSec, ev.Err = c.res, c.src, c.cps, c.err
			return ev
		}
		r.mu.Unlock()

		select {
		case <-c.done:
		case <-ctx.Done():
			ev.Err = canceledErr(req.Bench, ctx.Err())
			return ev
		}
		if c.err != nil && errors.Is(c.err, ErrCanceled) && ctx.Err() == nil {
			continue // the leader was canceled, this caller was not: retry
		}
		// Count the hit only for a join that actually yields the call's
		// outcome — a retry after a canceled leader is not served from
		// memory, so it must not inflate the hit counters.
		r.mu.Lock()
		r.ctr.MemHits++
		r.mu.Unlock()
		ev.Res, ev.Err = c.res, c.err
		ev.Source, ev.CyclesPerSec = SourceMemory, c.cps
		return ev
	}
}

// fill produces the result for key: disk cache first, then a worker slot
// and a real simulation (written back to the disk cache on the way out).
// Cancellation is honored while queuing for a worker slot and, through
// core.RunContext, inside the simulation itself; only a completed
// simulation reaches the on-disk store.
func (r *Runner) fill(ctx context.Context, key string, req Request) (*Result, Source, float64, error) {
	if res, ok := r.loadDisk(ctx, key); ok {
		r.mu.Lock()
		r.ctr.DiskHits++
		r.mu.Unlock()
		return res, SourceStore, 0, nil
	}

	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, 0, 0, canceledErr(req.Bench, ctx.Err())
	}
	defer func() { <-r.sem }()

	start := time.Now() //repro:allow nodeterm -- wall-clock measurement metadata, not a simulated result
	res, err := r.exec(ctx, req)
	if err != nil {
		return nil, 0, 0, err
	}
	secs := time.Since(start).Seconds() //repro:allow nodeterm -- wall-clock measurement metadata, not a simulated result
	if secs <= 0 {
		// A sub-clock-resolution run must not produce a +Inf rate: it is
		// not JSON-encodable, which would drop the event from the
		// regshared NDJSON stream.
		secs = 1e-9
	}
	cps := float64(res.S.Cycles) / secs
	r.mu.Lock()
	r.ctr.Simulated++
	r.mu.Unlock()
	r.storeDisk(ctx, key, res)
	return res, SourceSimulated, cps, nil
}

// MustRun is Run for harness code where a request error is a bug. It
// panics with the typed error itself, so a recover at the top of a
// command can still distinguish cancellation (errors.Is ErrCanceled)
// from genuine bugs.
func (r *Runner) MustRun(ctx context.Context, req Request) *Result {
	res, err := r.Run(ctx, req)
	if err != nil {
		panic(err)
	}
	return res
}

// Stream fans the requests out over the worker pool and invokes sink —
// serialized, so sinks need no locking — with a completion Event as
// each request settles, in completion order. Results come back in
// request order. All requests settle before Stream returns; the
// returned error is the first non-cancellation error in request order,
// or the first cancellation error when the whole batch was interrupted.
// sink may be nil.
func (r *Runner) Stream(ctx context.Context, reqs []Request, sink func(Event)) ([]*Result, error) {
	results := make([]*Result, len(reqs))
	errs := make([]error, len(reqs))
	var sinkMu sync.Mutex
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ev := r.do(ctx, i, reqs[i])
			results[i], errs[i] = ev.Res, ev.Err
			if sink != nil {
				sinkMu.Lock()
				sink(ev)
				sinkMu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	var firstCanceled error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, ErrCanceled) {
			if firstCanceled == nil {
				firstCanceled = err
			}
			continue
		}
		return results, err
	}
	return results, firstCanceled
}

// RunAll is Stream without a sink: results in request order, first
// typed error after all requests settle.
func (r *Runner) RunAll(ctx context.Context, reqs []Request) ([]*Result, error) {
	return r.Stream(ctx, reqs, nil)
}

// MustRunAll is RunAll for harness code where a request error is a bug.
// Like MustRun, it panics with the typed error value itself.
func (r *Runner) MustRunAll(ctx context.Context, reqs []Request) []*Result {
	results, err := r.RunAll(ctx, reqs)
	if err != nil {
		panic(err)
	}
	return results
}

// RunBenchmarks runs cfgFor(bench) for every benchmark in the workload
// catalog, preserving catalog order — the shape every figure sweep
// uses. It streams per-benchmark completion events to sink (may be nil)
// and returns the first typed error instead of panicking, so a single
// bad configuration or a cancellation surfaces as a value the caller
// can inspect.
func (r *Runner) RunBenchmarks(ctx context.Context, warmup, measure uint64, cfgFor func(bench string) core.Config, sink func(Event)) ([]*Result, error) {
	members, _ := workloads.Members("all")
	reqs := make([]Request, len(members))
	for i, m := range members {
		reqs[i] = Request{Bench: m.Name, Config: cfgFor(m.Name), Warmup: warmup, Measure: measure}
	}
	return r.Stream(ctx, reqs, sink)
}

// Simulate is the in-process execution primitive: it validates req and
// runs it on a fresh core, with no deduplication, stores or worker
// pool. It is the Runner's default Executor, and what dispatch pool
// workers and the regshared service execute on their side of the wire.
func Simulate(ctx context.Context, req Request) (*Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return simulate(ctx, req)
}

// simulate executes one run on a fresh core. The request has already
// passed Validate, so lookup and construction cannot fail; the context
// is the one way out early, surfacing as a typed ErrCanceled wrap.
func simulate(ctx context.Context, req Request) (*Result, error) {
	spec, err := workloads.Resolve(req.Bench)
	if err != nil {
		return nil, fmt.Errorf("sim: %w %q", ErrUnknownBenchmark, req.Bench)
	}
	prog := workloads.Build(spec)
	c := core.New(req.Config, prog)
	st, err := c.RunContext(ctx, req.Warmup, req.Measure)
	if err != nil {
		return nil, canceledErr(req.Bench, err)
	}
	return Snapshot(req.Bench, prog.NumInsts(), c, st), nil
}

// Snapshot packages a finished simulation into a Result. It is the one
// place the simulated core's statistics are flattened into the pure
// value form; callers that drive a core directly (cmd/regsim -trace)
// use it too, so the two paths cannot drift apart.
func Snapshot(bench string, staticUops int, c *core.Core, st *core.Stats) *Result {
	h := c.Mem()
	me := c.MoveElim()
	return &Result{
		Bench:       bench,
		StaticUops:  staticUops,
		TrackerName: c.Tracker().Name(),
		IPC:         st.IPC(),
		S:           *st,
		Tracker:     *c.Tracker().Stats(),
		ME: MEStats{
			Candidates:      me.Candidates,
			Eliminated:      me.Eliminated,
			TrackerRejected: me.TrackerRejected,
			SelfMoves:       me.SelfMoves,
		},
		Mem: MemStats{
			L1DAccesses: h.L1D.Accesses,
			L1DMisses:   h.L1D.Misses,
			L2Accesses:  h.L2.Accesses,
			L2Misses:    h.L2.Misses,
			DRAMReads:   h.Mem.Reads,
		},
	}
}

// --- on-disk cache ------------------------------------------------------

func (r *Runner) loadDisk(ctx context.Context, key string) (*Result, bool) {
	if r.store == nil {
		return nil, false
	}
	return r.store.Load(ctx, key)
}

// storeDisk writes res to the attached store, if any. Cache write
// failures are ignored: the in-memory result is already correct. The
// write runs with the caller's cancellation stripped: the simulation
// already completed, and dropping its result because the requester
// went away would waste the work for every future requester.
func (r *Runner) storeDisk(ctx context.Context, key string, res *Result) {
	if r.store != nil {
		r.store.Put(context.WithoutCancel(ctx), key, res)
	}
}
