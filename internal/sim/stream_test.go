package sim

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// streamReqs builds n distinct quick requests (ISRB entry count varies)
// over one benchmark.
func streamReqs(n int) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		req := quickReq("crafty")
		req.Config.ME.Enabled = true
		req.Config.Tracker = core.TrackerConfig{Kind: core.TrackerISRB, Entries: i + 1, CounterBits: 3}
		reqs[i] = req
	}
	return reqs
}

// TestStreamEventsAndProvenance: every request yields exactly one event;
// fresh simulations are tagged SourceSimulated with a positive
// cycles/sec, repeats SourceMemory, and a new runner on the same store
// dir SourceStore.
func TestStreamEventsAndProvenance(t *testing.T) {
	dir := t.TempDir()
	r := New(WithCacheDir(dir))
	reqs := streamReqs(4)

	var events []Event
	results, err := r.Stream(bg, reqs, func(ev Event) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(reqs) {
		t.Fatalf("got %d events for %d requests", len(events), len(reqs))
	}
	seen := make(map[int]bool)
	for _, ev := range events {
		if ev.Err != nil {
			t.Fatalf("event %d carries error %v", ev.Index, ev.Err)
		}
		if seen[ev.Index] {
			t.Fatalf("request %d completed twice", ev.Index)
		}
		seen[ev.Index] = true
		if ev.Source != SourceSimulated {
			t.Fatalf("fresh request %d has provenance %v", ev.Index, ev.Source)
		}
		if ev.CyclesPerSec <= 0 {
			t.Fatalf("fresh request %d has cycles/sec %v", ev.Index, ev.CyclesPerSec)
		}
		if ev.Key != Key(ev.Req) {
			t.Fatalf("event key %q does not match its request", ev.Key)
		}
		if ev.Res != results[ev.Index] {
			t.Fatalf("event %d result differs from the returned slice", ev.Index)
		}
	}

	// Same runner again: in-memory provenance.
	_, err = r.Stream(bg, reqs, func(ev Event) {
		if ev.Source != SourceMemory {
			t.Errorf("repeat request %d has provenance %v, want memory", ev.Index, ev.Source)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// Fresh runner, same store dir: on-disk provenance.
	r2 := New(WithCacheDir(dir))
	_, err = r2.Stream(bg, reqs, func(ev Event) {
		if ev.Source != SourceStore {
			t.Errorf("stored request %d has provenance %v, want store", ev.Index, ev.Source)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestValidationTaxonomy: the same typed contract holds at the single
// entry point for every class of bad request.
func TestValidationTaxonomy(t *testing.T) {
	r := New()

	zero := quickReq("crafty")
	zero.Measure = 0
	if _, err := r.Run(bg, zero); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero measure: err = %v, want ErrBadConfig", err)
	}

	unsized := quickReq("crafty")
	unsized.Config.ROBSize = 0
	if _, err := r.Run(bg, unsized); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero ROB: err = %v, want ErrBadConfig", err)
	}

	badTracker := quickReq("crafty")
	badTracker.Config.Tracker.Kind = "no-such-scheme"
	if _, err := r.Run(bg, badTracker); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("unknown tracker: err = %v, want ErrBadConfig", err)
	}

	if _, err := r.Run(bg, quickReq("no-such-benchmark")); !errors.Is(err, ErrUnknownBenchmark) {
		t.Fatalf("unknown benchmark: err = %v, want ErrUnknownBenchmark", err)
	}

	// Nothing above should have simulated or poisoned anything.
	if c := r.Counters(); c.Simulated != 0 {
		t.Fatalf("invalid requests simulated: %+v", c)
	}
	if _, err := r.Run(bg, quickReq("crafty")); err != nil {
		t.Fatalf("valid request after invalid ones: %v", err)
	}
}

// TestRunBenchmarksReturnsTypedError: a bad configuration for one
// benchmark surfaces as a typed error value, not a panic, and the
// remaining benchmarks still settle.
func TestRunBenchmarksReturnsTypedError(t *testing.T) {
	r := New()
	results, err := r.RunBenchmarks(bg, 200, 2_000, func(bench string) core.Config {
		cfg := core.DefaultConfig()
		if bench == "gcc" {
			cfg.ROBSize = 0 // invalid for exactly one benchmark
		}
		return cfg
	}, nil)
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
	ok := 0
	for _, res := range results {
		if res != nil {
			ok++
		}
	}
	if ok != len(results)-1 {
		t.Fatalf("%d of %d benchmarks settled with results, want all but one", ok, len(results))
	}
}

// TestCanceledBeforeStart: an already-canceled context fails every
// request with the full cancellation taxonomy without simulating.
func TestCanceledBeforeStart(t *testing.T) {
	r := New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.Run(ctx, quickReq("crafty"))
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if _, err := r.Stream(ctx, streamReqs(3), nil); !errors.Is(err, ErrCanceled) {
		t.Fatalf("stream err = %v, want ErrCanceled", err)
	}
	if c := r.Counters(); c.Simulated != 0 {
		t.Fatalf("canceled context still simulated: %+v", c)
	}
}

// TestDeadlineExceededTaxonomy: a deadline surfaces through the same
// sentinel, still matching context.DeadlineExceeded.
func TestDeadlineExceededTaxonomy(t *testing.T) {
	r := New()
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	req := quickReq("crafty")
	req.Measure = 5_000_000 // far longer than the deadline allows
	_, err := r.Run(ctx, req)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.DeadlineExceeded", err)
	}
}

// TestCancelMidSimulationDoesNotPoisonStores: cancel while the cycle
// loop is running; the in-memory slot and the on-disk store must stay
// clean, and a fresh-context re-run must simulate and match an
// uninterrupted control run bit for bit.
func TestCancelMidSimulationDoesNotPoisonStores(t *testing.T) {
	dir := t.TempDir()
	r := New(WithCacheDir(dir))
	req := quickReq("crafty")
	req.Measure = 5_000_000 // long enough that the cancel lands mid-loop

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := r.Run(ctx, req)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	start := time.Now()
	cancel()
	err := <-done
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled (did the run finish before the cancel?)", err)
	}
	// "Stops within one progress interval": the abort must be prompt,
	// not deferred to the end of the measured region.
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("cancellation took %v", waited)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*", "*.json")); len(files) != 0 {
		t.Fatalf("canceled run left %d partial store entries: %v", len(files), files)
	}

	// The request is re-runnable on the same runner with a live context
	// and is bit-identical to an uninterrupted control run.
	short := req
	short.Measure = 8_000
	got, err := r.Run(bg, short)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New().Run(bg, short)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Fatalf("post-cancel re-run differs from control:\n got %+v\nwant %+v", got, want)
	}
}

// TestCanceledLeaderDoesNotFailLiveJoiner: caller A (canceled mid-run)
// is the singleflight leader; caller B joined with a live context and
// must get a real result — by retrying the simulation itself — not A's
// cancellation.
func TestCanceledLeaderDoesNotFailLiveJoiner(t *testing.T) {
	r := New()
	req := quickReq("crafty")
	req.Measure = 500_000

	ctxA, cancelA := context.WithCancel(context.Background())
	errA := make(chan error, 1)
	go func() {
		_, err := r.Run(ctxA, req)
		errA <- err
	}()
	// Let A become the leader, then join with B and cancel A.
	time.Sleep(20 * time.Millisecond)
	resB := make(chan error, 1)
	go func() {
		_, err := r.Run(context.Background(), req)
		resB <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancelA()

	if err := <-errA; !errors.Is(err, ErrCanceled) {
		// A may legitimately have finished first on a fast machine; in
		// that case B trivially succeeds and the test still holds.
		if err != nil {
			t.Fatalf("caller A: %v", err)
		}
	}
	if err := <-resB; err != nil {
		t.Fatalf("caller B inherited the leader's fate: %v", err)
	}
}

// TestConcurrentStreamsDedup: two Stream calls racing over the same
// request list must still simulate each distinct request exactly once
// (this is the -race singleflight check).
func TestConcurrentStreamsDedup(t *testing.T) {
	r := New()
	reqs := streamReqs(6)
	var wg sync.WaitGroup
	var mu sync.Mutex
	events := 0
	for caller := 0; caller < 4; caller++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results, err := r.Stream(bg, reqs, func(Event) {
				mu.Lock()
				events++
				mu.Unlock()
			})
			if err != nil {
				t.Errorf("stream: %v", err)
				return
			}
			for i, res := range results {
				if res == nil || res.Bench != reqs[i].Bench {
					t.Errorf("result %d malformed", i)
				}
			}
		}()
	}
	wg.Wait()
	if c := r.Counters(); c.Simulated != uint64(len(reqs)) {
		t.Fatalf("simulated %d, want %d (singleflight broke under concurrency)", c.Simulated, len(reqs))
	}
	if events != 4*len(reqs) {
		t.Fatalf("delivered %d events, want %d", events, 4*len(reqs))
	}
}
