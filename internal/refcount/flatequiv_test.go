package refcount

// Equivalence property test for the flat sparse-set Unlimited tracker:
// the old map[PhysReg]*entry representation is kept here as an executable
// reference model, and randomized share/commit/checkpoint/recovery
// programs must drive both implementations through identical observable
// behaviour (return values, tracked sets, freed sets, conservation).

import (
	"sort"
	"testing"

	"repro/internal/isa"
	"repro/internal/regfile"
	"repro/internal/rng"
)

// mapUnlimited is the pre-flattening Unlimited implementation (map-backed
// entries, map snapshots), preserved verbatim as the semantic oracle.
type mapUnlimited struct {
	m      map[regfile.PhysReg]*mapUnlEntry
	allocs uint64
	drops  uint64 // entries discarded without freeing a register
	frees  uint64 // commit-time + recovery frees
}

type mapUnlEntry struct {
	ref     uint32
	com     uint32
	archRef uint32
	gen     uint32
}

type mapUnlSnap struct {
	gen uint32
	ref uint32
}

type mapUnlimitedSnapshot map[regfile.PhysReg]mapUnlSnap

func newMapUnlimited() *mapUnlimited {
	return &mapUnlimited{m: make(map[regfile.PhysReg]*mapUnlEntry)}
}

func (u *mapUnlimited) tryShare(p regfile.PhysReg) {
	e := u.m[p]
	if e == nil {
		e = &mapUnlEntry{gen: uint32(u.allocs<<1 | 1)}
		u.m[p] = e
		u.allocs++
	}
	e.ref++
}

func (u *mapUnlimited) onCommitOverwrite(p regfile.PhysReg) bool {
	e := u.m[p]
	if e == nil {
		return true
	}
	if e.ref == e.com {
		delete(u.m, p)
		u.frees++
		return true
	}
	e.com++
	return false
}

func (u *mapUnlimited) onCommitShare(p regfile.PhysReg) {
	if e := u.m[p]; e != nil && e.archRef < e.ref {
		e.archRef++
	}
}

func (u *mapUnlimited) checkpoint() mapUnlimitedSnapshot {
	s := make(mapUnlimitedSnapshot, len(u.m))
	for p, e := range u.m {
		s[p] = mapUnlSnap{gen: e.gen, ref: e.ref}
	}
	return s
}

func (u *mapUnlimited) restore(snap mapUnlimitedSnapshot) []regfile.PhysReg {
	var freed []regfile.PhysReg
	for p, e := range u.m {
		ref := uint32(0)
		if sv, ok := snap[p]; ok && sv.gen == e.gen {
			ref = sv.ref
		}
		switch {
		case e.com > ref:
			delete(u.m, p)
			freed = append(freed, p)
			u.frees++
		case ref == 0 && e.com == 0:
			delete(u.m, p)
			u.drops++
		default:
			e.ref = ref
			if e.archRef > e.ref {
				e.archRef = e.ref
			}
		}
	}
	return freed
}

func (u *mapUnlimited) restoreToCommit() []regfile.PhysReg {
	var freed []regfile.PhysReg
	for p, e := range u.m {
		ref := e.archRef
		switch {
		case e.com > ref:
			delete(u.m, p)
			freed = append(freed, p)
			u.frees++
		case ref == 0 && e.com == 0:
			delete(u.m, p)
			u.drops++
		default:
			e.ref = ref
		}
	}
	return freed
}

func sortedRegs(ps []regfile.PhysReg) []regfile.PhysReg {
	out := append([]regfile.PhysReg(nil), ps...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameRegSet(a, b []regfile.PhysReg) bool {
	a, b = sortedRegs(a), sortedRegs(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestUnlimitedFlatMatchesMapModel drives the flat tracker and the map
// oracle through randomized programs with checkpoint recovery and
// flush-at-commit (trap-style) events, comparing every observable after
// every step.
func TestUnlimitedFlatMatchesMapModel(t *testing.T) {
	const nRegs = 48
	for seed := uint64(1); seed <= 40; seed++ {
		r := rng.New(seed)
		flat := NewUnlimited()
		model := newMapUnlimited()

		type ckptPair struct {
			flat Snapshot
			mod  mapUnlimitedSnapshot
		}
		var ckpts []ckptPair

		reg := func() regfile.PhysReg {
			return regfile.MakePhys(isa.RegClass(r.Intn(2)), r.Intn(nRegs))
		}
		for step := 0; step < 3000; step++ {
			switch op := r.Intn(100); {
			case op < 40: // share
				p := reg()
				flat.TryShare(p, KindME, isa.IntR(0), isa.IntR(1))
				model.tryShare(p)
			case op < 65: // commit-side overwrite
				p := reg()
				if got, want := flat.OnCommitOverwrite(p, isa.IntR(0)), model.onCommitOverwrite(p); got != want {
					t.Fatalf("seed %d step %d: OnCommitOverwrite(%v) = %v, model says %v", seed, step, p, got, want)
				}
			case op < 80: // a share's creator commits
				p := reg()
				flat.OnCommitShare(p)
				model.onCommitShare(p)
			case op < 90: // take a checkpoint
				ckpts = append(ckpts, ckptPair{flat: flat.Checkpoint(), mod: model.checkpoint()})
			case op < 97: // recover to a random live checkpoint (and discard younger ones)
				if len(ckpts) == 0 {
					continue
				}
				k := r.Intn(len(ckpts))
				gotFreed := flat.Restore(ckpts[k].flat)
				wantFreed := model.restore(ckpts[k].mod)
				if !sameRegSet(gotFreed, wantFreed) {
					t.Fatalf("seed %d step %d: Restore freed %v, model freed %v", seed, step, gotFreed, wantFreed)
				}
				for _, dead := range ckpts[k+1:] {
					flat.ReleaseSnapshot(dead.flat)
				}
				ckpts = ckpts[:k+1]
			default: // flush at commit
				gotFreed := flat.RestoreToCommit()
				wantFreed := model.restoreToCommit()
				if !sameRegSet(gotFreed, wantFreed) {
					t.Fatalf("seed %d step %d: RestoreToCommit freed %v, model freed %v", seed, step, gotFreed, wantFreed)
				}
				for _, dead := range ckpts {
					flat.ReleaseSnapshot(dead.flat)
				}
				ckpts = ckpts[:0]
			}

			// Observable equivalence after every step.
			if flat.TrackedCount() != len(model.m) {
				t.Fatalf("seed %d step %d: tracked %d, model %d", seed, step, flat.TrackedCount(), len(model.m))
			}
			for c := 0; c < 2; c++ {
				for i := 0; i < nRegs; i++ {
					p := regfile.MakePhys(isa.RegClass(c), i)
					_, inModel := model.m[p]
					if flat.IsShared(p) != inModel {
						t.Fatalf("seed %d step %d: IsShared(%v) = %v, model %v", seed, step, p, flat.IsShared(p), inModel)
					}
				}
			}
			// Conservation: every allocated entry is still live, was freed
			// (register released), or was dropped with its register covered
			// elsewhere — nothing leaks and nothing double-counts.
			if model.allocs-model.frees-model.drops != uint64(len(model.m)) {
				t.Fatalf("seed %d step %d: conservation broken: allocs=%d frees=%d drops=%d live=%d",
					seed, step, model.allocs, model.frees, model.drops, len(model.m))
			}
			if st := flat.Stats(); st.EntryAllocs != model.allocs {
				t.Fatalf("seed %d step %d: EntryAllocs %d, model %d", seed, step, st.EntryAllocs, model.allocs)
			}
		}
	}
}
