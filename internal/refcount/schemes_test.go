package refcount

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// --- MIT ----------------------------------------------------------------

func TestMITAcceptsMEOnly(t *testing.T) {
	m := NewMIT(8)
	if !m.TryShare(preg(1), KindME, isa.IntR(1), isa.IntR(0)) {
		t.Fatal("MIT rejected a move elimination share")
	}
	if m.TryShare(preg(2), KindSMB, isa.IntR(2), isa.NoReg) {
		t.Fatal("MIT accepted an SMB share (architectural-name tracking cannot, §4.2)")
	}
	if m.Stats().ShareFailsKind != 1 {
		t.Fatalf("ShareFailsKind = %d, want 1", m.Stats().ShareFailsKind)
	}
	if !m.IsShared(preg(1)) || m.IsShared(preg(2)) {
		t.Fatal("IsShared wrong after mixed shares")
	}
}

func TestMITFreeingSemantics(t *testing.T) {
	m := NewMIT(8)
	m.TryShare(preg(3), KindME, isa.IntR(1), isa.IntR(0))
	if m.OnCommitOverwrite(preg(3), isa.IntR(0)) {
		t.Fatal("freed after first of two overwrites")
	}
	if !m.OnCommitOverwrite(preg(3), isa.IntR(1)) {
		t.Fatal("not freed after the final overwrite")
	}
}

func TestMITCheckpointRestore(t *testing.T) {
	m := NewMIT(8)
	snap := m.Checkpoint()
	m.TryShare(preg(4), KindME, isa.IntR(1), isa.IntR(0))
	freed := m.Restore(snap)
	if len(freed) != 0 || m.IsShared(preg(4)) {
		t.Fatal("wrong-path-only ME share survived restore")
	}
	if m.SquashPenalty(100) != 1 {
		t.Fatal("MIT modelled as checkpointable must recover in one cycle")
	}
}

func TestMITStorageAccounting(t *testing.T) {
	m := NewMIT(16)
	st := m.Storage()
	// Per checkpoint: #arch_reg bits per entry (§4.2) = 32 × 16 = 512.
	if st.CheckpointBits != 16*2*isa.NumArchRegs {
		t.Fatalf("MIT checkpoint bits = %d, want %d", st.CheckpointBits, 16*2*isa.NumArchRegs)
	}
	// More checkpoint storage per entry than the ISRB's 3 bits.
	_, isrbCk := ISRBStorage(16, 3)
	if st.CheckpointBits <= isrbCk {
		t.Fatal("MIT checkpoint must exceed the ISRB's (the paper's §4.2 point)")
	}
	if !strings.HasPrefix(m.Name(), "MIT") {
		t.Fatalf("Name = %q", m.Name())
	}
}

// --- RDA ----------------------------------------------------------------

func TestRDACommitCheckpointTraffic(t *testing.T) {
	r := NewRDA(8)
	r.TryShare(preg(1), KindSMB, isa.IntR(1), isa.NoReg)
	r.NoteLiveCheckpoints(5)
	r.OnCommitOverwrite(preg(1), isa.IntR(0)) // decrement with 5 checkpoints live
	r.OnCommitShare(preg(1))                  // commit-side update too
	if r.CheckpointUpdateOps != 10 {
		t.Fatalf("CheckpointUpdateOps = %d, want 10 (2 ops × 5 checkpoints)", r.CheckpointUpdateOps)
	}
	r.NoteLiveCheckpoints(0)
	before := r.CheckpointUpdateOps
	r.OnCommitOverwrite(preg(1), isa.IntR(1))
	if r.CheckpointUpdateOps != before {
		t.Fatal("commit with zero checkpoints live still counted updates")
	}
}

func TestRDAUntrackedCommitsAreFree(t *testing.T) {
	r := NewRDA(8)
	r.NoteLiveCheckpoints(7)
	if !r.OnCommitOverwrite(preg(9), isa.IntR(0)) {
		t.Fatal("untracked register not freed")
	}
	if r.CheckpointUpdateOps != 0 {
		t.Fatal("untracked commit produced checkpoint updates")
	}
}

func TestRDACheckpointRestoreAndStorage(t *testing.T) {
	r := NewRDA(8)
	r.TryShare(preg(2), KindSMB, isa.IntR(1), isa.NoReg)
	snap := r.Checkpoint()
	r.TryShare(preg(2), KindSMB, isa.IntR(2), isa.NoReg)
	if freed := r.Restore(snap); len(freed) != 0 {
		t.Fatalf("restore freed %v", freed)
	}
	if !r.IsShared(preg(2)) {
		t.Fatal("pre-checkpoint share lost")
	}
	if r.SquashPenalty(50) != 1 {
		t.Fatal("RDA is checkpointable: one-cycle recovery")
	}
	st := r.Storage()
	if st.CPUBits <= 0 || st.CheckpointBits <= 0 {
		t.Fatal("RDA storage must be positive")
	}
	if freed := r.RestoreToCommit(); len(freed) != 0 {
		t.Fatalf("RestoreToCommit freed %v", freed)
	}
	if r.IsShared(preg(2)) {
		t.Fatal("speculative-only share survived commit-level restore")
	}
	if !strings.HasPrefix(r.Name(), "RDA") {
		t.Fatalf("Name = %q", r.Name())
	}
}

// --- per-register counters ----------------------------------------------

func TestPerRegCountersWalkPenalty(t *testing.T) {
	c := NewPerRegCounters(512, 2, 8)
	cases := []struct {
		n    int
		want uint64
	}{{0, 0}, {1, 1}, {8, 1}, {9, 2}, {191, 24}}
	for _, cs := range cases {
		if got := c.SquashPenalty(cs.n); got != cs.want {
			t.Errorf("SquashPenalty(%d) = %d, want %d", cs.n, got, cs.want)
		}
	}
	if c.Name() != "per-reg-counters" {
		t.Fatalf("Name = %q", c.Name())
	}
	st := c.Storage()
	if st.CPUBits != 512*2 {
		t.Fatalf("CPU bits = %d, want 1024", st.CPUBits)
	}
	if st.CheckpointBits != 0 {
		t.Fatal("per-register counters cannot be checkpointed (§4.2)")
	}
	if NewPerRegCounters(512, 2, 0).WalkWidth != 8 {
		t.Fatal("zero walk width must default to the commit width")
	}
}

// --- unlimited ----------------------------------------------------------

func TestUnlimitedTrackedCountAndName(t *testing.T) {
	u := NewUnlimited()
	if u.Name() != "unlimited" || u.TrackedCount() != 0 {
		t.Fatal("fresh tracker state wrong")
	}
	u.TryShare(preg(1), KindME, isa.IntR(1), isa.IntR(0))
	u.TryShare(preg(2), KindSMB, isa.IntR(2), isa.NoReg)
	if u.TrackedCount() != 2 {
		t.Fatalf("TrackedCount = %d", u.TrackedCount())
	}
	if u.Stats().SharesME != 1 || u.Stats().SharesSMB != 1 {
		t.Fatal("share kind accounting wrong")
	}
	if u.Storage().CPUBits <= 0 {
		t.Fatal("ideal tracker storage must be positive (the cost argument of §4.2)")
	}
}

func TestUnlimitedForeignSnapshotPanics(t *testing.T) {
	u := NewUnlimited()
	b := NewISRB(4, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign snapshot accepted")
		}
	}()
	u.Restore(b.Checkpoint())
}

func TestISRBForeignSnapshotPanics(t *testing.T) {
	b := NewISRB(4, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign snapshot accepted")
		}
	}()
	b.Restore(NewUnlimited().Checkpoint())
}

// --- storage calculators --------------------------------------------------

func TestStorageCalculators(t *testing.T) {
	cpu, ck := BattleMatrix(336, 4)
	if cpu != 336*4 || ck != cpu {
		t.Fatalf("BattleMatrix = %d/%d", cpu, ck)
	}
	if DDTStorage(1024, 5, 64) != 1024*69 {
		t.Fatal("DDTStorage arithmetic wrong")
	}
	if KB(8192*8) != 8 {
		t.Fatalf("KB(65536 bits) = %v", KB(8192*8))
	}
	if CountersCheckpointBits(336, 2) != 672 {
		t.Fatal("CountersCheckpointBits wrong")
	}
}

func TestNewISRBValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewISRB(0, 3) },
		func() { NewISRB(8, 0) },
		func() { NewISRB(8, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid ISRB parameters accepted")
				}
			}()
			f()
		}()
	}
}

func TestKindString(t *testing.T) {
	if KindME.String() != "ME" || KindSMB.String() != "SMB" {
		t.Fatal("Kind strings wrong")
	}
}
