package refcount

// PerRegCounters models the conventional scheme the paper argues against
// (§1, §4.2): one reference counter per physical register. Tracking is
// functionally unlimited, but the scheme cannot be checkpointed — a
// counter may have been decremented by a commit older than the checkpoint —
// so a pipeline flush must walk the squashed instructions sequentially
// (in chunks of the commit width) and decrement counters before the
// pipeline can restart.
//
// Functionally we reuse the ideal tracker's state (the end state of the
// sequential walk is exactly the restored state); the scheme's cost shows
// up in SquashPenalty, which delays the front-end restart after every
// flush, and in Storage.
type PerRegCounters struct {
	Unlimited
	// WalkWidth is how many squashed µops can be processed per recovery
	// cycle (the paper suggests "potentially by chunks").
	WalkWidth int
	// NumPhysRegs sizes the counter array for storage accounting.
	NumPhysRegs int
	// CounterBits is the per-register counter width.
	CounterBits int
}

// NewPerRegCounters builds the per-register counter scheme.
func NewPerRegCounters(numPhysRegs, counterBits, walkWidth int) *PerRegCounters {
	if walkWidth <= 0 {
		walkWidth = 8
	}
	return &PerRegCounters{
		Unlimited:   *NewUnlimited(),
		WalkWidth:   walkWidth,
		NumPhysRegs: numPhysRegs,
		CounterBits: counterBits,
	}
}

// Name implements Tracker.
func (c *PerRegCounters) Name() string { return "per-reg-counters" }

// SquashPenalty implements Tracker: the squashed window is walked
// sequentially, WalkWidth µops per cycle, before fetch may resume (§4.2:
// "the pipeline cannot restart immediately because the ROB has to be
// walked sequentially").
func (c *PerRegCounters) SquashPenalty(nSquashed int) uint64 {
	return uint64((nSquashed + c.WalkWidth - 1) / c.WalkWidth)
}

// Storage implements Tracker: one counter per physical register, no
// checkpoint storage (the scheme cannot be checkpointed; that is its
// problem).
func (c *PerRegCounters) Storage() StorageCost {
	return StorageCost{CPUBits: c.NumPhysRegs * c.CounterBits, CheckpointBits: 0}
}

var _ Tracker = (*PerRegCounters)(nil)
