package refcount

import (
	"repro/internal/isa"
	"repro/internal/regfile"
)

// Unlimited is the ideal reference-tracking scheme the paper compares
// against ("unlimited ISRB with 32-bit fields", §6.3): every physical
// register can be tracked, counters never saturate, and recovery is still
// checkpoint-based. It uses the same dual up-counter semantics as the ISRB.
type Unlimited struct {
	m     map[regfile.PhysReg]*unlEntry
	stats Stats
}

type unlEntry struct {
	ref     uint32
	com     uint32
	archRef uint32
	gen     uint32
}

type unlSnap struct {
	gen uint32
	ref uint32
}

type unlimitedSnapshot map[regfile.PhysReg]unlSnap

// NewUnlimited builds the ideal tracker.
func NewUnlimited() *Unlimited {
	return &Unlimited{m: make(map[regfile.PhysReg]*unlEntry)}
}

// Name implements Tracker.
func (u *Unlimited) Name() string { return "unlimited" }

// TryShare implements Tracker; it never fails.
func (u *Unlimited) TryShare(p regfile.PhysReg, kind Kind, dst, src isa.Reg) bool {
	e := u.m[p]
	if e == nil {
		e = &unlEntry{gen: uint32(u.stats.EntryAllocs<<1 | 1)}
		u.m[p] = e
		u.stats.EntryAllocs++
	}
	e.ref++
	if kind == KindME {
		u.stats.SharesME++
	} else {
		u.stats.SharesSMB++
	}
	return true
}

// OnCommitOverwrite implements Tracker.
func (u *Unlimited) OnCommitOverwrite(p regfile.PhysReg, arch isa.Reg) bool {
	u.stats.CommitChecks++
	e := u.m[p]
	if e == nil {
		return true
	}
	u.stats.CommitHits++
	if e.ref == e.com {
		delete(u.m, p)
		u.stats.Frees++
		return true
	}
	e.com++
	return false
}

// OnCommitShare implements Tracker.
func (u *Unlimited) OnCommitShare(p regfile.PhysReg) {
	if e := u.m[p]; e != nil && e.archRef < e.ref {
		e.archRef++
	}
}

// RestoreToCommit implements Tracker.
func (u *Unlimited) RestoreToCommit() []regfile.PhysReg {
	var freed []regfile.PhysReg
	for p, e := range u.m {
		ref := e.archRef
		switch {
		case e.com > ref:
			delete(u.m, p)
			freed = append(freed, p)
			u.stats.RecoveryFrees++
		case ref == 0 && e.com == 0:
			delete(u.m, p)
		default:
			e.ref = ref
		}
	}
	return freed
}

// IsShared implements Tracker.
func (u *Unlimited) IsShared(p regfile.PhysReg) bool {
	_, ok := u.m[p]
	return ok
}

// Checkpoint implements Tracker.
func (u *Unlimited) Checkpoint() Snapshot {
	s := make(unlimitedSnapshot, len(u.m))
	for p, e := range u.m {
		s[p] = unlSnap{gen: e.gen, ref: e.ref}
	}
	return s
}

// Restore implements Tracker with the same recovery rules as the ISRB.
func (u *Unlimited) Restore(s Snapshot) []regfile.PhysReg {
	snap, ok := s.(unlimitedSnapshot)
	if !ok {
		panic("refcount: foreign snapshot passed to Unlimited.Restore")
	}
	u.stats.Restores++
	var freed []regfile.PhysReg
	for p, e := range u.m {
		ref := uint32(0)
		if sv, ok := snap[p]; ok && sv.gen == e.gen {
			ref = sv.ref
		}
		switch {
		case e.com > ref:
			delete(u.m, p)
			freed = append(freed, p)
			u.stats.RecoveryFrees++
		case ref == 0 && e.com == 0:
			delete(u.m, p)
		default:
			e.ref = ref
			if e.archRef > e.ref {
				e.archRef = e.ref
			}
		}
	}
	return freed
}

// SquashPenalty implements Tracker.
func (u *Unlimited) SquashPenalty(int) uint64 { return 1 }

// Storage implements Tracker. The ideal scheme needs a 32-bit pair for
// every physical register plus the same per checkpoint — the storage blow-
// up the paper argues against (§4.2).
func (u *Unlimited) Storage() StorageCost {
	const numPhys = 2 * 256
	return StorageCost{
		CPUBits:        numPhys * 64,
		CheckpointBits: numPhys * 32,
	}
}

// Stats implements Tracker.
func (u *Unlimited) Stats() *Stats { return &u.stats }

// TrackedCount returns the number of currently tracked registers.
func (u *Unlimited) TrackedCount() int { return len(u.m) }

var _ Tracker = (*Unlimited)(nil)
