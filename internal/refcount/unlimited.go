package refcount

import (
	"repro/internal/isa"
	"repro/internal/regfile"
)

// Unlimited is the ideal reference-tracking scheme the paper compares
// against ("unlimited ISRB with 32-bit fields", §6.3): every physical
// register can be tracked, counters never saturate, and recovery is still
// checkpoint-based. It uses the same dual up-counter semantics as the ISRB.
//
// Storage is a sparse set over flat per-class slices indexed by physical
// register: entry lookup is an array index (the rename/commit hot path
// probes it every cycle), and the dense `tracked` list makes checkpoints
// and recovery walks proportional to the number of tracked registers, not
// the register file size. The old map-backed representation allocated an
// entry per first share and a map per checkpoint; this one allocates only
// when the register file grows past what it has seen (never in steady
// state).
type Unlimited struct {
	entries [2][]unlEntry
	tracked []regfile.PhysReg
	stats   Stats

	snapPool []*unlimitedSnapshot
	freed    []regfile.PhysReg // scratch returned by Restore/RestoreToCommit

	// Restore scratch: snapshot values spread per register, validated by
	// an epoch stamp so the slices never need clearing.
	scratch      [2][]unlScratch
	scratchEpoch uint32
}

type unlEntry struct {
	ref     uint32
	com     uint32
	archRef uint32
	gen     uint32
	pos     int32 // index into tracked; -1 when untracked
}

type unlScratch struct {
	epoch uint32
	gen   uint32
	ref   uint32
}

type unlSnap struct {
	p   regfile.PhysReg
	gen uint32
	ref uint32
}

// unlimitedSnapshot is handed out behind a pointer: storing a bare slice
// in the Snapshot interface would heap-box its header on every
// checkpoint, defeating the snapshot pool.
type unlimitedSnapshot struct {
	regs []unlSnap
}

// NewUnlimited builds the ideal tracker.
func NewUnlimited() *Unlimited {
	return &Unlimited{}
}

// Name implements Tracker.
func (u *Unlimited) Name() string { return "unlimited" }

// entry returns the slot for p, growing the class slice on first contact
// with a register index (amortized; steady-state lookups never grow).
func (u *Unlimited) entry(p regfile.PhysReg) *unlEntry {
	c, idx := p.Class(), p.Index()
	s := u.entries[c]
	for len(s) <= idx {
		s = append(s, unlEntry{pos: -1})
	}
	u.entries[c] = s
	return &s[idx]
}

// peek returns the slot for p without growing, nil if never seen.
func (u *Unlimited) peek(p regfile.PhysReg) *unlEntry {
	c, idx := p.Class(), p.Index()
	if idx >= len(u.entries[c]) {
		return nil
	}
	return &u.entries[c][idx]
}

func (u *Unlimited) untrack(e *unlEntry) {
	last := len(u.tracked) - 1
	moved := u.tracked[last]
	u.tracked[e.pos] = moved
	u.entries[moved.Class()][moved.Index()].pos = e.pos
	u.tracked = u.tracked[:last]
	e.pos = -1
}

// TryShare implements Tracker; it never fails.
func (u *Unlimited) TryShare(p regfile.PhysReg, kind Kind, dst, src isa.Reg) bool {
	e := u.entry(p)
	if e.pos < 0 {
		e.gen++
		e.ref, e.com, e.archRef = 0, 0, 0
		e.pos = int32(len(u.tracked))
		u.tracked = append(u.tracked, p)
		u.stats.EntryAllocs++
	}
	e.ref++
	if kind == KindME {
		u.stats.SharesME++
	} else {
		u.stats.SharesSMB++
	}
	return true
}

// OnCommitOverwrite implements Tracker.
func (u *Unlimited) OnCommitOverwrite(p regfile.PhysReg, arch isa.Reg) bool {
	u.stats.CommitChecks++
	e := u.peek(p)
	if e == nil || e.pos < 0 {
		return true
	}
	u.stats.CommitHits++
	if e.ref == e.com {
		u.untrack(e)
		u.stats.Frees++
		return true
	}
	e.com++
	return false
}

// OnCommitShare implements Tracker.
func (u *Unlimited) OnCommitShare(p regfile.PhysReg) {
	if e := u.peek(p); e != nil && e.pos >= 0 && e.archRef < e.ref {
		e.archRef++
	}
}

// RestoreToCommit implements Tracker. The returned slice is scratch owned
// by the tracker, valid until the next Restore/RestoreToCommit call.
func (u *Unlimited) RestoreToCommit() []regfile.PhysReg {
	u.freed = u.freed[:0]
	for i := len(u.tracked) - 1; i >= 0; i-- {
		p := u.tracked[i]
		e := u.peek(p)
		ref := e.archRef
		switch {
		case e.com > ref:
			u.untrack(e)
			u.freed = append(u.freed, p)
			u.stats.RecoveryFrees++
		case ref == 0 && e.com == 0:
			u.untrack(e)
		default:
			e.ref = ref
		}
	}
	return u.freed
}

// IsShared implements Tracker.
func (u *Unlimited) IsShared(p regfile.PhysReg) bool {
	e := u.peek(p)
	return e != nil && e.pos >= 0
}

// Checkpoint implements Tracker. Snapshots are immutable once taken;
// released ones (ReleaseSnapshot) are pooled for reuse, so steady-state
// checkpointing performs no allocation.
func (u *Unlimited) Checkpoint() Snapshot {
	var s *unlimitedSnapshot
	if n := len(u.snapPool); n > 0 {
		s = u.snapPool[n-1]
		s.regs = s.regs[:0]
		u.snapPool = u.snapPool[:n-1]
	} else {
		s = &unlimitedSnapshot{regs: make([]unlSnap, 0, len(u.tracked))}
	}
	for _, p := range u.tracked {
		e := u.peek(p)
		s.regs = append(s.regs, unlSnap{p: p, gen: e.gen, ref: e.ref})
	}
	return s
}

// ReleaseSnapshot implements Tracker, returning a snapshot's storage to
// the pool.
func (u *Unlimited) ReleaseSnapshot(s Snapshot) {
	if snap, ok := s.(*unlimitedSnapshot); ok {
		u.snapPool = append(u.snapPool, snap)
	}
}

// Restore implements Tracker with the same recovery rules as the ISRB.
// The returned slice is scratch owned by the tracker, valid until the
// next Restore/RestoreToCommit call.
func (u *Unlimited) Restore(s Snapshot) []regfile.PhysReg {
	snap, ok := s.(*unlimitedSnapshot)
	if !ok {
		panic("refcount: foreign snapshot passed to Unlimited.Restore")
	}
	u.stats.Restores++

	// Spread the snapshot into the per-register scratch so the walk over
	// currently-tracked registers is O(1) per lookup.
	u.scratchEpoch++
	for _, sv := range snap.regs {
		c, idx := sv.p.Class(), sv.p.Index()
		sc := u.scratch[c]
		for len(sc) <= idx {
			sc = append(sc, unlScratch{})
		}
		u.scratch[c] = sc
		sc[idx] = unlScratch{epoch: u.scratchEpoch, gen: sv.gen, ref: sv.ref}
	}

	u.freed = u.freed[:0]
	for i := len(u.tracked) - 1; i >= 0; i-- {
		p := u.tracked[i]
		e := u.peek(p)
		ref := uint32(0)
		c, idx := p.Class(), p.Index()
		if idx < len(u.scratch[c]) {
			if sc := &u.scratch[c][idx]; sc.epoch == u.scratchEpoch && sc.gen == e.gen {
				ref = sc.ref
			}
		}
		switch {
		case e.com > ref:
			u.untrack(e)
			u.freed = append(u.freed, p)
			u.stats.RecoveryFrees++
		case ref == 0 && e.com == 0:
			u.untrack(e)
		default:
			e.ref = ref
			if e.archRef > e.ref {
				e.archRef = e.ref
			}
		}
	}
	return u.freed
}

// SquashPenalty implements Tracker.
func (u *Unlimited) SquashPenalty(int) uint64 { return 1 }

// Storage implements Tracker. The ideal scheme needs a 32-bit pair for
// every physical register plus the same per checkpoint — the storage blow-
// up the paper argues against (§4.2).
func (u *Unlimited) Storage() StorageCost {
	const numPhys = 2 * 256
	return StorageCost{
		CPUBits:        numPhys * 64,
		CheckpointBits: numPhys * 32,
	}
}

// Stats implements Tracker.
func (u *Unlimited) Stats() *Stats { return &u.stats }

// TrackedCount returns the number of currently tracked registers.
func (u *Unlimited) TrackedCount() int { return len(u.tracked) }

var _ Tracker = (*Unlimited)(nil)
