package refcount

// This file reproduces the paper's storage arithmetic (§4.2, §4.3.3) in
// closed form so cmd/storagecost and the benchmark harness can print the
// exact comparisons the paper makes.

// MatrixScheme computes the storage of Roth's 2D reference matrix (§4.2):
// one bit per (ROB entry, physical register) pair, for both register
// classes. For a Haswell-sized machine (192-entry ROB, 168+168 registers)
// this is 2×192×168 bits ≈ 7.8KB.
func MatrixScheme(robEntries, physPerClass, classes int) int {
	return classes * robEntries * physPerClass
}

// SchedulerMatrix computes the baseline matrix-scheduler storage the paper
// contrasts against (0.44KB for a Haswell-sized 60-entry scheduler):
// IQ entries × IQ entries bits.
func SchedulerMatrix(iqEntries int) int {
	return iqEntries * iqEntries
}

// BattleMatrix computes Battle et al.'s reduced matrix (§4.2):
// #preg × max_sharers bits, checkpointed in full.
func BattleMatrix(physRegs, maxSharers int) (cpuBits, checkpointBits int) {
	bits := physRegs * maxSharers
	return bits, bits
}

// ISRBStorage returns the paper's ISRB accounting for a given entry count
// and counter width: entries × (8b tag + valid + 2 counters) CPU bits and
// entries × counterBits checkpoint bits. ISRBStorage(32, 3) = (480, 96),
// the numbers in §6.3 and the abstract.
func ISRBStorage(entries, counterBits int) (cpuBits, checkpointBits int) {
	return entries * (8 + 1 + 2*counterBits), entries * counterBits
}

// RenameMapCheckpointBits is the paper's reference point for checkpoint
// cost (§4.3.3): saving the x86_64 rename map requires at least
// (16 GPRs + 16 SIMD) × 8-bit identifiers = 256 bits.
func RenameMapCheckpointBits() int { return (16 + 16) * 8 }

// CountersCheckpointBits is the storage a checkpoint would need to make
// per-register counters recoverable (§4.2): a few bits for every physical
// register of the machine (336 for Haswell ⇒ 600+ bits at 2 bits each).
func CountersCheckpointBits(physRegs, bitsPerReg int) int {
	return physRegs * bitsPerReg
}

// DDTStorage computes the Data Dependency Table cost (§3.1): entries ×
// (payload + tag). The paper's "base" design point is a 16K-entry DDT with
// 14b tags holding 64-bit virtual addresses (≈156KB); the optimized one is
// 1K entries with 5b tags (≈8.6KB).
func DDTStorage(entries, tagBits, payloadBits int) int {
	return entries * (tagBits + payloadBits)
}

// KB converts bits to kilobytes (1024 bytes).
func KB(bits int) float64 { return float64(bits) / 8 / 1024 }
