package refcount

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/regfile"
)

// MIT models Intel's Multiple Instantiation Table (Raikin et al. patent,
// §4.2): a small fully-associative structure allocated on move
// elimination, conceptually holding one bit per architectural register.
// Because its tracking is keyed on architectural names, it fundamentally
// cannot support SMB — the store's source architectural register may
// already be re-renamed when the load is renamed — so TryShare rejects
// KindSMB, which is the capability gap the paper highlights.
//
// The patent leaves misprediction recovery under-specified; to keep the
// comparison about *eligibility and storage* rather than about a recovery
// scheme Intel never published, the MIT here reuses the ISRB's provably
// correct dual-counter recovery while reporting MIT-style storage: each
// checkpoint must hold the full per-entry architectural bit-vector
// (#arch_reg bits per entry, vs. the ISRB's n-bit referenced counter).
type MIT struct {
	inner ISRB
}

// NewMIT builds a MIT with the given number of entries (the patent
// suggests around 8).
func NewMIT(entries int) *MIT {
	return &MIT{inner: *NewISRB(entries, 4)}
}

// Name implements Tracker.
func (m *MIT) Name() string { return fmt.Sprintf("MIT-%d", m.inner.NumEntries()) }

// TryShare implements Tracker; SMB shares are rejected by construction.
func (m *MIT) TryShare(p regfile.PhysReg, kind Kind, dst, src isa.Reg) bool {
	if kind == KindSMB {
		m.inner.stats.ShareFailsKind++
		return false
	}
	return m.inner.TryShare(p, kind, dst, src)
}

// OnCommitOverwrite implements Tracker.
func (m *MIT) OnCommitOverwrite(p regfile.PhysReg, arch isa.Reg) bool {
	return m.inner.OnCommitOverwrite(p, arch)
}

// OnCommitShare implements Tracker.
func (m *MIT) OnCommitShare(p regfile.PhysReg) { m.inner.OnCommitShare(p) }

// RestoreToCommit implements Tracker.
func (m *MIT) RestoreToCommit() []regfile.PhysReg { return m.inner.RestoreToCommit() }

// IsShared implements Tracker.
func (m *MIT) IsShared(p regfile.PhysReg) bool { return m.inner.IsShared(p) }

// Checkpoint implements Tracker.
func (m *MIT) Checkpoint() Snapshot { return m.inner.Checkpoint() }

// ReleaseSnapshot implements Tracker.
func (m *MIT) ReleaseSnapshot(s Snapshot) { m.inner.ReleaseSnapshot(s) }

// Restore implements Tracker.
func (m *MIT) Restore(s Snapshot) []regfile.PhysReg { return m.inner.Restore(s) }

// SquashPenalty implements Tracker.
func (m *MIT) SquashPenalty(n int) uint64 { return m.inner.SquashPenalty(n) }

// Storage implements Tracker with the patent's accounting: per entry an
// 8-bit physical register tag, a valid bit and one bit per architectural
// register (2×16 for x86_64); per checkpoint the full bit-vector per entry
// (§4.2: "it requires more checkpoint storage per entry than the scheme we
// propose (#arch_reg bits per entry)").
func (m *MIT) Storage() StorageCost {
	archBits := 2 * isa.NumArchRegs
	n := m.inner.NumEntries()
	return StorageCost{
		CPUBits:        n * (8 + 1 + archBits),
		CheckpointBits: n * archBits,
	}
}

// Stats implements Tracker.
func (m *MIT) Stats() *Stats { return &m.inner.stats }

var _ Tracker = (*MIT)(nil)
