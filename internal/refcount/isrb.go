package refcount

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/regfile"
)

// ISRB is the Inflight Shared Register Buffer of §4.3: a small
// fully-associative buffer tracking only the registers that currently have
// more than one sharer. Each entry holds the physical register identifier
// (the CAM tag) and two never-decremented up-counters:
//
//   - referenced: incremented each time the register is bypassed (ME/SMB)
//     rather than allocated from the Free List;
//   - committed: incremented when an instruction that overwrites an
//     architectural mapping containing the register commits, as long as
//     committed != referenced.
//
// When a commit-side overwrite finds referenced == committed, the register
// and the entry are freed. Only the referenced fields are checkpointed
// (n-bit counters × entries: 96 bits for 32 entries × 3 bits), so recovery
// is a gang copy plus a compare: if the restored referenced is smaller than
// the architectural committed, the register should already have been freed
// and is released during recovery.
//
// Instead of physically resetting checkpointed fields when an entry is
// freed (the paper's gang-invalidate rule), each entry carries a
// generation tag; a checkpointed referenced value is applied only when the
// generation still matches, which is behaviourally identical and keeps
// snapshots immutable.
type ISRB struct {
	entries []isrbEntry
	ctrMax  uint8
	ctrBits int
	stats   Stats

	snapPool []*isrbSnapshot
	freed    []regfile.PhysReg // scratch returned by Restore/RestoreToCommit
}

type isrbEntry struct {
	valid bool
	tag   regfile.PhysReg
	ref   uint8
	com   uint8
	// archRef counts references whose creating instruction has
	// committed. It is architectural state (like com) used only for
	// commit-level flush recovery; it needs no checkpoint storage.
	archRef uint8
	gen     uint32
}

type isrbSnapSlot struct {
	gen uint32
	ref uint8
}

// isrbSnapshot is handed out behind a pointer: storing a bare slice in
// the Snapshot interface would heap-box its header on every checkpoint,
// defeating the snapshot pool.
type isrbSnapshot struct {
	slots []isrbSnapSlot
}

// NewISRB builds an ISRB with the given number of entries and counter
// width in bits (the paper finds 3 bits sufficient, §6.3).
func NewISRB(entries, counterBits int) *ISRB {
	if entries <= 0 {
		panic("refcount: ISRB needs at least one entry")
	}
	if counterBits <= 0 || counterBits > 8 {
		panic("refcount: ISRB counter width must be in 1..8")
	}
	return &ISRB{
		entries: make([]isrbEntry, entries),
		ctrMax:  uint8(1)<<counterBits - 1,
		ctrBits: counterBits,
	}
}

// Name implements Tracker.
func (b *ISRB) Name() string { return fmt.Sprintf("ISRB-%d", len(b.entries)) }

// NumEntries returns the entry count.
func (b *ISRB) NumEntries() int { return len(b.entries) }

func (b *ISRB) find(p regfile.PhysReg) *isrbEntry {
	for i := range b.entries {
		if b.entries[i].valid && b.entries[i].tag == p {
			return &b.entries[i]
		}
	}
	return nil
}

// TryShare implements Tracker.
func (b *ISRB) TryShare(p regfile.PhysReg, kind Kind, dst, src isa.Reg) bool {
	if e := b.find(p); e != nil {
		if e.ref >= b.ctrMax {
			b.stats.ShareFailsSat++
			return false
		}
		e.ref++
		b.countShare(kind)
		return true
	}
	for i := range b.entries {
		if !b.entries[i].valid {
			b.entries[i].valid = true
			b.entries[i].tag = p
			b.entries[i].ref = 1
			b.entries[i].com = 0
			b.entries[i].archRef = 0
			b.entries[i].gen++
			b.stats.EntryAllocs++
			b.countShare(kind)
			return true
		}
	}
	b.stats.ShareFailsFull++
	return false
}

func (b *ISRB) countShare(kind Kind) {
	if kind == KindME {
		b.stats.SharesME++
	} else {
		b.stats.SharesSMB++
	}
}

// OnCommitOverwrite implements Tracker: the CAM probe the register
// reclaiming hardware performs (§4.3.2, "Register Reclaiming").
func (b *ISRB) OnCommitOverwrite(p regfile.PhysReg, arch isa.Reg) bool {
	b.stats.CommitChecks++
	e := b.find(p)
	if e == nil {
		return true // untracked: free normally
	}
	b.stats.CommitHits++
	if e.ref == e.com {
		// Last mapping overwritten: free register and entry.
		e.valid = false
		b.stats.Frees++
		return true
	}
	e.com++
	return false
}

// OnCommitShare implements Tracker: a share created at rename became
// architectural.
func (b *ISRB) OnCommitShare(p regfile.PhysReg) {
	if e := b.find(p); e != nil && e.archRef < e.ref {
		e.archRef++
	}
}

// RestoreToCommit implements Tracker: roll every entry's referenced count
// back to its architectural value, applying the same freeing rules as
// checkpoint recovery. The returned slice is scratch owned by the
// tracker, valid until the next Restore/RestoreToCommit call.
func (b *ISRB) RestoreToCommit() []regfile.PhysReg {
	freed := b.freed[:0]
	for i := range b.entries {
		e := &b.entries[i]
		if !e.valid {
			continue
		}
		ref := e.archRef
		switch {
		case e.com > ref:
			e.valid = false
			freed = append(freed, e.tag)
			b.stats.RecoveryFrees++
		case ref == 0 && e.com == 0:
			e.valid = false
		default:
			e.ref = ref
		}
	}
	b.freed = freed
	return freed
}

// IsShared implements Tracker.
func (b *ISRB) IsShared(p regfile.PhysReg) bool { return b.find(p) != nil }

// Checkpoint implements Tracker: it captures the referenced field (and
// generation tag) of every entry — n bits × entries of real storage.
// Snapshots are immutable once taken; released ones (ReleaseSnapshot)
// are pooled, so steady-state checkpointing performs no allocation.
func (b *ISRB) Checkpoint() Snapshot {
	var s *isrbSnapshot
	if n := len(b.snapPool); n > 0 {
		s = b.snapPool[n-1]
		b.snapPool = b.snapPool[:n-1]
	} else {
		s = &isrbSnapshot{slots: make([]isrbSnapSlot, len(b.entries))}
	}
	for i := range b.entries {
		s.slots[i].gen = b.entries[i].gen
		s.slots[i].ref = 0
		if b.entries[i].valid {
			s.slots[i].ref = b.entries[i].ref
		}
	}
	return s
}

// ReleaseSnapshot implements Tracker, returning a snapshot's storage to
// the pool.
func (b *ISRB) ReleaseSnapshot(s Snapshot) {
	if snap, ok := s.(*isrbSnapshot); ok && len(snap.slots) == len(b.entries) {
		b.snapPool = append(b.snapPool, snap)
	}
}

// Restore implements Tracker, applying the recovery rules of §4.3.1/§4.3.2:
// restore referenced from the checkpoint; if the architectural committed
// counter exceeds it, the register missed its freeing opportunity during
// speculation and is released now; if both counters are zero the entry is
// freed (the register is covered by the Free List head restore or by a
// pre-checkpoint commit).
func (b *ISRB) Restore(s Snapshot) []regfile.PhysReg {
	sp, ok := s.(*isrbSnapshot)
	if !ok || len(sp.slots) != len(b.entries) {
		panic("refcount: foreign snapshot passed to ISRB.Restore")
	}
	snap := sp.slots
	b.stats.Restores++
	freed := b.freed[:0]
	for i := range b.entries {
		e := &b.entries[i]
		if !e.valid {
			continue // entry already free: nothing happens
		}
		ref := uint8(0)
		if snap[i].gen == e.gen {
			ref = snap[i].ref
		}
		// else: the entry was (re)allocated on the squashed path; the
		// checkpointed value is invalid, equivalent to a gang-reset 0.
		switch {
		case e.com > ref:
			// The last overwriting instruction should have freed the
			// register; release it during recovery.
			e.valid = false
			freed = append(freed, e.tag)
			b.stats.RecoveryFrees++
		case ref == 0 && e.com == 0:
			// Wrong-path-only sharing: drop the entry; the register is
			// recovered by the Free List pointer restore or freed by a
			// pre-checkpoint commit.
			e.valid = false
		default:
			e.ref = ref
			if e.archRef > e.ref {
				e.archRef = e.ref
			}
		}
	}
	b.freed = freed
	return freed
}

// SquashPenalty implements Tracker: restoring checkpointed fields and
// comparing narrow values is a single cycle (§4.3.1, "restoring a correct
// state can be done in a single cycle").
func (b *ISRB) SquashPenalty(int) uint64 { return 1 }

// Storage implements Tracker: entries × (8-bit physical register tag +
// valid + 2 n-bit counters) of CPU storage and entries × n bits per
// checkpoint. For 32 entries and 3-bit counters this is the paper's
// 480 bits + 96 bits/checkpoint (§4.3.3, §6.3).
func (b *ISRB) Storage() StorageCost {
	per := 8 + 1 + 2*b.ctrBits
	// The paper quotes 480 bits for 32 entries: 8b tag + 2×3b counters +
	// 1 valid = 15 bits/entry.
	return StorageCost{
		CPUBits:        len(b.entries) * per,
		CheckpointBits: len(b.entries) * b.ctrBits,
	}
}

// Stats implements Tracker.
func (b *ISRB) Stats() *Stats { return &b.stats }

// Occupancy returns the number of valid entries (for tests and traffic
// statistics).
func (b *ISRB) Occupancy() int {
	n := 0
	for i := range b.entries {
		if b.entries[i].valid {
			n++
		}
	}
	return n
}

var _ Tracker = (*ISRB)(nil)
