// Package refcount implements the paper's register reference counting
// schemes (§4): the contributed Inflight Shared Register Buffer (ISRB),
// an ideal unlimited tracker, per-physical-register counters with
// sequential rollback, Intel's Multiple Instantiation Table (MIT, move
// elimination only) and Apple's Register Duplicate Array (RDA).
//
// All schemes implement Tracker, the contract the rename and commit stages
// use. Sharing is recorded at rename (TryShare), reclaim decisions are made
// at commit (OnCommitOverwrite), and recovery is checkpoint-based
// (Checkpoint/Restore) with a per-scheme extra squash latency
// (SquashPenalty) so the timing difference between gang-restore (ISRB) and
// sequential counter walking (per-register counters) is modelled.
package refcount

import (
	"repro/internal/isa"
	"repro/internal/regfile"
)

// Kind says which optimization wants to share a register.
type Kind uint8

const (
	// KindME is a move-elimination share (both architectural registers
	// are visible in the move instruction).
	KindME Kind = iota
	// KindSMB is a speculative-memory-bypassing share (the producer's
	// architectural register may already be re-renamed, so only the
	// physical register identifies the sharing; §4.2's argument for why
	// the MIT cannot support SMB).
	KindSMB
)

func (k Kind) String() string {
	if k == KindME {
		return "ME"
	}
	return "SMB"
}

// Snapshot is an opaque checkpoint of a tracker's recoverable state. For
// the ISRB it corresponds to the checkpointed `referenced` fields (plus
// generation tags that stand in for the paper's gang-invalidate-on-free
// rule, §4.3.2).
type Snapshot interface{}

// StorageCost reports a scheme's storage requirements as the paper
// accounts them (§4.3.3).
type StorageCost struct {
	// CPUBits is the always-present storage (e.g., 480 bits for a
	// 32-entry ISRB with 3-bit counters).
	CPUBits int
	// CheckpointBits is the additional storage per checkpoint (e.g., 96
	// bits for a 32-entry ISRB: one 3-bit referenced field per entry).
	CheckpointBits int
}

// Stats counts tracker activity.
type Stats struct {
	SharesME       uint64 // successful ME shares
	SharesSMB      uint64 // successful SMB shares
	ShareFailsFull uint64 // shares aborted: structure full
	ShareFailsSat  uint64 // shares aborted: counter saturated
	ShareFailsKind uint64 // shares aborted: kind unsupported (MIT vs SMB)
	EntryAllocs    uint64 // new tracking entries allocated
	CommitChecks   uint64 // OnCommitOverwrite probes
	CommitHits     uint64 // probes that matched a tracked register
	Frees          uint64 // tracked registers freed at commit
	RecoveryFrees  uint64 // registers freed during checkpoint recovery
	Restores       uint64 // checkpoint restorations
}

// Tracker is the reference counting contract used by the pipeline.
type Tracker interface {
	// Name identifies the scheme in reports.
	Name() string

	// TryShare records one more in-flight reference to p, created at
	// Rename by a bypass of the given kind. dst is the architectural
	// destination of the bypassing instruction; src is the architectural
	// source for ME (NoReg for SMB). It returns false when the scheme
	// cannot track the share, in which case the bypass must be aborted
	// (the instruction executes normally).
	TryShare(p regfile.PhysReg, kind Kind, dst, src isa.Reg) bool

	// OnCommitOverwrite is invoked when a committing instruction
	// overwrites the architectural mapping arch => p (p is the OLD
	// physical register). It returns true when p is now freeable and
	// must be pushed to the free list by the caller.
	OnCommitOverwrite(p regfile.PhysReg, arch isa.Reg) bool

	// OnCommitShare is invoked when a sharing (bypassing/eliminated)
	// instruction commits: its reference to p becomes architectural.
	// This mirrors the committed counter's role and enables the
	// checkpoint-free commit-level recovery used for flushes at Commit
	// (value-misprediction-style events, §4.1).
	OnCommitShare(p regfile.PhysReg)

	// IsShared reports whether p currently has tracked sharers. The
	// rename stage uses it to set the reclaim-flag filter of §4.3.4.
	IsShared(p regfile.PhysReg) bool

	// Checkpoint captures the recoverable state (taken at every branch).
	// Snapshots are immutable; a caller done with one should hand it to
	// ReleaseSnapshot so its storage can be reused.
	Checkpoint() Snapshot

	// ReleaseSnapshot returns a snapshot obtained from Checkpoint to the
	// tracker's internal pool. The snapshot must not be used afterwards.
	// Releasing is optional (a dropped snapshot is merely garbage) but
	// keeps steady-state checkpointing allocation-free.
	ReleaseSnapshot(s Snapshot)

	// Restore rolls the tracker back to s and returns the registers that
	// recovery determined are free now (the committed > referenced case
	// of §4.3.1); the caller pushes them to the free list. The returned
	// slice is scratch owned by the tracker: it is valid only until the
	// next Restore/RestoreToCommit call.
	Restore(s Snapshot) []regfile.PhysReg

	// RestoreToCommit discards all speculative references, rolling the
	// tracker back to the architectural (committed) reference counts.
	// Used for flushes taking place at Commit, which restore the renamer
	// from the Commit Rename Map with no checkpoint (§4.1). Returns
	// registers freed by the rollback, as a tracker-owned scratch slice
	// with the same lifetime rule as Restore's.
	RestoreToCommit() []regfile.PhysReg

	// SquashPenalty returns the extra recovery cycles the scheme needs
	// beyond restoring renamer checkpoints, given the number of squashed
	// µops. Checkpointable schemes return 0 or 1; per-register counters
	// must walk the squashed instructions sequentially (§4.2).
	SquashPenalty(nSquashed int) uint64

	// Storage reports the paper-style storage accounting.
	Storage() StorageCost

	// Stats exposes the activity counters.
	Stats() *Stats
}
