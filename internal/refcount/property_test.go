package refcount

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/regfile"
	"repro/internal/rng"
)

// The property tests drive random but well-formed sharing histories
// through the trackers, cross-checked against a ground-truth mapping
// model:
//
//   - a register starts with one committed mapping (its allocation);
//   - Share adds a speculative mapping (a rename-time bypass);
//   - CommitShare turns the OLDEST speculative mapping architectural, and
//     only once every checkpoint older than the share has been released
//     (in-order commit: an instruction younger than an in-flight branch
//     cannot retire before it);
//   - OverwriteCommit removes one committed mapping; the tracker must
//     free the register exactly when no mappings remain;
//   - Checkpoint/Restore snapshot and roll back speculative mappings;
//     ReleaseCheckpoint models the owning branch retiring.
//
// This is the invariant the paper rests on: shared registers are freed
// exactly once, never while live, and never leak (§4.3).

type share struct {
	born uint64 // id of the youngest checkpoint outstanding at creation
}

type driver struct {
	t       *testing.T
	tr      Tracker
	r       *rng.RNG
	nRegs   int
	commits []int     // committed mappings per register
	specs   [][]share // speculative shares per register, oldest first
	shares  []int     // total references this register life
	freed   []bool

	ckptIDs   []uint64 // outstanding checkpoint ids, oldest first
	ckptSnaps []Snapshot
	nextID    uint64
}

func newDriver(t *testing.T, tr Tracker, seed uint64, nRegs int) *driver {
	d := &driver{
		t:       t,
		tr:      tr,
		r:       rng.New(seed),
		nRegs:   nRegs,
		commits: make([]int, nRegs),
		specs:   make([][]share, nRegs),
		shares:  make([]int, nRegs),
		freed:   make([]bool, nRegs),
		nextID:  1,
	}
	for i := range d.commits {
		d.commits[i] = 1 // allocation's own mapping
	}
	return d
}

func (d *driver) reg(i int) regfile.PhysReg { return regfile.MakePhys(isa.IntReg, i) }

func (d *driver) youngestCkpt() uint64 {
	if len(d.ckptIDs) == 0 {
		return 0
	}
	return d.ckptIDs[len(d.ckptIDs)-1]
}

func (d *driver) oldestCkpt() uint64 {
	if len(d.ckptIDs) == 0 {
		return ^uint64(0)
	}
	return d.ckptIDs[0]
}

func (d *driver) live(i int) int { return d.commits[i] + len(d.specs[i]) }

func (d *driver) step(n int) {
	i := d.r.Intn(d.nRegs)
	switch d.r.Intn(12) {
	case 0, 1, 2: // Share
		// Cap total references per register life so fixed-width (4-bit)
		// up-counters stay unsaturated: the property under test is ideal
		// behaviour, saturation is tested separately.
		if d.freed[i] || d.live(i) == 0 || d.shares[i] >= 12 {
			return
		}
		d.shares[i]++
		if !d.tr.TryShare(d.reg(i), KindSMB, isa.IntR(d.r.Intn(16)), isa.NoReg) {
			d.t.Fatalf("step %d: TryShare rejected on amply sized tracker", n)
		}
		d.specs[i] = append(d.specs[i], share{born: d.youngestCkpt()})
	case 3, 4: // CommitShare (oldest share, only if older than all ckpts)
		if len(d.specs[i]) == 0 || d.specs[i][0].born >= d.oldestCkpt() {
			return
		}
		d.tr.OnCommitShare(d.reg(i))
		d.specs[i] = d.specs[i][1:]
		d.commits[i]++
	case 5, 6, 7: // OverwriteCommit
		if d.freed[i] || d.commits[i] == 0 {
			return
		}
		free := d.tr.OnCommitOverwrite(d.reg(i), isa.IntR(d.r.Intn(16)))
		d.commits[i]--
		wantFree := d.commits[i] == 0 && len(d.specs[i]) == 0
		if free != wantFree {
			d.t.Fatalf("step %d: OnCommitOverwrite(reg %d) = %v, want %v (c=%d s=%d)",
				n, i, free, wantFree, d.commits[i], len(d.specs[i]))
		}
		if free {
			d.freed[i] = true
		}
	case 8, 9: // Checkpoint
		if len(d.ckptIDs) > 6 {
			return
		}
		d.ckptIDs = append(d.ckptIDs, d.nextID)
		d.ckptSnaps = append(d.ckptSnaps, d.tr.Checkpoint())
		d.nextID++
	case 10: // ReleaseCheckpoint (oldest branch retires)
		if len(d.ckptIDs) == 0 {
			return
		}
		d.ckptIDs = d.ckptIDs[1:]
		d.ckptSnaps = d.ckptSnaps[1:]
	case 11: // Restore to a random outstanding checkpoint
		if len(d.ckptIDs) == 0 {
			return
		}
		k := d.r.Intn(len(d.ckptIDs))
		id := d.ckptIDs[k]
		freed := d.tr.Restore(d.ckptSnaps[k])
		// Roll back shares created at or after checkpoint id.
		for j := range d.specs {
			keep := d.specs[j][:0]
			for _, s := range d.specs[j] {
				if s.born < id {
					keep = append(keep, s)
				}
			}
			d.specs[j] = keep
		}
		seen := map[int]bool{}
		for _, p := range freed {
			j := p.Index()
			if seen[j] {
				d.t.Fatalf("step %d: register %d freed twice in one recovery", n, j)
			}
			seen[j] = true
			if d.freed[j] {
				d.t.Fatalf("step %d: register %d freed but already free", n, j)
			}
			if d.commits[j] != 0 || len(d.specs[j]) != 0 {
				d.t.Fatalf("step %d: register %d freed with live mappings (c=%d s=%d)",
					n, j, d.commits[j], len(d.specs[j]))
			}
			d.freed[j] = true
		}
		// Registers that SHOULD have been freed (no mappings left, had
		// tracked overwrites masked by squashed shares) must be in the
		// freed set: nothing may leak.
		for j := range d.commits {
			if d.freed[j] || d.commits[j] != 0 || len(d.specs[j]) != 0 {
				continue
			}
			// commits hit zero while shares were outstanding; those
			// shares are gone now. The tracker must have freed it.
			d.t.Fatalf("step %d: register %d leaked after restore", n, j)
		}
		d.ckptIDs = d.ckptIDs[:k]
		d.ckptSnaps = d.ckptSnaps[:k]
	}
}

func runShareHistory(t *testing.T, tr Tracker, seed uint64, steps int) {
	t.Helper()
	d := newDriver(t, tr, seed, 12)
	for n := 0; n < steps; n++ {
		d.step(n)
	}
}

func TestISRBShareHistoryProperty(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		runShareHistory(t, NewISRB(64, 8), seed, 2500)
	}
}

func TestUnlimitedShareHistoryProperty(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		runShareHistory(t, NewUnlimited(), seed, 2500)
	}
}

func TestPerRegCountersShareHistoryProperty(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		runShareHistory(t, NewPerRegCounters(512, 8, 8), seed, 2000)
	}
}

func TestRDAShareHistoryProperty(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		runShareHistory(t, NewRDA(64), seed, 2000)
	}
}

// TestISRBAgreesWithUnlimited drives identical histories through both
// trackers and requires identical free decisions and identical restore
// free-sets, register by register.
func TestISRBAgreesWithUnlimited(t *testing.T) {
	for seed := uint64(100); seed < 140; seed++ {
		a := NewISRB(64, 8)
		b := NewUnlimited()
		da := newDriver(t, a, seed, 10)
		db := newDriver(t, b, seed, 10)
		for n := 0; n < 2500; n++ {
			da.step(n)
			db.step(n)
			for i := 0; i < 10; i++ {
				if a.IsShared(da.reg(i)) != b.IsShared(db.reg(i)) {
					t.Fatalf("seed %d step %d: IsShared(reg %d) disagreement", seed, n, i)
				}
			}
		}
	}
}
