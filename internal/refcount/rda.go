package refcount

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/regfile"
)

// RDA models Apple's Register Duplicate Array (Sundar et al. patent,
// §4.2): a small fully-associative buffer whose entries each hold a single
// reference counter. Unlike the MIT it can track any sharing (including
// SMB), but making the single counter checkpoint-safe requires updating
// the counter in *every* outstanding checkpoint whenever a tracked mapping
// commits — up to n counter updates per retiring instruction with n live
// checkpoints. CheckpointUpdateOps counts that commit-side write traffic,
// which is the scheme's cost relative to the ISRB (whose committed counter
// lives only in the CPU copy).
//
// Functional tracking and recovery reuse the dual-counter mechanics.
type RDA struct {
	inner ISRB
	// liveCheckpoints tracks how many checkpoints currently exist; the
	// core updates it via NoteLiveCheckpoints.
	liveCheckpoints int
	// CheckpointUpdateOps accumulates commit-side checkpoint counter
	// updates (decrements × live checkpoints).
	CheckpointUpdateOps uint64
}

// NewRDA builds an RDA with the given number of entries.
func NewRDA(entries int) *RDA {
	return &RDA{inner: *NewISRB(entries, 4)}
}

// Name implements Tracker.
func (r *RDA) Name() string { return fmt.Sprintf("RDA-%d", r.inner.NumEntries()) }

// NoteLiveCheckpoints informs the RDA how many checkpoints are currently
// outstanding; the core calls it whenever the count changes.
func (r *RDA) NoteLiveCheckpoints(n int) { r.liveCheckpoints = n }

// TryShare implements Tracker.
func (r *RDA) TryShare(p regfile.PhysReg, kind Kind, dst, src isa.Reg) bool {
	return r.inner.TryShare(p, kind, dst, src)
}

// OnCommitOverwrite implements Tracker, accumulating the commit-side
// checkpoint maintenance the patent requires.
func (r *RDA) OnCommitOverwrite(p regfile.PhysReg, arch isa.Reg) bool {
	if r.inner.IsShared(p) {
		r.CheckpointUpdateOps += uint64(r.liveCheckpoints)
	}
	return r.inner.OnCommitOverwrite(p, arch)
}

// OnCommitShare implements Tracker.
func (r *RDA) OnCommitShare(p regfile.PhysReg) {
	if r.inner.IsShared(p) {
		r.CheckpointUpdateOps += uint64(r.liveCheckpoints)
	}
	r.inner.OnCommitShare(p)
}

// RestoreToCommit implements Tracker.
func (r *RDA) RestoreToCommit() []regfile.PhysReg { return r.inner.RestoreToCommit() }

// IsShared implements Tracker.
func (r *RDA) IsShared(p regfile.PhysReg) bool { return r.inner.IsShared(p) }

// Checkpoint implements Tracker.
func (r *RDA) Checkpoint() Snapshot { return r.inner.Checkpoint() }

// ReleaseSnapshot implements Tracker.
func (r *RDA) ReleaseSnapshot(s Snapshot) { r.inner.ReleaseSnapshot(s) }

// Restore implements Tracker.
func (r *RDA) Restore(s Snapshot) []regfile.PhysReg { return r.inner.Restore(s) }

// SquashPenalty implements Tracker.
func (r *RDA) SquashPenalty(n int) uint64 { return r.inner.SquashPenalty(n) }

// Storage implements Tracker: per entry a tag, a valid bit and ONE counter
// in the CPU copy, but each checkpoint replicates the full counter per
// entry (the counters are kept coherent by commit-side updates).
func (r *RDA) Storage() StorageCost {
	n := r.inner.NumEntries()
	const ctr = 4
	return StorageCost{
		CPUBits:        n * (8 + 1 + ctr),
		CheckpointBits: n * ctr,
	}
}

// Stats implements Tracker.
func (r *RDA) Stats() *Stats { return &r.inner.stats }

var _ Tracker = (*RDA)(nil)
