package refcount

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/regfile"
)

func preg(i int) regfile.PhysReg { return regfile.MakePhys(isa.IntReg, i) }

// TestFigure3WorkedExample replays the paper's Figure 3 step by step:
//
//	sub1  : rax => p1 (allocation, not tracked)
//	shl3  : redefines rax
//	load4 : bypasses to p1 (rbx => p1), referenced=1
//	sub7  : redefines rbx
//	jmp8  : checkpoint (referenced snapshot = 1)
//	load10: bypasses to p1 (rdx => p1), referenced=2
//	shl3 commits  -> overwrite of rax=>p1: committed=1
//	sub7 commits  -> overwrite of rbx=>p1: committed=2 (== referenced)
//	jmp8 mispredicts -> restore checkpoint: referenced=1 < committed=2
//	                    => p1 freed during recovery.
func TestFigure3WorkedExample(t *testing.T) {
	b := NewISRB(8, 3)
	p1 := preg(1)
	rax, rbx := isa.IntR(0), isa.IntR(1)

	// load4 bypasses.
	if !b.TryShare(p1, KindSMB, rbx, isa.NoReg) {
		t.Fatal("load4 share rejected")
	}
	// jmp8 checkpoints.
	snap := b.Checkpoint()
	// load10 bypasses on the (wrong) path.
	if !b.TryShare(p1, KindSMB, isa.IntR(2), isa.NoReg) {
		t.Fatal("load10 share rejected")
	}
	// shl3 and sub7 commit, overwriting the two older mappings of p1.
	if b.OnCommitOverwrite(p1, rax) {
		t.Fatal("p1 freed after first overwrite; committed should be 1")
	}
	if b.OnCommitOverwrite(p1, rbx) {
		t.Fatal("p1 freed after second overwrite; referenced was 2")
	}
	// jmp8 was mispredicted: restore. committed (2) > restored referenced
	// (1), so recovery must free p1.
	freed := b.Restore(snap)
	if len(freed) != 1 || freed[0] != p1 {
		t.Fatalf("recovery freed %v, want [p1]", freed)
	}
	if b.IsShared(p1) {
		t.Fatal("p1 still tracked after recovery free")
	}
}

// TestFreeOnLastOverwrite checks the dual-counter freeing rule on the
// correct path: a register with referenced=2 is freed by the third
// overwriting commit.
func TestFreeOnLastOverwrite(t *testing.T) {
	b := NewISRB(8, 3)
	p := preg(2)
	b.TryShare(p, KindSMB, isa.IntR(1), isa.NoReg)
	b.TryShare(p, KindSMB, isa.IntR(2), isa.NoReg)
	if b.OnCommitOverwrite(p, isa.IntR(0)) { // producer's mapping
		t.Fatal("freed after overwrite 1 of 3")
	}
	if b.OnCommitOverwrite(p, isa.IntR(1)) {
		t.Fatal("freed after overwrite 2 of 3")
	}
	if !b.OnCommitOverwrite(p, isa.IntR(2)) {
		t.Fatal("not freed after final overwrite")
	}
	if b.IsShared(p) {
		t.Fatal("entry not released")
	}
}

// TestUntrackedRegistersFreeNormally: a CAM miss means the register was
// never shared and is freed immediately.
func TestUntrackedRegistersFreeNormally(t *testing.T) {
	b := NewISRB(4, 3)
	if !b.OnCommitOverwrite(preg(9), isa.IntR(0)) {
		t.Fatal("untracked register not freed")
	}
}

// TestCapacityReject: a full ISRB aborts further sharing (the bypass then
// simply does not happen, §4.3.2).
func TestCapacityReject(t *testing.T) {
	b := NewISRB(2, 3)
	if !b.TryShare(preg(1), KindME, isa.IntR(1), isa.IntR(0)) ||
		!b.TryShare(preg(2), KindME, isa.IntR(2), isa.IntR(0)) {
		t.Fatal("initial shares rejected")
	}
	if b.TryShare(preg(3), KindME, isa.IntR(3), isa.IntR(0)) {
		t.Fatal("share accepted with full ISRB")
	}
	if b.Stats().ShareFailsFull != 1 {
		t.Fatalf("ShareFailsFull = %d, want 1", b.Stats().ShareFailsFull)
	}
	// Existing entries can still gain references.
	if !b.TryShare(preg(1), KindME, isa.IntR(4), isa.IntR(0)) {
		t.Fatal("re-share of tracked register rejected")
	}
}

// TestCounterSaturationReject: an n-bit referenced counter rejects the
// 2^n-th reference.
func TestCounterSaturationReject(t *testing.T) {
	b := NewISRB(4, 2) // max referenced = 3
	p := preg(5)
	for i := 0; i < 3; i++ {
		if !b.TryShare(p, KindSMB, isa.IntR(i), isa.NoReg) {
			t.Fatalf("share %d rejected prematurely", i)
		}
	}
	if b.TryShare(p, KindSMB, isa.IntR(3), isa.NoReg) {
		t.Fatal("share accepted past counter saturation")
	}
	if b.Stats().ShareFailsSat != 1 {
		t.Fatalf("ShareFailsSat = %d, want 1", b.Stats().ShareFailsSat)
	}
}

// TestWrongPathOnlyEntryDroppedOnRestore: an entry allocated entirely on
// the squashed path (zero committed references) is freed by recovery
// without releasing the register (the Free List pointer restore covers
// it).
func TestWrongPathOnlyEntryDroppedOnRestore(t *testing.T) {
	b := NewISRB(4, 3)
	snap := b.Checkpoint()
	b.TryShare(preg(7), KindSMB, isa.IntR(1), isa.NoReg)
	freed := b.Restore(snap)
	if len(freed) != 0 {
		t.Fatalf("recovery freed %v; the register was never committed-shared", freed)
	}
	if b.IsShared(preg(7)) {
		t.Fatal("wrong-path entry survived recovery")
	}
}

// TestStaleCheckpointInvalidation reproduces the §4.3.2 requirement: when
// an entry is freed and its slot re-allocated, an older checkpoint must
// not restore the stale referenced value into the new entry.
func TestStaleCheckpointInvalidation(t *testing.T) {
	b := NewISRB(1, 3) // single slot forces re-allocation
	pOld, pNew := preg(1), preg(2)

	b.TryShare(pOld, KindSMB, isa.IntR(1), isa.NoReg)
	snap := b.Checkpoint() // tracks pOld with referenced=1

	// pOld's entry is freed on the correct path...
	if b.OnCommitOverwrite(pOld, isa.IntR(0)) {
		t.Fatal("freed too early")
	}
	if !b.OnCommitOverwrite(pOld, isa.IntR(1)) {
		t.Fatal("pOld should free on its final overwrite")
	}
	// ...and the slot is re-used by pNew on the (wrong) path.
	if !b.TryShare(pNew, KindSMB, isa.IntR(2), isa.NoReg) {
		t.Fatal("slot re-allocation failed")
	}
	// Restoring the old checkpoint must treat the slot's checkpointed
	// referenced as invalid (gang-reset semantics): pNew's wrong-path
	// entry is dropped, and no register is freed (pNew was never
	// committed-shared; its tracking began on the squashed path).
	freed := b.Restore(snap)
	if len(freed) != 0 {
		t.Fatalf("recovery freed %v, want none", freed)
	}
	if b.IsShared(pNew) {
		t.Fatal("stale checkpoint resurrected a re-allocated entry")
	}
}

// TestCommitLevelRestore checks RestoreToCommit: speculative references
// vanish, architectural ones survive.
func TestCommitLevelRestore(t *testing.T) {
	b := NewISRB(8, 3)
	pa, pb := preg(1), preg(2)

	// pa: shared and the sharer committed (architectural).
	b.TryShare(pa, KindSMB, isa.IntR(1), isa.NoReg)
	b.OnCommitShare(pa)
	// pb: shared speculatively only.
	b.TryShare(pb, KindSMB, isa.IntR(2), isa.NoReg)

	freed := b.RestoreToCommit()
	if len(freed) != 0 {
		t.Fatalf("freed %v, want none", freed)
	}
	if !b.IsShared(pa) {
		t.Fatal("architectural share lost")
	}
	if b.IsShared(pb) {
		t.Fatal("speculative-only share survived commit-level restore")
	}
	// pa still needs two overwrites to free.
	if b.OnCommitOverwrite(pa, isa.IntR(0)) {
		t.Fatal("pa freed on first overwrite")
	}
	if !b.OnCommitOverwrite(pa, isa.IntR(1)) {
		t.Fatal("pa not freed on second overwrite")
	}
}

// TestStorageMatchesPaper reproduces §4.3.3 and §6.3 exactly: a 32-entry
// ISRB with 3-bit counters costs 480 bits plus 96 bits per checkpoint; 8
// and 16 entries cost 24 and 48 bits per checkpoint.
func TestStorageMatchesPaper(t *testing.T) {
	cases := []struct {
		entries, ckBits int
	}{
		{8, 24}, {16, 48}, {32, 96},
	}
	for _, c := range cases {
		b := NewISRB(c.entries, 3)
		st := b.Storage()
		if st.CheckpointBits != c.ckBits {
			t.Errorf("%d entries: checkpoint bits = %d, want %d", c.entries, st.CheckpointBits, c.ckBits)
		}
	}
	if st := NewISRB(32, 3).Storage(); st.CPUBits != 480 {
		t.Errorf("32-entry ISRB CPU storage = %d bits, want 480", st.CPUBits)
	}
	if got := RenameMapCheckpointBits(); got != 256 {
		t.Errorf("rename map checkpoint = %d bits, want 256", got)
	}
}

func TestSquashPenaltyIsConstant(t *testing.T) {
	b := NewISRB(32, 3)
	if b.SquashPenalty(1) != 1 || b.SquashPenalty(191) != 1 {
		t.Fatal("ISRB recovery must be single-cycle regardless of squash size")
	}
}

func TestOccupancy(t *testing.T) {
	b := NewISRB(8, 3)
	if b.Occupancy() != 0 {
		t.Fatal("fresh ISRB not empty")
	}
	b.TryShare(preg(1), KindME, isa.IntR(1), isa.IntR(0))
	b.TryShare(preg(2), KindME, isa.IntR(2), isa.IntR(0))
	if b.Occupancy() != 2 {
		t.Fatalf("occupancy = %d, want 2", b.Occupancy())
	}
}
