package refcount

// Microbenchmarks for the tracker hot path in isolation: the share /
// commit-probe cycle rename and commit drive every µop, and the
// checkpoint/restore cycle taken at every branch. All must run
// allocation-free in steady state.

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/regfile"
)

func benchShareCommit(b *testing.B, tr Tracker) {
	b.Helper()
	regs := [8]regfile.PhysReg{}
	for i := range regs {
		regs[i] = regfile.MakePhys(isa.IntReg, 32+i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := regs[i&7]
		tr.TryShare(p, KindME, isa.IntR(1), isa.IntR(2))
		tr.OnCommitShare(p)
		tr.OnCommitOverwrite(p, isa.IntR(1))
		tr.OnCommitOverwrite(p, isa.IntR(1))
	}
}

func benchCheckpointRestore(b *testing.B, tr Tracker) {
	b.Helper()
	for i := 0; i < 8; i++ {
		tr.TryShare(regfile.MakePhys(isa.IntReg, 32+i), KindME, isa.IntR(1), isa.IntR(2))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := tr.Checkpoint()
		tr.TryShare(regfile.MakePhys(isa.IntReg, 32+(i&7)), KindSMB, isa.IntR(3), isa.NoReg)
		tr.Restore(s)
		tr.ReleaseSnapshot(s)
	}
}

func BenchmarkISRBShareCommit(b *testing.B)      { benchShareCommit(b, NewISRB(32, 3)) }
func BenchmarkUnlimitedShareCommit(b *testing.B) { benchShareCommit(b, NewUnlimited()) }

func BenchmarkISRBCheckpointRestore(b *testing.B)      { benchCheckpointRestore(b, NewISRB(32, 3)) }
func BenchmarkUnlimitedCheckpointRestore(b *testing.B) { benchCheckpointRestore(b, NewUnlimited()) }
