package workloads

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

func TestCatalogShape(t *testing.T) {
	specs := Catalog()
	if len(specs) != 36 {
		t.Fatalf("catalog has %d benchmarks, want 36 (18 INT + 18 FP, §5.2)", len(specs))
	}
	if len(IntNames()) != 18 || len(FPNames()) != 18 {
		t.Fatalf("suite split %d/%d, want 18/18", len(IntNames()), len(FPNames()))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Fatalf("duplicate benchmark name %q", s.Name)
		}
		seen[s.Name] = true
	}
	// The benchmarks the paper's discussion leans on must exist.
	for _, n := range []string{"crafty", "vortex", "namd", "astar", "hmmer", "wupwise", "applu", "mgrid", "gamess", "gromacs", "bzip"} {
		if _, err := ByName(n); err != nil {
			t.Errorf("missing paper benchmark %q", n)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("not-a-benchmark"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

// TestAllBenchmarksExecute: every program must run functionally for a
// long stretch without flowing off defined code, with plausible dynamic
// mixes.
func TestAllBenchmarksExecute(t *testing.T) {
	for _, spec := range Catalog() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			p := Build(spec)
			e := program.NewExecutor(p)
			var u isa.Uop
			var loads, stores, branches, moves int
			const steps = 30_000
			for i := 0; i < steps; i++ {
				if !e.Next(&u) {
					t.Fatalf("ran off code at step %d", i)
				}
				switch u.Op {
				case isa.Load:
					loads++
				case isa.Store:
					stores++
				case isa.Branch:
					branches++
				case isa.Move:
					moves++
				}
			}
			if loads == 0 || stores == 0 || branches == 0 {
				t.Fatalf("degenerate mix: loads=%d stores=%d branches=%d", loads, stores, branches)
			}
			if spec.MovePct > 0.05 && moves == 0 {
				t.Fatalf("move-configured benchmark produced no moves")
			}
			// Memory stays in the mapped regions.
			if u.IsMemRef() && u.MemAddr > 0x1000_0000 {
				t.Fatalf("wild address %#x", u.MemAddr)
			}
		})
	}
}

// TestDeterminism: building and executing twice must produce identical
// streams (the reproducibility requirement).
func TestDeterminism(t *testing.T) {
	s, _ := ByName("gcc")
	e1 := program.NewExecutor(Build(s))
	e2 := program.NewExecutor(Build(s))
	var a, b isa.Uop
	for i := 0; i < 20_000; i++ {
		e1.Next(&a)
		e2.Next(&b)
		if a != b {
			t.Fatalf("streams diverged at step %d: %v vs %v", i, a, b)
		}
	}
}

// TestBranchOutcomeDiversity: hard-branch benchmarks must have both taken
// and not-taken outcomes at data-dependent sites.
func TestBranchOutcomeDiversity(t *testing.T) {
	s, _ := ByName("gobmk") // HardBranchPct 0.5
	p := Build(s)
	e := program.NewExecutor(p)
	var u isa.Uop
	outcomes := map[uint64][2]int{} // pc -> {taken, not}
	for i := 0; i < 60_000; i++ {
		e.Next(&u)
		if u.Op == isa.Branch && u.Kind == isa.BrCond {
			o := outcomes[u.PC]
			if u.Taken {
				o[0]++
			} else {
				o[1]++
			}
			outcomes[u.PC] = o
		}
	}
	mixed := 0
	for _, o := range outcomes {
		if o[0] > 10 && o[1] > 10 {
			mixed++
		}
	}
	if mixed == 0 {
		t.Fatal("no branch site with mixed outcomes; hard branches missing")
	}
}

// TestPatternSites: benchmarks with configured rare patterns actually
// contain them (the quota system's guarantee).
func TestPatternSites(t *testing.T) {
	for _, name := range []string{"hmmer", "gamess", "gromacs", "bzip", "wupwise", "applu"} {
		s, _ := ByName(name)
		p := Build(s)
		var fdLoads, trapLoads int
		for pc := p.Entry(); pc < p.Entry()+uint64(p.NumInsts()*4)+64; pc += 4 {
			in, ok := p.StaticAt(pc)
			if !ok || in.Op != isa.Load || in.AddrReg != isa.IntR(1) {
				continue
			}
			switch {
			case in.Imm >= 2048 && in.Imm < 4096:
				fdLoads++
			case in.Imm >= 512 && in.Imm < 1024:
				trapLoads++
			}
		}
		if s.FalseDepPct > 0 && fdLoads == 0 {
			t.Errorf("%s: no false-dependence sites despite FalseDepPct=%v", name, s.FalseDepPct)
		}
		if s.TrapPct > 0 && trapLoads == 0 {
			t.Errorf("%s: no trap sites despite TrapPct=%v", name, s.TrapPct)
		}
	}
}

// TestMoveWidthMix: the x86_64 story needs non-eliminable (8/16-bit)
// moves in the stream of move-heavy benchmarks.
func TestMoveWidthMix(t *testing.T) {
	s, _ := ByName("vortex")
	e := program.NewExecutor(Build(s))
	var u isa.Uop
	widths := map[uint8]int{}
	for i := 0; i < 50_000; i++ {
		e.Next(&u)
		if u.Op == isa.Move {
			widths[u.Width]++
		}
	}
	if widths[64] == 0 || widths[32] == 0 {
		t.Fatalf("move widths missing: %v", widths)
	}
}
