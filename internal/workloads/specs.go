package workloads

import (
	"repro/internal/program"
)

// Catalog returns the 36 benchmark specs: 18 integer and 18 floating-point
// analogues of the paper's SPEC CPU2000/2006 subset (§5.2). Parameters are
// chosen so the per-benchmark stories the paper tells hold qualitatively:
//
//   - crafty: move-rich with moves on the critical chain (top ME gainer);
//   - vortex: even more moves but off-chain (high elimination rate, little
//     gain — §6.1's "does not correlate" example);
//   - namd: few moves, but all on a serial FP-adjacent chain (low rate,
//     high gain);
//   - astar: spill/reload-dominated with accurate Store Sets (SMB gains
//     come purely from hiding the STLF latency; lazy reclaim helps);
//   - hmmer: false-dependence- and trap-rich, DDT-capacity-sensitive;
//   - wupwise/applu: load-load-dependent FP codes with big SMB gains;
//   - mgrid: alias-heavy (bypass mispredictions; a small ISRB filters
//     some of them);
//   - gamess/gromacs: trap/false-dep reductions drive SMB gains.
func Catalog() []Spec {
	return []Spec{
		// ----- integer suite -----
		{Name: "gzip", MovePct: 0.08, MoveOnChainPct: 0.4, SpillPct: 0.05, SpillDist: 5,
			ArrayPct: 0.18, StridePct: 0.7, FootprintKB: 64, BranchPct: 0.5, HardBranchPct: 0.25,
			ILP: 3, InnerTripA: 12, InnerTripB: 6},
		{Name: "vpr", MovePct: 0.06, MoveOnChainPct: 0.5, SpillPct: 0.10, SpillDist: 5,
			ArrayPct: 0.15, StridePct: 0.3, FootprintKB: 256, BranchPct: 0.6, HardBranchPct: 0.45,
			ILP: 2, ChasePct: 0.02, ChaseNodes: 1024},
		{Name: "gcc", MovePct: 0.10, MoveOnChainPct: 0.4, SpillPct: 0.14, SpillDist: 4,
			PathDepPct: 0.2, ArrayPct: 0.10, StridePct: 0.5, FootprintKB: 256,
			BranchPct: 0.7, HardBranchPct: 0.35, CallPct: 0.25, ILP: 3, Blocks: 10},
		{Name: "mcf", MovePct: 0.03, MoveOnChainPct: 0.3, SpillPct: 0.05, SpillDist: 6,
			ChasePct: 0.12, ChaseNodes: 65536, ArrayPct: 0.10, StridePct: 0.1,
			FootprintKB: 4096, BranchPct: 0.5, HardBranchPct: 0.5, ILP: 2},
		{Name: "crafty", MovePct: 0.22, MoveOnChainPct: 0.95, SpillPct: 0.04, SpillDist: 6,
			ArrayPct: 0.10, StridePct: 0.5, FootprintKB: 32, BranchPct: 0.55, HardBranchPct: 0.2,
			ILP: 1, MulDivPct: 0.03, InnerTripA: 16},
		{Name: "parser", MovePct: 0.07, MoveOnChainPct: 0.4, SpillPct: 0.08, SpillDist: 6,
			PathDepPct: 0.4, ArrayPct: 0.10, StridePct: 0.3, FootprintKB: 128,
			BranchPct: 0.7, HardBranchPct: 0.4, CallPct: 0.2, ILP: 2},
		{Name: "eon", MovePct: 0.09, MoveOnChainPct: 0.5, SpillPct: 0.10, SpillDist: 4,
			FPPct: 0.15, ArrayPct: 0.10, StridePct: 0.8, FootprintKB: 32,
			BranchPct: 0.4, HardBranchPct: 0.15, CallPct: 0.3, ILP: 3},
		{Name: "perlbmk", MovePct: 0.11, MoveOnChainPct: 0.35, SpillPct: 0.12, SpillDist: 4,
			PathDepPct: 0.35, ArrayPct: 0.08, StridePct: 0.4, FootprintKB: 128,
			BranchPct: 0.75, HardBranchPct: 0.3, CallPct: 0.35, ILP: 2, Blocks: 9},
		{Name: "gap", MovePct: 0.07, MoveOnChainPct: 0.45, SpillPct: 0.10, SpillDist: 4,
			ArrayPct: 0.14, StridePct: 0.6, FootprintKB: 256, MulDivPct: 0.05,
			BranchPct: 0.45, HardBranchPct: 0.25, ILP: 3},
		{Name: "vortex", MovePct: 0.22, MoveOnChainPct: 0.05, SpillPct: 0.10, SpillDist: 4,
			ArrayPct: 0.10, StridePct: 0.6, FootprintKB: 128, BranchPct: 0.5, HardBranchPct: 0.15,
			ILP: 5, CallPct: 0.25},
		{Name: "bzip", MovePct: 0.06, MoveOnChainPct: 0.4, SpillPct: 0.16, SpillDist: 4,
			ReloadTwicePct: 0.5, FarSpillPct: 0.25, InvariantPct: 0.12, LoadOnChainPct: 0.55, TrapPct: 0.015, FalseDepPct: 0.02, ArrayPct: 0.15,
			StridePct: 0.5, FootprintKB: 256, BranchPct: 0.55, HardBranchPct: 0.35, ILP: 3},
		{Name: "twolf", MovePct: 0.05, MoveOnChainPct: 0.5, SpillPct: 0.08, SpillDist: 5,
			ArrayPct: 0.12, StridePct: 0.2, FootprintKB: 512, BranchPct: 0.6, HardBranchPct: 0.45,
			ILP: 2, ChasePct: 0.03, ChaseNodes: 4096},
		{Name: "gobmk", MovePct: 0.08, MoveOnChainPct: 0.45, SpillPct: 0.11, SpillDist: 4,
			PathDepPct: 0.3, ArrayPct: 0.10, StridePct: 0.4, FootprintKB: 128,
			BranchPct: 0.75, HardBranchPct: 0.5, CallPct: 0.3, ILP: 2, Blocks: 9},
		{Name: "hmmer", MovePct: 0.05, MoveOnChainPct: 0.4, SpillPct: 0.10, SpillDist: 5,
			ReloadTwicePct: 0.35, FarSpillPct: 0.125, InvariantPct: 0.06, TrapPct: 0.03, FalseDepPct: 0.06, AliasPct: 0.02,
			ArrayPct: 0.16, StridePct: 0.6, FootprintKB: 64, BranchPct: 0.35,
			HardBranchPct: 0.1, ILP: 4, InnerTripA: 24},
		{Name: "sjeng", MovePct: 0.09, MoveOnChainPct: 0.5, SpillPct: 0.09, SpillDist: 4,
			ArrayPct: 0.10, StridePct: 0.3, FootprintKB: 256, BranchPct: 0.7, HardBranchPct: 0.45,
			CallPct: 0.25, ILP: 2},
		{Name: "libquantum", MovePct: 0.03, MoveOnChainPct: 0.3, SpillPct: 0.04, SpillDist: 5,
			ArrayPct: 0.30, StridePct: 0.95, FootprintKB: 8192, BranchPct: 0.3,
			HardBranchPct: 0.05, ILP: 4, InnerTripA: 64},
		{Name: "h264ref", MovePct: 0.10, MoveOnChainPct: 0.55, SpillPct: 0.12, SpillDist: 3,
			ReloadTwicePct: 0.3, InvariantPct: 0.06, ArrayPct: 0.18, StridePct: 0.8, FootprintKB: 128,
			BranchPct: 0.4, HardBranchPct: 0.2, MulDivPct: 0.04, ILP: 3, InnerTripA: 16},
		{Name: "astar", MovePct: 0.04, MoveOnChainPct: 0.4, SpillPct: 0.06, SpillDist: 2,
			ReloadTwicePct: 0.55, FarSpillPct: 0.5, InvariantPct: 0.18, LoadOnChainPct: 0.7, ArrayPct: 0.08, StridePct: 0.3,
			FootprintKB: 512, BranchPct: 0.5, HardBranchPct: 0.3, ILP: 2,
			ChasePct: 0.02, ChaseNodes: 2048},

		// ----- floating-point suite -----
		{Name: "wupwise", FP: true, FPPct: 0.30, MovePct: 0.04, MoveOnChainPct: 0.5,
			SpillPct: 0.10, SpillDist: 5, ReloadTwicePct: 0.5, FarSpillPct: 0.125, InvariantPct: 0.10, TrapPct: 0.02, FalseDepPct: 0.03,
			ArrayPct: 0.12, StridePct: 0.8, FootprintKB: 256, BranchPct: 0.25,
			HardBranchPct: 0.05, ILP: 3, InnerTripA: 32},
		{Name: "swim", FP: true, FPPct: 0.35, MovePct: 0.02, MoveOnChainPct: 0.3,
			SpillPct: 0.06, SpillDist: 5, ArrayPct: 0.30, StridePct: 0.95, FootprintKB: 8192,
			BranchPct: 0.2, HardBranchPct: 0.05, ILP: 4, InnerTripA: 64},
		{Name: "mgrid", FP: true, FPPct: 0.32, MovePct: 0.03, MoveOnChainPct: 0.4,
			SpillPct: 0.12, SpillDist: 4, AliasPct: 0.08, ArrayPct: 0.25, StridePct: 0.9,
			FootprintKB: 2048, BranchPct: 0.2, HardBranchPct: 0.05, ILP: 3, InnerTripA: 48},
		{Name: "applu", FP: true, FPPct: 0.28, MovePct: 0.03, MoveOnChainPct: 0.4,
			SpillPct: 0.14, SpillDist: 4, ReloadTwicePct: 0.6, FarSpillPct: 0.25, InvariantPct: 0.13, LoadOnChainPct: 0.4, TrapPct: 0.02, FalseDepPct: 0.04,
			ArrayPct: 0.14, StridePct: 0.85, FootprintKB: 1024, BranchPct: 0.2,
			HardBranchPct: 0.05, ILP: 2, InnerTripA: 40},
		{Name: "mesa", FP: true, FPPct: 0.25, MovePct: 0.08, MoveOnChainPct: 0.5,
			SpillPct: 0.10, SpillDist: 4, ArrayPct: 0.15, StridePct: 0.7, FootprintKB: 128,
			BranchPct: 0.35, HardBranchPct: 0.15, CallPct: 0.2, ILP: 3},
		{Name: "galgel", FP: true, FPPct: 0.35, MovePct: 0.03, MoveOnChainPct: 0.4,
			SpillPct: 0.10, SpillDist: 4, ArrayPct: 0.22, StridePct: 0.85, FootprintKB: 512,
			BranchPct: 0.2, HardBranchPct: 0.1, ILP: 4, InnerTripA: 32},
		{Name: "art", FP: true, FPPct: 0.25, MovePct: 0.02, MoveOnChainPct: 0.3,
			SpillPct: 0.05, SpillDist: 5, ArrayPct: 0.30, StridePct: 0.5, FootprintKB: 4096,
			BranchPct: 0.3, HardBranchPct: 0.2, ILP: 2, InnerTripA: 24},
		{Name: "equake", FP: true, FPPct: 0.28, MovePct: 0.04, MoveOnChainPct: 0.4,
			SpillPct: 0.10, SpillDist: 4, ArrayPct: 0.20, StridePct: 0.4, FootprintKB: 2048,
			BranchPct: 0.3, HardBranchPct: 0.2, ILP: 2, ChasePct: 0.03, ChaseNodes: 8192},
		{Name: "gamess", FP: true, FPPct: 0.30, MovePct: 0.05, MoveOnChainPct: 0.5,
			SpillPct: 0.16, SpillDist: 4, ReloadTwicePct: 0.4, TrapPct: 0.025, FalseDepPct: 0.05,
			ArrayPct: 0.10, StridePct: 0.7, FootprintKB: 128, BranchPct: 0.3,
			HardBranchPct: 0.1, CallPct: 0.15, ILP: 3, InnerTripA: 20},
		{Name: "gromacs", FP: true, FPPct: 0.30, MovePct: 0.04, MoveOnChainPct: 0.5,
			SpillPct: 0.10, SpillDist: 4, ReloadTwicePct: 0.3, LoadOnChainPct: 0.6, TrapPct: 0.03, FalseDepPct: 0.045,
			ArrayPct: 0.12, StridePct: 0.75, FootprintKB: 256, BranchPct: 0.3,
			HardBranchPct: 0.1, ILP: 3, InnerTripA: 24},
		{Name: "ammp", FP: true, FPPct: 0.30, MovePct: 0.03, MoveOnChainPct: 0.4,
			SpillPct: 0.08, SpillDist: 5, ArrayPct: 0.18, StridePct: 0.3, FootprintKB: 1024,
			BranchPct: 0.3, HardBranchPct: 0.25, ILP: 2, ChasePct: 0.04, ChaseNodes: 16384},
		{Name: "lucas", FP: true, FPPct: 0.38, MovePct: 0.02, MoveOnChainPct: 0.3,
			SpillPct: 0.08, SpillDist: 4, ArrayPct: 0.20, StridePct: 0.9, FootprintKB: 4096,
			BranchPct: 0.15, HardBranchPct: 0.05, ILP: 4, InnerTripA: 56},
		{Name: "fma3d", FP: true, FPPct: 0.30, MovePct: 0.05, MoveOnChainPct: 0.45,
			SpillPct: 0.10, SpillDist: 5, PathDepPct: 0.12, ArrayPct: 0.12, StridePct: 0.7,
			FootprintKB: 128, BranchPct: 0.35, HardBranchPct: 0.2, CallPct: 0.2, ILP: 3},
		{Name: "namd", FP: true, FPPct: 0.18, MovePct: 0.07, MoveOnChainPct: 1.0,
			SpillPct: 0.08, SpillDist: 4, ArrayPct: 0.12, StridePct: 0.8, FootprintKB: 64,
			BranchPct: 0.2, HardBranchPct: 0.05, ILP: 1, MulDivPct: 0.04, InnerTripA: 24},
		{Name: "milc", FP: true, FPPct: 0.32, MovePct: 0.03, MoveOnChainPct: 0.4,
			SpillPct: 0.09, SpillDist: 4, ArrayPct: 0.22, StridePct: 0.8, FootprintKB: 4096,
			BranchPct: 0.2, HardBranchPct: 0.1, ILP: 3, InnerTripA: 32},
		{Name: "zeusmp", FP: true, FPPct: 0.30, MovePct: 0.04, MoveOnChainPct: 0.4,
			SpillPct: 0.06, SpillDist: 5, ReloadTwicePct: 0.25, InvariantPct: 0.04, LoadOnChainPct: 0.5, ArrayPct: 0.18, StridePct: 0.85,
			FootprintKB: 1024, BranchPct: 0.2, HardBranchPct: 0.05, ILP: 3, InnerTripA: 40},
		{Name: "cactusADM", FP: true, FPPct: 0.34, MovePct: 0.03, MoveOnChainPct: 0.4,
			SpillPct: 0.13, SpillDist: 5, PathDepPct: 0.2, ArrayPct: 0.16, StridePct: 0.8,
			FootprintKB: 2048, BranchPct: 0.15, HardBranchPct: 0.05, ILP: 2, InnerTripA: 48,
			DivPct: 0.15},
		{Name: "lbm", FP: true, FPPct: 0.30, MovePct: 0.02, MoveOnChainPct: 0.3,
			SpillPct: 0.05, SpillDist: 5, ArrayPct: 0.32, StridePct: 0.95, FootprintKB: 8192,
			BranchPct: 0.1, HardBranchPct: 0.05, ILP: 4, InnerTripA: 64},
	}
}

// Names returns the catalog's benchmark names, integer suite first.
// The returned slice is memoized and shared: callers must not mutate it.
//
// Deprecated: use Members("all") and read Spec.Name — Spec is the
// public currency of the redesigned API.
func Names() []string { return tables().names }

// IntNames and FPNames split the catalog as the paper's figures do.
// The returned slices are memoized and shared: callers must not mutate
// them.
//
// Deprecated: use Members("int").
func IntNames() []string { return tables().intNames }

// FPNames returns the floating-point suite's names.
//
// Deprecated: use Members("fp").
func FPNames() []string { return tables().fpNames }

// ByName returns the spec for a catalog benchmark.
//
// Deprecated: use Resolve, which also understands gen: generator names.
func ByName(name string) (Spec, error) { return Resolve(name) }

// MustProgram builds the program for a benchmark name.
//
// Deprecated: use Resolve + Build.
func MustProgram(name string) *program.Program {
	s, err := Resolve(name)
	if err != nil {
		panic(err)
	}
	return Build(s)
}

// Group resolves a named benchmark group to its member list, in catalog
// order. The returned slice is memoized and shared: callers must not
// mutate it.
//
// Deprecated: use Members, which returns Specs instead of names.
func Group(name string) ([]string, bool) {
	names, ok := tables().groups[name]
	return names, ok
}

// GroupNames lists the named groups Group resolves.
//
// Deprecated: use Groups.
func GroupNames() []string { return Groups() }
