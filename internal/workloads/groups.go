package workloads

import (
	"repro/internal/isa"
	"repro/internal/program"
)

// This file contains the instruction-group emitters: each emits a small,
// self-contained µop pattern exercising one of the behaviours the paper's
// evaluation depends on, and returns the number of instructions emitted.

// block emits one body block: an optional inner loop wrapper around a
// budgeted stream of groups, an optional data-dependent hop, and an
// optional leaf call.
func (g *gen) block(idx int) {
	s := g.spec
	useInner := idx%3 == 0 && s.InnerTripA > 1
	trip := s.InnerTripA
	if idx%2 == 1 {
		trip = s.InnerTripB
	}
	var innerLbl string
	if useInner {
		g.emitALU(program.SInst{
			Op: isa.ALU, Sem: program.SemMovImm, Dest: rInner, Imm: 0, Width: 64,
		})
		innerLbl = g.uniqueLabel("inner")
		g.b.Label(innerLbl)
	}

	emitted := 0
	hopAt := -1
	if g.r.Bool(s.BranchPct) {
		hopAt = g.r.Intn(s.BlockLen)
	}
	for emitted < s.BlockLen {
		var n int
		if hopAt >= 0 && emitted >= hopAt {
			n = g.condHop()
			hopAt = -1
		} else {
			n = g.group()
		}
		emitted += n
		g.instrs += n
	}

	if g.r.Bool(s.CallPct) {
		g.b.EmitBranchTo(program.SInst{
			Op: isa.Branch, Kind: isa.BrCall, Cond: program.CondAlways,
			Src: [2]isa.Reg{rOuter, isa.NoReg}, Width: 64,
		}, leafLabel(g.r.Intn(2)))
	}

	if useInner {
		g.emitALU(program.SInst{
			Op: isa.ALU, Sem: program.SemAddImm,
			Src: [2]isa.Reg{rInner, isa.NoReg}, Dest: rInner, Imm: 1, Width: 64,
		})
		g.b.EmitBranchTo(program.SInst{
			Op: isa.Branch, Kind: isa.BrCond, Cond: program.CondLTImm,
			Src: [2]isa.Reg{rInner, isa.NoReg}, Imm: uint64(trip), Width: 64,
		}, innerLbl)
	}
}

// group picks one pattern. The rare, behaviour-defining patterns (traps,
// false dependencies, aliasing, partial overlap) are emitted on running
// quotas so every benchmark realizes its configured rates even in a small
// static footprint; the common patterns are drawn by roulette.
func (g *gen) group() int {
	g.groups++
	s := g.spec
	// Quota patterns are charged by instruction count so a probability
	// means "fraction of the program's µops", independent of group size.
	switch {
	case g.due(&g.cntTrap, s.TrapPct):
		return g.charge(&g.cntTrap, g.trapGroup())
	case g.due(&g.cntFD, s.FalseDepPct):
		return g.charge(&g.cntFD, g.falseDepGroup())
	case g.due(&g.cntAlias, s.AliasPct):
		return g.charge(&g.cntAlias, g.aliasGroup())
	case g.due(&g.cntPartial, s.PartialPct):
		return g.charge(&g.cntPartial, g.partialGroup())
	}
	x := g.r.Float64()
	cum := 0.0
	pick := func(p float64) bool {
		cum += p
		return x < cum
	}
	switch {
	case pick(s.MovePct):
		return g.moveGroup()
	case pick(s.SpillPct):
		return g.spillGroup()
	case pick(s.InvariantPct * 0.12):
		return g.invariantRefresh()
	case pick(s.InvariantPct):
		return g.invariantGroup()
	case pick(s.ArrayPct):
		return g.arrayGroup()
	case pick(s.ChasePct):
		return g.chaseGroup()
	case pick(s.FPPct):
		return g.fpGroup()
	case pick(s.MulDivPct):
		return g.mulDivGroup()
	default:
		return g.aluGroup()
	}
}

// due implements a running quota over emitted instructions: the pattern
// fires while its share of the program's µops is below pct. The caller
// charges the actual instruction count through charge().
func (g *gen) due(count *int, pct float64) bool {
	if pct <= 0 {
		return false
	}
	return float64(*count) < pct*float64(g.instrs+1)
}

// charge adds a quota pattern's emitted instructions to its counter (the
// caller's block loop accounts the global instruction count).
func (g *gen) charge(count *int, n int) int {
	*count += n
	return n
}

// consume emits the consumer of a loaded value: on the serial chain with
// probability LoadOnChainPct (the load's latency then sits on the critical
// path), otherwise into a dead-end scratch (only issue bandwidth).
func (g *gen) consume(ld isa.Reg) int {
	if g.r.Bool(g.spec.LoadOnChainPct) {
		use := g.nextChain()
		g.emitALU(program.SInst{
			Op: isa.ALU, Sem: program.SemXor,
			Src: [2]isa.Reg{use, ld}, Dest: use, Width: 64,
		})
	} else {
		sink := scratchReg(g.r.Intn(3))
		g.emitALU(program.SInst{
			Op: isa.ALU, Sem: program.SemAddImm,
			Src: [2]isa.Reg{ld, isa.NoReg}, Dest: sink, Imm: 1, Width: 64,
		})
	}
	return 1
}

// aluGroup: one plain chain operation.
func (g *gen) aluGroup() int {
	acc := g.nextChain()
	sems := []program.Semantic{program.SemAddImm, program.SemMulImm, program.SemXor}
	sem := sems[g.r.Intn(len(sems))]
	in := program.SInst{Op: isa.ALU, Sem: sem, Dest: acc, Width: 64}
	switch sem {
	case program.SemXor:
		in.Src = [2]isa.Reg{acc, chainReg(g.r.Intn(6))}
	case program.SemMulImm:
		in.Op = isa.ALU // value scrambler but single-cycle class
		in.Src = [2]isa.Reg{acc, isa.NoReg}
		in.Imm = 0x9E3779B1
	default:
		in.Src = [2]isa.Reg{acc, isa.NoReg}
		in.Imm = uint64(g.r.Range(1, 255))
	}
	g.emitALU(in)
	return 1
}

// moveGroup: a reg-reg move, on or off the dependency chain (§2, Fig. 5).
// About a tenth of moves are 16-bit merge µops, which are architecturally
// not eliminable and carry a dependence on their old destination value.
func (g *gen) moveGroup() int {
	acc := g.nextChain()
	sc := scratchReg(g.r.Intn(3))
	width := uint8(64)
	if g.r.Bool(0.4) {
		width = 32
	}
	if g.r.Bool(0.1) {
		width = 16
	}
	mv := program.SInst{
		Op: isa.Move, Sem: program.SemMov,
		Src: [2]isa.Reg{acc, isa.NoReg}, Dest: sc, Width: width,
	}
	if width == 16 {
		mv.Src[1] = sc // merge µop: old destination is a source
	}
	g.b.Emit(mv)
	if g.r.Bool(g.spec.MoveOnChainPct) {
		// Continue the chain through the moved copy: eliminating the
		// move removes a cycle from the critical path.
		g.emitALU(program.SInst{
			Op: isa.ALU, Sem: program.SemAddImm,
			Src: [2]isa.Reg{sc, isa.NoReg}, Dest: acc,
			Imm: uint64(g.r.Range(1, 63)), Width: 64,
		})
		return 2
	}
	return 1
}

// spillGroup: the compiler spill/reload pattern SMB targets (§1, §3):
// produce, store to a stack slot, filler, reload, consume. With
// ReloadTwicePct a second redundant load forms a load-load pair; with
// PathDepPct the reload distance depends on a prior branch direction
// (which the TAGE-like distance predictor can capture but a PC-indexed
// table cannot).
func (g *gen) spillGroup() int {
	s := g.spec
	acc := g.nextChain()
	other := g.nextChain()
	slotOff := uint64(g.slot%64) * 8
	g.slot++
	n := 0

	g.emitALU(program.SInst{
		Op: isa.ALU, Sem: program.SemAddImm,
		Src: [2]isa.Reg{acc, isa.NoReg}, Dest: acc,
		Imm: uint64(g.r.Range(1, 127)), Width: 64,
	})
	g.b.Emit(program.SInst{
		Op: isa.Store, Sem: program.SemStore,
		Src: [2]isa.Reg{acc, isa.NoReg}, AddrReg: rStack, Imm: slotOff, Width: 64,
	})
	n += 2

	fill := s.SpillDist
	if g.r.Bool(s.PathDepPct) {
		// A data-dependent hop in the middle makes the store→load
		// distance path-dependent.
		skip := g.uniqueLabel("sd")
		g.b.EmitBranchTo(program.SInst{
			Op: isa.Branch, Kind: isa.BrCond, Cond: program.CondBitSet,
			Src: [2]isa.Reg{other, isa.NoReg}, Imm: uint64(g.r.Range(3, 40)), Width: 64,
		}, skip)
		for i := 0; i < 3; i++ {
			n += g.aluGroup()
		}
		g.b.Label(skip)
		n++
	}
	for i := 0; i < fill; i++ {
		n += g.aluGroup()
	}

	ld := scratchReg(g.r.Intn(3))
	g.b.Emit(program.SInst{
		Op: isa.Load, Sem: program.SemLoad,
		Dest: ld, AddrReg: rStack, Imm: slotOff, Width: 64,
	})
	n += 1 + g.consume(ld)

	if g.r.Bool(s.ReloadTwicePct) {
		ld2 := scratchReg(g.r.Intn(3))
		g.b.Emit(program.SInst{
			Op: isa.Load, Sem: program.SemLoad,
			Dest: ld2, AddrReg: rStack, Imm: slotOff, Width: 64,
		})
		n += 1 + g.consume(ld2)
	}
	return n
}

// arrayGroup: strided or hashed walks over the array footprint; drives
// cache behaviour and (for hashed walks) unpredictable load values.
func (g *gen) arrayGroup() int {
	s := g.spec
	n := 0
	if g.r.Bool(s.StridePct) {
		g.emitALU(program.SInst{
			Op: isa.ALU, Sem: program.SemAddImm,
			Src: [2]isa.Reg{rIdx, isa.NoReg}, Dest: rIdx, Imm: 8, Width: 64,
		})
	} else {
		g.emitALU(program.SInst{
			Op: isa.ALU, Sem: program.SemMulImm,
			Src: [2]isa.Reg{rIdx, isa.NoReg}, Dest: rIdx, Imm: 0x2545F4914F6CDD1D, Width: 64,
		})
	}
	g.emitALU(program.SInst{
		Op: isa.ALU, Sem: program.SemAndImm,
		Src: [2]isa.Reg{rIdx, isa.NoReg}, Dest: rIdx, Imm: g.mask, Width: 64,
	})
	t := scratchReg(g.r.Intn(3))
	g.emitALU(program.SInst{
		Op: isa.ALU, Sem: program.SemAdd,
		Src: [2]isa.Reg{rArr, rIdx}, Dest: t, Width: 64,
	})
	n += 3
	if g.r.Bool(0.25) {
		acc := g.nextChain()
		g.b.Emit(program.SInst{
			Op: isa.Store, Sem: program.SemStore,
			Src: [2]isa.Reg{acc, isa.NoReg}, AddrReg: t, Imm: 0, Width: 64,
		})
		n++
		return n
	}
	ld := scratchReg(g.r.Intn(3))
	acc := g.nextChain()
	g.b.Emit(program.SInst{
		Op: isa.Load, Sem: program.SemLoad,
		Dest: ld, AddrReg: t, Imm: 0, Width: 64,
	})
	g.emitALU(program.SInst{
		Op: isa.ALU, Sem: program.SemXor,
		Src: [2]isa.Reg{acc, ld}, Dest: acc, Width: 64,
	})
	n += 2
	return n
}

// chaseGroup: one pointer-chase step (serialized loads; latency-bound).
func (g *gen) chaseGroup() int {
	g.b.Emit(program.SInst{
		Op: isa.Load, Sem: program.SemLoad,
		Dest: rChase, AddrReg: rChase, Imm: 0, Width: 64,
	})
	return 1
}

// invariantGroup: a load of a slot that is written only at initialization.
// The value's original store is ancient, so a store-load distance cannot
// be encoded — but with load-load bypassing the previous dynamic instance
// of the same (or a nearby) invariant load is the producer, at a short,
// stable distance. These are the redundant loads that let "a single
// register propagate for a longer time" (§3) and the reason store-only
// bypassing loses so much in the astar/wupwise/applu/bzip/hmmer analogues
// (§6.2).
func (g *gen) invariantGroup() int {
	slotIdx := g.r.Intn(8)
	use := g.nextChain()
	reads := 2 + g.r.Intn(2)
	n := 0
	for k := 0; k < reads; k++ {
		ld := scratchReg(g.r.Intn(3))
		t := scratchReg((g.r.Intn(3) + 1) % 3)
		// The address depends on the consuming chain (masked to a
		// constant), so each read's latency sits on the critical path —
		// exactly the detour that bypassing to the previous instance's
		// register removes. Consecutive reads of the same slot are a few
		// µops apart, a distance the predictor captures immediately.
		g.emitALU(program.SInst{
			Op: isa.ALU, Sem: program.SemAndImm,
			Src: [2]isa.Reg{use, isa.NoReg}, Dest: t, Imm: 0, Width: 64,
		})
		g.emitALU(program.SInst{
			Op: isa.ALU, Sem: program.SemAdd,
			Src: [2]isa.Reg{rStack, t}, Dest: t, Width: 64,
		})
		g.b.Emit(program.SInst{
			Op: isa.Load, Sem: program.SemLoad,
			Dest: ld, AddrReg: t, Imm: invRegion + uint64(slotIdx)*8, Width: 64,
		})
		n += 3 + g.consume(ld)
	}
	return n
}

// invariantRefresh re-stores one invariant slot from a fresh register.
// This bounds how long one physical register keeps collecting sharers,
// which is why the paper gets away with 3-bit reference counters (§6.3).
func (g *gen) invariantRefresh() int {
	slotIdx := g.r.Intn(8)
	fresh := scratchReg(g.r.Intn(3))
	g.emitALU(program.SInst{
		Op: isa.ALU, Sem: program.SemAddImm,
		Src: [2]isa.Reg{chainReg(g.r.Intn(6)), isa.NoReg}, Dest: fresh, Imm: 0x51, Width: 64,
	})
	g.b.Emit(program.SInst{
		Op: isa.Store, Sem: program.SemStore,
		Src: [2]isa.Reg{fresh, isa.NoReg}, AddrReg: rStack,
		Imm: invRegion + uint64(slotIdx)*8, Width: 64,
	})
	return 2
}

// fpGroup: FP chain work on the xmm registers.
func (g *gen) fpGroup() int {
	i := g.r.Intn(8)
	dst, a, b := fpReg(i), fpReg(i), fpReg(i+1)
	if g.r.Bool(0.35) {
		heavy := g.r.Bool(g.spec.DivPct)
		g.b.Emit(program.SInst{
			Op: isa.FPMulDiv, Sem: program.SemMulImm, Heavy: heavy,
			Src: [2]isa.Reg{a, isa.NoReg}, Dest: dst, Imm: 0x9E3779B97F4A7C15, Width: 64,
		})
		return 1
	}
	g.b.Emit(program.SInst{
		Op: isa.FP, Sem: program.SemAdd,
		Src: [2]isa.Reg{a, b}, Dest: dst, Width: 64,
	})
	return 1
}

// mulDivGroup: integer multiply or (heavy) divide.
func (g *gen) mulDivGroup() int {
	acc := g.nextChain()
	heavy := g.r.Bool(g.spec.DivPct)
	g.b.Emit(program.SInst{
		Op: isa.MulDiv, Sem: program.SemMulImm, Heavy: heavy,
		Src: [2]isa.Reg{acc, isa.NoReg}, Dest: acc, Imm: 0xD1B54A32D192ED03, Width: 64,
	})
	return 1
}

// aliasGroup reproduces Figure 1 with a twist that exercises bypass
// validation: store 1 (through pointer p) always writes X; store 2
// (through pointer q) writes X or X+8 depending on a slowly-alternating
// phase bit (bit 5 of the outer counter: 32-iteration runs). The load of X
// therefore alternates producers on a cadence long enough for the distance
// predictor to saturate confidence and then mispredict at each phase
// change — the bypass mispredictions the mgrid-analogue needs (§6.3).
func (g *gen) aliasGroup() int {
	off := uint64(g.r.Intn(16)) * 16
	c1, c2 := g.nextChain(), g.nextChain()
	sel := scratchReg(g.r.Intn(3))
	g.emitALU(program.SInst{
		Op: isa.ALU, Sem: program.SemAddImm,
		Src: [2]isa.Reg{c1, isa.NoReg}, Dest: c1, Imm: 3, Width: 64,
	})
	g.b.Emit(program.SInst{
		Op: isa.Store, Sem: program.SemStore,
		Src: [2]isa.Reg{c1, isa.NoReg}, AddrReg: rArr, Imm: off, Width: 64,
	})
	// sel = ((outer >> 5) & 1) << 3 : 0 for 32 iterations, 8 for the next 32.
	g.emitALU(program.SInst{
		Op: isa.ALU, Sem: program.SemShrImm,
		Src: [2]isa.Reg{rOuter, isa.NoReg}, Dest: sel, Imm: 5, Width: 64,
	})
	g.emitALU(program.SInst{
		Op: isa.ALU, Sem: program.SemAndImm,
		Src: [2]isa.Reg{sel, isa.NoReg}, Dest: sel, Imm: 1, Width: 64,
	})
	g.emitALU(program.SInst{
		Op: isa.ALU, Sem: program.SemShl,
		Src: [2]isa.Reg{sel, isa.NoReg}, Dest: sel, Imm: 3, Width: 64,
	})
	g.emitALU(program.SInst{
		Op: isa.ALU, Sem: program.SemAdd,
		Src: [2]isa.Reg{rAlias, sel}, Dest: sel, Width: 64,
	})
	g.emitALU(program.SInst{
		Op: isa.ALU, Sem: program.SemAddImm,
		Src: [2]isa.Reg{c2, isa.NoReg}, Dest: c2, Imm: 7, Width: 64,
	})
	g.b.Emit(program.SInst{
		Op: isa.Store, Sem: program.SemStore,
		Src: [2]isa.Reg{c2, isa.NoReg}, AddrReg: sel, Imm: off, Width: 64,
	})
	ld := scratchReg(g.r.Intn(3))
	g.b.Emit(program.SInst{
		Op: isa.Load, Sem: program.SemLoad,
		Dest: ld, AddrReg: rArr, Imm: off, Width: 64,
	})
	return 9 + g.consume(ld)
}

// farSpan is a straight-line region with exactly controlled store→load
// distances, creating the geometries behind three of the paper's findings:
//
//   - reload 1 sits ~227 µops after the producer: within the 8-bit
//     distance encoding but beyond the 192-entry ROB, so it can only be
//     bypassed from a committed instruction (lazy reclaim, §3.3 — the
//     astar-analogue's gain);
//   - reload 2 sits ~33 µops after reload 1 but ~260 after the producer:
//     only load-load bypassing can collapse it (§3 — the store-only
//     ablation's drop);
//   - without SMB both reloads pay the full STLF/L1 latency.
func (g *gen) farSpan(site int) {
	slot := farRegion + uint64(site%32)*8
	acc := g.nextChain()
	g.emitALU(program.SInst{
		Op: isa.ALU, Sem: program.SemAddImm,
		Src: [2]isa.Reg{acc, isa.NoReg}, Dest: acc, Imm: 17, Width: 64,
	})
	g.b.Emit(program.SInst{
		Op: isa.Store, Sem: program.SemStore,
		Src: [2]isa.Reg{acc, isa.NoReg}, AddrReg: rStack, Imm: slot, Width: 64,
	})
	for i := 0; i < 225; i++ {
		g.aluGroup()
	}
	ld1 := scratchReg(0)
	g.b.Emit(program.SInst{
		Op: isa.Load, Sem: program.SemLoad, Dest: ld1, AddrReg: rStack, Imm: slot, Width: 64,
	})
	g.consume(ld1)
	for i := 0; i < 31; i++ {
		g.aluGroup()
	}
	ld2 := scratchReg(1)
	g.b.Emit(program.SInst{
		Op: isa.Load, Sem: program.SemLoad, Dest: ld2, AddrReg: rStack, Imm: slot, Width: 64,
	})
	g.consume(ld2)
}

// Stack-region layout (byte offsets from stackBase): spill slots occupy
// [0,512), trap sites [512,1024), partial-overlap sites [1536,1792), and
// false-dependence sites [2048,4096) in 32-byte cells. Keeping the regions
// disjoint keeps each pattern's memory behaviour self-contained.
const (
	trapRegion    = 512
	farRegion     = 1024
	invRegion     = 1280
	partialRegion = 1536
	fdRegion      = 2048
)

// trapGroup: a store whose address resolves late (behind a load-headed
// dependence chain) followed by an early-address load of the same
// location. Until Store Sets learns the pair, the load issues before the
// store's address is known and triggers a memory-order violation — the
// trap events of Figure 4. Each cyclic clearing of the store sets costs
// one more violation per site. SMB identifies the pair by distance
// instead and avoids both the trap and the serialization.
func (g *gen) trapGroup() int {
	site := g.trapSite % 32
	g.trapSite++
	off := trapRegion + uint64(site)*16      // trapped slot
	priv := trapRegion + uint64(site)*16 + 8 // slow-chain feeder slot

	acc := g.nextChain()
	sl := scratchReg(g.r.Intn(3))
	t1 := scratchReg((g.r.Intn(3) + 1) % 3)

	// Slow address chain: load a private slot, mask to zero, add base.
	g.b.Emit(program.SInst{
		Op: isa.Load, Sem: program.SemLoad, Dest: sl, AddrReg: rStack, Imm: priv, Width: 64,
	})
	g.emitALU(program.SInst{
		Op: isa.ALU, Sem: program.SemAndImm,
		Src: [2]isa.Reg{sl, isa.NoReg}, Dest: t1, Imm: 0, Width: 64,
	})
	g.emitALU(program.SInst{
		Op: isa.ALU, Sem: program.SemAdd,
		Src: [2]isa.Reg{rStack, t1}, Dest: t1, Width: 64,
	})
	g.emitALU(program.SInst{
		Op: isa.ALU, Sem: program.SemAddImm,
		Src: [2]isa.Reg{acc, isa.NoReg}, Dest: acc, Imm: 11, Width: 64,
	})
	g.b.Emit(program.SInst{
		Op: isa.Store, Sem: program.SemStore,
		Src: [2]isa.Reg{acc, isa.NoReg}, AddrReg: t1, Imm: off, Width: 64,
	})
	ld := scratchReg(g.r.Intn(3))
	g.b.Emit(program.SInst{
		Op: isa.Load, Sem: program.SemLoad,
		Dest: ld, AddrReg: rStack, Imm: off, Width: 64,
	})
	return 6 + g.consume(ld)
}

// falseDepGroup builds a pattern where Store Sets learns an overly
// conservative dependence. Store A always writes X with a fast, immediate
// address — it is the real producer the load forwards from. Store B has a
// slow, flag-dependent address: on the first outer iteration it also
// writes X (after A), so the early-issuing load violates against B and
// Store Sets puts {load, B} in one set; on every later iteration B writes
// Y ≠ X, yet the load keeps waiting for it — a false dependency (Fig. 4).
// The DDT-identified distance (to A's producer) is constant, so SMB
// removes the stall (§3.1, Fig. 6b).
func (g *gen) falseDepGroup() int {
	base := fdRegion + uint64(g.fdSite%64)*32 // X = base, Y = base+8
	flag := base + 24
	g.fdSite++
	cb := g.nextChain()
	f := scratchReg(0)
	ca := scratchReg(1)
	t := scratchReg(2)

	// Store A: the real producer of X. Its data comes off the (always
	// ready) outer counter so A executes early and forwards cleanly —
	// it must never violate and join the store set itself.
	g.emitALU(program.SInst{
		Op: isa.ALU, Sem: program.SemAddImm,
		Src: [2]isa.Reg{rOuter, isa.NoReg}, Dest: ca, Imm: base, Width: 64,
	})
	g.b.Emit(program.SInst{
		Op: isa.Store, Sem: program.SemStore,
		Src: [2]isa.Reg{ca, isa.NoReg}, AddrReg: rStack, Imm: base, Width: 64,
	})
	// f = firstRun ? 0 : 1 (flag slot, slow: heads store B's address chain).
	g.b.Emit(program.SInst{
		Op: isa.Load, Sem: program.SemLoad, Dest: f, AddrReg: rStack, Imm: flag, Width: 64,
	})
	// t = rStack + (f << 3): B writes X on the first run, Y afterwards.
	g.emitALU(program.SInst{
		Op: isa.ALU, Sem: program.SemShl,
		Src: [2]isa.Reg{f, isa.NoReg}, Dest: t, Imm: 3, Width: 64,
	})
	g.emitALU(program.SInst{
		Op: isa.ALU, Sem: program.SemAdd,
		Src: [2]isa.Reg{rStack, t}, Dest: t, Width: 64,
	})
	g.emitALU(program.SInst{
		Op: isa.ALU, Sem: program.SemAddImm,
		Src: [2]isa.Reg{cb, isa.NoReg}, Dest: cb, Imm: 9, Width: 64,
	})
	g.b.Emit(program.SInst{
		Op: isa.Store, Sem: program.SemStore,
		Src: [2]isa.Reg{cb, isa.NoReg}, AddrReg: t, Imm: base, Width: 64,
	})
	// Set the flag for the next iteration.
	g.emitALU(program.SInst{
		Op: isa.ALU, Sem: program.SemMovImm, Dest: f, Imm: 1, Width: 64,
	})
	g.b.Emit(program.SInst{
		Op: isa.Store, Sem: program.SemStore,
		Src: [2]isa.Reg{f, isa.NoReg}, AddrReg: rStack, Imm: flag, Width: 64,
	})
	// The load always reads X (fed by A after the first iteration).
	ld := scratchReg(1)
	g.b.Emit(program.SInst{
		Op: isa.Load, Sem: program.SemLoad, Dest: ld, AddrReg: rStack, Imm: base, Width: 64,
	})
	return 10 + g.consume(ld)
}

// partialGroup: a 32-bit store followed by a 64-bit load of the same
// word — not contained, so the load must wait for the store's writeback
// (Table 1's STLF rule) and SMB is the only way to hide it.
func (g *gen) partialGroup() int {
	off := partialRegion + uint64(g.partialSite%32)*8
	g.partialSite++
	acc := g.nextChain()
	g.emitALU(program.SInst{
		Op: isa.ALU, Sem: program.SemAddImm,
		Src: [2]isa.Reg{acc, isa.NoReg}, Dest: acc, Imm: 21, Width: 64,
	})
	g.b.Emit(program.SInst{
		Op: isa.Store, Sem: program.SemStore,
		Src: [2]isa.Reg{acc, isa.NoReg}, AddrReg: rStack, Imm: off, Width: 32,
	})
	ld := scratchReg(g.r.Intn(3))
	g.b.Emit(program.SInst{
		Op: isa.Load, Sem: program.SemLoad, Dest: ld, AddrReg: rStack, Imm: off, Width: 64,
	})
	return 3 + g.consume(ld)
}

// condHop: a short forward hop guarded by either a loop-like predictable
// condition or a data-dependent ~50/50 one. Hard hops are emitted on a
// running quota so every benchmark realizes its configured
// HardBranchPct even with few static sites.
func (g *gen) condHop() int {
	skip := g.uniqueLabel("hop")
	g.hops++
	hard := float64(g.hardHops) < g.spec.HardBranchPct*float64(g.hops)
	br := program.SInst{Op: isa.Branch, Kind: isa.BrCond, Width: 64}
	n := 0
	if hard {
		g.hardHops++
		// Scramble a chain value so the tested bit is effectively
		// random (but deterministic) — a ~50/50 data-dependent branch.
		t := scratchReg(g.r.Intn(3))
		g.emitALU(program.SInst{
			Op: isa.ALU, Sem: program.SemMulImm,
			Src: [2]isa.Reg{g.nextChain(), isa.NoReg}, Dest: t,
			Imm: 0xFF51AFD7ED558CCD, Width: 64,
		})
		n++
		br.Cond = program.CondBitSet
		br.Src = [2]isa.Reg{t, isa.NoReg}
		br.Imm = uint64(g.r.Range(40, 60))
	} else {
		br.Cond = program.CondNEImm
		br.Src = [2]isa.Reg{rOuter, isa.NoReg}
		br.Imm = 0 // almost always taken after warmup
	}
	g.b.EmitBranchTo(br, skip)
	n++
	body := g.r.Range(2, 4)
	for i := 0; i < body; i++ {
		n += g.aluGroup()
	}
	g.b.Label(skip)
	return n
}

func leafLabel(i int) string {
	if i == 0 {
		return "leaf0"
	}
	return "leaf1"
}

// leafFunctions emits two small callable functions (RAS exercise).
func (g *gen) leafFunctions() {
	for i := 0; i < 2; i++ {
		g.b.Label(leafLabel(i))
		for k := 0; k < 3+i*2; k++ {
			g.aluGroup()
		}
		g.b.Emit(program.SInst{
			Op: isa.Branch, Kind: isa.BrRet, Cond: program.CondAlways,
			Src: [2]isa.Reg{rOuter, isa.NoReg}, Width: 64,
		})
	}
}
