package workloads

// The registered shape families. Each maps a small, documented parameter
// point onto the Spec vector; everything a family does not pin is chosen
// to keep the shape's signal (register pressure, pointer chasing, vector
// streaming, branch hostility) dominant over background noise. Ranges
// bound program-construction cost: ChaseNodes and FootprintKB drive the
// size of the program's initial memory image, so their maxima stay at
// the catalog's own extremes (mcf, lbm).
var generators = map[string]*Generator{
	"spill": {
		Family: "spill",
		Doc:    "register-pressure kernel: spill/reload density scales with tile depth, per the tiling register-pressure model",
		Params: []Param{
			{Key: "depth", Doc: "tile depth; spill density ~ 4%/level, saturating at 64%", Def: 8, Min: 1, Max: 64, Int: true},
			{Key: "dist", Doc: "filler ops between a spill store and its reload", Def: 6, Min: 1, Max: 64, Int: true},
			{Key: "reuse", Doc: "fraction of reloads repeated (load-load pair fodder)", Def: 0.4, Min: 0, Max: 1},
			{Key: "far", Doc: "beyond-window store-to-load spans per block", Def: 0.25, Min: 0, Max: 1},
		},
		Make: func(p map[string]float64) Spec {
			return Spec{
				Blocks: 10, BlockLen: 24, ILP: 2,
				SpillPct:       min(0.64, 0.04*p["depth"]),
				SpillDist:      int(p["dist"]),
				ReloadTwicePct: p["reuse"],
				FarSpillPct:    p["far"],
				InvariantPct:   0.08, LoadOnChainPct: 0.6, PathDepPct: 0.15,
				ArrayPct: 0.08, StridePct: 0.5, FootprintKB: 128,
				BranchPct: 0.35, HardBranchPct: 0.15, InnerTripA: 16,
			}
		},
	},
	"chase": {
		Family: "chase",
		Doc:    "pointer-chasing kernel: serial loads over a random cyclic ring, miss latency scales with ring size",
		Params: []Param{
			{Key: "nodes", Doc: "chase ring size (drives miss latency)", Def: 4096, Min: 16, Max: 262144, Int: true},
			{Key: "mix", Doc: "probability a group chases a pointer", Def: 0.2, Min: 0, Max: 1},
			{Key: "footprint", Doc: "background array footprint in KB", Def: 1024, Min: 8, Max: 8192, Int: true},
		},
		Make: func(p map[string]float64) Spec {
			return Spec{
				Blocks: 8, BlockLen: 24, ILP: 2,
				ChasePct:   p["mix"],
				ChaseNodes: int(p["nodes"]),
				ArrayPct:   0.12, StridePct: 0.2, FootprintKB: int(p["footprint"]),
				SpillPct: 0.05, SpillDist: 5, LoadOnChainPct: 0.7,
				BranchPct: 0.5, HardBranchPct: 0.35,
			}
		},
	},
	"vector": {
		Family: "vector",
		Doc:    "wide-vector streaming loop: independent FP chains over strided arrays, GPU-style",
		Params: []Param{
			{Key: "width", Doc: "independent accumulator chains (lane count)", Def: 4, Min: 1, Max: 6, Int: true},
			{Key: "trip", Doc: "inner loop trip count", Def: 64, Min: 4, Max: 256, Int: true},
			{Key: "stride", Doc: "strided (prefetchable) fraction of array walks", Def: 0.95, Min: 0, Max: 1},
			{Key: "fp", Doc: "floating-point share of the FU mix", Def: 0.35, Min: 0, Max: 1},
		},
		Make: func(p map[string]float64) Spec {
			return Spec{
				FP: true, FPPct: p["fp"],
				Blocks: 6, BlockLen: 28, ILP: int(p["width"]),
				ArrayPct: 0.3, StridePct: p["stride"], FootprintKB: 4096,
				SpillPct: 0.04, SpillDist: 5,
				BranchPct: 0.15, HardBranchPct: 0.05,
				InnerTripA: int(p["trip"]),
				MovePct:    0.02, MoveOnChainPct: 0.3,
			}
		},
	},
	"branchy": {
		Family: "branchy",
		Doc:    "control-flow-hostile kernel: dense data-dependent branches and calls stress checkpoints and recovery",
		Params: []Param{
			{Key: "hard", Doc: "fraction of branches that are ~50/50 unpredictable", Def: 0.5, Min: 0, Max: 1},
			{Key: "branch", Doc: "probability a block contains a data-dependent branch", Def: 0.7, Min: 0, Max: 1},
			{Key: "calls", Doc: "probability a block calls a leaf function", Def: 0.2, Min: 0, Max: 1},
		},
		Make: func(p map[string]float64) Spec {
			return Spec{
				Blocks: 10, BlockLen: 20, ILP: 2,
				BranchPct:     p["branch"],
				HardBranchPct: p["hard"],
				CallPct:       p["calls"],
				SpillPct:      0.08, SpillDist: 5,
				ArrayPct: 0.1, StridePct: 0.4, FootprintKB: 128,
				MovePct: 0.06, MoveOnChainPct: 0.4,
			}
		},
	},
}
