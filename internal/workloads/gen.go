// Package workloads provides the 36 synthetic benchmarks (18 integer, 18
// floating-point analogues of the paper's SPEC CPU2000/2006 subset) used by
// every experiment. Each benchmark is a deterministic register-machine
// program built from a Spec: a parameter vector controlling move density,
// spill/reload (store→load) pairs, redundant load pairs, pointer aliasing,
// branch predictability, memory footprint, and functional-unit mix — the
// workload features that drive the paper's per-benchmark results.
package workloads

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/rng"
)

// Memory map used by all generated programs.
const (
	stackBase = 0x0010_0000 // spill slots
	arrayBase = 0x0020_0000 // strided/hashed array accesses
	aliasBase = 0x0040_0000 // second pointer into the array region
	chaseBase = 0x0080_0000 // pointer-chase ring
	codeBase  = 0x0000_1000
)

// Register conventions (integer class).
var (
	rOuter = isa.IntR(0)  // outer loop counter
	rStack = isa.IntR(1)  // stack base
	rArr   = isa.IntR(2)  // array base
	rAlias = isa.IntR(3)  // alias base (same region as rArr)
	rChase = isa.IntR(4)  // pointer-chase cursor
	rIdx   = isa.IntR(5)  // array index
	rInner = isa.IntR(15) // inner loop counter
)

func chainReg(i int) isa.Reg   { return isa.IntR(6 + i%6) }  // r6..r11
func scratchReg(i int) isa.Reg { return isa.IntR(12 + i%3) } // r12..r14
func fpReg(i int) isa.Reg      { return isa.FPR(i % 8) }

// Spec parameterizes one synthetic benchmark. All probabilities are in
// [0,1] and are sampled per emitted instruction group.
type Spec struct {
	Name string
	// FP marks the benchmark as part of the FP suite (affects default
	// mixes and how results are grouped, as in the paper's figures).
	FP   bool
	Seed uint64

	// Program shape.
	Blocks   int // body blocks per outer iteration
	BlockLen int // approximate µops per block
	ILP      int // independent accumulator chains (1..6)

	// Move Elimination drivers (§2, Fig. 5).
	MovePct        float64 // probability of a move group
	MoveOnChainPct float64 // fraction of moves on the critical dependency chain

	// SMB drivers (§3, Fig. 6).
	SpillPct       float64 // probability of a spill/reload group
	SpillDist      int     // filler µops between store and reload
	FarSpillPct    float64 // far spans per block: beyond-window store→load pairs (lazy-reclaim and load-load fodder, §3.3)
	ReloadTwicePct float64 // emit a second, redundant load (load-load pair)
	InvariantPct   float64 // loop-invariant reloads: only load-load bypassing collapses them (§3)
	LoadOnChainPct float64 // fraction of load consumers on a serial chain (default 0.35): scales how latency-critical loads are
	PathDepPct     float64 // make reload distance depend on a prior branch
	AliasPct       float64 // aliased double-store before the load (Fig. 1)
	PartialPct     float64 // partial-overlap store-load (STLF-blocked)
	TrapPct        float64 // late-store-address pattern (memory traps)
	FalseDepPct    float64 // once-colliding pattern (Store Sets false deps)

	// Control flow.
	BranchPct     float64 // probability a block contains a data-dep branch
	HardBranchPct float64 // fraction of those that are ~50/50 unpredictable
	InnerTripA    int     // inner loop trip count (block-alternating)
	InnerTripB    int
	CallPct       float64 // probability a block calls a leaf function

	// Memory behaviour.
	FootprintKB int     // array footprint (rounded to a power of two)
	StridePct   float64 // strided (prefetchable) vs hashed array walks
	ArrayPct    float64 // probability of an array-access group
	ChasePct    float64 // probability of a pointer-chase load
	ChaseNodes  int     // ring size (drives chase miss latency)

	// Functional unit mix.
	FPPct     float64
	MulDivPct float64
	DivPct    float64 // fraction of mul/div that are heavy divides
}

func (s Spec) withDefaults() Spec {
	if s.Blocks == 0 {
		s.Blocks = 8
	}
	if s.BlockLen == 0 {
		s.BlockLen = 24
	}
	if s.ILP == 0 {
		s.ILP = 3
	}
	if s.SpillDist == 0 {
		s.SpillDist = 4
	}
	if s.InnerTripA == 0 {
		s.InnerTripA = 8
	}
	if s.InnerTripB == 0 {
		s.InnerTripB = s.InnerTripA
	}
	if s.FootprintKB == 0 {
		s.FootprintKB = 16
	}
	if s.ChaseNodes == 0 {
		s.ChaseNodes = 256
	}
	if s.LoadOnChainPct == 0 {
		s.LoadOnChainPct = 0.35
	}
	if s.Seed == 0 {
		s.Seed = hashName(s.Name)
	}
	return s
}

func hashName(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h | 1
}

// gen carries generation state.
type gen struct {
	spec        Spec
	r           *rng.RNG
	b           *program.Builder
	mask        uint64 // array index mask (bytes, 8-aligned)
	slot        int    // next spill slot
	trapSite    int
	fdSite      int
	partialSite int
	hops        int
	hardHops    int

	// Quota state for rare-pattern emission.
	groups     int
	instrs     int
	cntTrap    int
	cntFD      int
	cntAlias   int
	cntPartial int

	chain int // round-robin chain selector
	label int // unique label counter
}

// Build constructs the program for spec. Construction is deterministic in
// spec (including its seed).
func Build(spec Spec) *program.Program {
	spec = spec.withDefaults()
	g := &gen{
		spec: spec,
		r:    rng.New(spec.Seed),
		b:    program.NewBuilder(spec.Name, codeBase),
	}

	words := nextPow2(spec.FootprintKB * 1024 / 8)
	g.mask = uint64(words-1) * 8

	g.initMemory(words)
	g.prologue()

	g.b.Label("outer")
	for blk := 0; blk < spec.Blocks; blk++ {
		g.block(blk)
	}
	// Far spans: straight-line regions with beyond-window store→load
	// distances (§3.3 and the load-load ablation).
	nSpans := int(spec.FarSpillPct*float64(spec.Blocks) + 0.5)
	for s := 0; s < nSpans; s++ {
		g.farSpan(s)
	}
	// Outer loop back-edge: increment the counter and jump back.
	g.emitALU(program.SInst{
		Op: isa.ALU, Sem: program.SemAddImm,
		Src: [2]isa.Reg{rOuter, isa.NoReg}, Dest: rOuter, Imm: 1, Width: 64,
	})
	g.b.EmitBranchTo(program.SInst{
		Op: isa.Branch, Kind: isa.BrUncond, Cond: program.CondAlways,
		Src: [2]isa.Reg{rOuter, isa.NoReg}, Width: 64,
	}, "outer")

	g.leafFunctions()
	return g.b.MustBuild()
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func (g *gen) uniqueLabel(prefix string) string {
	g.label++
	return fmt.Sprintf("%s%d", prefix, g.label)
}

// initMemory seeds the array, alias window and chase ring.
func (g *gen) initMemory(words int) {
	r := rng.New(g.spec.Seed ^ 0xA5A5)
	for i := 0; i < words; i++ {
		g.b.InitMem(arrayBase+uint64(i)*8, r.Uint64())
	}
	// Loop-invariant slots (read-only after init).
	for i := 0; i < 8; i++ {
		g.b.InitMem(stackBase+invRegion+uint64(i)*8, r.Uint64()|1)
	}
	// Chase ring: a random cyclic permutation over ChaseNodes nodes.
	n := g.spec.ChaseNodes
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < n; i++ {
		from := perm[i]
		to := perm[(i+1)%n]
		g.b.InitMem(chaseBase+uint64(from)*8, chaseBase+uint64(to)*8)
	}
}

// prologue materializes the base registers.
func (g *gen) prologue() {
	mov := func(dst isa.Reg, v uint64) {
		g.b.Emit(program.SInst{
			Op: isa.ALU, Sem: program.SemMovImm, Dest: dst, Imm: v, Width: 64,
		})
	}
	mov(rOuter, 0)
	mov(rStack, stackBase)
	mov(rArr, arrayBase)
	mov(rAlias, arrayBase) // alias: a second name for the same region
	mov(rChase, chaseBase)
	mov(rIdx, 0)
	for i := 0; i < 6; i++ {
		mov(chainReg(i), uint64(i)*0x1234567+1)
	}
	for i := 0; i < 3; i++ {
		mov(scratchReg(i), uint64(i)+0x42)
	}
	for i := 0; i < 8; i++ {
		g.b.Emit(program.SInst{
			Op: isa.FP, Sem: program.SemMovImm, Dest: fpReg(i),
			Imm: uint64(i) * 0x3ff0000000000321, Width: 64,
		})
	}
}

func (g *gen) emitALU(in program.SInst) { g.b.Emit(in) }

// nextChain rotates through the spec's independent chains.
func (g *gen) nextChain() isa.Reg {
	g.chain++
	return chainReg(g.chain % g.spec.ILP)
}
