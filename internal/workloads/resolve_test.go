package workloads

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/program"
)

// TestCanonicalNameGolden pins the canonical spelling of generator
// names: keys sorted, values in shortest exact decimal form, defaults
// elided. These strings are load-bearing — they name store envelopes and
// matrix cells — so a change here invalidates every fleet bucket.
func TestCanonicalNameGolden(t *testing.T) {
	cases := []struct{ in, want string }{
		// A bare family is already canonical.
		{"gen:spill", "gen:spill"},
		{"gen:chase", "gen:chase"},
		{"gen:vector", "gen:vector"},
		{"gen:branchy", "gen:branchy"},
		// Explicit defaults are elided, whole query gone.
		{"gen:spill?depth=8", "gen:spill"},
		{"gen:spill?depth=8&dist=6&reuse=0.4&far=0.25&seed=0", "gen:spill"},
		{"gen:vector?width=4&trip=64", "gen:vector"},
		// Non-defaults survive, sorted by key.
		{"gen:spill?dist=16&depth=4", "gen:spill?depth=4&dist=16"},
		{"gen:spill?seed=3&depth=16", "gen:spill?depth=16&seed=3"},
		{"gen:branchy?calls=0.5&hard=0.9&branch=0.8", "gen:branchy?branch=0.8&calls=0.5&hard=0.9"},
		// Float values take their shortest exact form.
		{"gen:spill?far=0.50", "gen:spill?far=0.5"},
		{"gen:spill?far=5e-1", "gen:spill?far=0.5"},
		{"gen:chase?mix=0.40&nodes=16384", "gen:chase?mix=0.4&nodes=16384"},
		// A float written at its default value in another spelling is
		// still the default.
		{"gen:spill?reuse=4e-1", "gen:spill"},
		// The fleet-grid scenario's spellings are all already canonical.
		{"gen:spill?depth=16&far=0.5", "gen:spill?depth=16&far=0.5"},
		{"gen:chase?nodes=262144", "gen:chase?nodes=262144"},
		{"gen:vector?trip=128&width=6", "gen:vector?trip=128&width=6"},
		{"gen:branchy?hard=0.2", "gen:branchy?hard=0.2"},
		// Catalog names canonicalize to themselves.
		{"crafty", "crafty"},
		{"lbm", "lbm"},
	}
	for _, c := range cases {
		got, err := CanonicalName(c.in)
		if err != nil {
			t.Errorf("CanonicalName(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("CanonicalName(%q) = %q, want %q", c.in, got, c.want)
		}
		// Canonicalization is a fixed point.
		again, err := CanonicalName(got)
		if err != nil || again != got {
			t.Errorf("CanonicalName(%q) = %q, %v; not a fixed point", got, again, err)
		}
	}
}

// TestResolveRejects pins the validation errors of the gen: grammar.
func TestResolveRejects(t *testing.T) {
	cases := []struct{ in, wantSub string }{
		{"gen:", "missing family"},
		{"gen:nope", "unknown family"},
		{"gen:spill?", "empty parameter list"},
		{"gen:spill?depth", "malformed parameter"},
		{"gen:spill?=8", "malformed parameter"},
		{"gen:spill?depth=", "malformed parameter"},
		{"gen:spill?weird=1", "unknown parameter"},
		{"gen:spill?depth=8&depth=9", "duplicate parameter"},
		{"gen:spill?depth=0", "out of range"},
		{"gen:spill?depth=65", "out of range"},
		{"gen:spill?depth=2.5", "want a decimal integer"},
		{"gen:spill?depth=-3", "want a decimal integer"},
		{"gen:spill?far=nan", "want a finite decimal"},
		{"gen:spill?far=1.5", "out of range"},
		{"gen:chase?nodes=8", "out of range"},
		{"nope", "unknown benchmark"},
	}
	for _, c := range cases {
		if _, err := Resolve(c.in); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Resolve(%q) err = %v, want substring %q", c.in, err, c.wantSub)
		}
	}
}

// FuzzResolve throws arbitrary names at the single entry point. Resolve
// must never panic; when it accepts a name, the canonical spelling must
// be a fixed point that resolves to the identical Spec.
func FuzzResolve(f *testing.F) {
	for _, seed := range []string{
		"crafty", "mcf", "nope",
		"gen:spill", "gen:spill?depth=8", "gen:spill?dist=16&depth=4",
		"gen:spill?far=5e-1", "gen:spill?depth=8&depth=9",
		"gen:chase?mix=0.4&nodes=16384", "gen:vector?trip=128&width=6",
		"gen:branchy?hard=0.9", "gen:", "gen:?", "gen:spill?",
		"gen:spill?depth=", "gen:spill?seed=18446744073709551615",
		"gen:spill?far=nan", "gen:spill?far=-0", "gen:spill?far=0.0000000000000001",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		spec, err := Resolve(name)
		if err != nil {
			return
		}
		canonical, err := CanonicalName(name)
		if err != nil {
			t.Fatalf("Resolve(%q) ok but CanonicalName errs: %v", name, err)
		}
		if spec.Name != canonical {
			t.Fatalf("Resolve(%q).Name = %q, CanonicalName = %q", name, spec.Name, canonical)
		}
		again, err := Resolve(canonical)
		if err != nil {
			t.Fatalf("canonical %q does not resolve: %v", canonical, err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Fatalf("Resolve(%q) and Resolve(%q) disagree:\n%+v\n%+v", name, canonical, spec, again)
		}
		if c2, err := CanonicalName(canonical); err != nil || c2 != canonical {
			t.Fatalf("canonicalization not a fixed point: %q -> %q (%v)", canonical, c2, err)
		}
	})
}

// programDigest hashes everything observable about a built program: the
// full static instruction array, the entry PC, the initial memory image
// (in address order) and the initial register file. Two programs with
// equal digests are byte-identical as far as the simulator can see.
func programDigest(p *program.Program) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%d\n", p.Name, p.Entry())
	pc := p.Entry()
	for i := 0; i < p.NumInsts(); i++ {
		in, ok := p.StaticAt(pc)
		if !ok {
			fmt.Fprintf(h, "hole@%d\n", pc)
			break
		}
		fmt.Fprintf(h, "%+v\n", *in)
		pc = p.NextPC(pc)
	}
	addrs := make([]uint64, 0, len(p.InitMem))
	for a := range p.InitMem {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		fmt.Fprintf(h, "m %d %d\n", a, p.InitMem[a])
	}
	fmt.Fprintf(h, "r %v\n", p.InitRegs)
	return hex.EncodeToString(h.Sum(nil))
}

// crossProcessNames is the digest worklist for the cross-process
// determinism check: one point per family plus a catalog entry.
var crossProcessNames = []string{
	"crafty",
	"gen:spill?depth=16&far=0.5",
	"gen:chase?mix=0.4&nodes=16384",
	"gen:vector?trip=128&width=6",
	"gen:branchy?hard=0.9&seed=7",
}

const crossProcessEnv = "WORKLOADS_DIGEST_CHILD"

// TestCrossProcessDeterminism re-executes the test binary and compares
// program digests across the two processes: equal gen: names must build
// byte-identical programs in ANY process, because the fleet protocol
// (internal/fleet) assumes two hosts simulating the same cell produce
// the same store bytes. In-process determinism would not catch map
// iteration or address-dependent seeding leaking into program
// construction; a fresh process does.
func TestCrossProcessDeterminism(t *testing.T) {
	if os.Getenv(crossProcessEnv) == "1" {
		// Child mode: print one digest line per name and nothing else on
		// these lines' prefix.
		for _, name := range crossProcessNames {
			spec, err := Resolve(name)
			if err != nil {
				fmt.Printf("digest %s ERROR %v\n", name, err)
				continue
			}
			fmt.Printf("digest %s %s\n", name, programDigest(Build(spec)))
		}
		return
	}

	exe, err := os.Executable()
	if err != nil {
		t.Skipf("no executable path: %v", err)
	}
	cmd := exec.Command(exe, "-test.run=^TestCrossProcessDeterminism$", "-test.v=false", "-test.count=1")
	cmd.Env = append(os.Environ(), crossProcessEnv+"=1")
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("child process: %v\n%s", err, out)
	}
	theirs := make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) >= 3 && fields[0] == "digest" {
			theirs[fields[1]] = strings.Join(fields[2:], " ")
		}
	}
	for _, name := range crossProcessNames {
		spec, err := Resolve(name)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", name, err)
		}
		mine := programDigest(Build(spec))
		if theirs[name] == "" {
			t.Fatalf("child printed no digest for %q:\n%s", name, out)
		}
		if theirs[name] != mine {
			t.Errorf("%q: digest differs across processes:\n  parent %s\n  child  %s", name, mine, theirs[name])
		}
	}
}

// TestMemoizedTablesZeroAlloc pins the memoization of the catalog
// index: after the first touch, the whole lookup surface — the new API
// and the deprecated shims alike — allocates nothing per call.
func TestMemoizedTablesZeroAlloc(t *testing.T) {
	tables() // pay the once-cost outside the measured region
	allocs := testing.AllocsPerRun(100, func() {
		if m, ok := Members("all"); !ok || len(m) == 0 {
			t.Fatal("Members(all) empty")
		}
		Members("int")
		Members("fp")
		Groups()
		Names()
		IntNames()
		FPNames()
		Group("all")
		GroupNames()
		if _, err := Resolve("crafty"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("memoized lookups allocate %v times per call, want 0", allocs)
	}
}

// TestMembersMatchesShims pins that the deprecated name-list shims are
// views of the same memoized tables Members serves, not parallel copies
// that could drift.
func TestMembersMatchesShims(t *testing.T) {
	for group, names := range map[string][]string{
		"all": Names(), "int": IntNames(), "fp": FPNames(),
	} {
		specs, ok := Members(group)
		if !ok {
			t.Fatalf("Members(%q) unknown", group)
		}
		if len(specs) != len(names) {
			t.Fatalf("Members(%q) has %d specs, shim lists %d names", group, len(specs), len(names))
		}
		for i, s := range specs {
			if s.Name != names[i] {
				t.Fatalf("Members(%q)[%d] = %q, shim name %q", group, i, s.Name, names[i])
			}
		}
	}
}
