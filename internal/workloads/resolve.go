package workloads

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// GenPrefix marks a parametric generator name. Everything after it is
// the generator grammar below; everything else is a catalog lookup.
const GenPrefix = "gen:"

// Resolve is the single entry point from a workload name to its Spec.
// It understands two name families:
//
//   - catalog names ("crafty", "mcf", ...): the fixed 36-benchmark
//     suite, looked up in the memoized catalog table;
//   - generator names ("gen:spill?depth=8&seed=3", "gen:chase", ...):
//     points in workload-parameter space, produced by the registered
//     Generator families.
//
// A generator name is parsed against its family's parameter schema
// (unknown keys, duplicate keys, malformed or out-of-range values are
// rejected) and then canonicalized: parameters sort by key, values take
// their shortest exact decimal form, and parameters equal to their
// default are dropped. The returned Spec carries the canonical name in
// Spec.Name and a seed derived from that canonical name, so equal names
// — however spelled — build byte-identical programs in any process.
func Resolve(name string) (Spec, error) {
	if strings.HasPrefix(name, GenPrefix) {
		return resolveGen(name)
	}
	if s, ok := tables().byName[name]; ok {
		return s, nil
	}
	return Spec{}, fmt.Errorf("workloads: unknown benchmark %q (catalog: %s; groups: %s; generators: %s)",
		name, strings.Join(tables().names, " "), strings.Join(Groups(), " "), generatorHint())
}

// CanonicalName validates name and returns its canonical spelling: the
// name itself for catalog entries, the sorted/deduplicated/shortest
// form for generator names. It is what content-addressed consumers (the
// scenario matrix, the result-store envelope key) pin, so two spellings
// of the same generator point share one store entry.
func CanonicalName(name string) (string, error) {
	if !strings.HasPrefix(name, GenPrefix) {
		if _, ok := tables().byName[name]; ok {
			return name, nil
		}
		s, err := Resolve(name)
		return s.Name, err
	}
	s, err := resolveGen(name)
	if err != nil {
		return "", err
	}
	return s.Name, nil
}

// Param is one knob of a generator family's schema.
type Param struct {
	// Key is the parameter's name in the gen: grammar.
	Key string
	// Doc is a one-line description for docs and error messages.
	Doc string
	// Def is the default value, used when the name omits the key and
	// elided from the canonical spelling.
	Def float64
	// Min and Max bound the accepted range, inclusive.
	Min, Max float64
	// Int marks an integer-valued parameter: its value must be written
	// as a plain decimal integer.
	Int bool
}

// Generator is one registered workload-shape family: a parameter
// schema plus the mapping from a validated parameter point to a Spec.
type Generator struct {
	// Family is the name between "gen:" and "?".
	Family string
	// Doc is a one-line description of the shape family.
	Doc string
	// Params is the schema, in declaration order. Every family also
	// accepts the implicit "seed" parameter (integer, default 0), which
	// varies the program instance without changing the shape point.
	Params []Param
	// Make maps a fully-defaulted parameter point (keyed by Param.Key,
	// plus "seed") to the family's Spec. Resolve fills in Name and Seed
	// afterwards from the canonical name.
	Make func(p map[string]float64) Spec
}

// seedParam is the implicit instance-selection parameter every family
// accepts.
var seedParam = Param{Key: "seed", Doc: "program instance selector (same shape, different draw)", Def: 0, Min: 0, Max: 1 << 32, Int: true}

// Generators lists the registered shape families, sorted by family
// name. The returned slice is freshly allocated; the Generator values
// (including their Params) are shared and must not be mutated.
func Generators() []Generator {
	out := make([]Generator, 0, len(generators))
	for _, g := range generators {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Family < out[j].Family })
	return out
}

// generatorHint names the registered families for error messages.
func generatorHint() string {
	gs := Generators()
	parts := make([]string, len(gs))
	for i, g := range gs {
		parts[i] = GenPrefix + g.Family
	}
	return strings.Join(parts, " ")
}

// param returns the family's schema entry for key (the implicit seed
// included).
func (g *Generator) param(key string) (Param, bool) {
	if key == seedParam.Key {
		return seedParam, true
	}
	for _, p := range g.Params {
		if p.Key == key {
			return p, true
		}
	}
	return Param{}, false
}

// resolveGen parses, validates and canonicalizes one gen: name.
func resolveGen(name string) (Spec, error) {
	fail := func(format string, args ...interface{}) (Spec, error) {
		return Spec{}, fmt.Errorf("workloads: generator name %q: %s", name, fmt.Sprintf(format, args...))
	}
	rest := strings.TrimPrefix(name, GenPrefix)
	family, query, hasQuery := strings.Cut(rest, "?")
	if family == "" {
		return fail("missing family (known: %s)", generatorHint())
	}
	g, ok := generators[family]
	if !ok {
		return fail("unknown family %q (known: %s)", family, generatorHint())
	}

	// Parameter point: defaults overlaid with the explicitly-given
	// values, every explicit value validated against the schema.
	point := map[string]float64{seedParam.Key: seedParam.Def}
	for _, p := range g.Params {
		point[p.Key] = p.Def
	}
	if hasQuery {
		if query == "" {
			return fail("empty parameter list after '?'")
		}
		seen := make(map[string]bool)
		for _, kv := range strings.Split(query, "&") {
			key, raw, hasEq := strings.Cut(kv, "=")
			if !hasEq || key == "" || raw == "" {
				return fail("malformed parameter %q (want key=value)", kv)
			}
			p, ok := g.param(key)
			if !ok {
				return fail("unknown parameter %q (known: %s)", key, paramHint(g))
			}
			if seen[key] {
				return fail("duplicate parameter %q", key)
			}
			seen[key] = true
			v, err := parseParamValue(p, raw)
			if err != nil {
				return fail("parameter %q: %v", key, err)
			}
			point[key] = v
		}
	}

	canonical := canonicalGenName(g, point)
	spec := g.Make(point)
	spec.Name = canonical
	spec.Seed = hashName(canonical)
	return spec, nil
}

// paramHint lists a family's accepted keys for error messages.
func paramHint(g *Generator) string {
	keys := make([]string, 0, len(g.Params)+1)
	for _, p := range g.Params {
		keys = append(keys, p.Key)
	}
	keys = append(keys, seedParam.Key)
	sort.Strings(keys)
	return strings.Join(keys, " ")
}

// parseParamValue parses and range-checks one explicit value against
// its schema entry. Integer parameters must be written as plain decimal
// integers; float parameters accept any strconv-parsable finite decimal
// (the canonical spelling is re-derived, so "0.50" and "5e-1" both
// resolve — to the canonical "0.5").
func parseParamValue(p Param, raw string) (float64, error) {
	var v float64
	if p.Int {
		n, err := strconv.ParseUint(raw, 10, 53)
		if err != nil {
			return 0, fmt.Errorf("want a decimal integer, got %q", raw)
		}
		v = float64(n)
	} else {
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
			return 0, fmt.Errorf("want a finite decimal, got %q", raw)
		}
		v = f
	}
	if v < p.Min || v > p.Max {
		return 0, fmt.Errorf("value %s out of range [%s, %s]",
			formatParamValue(p, v), formatParamValue(p, p.Min), formatParamValue(p, p.Max))
	}
	return v, nil
}

// formatParamValue renders a value in its canonical spelling.
func formatParamValue(p Param, v float64) string {
	if p.Int {
		return strconv.FormatUint(uint64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// canonicalGenName renders the canonical spelling of a parameter point:
// keys sorted, values in shortest exact form, defaults elided.
func canonicalGenName(g *Generator, point map[string]float64) string {
	keys := make([]string, 0, len(point))
	for k := range point {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(GenPrefix)
	b.WriteString(g.Family)
	sep := "?"
	for _, k := range keys {
		p, _ := g.param(k)
		if point[k] == p.Def {
			continue
		}
		b.WriteString(sep)
		sep = "&"
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(formatParamValue(p, point[k]))
	}
	return b.String()
}

// catalogTables is the memoized index over Catalog(): name lookup,
// name lists and the named groups, computed once. The group-table
// memoization is what makes the deprecated Group/Names shims (and the
// new Members surface) zero-alloc per call.
type catalogTables struct {
	byName     map[string]Spec
	names      []string
	intNames   []string
	fpNames    []string
	groups     map[string][]string
	members    map[string][]Spec
	groupNames []string
}

// tables returns the memoized catalog index.
var tables = sync.OnceValue(func() *catalogTables {
	specs := Catalog()
	t := &catalogTables{
		byName:     make(map[string]Spec, len(specs)),
		groups:     make(map[string][]string, 4),
		members:    make(map[string][]Spec, 4),
		groupNames: []string{"all", "int", "fp", "branch-hostile"},
	}
	var hostile []string
	for _, s := range specs {
		t.byName[s.Name] = s
		t.names = append(t.names, s.Name)
		if s.FP {
			t.fpNames = append(t.fpNames, s.Name)
		} else {
			t.intNames = append(t.intNames, s.Name)
		}
		if s.HardBranchPct >= 0.4 {
			hostile = append(hostile, s.Name)
		}
	}
	t.groups["all"] = t.names
	t.groups["int"] = t.intNames
	t.groups["fp"] = t.fpNames
	t.groups["branch-hostile"] = hostile
	for name, members := range t.groups {
		specs := make([]Spec, len(members))
		for i, n := range members {
			specs[i] = t.byName[n]
		}
		t.members[name] = specs
	}
	return t
})

// Members resolves a named benchmark group to its member Specs, in
// catalog order. Known groups:
//
//   - "all":            the full 36-benchmark suite;
//   - "int", "fp":      the two suites the paper's figures split on;
//   - "branch-hostile": the benchmarks whose hard (data-dependent,
//     ~50/50) branch share is at least 40% — the subset where deep
//     speculation is most often wrong and checkpoint recovery dominates.
//
// The second return value reports whether group is known. The returned
// slice is memoized and shared: callers must not mutate it.
func Members(group string) ([]Spec, bool) {
	m, ok := tables().members[group]
	return m, ok
}

// Groups lists the named groups Members resolves. The returned slice is
// memoized and shared: callers must not mutate it.
func Groups() []string { return tables().groupNames }
