// Package repolint assembles the repository's analyzer suite in one
// place, so the vettool (cmd/repolint), the in-tree guard tests and any
// future driver all agree on exactly which invariants are machine
// checked.
package repolint

import (
	"repro/internal/analysis"
	"repro/internal/analysis/ctxfirst"
	"repro/internal/analysis/depshim"
	"repro/internal/analysis/errtaxonomy"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/nodeterm"
	"repro/internal/analysis/sinkcheck"
	"repro/internal/analysis/wirecheck"
)

// Analyzers is the full repolint suite, in stable reporting order.
var Analyzers = []*analysis.Analyzer{
	ctxfirst.Analyzer,
	depshim.Analyzer,
	errtaxonomy.Analyzer,
	hotalloc.Analyzer,
	nodeterm.Analyzer,
	sinkcheck.Analyzer,
	wirecheck.Analyzer,
}
