package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parse returns one parsed file (comments on) under the given name.
func parse(t *testing.T, name, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

// lineReporter flags every top-level declaration, so tests can steer
// findings onto chosen lines with the fixture layout alone.
func lineReporter(name string) *Analyzer {
	return &Analyzer{
		Name: name,
		Doc:  "test analyzer: flags every top-level declaration",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					pass.Reportf(d.Pos(), "decl flagged")
				}
			}
			return nil
		},
	}
}

func TestRunFiltersAllowDirectives(t *testing.T) {
	src := `package p

func a() {}

//repro:allow probe -- standalone form covers the next line
func b() {}

func c() {} //repro:allow probe -- trailing form covers its own line

func d() {} //repro:allow other -- names a different analyzer

func e() {} //repro:allow other,probe -- list form names several
`
	fset, files := parse(t, "p.go", src)
	findings, err := Run(fset, files, "p", nil, nil, []*Analyzer{lineReporter("probe")})
	if err != nil {
		t.Fatal(err)
	}
	var lines []int
	for _, f := range findings {
		lines = append(lines, f.Pos.Line)
	}
	// a (line 3) and d (line 10, allow names another analyzer) survive;
	// b, c and e are suppressed.
	want := []int{3, 10}
	if len(lines) != len(want) {
		t.Fatalf("got findings on lines %v, want %v", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("got findings on lines %v, want %v", lines, want)
		}
	}
}

func TestRunSkipsTypedAnalyzersWithoutTypes(t *testing.T) {
	fset, files := parse(t, "p.go", "package p\n\nfunc a() {}\n")
	typed := lineReporter("typed")
	typed.NeedsTypes = true
	findings, err := Run(fset, files, "p", nil, nil, []*Analyzer{typed, lineReporter("ast")})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Analyzer == "typed" {
			t.Fatalf("typed analyzer ran without type info: %s", f)
		}
	}
	if len(findings) != 1 {
		t.Fatalf("expected exactly the AST analyzer's finding, got %v", findings)
	}
}

func TestRunOrdersFindings(t *testing.T) {
	fset, files := parse(t, "p.go", "package p\n\nfunc a() {}\n\nfunc b() {}\n")
	findings, err := Run(fset, files, "p", nil, nil,
		[]*Analyzer{lineReporter("zeta"), lineReporter("alpha")})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 4 {
		t.Fatalf("want 4 findings, got %v", findings)
	}
	for i := 1; i < len(findings); i++ {
		prev, cur := findings[i-1], findings[i]
		if prev.Pos.Line > cur.Pos.Line ||
			(prev.Pos.Line == cur.Pos.Line && prev.Analyzer > cur.Analyzer) {
			t.Fatalf("findings out of order at %d: %v", i, findings)
		}
	}
}

func TestHasDirective(t *testing.T) {
	src := `package p

// Hot is annotated.
//
//repro:hotpath
func Hot() {}

// Warm mentions the word hotpath in prose only.
func Warm() {}

//repro:hotpath extra words after the name
func Spaced() {}
`
	fset, files := parse(t, "p.go", src)
	_ = fset
	got := map[string]bool{}
	for _, d := range files[0].Decls {
		fn := d.(*ast.FuncDecl)
		got[fn.Name.Name] = HasDirective(fn.Doc, "hotpath")
	}
	want := map[string]bool{"Hot": true, "Warm": false, "Spaced": true}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("HasDirective(%s) = %v, want %v", name, got[name], w)
		}
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{
		Analyzer: "nodeterm",
		Pos:      token.Position{Filename: "x.go", Line: 7, Column: 3},
		Message:  "boom",
	}
	s := f.String()
	if !strings.Contains(s, "x.go:7:3") || !strings.Contains(s, "boom") || !strings.Contains(s, "[nodeterm]") {
		t.Errorf("Finding.String() = %q", s)
	}
}
