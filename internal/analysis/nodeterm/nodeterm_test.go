package nodeterm_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nodeterm"
)

func TestNoDeterm(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), nodeterm.Analyzer,
		"repro/internal/core",
		"repro/internal/stats",
	)
}
