// Package stats is outside the determinism contract's result-producing
// set: wall-clock reads here are not flagged.
package stats

import "time"

// Uptime reads the clock freely; stats is out of scope.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}
