package core

import (
	"fmt"
	"sort"
	"time"
)

// Stamp leaks the wall clock into a returned value: flagged.
func Stamp() int64 {
	return time.Now().UnixNano() // want `time.Now in a result-producing package`
}

// Measure is sanctioned wall-clock use, annotated per line.
func Measure(f func()) time.Duration {
	start := time.Now() //repro:allow nodeterm -- measurement metadata
	f()
	return time.Since(start) //repro:allow nodeterm -- measurement metadata
}

// PrintAll serializes per element straight out of map order: flagged.
func PrintAll(m map[string]int) {
	for k, v := range m { // want `map iteration feeds Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

// Keys collects map keys and never sorts them: flagged.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // want `never sorted afterwards`
		out = append(out, k)
	}
	return out
}

// SortedKeys is the sanctioned collect-then-sort shape: not flagged.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// First publishes whichever key the runtime visits first: flagged.
func First(m map[string]int) string {
	for k := range m { // want `return inside a map iteration`
		return k
	}
	return ""
}

// Total folds over the map commutatively; no element order escapes, so
// this is not flagged.
func Total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
