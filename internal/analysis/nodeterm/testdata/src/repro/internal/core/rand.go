package core

import "math/rand" // want `import of math/rand outside internal/rng`

// Roll bypasses the seeded determinism choke point.
func Roll() int {
	return rand.Intn(6)
}
