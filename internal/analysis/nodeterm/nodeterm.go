// Package nodeterm polices the determinism contract of the
// result-producing packages (internal/core, internal/sim,
// internal/scenario, internal/dispatch): the paper's sharing schemes
// are validated by exact cycle counts, and the store, the dispatch wire
// and the reports all assume a request's outcome is a pure function of
// the request. Three things silently break that:
//
//   - wall-clock reads (time.Now / time.Since) leaking into values;
//     measurement code that genuinely wants the clock annotates the
//     line with `//repro:allow nodeterm -- <why>`, which turns hidden
//     nondeterminism into a reviewed, documented exception;
//   - math/rand anywhere outside internal/rng, the repository's single
//     seeded-determinism choke point;
//   - map iteration whose order can reach an output: a range over a map
//     that prints/encodes per element, that collects elements into a
//     slice which is never sorted afterwards, or that returns a value
//     depending on which key came up first.
package nodeterm

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/analysis"
)

// Analyzer is the nodeterm checker.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterm",
	Doc: "forbid nondeterminism in result-producing packages. " +
		"Wall-clock reads, math/rand outside internal/rng and map iteration " +
		"feeding outputs all make bit-identical reproduction impossible to " +
		"guarantee structurally.",
	Run:        run,
	NeedsTypes: true,
}

// resultPackages are the import paths under the determinism contract.
var resultPackages = map[string]bool{
	"repro/internal/core":            true,
	"repro/internal/sim":             true,
	"repro/internal/scenario":        true,
	"repro/internal/dispatch":        true,
	"repro/internal/objstore":        true,
	"repro/internal/objstore/sigv4":  true,
	"repro/internal/objstore/s3test": true,
	"repro/internal/storeflag":       true,
}

// rngPackage is the one sanctioned home for seeded randomness.
const rngPackage = "repro/internal/rng"

// sinkNames are call names that move data toward a serialized output:
// the fmt print family, encoders and marshalers, raw writes, and the
// stats.Table row builders every report in this repository renders
// through.
var sinkNames = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Encode": true, "Marshal": true, "MarshalIndent": true,
	"Write": true, "WriteString": true,
	"AddRow": true, "AddRowF": true,
}

func run(pass *analysis.Pass) error {
	if !resultPackages[pass.Path] {
		return nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		checkImports(pass, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// checkImports flags math/rand (v1 and v2) imports.
func checkImports(pass *analysis.Pass, file *ast.File) {
	if pass.Path == rngPackage {
		return
	}
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if path == "math/rand" || path == "math/rand/v2" {
			pass.Reportf(imp.Pos(), "import of %s outside internal/rng: all randomness must flow through the seeded determinism choke point", path)
		}
	}
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := timeCall(pass, n); ok {
				pass.Reportf(n.Pos(), "time.%s in a result-producing package: wall-clock values are nondeterministic (annotate //repro:allow nodeterm if this is measurement metadata)", name)
			}
		case *ast.RangeStmt:
			checkMapRange(pass, fn, n)
		}
		return true
	})
}

// timeCall reports whether call is time.Now or time.Since.
func timeCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
		return "", false
	}
	if name := obj.Name(); name == "Now" || name == "Since" {
		return name, true
	}
	return "", false
}

// checkMapRange applies the three map-iteration-order rules to one
// range statement.
func checkMapRange(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}

	// Rule 1: a sink call inside the body serializes per-element, so the
	// output inherits the iteration order directly.
	var sink *ast.CallExpr
	// Rule 2: elements collected into a slice keep the iteration order
	// unless the function sorts the slice after the loop.
	var appends []*ast.CallExpr
	// Rule 3: returning from inside the loop publishes whichever element
	// the runtime happened to visit first.
	var depReturn *ast.ReturnStmt

	loopVars := rangeVarObjects(pass, rng)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name := calleeName(n); sinkNames[name] && sink == nil {
				sink = n
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				if obj, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && obj.Name() == "append" {
					appends = append(appends, n)
				}
			}
		case *ast.ReturnStmt:
			if depReturn == nil && len(n.Results) > 0 && usesAny(pass, n, loopVars) {
				depReturn = n
			}
		}
		return true
	})

	switch {
	case sink != nil:
		pass.Reportf(rng.Pos(), "map iteration feeds %s: output order follows the map's randomized iteration order (sort the keys first)", calleeName(sink))
	case depReturn != nil:
		pass.Reportf(rng.Pos(), "return inside a map iteration depends on which element is visited first: the result is nondeterministic (iterate a sorted or fixed order instead)")
	case len(appends) > 0 && !sortsAfter(pass, fn, rng):
		pass.Reportf(rng.Pos(), "map iteration collects elements into a slice that is never sorted afterwards: downstream consumers see a randomized order")
	}
}

// rangeVarObjects returns the objects defined by the range clause's
// key/value variables.
func rangeVarObjects(pass *analysis.Pass, rng *ast.RangeStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				out[obj] = true
			}
			if obj := pass.TypesInfo.Uses[id]; obj != nil { // `=` instead of `:=`
				out[obj] = true
			}
		}
	}
	return out
}

// usesAny reports whether the subtree references any of the objects.
func usesAny(pass *analysis.Pass, n ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[pass.TypesInfo.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// sortsAfter reports whether fn calls into sort or slices after the
// loop ends — the sanctioned collect-then-sort shape (see
// stats.SortedKeys).
func sortsAfter(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) bool {
	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[sel.Sel]
		if !ok || obj.Pkg() == nil {
			return true
		}
		if p := obj.Pkg().Path(); p == "sort" || p == "slices" {
			sorted = true
		}
		return !sorted
	})
	return sorted
}

// calleeName extracts the called function or method's bare name.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
