package wirecheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/wirecheck"
)

func TestWireCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), wirecheck.Analyzer, "wire")
}
