package wire

// Frame is a wire struct with one untagged and one unexported field.
//
//repro:wire
type Frame struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	Note string // want `wire struct Frame field Note has no json tag`
	seq  int    // want `wire struct Frame has unexported field seq`
}

// Meta shows the sanctioned in-memory-only exception.
//
//repro:wire
type Meta struct {
	OK  bool `json:"ok"`
	ttl int  //repro:allow wirecheck -- in-memory cache hint, deliberately not serialized
}

// Envelope embeds without a tag: the promoted fields reach the wire
// under implicit names.
//
//repro:wire
type Envelope struct {
	Meta        // want `embeds an untagged field`
	Body string `json:"body"`
}

// Weird carries the directive but is not a struct.
//
//repro:wire
type Weird int // want `not a struct type`

// plain has no json tags anywhere: unkeyed literals of it are fine.
type plain struct {
	A int
	B int
}

// Good is fully tagged and keyed: nothing flagged.
//
//repro:wire
type Good struct {
	X int `json:"x"`
	Y int `json:"y"`
}

var (
	// Keyed literal of a wire struct: fine.
	keyed = Frame{ID: 1, Name: "a"}
	// Unkeyed literal of a json-tagged struct: flagged even though the
	// unkeyed check is directive-independent.
	unkeyed = Frame{1, "a", "n", 0} // want `unkeyed composite literal of wire struct`
	// Unkeyed literal of an untagged struct: fine.
	flat = plain{1, 2}
)

// Use keeps the vars referenced.
func Use() (Frame, Frame, plain) {
	return keyed, unkeyed, flat
}
