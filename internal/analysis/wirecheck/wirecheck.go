// Package wirecheck guards the serialized boundaries: the dispatch
// wire protocol (workerRequest/workerResponse, wireEvent), the result
// store envelope and the report types all round-trip through
// encoding/json, and their field layout is a compatibility contract.
// A struct opts in with
//
//	//repro:wire
//
// in its doc comment, which demands an explicit `json:"..."` tag on
// every exported field — an untagged field silently changes the wire
// name when someone renames it, and a forgotten tag is indistinguishable
// from a deliberate default. Unexported fields in a wire struct are
// flagged too (encoding/json skips them without a word; if the field is
// deliberately in-memory-only, say so with `//repro:allow wirecheck`).
//
// Independent of the directive, the analyzer flags unkeyed composite
// literals of any json-tagged struct type, everywhere including tests:
// positional literals are exactly the construct that breaks silently
// when a wire struct gains a field.
package wirecheck

import (
	"go/ast"
	"go/types"
	"reflect"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Directive is the doc-comment marker opting a struct into the wire
// contract.
const Directive = "wire"

// Analyzer is the wirecheck checker.
var Analyzer = &analysis.Analyzer{
	Name: "wirecheck",
	Doc: "wire structs need complete json tags and keyed literals. " +
		"Structs marked //repro:wire must json-tag every exported field, and " +
		"unkeyed composite literals of json-tagged structs are forbidden " +
		"everywhere: both break the serialized contract silently on rename " +
		"or field insertion.",
	Run:        run,
	NeedsTypes: true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		checkWireStructs(pass, file)
		checkUnkeyedLiterals(pass, file)
	}
	return nil
}

// checkWireStructs validates //repro:wire-marked struct declarations.
func checkWireStructs(pass *analysis.Pass, file *ast.File) {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			doc := ts.Doc
			if doc == nil {
				doc = gd.Doc
			}
			if !analysis.HasDirective(doc, Directive) {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				pass.Reportf(ts.Pos(), "//repro:wire on %s, which is not a struct type", ts.Name.Name)
				continue
			}
			checkFields(pass, ts.Name.Name, st)
		}
	}
}

func checkFields(pass *analysis.Pass, name string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		names := field.Names
		if len(names) == 0 {
			// Embedded field: its exported fields flatten into the wire
			// representation, so it needs a tag (or promotion is intended —
			// then tag it explicitly anyway to make that a decision).
			if !hasJSONTag(field) {
				pass.Reportf(field.Pos(), "wire struct %s embeds an untagged field: its promoted fields reach the wire under implicit names", name)
			}
			continue
		}
		for _, fn := range names {
			if !fn.IsExported() {
				pass.Reportf(fn.Pos(), "wire struct %s has unexported field %s: encoding/json silently drops it (annotate //repro:allow wirecheck if it is deliberately in-memory only)", name, fn.Name)
				continue
			}
			if !hasJSONTag(field) {
				pass.Reportf(fn.Pos(), "wire struct %s field %s has no json tag: the wire name is coupled to the Go identifier", name, fn.Name)
			}
		}
	}
}

// hasJSONTag reports whether the field carries a non-empty `json:` tag.
func hasJSONTag(field *ast.Field) bool {
	if field.Tag == nil {
		return false
	}
	raw, err := strconv.Unquote(field.Tag.Value)
	if err != nil {
		return false
	}
	tag, ok := reflect.StructTag(raw).Lookup("json")
	return ok && tag != ""
}

// checkUnkeyedLiterals flags positional composite literals of
// json-tagged struct types, in any package including tests.
func checkUnkeyedLiterals(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || len(lit.Elts) == 0 {
			return true
		}
		if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); keyed {
			return true
		}
		tv, ok := pass.TypesInfo.Types[lit]
		if !ok || tv.Type == nil {
			return true
		}
		st, ok := tv.Type.Underlying().(*types.Struct)
		if !ok || !isJSONTagged(st) {
			return true
		}
		pass.Reportf(lit.Pos(), "unkeyed composite literal of wire struct %s: positional fields silently misalign when the struct grows (use field: value)", typeName(tv.Type))
		return true
	})
}

// isJSONTagged reports whether any field of the struct carries a json
// tag — the signature of a type that crosses a serialized boundary.
func isJSONTagged(st *types.Struct) bool {
	for i := range st.NumFields() {
		if tag, ok := reflect.StructTag(st.Tag(i)).Lookup("json"); ok && tag != "" {
			return true
		}
	}
	return false
}

// typeName renders a short name for diagnostics.
func typeName(t types.Type) string {
	s := t.String()
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		s = s[i+1:]
	}
	return s
}
