package sink

import (
	"encoding/json"
	"io"
)

type event struct {
	N int `json:"n"`
}

// Stream drops one Encode error, handles one, and blanks one.
func Stream(w io.Writer, evs []event) error {
	enc := json.NewEncoder(w)
	for _, ev := range evs {
		enc.Encode(ev) // want `Encode error dropped`
	}
	var last error
	for _, ev := range evs {
		if err := enc.Encode(ev); err != nil {
			last = err
		}
	}
	_ = enc.Encode(event{N: -1}) // explicit blank: visible intent, not flagged
	return last
}

type emitter struct{}

func (emitter) Emit(ev event) error {
	_ = ev
	return nil
}

func (emitter) log(ev event) {
	_ = ev
}

// Fan drops an Emit error; the non-sink method is fine.
func Fan(e emitter, evs []event) {
	for _, ev := range evs {
		e.Emit(ev) // want `Emit error dropped`
	}
	for _, ev := range evs {
		e.log(ev)
	}
}

// Deferred drops the error through a defer.
func Deferred(w io.Writer, ev event) {
	enc := json.NewEncoder(w)
	defer enc.Encode(ev) // want `Encode error dropped`
}

type counter struct{ n int }

// Encode here returns nothing: name alone does not trigger the check.
func (c *counter) Encode(ev event) {
	_ = ev
	c.n++
}

// Count calls the error-free Encode: not flagged.
func Count(c *counter, ev event) {
	c.Encode(ev)
}

// Fire documents a best-effort drop in place.
func Fire(w io.Writer, ev event) {
	enc := json.NewEncoder(w)
	enc.Encode(ev) //repro:allow sinkcheck -- best-effort telemetry; a lost frame is acceptable here
}
