// Package sinkcheck makes sure serialization errors are not silently
// dropped at the repository's output boundaries. Every sim.Event sink
// and every NDJSON stream in this codebase funnels through
// json.Encoder.Encode (or a method of the same shape); an ignored
// Encode error means a truncated stream that parses as a shorter,
// valid result — the worst kind of corruption, because nothing fails.
//
// The rule: an expression statement (or go/defer statement) whose value
// is a call to a function or method named Encode, EncodeEvent or Emit
// returning an error discards that error, and is flagged. Explicitly
// assigning to blank (`_ = enc.Encode(v)`) is visible intent and
// passes; so does capturing into a variable, whatever is done with it
// afterwards (errcheck-style dataflow is out of scope). Test files are
// exempt.
package sinkcheck

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the sinkcheck checker.
var Analyzer = &analysis.Analyzer{
	Name: "sinkcheck",
	Doc: "encoder and event-sink errors must be handled. " +
		"A dropped Encode error turns a failed write into a silently " +
		"truncated-but-valid output stream; capture it, or assign to blank " +
		"to make the drop explicit.",
	Run:        run,
	NeedsTypes: true,
}

// sinkMethodNames are the callee names treated as serialization sinks.
var sinkMethodNames = map[string]bool{
	"Encode":      true,
	"EncodeEvent": true,
	"Emit":        true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = n.Call
			case *ast.DeferStmt:
				call = n.Call
			}
			if call == nil {
				return true
			}
			if name, ok := droppedSinkError(pass, call); ok {
				pass.Reportf(call.Pos(), "%s error dropped: a failed write leaves a truncated stream that still parses (capture the error, or `_ =` to drop it on purpose)", name)
			}
			return true
		})
	}
	return nil
}

// droppedSinkError reports whether the call is a sink call whose error
// result is being discarded, returning the callee name for the message.
func droppedSinkError(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	name := calleeName(call)
	if !sinkMethodNames[name] {
		return "", false
	}
	sig, ok := pass.TypesInfo.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return "", false
	}
	results := sig.Results()
	if results.Len() == 0 {
		return "", false
	}
	last := results.At(results.Len() - 1).Type()
	if !types.Implements(last, errorInterface) {
		return "", false
	}
	return name, true
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
