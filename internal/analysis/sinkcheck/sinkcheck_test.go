package sinkcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/sinkcheck"
)

func TestSinkCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), sinkcheck.Analyzer, "sink")
}
