package errtaxonomy_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/errtaxonomy"
)

func TestErrTaxonomy(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), errtaxonomy.Analyzer,
		"repro/internal/sim",
		"other",
	)
}
