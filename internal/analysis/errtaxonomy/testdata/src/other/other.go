// Package other is outside the taxonomy contract's scope: identity
// comparisons here are not flagged.
package other

import "io"

// IsEOF compares by identity; out of scope, so no finding.
func IsEOF(err error) bool {
	return err == io.EOF
}
