package sim

import (
	"errors"
	"fmt"
	"io"
)

// ErrBad is a sentinel callers classify with errors.Is.
var ErrBad = errors.New("bad")

// Classify compares errors by identity: both comparisons are flagged.
func Classify(err error) bool {
	if err == io.EOF { // want `error compared with ==`
		return true
	}
	if err != ErrBad { // want `error compared with !=`
		return false
	}
	return true
}

// ClassifyGood uses errors.Is and nil checks: nothing flagged.
func ClassifyGood(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrBad) || errors.Is(err, io.EOF)
}

// Wrap severs the chain with %v: flagged.
func Wrap(err error) error {
	return fmt.Errorf("running: %v", err) // want `error formatted with %v severs`
}

// WrapGood keeps the sentinel reachable.
func WrapGood(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("running: %w", err)
}

// Allowed is a deliberate identity check, documented in place.
func Allowed(err error) bool {
	return err == io.EOF //repro:allow errtaxonomy -- this reader hands io.EOF through unwrapped by contract
}
