// Package errtaxonomy enforces the error-taxonomy contract of the
// public API: the sim package exports sentinel errors
// (ErrUnknownBenchmark, ErrBadConfig, ErrCanceled) and promises callers
// can classify any returned error with errors.Is — which only holds if
// every layer in between wraps with %w and never compares errors by
// identity. Two constructs break the chain:
//
//   - `err == someErr` / `err != someErr` on error-typed operands:
//     identity comparison sees only the outermost wrapper, so a
//     perfectly classified error slips past the check (dispatch's
//     worker loop once compared ==io.EOF and missed wrapped EOFs);
//   - fmt.Errorf passing an error argument through a non-%w verb: the
//     message survives but the sentinel is severed from the chain.
//
// Comparisons against nil are idiomatic and exempt. Deliberate identity
// checks (comparing against a just-created local, say) take a
// `//repro:allow errtaxonomy -- <why>` on the line.
package errtaxonomy

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the errtaxonomy checker.
var Analyzer = &analysis.Analyzer{
	Name: "errtaxonomy",
	Doc: "errors must stay classifiable with errors.Is. " +
		"Forbids ==/!= on error values (use errors.Is) and fmt.Errorf calls " +
		"that pass an error through a non-%w verb, both of which sever the " +
		"wrap chain the exported sentinels depend on.",
	Run:        run,
	NeedsTypes: true,
}

// scope lists the import paths under the taxonomy contract: the public
// API surface and every package that forwards its errors.
var scope = map[string]bool{
	"repro":                      true,
	"repro/internal/sim":         true,
	"repro/internal/scenario":    true,
	"repro/internal/dispatch":    true,
	"repro/internal/experiments": true,
	"repro/internal/objstore":    true,
	"repro/internal/storeflag":   true,
}

func inScope(path string) bool {
	return scope[path] || strings.HasPrefix(path, "repro/cmd/")
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Path) {
		return nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkComparison(pass, n)
			case *ast.CallExpr:
				checkErrorf(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkComparison flags ==/!= where both operands are error-typed and
// neither is nil.
func checkComparison(pass *analysis.Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return
	}
	if isNilExpr(pass, bin.X) || isNilExpr(pass, bin.Y) {
		return
	}
	if !isErrorType(pass, bin.X) || !isErrorType(pass, bin.Y) {
		return
	}
	verb := "errors.Is"
	if bin.Op == token.NEQ {
		verb = "!errors.Is"
	}
	pass.Reportf(bin.OpPos, "error compared with %s: identity misses wrapped errors, use %s", bin.Op, verb)
}

// checkErrorf flags fmt.Errorf calls where an error-typed argument is
// formatted by a verb other than %w.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" || obj.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	format, ok := constantString(pass, call.Args[0])
	if !ok {
		return // dynamic format string; out of reach for a static check
	}
	verbs := formatVerbs(format)
	for i, arg := range call.Args[1:] {
		if !isErrorType(pass, arg) {
			continue
		}
		if i >= len(verbs) {
			continue // fmt's own vet check owns arity mismatches
		}
		if verbs[i] != 'w' {
			pass.Reportf(arg.Pos(), "error formatted with %%%c severs the wrap chain: use %%w so errors.Is still sees the sentinel", verbs[i])
		}
	}
}

// constantString extracts a compile-time string value.
func constantString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	if lit, ok := e.(*ast.BasicLit); ok && lit.Kind == token.STRING {
		s, err := strconv.Unquote(lit.Value)
		if err == nil {
			return s, true
		}
	}
	s := tv.Value.ExactString()
	unq, err := strconv.Unquote(s)
	if err != nil {
		return "", false
	}
	return unq, true
}

// formatVerbs returns the final verb letter of each argument-consuming
// directive in a fmt format string, in order. Width/precision stars are
// not used in this repository and are not modeled.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// Skip flags, width, precision.
		for i < len(format) && strings.IndexByte("+-# 0123456789.", format[i]) >= 0 {
			i++
		}
		if i >= len(format) || format[i] == '%' {
			continue
		}
		verbs = append(verbs, format[i])
	}
	return verbs
}

// isErrorType reports whether the expression's type implements error
// (interface or concrete).
func isErrorType(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return types.Implements(tv.Type, errorInterface) ||
		types.Implements(types.NewPointer(tv.Type), errorInterface)
}

// isNilExpr reports whether e is the untyped nil.
func isNilExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// errorInterface is the universe error type's underlying interface.
var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
