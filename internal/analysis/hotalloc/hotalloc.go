// Package hotalloc statically pins the zero-alloc hot path. PR 2's
// 2.26x throughput win came from flattening every per-cycle allocation
// out of the simulator's rename/issue/writeback/commit loop; the
// runtime alloc_test.go proves steady-state allocs stay at zero, but
// only for the configurations it runs. hotalloc complements it
// structurally: a function annotated
//
//	//repro:hotpath
//
// in its doc comment may not contain the constructs that allocate (or
// box) on Go's hot paths — append, make/new, map writes and literals,
// closures, fmt calls, string/[]byte conversions and concatenation,
// and implicit interface conversions of concrete values. The check is
// per-function and syntactic: callees are not followed (annotate them
// too if they are hot), and a deliberate exception takes a line-level
// `//repro:allow hotalloc -- <why>`.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Directive is the doc-comment marker naming a function as part of the
// zero-alloc hot path.
const Directive = "hotpath"

// Analyzer is the hotalloc checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "functions marked //repro:hotpath must not allocate. " +
		"Statically forbids append, make/new, map writes, closures, fmt calls, " +
		"string conversions and interface boxing inside annotated functions, " +
		"pinning the zero-alloc property the runtime alloc tests sample.",
	Run:        run,
	NeedsTypes: true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !analysis.HasDirective(fn.Doc, Directive) {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in hot path: the func value (and its captures) allocate")
			return false // the literal's own body is cold until proven otherwise
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.CompositeLit:
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in hot path")
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in hot path")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal escapes to the heap in hot path")
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if _, isMap := info.Types[ix.X].Type.Underlying().(*types.Map); isMap {
						pass.Reportf(lhs.Pos(), "map write in hot path: map assignment can grow buckets and defeats the flat-storage design")
					}
				}
			}
			checkAssignBoxing(pass, n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.Types[n.X].Type) && !isConstant(info, n) {
				pass.Reportf(n.Pos(), "string concatenation allocates in hot path")
			}
		case *ast.ReturnStmt:
			checkReturnBoxing(pass, fn, n)
		}
		return true
	})
}

// checkCall flags allocating builtins, fmt calls, string conversions
// and interface-boxing arguments.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo

	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "append":
				pass.Reportf(call.Pos(), "append in hot path: growth reallocates the backing array (preallocate flat storage instead)")
			case "make":
				pass.Reportf(call.Pos(), "make in hot path allocates")
			case "new":
				pass.Reportf(call.Pos(), "new in hot path allocates")
			case "delete":
				pass.Reportf(call.Pos(), "map delete in hot path: maps do not belong on the flat hot path")
			}
			return
		}
	}

	// Conversions: string <-> []byte/[]rune copy, and conversions to an
	// interface type box.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := info.Types[call.Args[0]].Type
		switch {
		case isString(to) != isString(from) && (isByteSlice(to) || isByteSlice(from) || isString(to) || isString(from)):
			if isString(to) || isByteSlice(to) {
				pass.Reportf(call.Pos(), "string/[]byte conversion copies in hot path")
			}
		case types.IsInterface(to) && from != nil && !types.IsInterface(from):
			pass.Reportf(call.Pos(), "conversion to %s boxes a concrete value in hot path", to)
		}
		return
	}

	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj, ok := info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s in hot path: formatting allocates and boxes every operand", obj.Name())
			return
		}
	}

	// Concrete arguments passed to interface parameters box.
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through whole, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || types.IsInterface(at) || isUntypedNil(at) {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes %s into %s in hot path", at, pt)
	}
}

// checkAssignBoxing flags assignments of concrete values into
// interface-typed destinations.
func checkAssignBoxing(pass *analysis.Pass, assign *ast.AssignStmt) {
	info := pass.TypesInfo
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, lhs := range assign.Lhs {
		lt := info.Types[lhs].Type
		if assign.Tok == token.DEFINE {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				if obj := info.Defs[id]; obj != nil {
					lt = obj.Type()
				}
			}
		}
		rt := info.Types[assign.Rhs[i]].Type
		if lt == nil || rt == nil || !types.IsInterface(lt) || types.IsInterface(rt) || isUntypedNil(rt) {
			continue
		}
		pass.Reportf(assign.Rhs[i].Pos(), "assignment boxes %s into %s in hot path", rt, lt)
	}
}

// checkReturnBoxing flags returns of concrete values through interface
// results.
func checkReturnBoxing(pass *analysis.Pass, fn *ast.FuncDecl, ret *ast.ReturnStmt) {
	info := pass.TypesInfo
	results := fn.Type.Results
	if results == nil || len(ret.Results) == 0 {
		return
	}
	var resultTypes []types.Type
	for _, field := range results.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		t := info.Types[field.Type].Type
		for range n {
			resultTypes = append(resultTypes, t)
		}
	}
	if len(resultTypes) != len(ret.Results) {
		return // naked return or tuple-returning call; nothing to see syntactically
	}
	for i, e := range ret.Results {
		rt := info.Types[e].Type
		if resultTypes[i] == nil || rt == nil || !types.IsInterface(resultTypes[i]) || types.IsInterface(rt) || isUntypedNil(rt) {
			continue
		}
		pass.Reportf(e.Pos(), "return boxes %s into %s in hot path", rt, resultTypes[i])
	}
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// isConstant reports whether the expression folded to a constant (a
// constant string concatenation happens at compile time).
func isConstant(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
