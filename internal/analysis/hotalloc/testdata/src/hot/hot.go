package hot

import "fmt"

type pair struct{ a, b int }

func use(v any) {
	_ = v
}

// Bad collects one of each forbidden construct.
//
//repro:hotpath
func Bad(xs []int, m map[string]int) []int {
	xs = append(xs, 1)   // want `append in hot path`
	m["k"] = 1           // want `map write in hot path`
	fmt.Println(len(xs)) // want `fmt.Println in hot path`
	f := func() {}       // want `closure in hot path`
	f()
	b := make([]byte, 8) // want `make in hot path`
	_ = string(b)        // want `string/\[\]byte conversion copies`
	return xs
}

// Boxes demonstrates the implicit interface-conversion rules.
//
//repro:hotpath
func Boxes(v int) any {
	use(v)      // want `argument boxes int into`
	a := any(v) // want `conversion to .* boxes a concrete value`
	_ = a
	return v // want `return boxes int into`
}

// Lit flags escaping composite literals.
//
//repro:hotpath
func Lit() *pair {
	return &pair{a: 1, b: 2} // want `&composite literal escapes`
}

// Allowed is the documented exception shape: the append is amortized
// into a preallocated buffer, and says so.
//
//repro:hotpath
func Allowed(xs []int, x int) []int {
	xs = append(xs, x) //repro:allow hotalloc -- amortized growth into a preallocated buffer
	return xs
}

// Cold has no directive: the same constructs pass without comment.
func Cold(xs []int) []int {
	fmt.Println(len(xs))
	return append(xs, 1)
}
