// Package analysistest runs analyzers over fixture packages on disk and
// checks their findings against `// want` expectations — the same
// contract as golang.org/x/tools/go/analysis/analysistest, rebuilt on
// the standard library so the repository stays dependency-free.
//
// Fixtures live under <testdata>/src/<importpath>/*.go; the import path
// is real as far as the analyzer can tell, which is how path-scoped
// analyzers (nodeterm only polices the result-producing packages) are
// exercised: a fixture under testdata/src/repro/internal/core IS
// repro/internal/core to the checker. Expectations are trailing
// comments on the offending line:
//
//	keys := time.Now() // want `nondeterministic`
//
// The payload is a regexp (quoted or backquoted) matched against the
// finding's message; several on one line demand several findings. A
// finding with no expectation, or an expectation with no finding, fails
// the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// sourceImporter type-checks fixture imports (standard library only)
// from source, shared process-wide: the importer caches every package
// it loads, so the first fixture pays for fmt and friends and the rest
// reuse them.
var sourceImporter = sync.OnceValue(func() types.Importer {
	return importer.ForCompiler(token.NewFileSet(), "source", nil)
})

// Run checks a on each fixture package path under testdata/src.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	for _, path := range paths {
		runPackage(t, testdata, a, path)
	}
}

// TestData returns the absolute testdata directory of the calling test's
// package.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func runPackage(t *testing.T, testdata string, a *analysis.Analyzer, path string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: reading fixture dir: %v", path, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("%s: fixture dir %s has no .go files", path, dir)
	}

	info := analysis.NewTypesInfo()
	tc := &types.Config{Importer: sourceImporter()}
	pkg, err := tc.Check(path, fset, files, info)
	if err != nil {
		t.Fatalf("%s: typechecking fixture: %v", path, err)
	}

	findings, err := analysis.Run(fset, files, path, pkg, info, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}

	checkExpectations(t, fset, files, path, findings)
}

// expectation is one `// want` clause: a message regexp pinned to a
// file and line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, path string, findings []analysis.Finding) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				posn := fset.Position(c.Pos())
				patterns, err := splitPatterns(text)
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", posn.Filename, posn.Line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", posn.Filename, posn.Line, p, err)
					}
					wants = append(wants, &expectation{file: posn.Filename, line: posn.Line, re: re})
				}
			}
		}
	}

	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.met && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: %s", path, f)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s: %s:%d: expected finding matching %q, got none", path, w.file, w.line, w.re)
		}
	}
}

// splitPatterns parses the payload of a want comment: one or more
// quoted ("...") or backquoted (`...`) regexps.
func splitPatterns(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", s)
			}
			out = append(out, s[1:1+end])
			s = s[end+2:]
		case '"':
			// Re-use the Go string syntax for escapes.
			rest := s[1:]
			end := strings.IndexByte(rest, '"')
			for end > 0 && rest[end-1] == '\\' {
				next := strings.IndexByte(rest[end+1:], '"')
				if next < 0 {
					end = -1
					break
				}
				end += 1 + next
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated quote in %q", s)
			}
			unq, err := strconv.Unquote(s[:end+2])
			if err != nil {
				return nil, fmt.Errorf("bad quoted pattern %q: %v", s[:end+2], err)
			}
			out = append(out, unq)
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("pattern must be quoted or backquoted: %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment carries no pattern")
	}
	return out, nil
}
