package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
)

// This file is the `go vet -vettool` driver: cmd/go speaks the
// unitchecker protocol to vet tools, and Main implements it from the
// standard library alone (golang.org/x/tools is deliberately not a
// dependency). The protocol, as cmd/go drives it:
//
//  1. `tool -flags` — print a JSON description of the tool's flags
//     (ours has none beyond the protocol's own, so: "[]");
//  2. `tool -V=full` — print a version line ending in a content hash,
//     which cmd/go folds into its action cache key;
//  3. `tool <unit>.cfg` — analyze one package unit. The cfg file names
//     the unit's Go files, its import map and the export-data file of
//     every dependency, so the unit can be type-checked hermetically
//     without loading any source but its own. Dependencies come through
//     first with VetxOnly set (facts-only mode; these analyzers carry no
//     facts, so the tool just writes the expected empty facts file).
//
// Diagnostics go to stderr as "file:line:col: message [analyzer]"; a
// non-zero exit tells cmd/go the package failed vetting.

// unitConfig mirrors the JSON layout of cmd/go's vet config file
// (cmd/go/internal/work's vetConfig); fields this driver does not
// consume are omitted.
type unitConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point cmd/repolint delegates to: it implements the
// vettool protocol for the given analyzers and exits. Invoked with
// package patterns instead of a cfg file (`repolint ./...`), it re-execs
// itself through `go vet -vettool=<self>` so the command works directly
// from a shell.
func Main(analyzers ...*Analyzer) {
	progname := os.Args[0]
	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [package pattern ...] | %s <unit>.cfg\n\nAnalyzers:\n", progname, progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, firstSentence(a.Doc))
		}
	}
	version := fs.String("V", "", "print version and exit (protocol flag)")
	printFlags := fs.Bool("flags", false, "print flags in JSON and exit (protocol flag)")
	fs.Parse(os.Args[1:])

	switch {
	case *printFlags:
		fmt.Println("[]")
		os.Exit(0)
	case *version != "":
		// The hash of the tool's own binary versions its behavior for
		// cmd/go's action cache, exactly like x/tools' unitchecker.
		fmt.Printf("%s version devel comments-go-here buildID=%x\n", progname, selfHash())
		os.Exit(0)
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0], analyzers))
	}
	if len(args) == 0 {
		fs.Usage()
		os.Exit(2)
	}
	os.Exit(execGoVet(args))
}

// selfHash digests the running executable.
func selfHash() []byte {
	exe, err := os.Executable()
	if err != nil {
		return []byte("unknown")
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return []byte("unknown")
	}
	h := sha256.Sum256(data)
	return h[:]
}

// firstSentence trims an analyzer doc to its headline.
func firstSentence(doc string) string {
	if i := strings.IndexAny(doc, ".\n"); i >= 0 {
		return doc[:i+1]
	}
	return doc
}

// execGoVet re-runs the tool through `go vet` over package patterns —
// the local-development convenience mode (`repolint ./...`).
func execGoVet(patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: locating own executable: %v\n", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "repolint: running go vet: %v\n", err)
		return 1
	}
	return 0
}

// runUnit analyzes one package unit per the cfg file and returns the
// process exit code.
func runUnit(cfgPath string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		return 1
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "repolint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// cmd/go expects the facts ("vetx") output file to exist after every
	// invocation; these analyzers are fact-free, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "repolint: writing %s: %v\n", cfg.VetxOutput, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	pkg, info, err := typeCheckUnit(fset, files, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "repolint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	findings, err := Run(fset, files, cfg.ImportPath, pkg, info, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// typeCheckUnit type-checks the unit against its dependencies' compiled
// export data, resolving import paths through the cfg's ImportMap (which
// is how test-variant packages and vendoring are disambiguated).
func typeCheckUnit(fset *token.FileSet, files []*ast.File, cfg *unitConfig) (*types.Package, *types.Info, error) {
	gcImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			if mapped, ok := cfg.ImportMap[path]; ok {
				path = mapped
			}
			return gcImporter.Import(path)
		}),
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := NewTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// NewTypesInfo allocates a types.Info with every map analyzers consume.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
