package regshare

import "context"

// Run is on the allowlist (sanctioned shim over RunContext): not
// flagged despite the missing ctx.
func Run(reqs []int) error {
	_ = reqs
	return nil
}

// MustRun is likewise allowlisted.
func MustRun(reqs []int) {
	_ = reqs
}

// RunContext is the context-first sibling the shims delegate to.
func RunContext(ctx context.Context, reqs []int) error {
	_ = ctx
	_ = reqs
	return nil
}

// RunOther is not on the allowlist and must be flagged.
func RunOther(reqs []int) error { // want `regshare.RunOther is a public Run entry point without a leading context.Context`
	_ = reqs
	return nil
}
