// Package stats is outside the execution spine: the contract does not
// apply, so nothing here is flagged.
package stats

// RunTally would be a violation in a spine package; here it is fine.
func RunTally(values []float64) float64 {
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum
}
