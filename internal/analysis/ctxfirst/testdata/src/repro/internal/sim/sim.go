package sim

import "context"

// RunAll lacks the leading context and must be flagged.
func RunAll(reqs []int) error { // want `sim.RunAll is a public Run entry point without a leading context.Context`
	_ = reqs
	return nil
}

// RunGood is the contract-conforming shape.
func RunGood(ctx context.Context, reqs []int) error {
	_ = ctx
	_ = reqs
	return nil
}

// Runner is an exported receiver: its Run/Stream methods are public API.
type Runner struct{}

// Stream on an exported receiver without ctx must be flagged.
func (r *Runner) Stream(reqs []int) { // want `sim.Runner.Stream is a public Run entry point without a leading context.Context`
	_ = reqs
}

// StreamCtx conforms.
func (r *Runner) StreamCtx(ctx context.Context, reqs []int) {
	_ = ctx
	_ = reqs
}

// runQuiet is unexported: not public API, not flagged.
func runQuiet(reqs []int) {
	_ = reqs
}

// inner is unexported, so its methods are not public API.
type inner struct{}

// RunHidden is a method on an unexported type: not flagged.
func (i inner) RunHidden(reqs []int) {
	_ = reqs
}

// Ruler is exported but matches none of the Run/Stream/MustRun
// prefixes: not an entry point, not flagged.
func Ruler(reqs []int) {
	_ = reqs
}
