// Package ctxfirst enforces the context-first execution API contract of
// docs/API.md: every public Run*/Stream*/MustRun* entry point in the
// execution-spine packages must take a context.Context as its first
// parameter. It is the analyzer form of the AST grep that used to live
// in internal/sim/apiguard_test.go (and the cheap shell grep in the CI
// docs job): one checker, run both by `go vet -vettool=repolint` over
// the real tree and by the thin apiguard test, so a context-free
// fire-and-forget entry point cannot regrow anywhere.
package ctxfirst

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the ctxfirst checker. It is AST-only (NeedsTypes false),
// so the apiguard test can run it over parsed-but-untyped packages.
var Analyzer = &analysis.Analyzer{
	Name: "ctxfirst",
	Doc: "public Run/Stream entry points must take a context.Context first. " +
		"The execution API is context-first by design: cancellation has to reach " +
		"the core cycle loop from every public surface, so an entry point without " +
		"a leading ctx is a fire-and-forget API regression.",
	Run: run,
}

// spinePackages are the execution-spine import paths the contract
// covers: the public regshare API (module root), the runner, the
// dispatch backends, the scenario engine, the experiment harness and
// the core's run loop.
var spinePackages = map[string]bool{
	"repro":                      true,
	"repro/internal/sim":         true,
	"repro/internal/dispatch":    true,
	"repro/internal/scenario":    true,
	"repro/internal/experiments": true,
	"repro/internal/core":        true,
}

// allowed lists the sanctioned context-free shims, as package-qualified
// names. Each is a thin wrapper over a context-first sibling.
var allowed = map[string]bool{
	"regshare.Run":     true, // shim over RunContext
	"regshare.MustRun": true, // shim over Run
	"core.Core.Run":    true, // shim over RunContext
}

// IsEntryPoint reports whether fn is a public Run*/Stream*/MustRun*
// entry point under the contract: an exported function, or an exported
// method on an exported receiver type. The apiguard test shares it to
// sanity-check that the scan still sees the API.
func IsEntryPoint(fn *ast.FuncDecl) bool {
	if !fn.Name.IsExported() {
		return false
	}
	name := fn.Name.Name
	if name == "Runner" { // accessor, not an entry point
		return false
	}
	if !strings.HasPrefix(name, "Run") && !strings.HasPrefix(name, "Stream") && !strings.HasPrefix(name, "MustRun") {
		return false
	}
	if recv := recvTypeName(fn); recv != "" && !ast.IsExported(recv) {
		return false // a method on an unexported type is not public API
	}
	return true
}

func run(pass *analysis.Pass) error {
	if !spinePackages[pass.Path] {
		return nil
	}
	for _, file := range pass.Files {
		pkgName := file.Name.Name
		if strings.HasSuffix(pkgName, "_test") {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !IsEntryPoint(fn) {
				continue
			}
			if analysis.IsTestFile(pass.Fset, fn.Pos()) {
				continue
			}
			if allowed[qualify(pkgName, fn)] {
				continue
			}
			if !firstParamIsContext(fn) {
				pass.Reportf(fn.Pos(), "%s is a public Run entry point without a leading context.Context", qualify(pkgName, fn))
			}
		}
	}
	return nil
}

// recvTypeName returns the receiver's base type name, or "".
func recvTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	typ := fn.Recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if id, ok := typ.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// qualify names a method as pkg.Recv.Name, a function as pkg.Name.
func qualify(pkgName string, fn *ast.FuncDecl) string {
	if recv := recvTypeName(fn); recv != "" {
		return pkgName + "." + recv + "." + fn.Name.Name
	}
	return pkgName + "." + fn.Name.Name
}

// firstParamIsContext reports whether fn's first parameter is typed
// context.Context.
func firstParamIsContext(fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil || len(fn.Type.Params.List) == 0 {
		return false
	}
	sel, ok := fn.Type.Params.List[0].Type.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "context" && sel.Sel.Name == "Context"
}
