// Package analysis is a small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics. It exists
// because this repository's correctness claims — bit-identical results
// across execution backends, the zero-alloc hot path, the context-first
// API contract — are structural invariants, and structural invariants
// belong to a machine checker, not to convention. The checkers
// themselves live in the subpackages (ctxfirst, nodeterm, hotalloc,
// errtaxonomy, wirecheck, sinkcheck); cmd/repolint aggregates them into
// a `go vet -vettool` binary, and the analysistest subpackage runs them
// over fixture packages in tests.
//
// Deliberate deviations from an invariant are annotated in the source
// with a suppression comment rather than configured out of the checker:
//
//	secs := time.Since(start).Seconds() //repro:allow nodeterm -- wall-clock speed is metadata, not results
//
// The directive names one or more analyzers (comma-separated) and
// silences their diagnostics on its own line and the line directly
// below, so it works both as a trailing comment and as a standalone
// line above the exempted statement. The rationale after " -- " is for
// humans; the checker ignores it but the review diff does not.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //repro:allow suppression comments. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description `repolint help` prints.
	Doc string
	// Run inspects one package and reports findings via pass.Report.
	// The returned error aborts the whole check (a broken analyzer),
	// not a finding.
	Run func(pass *Pass) error
	// NeedsTypes marks analyzers that cannot run without type
	// information. Drivers with only parsed ASTs (the thin apiguard
	// test in internal/sim) skip them instead of mis-reporting.
	NeedsTypes bool
}

// Pass carries one package's material through an Analyzer.Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed files, comments included.
	Files []*ast.File
	// Path is the package's import path. It is always set, even when
	// type information is absent.
	Path string
	// Pkg and TypesInfo are nil in AST-only drivers; analyzers with
	// NeedsTypes are never run there.
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report delivers one finding.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf formats and delivers one finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a Diagnostic resolved to a position and tagged with the
// analyzer that produced it — the unit drivers and tests trade in these.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// Run executes the analyzers over one package and returns the surviving
// findings in position order. Suppressed findings — those on a line
// covered by a matching //repro:allow comment — are dropped here, so
// every driver (the vettool, the fixture tests, the AST-only guard
// test) honors suppressions identically. Analyzers requiring types are
// skipped when info is nil.
func Run(fset *token.FileSet, files []*ast.File, path string, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	allowed := allowIndex(fset, files)
	var findings []Finding
	for _, a := range analyzers {
		if a.NeedsTypes && info == nil {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Path:      path,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.report = func(d Diagnostic) {
			posn := fset.Position(d.Pos)
			if allowed[allowKey{a.Name, posn.Filename, posn.Line}] {
				return
			}
			findings = append(findings, Finding{Analyzer: a.Name, Pos: posn, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// allowKey addresses one suppressed (analyzer, file, line) triple.
type allowKey struct {
	analyzer string
	file     string
	line     int
}

// allowDirective is the suppression comment prefix; see the package doc.
const allowDirective = "//repro:allow "

// allowIndex collects every //repro:allow directive: each one silences
// the named analyzers on the comment's own line (trailing form) and the
// next line (standalone form).
func allowIndex(fset *token.FileSet, files []*ast.File) map[allowKey]bool {
	idx := make(map[allowKey]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowDirective)
				if !ok {
					continue
				}
				names, _, _ := strings.Cut(rest, "--")
				posn := fset.Position(c.Pos())
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					idx[allowKey{name, posn.Filename, posn.Line}] = true
					idx[allowKey{name, posn.Filename, posn.Line + 1}] = true
				}
			}
		}
	}
	return idx
}

// HasDirective reports whether the comment group contains the exact
// //repro:<name> directive line — the marker mechanism hotalloc
// (//repro:hotpath) and wirecheck (//repro:wire) key on.
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text, ok := strings.CutPrefix(c.Text, "//repro:")
		if !ok {
			continue
		}
		directive, _, _ := strings.Cut(text, " ")
		if strings.TrimSpace(directive) == name {
			return true
		}
	}
	return false
}

// IsTestFile reports whether pos lies in a _test.go file. Most
// analyzers here police production result paths and skip test files;
// wirecheck deliberately does not.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
