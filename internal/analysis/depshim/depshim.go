// Package depshim keeps the deprecated workloads API shims from
// re-rooting in the tree. The PR that introduced workloads.Resolve kept
// Names/IntNames/FPNames/ByName/MustProgram/Group/GroupNames compiling
// as deprecated wrappers so external callers get a migration window —
// but an in-repo caller has no such excuse: new code reaching for a
// shim silently re-couples the tree to an API scheduled for deletion.
// The analyzer flags every reference to a deprecated workloads symbol
// outside the workloads package itself, where the shims (and their
// tests) legitimately live.
package depshim

import (
	"go/ast"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// workloadsPath is the package whose deprecated surface is policed.
const workloadsPath = "repro/internal/workloads"

// deprecated lists the shim symbols no in-repo code may use. The
// replacement is named in the diagnostic so the fix needs no doc trip.
var deprecated = map[string]string{
	"Names":       `Members("all")`,
	"IntNames":    `Members("int")`,
	"FPNames":     `Members("fp")`,
	"ByName":      "Resolve",
	"MustProgram": "Resolve + Build",
	"Group":       "Members",
	"GroupNames":  "Groups",
}

// Analyzer is the depshim checker. It is AST-only (NeedsTypes false):
// the deprecated surface is addressed through the package qualifier, so
// resolving the import alias is enough.
var Analyzer = &analysis.Analyzer{
	Name: "depshim",
	Doc: "deprecated workloads shims are off limits in-repo. " +
		"Names/IntNames/FPNames/ByName/MustProgram/Group/GroupNames exist " +
		"only as a migration window for external callers; in-repo code uses " +
		"Resolve, Members and Groups.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if strings.HasPrefix(pass.Path, workloadsPath) {
		return nil
	}
	for _, file := range pass.Files {
		imp := workloadsImport(file)
		if imp == nil {
			continue
		}
		alias := "workloads"
		if imp.Name != nil {
			switch imp.Name.Name {
			case "_":
				// A blank import pulls in no symbols; nothing to police.
				continue
			case ".":
				// A dot import would let shim calls appear as bare
				// identifiers this qualifier-based scan cannot see, so the
				// import form itself is the finding.
				pass.Reportf(imp.Pos(), "dot import of %s hides deprecated-shim use; import it qualified", workloadsPath)
				continue
			default:
				alias = imp.Name.Name
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != alias {
				return true
			}
			if repl, bad := deprecated[sel.Sel.Name]; bad {
				pass.Reportf(sel.Pos(), "deprecated workloads.%s (a compatibility shim); use %s",
					sel.Sel.Name, repl)
			}
			return true
		})
	}
	return nil
}

// workloadsImport returns the file's import of the workloads package,
// or nil when the file does not import it.
func workloadsImport(file *ast.File) *ast.ImportSpec {
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err == nil && path == workloadsPath {
			return imp
		}
	}
	return nil
}
