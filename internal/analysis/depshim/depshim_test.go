package depshim_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/depshim"
)

// findings runs the analyzer AST-only (no type information — depshim
// does not need it, which is what lets it run in every driver) over one
// in-memory file posing as package path.
func findings(t *testing.T, path, src string) []analysis.Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	got, err := analysis.Run(fset, []*ast.File{f}, path, nil, nil, []*analysis.Analyzer{depshim.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestFlagsDeprecatedShims(t *testing.T) {
	src := `package p

import "repro/internal/workloads"

func use() {
	_ = workloads.Names()
	_ = workloads.IntNames()
	_ = workloads.FPNames()
	_, _ = workloads.ByName("crafty")
	_ = workloads.MustProgram("crafty", 10)
	_ = workloads.Group("int")
	_ = workloads.GroupNames()
	f := workloads.ByName // a bare reference is a use too
	_ = f
}
`
	got := findings(t, "repro/internal/experiments", src)
	if len(got) != 8 {
		t.Fatalf("got %d findings, want 8:\n%v", len(got), got)
	}
	for _, f := range got {
		if !strings.Contains(f.Message, "deprecated workloads.") {
			t.Errorf("finding %v: message does not name the shim", f)
		}
	}
	// Each diagnostic must name the replacement, not just the offense.
	if !strings.Contains(got[0].Message, `Members("all")`) {
		t.Errorf("Names finding does not point at Members(\"all\"): %v", got[0])
	}
}

func TestNewSurfaceIsClean(t *testing.T) {
	src := `package p

import "repro/internal/workloads"

func use() {
	spec, _ := workloads.Resolve("gen:spill?depth=8")
	_ = spec
	_ = workloads.Members("all")
	_ = workloads.Groups()
	_ = workloads.Generators()
}
`
	if got := findings(t, "repro/internal/experiments", src); len(got) != 0 {
		t.Fatalf("new API flagged: %v", got)
	}
}

func TestAliasedImport(t *testing.T) {
	src := `package p

import wl "repro/internal/workloads"

func use() { _ = wl.Names() }
`
	got := findings(t, "cmd/sweep", src)
	if len(got) != 1 || !strings.Contains(got[0].Message, "workloads.Names") {
		t.Fatalf("aliased shim use not flagged: %v", got)
	}
}

func TestAliasDoesNotLeakToOtherPackages(t *testing.T) {
	// "workloads" as a qualifier for some OTHER package must not trip
	// the checker: the alias belongs to the import, not the name.
	src := `package p

import workloads "example.com/other"

func use() { _ = workloads.Names() }
`
	if got := findings(t, "cmd/sweep", src); len(got) != 0 {
		t.Fatalf("foreign package flagged: %v", got)
	}
}

func TestDotImportFlagged(t *testing.T) {
	src := `package p

import . "repro/internal/workloads"

func use() { _ = Names() }
`
	got := findings(t, "cmd/sweep", src)
	if len(got) != 1 || !strings.Contains(got[0].Message, "dot import") {
		t.Fatalf("dot import not flagged: %v", got)
	}
}

func TestBlankImportIgnored(t *testing.T) {
	src := `package p

import _ "repro/internal/workloads"
`
	if got := findings(t, "cmd/sweep", src); len(got) != 0 {
		t.Fatalf("blank import flagged: %v", got)
	}
}

func TestWorkloadsPackageItselfExempt(t *testing.T) {
	// The shims live in internal/workloads; its own files (and external
	// test package) define and exercise them legitimately.
	src := `package workloads

import "repro/internal/workloads"

func use() { _ = workloads.Names() }
`
	for _, path := range []string{"repro/internal/workloads", "repro/internal/workloads_test"} {
		if got := findings(t, path, src); len(got) != 0 {
			t.Fatalf("%s flagged its own shims: %v", path, got)
		}
	}
}

func TestSuppression(t *testing.T) {
	src := `package p

import "repro/internal/workloads"

func use() {
	_ = workloads.Names() //repro:allow depshim -- exercising the shim deliberately
}
`
	if got := findings(t, "cmd/sweep", src); len(got) != 0 {
		t.Fatalf("suppressed use still flagged: %v", got)
	}
}
