package smb

import "repro/internal/tage"

// DistancePredictor is the front-end component of the Instruction Distance
// prediction infrastructure (§3.1): given a load's PC and the speculative
// global/path history, it predicts how many instructions back the producer
// of the loaded value is. Predictions are acted on only when Confident
// (4-bit confidence counter saturated at 15).
type DistancePredictor interface {
	Name() string
	// Predict returns (distance, confident). distance is meaningful only
	// when confident.
	Predict(pc uint64, h *tage.History) (uint16, bool)
	// Train updates the predictor with the distance observed at commit,
	// using the prediction-time history snapshot.
	Train(pc uint64, h *tage.History, actual uint16)
	// Mispredict resets confidence for pc after a validation failure so a
	// re-fetched load does not immediately re-bypass with the same wrong
	// distance.
	Mispredict(pc uint64, h *tage.History)
	// Storage returns the predictor's storage budget in bits.
	Storage() int
}

// TAGEDistance is the paper's contributed predictor: a TAGE-like structure
// with one tagged base component and five partially tagged components
// mixing 2/5/11/27/64 bits of global branch history with 16 bits of path
// history (§3.1; ≈12.2KB).
type TAGEDistance struct {
	p *tage.ValuePredictor
}

// NewTAGEDistance builds the paper-sized TAGE-like distance predictor.
func NewTAGEDistance() *TAGEDistance {
	return &TAGEDistance{p: tage.NewValuePredictor(tage.DefaultDistanceConfig())}
}

// NewTAGEDistanceWithConfig allows sweeps over alternative geometries.
func NewTAGEDistanceWithConfig(cfg tage.ValueConfig) *TAGEDistance {
	return &TAGEDistance{p: tage.NewValuePredictor(cfg)}
}

// TAGEConfigWithHistories derives a distance-predictor configuration from
// the paper's, overriding the tagged components' history lengths. A
// non-nil empty hist removes the tagged components entirely (a PC-indexed
// base table only).
func TAGEConfigWithHistories(hist []int) tage.ValueConfig {
	cfg := tage.DefaultDistanceConfig()
	if hist == nil {
		return cfg
	}
	if len(hist) == 0 {
		cfg.Tagged = nil
		return cfg
	}
	for i := range cfg.Tagged {
		if i < len(hist) {
			cfg.Tagged[i].HistLen = hist[i]
		}
	}
	return cfg
}

// Name implements DistancePredictor.
func (t *TAGEDistance) Name() string { return "tage-distance" }

// Predict implements DistancePredictor.
func (t *TAGEDistance) Predict(pc uint64, h *tage.History) (uint16, bool) {
	pr := t.p.Predict(pc, h)
	return pr.Value, pr.Hit && pr.Confident
}

// Train implements DistancePredictor.
func (t *TAGEDistance) Train(pc uint64, h *tage.History, actual uint16) {
	t.p.Train(pc, h, actual)
}

// Mispredict implements DistancePredictor: retrain with an impossible
// distance (0), which resets the provider's confidence.
func (t *TAGEDistance) Mispredict(pc uint64, h *tage.History) {
	t.p.Train(pc, h, 0)
}

// Storage implements DistancePredictor.
func (t *TAGEDistance) Storage() int { return t.p.Storage() }

var _ DistancePredictor = (*TAGEDistance)(nil)

// NoSQDistance is the baseline predictor modelled on NoSQ's (§3.1): two
// 4K-entry tables with 5-bit tags, one indexed by load PC only and one by
// a hash of the PC, the global branch history and the path history (8 bits
// of each XORed with the PC shifted left by 4 — footnote 4). When both
// hit, the path-indexed table provides. On a misprediction an entry is
// allocated in both tables. ≈17KB.
type NoSQDistance struct {
	pcTable   []nosqEntry
	hashTable []nosqEntry
	confMax   uint8
}

type nosqEntry struct {
	valid bool
	tag   uint16
	dist  uint16
	conf  uint8
}

// NewNoSQDistance builds the baseline with the paper's sizing.
func NewNoSQDistance() *NoSQDistance {
	return &NoSQDistance{
		pcTable:   make([]nosqEntry, 4096),
		hashTable: make([]nosqEntry, 4096),
		confMax:   15,
	}
}

// Name implements DistancePredictor.
func (n *NoSQDistance) Name() string { return "nosq-distance" }

func (n *NoSQDistance) pcIndexTag(pc uint64) (int, uint16) {
	idx := int((pc >> 2) % uint64(len(n.pcTable)))
	tag := uint16((pc >> 14) & 0x1F)
	return idx, tag
}

func (n *NoSQDistance) hashIndexTag(pc uint64, h *tage.History) (int, uint16) {
	g := uint64(h.Bits() & 0xFF)
	p := uint64(h.Path() & 0xFF)
	x := (g ^ p) ^ (pc << 4)
	idx := int((x >> 2) % uint64(len(n.hashTable)))
	tag := uint16(((x >> 14) ^ (pc >> 6)) & 0x1F)
	return idx, tag
}

// Predict implements DistancePredictor.
func (n *NoSQDistance) Predict(pc uint64, h *tage.History) (uint16, bool) {
	pi, pt := n.pcIndexTag(pc)
	hi, ht := n.hashIndexTag(pc, h)
	pe, he := &n.pcTable[pi], &n.hashTable[hi]
	pcHit := pe.valid && pe.tag == pt
	hashHit := he.valid && he.tag == ht
	switch {
	case pcHit && hashHit:
		return he.dist, he.conf >= n.confMax
	case hashHit:
		return he.dist, he.conf >= n.confMax
	case pcHit:
		return pe.dist, pe.conf >= n.confMax
	default:
		return 0, false
	}
}

func trainEntry(e *nosqEntry, tag uint16, actual uint16, confMax uint8) {
	if !e.valid || e.tag != tag {
		*e = nosqEntry{valid: true, tag: tag, dist: actual, conf: 1}
		return
	}
	if e.dist == actual {
		if e.conf < confMax {
			e.conf++
		}
		return
	}
	e.dist = actual
	e.conf = 0
}

// Train implements DistancePredictor.
func (n *NoSQDistance) Train(pc uint64, h *tage.History, actual uint16) {
	pi, pt := n.pcIndexTag(pc)
	hi, ht := n.hashIndexTag(pc, h)
	trainEntry(&n.pcTable[pi], pt, actual, n.confMax)
	trainEntry(&n.hashTable[hi], ht, actual, n.confMax)
}

// Mispredict implements DistancePredictor.
func (n *NoSQDistance) Mispredict(pc uint64, h *tage.History) {
	pi, pt := n.pcIndexTag(pc)
	hi, ht := n.hashIndexTag(pc, h)
	if e := &n.pcTable[pi]; e.valid && e.tag == pt {
		e.conf = 0
	}
	if e := &n.hashTable[hi]; e.valid && e.tag == ht {
		e.conf = 0
	}
}

// Storage implements DistancePredictor: 2 tables × 4K entries × (5b tag +
// 8b distance + 4b confidence) = 17KB as the paper reports.
func (n *NoSQDistance) Storage() int {
	return (len(n.pcTable) + len(n.hashTable)) * (5 + 8 + 4)
}

var _ DistancePredictor = (*NoSQDistance)(nil)
