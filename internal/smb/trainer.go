package smb

import (
	"repro/internal/isa"
	"repro/internal/tage"
)

// Trainer is the commit-side half of the Instruction Distance prediction
// infrastructure (§3.1, Figure 1). At retirement:
//
//   - every register-defining instruction writes its Commit Sequence
//     Number (CSN) into the CSNMap entry of its architectural destination;
//   - a committing store reads the CSNMap entry of its data register (the
//     CSN of the instruction that produced the stored value) and writes it
//     into the DDT entry for the stored-to address;
//   - a committing load reads the DDT entry for its address; the
//     difference between the load's CSN and the recorded CSN is the
//     Instruction Distance, which trains the front-end predictor. With
//     load-load bypassing enabled the load then writes its own CSN into
//     the entry, letting one physical register keep feeding redundant
//     loads after the original store has left the window (§3).
//
// The caller supplies the CSN (the core's rename counter, which equals
// commit order on the correct path) and the load's fetch-time history.
type Trainer struct {
	DDT  *DDT
	Pred DistancePredictor
	// LoadLoad enables the load-load generalization.
	LoadLoad bool
	// MaxDistance bounds trainable distances (8-bit fields suffice: the
	// distance cannot exceed the ROB size plus in-flight µops, §3.1).
	MaxDistance uint16

	csnMap CSNMap

	// Stats
	TrainedPairs   uint64 // loads with a usable DDT-identified distance
	OutOfRange     uint64 // identified pairs too distant to encode
	StoreUpdates   uint64
	LoadUpdates    uint64
	UntrainedLoads uint64 // committed loads with no DDT hit
}

// NewTrainer wires a trainer; pred may be nil (training disabled: used by
// the baseline core).
func NewTrainer(ddt *DDT, pred DistancePredictor, loadLoad bool) *Trainer {
	return &Trainer{DDT: ddt, Pred: pred, LoadLoad: loadLoad, MaxDistance: 255}
}

// Commit processes one retiring µop. csn is the µop's commit sequence
// number; h is the load's fetch-time history snapshot (only used for
// loads).
func (t *Trainer) Commit(u *isa.Uop, csn uint64, h *tage.History) {
	switch u.Op {
	case isa.Store:
		if prod, ok := t.csnMap.Producer(u.Src[0]); ok {
			t.DDT.Update(u.MemAddr, prod)
			t.StoreUpdates++
		}
	case isa.Load:
		if prodCSN, ok := t.DDT.Lookup(u.MemAddr); ok && prodCSN < csn {
			d := csn - prodCSN
			if d <= uint64(t.MaxDistance) {
				t.TrainedPairs++
				if t.Pred != nil {
					t.Pred.Train(u.PC, h, uint16(d))
				}
			} else {
				t.OutOfRange++
				if t.Pred != nil {
					// Unencodable distance: kill confidence so the
					// front-end stops predicting this load.
					t.Pred.Train(u.PC, h, 0)
				}
			}
		} else {
			t.UntrainedLoads++
		}
		if t.LoadLoad {
			t.DDT.Update(u.MemAddr, csn)
			t.LoadUpdates++
		}
	}
	if u.HasDest() {
		t.csnMap.Define(u.Dest, csn)
	}
}
