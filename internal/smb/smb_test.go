package smb

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/tage"
)

func TestDDTUnlimited(t *testing.T) {
	d := NewDDT(DDTConfig{})
	if _, ok := d.Lookup(0x1000); ok {
		t.Fatal("empty DDT hit")
	}
	d.Update(0x1000, 42)
	if csn, ok := d.Lookup(0x1000); !ok || csn != 42 {
		t.Fatalf("lookup = (%d,%v), want (42,true)", csn, ok)
	}
	d.Update(0x1000, 43) // aliasing store overwrites (Figure 1)
	if csn, _ := d.Lookup(0x1000); csn != 43 {
		t.Fatalf("update did not overwrite: %d", csn)
	}
	if d.Storage() != 0 {
		t.Fatal("ideal DDT reports storage")
	}
}

func TestDDTLimitedTagsAndConflicts(t *testing.T) {
	d := NewDDT(DDTConfig{Entries: 16, TagBits: 5})
	d.Update(0x1000, 7)
	if csn, ok := d.Lookup(0x1000); !ok || csn != 7 {
		t.Fatal("limited DDT lost a fresh entry")
	}
	// A conflicting address (same index, different tag) evicts.
	conflict := uint64(0x1000) + 16*8
	d.Update(conflict, 9)
	if _, ok := d.Lookup(0x1000); ok {
		t.Fatal("direct-mapped conflict did not evict")
	}
	if csn, ok := d.Lookup(conflict); !ok || csn != 9 {
		t.Fatalf("conflicting entry lookup = (%d,%v)", csn, ok)
	}
}

func TestDDTStorageMatchesPaper(t *testing.T) {
	// §3.1: 16K entries, 14b tag + 64b address = 156KB; 1K entries, 5b
	// tag = 8.625KB.
	d16k := NewDDT(DDTConfig{Entries: 16384, TagBits: 14})
	if kb := float64(d16k.Storage()) / 8 / 1024; kb != 156 {
		t.Fatalf("16K DDT = %vKB, want 156", kb)
	}
	d1k := NewDDT(DDTConfig{Entries: 1024, TagBits: 5})
	if kb := float64(d1k.Storage()) / 8 / 1024; kb < 8.6 || kb > 8.7 {
		t.Fatalf("1K DDT = %vKB, want ~8.6", kb)
	}
}

func TestCSNMap(t *testing.T) {
	var m CSNMap
	if _, ok := m.Producer(isa.IntR(3)); ok {
		t.Fatal("unset producer reported")
	}
	m.Define(isa.IntR(3), 100)
	if csn, ok := m.Producer(isa.IntR(3)); !ok || csn != 100 {
		t.Fatalf("producer = (%d,%v)", csn, ok)
	}
	m.Define(isa.IntR(3), 200) // redefinition overwrites
	if csn, _ := m.Producer(isa.IntR(3)); csn != 200 {
		t.Fatal("redefinition did not overwrite CSN")
	}
	m.Define(isa.NoReg, 5) // must not crash or alias
}

// TestTrainerFigure1 replays the paper's Figure 1: add1 produces ar1,
// store3 stores it, store4 (aliasing) stores sub2's value, load5 reads the
// address. The trained distance must be load5.CSN - sub2.CSN = 3.
func TestTrainerFigure1(t *testing.T) {
	pred := NewTAGEDistance()
	tr := NewTrainer(NewDDT(DDTConfig{}), pred, false)
	var h tage.History

	addr := uint64(0x9000)
	ar1, ar2 := isa.IntR(1), isa.IntR(2)

	uops := []struct {
		u   isa.Uop
		csn uint64
	}{
		{isa.Uop{Op: isa.ALU, Dest: ar1}, 0}, // add1
		{isa.Uop{Op: isa.ALU, Dest: ar2}, 1}, // sub2
		{isa.Uop{Op: isa.Store, Src: [isa.MaxSrcRegs]isa.Reg{ar1, isa.NoReg, isa.NoReg}, MemAddr: addr}, 2}, // store3 (p)
		{isa.Uop{Op: isa.Store, Src: [isa.MaxSrcRegs]isa.Reg{ar2, isa.NoReg, isa.NoReg}, MemAddr: addr}, 3}, // store4 (q, aliases)
	}
	for _, x := range uops {
		tr.Commit(&x.u, x.csn, &h)
	}
	load5 := isa.Uop{Op: isa.Load, PC: 0x5000, Dest: ar2, MemAddr: addr}
	tr.Commit(&load5, 4, &h)
	if tr.TrainedPairs != 1 {
		t.Fatalf("trained pairs = %d, want 1", tr.TrainedPairs)
	}
	// Train repeatedly to saturate confidence, then check the distance.
	for i := 0; i < 20; i++ {
		tr.Commit(&load5, 4, &h)
	}
	// Note: repeated same-CSN commits re-train distance 3 each time.
	d, conf := pred.Predict(0x5000, &h)
	if !conf || d != 3 {
		t.Fatalf("predicted distance = (%d,%v), want (3,true)", d, conf)
	}
}

// TestTrainerLoadLoad: with the load-load generalization the DDT entry is
// refreshed by loads, so a second load trains against the first.
func TestTrainerLoadLoad(t *testing.T) {
	pred := NewTAGEDistance()
	tr := NewTrainer(NewDDT(DDTConfig{}), pred, true)
	var h tage.History
	addr := uint64(0x9100)

	// Producer far in the past.
	prod := isa.Uop{Op: isa.ALU, Dest: isa.IntR(1)}
	tr.Commit(&prod, 0, &h)
	st := isa.Uop{Op: isa.Store, Src: [isa.MaxSrcRegs]isa.Reg{isa.IntR(1), isa.NoReg, isa.NoReg}, MemAddr: addr}
	tr.Commit(&st, 1, &h)

	l1 := isa.Uop{Op: isa.Load, PC: 0x6000, Dest: isa.IntR(2), MemAddr: addr}
	tr.Commit(&l1, 500, &h) // distance 500-0 > 255: out of range
	if tr.OutOfRange != 1 {
		t.Fatalf("out-of-range = %d, want 1", tr.OutOfRange)
	}
	// The load-load update recorded l1's CSN; a second load 40 later
	// trains at distance 40.
	l2 := isa.Uop{Op: isa.Load, PC: 0x6100, Dest: isa.IntR(3), MemAddr: addr}
	tr.Commit(&l2, 540, &h)
	if tr.TrainedPairs != 1 {
		t.Fatalf("trained pairs = %d, want 1 (load-load)", tr.TrainedPairs)
	}
}

// TestTrainerStoreOnlyMissesRedundantLoads: without load-load, the second
// load's distance stays out of range — the §6.2 ablation's mechanism.
func TestTrainerStoreOnlyMissesRedundantLoads(t *testing.T) {
	tr := NewTrainer(NewDDT(DDTConfig{}), NewTAGEDistance(), false)
	var h tage.History
	addr := uint64(0x9200)
	prod := isa.Uop{Op: isa.ALU, Dest: isa.IntR(1)}
	tr.Commit(&prod, 0, &h)
	st := isa.Uop{Op: isa.Store, Src: [isa.MaxSrcRegs]isa.Reg{isa.IntR(1), isa.NoReg, isa.NoReg}, MemAddr: addr}
	tr.Commit(&st, 1, &h)
	l1 := isa.Uop{Op: isa.Load, PC: 0x6000, Dest: isa.IntR(2), MemAddr: addr}
	l2 := isa.Uop{Op: isa.Load, PC: 0x6100, Dest: isa.IntR(3), MemAddr: addr}
	tr.Commit(&l1, 500, &h)
	tr.Commit(&l2, 540, &h)
	if tr.TrainedPairs != 0 {
		t.Fatalf("store-only trainer found %d pairs, want 0", tr.TrainedPairs)
	}
	if tr.OutOfRange != 2 {
		t.Fatalf("out-of-range = %d, want 2", tr.OutOfRange)
	}
}

func TestNoSQPredictorBasics(t *testing.T) {
	p := NewNoSQDistance()
	var h tage.History
	const pc = 0x7000
	if _, conf := p.Predict(pc, &h); conf {
		t.Fatal("cold predictor confident")
	}
	for i := 0; i < 15; i++ {
		p.Train(pc, &h, 9)
	}
	d, conf := p.Predict(pc, &h)
	if !conf || d != 9 {
		t.Fatalf("prediction = (%d,%v), want (9,true)", d, conf)
	}
	// Mismatch resets confidence (§3.1: counters reset to 0).
	p.Train(pc, &h, 11)
	if _, conf := p.Predict(pc, &h); conf {
		t.Fatal("confidence survived mismatch")
	}
}

func TestMispredictResetsConfidence(t *testing.T) {
	for _, mk := range []func() DistancePredictor{
		func() DistancePredictor { return NewTAGEDistance() },
		func() DistancePredictor { return NewNoSQDistance() },
	} {
		p := mk()
		var h tage.History
		for i := 0; i < 20; i++ {
			p.Train(0x8000, &h, 5)
		}
		if _, conf := p.Predict(0x8000, &h); !conf {
			t.Fatalf("%s: never became confident", p.Name())
		}
		p.Mispredict(0x8000, &h)
		if _, conf := p.Predict(0x8000, &h); conf {
			t.Fatalf("%s: confident after Mispredict", p.Name())
		}
	}
}

func TestNoSQStorageMatchesPaper(t *testing.T) {
	// §3.1 / Table 1: 17KB for the NoSQ-style predictor.
	kb := float64(NewNoSQDistance().Storage()) / 8 / 1024
	if kb != 17 {
		t.Fatalf("NoSQ predictor storage = %vKB, want 17", kb)
	}
}
