// Package smb implements the Speculative Memory Bypassing machinery of §3:
// the Data Dependency Table (DDT) that identifies store→load and
// load→load pairs at retirement, the commit-side Commit-Sequence-Number
// plumbing, and the Instruction Distance predictors (the paper's TAGE-like
// predictor and the NoSQ-style two-table baseline) consulted in the
// front-end.
package smb

import (
	"repro/internal/isa"
	"repro/internal/program"
)

// DDTConfig sizes the Data Dependency Table. Entries == 0 selects the
// unlimited (ideal) table the paper uses as its first design point; the
// paper's realistic design is 1K entries with 5-bit tags (§3.1), and its
// large design 16K entries with 14-bit tags.
type DDTConfig struct {
	Entries int
	TagBits int
}

// DDT maps a data virtual address to the Commit Sequence Number of the
// instruction that produced the value last stored (or, with load-load
// bypassing, last loaded) at that address.
type DDT struct {
	cfg DDTConfig
	// ideal backs the unlimited table. It is consulted once per committed
	// load and store, so it uses the paged store rather than a Go map.
	ideal   *program.PagedMem
	entries []ddtEntry
	tagMask uint64

	Lookups uint64
	Hits    uint64
	Updates uint64
}

type ddtEntry struct {
	valid bool
	tag   uint64
	csn   uint64
}

// NewDDT builds a DDT.
func NewDDT(cfg DDTConfig) *DDT {
	d := &DDT{cfg: cfg}
	if cfg.Entries <= 0 {
		d.ideal = program.NewPagedMem()
		return d
	}
	d.entries = make([]ddtEntry, cfg.Entries)
	d.tagMask = uint64(1)<<cfg.TagBits - 1
	return d
}

// key quantizes a virtual address to the functional model's 8-byte words.
func key(addr uint64) uint64 { return addr >> 3 }

func (d *DDT) indexTag(addr uint64) (int, uint64) {
	k := key(addr)
	idx := int(k % uint64(len(d.entries)))
	tag := (k / uint64(len(d.entries))) & d.tagMask
	return idx, tag
}

// Lookup returns the producer CSN recorded for addr.
func (d *DDT) Lookup(addr uint64) (uint64, bool) {
	d.Lookups++
	if d.ideal != nil {
		csn, ok := d.ideal.Load(key(addr))
		if ok {
			d.Hits++
		}
		return csn, ok
	}
	idx, tag := d.indexTag(addr)
	e := &d.entries[idx]
	if e.valid && e.tag == tag {
		d.Hits++
		return e.csn, true
	}
	return 0, false
}

// Update records csn as the latest producer for addr.
func (d *DDT) Update(addr, csn uint64) {
	d.Updates++
	if d.ideal != nil {
		d.ideal.Store(key(addr), csn)
		return
	}
	idx, tag := d.indexTag(addr)
	d.entries[idx] = ddtEntry{valid: true, tag: tag, csn: csn}
}

// Storage returns the table's storage in bits (64-bit payload per entry,
// per the paper's accounting: 16K×(14b tag+64b) ≈ 156KB, 1K×(5b+64b) ≈
// 8.6KB). The ideal table reports 0 (it is a modelling device).
func (d *DDT) Storage() int {
	if d.ideal != nil {
		return 0
	}
	return len(d.entries) * (d.cfg.TagBits + 64)
}

// CSNMap is the Commit Rename Map extension of §3.1: per architectural
// register, the CSN of the committed instruction that last defined it.
type CSNMap struct {
	csn [2][isa.NumArchRegs]uint64
	set [2][isa.NumArchRegs]bool
}

// Define records that the instruction with the given CSN defined r.
func (m *CSNMap) Define(r isa.Reg, csn uint64) {
	if !r.Valid() {
		return
	}
	m.csn[r.Class][r.Index] = csn
	m.set[r.Class][r.Index] = true
}

// Producer returns the CSN of the last committed definer of r.
func (m *CSNMap) Producer(r isa.Reg) (uint64, bool) {
	if !r.Valid() {
		return 0, false
	}
	return m.csn[r.Class][r.Index], m.set[r.Class][r.Index]
}
