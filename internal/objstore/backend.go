// Package objstore is the storage seam behind sim.Store: a small
// object-store interface over content-addressed entries, with three
// implementations — fs (the sharded atomic temp+rename layout extracted
// from sim), mem (tests and ephemeral workers), and s3 (a stdlib-only
// client for the MinIO-compatible REST subset) — plus a read-through
// local cache tier for remote backends.
//
// Entries are named by the 64-hex SHA-256 of their sim.Key and grouped
// into 256 shards by the first digest byte; backends only ever see
// those names, so every implementation can enforce the same namespace.
// The envelope schema, simulator-version and key-derived-name checks
// stay above this seam, in sim.Store.
package objstore

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
)

// Object describes one stored entry as a backend reports it.
type Object struct {
	// Name is the entry's 64-hex name.
	Name string
	// Size is the entry's byte length.
	Size int64
	// ETag is the backend's opaque content token for cheap change
	// detection ("" when the backend has none).
	ETag string
	// SHA256 is an optional digest hint: the hex SHA-256 of the
	// entry's bytes when the backend can report it without a read
	// ("" otherwise). Consumers that need the digest fall back to
	// Get + hash.
	SHA256 string
}

// Backend is the pluggable object store. Implementations must be safe
// for concurrent use. Names are always 64-hex entry stems and shards
// two-hex prefixes; implementations reject anything else.
type Backend interface {
	// Get returns the entry's bytes. A missing entry returns an
	// error wrapping fs.ErrNotExist.
	Get(ctx context.Context, name string) ([]byte, error)

	// Put writes the entry, atomically replacing any existing bytes:
	// a concurrent reader observes the old content or the new, never
	// a mix. (The store rewrites entries whose envelope header went
	// stale, so replace semantics are required.)
	Put(ctx context.Context, name string, data []byte) error

	// PutIfAbsent writes the entry only if it does not exist,
	// returning whether this call stored it. Synced entries use it so
	// a peer can never clobber locally-computed bytes.
	PutIfAbsent(ctx context.Context, name string, data []byte) (bool, error)

	// Stat reports the entry without fetching its bytes. A missing
	// entry returns an error wrapping fs.ErrNotExist.
	Stat(ctx context.Context, name string) (Object, error)

	// List returns the shard's entries sorted by name. A shard with
	// no entries returns an empty list, not an error.
	List(ctx context.Context, shard string) ([]Object, error)

	// Generation returns a cheap opaque change token for the shard:
	// equal tokens mean the shard's entry set and bytes are unchanged
	// since the token was read (the converse need not hold). ok is
	// false when the backend cannot provide one, in which case
	// callers must rescan.
	Generation(ctx context.Context, shard string) (gen string, ok bool)

	// String describes the backend in -store spec form.
	String() string

	// Close releases backend resources.
	Close() error
}

// ValidName reports whether name is a well-formed 64-hex entry name.
func ValidName(name string) bool { return isHex(name, 64) }

// ValidShard reports whether shard is a well-formed two-hex shard name.
func ValidShard(shard string) bool { return isHex(shard, 2) }

// isHex reports whether s is exactly n lowercase-hex characters.
func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// errBadName is the shared rejection for malformed entry names.
func errBadName(name string) error {
	return fmt.Errorf("objstore: bad entry name %q: want 64 hex characters", name)
}

// errBadShard is the shared rejection for malformed shard names.
func errBadShard(shard string) error {
	return fmt.Errorf("objstore: bad shard name %q: want two hex characters", shard)
}

// TierStats is a point-in-time snapshot of a store's tier counters:
// how many operations the store served and, for cached remote
// backends, how the read traffic split between the local tier and the
// remote one.
type TierStats struct {
	Gets        int64 // Get calls observed
	Puts        int64 // Put + PutIfAbsent calls observed
	Lists       int64 // List calls observed
	LocalHits   int64 // Gets served by the local cache tier
	RemoteGets  int64 // Gets that reached the remote backend
	RemoteBytes int64 // bytes fetched from the remote backend
}

// counters is the shared atomic counter block behind a Metered
// backend; the cache tier increments the tier-split fields.
type counters struct {
	gets        atomic.Int64
	puts        atomic.Int64
	lists       atomic.Int64
	localHits   atomic.Int64
	remoteGets  atomic.Int64
	remoteBytes atomic.Int64
}

func (c *counters) snapshot() TierStats {
	return TierStats{
		Gets:        c.gets.Load(),
		Puts:        c.puts.Load(),
		Lists:       c.lists.Load(),
		LocalHits:   c.localHits.Load(),
		RemoteGets:  c.remoteGets.Load(),
		RemoteBytes: c.remoteBytes.Load(),
	}
}

// Metered wraps a Backend with operation counters. New returns one
// around every backend it builds, so callers can always surface tier
// stats in /metrics.
type Metered struct {
	Backend
	c *counters
}

// Meter wraps b with a fresh counter block. Wrapping an already-wired
// backend (objstore.New output) double-counts; use it on bare
// backends.
func Meter(b Backend) *Metered {
	m := &Metered{Backend: b, c: &counters{}}
	if ct, ok := b.(*cacheTier); ok {
		ct.c = m.c
	}
	return m
}

// Stats returns the current counter snapshot.
func (m *Metered) Stats() TierStats { return m.c.snapshot() }

func (m *Metered) Get(ctx context.Context, name string) ([]byte, error) {
	m.c.gets.Add(1)
	return m.Backend.Get(ctx, name)
}

func (m *Metered) Put(ctx context.Context, name string, data []byte) error {
	m.c.puts.Add(1)
	return m.Backend.Put(ctx, name, data)
}

func (m *Metered) PutIfAbsent(ctx context.Context, name string, data []byte) (bool, error) {
	m.c.puts.Add(1)
	return m.Backend.PutIfAbsent(ctx, name, data)
}

func (m *Metered) List(ctx context.Context, shard string) ([]Object, error) {
	m.c.lists.Add(1)
	return m.Backend.List(ctx, shard)
}

// config collects the optional knobs New accepts.
type config struct {
	endpoint   string
	region     string
	creds      s3Credentials
	cacheDir   string
	httpClient httpDoer
}

// Option configures New.
type Option func(*config)

// WithEndpoint overrides the s3 endpoint URL (MinIO / fake-server
// deployments). Empty keeps the AWS_ENDPOINT_URL environment value or
// the AWS default.
func WithEndpoint(url string) Option { return func(c *config) { c.endpoint = url } }

// WithRegion overrides the signing region.
func WithRegion(region string) Option { return func(c *config) { c.region = region } }

// WithCredentials overrides the s3 access-key pair taken from
// AWS_ACCESS_KEY_ID / AWS_SECRET_ACCESS_KEY.
func WithCredentials(accessKeyID, secretAccessKey string) Option {
	return func(c *config) {
		c.creds = s3Credentials{AccessKeyID: accessKeyID, SecretAccessKey: secretAccessKey}
	}
}

// WithLocalCache layers a read-through fs cache (rooted at dir) in
// front of a remote backend: remote misses fill the local tier, and
// repeat reads are served locally. Ignored for fs: and mem: specs,
// which are already local.
func WithLocalCache(dir string) Option { return func(c *config) { c.cacheDir = dir } }

// WithHTTPClient overrides the HTTP client the s3 backend uses
// (tests inject an httptest client).
func WithHTTPClient(d httpDoer) Option { return func(c *config) { c.httpClient = d } }

// New builds a backend from its -store spec:
//
//	fs:DIR                 sharded store on the local filesystem
//	mem:                   in-process map (tests, ephemeral workers)
//	s3://BUCKET[/PREFIX]   S3/MinIO bucket via the stdlib client
//
// The returned backend is always a *Metered, so callers can type-assert
// for TierStats without tracking what spec produced it.
func New(spec string, opts ...Option) (*Metered, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	var (
		b   Backend
		err error
	)
	switch {
	case strings.HasPrefix(spec, "fs:"):
		dir := strings.TrimPrefix(spec, "fs:")
		if dir == "" {
			return nil, fmt.Errorf("objstore: spec %q: fs: needs a directory", spec)
		}
		b = NewFS(dir)
	case spec == "mem:" || spec == "mem":
		b = NewMem()
	case strings.HasPrefix(spec, "s3://"):
		b, err = newS3FromSpec(spec, &cfg)
		if err != nil {
			return nil, err
		}
		if cfg.cacheDir != "" {
			b = &cacheTier{local: NewFS(cfg.cacheDir), remote: b}
		}
	default:
		return nil, fmt.Errorf("objstore: bad store spec %q: want fs:DIR, mem: or s3://bucket/prefix", spec)
	}
	return Meter(b), nil
}

// envOr returns the environment variable's value, or def when unset.
func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}
