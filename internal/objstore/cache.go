package objstore

import (
	"context"
	"errors"
	"io/fs"
)

// cacheTier layers a local fs store in front of a remote backend as a
// read-through cache: reads try the local tier first and fill it on a
// remote hit; writes go to the remote (the source of truth) and fill
// the local tier on the way back. List and Generation always consult
// the remote, so manifests and syncs describe the bucket, not the
// cache — the local tier is an invisible latency shortcut, maintained
// under the invariant local ⊆ remote.
type cacheTier struct {
	local  *FS
	remote Backend
	c      *counters // shared with the owning Metered; nil in bare tests
}

func (t *cacheTier) String() string { return t.remote.String() + "+cache:" + t.local.Root() }

func (t *cacheTier) Get(ctx context.Context, name string) ([]byte, error) {
	if data, err := t.local.Get(ctx, name); err == nil {
		if t.c != nil {
			t.c.localHits.Add(1)
		}
		return data, nil
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, err
	}
	data, err := t.remote.Get(ctx, name)
	if err != nil {
		return nil, err
	}
	if t.c != nil {
		t.c.remoteGets.Add(1)
		t.c.remoteBytes.Add(int64(len(data)))
	}
	// Fill failures are invisible: the caller has the bytes, and the
	// next read just pays the remote again.
	t.local.Put(ctx, name, data)
	return data, nil
}

func (t *cacheTier) Put(ctx context.Context, name string, data []byte) error {
	if err := t.remote.Put(ctx, name, data); err != nil {
		return err
	}
	t.local.Put(ctx, name, data)
	return nil
}

func (t *cacheTier) PutIfAbsent(ctx context.Context, name string, data []byte) (bool, error) {
	stored, err := t.remote.PutIfAbsent(ctx, name, data)
	if err != nil {
		return false, err
	}
	if stored {
		t.local.Put(ctx, name, data)
	}
	return stored, nil
}

// Stat tries the local tier first: local ⊆ remote, so a local entry
// proves remote existence (sizes match because fills copy bytes
// verbatim). ETag-dependent callers pay the remote HEAD.
func (t *cacheTier) Stat(ctx context.Context, name string) (Object, error) {
	if obj, err := t.local.Stat(ctx, name); err == nil {
		return obj, nil
	} else if !errors.Is(err, fs.ErrNotExist) {
		return Object{}, err
	}
	return t.remote.Stat(ctx, name)
}

func (t *cacheTier) List(ctx context.Context, shard string) ([]Object, error) {
	return t.remote.List(ctx, shard)
}

func (t *cacheTier) Generation(ctx context.Context, shard string) (string, bool) {
	return t.remote.Generation(ctx, shard)
}

func (t *cacheTier) Close() error {
	lerr := t.local.Close()
	rerr := t.remote.Close()
	if rerr != nil {
		return rerr
	}
	return lerr
}
