package sigv4

import (
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"
)

// signTime is the fixed signing instant every test uses; the package
// never reads a clock, so tests pin it.
var signTime = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

var testCreds = Credentials{
	AccessKeyID:     "AKIDEXAMPLE",
	SecretAccessKey: "wJalrXUtnFEMI/K7MDENG+bPxRfiCYEXAMPLEKEY",
}

// newRequest builds an unsigned request the way the s3 client does.
func newRequest(method, host, path, rawQuery string) *http.Request {
	u := &url.URL{Scheme: "http", Host: host, Path: path, RawQuery: rawQuery}
	return &http.Request{Method: method, URL: u, Host: host, Header: http.Header{}}
}

// TestKnownAnswer pins the full signing pipeline: the canonical
// request bytes, the credential scope and the final signature for one
// fixed GET. Any change to canonicalization or key derivation shows up
// here first.
func TestKnownAnswer(t *testing.T) {
	const entry = "abcd000000000000000000000000000000000000000000000000000000000000"
	req := newRequest("GET", "s3.example.test:9000", "/simstore/grid/ab/"+entry+".json", "")
	if err := SignRequest(req, EmptyPayloadHash, testCreds, "us-east-1", "s3", signTime); err != nil {
		t.Fatal(err)
	}

	wantCanonical := strings.Join([]string{
		"GET",
		"/simstore/grid/ab/" + entry + ".json",
		"",
		"host:s3.example.test:9000",
		"x-amz-content-sha256:" + EmptyPayloadHash,
		"x-amz-date:20260808T120000Z",
		"",
		"host;x-amz-content-sha256;x-amz-date",
		EmptyPayloadHash,
	}, "\n")
	canonical, err := CanonicalRequest(req, EmptyPayloadHash)
	if err != nil {
		t.Fatal(err)
	}
	if canonical != wantCanonical {
		t.Errorf("canonical request:\n%q\nwant:\n%q", canonical, wantCanonical)
	}

	wantAuth := "AWS4-HMAC-SHA256 Credential=AKIDEXAMPLE/20260808/us-east-1/s3/aws4_request, " +
		"SignedHeaders=host;x-amz-content-sha256;x-amz-date, " +
		"Signature=b2f9898776b466fa03cbaaab8ee6c08af021329fa749e15a4657d4716fb4f14b"
	if got := req.Header.Get("Authorization"); got != wantAuth {
		t.Errorf("Authorization:\n%s\nwant:\n%s", got, wantAuth)
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	lookup := func(akid string) (string, bool) {
		if akid == testCreds.AccessKeyID {
			return testCreds.SecretAccessKey, true
		}
		return "", false
	}
	cases := []struct {
		name        string
		method      string
		path        string
		rawQuery    string
		payloadHash string
	}{
		{"get", "GET", "/bucket/key.json", "", EmptyPayloadHash},
		{"put", "PUT", "/bucket/ab/deadbeef.json", "", PayloadHash([]byte("payload"))},
		{"list", "GET", "/bucket", "list-type=2&prefix=grid%2Fab%2F", EmptyPayloadHash},
		{"continuation", "GET", "/bucket", "continuation-token=a%20b&list-type=2", EmptyPayloadHash},
		{"root", "HEAD", "/", "", EmptyPayloadHash},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := newRequest(tc.method, "127.0.0.1:9000", tc.path, tc.rawQuery)
			if err := SignRequest(req, tc.payloadHash, testCreds, "us-east-1", "s3", signTime); err != nil {
				t.Fatal(err)
			}
			if err := Verify(req, lookup, "us-east-1", "s3"); err != nil {
				t.Fatalf("Verify rejected a freshly signed request: %v", err)
			}
		})
	}
}

// TestVerifyRejectsTampering flips each signed input after signing and
// checks Verify notices.
func TestVerifyRejectsTampering(t *testing.T) {
	lookup := func(string) (string, bool) { return testCreds.SecretAccessKey, true }
	sign := func() *http.Request {
		req := newRequest("GET", "127.0.0.1:9000", "/bucket/key.json", "list-type=2")
		if err := SignRequest(req, EmptyPayloadHash, testCreds, "us-east-1", "s3", signTime); err != nil {
			t.Fatal(err)
		}
		return req
	}
	tamper := map[string]func(*http.Request){
		"path":    func(r *http.Request) { r.URL.Path = "/bucket/other.json" },
		"query":   func(r *http.Request) { r.URL.RawQuery = "list-type=2&extra=1" },
		"payload": func(r *http.Request) { r.Header.Set("x-amz-content-sha256", PayloadHash([]byte("x"))) },
		"date":    func(r *http.Request) { r.Header.Set("x-amz-date", "20260808T120001Z") },
		"host":    func(r *http.Request) { r.Host = "evil.example:9000" },
		"method":  func(r *http.Request) { r.Method = "PUT" },
	}
	for name, mutate := range tamper {
		t.Run(name, func(t *testing.T) {
			req := sign()
			mutate(req)
			if err := Verify(req, lookup, "us-east-1", "s3"); err == nil {
				t.Fatal("Verify accepted a tampered request")
			}
		})
	}
	t.Run("wrong-secret", func(t *testing.T) {
		req := sign()
		bad := func(string) (string, bool) { return "other-secret", true }
		if err := Verify(req, bad, "us-east-1", "s3"); err == nil {
			t.Fatal("Verify accepted a signature made with another secret")
		}
	})
	t.Run("unknown-akid", func(t *testing.T) {
		req := sign()
		none := func(string) (string, bool) { return "", false }
		if err := Verify(req, none, "us-east-1", "s3"); err == nil {
			t.Fatal("Verify accepted an unknown access key")
		}
	})
	t.Run("wrong-region", func(t *testing.T) {
		req := sign()
		if err := Verify(req, lookup, "eu-west-1", "s3"); err == nil {
			t.Fatal("Verify accepted a signature scoped to another region")
		}
	})
}

func TestCanonicalRequestRejectsControlCharacters(t *testing.T) {
	req := newRequest("GET", "127.0.0.1:9000", "/bucket/key.json", "")
	req.Header.Set("x-amz-date", "2026\r\nX-Injected: yes")
	req.Header.Set("x-amz-content-sha256", EmptyPayloadHash)
	if _, err := CanonicalRequest(req, EmptyPayloadHash); err == nil {
		t.Fatal("CanonicalRequest accepted a header value with CRLF")
	}
}

func TestCanonicalRequestRejectsBadQuery(t *testing.T) {
	for _, q := range []string{"a=%", "a=%zz", "%2", "key=%G1"} {
		req := newRequest("GET", "127.0.0.1:9000", "/bucket", q)
		if _, err := CanonicalRequest(req, EmptyPayloadHash); err == nil {
			t.Errorf("CanonicalRequest accepted malformed query %q", q)
		}
	}
}

func TestEncodePath(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "/"},
		{"/", "/"},
		{"/bucket/key.json", "/bucket/key.json"},
		{"/bucket/a b", "/bucket/a%20b"},
		{"/bucket/a+b", "/bucket/a%2Bb"},
		{"/bucket/é", "/bucket/%C3%A9"},
		{"/bucket/~tilde_-.ok", "/bucket/~tilde_-.ok"},
		{"/bucket/per%cent", "/bucket/per%25cent"},
	}
	for _, tc := range cases {
		if got := EncodePath(tc.in); got != tc.want {
			t.Errorf("EncodePath(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// FuzzCanonicalRequest checks canonical-request construction never
// panics, is deterministic, and — whenever the request is signable at
// all — survives a full sign/verify round trip.
func FuzzCanonicalRequest(f *testing.F) {
	f.Add("GET", "/bucket/key.json", "", "host.example:9000")
	f.Add("PUT", "/simstore/grid/ab/cd.json", "", "127.0.0.1:1")
	f.Add("GET", "/bucket", "list-type=2&prefix=grid%2Fab%2F", "minio.local:9000")
	f.Add("GET", "/b", "continuation-token=x%20y&list-type=2", "h")
	f.Add("HEAD", "/", "a=%", "ctrl\r\nhost")
	f.Add("GET", "/sp ace/\x00", "=&==&k=v", "host")
	f.Fuzz(func(t *testing.T, method, path, rawQuery, host string) {
		req := newRequest(method, host, path, rawQuery)
		c1, err := CanonicalRequest(req, EmptyPayloadHash)
		if err != nil {
			return // unsignable input; rejecting is the contract
		}
		c2, err := CanonicalRequest(req, EmptyPayloadHash)
		if err != nil || c1 != c2 {
			t.Fatalf("canonicalization is not deterministic: %v", err)
		}
		if strings.Count(c1, "\n") != 8 {
			t.Fatalf("canonical request has %d newlines, want 8:\n%q", strings.Count(c1, "\n"), c1)
		}
		// strings.Fields-style collapse must leave no raw CR/LF in any line.
		if strings.ContainsAny(c1, "\r") {
			t.Fatalf("canonical request contains CR:\n%q", c1)
		}
		if err := SignRequest(req, EmptyPayloadHash, testCreds, "us-east-1", "s3", signTime); err != nil {
			return
		}
		lookup := func(string) (string, bool) { return testCreds.SecretAccessKey, true }
		if err := Verify(req, lookup, "us-east-1", "s3"); err != nil {
			t.Fatalf("verify rejected a request this package signed: %v", err)
		}
	})
}

// FuzzS3Key checks the path/key escaping used for object keys: the
// encoded form uses only URL-safe bytes, decodes back to the input,
// and query-component encoding never leaks a raw slash.
func FuzzS3Key(f *testing.F) {
	f.Add("grid/ab/deadbeef.json")
	f.Add("pre fix/with space")
	f.Add("per%cent/and+plus")
	f.Add("\x00\xff\r\n")
	f.Add("unicode/é世界")
	f.Add("~tilde_-.ok/seg")
	f.Fuzz(func(t *testing.T, key string) {
		enc := uriEncode(key, true)
		for i := 0; i < len(enc); i++ {
			c := enc[i]
			ok := (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
				c == '-' || c == '.' || c == '_' || c == '~' || c == '/' || c == '%'
			if !ok {
				t.Fatalf("uriEncode(%q) leaked unsafe byte %q in %q", key, c, enc)
			}
		}
		dec, err := unescape(enc)
		if err != nil {
			t.Fatalf("unescape(uriEncode(%q)) failed: %v", key, err)
		}
		if dec != key {
			t.Fatalf("escape round trip: %q -> %q -> %q", key, enc, dec)
		}
		if q := uriEncode(key, false); strings.Contains(q, "/") {
			t.Fatalf("query-component encoding of %q leaked a raw slash: %q", key, q)
		}
	})
}
