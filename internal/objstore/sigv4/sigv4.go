// Package sigv4 implements the subset of AWS Signature Version 4 that
// the objstore s3 client and the in-process fake server need: canonical
// request construction, request signing with header-based authorization
// (no presigned URLs, no chunked uploads), and server-side verification.
//
// Both sides share one canonicalization, so a request the client signs
// is verifiable by the fake byte-for-byte — which is what lets CI run
// the full s3 path with no external service. The package takes the
// signing time as an argument everywhere and never reads a clock.
package sigv4

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// Algorithm is the signing algorithm name carried in the Authorization
// header.
const Algorithm = "AWS4-HMAC-SHA256"

// TimeFormat is the x-amz-date timestamp layout.
const TimeFormat = "20060102T150405Z"

// EmptyPayloadHash is the SHA-256 of a zero-byte payload, used by GET,
// HEAD and LIST requests.
const EmptyPayloadHash = "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"

// Credentials is one static access-key pair, the only credential form
// MinIO-style deployments need.
type Credentials struct {
	AccessKeyID     string
	SecretAccessKey string
}

// SignedHeaders is the fixed header set this client signs. Keeping the
// set fixed (rather than signing whatever happens to be present) makes
// the canonical request a pure function of method, URL, payload hash
// and time — which is what the fuzz target exercises.
var SignedHeaders = []string{"host", "x-amz-content-sha256", "x-amz-date"}

// uriEncode percent-encodes s per the SigV4 rules: unreserved
// characters (A-Za-z0-9, '-', '.', '_', '~') pass through, everything
// else becomes uppercase %XX. When keepSlash is true, '/' passes
// through too (path encoding); query components encode it.
func uriEncode(s string, keepSlash bool) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z', c >= 'a' && c <= 'z', c >= '0' && c <= '9',
			c == '-', c == '.', c == '_', c == '~':
			b.WriteByte(c)
		case c == '/' && keepSlash:
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String()
}

// EncodePath encodes an already-decoded URL path for the canonical
// request (and for the wire: the client sends exactly what it signs).
// The path must be absolute; segments are encoded individually with
// '/' preserved.
func EncodePath(path string) string {
	if path == "" {
		return "/"
	}
	return uriEncode(path, true)
}

// canonicalQuery builds the canonical query string from raw key/value
// pairs: both sides percent-encoded, sorted by encoded key then encoded
// value, joined with '&'.
func canonicalQuery(params [][2]string) string {
	enc := make([]string, 0, len(params))
	for _, kv := range params {
		enc = append(enc, uriEncode(kv[0], false)+"="+uriEncode(kv[1], false))
	}
	sort.Strings(enc)
	return strings.Join(enc, "&")
}

// parseQuery splits a raw query string into decoded key/value pairs.
// It rejects components that do not percent-decode: a malformed query
// must fail signing rather than sign something other than what the
// server will parse.
func parseQuery(rawQuery string) ([][2]string, error) {
	if rawQuery == "" {
		return nil, nil
	}
	var params [][2]string
	for _, part := range strings.Split(rawQuery, "&") {
		if part == "" {
			continue
		}
		key, value, _ := strings.Cut(part, "=")
		k, err := unescape(key)
		if err != nil {
			return nil, fmt.Errorf("sigv4: query key %q: %w", key, err)
		}
		v, err := unescape(value)
		if err != nil {
			return nil, fmt.Errorf("sigv4: query value %q: %w", value, err)
		}
		params = append(params, [2]string{k, v})
	}
	return params, nil
}

// unescape percent-decodes s ('+' is literal, per S3 query rules).
func unescape(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			b.WriteByte(s[i])
			continue
		}
		if i+2 >= len(s) {
			return "", fmt.Errorf("truncated percent escape")
		}
		hi, lo := unhex(s[i+1]), unhex(s[i+2])
		if hi < 0 || lo < 0 {
			return "", fmt.Errorf("bad percent escape %q", s[i:i+3])
		}
		b.WriteByte(byte(hi<<4 | lo))
		i += 2
	}
	return b.String(), nil
}

func unhex(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

// headerValue returns the canonical form of one signed header's value:
// trimmed, with runs of spaces collapsed. Control characters (CR, LF
// and friends) are rejected outright — a header that needs them cannot
// be signed unambiguously.
func headerValue(v string) (string, error) {
	for i := 0; i < len(v); i++ {
		if v[i] < 0x20 || v[i] == 0x7f {
			return "", fmt.Errorf("sigv4: header value %q contains control character", v)
		}
	}
	fields := strings.Fields(v)
	return strings.Join(fields, " "), nil
}

// CanonicalRequest builds the SigV4 canonical request for req with the
// given payload hash. The request's Host and the SignedHeaders set must
// be populated. The decoded URL path is re-encoded here, so the caller
// signs exactly the bytes EncodePath would put on the wire.
func CanonicalRequest(req *http.Request, payloadHash string) (string, error) {
	params, err := parseQuery(req.URL.RawQuery)
	if err != nil {
		return "", err
	}
	// The method is the only component embedded without encoding, so a
	// control character in it would make two different requests share
	// one canonical form. Restrict it to the HTTP token alphabet.
	for i := 0; i < len(req.Method); i++ {
		c := req.Method[i]
		if c <= 0x20 || c >= 0x7f {
			return "", fmt.Errorf("sigv4: method %q contains non-token byte", req.Method)
		}
	}
	var b strings.Builder
	b.WriteString(req.Method)
	b.WriteByte('\n')
	b.WriteString(EncodePath(req.URL.Path))
	b.WriteByte('\n')
	b.WriteString(canonicalQuery(params))
	b.WriteByte('\n')
	for _, name := range SignedHeaders {
		var raw string
		if name == "host" {
			raw = req.Host
			if raw == "" {
				raw = req.URL.Host
			}
		} else {
			raw = req.Header.Get(name)
		}
		v, err := headerValue(raw)
		if err != nil {
			return "", err
		}
		b.WriteString(name)
		b.WriteByte(':')
		b.WriteString(v)
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	b.WriteString(strings.Join(SignedHeaders, ";"))
	b.WriteByte('\n')
	b.WriteString(payloadHash)
	return b.String(), nil
}

// scope returns the credential scope for the signing date.
func scope(t time.Time, region, service string) string {
	return t.UTC().Format("20060102") + "/" + region + "/" + service + "/aws4_request"
}

// signingKey derives the per-day HMAC key chain.
func signingKey(secret string, t time.Time, region, service string) []byte {
	k := hmacSHA256([]byte("AWS4"+secret), t.UTC().Format("20060102"))
	k = hmacSHA256(k, region)
	k = hmacSHA256(k, service)
	return hmacSHA256(k, "aws4_request")
}

func hmacSHA256(key []byte, data string) []byte {
	h := hmac.New(sha256.New, key)
	h.Write([]byte(data))
	return h.Sum(nil)
}

// signature computes the final hex signature over the canonical request.
func signature(canonical string, t time.Time, creds Credentials, region, service string) string {
	crHash := sha256.Sum256([]byte(canonical))
	sts := Algorithm + "\n" +
		t.UTC().Format(TimeFormat) + "\n" +
		scope(t, region, service) + "\n" +
		hex.EncodeToString(crHash[:])
	sig := hmacSHA256(signingKey(creds.SecretAccessKey, t, region, service), sts)
	return hex.EncodeToString(sig)
}

// SignRequest signs req in place for the given signing time: it sets
// x-amz-date and x-amz-content-sha256, builds the canonical request,
// and attaches the Authorization header. The caller supplies the time
// so signing stays deterministic and testable.
func SignRequest(req *http.Request, payloadHash string, creds Credentials, region, service string, t time.Time) error {
	req.Header.Set("x-amz-date", t.UTC().Format(TimeFormat))
	req.Header.Set("x-amz-content-sha256", payloadHash)
	canonical, err := CanonicalRequest(req, payloadHash)
	if err != nil {
		return err
	}
	sig := signature(canonical, t, creds, region, service)
	req.Header.Set("Authorization", fmt.Sprintf(
		"%s Credential=%s/%s, SignedHeaders=%s, Signature=%s",
		Algorithm, creds.AccessKeyID, scope(t, region, service),
		strings.Join(SignedHeaders, ";"), sig))
	return nil
}

// Verify checks an incoming request's SigV4 Authorization header
// against the secret the lookup function returns for its access key ID.
// It recomputes the canonical request from the request itself (using
// the x-amz-content-sha256 the client attached; the fake server has
// already checked the body hashes to it) and compares signatures in
// constant time. The signing time is taken from x-amz-date, so
// verification needs no clock.
func Verify(req *http.Request, lookup func(accessKeyID string) (secret string, ok bool), region, service string) error {
	auth := req.Header.Get("Authorization")
	rest, found := strings.CutPrefix(auth, Algorithm+" ")
	if !found {
		return fmt.Errorf("sigv4: authorization header is not %s", Algorithm)
	}
	fields := map[string]string{}
	for _, part := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return fmt.Errorf("sigv4: malformed authorization component %q", part)
		}
		fields[k] = v
	}
	cred := fields["Credential"]
	credParts := strings.SplitN(cred, "/", 2)
	if len(credParts) != 2 {
		return fmt.Errorf("sigv4: malformed credential %q", cred)
	}
	akid := credParts[0]
	secret, ok := lookup(akid)
	if !ok {
		return fmt.Errorf("sigv4: unknown access key %q", akid)
	}
	t, err := time.Parse(TimeFormat, req.Header.Get("x-amz-date"))
	if err != nil {
		return fmt.Errorf("sigv4: bad x-amz-date: %w", err)
	}
	if want := akid + "/" + scope(t, region, service); cred != want {
		return fmt.Errorf("sigv4: credential scope %q, want %q", cred, want)
	}
	if got, want := fields["SignedHeaders"], strings.Join(SignedHeaders, ";"); got != want {
		return fmt.Errorf("sigv4: signed headers %q, want %q", got, want)
	}
	payloadHash := req.Header.Get("x-amz-content-sha256")
	canonical, err := CanonicalRequest(req, payloadHash)
	if err != nil {
		return err
	}
	want := signature(canonical, t, Credentials{AccessKeyID: akid, SecretAccessKey: secret}, region, service)
	if !hmac.Equal([]byte(want), []byte(fields["Signature"])) {
		return fmt.Errorf("sigv4: signature mismatch")
	}
	return nil
}

// PayloadHash returns the hex SHA-256 of data, the x-amz-content-sha256
// value for a request carrying it.
func PayloadHash(data []byte) string {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}
