package objstore_test

// The backend conformance suite: every Backend implementation — fs,
// mem, s3 against the in-process fake, and s3 behind the read-through
// cache tier — must satisfy the same contract, because sim.Store and
// the /v1/sync protocol are written against the interface, not any
// one implementation. Each subtest runs against a fresh backend of
// each flavor.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/objstore"
	"repro/internal/objstore/s3test"
	"repro/internal/objstore/sigv4"
	"repro/internal/sim"
)

var bg = context.Background()

// flavor builds one backend implementation for the conformance table.
// The cleanup for the s3 flavors closes the httptest server.
type flavor struct {
	name  string
	build func(t *testing.T) objstore.Backend
}

func flavors() []flavor {
	creds := sigv4.Credentials{AccessKeyID: "AKIDCONFORM", SecretAccessKey: "conform-secret"}
	newFake := func(t *testing.T) *httptest.Server {
		t.Helper()
		ts := httptest.NewServer(s3test.New("conformance", creds, "us-east-1"))
		t.Cleanup(ts.Close)
		return ts
	}
	return []flavor{
		{"fs", func(t *testing.T) objstore.Backend {
			b, err := objstore.New("fs:" + t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
		{"mem", func(t *testing.T) objstore.Backend {
			b, err := objstore.New("mem:")
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
		{"s3", func(t *testing.T) objstore.Backend {
			ts := newFake(t)
			b, err := objstore.New("s3://conformance/grid",
				objstore.WithEndpoint(ts.URL),
				objstore.WithCredentials(creds.AccessKeyID, creds.SecretAccessKey),
				objstore.WithRegion("us-east-1"))
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
		{"s3+cache", func(t *testing.T) objstore.Backend {
			ts := newFake(t)
			b, err := objstore.New("s3://conformance/grid",
				objstore.WithEndpoint(ts.URL),
				objstore.WithCredentials(creds.AccessKeyID, creds.SecretAccessKey),
				objstore.WithRegion("us-east-1"),
				objstore.WithLocalCache(t.TempDir()))
			if err != nil {
				t.Fatal(err)
			}
			return b
		}},
	}
}

// forEachFlavor runs fn as a subtest against a fresh backend of every
// flavor.
func forEachFlavor(t *testing.T, fn func(t *testing.T, b objstore.Backend)) {
	for _, f := range flavors() {
		t.Run(f.name, func(t *testing.T) {
			b := f.build(t)
			defer b.Close()
			fn(t, b)
		})
	}
}

// testName derives a deterministic 64-hex entry name from a seed.
func testName(seed string) string {
	d := sha256.Sum256([]byte(seed))
	return hex.EncodeToString(d[:])
}

func TestConformanceRoundTrip(t *testing.T) {
	forEachFlavor(t, func(t *testing.T, b objstore.Backend) {
		name := testName("round-trip")
		payload := []byte("hello, backend")

		if _, err := b.Get(bg, name); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("Get(absent) = %v, want fs.ErrNotExist", err)
		}
		if _, err := b.Stat(bg, name); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("Stat(absent) = %v, want fs.ErrNotExist", err)
		}

		stored, err := b.PutIfAbsent(bg, name, payload)
		if err != nil || !stored {
			t.Fatalf("PutIfAbsent = (%v, %v), want (true, nil)", stored, err)
		}
		got, err := b.Get(bg, name)
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("Get = (%q, %v), want stored payload", got, err)
		}
		obj, err := b.Stat(bg, name)
		if err != nil {
			t.Fatalf("Stat: %v", err)
		}
		if obj.Name != name || obj.Size != int64(len(payload)) {
			t.Fatalf("Stat = %+v, want name %s size %d", obj, name, len(payload))
		}
	})
}

func TestConformancePutReplacesAndPutIfAbsentDoesNot(t *testing.T) {
	forEachFlavor(t, func(t *testing.T, b objstore.Backend) {
		name := testName("replace")
		if _, err := b.PutIfAbsent(bg, name, []byte("first")); err != nil {
			t.Fatal(err)
		}

		// A losing PutIfAbsent must not clobber.
		stored, err := b.PutIfAbsent(bg, name, []byte("second"))
		if err != nil {
			t.Fatal(err)
		}
		if stored {
			t.Fatal("PutIfAbsent over an existing entry reported stored=true")
		}
		if got, _ := b.Get(bg, name); string(got) != "first" {
			t.Fatalf("entry = %q after losing PutIfAbsent, want %q", got, "first")
		}

		// Put must replace.
		if err := b.Put(bg, name, []byte("third")); err != nil {
			t.Fatal(err)
		}
		if got, _ := b.Get(bg, name); string(got) != "third" {
			t.Fatalf("entry = %q after Put, want %q", got, "third")
		}
	})
}

func TestConformancePutIfAbsentRace(t *testing.T) {
	forEachFlavor(t, func(t *testing.T, b objstore.Backend) {
		name := testName("race")
		const racers = 8
		payloads := make([][]byte, racers)
		wins := make([]bool, racers)
		errs := make([]error, racers)
		var wg sync.WaitGroup
		for i := range racers {
			payloads[i] = []byte(fmt.Sprintf("racer %d payload", i))
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				wins[i], errs[i] = b.PutIfAbsent(bg, name, payloads[i])
			}(i)
		}
		wg.Wait()

		winners := 0
		var winning []byte
		for i := range racers {
			if errs[i] != nil {
				t.Fatalf("racer %d: %v", i, errs[i])
			}
			if wins[i] {
				winners++
				winning = payloads[i]
			}
		}
		if winners != 1 {
			t.Fatalf("%d racers reported stored=true, want exactly 1", winners)
		}
		got, err := b.Get(bg, name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, winning) {
			t.Fatalf("entry holds %q, want the winner's payload %q", got, winning)
		}
	})
}

// TestConformanceAtomicVisibility hammers one entry with replacing
// writes of two full payloads while readers poll: every read must see
// one payload in full, never a prefix, suffix or splice.
func TestConformanceAtomicVisibility(t *testing.T) {
	forEachFlavor(t, func(t *testing.T, b objstore.Backend) {
		name := testName("atomic")
		a := bytes.Repeat([]byte("A"), 4096)
		z := bytes.Repeat([]byte("Z"), 4096)
		if err := b.Put(bg, name, a); err != nil {
			t.Fatal(err)
		}

		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				p := a
				if i%2 == 1 {
					p = z
				}
				if err := b.Put(bg, name, p); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		for range 50 {
			got, err := b.Get(bg, name)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, a) && !bytes.Equal(got, z) {
				t.Fatalf("read a torn entry: %d bytes, first %q last %q",
					len(got), got[:1], got[len(got)-1:])
			}
		}
		close(done)
		wg.Wait()
	})
}

func TestConformanceListByShard(t *testing.T) {
	forEachFlavor(t, func(t *testing.T, b objstore.Backend) {
		// Find seeds landing in two distinct shards, several per shard.
		byShard := map[string][]string{}
		for i := 0; len(byShard) < 2 || len(byShard[firstShard(byShard)]) < 3; i++ {
			n := testName(fmt.Sprintf("list-%d", i))
			byShard[n[:2]] = append(byShard[n[:2]], n)
		}
		for shard, names := range byShard {
			for _, n := range names {
				if err := b.Put(bg, n, []byte("entry "+n)); err != nil {
					t.Fatal(err)
				}
			}
			objs, err := b.List(bg, shard)
			if err != nil {
				t.Fatal(err)
			}
			want := append([]string(nil), names...)
			sort.Strings(want)
			if len(objs) != len(want) {
				t.Fatalf("shard %s: List returned %d entries, want %d", shard, len(objs), len(want))
			}
			for i, o := range objs {
				if o.Name != want[i] {
					t.Fatalf("shard %s: List[%d] = %s, want %s (sorted order)", shard, i, o.Name, want[i])
				}
				if o.SHA256 != "" {
					sum := sha256.Sum256([]byte("entry " + o.Name))
					if o.SHA256 != hex.EncodeToString(sum[:]) {
						t.Fatalf("shard %s: entry %s digest hint is wrong", shard, o.Name)
					}
				}
			}
		}

		// A shard with no entries lists empty without error.
		empty := ""
		for i := 0; i < 256; i++ {
			s := fmt.Sprintf("%02x", i)
			if _, ok := byShard[s]; !ok {
				empty = s
				break
			}
		}
		objs, err := b.List(bg, empty)
		if err != nil || len(objs) != 0 {
			t.Fatalf("List(empty shard %s) = (%v, %v), want ([], nil)", empty, objs, err)
		}
	})
}

// firstShard returns a shard key that already has entries (any one —
// used only to grow the densest shard deterministically enough).
func firstShard(m map[string][]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	best := keys[0]
	for _, k := range keys {
		if len(m[k]) > len(m[best]) {
			best = k
		}
	}
	return best
}

func TestConformanceRejectsBadNames(t *testing.T) {
	forEachFlavor(t, func(t *testing.T, b objstore.Backend) {
		bad := []string{"", "zz", "../../etc/passwd", testName("x")[:63], testName("x") + "0",
			"ABCDEF0123456789ABCDEF0123456789ABCDEF0123456789ABCDEF0123456789"}
		for _, name := range bad {
			if _, err := b.Get(bg, name); err == nil {
				t.Errorf("Get(%q) accepted a malformed name", name)
			}
			if err := b.Put(bg, name, []byte("x")); err == nil {
				t.Errorf("Put(%q) accepted a malformed name", name)
			}
			if _, err := b.PutIfAbsent(bg, name, []byte("x")); err == nil {
				t.Errorf("PutIfAbsent(%q) accepted a malformed name", name)
			}
			if _, err := b.Stat(bg, name); err == nil {
				t.Errorf("Stat(%q) accepted a malformed name", name)
			}
		}
		for _, shard := range []string{"", "z", "zzz", "GG", "0", "../"} {
			if _, err := b.List(bg, shard); err == nil {
				t.Errorf("List(%q) accepted a malformed shard", shard)
			}
		}
	})
}

// TestConformanceGeneration checks the token contract: when a backend
// reports a generation, a write to the shard must change it (equal
// tokens promise an unchanged shard).
func TestConformanceGeneration(t *testing.T) {
	forEachFlavor(t, func(t *testing.T, b objstore.Backend) {
		name := testName("generation")
		shard := name[:2]
		gen1, ok1 := b.Generation(bg, shard)
		if !ok1 {
			t.Skip("backend does not provide generations; callers rescan")
		}
		// Filesystem generations are directory mtimes; leave room for
		// coarse timestamp granularity before the write.
		time.Sleep(20 * time.Millisecond)
		if err := b.Put(bg, name, []byte("v1")); err != nil {
			t.Fatal(err)
		}
		gen2, ok2 := b.Generation(bg, shard)
		if !ok2 {
			t.Fatal("backend stopped providing generations after a write")
		}
		if gen1 == gen2 {
			t.Fatalf("generation %q unchanged across a write to shard %s", gen1, shard)
		}
		gen3, _ := b.Generation(bg, shard)
		if gen2 != gen3 {
			t.Fatalf("generation changed with no write: %q then %q", gen2, gen3)
		}
	})
}

// TestConformanceEnvelopeRoundTrip drives the full sim.Store envelope
// layer over every backend: the same results must produce
// byte-identical entries and equal Merkle manifest roots no matter
// where they are stored.
func TestConformanceEnvelopeRoundTrip(t *testing.T) {
	reqs := []sim.Request{}
	for _, entries := range []int{16, 32, 64} {
		cfg := core.DefaultConfig()
		cfg.Tracker.Entries = entries
		reqs = append(reqs, sim.Request{Bench: "crafty", Config: cfg, Warmup: 10, Measure: 10})
	}

	type stored struct {
		root    string
		entries map[string][]byte
	}
	results := map[string]stored{}
	for _, f := range flavors() {
		t.Run(f.name, func(t *testing.T) {
			b := f.build(t)
			defer b.Close()
			s := sim.NewStoreWith(b)
			for i, req := range reqs {
				key := sim.Key(req)
				res := &sim.Result{Bench: req.Bench, StaticUops: i + 1}
				if err := s.Put(bg, key, res); err != nil {
					t.Fatal(err)
				}
				got, ok := s.Load(bg, key)
				if !ok || got.Bench != req.Bench || got.StaticUops != i+1 {
					t.Fatalf("Load(%s) = (%+v, %v) after Put", key, got, ok)
				}
			}
			m, err := s.Manifest(bg)
			if err != nil {
				t.Fatal(err)
			}
			entries := map[string][]byte{}
			for i := 0; i < sim.ShardCount; i++ {
				shard := fmt.Sprintf("%02x", i)
				les, err := s.ShardList(bg, shard)
				if err != nil {
					t.Fatal(err)
				}
				for _, le := range les {
					data, err := s.ReadRaw(bg, le.Name)
					if err != nil {
						t.Fatal(err)
					}
					entries[le.Name] = data
				}
			}
			results[f.name] = stored{root: m.Root, entries: entries}
		})
	}

	base := results["fs"]
	if base.root == "" || len(base.entries) != len(reqs) {
		t.Fatalf("fs flavor stored %d entries with root %q", len(base.entries), base.root)
	}
	for name, got := range results {
		if got.root != base.root {
			t.Errorf("%s manifest root %s differs from fs root %s", name, got.root, base.root)
		}
		for entry, data := range base.entries {
			if !bytes.Equal(got.entries[entry], data) {
				t.Errorf("%s entry %s is not byte-identical to the fs entry", name, entry)
			}
		}
	}
}
