// Package s3test is an in-process S3-compatible fake implementing the
// REST subset the objstore s3 client speaks: SigV4-verified path-style
// GET / PUT / HEAD object, conditional writes (If-None-Match: *) and
// ListObjectsV2 with continuation tokens. CI and unit tests mount it in
// an httptest.Server (or via cmd/fakes3 on a real port) so the full s3
// path runs with no external service.
//
// The fake is deliberately strict: it verifies every request's
// signature and payload hash, answers unknown buckets and keys with the
// S3 XML error shapes, and never reads a clock — responses are a pure
// function of the stored state and the request.
package s3test

import (
	"bytes"
	"crypto/md5"
	"encoding/hex"
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/objstore/sigv4"
)

// maxBody bounds one uploaded object.
const maxBody = 64 << 20

// Server is the fake's state: one bucket of keyed blobs plus the
// credential set requests must sign with. Safe for concurrent use.
type Server struct {
	bucket string
	region string
	creds  map[string]string // access key ID → secret

	// MaxKeys caps one ListObjectsV2 page (default 1000); tests set
	// it low to exercise continuation-token paging.
	MaxKeys int

	mu      sync.Mutex
	objects map[string][]byte
}

// New returns a fake serving one bucket that accepts requests signed
// with creds in region.
func New(bucket string, creds sigv4.Credentials, region string) *Server {
	return &Server{
		bucket:  bucket,
		region:  region,
		creds:   map[string]string{creds.AccessKeyID: creds.SecretAccessKey},
		MaxKeys: 1000,
		objects: make(map[string][]byte),
	}
}

// Len returns the number of stored objects.
func (s *Server) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects)
}

// xmlError is the S3 error response shape.
type xmlError struct {
	XMLName xml.Name `xml:"Error"`
	Code    string   `xml:"Code"`
	Message string   `xml:"Message"`
}

func writeXMLError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/xml")
	w.WriteHeader(status)
	// The client is an in-process test; a torn error body only makes the
	// failing test noisier.
	_ = xml.NewEncoder(w).Encode(xmlError{Code: code, Message: msg})
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		writeXMLError(w, http.StatusBadRequest, "IncompleteBody", err.Error())
		return
	}
	if len(body) > maxBody {
		writeXMLError(w, http.StatusBadRequest, "EntityTooLarge", "object exceeds the fake's size cap")
		return
	}
	// The payload hash is signed; verify the body matches it before
	// verifying the signature over it.
	if got, want := sigv4.PayloadHash(body), r.Header.Get("x-amz-content-sha256"); got != want {
		writeXMLError(w, http.StatusBadRequest, "XAmzContentSHA256Mismatch", "payload does not hash to x-amz-content-sha256")
		return
	}
	lookup := func(akid string) (string, bool) {
		secret, ok := s.creds[akid]
		return secret, ok
	}
	if err := sigv4.Verify(r, lookup, s.region, "s3"); err != nil {
		writeXMLError(w, http.StatusForbidden, "SignatureDoesNotMatch", err.Error())
		return
	}

	bucket, key, _ := strings.Cut(strings.TrimPrefix(r.URL.Path, "/"), "/")
	if bucket != s.bucket {
		writeXMLError(w, http.StatusNotFound, "NoSuchBucket", fmt.Sprintf("bucket %q does not exist", bucket))
		return
	}
	switch {
	case r.Method == http.MethodGet && key == "":
		s.handleList(w, r)
	case r.Method == http.MethodGet:
		s.handleGet(w, key, true)
	case r.Method == http.MethodHead:
		s.handleGet(w, key, false)
	case r.Method == http.MethodPut && key != "":
		s.handlePut(w, r, key, body)
	default:
		writeXMLError(w, http.StatusMethodNotAllowed, "MethodNotAllowed", r.Method+" is not supported by the fake")
	}
}

func etagFor(data []byte) string {
	sum := md5.Sum(data)
	return `"` + hex.EncodeToString(sum[:]) + `"`
}

func (s *Server) handleGet(w http.ResponseWriter, key string, withBody bool) {
	s.mu.Lock()
	data, ok := s.objects[key]
	s.mu.Unlock()
	if !ok {
		if !withBody { // HEAD carries no error document
			w.WriteHeader(http.StatusNotFound)
			return
		}
		writeXMLError(w, http.StatusNotFound, "NoSuchKey", fmt.Sprintf("key %q does not exist", key))
		return
	}
	w.Header().Set("ETag", etagFor(data))
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	if withBody {
		w.Write(data)
	}
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request, key string, body []byte) {
	s.mu.Lock()
	if r.Header.Get("If-None-Match") == "*" {
		if _, exists := s.objects[key]; exists {
			s.mu.Unlock()
			writeXMLError(w, http.StatusPreconditionFailed, "PreconditionFailed", "key exists and If-None-Match: * was given")
			return
		}
	}
	s.objects[key] = bytes.Clone(body)
	s.mu.Unlock()
	w.Header().Set("ETag", etagFor(body))
	w.WriteHeader(http.StatusOK)
}

// listResult mirrors the ListObjectsV2 response subset clients parse.
type listResult struct {
	XMLName               xml.Name      `xml:"ListBucketResult"`
	Name                  string        `xml:"Name"`
	Prefix                string        `xml:"Prefix"`
	KeyCount              int           `xml:"KeyCount"`
	MaxKeys               int           `xml:"MaxKeys"`
	IsTruncated           bool          `xml:"IsTruncated"`
	NextContinuationToken string        `xml:"NextContinuationToken,omitempty"`
	Contents              []listContent `xml:"Contents"`
}

type listContent struct {
	Key  string `xml:"Key"`
	Size int64  `xml:"Size"`
	ETag string `xml:"ETag"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Get("list-type") != "2" {
		writeXMLError(w, http.StatusBadRequest, "InvalidArgument", "only list-type=2 is supported")
		return
	}
	prefix := q.Get("prefix")
	after := q.Get("continuation-token") // opaque to clients; the fake uses the last key served

	s.mu.Lock()
	keys := make([]string, 0, len(s.objects))
	for k := range s.objects {
		if strings.HasPrefix(k, prefix) && k > after {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	lr := listResult{Name: s.bucket, Prefix: prefix, MaxKeys: s.MaxKeys}
	for _, k := range keys {
		if len(lr.Contents) >= s.MaxKeys {
			lr.IsTruncated = true
			lr.NextContinuationToken = lr.Contents[len(lr.Contents)-1].Key
			break
		}
		lr.Contents = append(lr.Contents, listContent{
			Key:  k,
			Size: int64(len(s.objects[k])),
			ETag: etagFor(s.objects[k]),
		})
	}
	lr.KeyCount = len(lr.Contents)
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/xml")
	w.WriteHeader(http.StatusOK)
	_ = xml.NewEncoder(w).Encode(lr)
}
