package objstore

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"sort"
	"strconv"
	"sync"
)

// Mem is the in-process backend: a mutex-guarded map, for tests and
// ephemeral workers that want store semantics without touching disk.
// Two Services handed the same *Mem share one bucket — the in-process
// stand-in for a fleet sharing an s3 bucket.
type Mem struct {
	mu      sync.Mutex
	entries map[string]memEntry
	gens    map[string]int64 // per-shard write counters
}

type memEntry struct {
	data   []byte
	sha256 string
}

// NewMem returns an empty in-memory backend.
func NewMem() *Mem {
	return &Mem{entries: make(map[string]memEntry), gens: make(map[string]int64)}
}

func (m *Mem) String() string { return "mem:" }

func (m *Mem) Get(ctx context.Context, name string) ([]byte, error) {
	if !ValidName(name) {
		return nil, errBadName(name)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	e, ok := m.entries[name]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("objstore: reading entry %s: %w", name, fs.ErrNotExist)
	}
	// Copy out: callers may hold the slice across later writes.
	return append([]byte(nil), e.data...), nil
}

func (m *Mem) Put(ctx context.Context, name string, data []byte) error {
	if !ValidName(name) {
		return errBadName(name)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	m.store(name, data)
	return nil
}

func (m *Mem) PutIfAbsent(ctx context.Context, name string, data []byte) (bool, error) {
	if !ValidName(name) {
		return false, errBadName(name)
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.entries[name]; ok {
		return false, nil
	}
	m.storeLocked(name, data)
	return true, nil
}

func (m *Mem) store(name string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.storeLocked(name, data)
}

func (m *Mem) storeLocked(name string, data []byte) {
	d := sha256.Sum256(data)
	m.entries[name] = memEntry{
		data:   append([]byte(nil), data...),
		sha256: hex.EncodeToString(d[:]),
	}
	m.gens[name[:2]]++
}

func (m *Mem) Stat(ctx context.Context, name string) (Object, error) {
	if !ValidName(name) {
		return Object{}, errBadName(name)
	}
	if err := ctx.Err(); err != nil {
		return Object{}, err
	}
	m.mu.Lock()
	e, ok := m.entries[name]
	m.mu.Unlock()
	if !ok {
		return Object{}, fmt.Errorf("objstore: stat entry %s: %w", name, fs.ErrNotExist)
	}
	return Object{Name: name, Size: int64(len(e.data)), ETag: e.sha256, SHA256: e.sha256}, nil
}

func (m *Mem) List(ctx context.Context, shard string) ([]Object, error) {
	if !ValidShard(shard) {
		return nil, errBadShard(shard)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var objs []Object
	for name, e := range m.entries {
		if name[:2] != shard {
			continue
		}
		objs = append(objs, Object{Name: name, Size: int64(len(e.data)), ETag: e.sha256, SHA256: e.sha256})
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Name < objs[j].Name })
	return objs, nil
}

// Generation returns the shard's write counter: bumped on every store,
// so equal tokens guarantee an unchanged shard exactly.
func (m *Mem) Generation(ctx context.Context, shard string) (string, bool) {
	if !ValidShard(shard) || ctx.Err() != nil {
		return "", false
	}
	m.mu.Lock()
	g := m.gens[shard]
	m.mu.Unlock()
	return strconv.FormatInt(g, 10), true
}

func (m *Mem) Close() error { return nil }
