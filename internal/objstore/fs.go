package objstore

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// FS is the filesystem backend: the sharded content-addressed layout
// sim.Store has always written, extracted behind the Backend interface.
// Entries live at <root>/<name[:2]>/<name>.json; writes are temp file +
// rename inside the shard directory, so a reader never observes a
// partial entry; one root can be shared by many concurrent processes.
type FS struct {
	root string
}

// NewFS opens (lazily — no I/O happens until the first access) the
// backend rooted at dir.
func NewFS(dir string) *FS { return &FS{root: dir} }

// Root returns the backend's root directory.
func (f *FS) Root() string { return f.root }

func (f *FS) String() string { return "fs:" + f.root }

// entryPath returns the file path for name.
func (f *FS) entryPath(name string) string {
	return filepath.Join(f.root, name[:2], name+".json")
}

func (f *FS) Get(ctx context.Context, name string) ([]byte, error) {
	if !ValidName(name) {
		return nil, errBadName(name)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(f.entryPath(name))
	if err != nil {
		// os.ReadFile errors already wrap fs.ErrNotExist on a miss.
		return nil, fmt.Errorf("objstore: reading entry %s: %w", name, err)
	}
	return data, nil
}

func (f *FS) Put(ctx context.Context, name string, data []byte) error {
	if !ValidName(name) {
		return errBadName(name)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	path := f.entryPath(name)
	tmp, err := f.writeTemp(path, data)
	if err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func (f *FS) PutIfAbsent(ctx context.Context, name string, data []byte) (bool, error) {
	if !ValidName(name) {
		return false, errBadName(name)
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	path := f.entryPath(name)
	tmp, err := f.writeTemp(path, data)
	if err != nil {
		return false, err
	}
	// Link instead of rename: link fails with EEXIST when the entry
	// already exists, which is exactly the lost-the-race signal —
	// rename would silently clobber the winner.
	err = os.Link(tmp, path)
	os.Remove(tmp)
	if err != nil {
		if errors.Is(err, fs.ErrExist) {
			return false, nil
		}
		return false, err
	}
	return true, nil
}

// writeTemp writes data to a fresh temp file in the target entry's
// shard directory (creating the directory if needed) and returns its
// path. Put and PutIfAbsent share it.
func (f *FS) writeTemp(path string, data []byte) (string, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".put*")
	if err != nil {
		return "", err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return "", werr
		}
		return "", cerr
	}
	return tmp.Name(), nil
}

func (f *FS) Stat(ctx context.Context, name string) (Object, error) {
	if !ValidName(name) {
		return Object{}, errBadName(name)
	}
	if err := ctx.Err(); err != nil {
		return Object{}, err
	}
	st, err := os.Stat(f.entryPath(name))
	if err != nil {
		return Object{}, fmt.Errorf("objstore: stat entry %s: %w", name, err)
	}
	return Object{Name: name, Size: st.Size()}, nil
}

func (f *FS) List(ctx context.Context, shard string) ([]Object, error) {
	if !ValidShard(shard) {
		return nil, errBadShard(shard)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dir := filepath.Join(f.root, shard)
	des, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil // an absent shard directory is an empty shard
		}
		return nil, fmt.Errorf("objstore: reading shard %s: %w", shard, err)
	}
	var objs []Object
	for _, de := range des { // ReadDir sorts by name
		stem := strings.TrimSuffix(de.Name(), ".json")
		if len(stem) == len(de.Name()) || !ValidName(stem) || stem[:2] != shard {
			continue // temp files and foreign droppings are not entries
		}
		data, err := os.ReadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			continue // deleted mid-scan: the mtime bump forces a rescan
		}
		d := sha256.Sum256(data)
		objs = append(objs, Object{
			Name:   stem,
			Size:   int64(len(data)),
			SHA256: hex.EncodeToString(d[:]),
		})
	}
	return objs, nil
}

// Generation returns the shard directory's mtime as the change token.
// Callers read it before a List (not after), so a write landing
// mid-scan bumps the mtime past the token and the next caller rescans
// — conservative, never stale. A missing directory reports a fixed
// token: absent and absent are equal.
func (f *FS) Generation(ctx context.Context, shard string) (string, bool) {
	if !ValidShard(shard) || ctx.Err() != nil {
		return "", false
	}
	st, err := os.Stat(filepath.Join(f.root, shard))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return "absent", true
		}
		return "", false
	}
	return strconv.FormatInt(st.ModTime().UnixNano(), 10), true
}

func (f *FS) Close() error { return nil }
