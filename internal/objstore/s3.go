package objstore

import (
	"bytes"
	"context"
	"encoding/xml"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"repro/internal/objstore/sigv4"
)

// s3Credentials is the static access-key pair the s3 backend signs
// with.
type s3Credentials = sigv4.Credentials

// httpDoer is the slice of http.Client the s3 backend needs; tests
// inject an httptest client.
type httpDoer interface {
	Do(*http.Request) (*http.Response, error)
}

// s3 environment contract (MinIO-compatible): the backend reads
// AWS_ACCESS_KEY_ID, AWS_SECRET_ACCESS_KEY, AWS_REGION (default
// us-east-1) and AWS_ENDPOINT_URL (default the AWS regional endpoint)
// unless the corresponding Option overrides them.
const (
	envAccessKey = "AWS_ACCESS_KEY_ID"
	envSecretKey = "AWS_SECRET_ACCESS_KEY"
	envRegion    = "AWS_REGION"
	envEndpoint  = "AWS_ENDPOINT_URL"

	defaultRegion = "us-east-1"
)

// maxErrorBody bounds how much of an S3 error response travels into an
// error message.
const maxErrorBody = 4 << 10

// maxObjectBody bounds a single entry fetch; envelopes are small JSON
// documents, so anything near this is corrupt or hostile.
const maxObjectBody = 64 << 20

// S3 is the stdlib-only client for the REST subset MinIO serves:
// SigV4-signed GET / PUT / HEAD / ListObjectsV2 with path-style
// addressing. Entries map to keys <prefix><name[:2]>/<name>.json —
// the same layout fs uses, so a bucket is browsable with any s3 tool.
type S3 struct {
	endpoint url.URL // scheme + host only
	bucket   string
	prefix   string // "" or slash-terminated
	region   string
	creds    s3Credentials
	client   httpDoer
}

// newS3FromSpec builds the s3 backend from an s3://bucket[/prefix]
// spec plus the option/environment configuration.
func newS3FromSpec(spec string, cfg *config) (*S3, error) {
	rest := strings.TrimPrefix(spec, "s3://")
	bucket, prefix, _ := strings.Cut(rest, "/")
	if bucket == "" {
		return nil, fmt.Errorf("objstore: spec %q: s3:// needs a bucket", spec)
	}
	if !validBucket(bucket) {
		return nil, fmt.Errorf("objstore: spec %q: bad bucket name %q", spec, bucket)
	}
	prefix = strings.Trim(prefix, "/")
	if prefix != "" {
		if !validPrefix(prefix) {
			return nil, fmt.Errorf("objstore: spec %q: prefix may only contain [A-Za-z0-9._/-]", spec)
		}
		prefix += "/"
	}
	region := cfg.region
	if region == "" {
		region = envOr(envRegion, defaultRegion)
	}
	endpoint := cfg.endpoint
	if endpoint == "" {
		endpoint = envOr(envEndpoint, "https://s3."+region+".amazonaws.com")
	}
	u, err := url.Parse(endpoint)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("objstore: bad s3 endpoint %q: want scheme://host", endpoint)
	}
	creds := cfg.creds
	if creds.AccessKeyID == "" {
		creds = s3Credentials{
			AccessKeyID:     envOr(envAccessKey, ""),
			SecretAccessKey: envOr(envSecretKey, ""),
		}
	}
	if creds.AccessKeyID == "" || creds.SecretAccessKey == "" {
		return nil, fmt.Errorf("objstore: s3 credentials missing: set %s and %s (or WithCredentials)", envAccessKey, envSecretKey)
	}
	client := cfg.httpClient
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	return &S3{
		endpoint: url.URL{Scheme: u.Scheme, Host: u.Host},
		bucket:   bucket,
		prefix:   prefix,
		region:   region,
		creds:    creds,
		client:   client,
	}, nil
}

// validBucket applies the portable S3 bucket grammar: lowercase
// letters, digits, dots and dashes, starting and ending alphanumeric.
func validBucket(b string) bool {
	if len(b) < 3 || len(b) > 63 {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		alnum := (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
		if (i == 0 || i == len(b)-1) && !alnum {
			return false
		}
		if !alnum && c != '.' && c != '-' {
			return false
		}
	}
	return true
}

// validPrefix restricts key prefixes to characters whose URL encoding
// is the identity, so the path the client signs is byte-for-byte the
// path on the wire regardless of URL library quirks.
func validPrefix(p string) bool {
	if strings.Contains(p, "//") {
		return false
	}
	for i := 0; i < len(p); i++ {
		c := p[i]
		switch {
		case c >= 'A' && c <= 'Z', c >= 'a' && c <= 'z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-', c == '/':
		default:
			return false
		}
	}
	return true
}

func (s *S3) String() string {
	return "s3://" + s.bucket + "/" + strings.TrimSuffix(s.prefix, "/")
}

// objectKey returns the bucket key for an entry name.
func (s *S3) objectKey(name string) string {
	return s.prefix + name[:2] + "/" + name + ".json"
}

// do signs and issues one request and returns the response. The body
// is the full request payload (nil for GET/HEAD); its hash is signed,
// so a tampered payload fails server-side verification.
func (s *S3) do(ctx context.Context, method, key, rawQuery string, body []byte, extra http.Header) (*http.Response, error) {
	u := s.endpoint
	u.Path = "/" + s.bucket
	if key != "" {
		u.Path += "/" + key
	}
	u.RawQuery = rawQuery
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u.String(), rd)
	if err != nil {
		return nil, err
	}
	for k, vs := range extra {
		req.Header[k] = vs
	}
	hash := sigv4.EmptyPayloadHash
	if body != nil {
		hash = sigv4.PayloadHash(body)
		req.ContentLength = int64(len(body))
	}
	now := time.Now() //repro:allow nodeterm -- SigV4 signing timestamps are transport metadata, never results
	if err := sigv4.SignRequest(req, hash, s.creds, s.region, "s3", now); err != nil {
		return nil, err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("objstore: s3 %s %s: %w", method, key, err)
	}
	return resp, nil
}

// apiError drains resp and converts a non-2xx status into an error; a
// 404 wraps fs.ErrNotExist so misses flow through the store unchanged.
func apiError(resp *http.Response, method, key string) error {
	snippet, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
	resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("objstore: s3 %s %s: %s: %w", method, key, http.StatusText(resp.StatusCode), fs.ErrNotExist)
	}
	msg := strings.TrimSpace(string(snippet))
	if len(msg) > 200 {
		msg = msg[:200]
	}
	return fmt.Errorf("objstore: s3 %s %s: status %d %s", method, key, resp.StatusCode, msg)
}

func (s *S3) Get(ctx context.Context, name string) ([]byte, error) {
	if !ValidName(name) {
		return nil, errBadName(name)
	}
	key := s.objectKey(name)
	resp, err := s.do(ctx, http.MethodGet, key, "", nil, nil)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp, "GET", key)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxObjectBody))
	if err != nil {
		return nil, fmt.Errorf("objstore: s3 GET %s: reading body: %w", key, err)
	}
	return data, nil
}

func (s *S3) Put(ctx context.Context, name string, data []byte) error {
	if !ValidName(name) {
		return errBadName(name)
	}
	key := s.objectKey(name)
	resp, err := s.do(ctx, http.MethodPut, key, "", data, nil)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiError(resp, "PUT", key)
	}
	resp.Body.Close()
	return nil
}

// PutIfAbsent uploads with a conditional write: If-None-Match: * makes
// the server reject the PUT with 412 when the key already exists
// (supported by S3 and MinIO alike), so the first writer wins and a
// peer can never clobber existing bytes. A cheap HEAD first skips the
// upload entirely for the common already-present case.
func (s *S3) PutIfAbsent(ctx context.Context, name string, data []byte) (bool, error) {
	if !ValidName(name) {
		return false, errBadName(name)
	}
	if _, err := s.Stat(ctx, name); err == nil {
		return false, nil
	}
	key := s.objectKey(name)
	hdr := http.Header{"If-None-Match": []string{"*"}}
	resp, err := s.do(ctx, http.MethodPut, key, "", data, hdr)
	if err != nil {
		return false, err
	}
	if resp.StatusCode == http.StatusPreconditionFailed {
		resp.Body.Close()
		return false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return false, apiError(resp, "PUT", key)
	}
	resp.Body.Close()
	return true, nil
}

func (s *S3) Stat(ctx context.Context, name string) (Object, error) {
	if !ValidName(name) {
		return Object{}, errBadName(name)
	}
	key := s.objectKey(name)
	resp, err := s.do(ctx, http.MethodHead, key, "", nil, nil)
	if err != nil {
		return Object{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return Object{}, apiError(resp, "HEAD", key)
	}
	resp.Body.Close()
	return Object{
		Name: name,
		Size: resp.ContentLength,
		ETag: strings.Trim(resp.Header.Get("ETag"), `"`),
	}, nil
}

// listResult is the ListObjectsV2 response subset the client parses.
type listResult struct {
	XMLName               xml.Name `xml:"ListBucketResult"`
	IsTruncated           bool     `xml:"IsTruncated"`
	NextContinuationToken string   `xml:"NextContinuationToken"`
	Contents              []struct {
		Key  string `xml:"Key"`
		Size int64  `xml:"Size"`
		ETag string `xml:"ETag"`
	} `xml:"Contents"`
}

func (s *S3) List(ctx context.Context, shard string) ([]Object, error) {
	if !ValidShard(shard) {
		return nil, errBadShard(shard)
	}
	var objs []Object
	token := ""
	for {
		q := url.Values{}
		q.Set("list-type", "2")
		q.Set("prefix", s.prefix+shard+"/")
		if token != "" {
			q.Set("continuation-token", token)
		}
		resp, err := s.do(ctx, http.MethodGet, "", q.Encode(), nil, nil)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, apiError(resp, "LIST", shard)
		}
		var lr listResult
		err = xml.NewDecoder(io.LimitReader(resp.Body, maxObjectBody)).Decode(&lr)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("objstore: s3 LIST %s: decoding response: %w", shard, err)
		}
		for _, c := range lr.Contents {
			stem, ok := strings.CutSuffix(strings.TrimPrefix(c.Key, s.prefix+shard+"/"), ".json")
			if !ok || !ValidName(stem) || stem[:2] != shard {
				continue // foreign keys under the prefix are not entries
			}
			objs = append(objs, Object{
				Name: stem,
				Size: c.Size,
				ETag: strings.Trim(c.ETag, `"`),
			})
		}
		if !lr.IsTruncated || lr.NextContinuationToken == "" {
			break
		}
		token = lr.NextContinuationToken
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Name < objs[j].Name })
	return objs, nil
}

// Generation is unsupported: S3 has no cheap per-prefix change token,
// so manifest layers above fall back to listing (ETags still let them
// skip per-entry fetches).
func (s *S3) Generation(ctx context.Context, shard string) (string, bool) {
	return "", false
}

func (s *S3) Close() error { return nil }
