package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSpeedup(t *testing.T) {
	if got := Speedup(1.1, 1.0); math.Abs(got-1.1) > 1e-12 {
		t.Fatalf("Speedup = %v", got)
	}
	if got := Speedup(1.0, 0); got != 1 {
		t.Fatalf("zero base must yield 1, got %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Fatalf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("empty GeoMean = %v", got)
	}
	// Non-positive entries must not produce NaN/Inf.
	if got := GeoMean([]float64{1, 0}); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("GeoMean with zero = %v", got)
	}
}

func TestGeoMeanBetweenMinAndMax(t *testing.T) {
	if err := quick.Check(func(a, b uint16) bool {
		x := float64(a)/100 + 0.5
		y := float64(b)/100 + 0.5
		g := GeoMean([]float64{x, y})
		lo, hi := math.Min(x, y), math.Max(x, y)
		return g >= lo-1e-9 && g <= hi+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 || Min(xs) != 1 || Max(xs) != 3 {
		t.Fatalf("Mean/Min/Max = %v/%v/%v", Mean(xs), Min(xs), Max(xs))
	}
}

func TestPct(t *testing.T) {
	if got := Pct(1.052); got != "+5.2%" {
		t.Fatalf("Pct(1.052) = %q", got)
	}
	if got := Pct(0.98); got != "-2.0%" {
		t.Fatalf("Pct(0.98) = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRowF("x", 1.5)
	tb.AddRowF("longer-name", 42)
	s := tb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "longer-name") {
		t.Fatalf("rendered table missing content:\n%s", s)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("rendered %d lines:\n%s", len(lines), s)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]float64{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("SortedKeys = %v", keys)
	}
}
