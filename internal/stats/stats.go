// Package stats provides the counters and summary helpers used by the
// simulator and by the experiment harness that regenerates the paper's
// figures (geometric-mean speedups, per-benchmark tables, log-scale
// event counts).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Speedup returns the relative speedup of ipc over base as the paper
// reports it: 1.05 means "+5%". A zero base yields 1 to keep downstream
// geometric means well-defined.
func Speedup(ipc, base float64) float64 {
	if base == 0 {
		return 1
	}
	return ipc / base
}

// GeoMean returns the geometric mean of xs. Non-positive entries are
// clamped to a tiny positive value so a single degenerate benchmark cannot
// poison the mean; the paper's gmean speedups are always near 1.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			x = 1e-9
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	m := 0.0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	m := 0.0
	for i, x := range xs {
		if i == 0 || x < m {
			m = x
		}
	}
	return m
}

// Table accumulates rows of named values and renders a fixed-width text
// table, which is how cmd/paperfigs prints each figure's data series.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells beyond len(Columns) are dropped, missing
// cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowF appends a row of formatted cells: strings pass through, float64
// render with 3 decimals, ints in decimal.
func (t *Table) AddRowF(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.3f", v))
		case int:
			row = append(row, fmt.Sprintf("%d", v))
		case int64:
			row = append(row, fmt.Sprintf("%d", v))
		case uint64:
			row = append(row, fmt.Sprintf("%d", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Pct formats a speedup ratio (1.052 -> "+5.2%").
func Pct(speedup float64) string {
	return fmt.Sprintf("%+.1f%%", (speedup-1)*100)
}

// SortedKeys returns the keys of m in sorted order; used to render
// per-benchmark maps deterministically.
func SortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
