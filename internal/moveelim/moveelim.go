// Package moveelim implements the rename-time Move Elimination policy of
// §2: which reg-reg moves may have their destination mapped onto their
// source's physical register, removing them from the execution pipeline.
//
// The x86_64 width rules live on the µop itself (isa.Uop.EliminableMove);
// this package adds the policy the paper evaluates — integer moves only,
// as in Figure 5 ("we only implement ME for 64- and 32-bit integer
// register to integer register moves") — plus the accounting used by
// Figure 5b (percentage of renamed instructions eliminated).
package moveelim

import "repro/internal/isa"

// Config controls the elimination policy.
type Config struct {
	// Enabled turns ME on.
	Enabled bool
	// IntOnly restricts elimination to integer moves (the paper's
	// configuration; recent Intel parts also eliminate FP moves, §6.1).
	IntOnly bool
}

// DefaultConfig returns the paper's ME policy.
func DefaultConfig() Config { return Config{Enabled: true, IntOnly: true} }

// Eliminator applies the ME policy and keeps the statistics Figure 5
// reports.
type Eliminator struct {
	cfg Config

	// Candidates counts renamed µops that satisfied the architectural
	// elimination rules.
	Candidates uint64
	// Eliminated counts moves actually eliminated (candidates for which
	// the tracking structure accepted the share). The gap between the two
	// is exactly what Intel's "move elimination candidate uops that were
	// not eliminated" performance event measures (§2.2).
	Eliminated uint64
	// TrackerRejected counts candidates aborted because the reference
	// tracking structure was full or saturated.
	TrackerRejected uint64
	// SelfMoves counts moves whose source and destination architectural
	// registers are identical (nothing to do; treated as eliminated
	// without touching the tracker).
	SelfMoves uint64
}

// New builds an Eliminator.
func New(cfg Config) *Eliminator { return &Eliminator{cfg: cfg} }

// Candidate reports whether u is eliminable under the policy. It counts
// candidates as a side effect, so call it exactly once per renamed µop.
func (e *Eliminator) Candidate(u *isa.Uop) bool {
	if !e.cfg.Enabled || !u.EliminableMove() {
		return false
	}
	if e.cfg.IntOnly && u.Dest.Class != isa.IntReg {
		return false
	}
	e.Candidates++
	return true
}

// NoteEliminated records a successful elimination.
func (e *Eliminator) NoteEliminated() { e.Eliminated++ }

// NoteRejected records a tracker-aborted elimination.
func (e *Eliminator) NoteRejected() { e.TrackerRejected++ }

// NoteSelfMove records a self-move (trivially eliminated).
func (e *Eliminator) NoteSelfMove() { e.SelfMoves++; e.Eliminated++ }
