package moveelim

import (
	"testing"

	"repro/internal/isa"
)

func mov(width uint8, src, dst isa.Reg) *isa.Uop {
	return &isa.Uop{Op: isa.Move, Width: width,
		Src: [isa.MaxSrcRegs]isa.Reg{src, isa.NoReg, isa.NoReg}, Dest: dst}
}

func TestPolicyIntOnly(t *testing.T) {
	e := New(Config{Enabled: true, IntOnly: true})
	if !e.Candidate(mov(64, isa.IntR(0), isa.IntR(1))) {
		t.Fatal("64-bit int move rejected")
	}
	if !e.Candidate(mov(32, isa.IntR(0), isa.IntR(1))) {
		t.Fatal("32-bit int move rejected")
	}
	if e.Candidate(mov(16, isa.IntR(0), isa.IntR(1))) {
		t.Fatal("16-bit merge move accepted")
	}
	if e.Candidate(mov(64, isa.FPR(0), isa.FPR(1))) {
		t.Fatal("FP move accepted under IntOnly (the paper's Figure 5 policy)")
	}
	if e.Candidates != 2 {
		t.Fatalf("candidates = %d, want 2", e.Candidates)
	}
}

func TestPolicyDisabled(t *testing.T) {
	e := New(Config{Enabled: false})
	if e.Candidate(mov(64, isa.IntR(0), isa.IntR(1))) {
		t.Fatal("disabled eliminator accepted a candidate")
	}
}

func TestFPAllowedWhenNotIntOnly(t *testing.T) {
	e := New(Config{Enabled: true, IntOnly: false})
	if !e.Candidate(mov(64, isa.FPR(0), isa.FPR(1))) {
		t.Fatal("FP move rejected with IntOnly off (recent Intel parts eliminate FP moves, §6.1)")
	}
}

func TestCounters(t *testing.T) {
	e := New(DefaultConfig())
	e.Candidate(mov(64, isa.IntR(0), isa.IntR(1)))
	e.NoteEliminated()
	e.Candidate(mov(64, isa.IntR(2), isa.IntR(3)))
	e.NoteRejected()
	e.NoteSelfMove()
	if e.Eliminated != 2 || e.TrackerRejected != 1 || e.SelfMoves != 1 {
		t.Fatalf("counters: elim=%d rej=%d self=%d", e.Eliminated, e.TrackerRejected, e.SelfMoves)
	}
}
