package tage

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestHistoryPushShiftsBitsIn(t *testing.T) {
	var h History
	h.Push(true, 0)
	h.Push(false, 0)
	h.Push(true, 0)
	// Newest outcome in bit 0: sequence (T, F, T) => 101b.
	if got := h.Bits() & 7; got != 0b101 {
		t.Fatalf("history bits = %b, want 101", got)
	}
}

func TestHistoryFoldBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64, length, width uint8) bool {
		h := &History{}
		r := rng.New(seed)
		for i := 0; i < 300; i++ {
			h.Push(r.Bool(0.5), r.Uint64())
		}
		l := int(length)
		w := int(width%31) + 1
		f := h.Fold(l, w)
		return f < 1<<w
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryFoldDependsOnLength(t *testing.T) {
	var a, b History
	for i := 0; i < 100; i++ {
		a.Push(i%3 == 0, uint64(i*4))
		b.Push(i%3 == 0, uint64(i*4))
	}
	// Same history must fold identically.
	if a.Fold(64, 10) != b.Fold(64, 10) {
		t.Fatal("identical histories folded differently")
	}
	// Push one differing outcome: folds over ranges including it differ.
	a.Push(true, 0)
	b.Push(false, 0)
	if a.Fold(8, 8) == b.Fold(8, 8) {
		t.Fatal("fold ignored the newest outcome")
	}
}

func TestHistoryValueSemantics(t *testing.T) {
	var h History
	for i := 0; i < 50; i++ {
		h.Push(i%2 == 0, uint64(i))
	}
	snap := h // plain copy is a checkpoint
	h.Push(true, 4)
	h.Push(true, 8)
	if snap.Bits() == h.Bits() {
		t.Fatal("snapshot aliased the live history")
	}
	h = snap
	if h.Bits() != snap.Bits() || h.Path() != snap.Path() {
		t.Fatal("restore by assignment failed")
	}
}

// TestBranchPredictorLearnsLoop: a loop taken 15 times then not taken once
// must be predictable by TAGE once the trip count fits in history.
func TestBranchPredictorLearnsLoop(t *testing.T) {
	p := NewBranchPredictor(DefaultBranchConfig())
	var h History
	const pc = 0x400
	mispredicts := 0
	total := 0
	for iter := 0; iter < 400; iter++ {
		for i := 0; i < 16; i++ {
			taken := i != 15
			pr := p.Predict(pc, &h)
			if iter > 200 {
				total++
				if pr.Taken != taken {
					mispredicts++
				}
			}
			p.Update(pc, &pr, taken)
			h.Push(taken, pc)
		}
	}
	rate := float64(mispredicts) / float64(total)
	if rate > 0.05 {
		t.Fatalf("loop branch misprediction rate %.2f after warmup; TAGE should learn a 16-iteration loop", rate)
	}
}

// TestBranchPredictorLearnsAlternating: a strict T/N/T/N pattern is
// trivially history-predictable.
func TestBranchPredictorLearnsAlternating(t *testing.T) {
	p := NewBranchPredictor(DefaultBranchConfig())
	var h History
	const pc = 0x800
	mis, total := 0, 0
	for i := 0; i < 3000; i++ {
		taken := i%2 == 0
		pr := p.Predict(pc, &h)
		if i > 1000 {
			total++
			if pr.Taken != taken {
				mis++
			}
		}
		p.Update(pc, &pr, taken)
		h.Push(taken, pc)
	}
	if rate := float64(mis) / float64(total); rate > 0.02 {
		t.Fatalf("alternating branch misprediction rate %.2f", rate)
	}
}

// TestBranchPredictorBiased: a heavily biased branch must approach its
// bias rate.
func TestBranchPredictorBiased(t *testing.T) {
	p := NewBranchPredictor(DefaultBranchConfig())
	var h History
	r := rng.New(11)
	mis, total := 0, 0
	for i := 0; i < 5000; i++ {
		taken := !r.Bool(0.02)
		pr := p.Predict(0x1234, &h)
		if i > 1000 {
			total++
			if pr.Taken != taken {
				mis++
			}
		}
		p.Update(0x1234, &pr, taken)
		h.Push(taken, 0x1234)
	}
	if rate := float64(mis) / float64(total); rate > 0.06 {
		t.Fatalf("biased branch misprediction rate %.2f, want near 0.02", rate)
	}
}

func TestBranchPredictorStorageAndEntries(t *testing.T) {
	p := NewBranchPredictor(DefaultBranchConfig())
	// Table 1: ~15K entries total.
	if n := p.Entries(); n < 12_000 || n > 18_000 {
		t.Fatalf("TAGE entries = %d, want ~15K", n)
	}
	if p.Storage() <= 0 {
		t.Fatal("storage must be positive")
	}
}

// TestValuePredictorLearnsConstantDistance mirrors the distance
// predictor's primary job: a constant distance per PC saturates
// confidence after 15 correct observations (§3.1).
func TestValuePredictorLearnsConstantDistance(t *testing.T) {
	p := NewValuePredictor(DefaultDistanceConfig())
	var h History
	const pc = 0x2000
	for i := 0; i < 20; i++ {
		p.Train(pc, &h, 42)
	}
	pr := p.Predict(pc, &h)
	if !pr.Hit || !pr.Confident || pr.Value != 42 {
		t.Fatalf("after 20 trainings: hit=%v conf=%v val=%d", pr.Hit, pr.Confident, pr.Value)
	}
}

// TestValuePredictorConfidenceResetOnMismatch: §3.1 — a single mismatch
// kills confidence.
func TestValuePredictorConfidenceResetOnMismatch(t *testing.T) {
	p := NewValuePredictor(DefaultDistanceConfig())
	var h History
	const pc = 0x3000
	for i := 0; i < 20; i++ {
		p.Train(pc, &h, 10)
	}
	if pr := p.Predict(pc, &h); !pr.Confident {
		t.Fatal("confidence did not saturate")
	}
	p.Train(pc, &h, 99)
	if pr := p.Predict(pc, &h); pr.Confident {
		t.Fatal("confidence survived a mismatch")
	}
}

// TestValuePredictorHistoryDependentDistance: a distance that alternates
// with the previous branch direction (the paper's motivation for a
// TAGE-like predictor over a PC-indexed one, §3.1).
func TestValuePredictorHistoryDependentDistance(t *testing.T) {
	p := NewValuePredictor(DefaultDistanceConfig())
	var hT, hN History
	// Two distinct histories ahead of the same load PC.
	for i := 0; i < 30; i++ {
		hT.Push(true, 0x10)
		hN.Push(false, 0x10)
	}
	const pc = 0x4000
	for i := 0; i < 25; i++ {
		p.Train(pc, &hT, 7)
		p.Train(pc, &hN, 13)
	}
	prT := p.Predict(pc, &hT)
	prN := p.Predict(pc, &hN)
	if !prT.Confident || prT.Value != 7 {
		t.Fatalf("taken-history prediction: conf=%v val=%d, want 7", prT.Confident, prT.Value)
	}
	if !prN.Confident || prN.Value != 13 {
		t.Fatalf("not-taken-history prediction: conf=%v val=%d, want 13", prN.Confident, prN.Value)
	}
}

func TestValuePredictorEntriesAndStorage(t *testing.T) {
	p := NewValuePredictor(DefaultDistanceConfig())
	// §3.1: 4096 + 512 + 512 + 256 + 128 + 128 = 5632 entries ("5.25K").
	if n := p.Entries(); n != 5632 {
		t.Fatalf("distance predictor entries = %d, want 5632", n)
	}
	// ≈12.2KB in the paper's accounting; our exact bit count lands within
	// [11.5, 13.5] KB.
	kb := float64(p.Storage()) / 8 / 1024
	if kb < 11.5 || kb > 13.5 {
		t.Fatalf("distance predictor storage = %.2fKB, want ≈12.2-12.7KB", kb)
	}
}

func TestMaxComponentsGuard(t *testing.T) {
	cfg := DefaultBranchConfig()
	for len(cfg.Tagged) <= MaxComponents {
		cfg.Tagged = append(cfg.Tagged, cfg.Tagged[0])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("predictor accepted more components than MaxComponents")
		}
	}()
	NewBranchPredictor(cfg)
}

// foldReference is the original bit-by-bit Fold, kept as the oracle for
// the word-level chunk extraction the production Fold uses.
func foldReference(h *History, length, width int) uint32 {
	if length <= 0 || width <= 0 {
		return 0
	}
	if length > MaxHistoryBits {
		length = MaxHistoryBits
	}
	var folded uint32
	mask := uint32(1)<<width - 1
	for start := 0; start < length; start += width {
		var chunk uint32
		n := width
		if start+n > length {
			n = length - start
		}
		for b := 0; b < n; b++ {
			pos := start + b
			bit := (h.bits[pos/64] >> (pos % 64)) & 1
			chunk |= uint32(bit) << b
		}
		folded ^= chunk
	}
	return folded & mask
}

// TestHistoryFoldMatchesBitByBitReference: the optimized Fold must be
// bit-identical to the naive definition for every (length, width),
// including the word-straddling chunks and the short tail chunk.
func TestHistoryFoldMatchesBitByBitReference(t *testing.T) {
	r := rng.New(7)
	h := &History{}
	for i := 0; i < 1000; i++ {
		h.Push(r.Bool(0.5), r.Uint64())
		if i%37 != 0 {
			continue
		}
		for width := 1; width <= 32; width++ {
			for length := 0; length <= MaxHistoryBits; length++ {
				if got, want := h.Fold(length, width), foldReference(h, length, width); got != want {
					t.Fatalf("Fold(%d, %d) = %#x, want %#x", length, width, got, want)
				}
			}
		}
	}
}
