package tage

// TaggedSpec describes one tagged TAGE component.
type TaggedSpec struct {
	LogEntries int // log2 of the number of entries
	TagBits    int
	HistLen    int // global history bits mixed into index and tag
	PathLen    int // path history bits mixed in
}

// BranchConfig sizes a BranchPredictor.
type BranchConfig struct {
	LogBaseEntries int // log2 entries of the bimodal base table
	Tagged         []TaggedSpec
	CounterBits    int // width of the signed prediction counters (3 typical)
	UsefulBits     int // width of the useful counters (2 typical)
}

// DefaultBranchConfig mirrors Table 1: a 1+12-component TAGE totalling
// about 15K entries, with geometric history lengths from 4 to 256 bits.
func DefaultBranchConfig() BranchConfig {
	hist := []int{4, 6, 10, 16, 25, 40, 64, 90, 128, 160, 200, 256}
	logs := []int{10, 10, 10, 10, 10, 10, 10, 10, 9, 9, 9, 9}
	tags := []int{8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13}
	specs := make([]TaggedSpec, len(hist))
	for i := range hist {
		specs[i] = TaggedSpec{LogEntries: logs[i], TagBits: tags[i], HistLen: hist[i], PathLen: min(hist[i], 16)}
	}
	return BranchConfig{LogBaseEntries: 12, Tagged: specs, CounterBits: 3, UsefulBits: 2}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

type taggedEntry struct {
	tag    uint32
	ctr    int8  // signed, centered: >=0 predicts taken
	useful uint8 // replacement protection
}

type taggedTable struct {
	spec    TaggedSpec
	entries []taggedEntry
	mask    uint32
	tagMask uint32
}

// MaxComponents bounds the number of tagged components so prediction
// records can use fixed-size arrays (no per-branch allocation).
const MaxComponents = 16

// BranchPrediction carries the state the predictor needs back at update
// time. The core stores it (with the history snapshot) in the ROB entry of
// each in-flight branch.
type BranchPrediction struct {
	Taken      bool
	provider   int  // index of the providing tagged component, -1 = base
	altTaken   bool // the alternate prediction
	altProv    int
	provCtr    int8
	indices    [MaxComponents]uint32 // per-component index at prediction time
	tags       [MaxComponents]uint32 // per-component tag at prediction time
	baseIndex  uint32
	newlyAlloc bool // provider was a weak, recently allocated entry
}

// BranchPredictor is a TAGE direction predictor.
type BranchPredictor struct {
	cfg      BranchConfig
	base     []int8 // bimodal counters
	baseMask uint32
	tables   []taggedTable
	ctrMax   int8
	ctrMin   int8
	useMax   uint8
	// useAltOnNA is a small meta-counter: prefer the alternate prediction
	// when the provider entry is freshly allocated (standard TAGE).
	useAltOnNA int8
	tick       uint32 // periodic useful-bit reset
}

// NewBranchPredictor builds a predictor from cfg.
func NewBranchPredictor(cfg BranchConfig) *BranchPredictor {
	if len(cfg.Tagged) > MaxComponents {
		panic("tage: too many tagged components")
	}
	p := &BranchPredictor{
		cfg:      cfg,
		base:     make([]int8, 1<<cfg.LogBaseEntries),
		baseMask: uint32(1)<<cfg.LogBaseEntries - 1,
		ctrMax:   int8(1)<<(cfg.CounterBits-1) - 1,
		useMax:   uint8(1)<<cfg.UsefulBits - 1,
	}
	p.ctrMin = -p.ctrMax - 1
	for _, spec := range cfg.Tagged {
		p.tables = append(p.tables, taggedTable{
			spec:    spec,
			entries: make([]taggedEntry, 1<<spec.LogEntries),
			mask:    uint32(1)<<spec.LogEntries - 1,
			tagMask: uint32(1)<<spec.TagBits - 1,
		})
	}
	return p
}

// Storage returns the predictor's storage budget in bits.
func (p *BranchPredictor) Storage() int {
	bits := len(p.base) * 2 // bimodal: 2 bits/entry
	for _, t := range p.tables {
		per := t.spec.TagBits + p.cfg.CounterBits + p.cfg.UsefulBits
		bits += len(t.entries) * per
	}
	return bits
}

// Entries returns the total number of table entries across components.
func (p *BranchPredictor) Entries() int {
	n := len(p.base)
	for _, t := range p.tables {
		n += len(t.entries)
	}
	return n
}

func (p *BranchPredictor) index(t *taggedTable, pc uint64, h *History) uint32 {
	w := t.spec.LogEntries
	idx := uint32(pc>>2) ^ uint32(pc>>(2+uint(w))) ^
		h.Fold(t.spec.HistLen, w) ^
		h.FoldPath(t.spec.PathLen, w)
	return idx & t.mask
}

func (p *BranchPredictor) tag(t *taggedTable, pc uint64, h *History) uint32 {
	w := t.spec.TagBits
	tg := uint32(pc>>2) ^ h.Fold(t.spec.HistLen, w) ^ (h.Fold(t.spec.HistLen, w-1) << 1)
	return tg & t.tagMask
}

// Predict returns the direction prediction for the branch at pc under
// history h.
func (p *BranchPredictor) Predict(pc uint64, h *History) BranchPrediction {
	pr := BranchPrediction{
		provider:  -1,
		altProv:   -1,
		baseIndex: uint32(pc>>2) & p.baseMask,
	}
	baseTaken := p.base[pr.baseIndex] >= 0
	pr.Taken, pr.altTaken = baseTaken, baseTaken

	for i := range p.tables {
		t := &p.tables[i]
		pr.indices[i] = p.index(t, pc, h)
		pr.tags[i] = p.tag(t, pc, h)
	}
	// Longest-history match provides; second-longest is the alternate.
	for i := len(p.tables) - 1; i >= 0; i-- {
		e := &p.tables[i].entries[pr.indices[i]]
		if e.tag != pr.tags[i] {
			continue
		}
		if pr.provider == -1 {
			pr.provider = i
			pr.provCtr = e.ctr
			pr.Taken = e.ctr >= 0
			pr.newlyAlloc = e.useful == 0 && (e.ctr == 0 || e.ctr == -1)
		} else if pr.altProv == -1 {
			pr.altProv = i
			pr.altTaken = e.ctr >= 0
			break
		}
	}
	if pr.provider >= 0 && pr.altProv == -1 {
		pr.altTaken = baseTaken
	}
	// On a newly allocated provider, optionally trust the alternate.
	if pr.provider >= 0 && pr.newlyAlloc && p.useAltOnNA >= 0 {
		pr.Taken = pr.altTaken
	}
	return pr
}

func satInc(c int8, max int8) int8 {
	if c < max {
		return c + 1
	}
	return c
}

func satDec(c int8, min int8) int8 {
	if c > min {
		return c - 1
	}
	return c
}

// Update trains the predictor with the resolved outcome, using the
// prediction record captured at fetch time.
func (p *BranchPredictor) Update(pc uint64, pr *BranchPrediction, taken bool) {
	mispredicted := pr.Taken != taken

	// Train the useAltOnNA meta-counter when the provider was fresh and
	// the two predictions disagreed.
	if pr.provider >= 0 && pr.newlyAlloc {
		provTaken := pr.provCtr >= 0
		if provTaken != pr.altTaken {
			if provTaken == taken {
				p.useAltOnNA = satDec(p.useAltOnNA, -8)
			} else {
				p.useAltOnNA = satInc(p.useAltOnNA, 7)
			}
		}
	}

	// Update provider (or base) counter.
	if pr.provider >= 0 {
		e := &p.tables[pr.provider].entries[pr.indices[pr.provider]]
		if e.tag == pr.tags[pr.provider] { // may have been evicted since
			if taken {
				e.ctr = satInc(e.ctr, p.ctrMax)
			} else {
				e.ctr = satDec(e.ctr, p.ctrMin)
			}
			provTaken := pr.provCtr >= 0
			if provTaken != pr.altTaken {
				if provTaken == taken {
					if e.useful < p.useMax {
						e.useful++
					}
				} else if e.useful > 0 {
					e.useful--
				}
			}
		}
	} else {
		c := &p.base[pr.baseIndex]
		if taken {
			*c = satInc(*c, 1)
		} else {
			*c = satDec(*c, -2)
		}
	}

	// On misprediction, allocate in a longer-history component.
	if mispredicted && pr.provider < len(p.tables)-1 {
		p.allocate(pr, taken)
	}
}

func (p *BranchPredictor) allocate(pr *BranchPrediction, taken bool) {
	start := pr.provider + 1
	// Find a non-useful victim among longer components; degrade useful
	// bits when none is free (TAGE's anti-ping-pong policy).
	allocated := false
	for i := start; i < len(p.tables); i++ {
		e := &p.tables[i].entries[pr.indices[i]]
		if e.useful == 0 {
			e.tag = pr.tags[i]
			if taken {
				e.ctr = 0
			} else {
				e.ctr = -1
			}
			allocated = true
			break
		}
	}
	if !allocated {
		for i := start; i < len(p.tables); i++ {
			e := &p.tables[i].entries[pr.indices[i]]
			if e.useful > 0 {
				e.useful--
			}
		}
	}
	// Periodic graceful reset of useful counters.
	p.tick++
	if p.tick&(1<<18-1) == 0 {
		for i := range p.tables {
			for j := range p.tables[i].entries {
				p.tables[i].entries[j].useful >>= 1
			}
		}
	}
}
