package tage

// ValueConfig sizes a ValuePredictor, the TAGE-like structure the paper
// uses as the Instruction Distance Predictor (§3.1): a tagged base table
// plus partially tagged components indexed with PC, global branch history
// and path history. Each entry stores a small value (the instruction
// distance, 8 bits suffice for a 192-entry ROB plus in-flight µops) and a
// saturating confidence counter (4 bits; prediction is used only when the
// counter is saturated).
type ValueConfig struct {
	LogBaseEntries int
	BaseTagBits    int
	Tagged         []TaggedSpec
	ValueBits      int
	ConfBits       int
}

// DefaultDistanceConfig mirrors the paper's distance predictor exactly:
// 4096-entry base (5b tag) and five tagged components of 512(10b),
// 512(10b), 256(11b), 128(11b), 128(12b) entries with 2/5/11/27/64 bits of
// global history mixed with 16 bits of path history; 8-bit distances and
// 4-bit confidence counters. Total ≈12.2-12.7KB depending on accounting.
func DefaultDistanceConfig() ValueConfig {
	return ValueConfig{
		LogBaseEntries: 12,
		BaseTagBits:    5,
		Tagged: []TaggedSpec{
			{LogEntries: 9, TagBits: 10, HistLen: 2, PathLen: 16},
			{LogEntries: 9, TagBits: 10, HistLen: 5, PathLen: 16},
			{LogEntries: 8, TagBits: 11, HistLen: 11, PathLen: 16},
			{LogEntries: 7, TagBits: 11, HistLen: 27, PathLen: 16},
			{LogEntries: 7, TagBits: 12, HistLen: 64, PathLen: 16},
		},
		ValueBits: 8,
		ConfBits:  4,
	}
}

type valueEntry struct {
	tag    uint32
	value  uint16
	conf   uint8
	useful uint8
}

type valueTable struct {
	spec    TaggedSpec
	entries []valueEntry
	mask    uint32
	tagMask uint32
}

// ValuePrediction is the result of a ValuePredictor lookup.
type ValuePrediction struct {
	// Value is the predicted payload (meaningful only when Hit).
	Value uint16
	// Confident reports whether the providing entry's confidence counter
	// is saturated; the consumer (SMB) acts only on confident hits.
	Confident bool
	// Hit reports whether any component's tag matched.
	Hit bool

	provider int // -1 = base table
	indices  [MaxComponents]uint32
	tags     [MaxComponents]uint32
	baseIdx  uint32
	baseTag  uint32
}

// ValuePredictor is a TAGE-like predictor for small integer payloads.
type ValuePredictor struct {
	cfg     ValueConfig
	base    []valueEntry
	baseMsk uint32
	baseTag uint32
	tables  []valueTable
	confMax uint8
	tick    uint32
}

// NewValuePredictor builds a ValuePredictor from cfg.
func NewValuePredictor(cfg ValueConfig) *ValuePredictor {
	p := &ValuePredictor{
		cfg:     cfg,
		base:    make([]valueEntry, 1<<cfg.LogBaseEntries),
		baseMsk: uint32(1)<<cfg.LogBaseEntries - 1,
		baseTag: uint32(1)<<cfg.BaseTagBits - 1,
		confMax: uint8(1)<<cfg.ConfBits - 1,
	}
	for _, spec := range cfg.Tagged {
		p.tables = append(p.tables, valueTable{
			spec:    spec,
			entries: make([]valueEntry, 1<<spec.LogEntries),
			mask:    uint32(1)<<spec.LogEntries - 1,
			tagMask: uint32(1)<<spec.TagBits - 1,
		})
	}
	return p
}

// Storage returns the predictor's storage in bits, counting tag, value and
// confidence per entry (the paper's accounting for the 12.2KB figure).
func (p *ValuePredictor) Storage() int {
	per := p.cfg.BaseTagBits + p.cfg.ValueBits + p.cfg.ConfBits
	bits := len(p.base) * per
	for _, t := range p.tables {
		bits += len(t.entries) * (t.spec.TagBits + p.cfg.ValueBits + p.cfg.ConfBits)
	}
	return bits
}

// Entries returns the total entry count across all components.
func (p *ValuePredictor) Entries() int {
	n := len(p.base)
	for _, t := range p.tables {
		n += len(t.entries)
	}
	return n
}

func (p *ValuePredictor) vindex(t *valueTable, pc uint64, h *History) uint32 {
	w := t.spec.LogEntries
	return (uint32(pc>>2) ^ uint32(pc>>(2+uint(w))) ^
		h.Fold(t.spec.HistLen, w) ^
		h.FoldPath(t.spec.PathLen, w)) & t.mask
}

func (p *ValuePredictor) vtag(t *valueTable, pc uint64, h *History) uint32 {
	w := t.spec.TagBits
	return (uint32(pc>>2) ^ h.Fold(t.spec.HistLen, w) ^ (h.Fold(t.spec.HistLen, w-1) << 1)) & t.tagMask
}

func (p *ValuePredictor) baseIndexTag(pc uint64) (uint32, uint32) {
	idx := uint32(pc>>2) & p.baseMsk
	tag := uint32(pc>>(2+uint(p.cfg.LogBaseEntries))) & p.baseTag
	return idx, tag
}

// Predict looks up the payload for pc under history h.
func (p *ValuePredictor) Predict(pc uint64, h *History) ValuePrediction {
	pr := ValuePrediction{provider: -1}
	pr.baseIdx, pr.baseTag = p.baseIndexTag(pc)
	for i := range p.tables {
		pr.indices[i] = p.vindex(&p.tables[i], pc, h)
		pr.tags[i] = p.vtag(&p.tables[i], pc, h)
	}
	for i := len(p.tables) - 1; i >= 0; i-- {
		e := &p.tables[i].entries[pr.indices[i]]
		if e.tag == pr.tags[i] && e.conf > 0 {
			pr.provider = i
			pr.Hit = true
			pr.Value = e.value
			pr.Confident = e.conf == p.confMax
			return pr
		}
	}
	be := &p.base[pr.baseIdx]
	if be.tag == pr.baseTag && be.conf > 0 {
		pr.Hit = true
		pr.Value = be.value
		pr.Confident = be.conf == p.confMax
	}
	return pr
}

// Train updates the predictor with the observed payload for pc under the
// prediction-time history h (the caller re-supplies the snapshot captured
// at fetch). Confidence is incremented on a match and reset to zero on a
// mismatch (§3.1); a mismatch in a tagged provider also triggers an
// allocation in a longer-history component, standard TAGE style.
func (p *ValuePredictor) Train(pc uint64, h *History, actual uint16) {
	pr := p.lookupState(pc, h)

	if pr.provider >= 0 {
		e := &p.tables[pr.provider].entries[pr.indices[pr.provider]]
		if e.value == actual {
			if e.conf < p.confMax {
				e.conf++
			}
			if e.useful < 3 {
				e.useful++
			}
			return
		}
		// Mismatch: reset confidence and retrain the value; allocate a
		// longer-history entry to capture a history-dependent pattern.
		e.conf = 1
		e.value = actual
		if e.useful > 0 {
			e.useful--
		}
		p.allocateLonger(&pr, actual)
		return
	}

	// Base provider (or total miss).
	be := &p.base[pr.baseIdx]
	if be.tag == pr.baseTag && be.conf > 0 {
		if be.value == actual {
			if be.conf < p.confMax {
				be.conf++
			}
			return
		}
		be.conf = 1
		be.value = actual
		p.allocateLonger(&pr, actual)
		return
	}
	// Cold miss: claim the base entry.
	be.tag = pr.baseTag
	be.value = actual
	be.conf = 1
}

// lookupState recomputes indices/tags and the providing component without
// returning a user-facing prediction.
func (p *ValuePredictor) lookupState(pc uint64, h *History) ValuePrediction {
	pr := ValuePrediction{provider: -1}
	pr.baseIdx, pr.baseTag = p.baseIndexTag(pc)
	for i := range p.tables {
		pr.indices[i] = p.vindex(&p.tables[i], pc, h)
		pr.tags[i] = p.vtag(&p.tables[i], pc, h)
	}
	for i := len(p.tables) - 1; i >= 0; i-- {
		e := &p.tables[i].entries[pr.indices[i]]
		if e.tag == pr.tags[i] && e.conf > 0 {
			pr.provider = i
			break
		}
	}
	return pr
}

func (p *ValuePredictor) allocateLonger(pr *ValuePrediction, actual uint16) {
	start := pr.provider + 1
	for i := start; i < len(p.tables); i++ {
		e := &p.tables[i].entries[pr.indices[i]]
		if e.useful == 0 {
			e.tag = pr.tags[i]
			e.value = actual
			e.conf = 1
			return
		}
	}
	for i := start; i < len(p.tables); i++ {
		e := &p.tables[i].entries[pr.indices[i]]
		if e.useful > 0 {
			e.useful--
		}
	}
	p.tick++
	if p.tick&(1<<16-1) == 0 {
		for i := range p.tables {
			for j := range p.tables[i].entries {
				p.tables[i].entries[j].useful >>= 1
			}
		}
	}
}
