// Package tage implements the TAgged GEometric-history prediction framework
// of Seznec & Michaud that the paper uses twice: as the front-end branch
// direction predictor (1 base + 12 tagged components, ~15K entries) and as
// the Instruction Distance Predictor for Speculative Memory Bypassing
// (1 base + 5 tagged components, §3.1).
//
// The package provides the shared machinery (global branch history, path
// history, history folding, tagged-table geometry) plus two concrete
// predictors: BranchPredictor (binary outcome, signed counters) and
// ValuePredictor (small integer payload with a saturating confidence
// counter, as the distance predictor requires).
package tage

// MaxHistoryBits is the longest supported global history. 256 bits covers
// the longest component of the paper's branch TAGE and far exceeds the
// 64 bits the distance predictor needs.
const MaxHistoryBits = 256

const historyWords = MaxHistoryBits / 64

// History carries the speculative global branch history and path history.
// It is a small value type so the core can checkpoint it per in-flight
// branch and restore it on a pipeline flush with a plain assignment —
// exactly the checkpoint-based recovery model the paper assumes (§4.1).
type History struct {
	bits [historyWords]uint64 // bit 0 of word 0 is the most recent outcome
	path uint64               // 1 bit of branch PC per branch, newest in bit 0
}

// Push records one branch outcome and one path bit.
func (h *History) Push(taken bool, pc uint64) {
	carry := uint64(0)
	if taken {
		carry = 1
	}
	for i := 0; i < historyWords; i++ {
		next := h.bits[i] >> 63
		h.bits[i] = h.bits[i]<<1 | carry
		carry = next
	}
	h.path = h.path<<1 | ((pc >> 2) & 1)
}

// Fold compresses the most recent length bits of global history into width
// bits by XOR-folding fixed-size chunks. width must be in (0,32]; length
// may be 0 (returns 0) up to MaxHistoryBits.
//
// Fold dominates the simulator's front-end cost (every TAGE component of
// both the branch and the distance predictor folds per lookup), so chunks
// are extracted with word-level shifts rather than bit by bit: chunk i is
// bits [i*width, i*width+n) of the history, which spans at most two words
// because width <= 32.
func (h *History) Fold(length, width int) uint32 {
	if length <= 0 || width <= 0 {
		return 0
	}
	if length > MaxHistoryBits {
		length = MaxHistoryBits
	}
	var folded uint32
	mask := uint32(1)<<width - 1
	for start := 0; start < length; start += width {
		n := width
		if start+n > length {
			n = length - start
		}
		w, off := start>>6, uint(start&63)
		chunk := h.bits[w] >> off
		if int(off)+n > 64 {
			chunk |= h.bits[w+1] << (64 - off)
		}
		folded ^= uint32(chunk) & (uint32(1)<<n - 1)
	}
	return folded & mask
}

// FoldPath compresses the most recent length path bits into width bits.
func (h *History) FoldPath(length, width int) uint32 {
	if length <= 0 || width <= 0 {
		return 0
	}
	if length > 64 {
		length = 64
	}
	var folded uint32
	mask := uint32(1)<<width - 1
	p := h.path & (^uint64(0) >> (64 - uint(length)))
	for p != 0 {
		folded ^= uint32(p) & mask
		p >>= uint(width)
	}
	return folded & mask
}

// Bits returns the low 64 bits of global history (newest outcome in bit 0);
// used by the NoSQ-style hashed distance table (§3.1 footnote 4).
func (h *History) Bits() uint64 { return h.bits[0] }

// Path returns the low 64 bits of path history.
func (h *History) Path() uint64 { return h.path }
