// Package branch assembles the front-end control-flow prediction stack of
// Table 1: a TAGE direction predictor (1+12 components, ~15K entries), a
// 2-way set-associative 4K-entry BTB and a 32-entry return address stack.
//
// The package owns the speculative global history. The core checkpoints a
// HistorySnapshot per in-flight branch and restores it on a squash, which
// is the same checkpoint-based recovery model the renamer uses (§4.1).
package branch

import (
	"repro/internal/isa"
	"repro/internal/tage"
)

// Config sizes the front-end predictors.
type Config struct {
	TAGE       tage.BranchConfig
	BTBEntries int // total entries (2-way)
	BTBWays    int
	RASEntries int
}

// DefaultConfig mirrors Table 1.
func DefaultConfig() Config {
	return Config{
		TAGE:       tage.DefaultBranchConfig(),
		BTBEntries: 4096,
		BTBWays:    2,
		RASEntries: 32,
	}
}

type btbEntry struct {
	valid  bool
	tag    uint64
	target uint64
	lru    uint8
}

// rasJournalLen bounds how many RAS pushes can separate a live snapshot
// from the present. Snapshots belong to in-flight branches, so the
// distance is bounded by the front-end queue plus the ROB (~700 µops);
// the ring leaves a generous margin and Restore panics on overflow
// rather than silently corrupting state.
const rasJournalLen = 4096

// rasUndo records the value a RAS push overwrote, so a snapshot restore
// can rewind the stack contents exactly.
type rasUndo struct {
	slot int32
	old  uint64
}

// Predictor is the complete front-end branch prediction unit.
type Predictor struct {
	cfg  Config
	tage *tage.BranchPredictor
	btb  []btbEntry // sets × ways, flattened
	sets int

	ras     []uint64
	rasTop  int
	rasJrnl []rasUndo // push-undo ring
	rasJPos uint64    // total pushes journaled

	hist tage.History

	// Stats
	Lookups     uint64
	CondLookups uint64
	CondMispred uint64
	BTBMisses   uint64
}

// New builds a Predictor from cfg.
func New(cfg Config) *Predictor {
	sets := cfg.BTBEntries / cfg.BTBWays
	return &Predictor{
		cfg:     cfg,
		tage:    tage.NewBranchPredictor(cfg.TAGE),
		btb:     make([]btbEntry, cfg.BTBEntries),
		sets:    sets,
		ras:     make([]uint64, cfg.RASEntries),
		rasJrnl: make([]rasUndo, rasJournalLen),
	}
}

// Snapshot captures the speculative history and RAS state so the core can
// restore them on a pipeline flush. RAS content is covered: the paper's
// 32-entry RAS is small enough that full checkpointing is the realistic
// recovery model for a checkpointed core. Instead of copying the stack
// into every snapshot (one allocation per fetched branch), the snapshot
// records the push-journal position; Restore rewinds the journal,
// undoing every push taken since, which reproduces the full-copy
// semantics exactly.
type Snapshot struct {
	Hist   tage.History
	RASTop int
	// RASJPos is the push-journal position at capture time.
	RASJPos uint64
}

// Snapshot returns the current speculative front-end state.
func (p *Predictor) Snapshot() Snapshot {
	return Snapshot{Hist: p.hist, RASTop: p.rasTop, RASJPos: p.rasJPos}
}

// Restore rewinds the speculative front-end state to s. Snapshots must be
// restored in reverse order of capture (each restore may only rewind),
// which is how checkpoint recovery uses them.
func (p *Predictor) Restore(s *Snapshot) {
	if s.RASJPos > p.rasJPos {
		panic("branch: snapshot restore must rewind, not advance")
	}
	if p.rasJPos-s.RASJPos > uint64(len(p.rasJrnl)) {
		panic("branch: RAS undo journal overflow")
	}
	for j := p.rasJPos; j > s.RASJPos; j-- {
		u := &p.rasJrnl[(j-1)%uint64(len(p.rasJrnl))]
		p.ras[u.slot] = u.old
	}
	p.rasJPos = s.RASJPos
	p.hist = s.Hist
	p.rasTop = s.RASTop
}

// RestoreCommitted overwrites the speculative front-end state with the
// committed history and RAS contents (flush-at-commit recovery, §4.1).
// Every outstanding snapshot is dead after such a flush, so the journal
// continues from the current position.
func (p *Predictor) RestoreCommitted(hist tage.History, ras []uint64, top int) {
	p.hist = hist
	copy(p.ras, ras)
	p.rasTop = top
}

// History exposes the current speculative history (for the SMB distance
// predictor, which indexes on the same global history, §3.1).
func (p *Predictor) History() *tage.History { return &p.hist }

// Prediction is the front-end's verdict for one branch µop.
type Prediction struct {
	Taken  bool
	Target uint64
	// TAGE carries the direction predictor's update state for
	// conditional branches.
	TAGE tage.BranchPrediction
	// HistAtPredict is the history before this branch was inserted;
	// the trainer needs it at resolve time.
	HistAtPredict tage.History
}

// Predict predicts the branch µop u and speculatively updates the history
// and RAS. The returned Prediction must be handed back to Resolve.
func (p *Predictor) Predict(u *isa.Uop) Prediction {
	p.Lookups++
	pr := Prediction{HistAtPredict: p.hist}

	target, btbHit := p.btbLookup(u.PC)

	switch u.Kind {
	case isa.BrCond:
		p.CondLookups++
		pr.TAGE = p.tage.Predict(u.PC, &p.hist)
		pr.Taken = pr.TAGE.Taken
		if pr.Taken {
			if btbHit {
				pr.Target = target
			} else {
				// No target known: front-end cannot redirect; treat
				// as not-taken and let execute fix it up.
				p.BTBMisses++
				pr.Taken = false
			}
		}
		p.hist.Push(pr.Taken, u.PC)
	case isa.BrUncond:
		pr.Taken = true
		if btbHit {
			pr.Target = target
		} else {
			p.BTBMisses++
			pr.Target = u.FallThrough // wrong; fixed at execute
		}
	case isa.BrCall:
		pr.Taken = true
		p.rasPush(u.FallThrough)
		if btbHit {
			pr.Target = target
		} else {
			p.BTBMisses++
			pr.Target = u.FallThrough
		}
	case isa.BrRet:
		pr.Taken = true
		pr.Target = p.rasPop()
	}
	if !pr.Taken {
		pr.Target = u.FallThrough
	}
	return pr
}

// Resolve trains the predictors with the architecturally-correct outcome.
// mispredicted is returned for the caller's accounting (direction OR
// target mismatch).
func (p *Predictor) Resolve(u *isa.Uop, pr *Prediction) bool {
	misp := pr.Taken != u.Taken || (u.Taken && pr.Target != u.Target)
	if u.Kind == isa.BrCond {
		p.tage.Update(u.PC, &pr.TAGE, u.Taken)
		if pr.TAGE.Taken != u.Taken {
			p.CondMispred++
		}
	}
	if u.Taken {
		p.btbInsert(u.PC, u.Target)
	}
	return misp
}

// FixHistoryAfterResolve re-pushes the corrected outcome after a squash
// restored the pre-branch history.
func (p *Predictor) FixHistoryAfterResolve(u *isa.Uop) {
	if u.Kind == isa.BrCond {
		p.hist.Push(u.Taken, u.PC)
	}
	if u.Kind == isa.BrCall {
		p.rasPush(u.FallThrough)
	}
	if u.Kind == isa.BrRet {
		p.rasPop()
	}
}

func (p *Predictor) btbSet(pc uint64) int { return int((pc >> 2) % uint64(p.sets)) }

func (p *Predictor) btbLookup(pc uint64) (uint64, bool) {
	set := p.btbSet(pc)
	base := set * p.cfg.BTBWays
	for w := 0; w < p.cfg.BTBWays; w++ {
		e := &p.btb[base+w]
		if e.valid && e.tag == pc {
			e.lru = 0
			for w2 := 0; w2 < p.cfg.BTBWays; w2++ {
				if w2 != w {
					p.btb[base+w2].lru++
				}
			}
			return e.target, true
		}
	}
	return 0, false
}

func (p *Predictor) btbInsert(pc, target uint64) {
	set := p.btbSet(pc)
	base := set * p.cfg.BTBWays
	victim := base
	for w := 0; w < p.cfg.BTBWays; w++ {
		e := &p.btb[base+w]
		if e.valid && e.tag == pc {
			e.target = target
			return
		}
		if !e.valid {
			victim = base + w
			break
		}
		if e.lru > p.btb[victim].lru {
			victim = base + w
		}
	}
	p.btb[victim] = btbEntry{valid: true, tag: pc, target: target, lru: 0}
}

func (p *Predictor) rasPush(addr uint64) {
	p.rasTop = (p.rasTop + 1) % len(p.ras)
	p.rasJrnl[p.rasJPos%uint64(len(p.rasJrnl))] = rasUndo{slot: int32(p.rasTop), old: p.ras[p.rasTop]}
	p.rasJPos++
	p.ras[p.rasTop] = addr
}

func (p *Predictor) rasPop() uint64 {
	addr := p.ras[p.rasTop]
	p.rasTop--
	if p.rasTop < 0 {
		p.rasTop = len(p.ras) - 1
	}
	return addr
}
