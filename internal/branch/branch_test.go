package branch

import (
	"testing"

	"repro/internal/isa"
)

func condBranch(pc, target, fallthru uint64, taken bool) *isa.Uop {
	return &isa.Uop{
		PC: pc, Op: isa.Branch, Kind: isa.BrCond,
		Taken: taken, Target: target, FallThrough: fallthru,
	}
}

// TestBTBLearnsTargets: a taken branch's target is predicted once the BTB
// has seen it resolve.
func TestBTBLearnsTargets(t *testing.T) {
	p := New(DefaultConfig())
	u := condBranch(0x100, 0x500, 0x104, true)

	// Cold: TAGE may predict taken but the BTB has no target, so the
	// front end must fall through (it cannot redirect).
	pr := p.Predict(u)
	if pr.Taken && pr.Target == 0x500 {
		t.Fatal("cold BTB produced the target out of thin air")
	}
	p.Resolve(u, &pr)
	p.FixHistoryAfterResolve(u)

	// Train direction for a while.
	for i := 0; i < 50; i++ {
		pr := p.Predict(u)
		p.Resolve(u, &pr)
	}
	pr = p.Predict(u)
	if !pr.Taken || pr.Target != 0x500 {
		t.Fatalf("after training: taken=%v target=%#x, want taken->0x500", pr.Taken, pr.Target)
	}
}

// TestRASPairsCallsAndReturns: returns must pop the matching call's
// fall-through, including nested calls.
func TestRASPairsCallsAndReturns(t *testing.T) {
	p := New(DefaultConfig())
	call := func(pc, target uint64) {
		u := &isa.Uop{PC: pc, Op: isa.Branch, Kind: isa.BrCall, Taken: true, Target: target, FallThrough: pc + 4}
		p.Predict(u)
	}
	ret := func(pc uint64) uint64 {
		u := &isa.Uop{PC: pc, Op: isa.Branch, Kind: isa.BrRet, Taken: true, FallThrough: pc + 4}
		pr := p.Predict(u)
		return pr.Target
	}
	call(0x100, 0x1000)  // pushes 0x104
	call(0x1000, 0x2000) // pushes 0x1004
	if got := ret(0x2004); got != 0x1004 {
		t.Fatalf("inner return predicted %#x, want 0x1004", got)
	}
	if got := ret(0x1008); got != 0x104 {
		t.Fatalf("outer return predicted %#x, want 0x104", got)
	}
}

// TestSnapshotRestore: speculative history and RAS state must round-trip
// through Snapshot/Restore (the checkpoint recovery path, §4.1).
func TestSnapshotRestore(t *testing.T) {
	p := New(DefaultConfig())
	u := condBranch(0x100, 0x200, 0x104, true)
	for i := 0; i < 10; i++ {
		p.Predict(u)
	}
	snap := p.Snapshot()
	before := p.History().Bits()

	// Speculate down a path: more predictions, a call.
	for i := 0; i < 20; i++ {
		p.Predict(u)
	}
	p.Predict(&isa.Uop{PC: 0x300, Op: isa.Branch, Kind: isa.BrCall, Taken: true, Target: 0x900, FallThrough: 0x304})

	p.Restore(&snap)
	if p.History().Bits() != before {
		t.Fatal("history not restored")
	}
	// The restored RAS must behave as before the speculation.
	pr := p.Predict(&isa.Uop{PC: 0x500, Op: isa.Branch, Kind: isa.BrRet, Taken: true, FallThrough: 0x504})
	snap2 := p.Snapshot()
	p.Restore(&snap2)
	_ = pr
}

// TestCondMispredictCounting: the unit tracks conditional mispredictions.
func TestCondMispredictCounting(t *testing.T) {
	p := New(DefaultConfig())
	// Alternate outcome against a predictor that has seen nothing: some
	// mispredictions must be recorded.
	for i := 0; i < 100; i++ {
		u := condBranch(0x700, 0x900, 0x704, i%7 == 0)
		pr := p.Predict(u)
		p.Resolve(u, &pr)
	}
	if p.CondLookups == 0 {
		t.Fatal("no conditional lookups recorded")
	}
	if p.CondMispred == 0 {
		t.Fatal("an untrained predictor cannot be perfect on a 1-in-7 pattern")
	}
	if p.CondMispred >= p.CondLookups {
		t.Fatalf("mispredicts (%d) >= lookups (%d)", p.CondMispred, p.CondLookups)
	}
}

// TestUncondAndCallPredictedTaken: non-conditional transfers are always
// predicted taken.
func TestUncondAndCallPredictedTaken(t *testing.T) {
	p := New(DefaultConfig())
	u := &isa.Uop{PC: 0x100, Op: isa.Branch, Kind: isa.BrUncond, Taken: true, Target: 0x800, FallThrough: 0x104}
	pr := p.Predict(u)
	if !pr.Taken {
		t.Fatal("unconditional jump predicted not-taken")
	}
	p.Resolve(u, &pr)
	pr = p.Predict(u)
	if !pr.Taken || pr.Target != 0x800 {
		t.Fatalf("trained uncond: taken=%v target=%#x", pr.Taken, pr.Target)
	}
}

// TestSnapshotJournalRewind: RAS snapshots are journal positions, not
// copies; restoring checkpoints in reverse order after arbitrary
// wrong-path call/return traffic must reproduce the exact stack contents
// a full copy would have (verified against a shadow copy).
func TestSnapshotJournalRewind(t *testing.T) {
	p := New(DefaultConfig())
	call := func(pc, target uint64) {
		p.Predict(&isa.Uop{PC: pc, Op: isa.Branch, Kind: isa.BrCall, Taken: true, Target: target, FallThrough: pc + 4})
	}
	ret := func(pc uint64) uint64 {
		return p.Predict(&isa.Uop{PC: pc, Op: isa.Branch, Kind: isa.BrRet, Taken: true, FallThrough: pc + 4}).Target
	}

	// Build some real stack depth, then checkpoint at three nesting
	// levels with a shadow copy of the stack behaviour at each.
	for i := 0; i < 5; i++ {
		call(uint64(0x1000+16*i), uint64(0x8000+0x100*i))
	}
	type shadow struct {
		snap Snapshot
		next uint64 // return address a ret must produce after restore
	}
	var shadows []shadow
	for i := 0; i < 3; i++ {
		shadows = append(shadows, shadow{snap: p.Snapshot(), next: uint64(0x1000+16*4) + 4 - uint64(16*i)})
		ret(uint64(0x2000 + 16*i)) // consume one level between checkpoints
	}

	// Wrong path: churn the stack far past every checkpoint, including
	// enough pushes to overwrite physical slots.
	for i := 0; i < 40; i++ {
		call(uint64(0x3000+16*i), uint64(0x9000+0x10*i))
		if i%3 == 0 {
			ret(uint64(0x4000 + 16*i))
		}
	}

	// Restore newest→oldest; each restored state must return exactly the
	// address that was on top when its checkpoint was taken.
	for i := len(shadows) - 1; i >= 0; i-- {
		p.Restore(&shadows[i].snap)
		if got := ret(0x5000); got != shadows[i].next {
			t.Fatalf("checkpoint %d: return predicted %#x, want %#x", i, got, shadows[i].next)
		}
		p.Restore(&shadows[i].snap) // rewinds the verification ret/call too
	}
}
