package experiments

import (
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/refcount"
	"repro/internal/sim"
)

// The experiment tests verify the REPRODUCTION SHAPES at reduced run
// lengths — who wins, where the curves saturate — not absolute numbers.

// testRunner is shared by every test in the package (set up in
// TestMain): the sim.Runner deduplicates by (benchmark, config, run
// lengths), so the baseline sweep and every overlapping configuration
// simulate exactly once for the whole suite instead of once per test.
var testRunner *sim.Runner

func TestMain(m *testing.M) {
	testRunner = sim.New()
	os.Exit(m.Run())
}

func quickSession(t *testing.T) *Session {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment sweeps skipped in -short mode")
	}
	return NewSessionWith(QuickRunLengths, testRunner)
}

// TestShortSmoke keeps a fast end-to-end shape check alive in -short
// mode: one baseline and one combined run on a single benchmark, and the
// headline direction (sharing does not tank IPC) holds.
func TestShortSmoke(t *testing.T) {
	s := NewSessionWith(RunLengths{Warmup: 2_000, Measure: 15_000}, testRunner)
	base := s.run("crafty", core.DefaultConfig())
	opt := s.run("crafty", combinedConfig(24))
	if base.IPC <= 0 || base.S.Committed < 15_000 {
		t.Fatalf("degenerate baseline run: IPC=%v committed=%d", base.IPC, base.S.Committed)
	}
	if opt.IPC < 0.8*base.IPC {
		t.Fatalf("ME+SMB lost >20%% IPC on crafty: %.3f vs %.3f", opt.IPC, base.IPC)
	}
}

func TestTable1Renders(t *testing.T) {
	s := Table1().String()
	for _, want := range []string{"192-entry ROB", "TAGE", "Store Sets", "DDR3"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestStorageTableMatchesPaperArithmetic(t *testing.T) {
	// Spot checks of the §4.2/§4.3.3 numbers through the table's inputs.
	if bits := refcount.MatrixScheme(192, 168, 2); bits != 64512 {
		t.Fatalf("Roth matrix = %d bits, want 2x192x168 = 64512 (≈7.8KB)", bits)
	}
	if kb := refcount.KB(refcount.MatrixScheme(192, 168, 2)); kb < 7.7 || kb > 7.9 {
		t.Fatalf("Roth matrix = %.2fKB, want ≈7.8KB", kb)
	}
	if kb := refcount.KB(refcount.SchedulerMatrix(60)); kb < 0.42 || kb > 0.46 {
		t.Fatalf("scheduler matrix = %.2fKB, want ≈0.44KB", kb)
	}
	cpu, ck := refcount.ISRBStorage(32, 3)
	if cpu != 480 || ck != 96 {
		t.Fatalf("ISRB(32,3) = %d/%d bits, want 480/96", cpu, ck)
	}
	if refcount.CountersCheckpointBits(336, 2) < 600 {
		t.Fatal("per-register counter checkpoint must exceed 600 bits (§4.2)")
	}
	s := StorageTable().String()
	if !strings.Contains(s, "480 bits") || !strings.Contains(s, "96 bits") {
		t.Fatalf("storage table missing ISRB numbers:\n%s", s)
	}
}

// TestFig5aShape: ME speedups saturate with ISRB size and the gmean is
// small but positive (§6.1: "speedups are generally limited, 1% gmean").
func TestFig5aShape(t *testing.T) {
	s := quickSession(t)
	_, series := s.Fig5a()
	byName := map[string]Series{}
	for _, sr := range series {
		byName[sr.Name] = sr
	}
	unl := byName["ME-unlimited"]
	if unl.GMean < 1.001 || unl.GMean > 1.06 {
		t.Fatalf("ME unlimited gmean %.4f outside the small-positive band", unl.GMean)
	}
	// 16 entries capture most of the unlimited potential (§6.1).
	if byName["ME-16"].GMean < unl.GMean-0.01 {
		t.Fatalf("16-entry ISRB gmean %.4f far below unlimited %.4f", byName["ME-16"].GMean, unl.GMean)
	}
	// crafty is the top integer gainer.
	if unl.Per["crafty"] < 1.02 {
		t.Fatalf("crafty ME speedup %.4f, want the suite's top-tier gain", unl.Per["crafty"])
	}
}

// TestFig5bShape: elimination rate does not imply gain (§6.1's vortex
// vs namd contrast).
func TestFig5bShape(t *testing.T) {
	s := quickSession(t)
	_, rates := s.Fig5b()
	_, series := s.Fig5a()
	var unl Series
	for _, sr := range series {
		if sr.Name == "ME-unlimited" {
			unl = sr
		}
	}
	if rates["vortex"] < 0.04 {
		t.Fatalf("vortex elimination rate %.3f, want the suite's high end", rates["vortex"])
	}
	if rates["crafty"] <= rates["namd"] {
		t.Fatalf("crafty rate %.3f should exceed namd rate %.3f", rates["crafty"], rates["namd"])
	}
	// vortex: high rate, modest gain — gain per eliminated µop must be
	// far below crafty's.
	vortexYield := (unl.Per["vortex"] - 1) / rates["vortex"]
	craftyYield := (unl.Per["crafty"] - 1) / rates["crafty"]
	if vortexYield >= craftyYield {
		t.Fatalf("vortex gain-per-elimination (%.3f) >= crafty's (%.3f): the §6.1 decorrelation is lost",
			vortexYield, craftyYield)
	}
}

// TestFig6aShape: SMB needs more ISRB entries than ME; TAGE beats the
// NoSQ-style predictor overall; key benchmarks gain substantially.
func TestFig6aShape(t *testing.T) {
	s := quickSession(t)
	_, series := s.Fig6a()
	byName := map[string]Series{}
	for _, sr := range series {
		byName[sr.Name] = sr
	}
	unl, nosq := byName["SMB-unlimited"], byName["SMB-NoSQ-unl"]
	if unl.GMean <= 1.005 {
		t.Fatalf("SMB gmean %.4f: no overall gain", unl.GMean)
	}
	if nosq.GMean >= unl.GMean {
		t.Fatalf("NoSQ-style predictor gmean %.4f >= TAGE %.4f (§3.1's comparison inverted)",
			nosq.GMean, unl.GMean)
	}
	// 24 entries capture nearly the full potential (§6.2).
	if byName["SMB-24"].GMean < unl.GMean-0.02 {
		t.Fatalf("24-entry gmean %.4f too far below unlimited %.4f", byName["SMB-24"].GMean, unl.GMean)
	}
	// 8 entries lose part of it.
	if byName["SMB-8"].GMean > byName["SMB-24"].GMean+1e-9 {
		t.Fatalf("8-entry gmean above 24-entry gmean")
	}
	for _, b := range []string{"hmmer", "wupwise", "gamess"} {
		if unl.Per[b] < 1.05 {
			t.Errorf("%s SMB speedup %.4f, want a headline gain", b, unl.Per[b])
		}
	}
}

// TestFig6bShape: SMB reduces traps and false dependencies (with zero
// warmup so the one-time training events are visible).
func TestFig6bShape(t *testing.T) {
	s := NewSessionWith(RunLengths{Warmup: 0, Measure: 60_000}, testRunner)
	if testing.Short() {
		t.Skip("short mode")
	}
	base := s.Baseline()
	opt := s.runAll(func(string) core.Config { return smbConfig(0) })
	var baseTraps, optTraps, baseFD, optFD uint64
	for i := range base {
		baseTraps += base[i].S.MemTraps
		optTraps += opt[i].S.MemTraps
		baseFD += base[i].S.FalseDeps
		optFD += opt[i].S.FalseDeps
	}
	if baseTraps == 0 || baseFD == 0 {
		t.Fatalf("baseline shows no traps (%d) or false deps (%d)", baseTraps, baseFD)
	}
	if optFD >= baseFD {
		t.Fatalf("SMB did not reduce false dependencies: %d -> %d", baseFD, optFD)
	}
	if optTraps > baseTraps {
		t.Fatalf("SMB increased memory traps: %d -> %d", baseTraps, optTraps)
	}
}

// TestFig6cShape: lazy reclaim is marginal overall and hurts with a
// 24-entry ISRB (committed bypasses steal entries, §3.3/§6.2).
func TestFig6cShape(t *testing.T) {
	s := quickSession(t)
	_, series := s.Fig6c()
	byName := map[string]Series{}
	for _, sr := range series {
		byName[sr.Name] = sr
	}
	eU, lU := byName["eager-unlimited"].GMean, byName["lazy-unlimited"].GMean
	if lU < eU-0.02 {
		t.Fatalf("lazy reclaim (unlimited ISRB) lost %.4f vs eager %.4f; should be ~marginal", lU, eU)
	}
	e24, l24 := byName["eager-24"].GMean, byName["lazy-24"].GMean
	if l24 > e24+0.02 {
		t.Fatalf("lazy reclaim with a 24-entry ISRB unexpectedly helps a lot: %.4f vs %.4f", l24, e24)
	}
}

// TestFig7Shape: combined ME+SMB; 32 entries ≈ unlimited; 24 a good
// trade-off; the paper's gmean band.
func TestFig7Shape(t *testing.T) {
	s := quickSession(t)
	_, series := s.Fig7()
	byName := map[string]Series{}
	for _, sr := range series {
		byName[sr.Name] = sr
	}
	unl := byName["ME+SMB-unlimited"].GMean
	if unl < 1.01 {
		t.Fatalf("combined gmean %.4f: too small", unl)
	}
	if byName["ME+SMB-32"].GMean < unl-0.015 {
		t.Fatalf("32-entry combined gmean %.4f far below unlimited %.4f",
			byName["ME+SMB-32"].GMean, unl)
	}
	if byName["ME+SMB-16"].GMean > byName["ME+SMB-24"].GMean+0.01 {
		t.Fatal("16 entries outperform 24: pressure ordering inverted")
	}
}

// TestStoreOnlyShape: §6.2 — disabling load-load bypassing notably hurts
// the named benchmarks.
func TestStoreOnlyShape(t *testing.T) {
	s := quickSession(t)
	_, series := s.StoreOnly()
	full, so := series[0], series[1]
	if so.GMean > full.GMean+1e-9 {
		t.Fatalf("store-only gmean %.4f above full %.4f", so.GMean, full.GMean)
	}
	drops := 0
	for _, b := range []string{"astar", "wupwise", "applu", "bzip", "hmmer"} {
		if full.Per[b]-so.Per[b] > 0.01 {
			drops++
		}
	}
	if drops < 3 {
		t.Fatalf("only %d of the load-load-sensitive benchmarks dropped under store-only", drops)
	}
}

// TestCounterWidthShape: §6.3 — 3-bit counters land near the unlimited
// 32-bit result; 1-bit counters lose more.
func TestCounterWidthShape(t *testing.T) {
	s := quickSession(t)
	_, gmeans := s.CounterWidth()
	if gmeans[3] < gmeans[0]-0.02 {
		t.Fatalf("3-bit counters gmean %.4f too far below unlimited %.4f", gmeans[3], gmeans[0])
	}
	if gmeans[1] > gmeans[3]+1e-9 {
		t.Fatalf("1-bit counters (%.4f) beat 3-bit (%.4f)", gmeans[1], gmeans[3])
	}
}

// TestDDTSizingShape: the 1K-entry DDT stays close to unlimited overall.
func TestDDTSizingShape(t *testing.T) {
	s := quickSession(t)
	_, series := s.DDTSizing()
	unl, small := series[0], series[2]
	if small.GMean < unl.GMean-0.03 {
		t.Fatalf("1K DDT gmean %.4f too far below unlimited %.4f (§3.1: within ~2.2%%)",
			small.GMean, unl.GMean)
	}
}

// TestISRBTrafficTable renders and contains the average row.
func TestISRBTrafficTable(t *testing.T) {
	s := quickSession(t)
	out := s.ISRBTraffic().String()
	if !strings.Contains(out, "average") {
		t.Fatalf("traffic table missing average row:\n%s", out)
	}
}

func TestBaselineShape(t *testing.T) {
	s := NewSessionWith(RunLengths{Warmup: 0, Measure: 60_000}, testRunner)
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := s.BaselineShape(); err != nil {
		t.Fatal(err)
	}
}

// TestExtensionROB512Lazy: §6.2's note — committed-instruction bypassing
// stays marginal even with a 512-entry ROB.
func TestExtensionROB512Lazy(t *testing.T) {
	s := quickSession(t)
	_, gmeans := s.ROB512Lazy()
	if gmeans["rob512-lazy"] < gmeans["rob512-eager"]-0.03 {
		t.Fatalf("lazy reclaim at ROB 512 lost a lot: %.4f vs %.4f",
			gmeans["rob512-lazy"], gmeans["rob512-eager"])
	}
	if gmeans["rob512-lazy"] > gmeans["rob512-eager"]+0.05 {
		t.Fatalf("lazy reclaim at ROB 512 helps a lot (%.4f vs %.4f); the paper found it marginal",
			gmeans["rob512-lazy"], gmeans["rob512-eager"])
	}
}

// TestExtensionSingleBitME: §6.3 footnote 10 — ME-only works with 1-bit
// counters.
func TestExtensionSingleBitME(t *testing.T) {
	s := quickSession(t)
	_, gmeans := s.SingleBitME()
	if gmeans[1] < gmeans[3]-0.01 {
		t.Fatalf("single-bit ME gmean %.4f far below 3-bit %.4f", gmeans[1], gmeans[3])
	}
}

// TestExtensionDistanceHistory: history helps the distance predictor
// (pc-only must not beat the paper's geometry).
func TestExtensionDistanceHistory(t *testing.T) {
	s := quickSession(t)
	_, gmeans := s.DistanceHistorySweep()
	if gmeans["pc-only"] > gmeans["paper-2..64"]+0.01 {
		t.Fatalf("PC-only distance predictor (%.4f) beats the history-indexed one (%.4f)",
			gmeans["pc-only"], gmeans["paper-2..64"])
	}
}

// TestExtensionTrackerComparison: §4.2 quantified — the MIT (no SMB) must
// trail the ISRB; sequential-rollback counters must trail too; the RDA
// and unlimited match the ISRB closely.
func TestExtensionTrackerComparison(t *testing.T) {
	s := quickSession(t)
	_, gmeans := s.TrackerComparison()
	isrb := gmeans["ISRB-32x3b"]
	if gmeans["MIT-16"] >= isrb-0.005 {
		t.Fatalf("MIT gmean %.4f not clearly below ISRB %.4f despite losing SMB", gmeans["MIT-16"], isrb)
	}
	if gmeans["counters"] > gmeans["unlimited"]+1e-9 {
		t.Fatalf("sequential-rollback counters (%.4f) beat the checkpointable ideal (%.4f)",
			gmeans["counters"], gmeans["unlimited"])
	}
	if gmeans["RDA-32"] < isrb-0.02 {
		t.Fatalf("RDA gmean %.4f far below ISRB %.4f; they share mechanics", gmeans["RDA-32"], isrb)
	}
}
