package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/refcount"
	"repro/internal/smb"
	"repro/internal/stats"
)

// Table1 prints the machine configuration (the paper's Table 1).
func Table1() *stats.Table {
	cfg := core.DefaultConfig()
	t := stats.NewTable("Table 1: simulator configuration", "parameter", "value")
	add := func(k, v string) { t.AddRow(k, v) }
	add("front end", fmt.Sprintf("%d-wide fetch/decode/rename, %d-cycle front end", cfg.FetchWidth, cfg.FrontEndDepth))
	add("branch predictor", fmt.Sprintf("TAGE 1+%d components, %d entries; %d-entry 2-way BTB; %d-entry RAS",
		len(cfg.Branch.TAGE.Tagged), tageEntries(), cfg.Branch.BTBEntries, cfg.Branch.RASEntries))
	add("execution", fmt.Sprintf("%d-entry ROB, %d-entry IQ, %d/%d LQ/SQ, %d+%d INT/FP regs, %d-issue, %d-wide retire",
		cfg.ROBSize, cfg.IQSize, cfg.LQSize, cfg.SQSize, cfg.PhysRegsPerClass, cfg.PhysRegsPerClass,
		cfg.IssueWidth, cfg.CommitWidth))
	add("FUs", fmt.Sprintf("%dxALU(1c) %dxMulDiv(3c/25c*) %dxFP(3c) %dxFPMulDiv(5c/10c*) %dxLd/St %dxSt",
		cfg.NumALU, cfg.NumMulDiv, cfg.NumFP, cfg.NumFPMulDiv, cfg.NumLdStr, cfg.NumStr))
	add("memory dependence", fmt.Sprintf("Store Sets %d-SSIT/%d-LFST, not rolled back on squash",
		cfg.StoreSets.SSITEntries, cfg.StoreSets.LFSTEntries))
	add("STLF latency", fmt.Sprintf("%d cycles", cfg.STLFLatency))
	add("L1I", fmt.Sprintf("%dKB %d-way, %dc", cfg.Mem.L1I.SizeKB, cfg.Mem.L1I.Ways, cfg.Mem.L1I.Latency))
	add("L1D", fmt.Sprintf("%dKB %d-way, %dc, %d MSHRs", cfg.Mem.L1D.SizeKB, cfg.Mem.L1D.Ways, cfg.Mem.L1D.Latency, cfg.Mem.L1D.MSHRs))
	add("L2", fmt.Sprintf("%dKB %d-way, %dc, stride prefetcher degree %d", cfg.Mem.L2.SizeKB, cfg.Mem.L2.Ways, cfg.Mem.L2.Latency, cfg.Mem.PrefDegree))
	add("DRAM", "single channel DDR3-1600 (11-11-11), min 75 / max 185 cycles")
	add("distance predictor", "TAGE-like 1+5 components (§3.1) or NoSQ-like 2x4K")
	return t
}

func tageEntries() int {
	cfg := core.DefaultConfig()
	n := 1 << cfg.Branch.TAGE.LogBaseEntries
	for _, t := range cfg.Branch.TAGE.Tagged {
		n += 1 << t.LogEntries
	}
	return n
}

// Fig4 reports baseline IPC, memory traps and false memory dependencies
// per benchmark (the paper's Figure 4; traps and false deps are on a log
// scale there, so we report raw counts scaled per 100M µops).
func (s *Session) Fig4() *stats.Table {
	base := s.Baseline()
	t := stats.NewTable("Figure 4: baseline IPC, memory traps, false dependencies",
		"benchmark", "IPC", "traps/100M", "falsedeps/100M", "brMPKI")
	scale := 100e6 / float64(s.RL.Measure)
	for _, r := range base {
		t.AddRowF(r.Bench, r.IPC,
			uint64(float64(r.S.MemTraps)*scale),
			uint64(float64(r.S.FalseDeps)*scale),
			1000*float64(r.S.BranchMispredicts)/float64(r.S.Committed))
	}
	return t
}

// Fig5a: speedup of Move Elimination over the baseline for several ISRB
// sizes (the committed "fig5a" scenario).
func (s *Session) Fig5a() (*stats.Table, []Series) {
	return s.scenarioSeries("fig5a")
}

// Fig5b: percentage of renamed instructions eliminated (unlimited ISRB).
func (s *Session) Fig5b() (*stats.Table, map[string]float64) {
	opt := s.runAll(func(string) core.Config { return meConfig(0) })
	t := stats.NewTable("Figure 5b: % of committed µops eliminated (unlimited ISRB)",
		"benchmark", "% eliminated", "candidates", "eliminated")
	rates := make(map[string]float64)
	for _, r := range opt {
		rate := r.S.ElimRate()
		rates[r.Bench] = rate
		t.AddRowF(r.Bench, fmt.Sprintf("%.2f%%", 100*rate), r.ME.Candidates, r.ME.Eliminated)
	}
	return t, rates
}

// Fig6a: SMB speedup vs ISRB size, plus the NoSQ-style predictor curve
// (the committed "fig6a" scenario).
func (s *Session) Fig6a() (*stats.Table, []Series) {
	return s.scenarioSeries("fig6a")
}

// Fig6b: reduction of memory traps and false dependencies under SMB
// (unlimited ISRB, TAGE distance predictor), for benchmarks where those
// events occur reasonably often in the baseline.
func (s *Session) Fig6b() *stats.Table {
	base := s.Baseline()
	opt := s.runAll(func(string) core.Config { return smbConfig(0) })
	scale := 100e6 / float64(s.RL.Measure)
	// The paper's cutoffs: >=1K traps and >=10K false deps per 100M.
	minTraps := uint64(1000 / scale)
	minFD := uint64(10000 / scale)
	if minTraps == 0 {
		minTraps = 1
	}
	if minFD == 0 {
		minFD = 1
	}
	t := stats.NewTable("Figure 6b: SMB speedup vs trap/false-dep reduction (unlimited ISRB)",
		"benchmark", "speedup", "traps base", "traps SMB", "fdeps base", "fdeps SMB", "loads bypassed")
	for i, r := range base {
		if r.S.MemTraps < minTraps && r.S.FalseDeps < minFD {
			continue
		}
		t.AddRowF(r.Bench, stats.Pct(stats.Speedup(opt[i].IPC, r.IPC)),
			r.S.MemTraps, opt[i].S.MemTraps,
			r.S.FalseDeps, opt[i].S.FalseDeps,
			fmt.Sprintf("%.1f%%", 100*opt[i].S.BypassRate()))
	}
	return t
}

// Fig6c: eager vs lazy reclaim (bypassing from committed instructions),
// with an unlimited and a 24-entry ISRB (the committed "fig6c"
// scenario).
func (s *Session) Fig6c() (*stats.Table, []Series) {
	return s.scenarioSeries("fig6c")
}

// Fig7: combined ME+SMB speedup vs ISRB size (the committed "fig7"
// scenario).
func (s *Session) Fig7() (*stats.Table, []Series) {
	return s.scenarioSeries("fig7")
}

// DDTSizing compares the unlimited DDT with the paper's 1K-entry 5b-tag
// table (§3.1's "within 2.2% except hmmer" claim; the committed "ddt"
// scenario).
func (s *Session) DDTSizing() (*stats.Table, []Series) {
	return s.scenarioSeries("ddt")
}

// StoreOnly compares full SMB with store→load-only bypassing (§6.2; the
// committed "storeonly" scenario).
func (s *Session) StoreOnly() (*stats.Table, []Series) {
	return s.scenarioSeries("storeonly")
}

// CounterWidth sweeps the ISRB counter width for the combined
// configuration (§6.3: 3 bits within 1.3% worst-case of 32-bit fields).
func (s *Session) CounterWidth() (*stats.Table, map[int]float64) {
	base := s.Baseline()
	widths := []int{1, 2, 3, 8}
	gmeans := make(map[int]float64)
	var series []Series
	for _, w := range widths {
		opt := s.runAll(func(string) core.Config {
			cfg := core.DefaultConfig()
			cfg.ME.Enabled = true
			cfg.SMB.Enabled = true
			cfg.Tracker = core.TrackerConfig{Kind: core.TrackerISRB, Entries: 32, CounterBits: w}
			return cfg
		})
		sr := makeSeries(fmt.Sprintf("%d-bit", w), base, opt)
		series = append(series, sr)
		gmeans[w] = sr.GMean
	}
	unl := s.runAll(func(string) core.Config { return combinedConfig(0) })
	sr := makeSeries("unlimited-32b", base, unl)
	series = append(series, sr)
	gmeans[0] = sr.GMean
	return seriesTable("Counter width (§6.3): ME+SMB, 32-entry ISRB", base, series), gmeans
}

// ISRBTraffic reports the §6.3 port-pressure statistics for the combined
// configuration with a 32-entry ISRB.
func (s *Session) ISRBTraffic() *stats.Table {
	opt := s.runAll(func(string) core.Config {
		cfg := core.DefaultConfig()
		cfg.ME.Enabled = true
		cfg.SMB.Enabled = true
		cfg.Tracker = core.TrackerConfig{Kind: core.TrackerISRB, Entries: 32, CounterBits: 3}
		return cfg
	})
	t := stats.NewTable("ISRB traffic (§6.3): allocation/reclaim distances",
		"benchmark", "alloc dist", "reclaim dist", "reclaim b2b", "CAM skipped by flag")
	var ad, rd, b2b []float64
	for _, r := range opt {
		t.AddRowF(r.Bench,
			r.S.ShareDistance(), r.S.ReclaimCheckDistance(),
			fmt.Sprintf("%.1f%%", 100*r.S.ReclaimBackToBackRate()),
			r.S.ReclaimSkippedByFlag)
		if r.S.ShareAttempts > 1 {
			ad = append(ad, r.S.ShareDistance())
		}
		if r.S.ReclaimChecks > 1 {
			rd = append(rd, r.S.ReclaimCheckDistance())
			b2b = append(b2b, r.S.ReclaimBackToBackRate())
		}
	}
	t.AddRow("average",
		fmt.Sprintf("%.1f (min %.1f)", stats.Mean(ad), stats.Min(ad)),
		fmt.Sprintf("%.1f (min %.1f)", stats.Mean(rd), stats.Min(rd)),
		fmt.Sprintf("%.1f%% (max %.1f%%)", 100*stats.Mean(b2b), 100*stats.Max(b2b)), "")
	return t
}

// StorageTable reproduces the storage arithmetic of §4.2/§4.3.3/§3.1.
func StorageTable() *stats.Table {
	t := stats.NewTable("Storage accounting (§3.1, §4.2, §4.3.3)",
		"structure", "CPU storage", "per checkpoint")
	kb := func(bits int) string { return fmt.Sprintf("%.2fKB (%d bits)", refcount.KB(bits), bits) }
	bits := func(b int) string { return fmt.Sprintf("%d bits", b) }

	m := refcount.MatrixScheme(192, 168, 2)
	t.AddRow("Roth 2D matrix (Haswell: 192 ROB x 2x168 regs)", kb(m), "entire matrix")
	t.AddRow("baseline matrix scheduler (60x60)", kb(refcount.SchedulerMatrix(60)), "-")
	bm, bc := refcount.BattleMatrix(336, 4)
	t.AddRow("Battle et al. matrix (336 regs x 4 sharers)", kb(bm), bits(bc))
	for _, n := range []int{8, 16, 32} {
		cpu, ck := refcount.ISRBStorage(n, 3)
		t.AddRow(fmt.Sprintf("ISRB %d entries, 3-bit counters", n), bits(cpu), bits(ck))
	}
	t.AddRow("x86_64 rename map checkpoint", "-", bits(refcount.RenameMapCheckpointBits()))
	t.AddRow("per-register counters (336 regs, 2b)", bits(refcount.CountersCheckpointBits(336, 2)), "not checkpointable")
	t.AddRow("TAGE-like distance predictor", kb(distStorageTAGE()), "-")
	t.AddRow("NoSQ-style distance predictor", kb(distStorageNoSQ()), "-")
	t.AddRow("DDT 16K entries, 14b tags", kb(refcount.DDTStorage(16384, 14, 64)), "-")
	t.AddRow("DDT 1K entries, 5b tags", kb(refcount.DDTStorage(1024, 5, 64)), "-")
	return t
}

func distStorageTAGE() int { return smb.NewTAGEDistance().Storage() }
func distStorageNoSQ() int { return smb.NewNoSQDistance().Storage() }

// BaselineShape sanity-checks Figure 4's preconditions: IPC diversity and
// the presence of trap/false-dep benchmarks.
func (s *Session) BaselineShape() error {
	base := s.Baseline()
	var withTraps, withFD int
	for _, r := range base {
		if r.S.MemTraps > 0 {
			withTraps++
		}
		if r.S.FalseDeps > 0 {
			withFD++
		}
	}
	if withTraps < 4 {
		return fmt.Errorf("only %d benchmarks show memory traps", withTraps)
	}
	if withFD < 4 {
		return fmt.Errorf("only %d benchmarks show false dependencies", withFD)
	}
	return nil
}
