// Package experiments regenerates every table and figure of the paper's
// evaluation (§5-§6). Each Fig*/Table* function runs the required
// simulations (in parallel, with a shared result cache) and returns the
// same rows/series the paper reports, as formatted text tables plus
// machine-readable series for the test suite's shape checks.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/moveelim"
	"repro/internal/refcount"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// RunLengths sets simulation length. The paper uses 50M warmup + 100M
// measured instructions of SimPoint slices; the synthetic workloads reach
// steady state orders of magnitude sooner.
type RunLengths struct {
	Warmup  uint64
	Measure uint64
}

// DefaultRunLengths is used by cmd/paperfigs.
var DefaultRunLengths = RunLengths{Warmup: 30_000, Measure: 150_000}

// QuickRunLengths is used by unit tests.
var QuickRunLengths = RunLengths{Warmup: 10_000, Measure: 50_000}

// Result captures one simulation's outcome.
type Result struct {
	Bench   string
	IPC     float64
	S       core.Stats
	Tracker refcount.Stats
	ME      moveelim.Eliminator
}

// Session runs simulations with caching and parallelism.
type Session struct {
	RL RunLengths

	mu    sync.Mutex
	cache map[string]*Result
}

// NewSession creates a session with the given run lengths.
func NewSession(rl RunLengths) *Session {
	return &Session{RL: rl, cache: make(map[string]*Result)}
}

// run simulates bench under cfg; key must uniquely identify cfg.
func (s *Session) run(bench, key string, cfg core.Config) *Result {
	ck := bench + "|" + key
	s.mu.Lock()
	if r, ok := s.cache[ck]; ok {
		s.mu.Unlock()
		return r
	}
	s.mu.Unlock()

	spec, err := workloads.ByName(bench)
	if err != nil {
		panic(err)
	}
	prog := workloads.Build(spec)
	c := core.New(cfg, prog)
	st := c.Run(s.RL.Warmup, s.RL.Measure)
	r := &Result{
		Bench:   bench,
		IPC:     st.IPC(),
		S:       *st,
		Tracker: *c.Tracker().Stats(),
		ME:      *c.MoveElim(),
	}
	s.mu.Lock()
	s.cache[ck] = r
	s.mu.Unlock()
	return r
}

// runAll simulates every benchmark under cfgFor in parallel, preserving
// catalog order.
func (s *Session) runAll(key string, cfgFor func(bench string) core.Config) []*Result {
	names := workloads.Names()
	results := make([]*Result, len(names))
	sem := make(chan struct{}, max(1, runtime.NumCPU()))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = s.run(name, key, cfgFor(name))
		}(i, name)
	}
	wg.Wait()
	return results
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Baseline returns per-benchmark baseline results (Figure 4's machine).
func (s *Session) Baseline() []*Result {
	return s.runAll("baseline", func(string) core.Config { return core.DefaultConfig() })
}

// --- configuration builders -------------------------------------------

func withTracker(cfg core.Config, entries int) core.Config {
	if entries <= 0 {
		cfg.Tracker = core.TrackerConfig{Kind: core.TrackerUnlimited}
	} else {
		cfg.Tracker = core.TrackerConfig{Kind: core.TrackerISRB, Entries: entries, CounterBits: 3}
	}
	return cfg
}

func meConfig(entries int) core.Config {
	cfg := core.DefaultConfig()
	cfg.ME.Enabled = true
	return withTracker(cfg, entries)
}

func smbConfig(entries int) core.Config {
	cfg := core.DefaultConfig()
	cfg.SMB.Enabled = true
	return withTracker(cfg, entries)
}

func combinedConfig(entries int) core.Config {
	cfg := core.DefaultConfig()
	cfg.ME.Enabled = true
	cfg.SMB.Enabled = true
	return withTracker(cfg, entries)
}

func entryLabel(entries int) string {
	if entries <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%d", entries)
}

// Series is one named speedup curve over the benchmark list.
type Series struct {
	Name    string
	Per     map[string]float64
	GMean   float64
	MaxName string
	Max     float64
}

func makeSeries(name string, base, opt []*Result) Series {
	s := Series{Name: name, Per: make(map[string]float64, len(base))}
	var sp []float64
	for i := range base {
		v := stats.Speedup(opt[i].IPC, base[i].IPC)
		s.Per[base[i].Bench] = v
		sp = append(sp, v)
		if v > s.Max {
			s.Max = v
			s.MaxName = base[i].Bench
		}
	}
	s.GMean = stats.GeoMean(sp)
	return s
}

func seriesTable(title string, base []*Result, series []Series) *stats.Table {
	cols := []string{"benchmark"}
	for _, s := range series {
		cols = append(cols, s.Name)
	}
	t := stats.NewTable(title, cols...)
	for _, r := range base {
		row := []string{r.Bench}
		for _, s := range series {
			row = append(row, stats.Pct(s.Per[r.Bench]))
		}
		t.AddRow(row...)
	}
	gm := []string{"gmean"}
	for _, s := range series {
		gm = append(gm, stats.Pct(s.GMean))
	}
	t.AddRow(gm...)
	return t
}
