// Package experiments regenerates every table and figure of the paper's
// evaluation (§5-§6). Each Fig*/Table* function runs the required
// simulations through a shared internal/sim Runner (in parallel, with
// deduplication and caching) and returns the same rows/series the paper
// reports, as formatted text tables plus machine-readable series for the
// test suite's shape checks.
package experiments

import (
	"context"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

// RunLengths sets simulation length. The paper uses 50M warmup + 100M
// measured instructions of SimPoint slices; the synthetic workloads reach
// steady state orders of magnitude sooner.
type RunLengths struct {
	Warmup  uint64
	Measure uint64
}

// DefaultRunLengths is used by cmd/paperfigs.
var DefaultRunLengths = RunLengths{Warmup: 30_000, Measure: 150_000}

// QuickRunLengths is used by unit tests.
var QuickRunLengths = RunLengths{Warmup: 10_000, Measure: 50_000}

// Result captures one simulation's outcome (see sim.Result).
type Result = sim.Result

// Series is one named speedup curve over the benchmark list.
type Series = sim.Series

// Session pairs run lengths with the sim.Runner that executes, caches
// and deduplicates the simulations, and with the context every one of
// its runs observes. Several Sessions may share one Runner: the
// deduplication key includes the run lengths.
//
// The figure methods keep their value-returning signatures (they exist
// to be printed); when the session's context is canceled or a request
// is invalid, they panic with the runner's typed error value, which
// drivers recover at the top (see cmd/paperfigs) and test against with
// errors.Is.
type Session struct {
	RL RunLengths

	// OnEvent, when non-nil, receives every per-request completion
	// event the session's batched runs stream — the hook cmd/paperfigs
	// hangs its live progress line on.
	OnEvent func(sim.Event)

	ctx context.Context
	r   *sim.Runner
}

// NewSession creates a session with the given run lengths and a private
// runner, on the background context.
func NewSession(rl RunLengths) *Session { return NewSessionWith(rl, nil) }

// NewSessionWith creates a session on an existing runner (nil: a new
// one), so callers — the test suite's TestMain, cmd/paperfigs with a
// disk cache — can share results across sessions.
func NewSessionWith(rl RunLengths, r *sim.Runner) *Session {
	return NewSessionContext(context.Background(), rl, r)
}

// NewSessionContext creates a session whose every simulation observes
// ctx: cancel it and in-flight figure sweeps abort mid-cycle-loop with
// a panic carrying a sim.ErrCanceled-wrapping error.
func NewSessionContext(ctx context.Context, rl RunLengths, r *sim.Runner) *Session {
	if r == nil {
		r = sim.New()
	}
	return &Session{RL: rl, ctx: ctx, r: r}
}

// Runner exposes the session's underlying runner.
func (s *Session) Runner() *sim.Runner { return s.r }

// run simulates bench under cfg through the shared runner.
func (s *Session) run(bench string, cfg core.Config) *Result {
	return s.r.MustRun(s.ctx, sim.Request{Bench: bench, Config: cfg, Warmup: s.RL.Warmup, Measure: s.RL.Measure})
}

// runAll simulates every benchmark under cfgFor in parallel, preserving
// catalog order and streaming completion events to OnEvent.
func (s *Session) runAll(cfgFor func(bench string) core.Config) []*Result {
	results, err := s.r.RunBenchmarks(s.ctx, s.RL.Warmup, s.RL.Measure, cfgFor, s.OnEvent)
	if err != nil {
		panic(err)
	}
	return results
}

// scenarioSeries executes the named committed scenario (internal/
// scenario/specs) at the session's run lengths through the session's
// runner, so figure sweeps share the deduplicated baseline and any
// attached disk store with everything else the session runs. The
// series-shaped figures are those specs rendered — the spec files are
// the single source of truth for their grids.
func (s *Session) scenarioSeries(name string) (*stats.Table, []Series) {
	rep, err := scenario.MustBuiltin(name).
		MustExpand(scenario.Overrides{Warmup: &s.RL.Warmup, Measure: &s.RL.Measure}).
		Run(s.ctx, s.r, s.OnEvent)
	if err != nil {
		panic(err)
	}
	return rep.Table(), rep.Series()
}

// Baseline returns per-benchmark baseline results (Figure 4's machine).
func (s *Session) Baseline() []*Result {
	return s.runAll(func(string) core.Config { return core.DefaultConfig() })
}

// --- configuration builders -------------------------------------------

func withTracker(cfg core.Config, entries int) core.Config {
	if entries <= 0 {
		cfg.Tracker = core.TrackerConfig{Kind: core.TrackerUnlimited}
	} else {
		cfg.Tracker = core.TrackerConfig{Kind: core.TrackerISRB, Entries: entries, CounterBits: 3}
	}
	return cfg
}

func meConfig(entries int) core.Config {
	cfg := core.DefaultConfig()
	cfg.ME.Enabled = true
	return withTracker(cfg, entries)
}

func smbConfig(entries int) core.Config {
	cfg := core.DefaultConfig()
	cfg.SMB.Enabled = true
	return withTracker(cfg, entries)
}

func combinedConfig(entries int) core.Config {
	cfg := core.DefaultConfig()
	cfg.ME.Enabled = true
	cfg.SMB.Enabled = true
	return withTracker(cfg, entries)
}

func makeSeries(name string, base, opt []*Result) Series {
	return sim.MakeSeries(name, base, opt)
}

func seriesTable(title string, base []*Result, series []Series) *stats.Table {
	cols := []string{"benchmark"}
	for _, s := range series {
		cols = append(cols, s.Name)
	}
	t := stats.NewTable(title, cols...)
	for _, r := range base {
		row := []string{r.Bench}
		for _, s := range series {
			row = append(row, stats.Pct(s.Per[r.Bench]))
		}
		t.AddRow(row...)
	}
	gm := []string{"gmean"}
	for _, s := range series {
		gm = append(gm, stats.Pct(s.GMean))
	}
	t.AddRow(gm...)
	return t
}
