package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// This file implements the paper's side experiments and stated
// extensions: the ROB-512 lazy-reclaim check (§6.2: bypassing from
// committed instructions stays marginal "even when the size of the ROB is
// increased to 512"), the single-bit-counter ME design point (§6.3
// footnote 10), and a distance-predictor history-length ablation (the
// paper leaves TAGE tuning as future work; this probes the design space).

// ROB512Lazy compares eager vs lazy reclaim at ROB sizes 192 and 512 with
// an unlimited ISRB.
func (s *Session) ROB512Lazy() (*stats.Table, map[string]float64) {
	base := s.Baseline()
	gmeans := map[string]float64{}
	var series []Series
	for _, rob := range []int{192, 512} {
		for _, lazy := range []bool{false, true} {
			rob, lazy := rob, lazy
			name := fmt.Sprintf("rob%d-", rob)
			if lazy {
				name += "lazy"
			} else {
				name += "eager"
			}
			opt := s.runAll(func(string) core.Config {
				cfg := smbConfig(0)
				cfg.ROBSize = rob
				cfg.SMB.BypassCommitted = lazy
				return cfg
			})
			sr := makeSeries(name, base, opt)
			series = append(series, sr)
			gmeans[name] = sr.GMean
		}
	}
	return seriesTable("Extension: lazy reclaim at ROB 192 vs 512 (§6.2)", base, series), gmeans
}

// SingleBitME evaluates ME-only with 1-bit ISRB counters (§6.3 footnote:
// "ME actually performs well on all benchmarks but one when single-bit
// counters are used").
func (s *Session) SingleBitME() (*stats.Table, map[int]float64) {
	base := s.Baseline()
	gmeans := map[int]float64{}
	var series []Series
	for _, bits := range []int{1, 3} {
		bits := bits
		opt := s.runAll(func(string) core.Config {
			cfg := core.DefaultConfig()
			cfg.ME.Enabled = true
			cfg.Tracker = core.TrackerConfig{Kind: core.TrackerISRB, Entries: 16, CounterBits: bits}
			return cfg
		})
		sr := makeSeries(fmt.Sprintf("ME-16x%db", bits), base, opt)
		series = append(series, sr)
		gmeans[bits] = sr.GMean
	}
	return seriesTable("Extension: single-bit counters for ME-only (§6.3 fn.10)", base, series), gmeans
}

// DistanceHistorySweep probes the Instruction Distance Predictor's
// history-length geometry: no history (PC only), the paper's 2..64-bit
// geometric series, and a doubled series.
func (s *Session) DistanceHistorySweep() (*stats.Table, map[string]float64) {
	base := s.Baseline()
	geoms := []struct {
		name string
		hist []int
	}{
		{"pc-only", []int{}},
		{"paper-2..64", []int{2, 5, 11, 27, 64}},
		{"long-4..128", []int{4, 10, 22, 54, 128}},
	}
	gmeans := map[string]float64{}
	var series []Series
	for _, g := range geoms {
		g := g
		opt := s.runAll(func(string) core.Config {
			cfg := smbConfig(0)
			cfg.SMB.Predictor = core.DistanceTAGE
			cfg.SMB.TAGEGeometry = g.hist
			return cfg
		})
		sr := makeSeries(g.name, base, opt)
		series = append(series, sr)
		gmeans[g.name] = sr.GMean
	}
	return seriesTable("Extension: distance predictor history geometry", base, series), gmeans
}

// TrackerComparison makes §4.2's qualitative scheme comparison
// quantitative: the same ME+SMB machine over every reference counting
// scheme (the committed "trackers" scenario). The MIT loses SMB entirely
// (architectural-name tracking); the per-register counters lose recovery
// cycles to sequential rollback; the RDA matches the ISRB's performance
// but pays commit-side checkpoint update traffic.
func (s *Session) TrackerComparison() (*stats.Table, map[string]float64) {
	t, series := s.scenarioSeries("trackers")
	gmeans := map[string]float64{}
	for _, sr := range series {
		gmeans[sr.Name] = sr.GMean
	}
	return t, gmeans
}
