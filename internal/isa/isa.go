// Package isa defines the micro-operation (µop) model the simulator
// executes.
//
// The model is x86_64-flavoured without being a full x86 decoder: what
// matters to the paper's mechanisms is the register-name structure of the
// dynamic instruction stream, not instruction encodings. We therefore model
//
//   - 16 integer and 16 FP/SIMD architectural registers (as x86_64 exposes),
//   - destructive two-operand ALU forms, which is what makes reg-reg moves
//     so frequent in x86 code and motivates Move Elimination,
//   - move widths (8/16/32/64 bits), because the x86_64 zero-extension rule
//     makes only 32- and 64-bit reg-reg moves eliminable (paper §2.1),
//   - loads and stores carrying virtual addresses and true data values so
//     that Speculative Memory Bypassing can be validated honestly.
package isa

import "fmt"

// RegClass distinguishes the integer and FP/SIMD register files, which are
// renamed separately (256 physical registers each in the paper's core).
type RegClass uint8

const (
	// IntReg is the integer register class (rax..r15).
	IntReg RegClass = iota
	// FPReg is the FP/SIMD register class (xmm0..xmm15).
	FPReg
)

func (c RegClass) String() string {
	switch c {
	case IntReg:
		return "int"
	case FPReg:
		return "fp"
	default:
		return fmt.Sprintf("RegClass(%d)", uint8(c))
	}
}

// NumArchRegs is the number of architectural registers per class (x86_64:
// 16 GPRs and 16 SIMD registers).
const NumArchRegs = 16

// Reg names an architectural register: class plus index in [0,NumArchRegs).
// The zero value is integer register 0 (rax).
type Reg struct {
	Class RegClass
	Index uint8
}

// NoReg is a sentinel for "no register operand".
var NoReg = Reg{Class: IntReg, Index: 0xFF}

// Valid reports whether r names a real architectural register.
func (r Reg) Valid() bool { return r.Index < NumArchRegs }

func (r Reg) String() string {
	if !r.Valid() {
		return "-"
	}
	if r.Class == FPReg {
		return fmt.Sprintf("xmm%d", r.Index)
	}
	return fmt.Sprintf("r%d", r.Index)
}

// IntR and FPR are convenience constructors for register names.
func IntR(i int) Reg { return Reg{Class: IntReg, Index: uint8(i)} }

// FPR returns the i-th FP/SIMD architectural register.
func FPR(i int) Reg { return Reg{Class: FPReg, Index: uint8(i)} }

// Op is the µop operation class. Classes map one-to-one onto the paper's
// functional-unit pool (Table 1).
type Op uint8

const (
	// Nop does nothing (used for padding and eliminated µops).
	Nop Op = iota
	// ALU is a 1-cycle integer operation.
	ALU
	// MulDiv is an integer multiply (3 cycles) or divide (25 cycles,
	// not pipelined). The Heavy flag selects divide timing.
	MulDiv
	// FP is a 3-cycle pipelined FP operation.
	FP
	// FPMulDiv is an FP multiply (5 cycles) or divide (10 cycles, not
	// pipelined, Heavy flag).
	FPMulDiv
	// Load reads MemSize bytes from MemAddr into DestReg.
	Load
	// Store writes the value of SrcRegs[0] (the data register) to
	// MemAddr; SrcRegs[1], if valid, is the address base register.
	Store
	// Branch is a conditional or unconditional control transfer.
	Branch
	// Move is a register-to-register move, the Move Elimination
	// candidate class. Width determines eliminability.
	Move
)

var opNames = [...]string{"nop", "alu", "muldiv", "fp", "fpmuldiv", "load", "store", "branch", "move"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// BranchKind refines Branch µops for the front-end predictor structures.
type BranchKind uint8

const (
	// BrNone marks a non-branch µop.
	BrNone BranchKind = iota
	// BrCond is a conditional direct branch (predicted by TAGE).
	BrCond
	// BrUncond is an unconditional direct jump (BTB only).
	BrUncond
	// BrCall is a direct call (pushes the RAS).
	BrCall
	// BrRet is a return (pops the RAS).
	BrRet
)

func (k BranchKind) String() string {
	switch k {
	case BrNone:
		return "none"
	case BrCond:
		return "cond"
	case BrUncond:
		return "uncond"
	case BrCall:
		return "call"
	case BrRet:
		return "ret"
	default:
		return fmt.Sprintf("BranchKind(%d)", uint8(k))
	}
}

// MaxSrcRegs is the maximum number of register sources a µop can carry.
// Stores use two (data + address); the scheduler additionally tracks the
// memory-dependence and bypass-validation sources separately (paper §3.2
// notes Bulldozer supports four sources per scheduler entry).
const MaxSrcRegs = 3

// Uop is one dynamic micro-operation flowing through the pipeline. Static
// fields are filled by the workload's functional front-end; the timing core
// treats the value fields as ground truth for validating speculation.
type Uop struct {
	// PC is the static instruction address. Distinct static instructions
	// have distinct PCs; the branch and distance predictors index on it.
	PC uint64
	// Seq is the dynamic sequence number (assigned at fetch, monotone).
	Seq uint64

	Op    Op
	Kind  BranchKind
	Heavy bool // divide-class timing for MulDiv/FPMulDiv

	// Src holds up to MaxSrcRegs source registers; unused slots are NoReg.
	Src [MaxSrcRegs]Reg
	// Dest is the destination register, or NoReg for stores/branches/nops.
	Dest Reg

	// Width is the operand width in bits (8, 16, 32, 64). For Move µops
	// it determines Move Elimination eligibility (§2.1). For memory µops
	// it is the access size in bits.
	Width uint8

	// MemAddr is the virtual address accessed by Load/Store µops.
	MemAddr uint64

	// Value is the architecturally-correct result of the µop (the loaded
	// value for loads, the stored value for stores, the move source value
	// for moves). Used to validate SMB and to keep PRF contents honest.
	Value uint64

	// Taken and Target give the architecturally-correct branch outcome.
	Taken  bool
	Target uint64

	// FallThrough is the next sequential PC (used on not-taken and for
	// misprediction re-steer).
	FallThrough uint64

	// WrongPath marks µops fetched past a mispredicted branch. They flow
	// through rename and may allocate registers and ISRB entries, but
	// their results are never committed.
	WrongPath bool
}

// NumSrcs returns how many valid register sources the µop has.
func (u *Uop) NumSrcs() int {
	n := 0
	for _, s := range u.Src {
		if s.Valid() {
			n++
		}
	}
	return n
}

// IsBranch reports whether the µop is any kind of branch.
func (u *Uop) IsBranch() bool { return u.Op == Branch }

// HasDest reports whether the µop writes an architectural register.
func (u *Uop) HasDest() bool { return u.Dest.Valid() }

// IsMemRef reports whether the µop accesses memory.
func (u *Uop) IsMemRef() bool { return u.Op == Load || u.Op == Store }

// EliminableMove reports whether the µop is a reg-reg move that Move
// Elimination may collapse under the paper's x86_64 rules (§2.1): only 32-
// and 64-bit moves are eliminable, because those zero the upper bits of the
// destination, while 8- and 16-bit moves merge into the destination and
// remain true merge µops. Moves must also stay within one register class.
func (u *Uop) EliminableMove() bool {
	if u.Op != Move {
		return false
	}
	if u.Width != 32 && u.Width != 64 {
		return false
	}
	return u.Src[0].Valid() && u.Dest.Valid() && u.Src[0].Class == u.Dest.Class
}

func (u *Uop) String() string {
	switch u.Op {
	case Load:
		return fmt.Sprintf("%#x: load%d %v <- [%#x]", u.PC, u.Width, u.Dest, u.MemAddr)
	case Store:
		return fmt.Sprintf("%#x: store%d [%#x] <- %v", u.PC, u.Width, u.MemAddr, u.Src[0])
	case Branch:
		return fmt.Sprintf("%#x: br(%v) taken=%v -> %#x", u.PC, u.Kind, u.Taken, u.Target)
	case Move:
		return fmt.Sprintf("%#x: mov%d %v <- %v", u.PC, u.Width, u.Dest, u.Src[0])
	default:
		return fmt.Sprintf("%#x: %v %v <- %v,%v", u.PC, u.Op, u.Dest, u.Src[0], u.Src[1])
	}
}
