package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegHelpers(t *testing.T) {
	r := IntR(5)
	if !r.Valid() || r.Class != IntReg || r.Index != 5 {
		t.Fatalf("IntR(5) = %+v", r)
	}
	f := FPR(3)
	if !f.Valid() || f.Class != FPReg || f.Index != 3 {
		t.Fatalf("FPR(3) = %+v", f)
	}
	if NoReg.Valid() {
		t.Fatal("NoReg must be invalid")
	}
	if IntR(2) == FPR(2) {
		t.Fatal("int and fp registers with the same index must differ")
	}
}

func TestRegString(t *testing.T) {
	if got := IntR(4).String(); got != "r4" {
		t.Fatalf("IntR(4).String() = %q", got)
	}
	if got := FPR(7).String(); got != "xmm7" {
		t.Fatalf("FPR(7).String() = %q", got)
	}
	if got := NoReg.String(); got != "-" {
		t.Fatalf("NoReg.String() = %q", got)
	}
}

// TestEliminableMoveRules encodes §2.1's x86_64 rules: only 32- and 64-bit
// same-class reg-reg moves may be eliminated; 8- and 16-bit moves are
// merge µops.
func TestEliminableMoveRules(t *testing.T) {
	mk := func(width uint8, src, dst Reg) *Uop {
		return &Uop{Op: Move, Width: width, Src: [MaxSrcRegs]Reg{src, NoReg, NoReg}, Dest: dst}
	}
	cases := []struct {
		name string
		u    *Uop
		want bool
	}{
		{"mov64 int-int", mk(64, IntR(0), IntR(1)), true},
		{"mov32 int-int", mk(32, IntR(0), IntR(1)), true},
		{"mov16 int-int (merge)", mk(16, IntR(0), IntR(1)), false},
		{"mov8 int-int (merge)", mk(8, IntR(0), IntR(1)), false},
		{"mov64 fp-fp", mk(64, FPR(0), FPR(1)), true},
		{"mov64 cross-class", mk(64, IntR(0), FPR(1)), false},
		{"mov64 no dest", mk(64, IntR(0), NoReg), false},
		{"mov64 no src", mk(64, NoReg, IntR(1)), false},
	}
	for _, c := range cases {
		if got := c.u.EliminableMove(); got != c.want {
			t.Errorf("%s: EliminableMove() = %v, want %v", c.name, got, c.want)
		}
	}
	// Non-move ops are never eliminable regardless of shape.
	alu := &Uop{Op: ALU, Width: 64, Src: [MaxSrcRegs]Reg{IntR(0), NoReg, NoReg}, Dest: IntR(1)}
	if alu.EliminableMove() {
		t.Error("ALU op reported eliminable")
	}
}

func TestUopHelpers(t *testing.T) {
	ld := &Uop{Op: Load, Dest: IntR(1), Src: [MaxSrcRegs]Reg{IntR(2), NoReg, NoReg}}
	if !ld.IsMemRef() || ld.IsBranch() || !ld.HasDest() {
		t.Fatal("load helper predicates wrong")
	}
	if n := ld.NumSrcs(); n != 1 {
		t.Fatalf("NumSrcs = %d, want 1", n)
	}
	br := &Uop{Op: Branch, Kind: BrCond, Dest: NoReg}
	if !br.IsBranch() || br.HasDest() || br.IsMemRef() {
		t.Fatal("branch helper predicates wrong")
	}
}

func TestUopStringCoversOps(t *testing.T) {
	us := []*Uop{
		{Op: Load, Width: 64, Dest: IntR(0), MemAddr: 0x100},
		{Op: Store, Width: 64, Src: [MaxSrcRegs]Reg{IntR(1), NoReg, NoReg}, MemAddr: 0x100},
		{Op: Branch, Kind: BrCond, Taken: true, Target: 0x40},
		{Op: Move, Width: 32, Src: [MaxSrcRegs]Reg{IntR(2), NoReg, NoReg}, Dest: IntR(3)},
		{Op: ALU, Dest: IntR(4), Src: [MaxSrcRegs]Reg{IntR(5), IntR(6), NoReg}},
	}
	for _, u := range us {
		if s := u.String(); s == "" || !strings.Contains(s, "0x") {
			t.Errorf("String() for %v produced %q", u.Op, s)
		}
	}
}

func TestValidRejectsOutOfRange(t *testing.T) {
	if err := quick.Check(func(idx uint8) bool {
		r := Reg{Class: IntReg, Index: idx}
		return r.Valid() == (idx < NumArchRegs)
	}, nil); err != nil {
		t.Fatal(err)
	}
}
