package fleet

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/objstore"
	"repro/internal/scenario"
	"repro/internal/sim"
)

var bg = context.Background()

// fleetSpec is a miniature of the committed fleet grid: workload shape ×
// shared ROB × ISRB size, 8 cells, 12 unique requests after dedup.
const fleetSpec = `{
  "name": "fl",
  "title": "FL",
  "warmup": 50,
  "measure": 400,
  "opt": {"smb": true},
  "workload_axes": [
    {"name": "shape", "values": [
      {"label": "spill",   "benchmarks": ["gen:spill?depth=4"]},
      {"label": "branchy", "benchmarks": ["gen:branchy?hard=0.8"]}
    ]}
  ],
  "axes": [
    {"name": "ROB", "shared": true, "values": [
      {"label": "96",  "patch": {"rob": 96}},
      {"label": "128", "patch": {"rob": 128}}
    ]},
    {"name": "ISRB", "values": [
      {"label": "8",  "patch": {"tracker": "isrb", "entries": 8,  "ctrbits": 3}},
      {"label": "16", "patch": {"tracker": "isrb", "entries": 16, "ctrbits": 3}}
    ]}
  ],
  "report": {"kind": "cells"}
}`

func expandFleet(t *testing.T) *scenario.Matrix {
	t.Helper()
	s, err := scenario.ParseBytes([]byte(fleetSpec))
	if err != nil {
		t.Fatal(err)
	}
	return s.MustExpand(scenario.Overrides{})
}

// fastSleep keeps poll loops hot in tests without wall-clock delays.
func fastSleep(ctx context.Context) error { return ctx.Err() }

// TestLeaseSpec: the lease area derives from the results spec inside the
// same bucket, and mem: is rejected (not shareable across opens).
func TestLeaseSpec(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"fs:/data/store", "fs:/data/store/leases"},
		{"fs:/data/store/", "fs:/data/store/leases"},
		{"s3://bucket/fleet", "s3://bucket/fleet/leases"},
		{"s3://bucket", "s3://bucket/leases"},
	} {
		got, err := LeaseSpec(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("LeaseSpec(%q) = %q, %v; want %q", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"mem:", "fs:", "http://host", ""} {
		if _, err := LeaseSpec(bad); err == nil {
			t.Errorf("LeaseSpec(%q) accepted", bad)
		}
	}
}

// TestGridID: the grid fingerprint pins the scenario, the shard
// geometry and every request — hosts with any mismatch must not share
// leases.
func TestGridID(t *testing.T) {
	m := expandFleet(t)
	id := GridID(m, 2)
	if id != GridID(m, 2) {
		t.Fatal("GridID not deterministic")
	}
	if id == GridID(m, 4) {
		t.Fatal("shard geometry does not affect the grid ID")
	}
	s2, err := scenario.ParseBytes([]byte(strings.Replace(fleetSpec, `"measure": 400`, `"measure": 401`, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if id == GridID(s2.MustExpand(scenario.Overrides{}), 2) {
		t.Fatal("request changes do not affect the grid ID")
	}
}

// TestDrainConfig: misaligned cell ranges and missing host names are
// rejected before any lease is touched.
func TestDrainConfig(t *testing.T) {
	m := expandFleet(t)
	r := sim.New(sim.WithWorkers(2))
	leases := objstore.NewMem()
	if _, err := Drain(bg, m, r, leases, Config{ShardCells: 2, Sleep: fastSleep}); err == nil {
		t.Error("missing host accepted")
	}
	for _, bad := range []Range{{1, 8}, {0, 3}, {-2, 4}, {4, 2}, {0, 100}} {
		_, err := Drain(bg, m, r, leases, Config{Host: "h", ShardCells: 2, Cells: bad, Sleep: fastSleep})
		if err == nil {
			t.Errorf("range %v accepted", bad)
		}
	}
}

// TestDrainSingleHostAndResume: one host drains the whole grid
// (simulating every unique request exactly once), a second drain over
// the same store but fresh leases is pure store hits, and a third over
// the same leases sees every shard already done.
func TestDrainSingleHostAndResume(t *testing.T) {
	m := expandFleet(t)
	dir := t.TempDir()
	leases := objstore.NewMem()

	sum, err := Drain(bg, m, sim.New(sim.WithCacheDir(dir), sim.WithWorkers(2)), leases,
		Config{Host: "a", ShardCells: 2, Sleep: fastSleep})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Shards != 4 || sum.Claimed != 4 || sum.TakenOver != 0 || sum.PeerDone != 0 {
		t.Fatalf("shard accounting off: %+v", sum)
	}
	if sum.Requests != len(m.Requests) || sum.Simulated != len(m.Requests) {
		t.Fatalf("simulated %d of %d owned (%d unique): every request must run exactly once",
			sum.Simulated, sum.Requests, len(m.Requests))
	}

	// Crash-resume shape: leases lost, store kept. Everything is a store
	// hit; nothing re-simulates.
	sum2, err := Drain(bg, m, sim.New(sim.WithCacheDir(dir), sim.WithWorkers(2)), objstore.NewMem(),
		Config{Host: "a", ShardCells: 2, Sleep: fastSleep})
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Simulated != 0 || sum2.StoreHits != len(m.Requests) || sum2.Claimed != 4 {
		t.Fatalf("resume over a full store re-simulated: %+v", sum2)
	}

	// Same leases again: every shard reads done, no claims taken.
	sum3, err := Drain(bg, m, sim.New(sim.WithCacheDir(dir), sim.WithWorkers(2)), leases,
		Config{Host: "b", ShardCells: 2, Sleep: fastSleep})
	if err != nil {
		t.Fatal(err)
	}
	if sum3.PeerDone != 4 || sum3.Claimed != 0 || sum3.Simulated != 0 {
		t.Fatalf("done claims not honored: %+v", sum3)
	}
}

// TestDrainTwoHostsByteIdentical is the fleet contract: two hosts
// racing for shards over one shared bucket simulate every request
// exactly once between them, and the resulting store is byte-identical
// — same Merkle root, same entry count — to a single-host control run.
func TestDrainTwoHostsByteIdentical(t *testing.T) {
	m := expandFleet(t)

	// Control: one ordinary Stream into its own store.
	controlStore := sim.NewStore(t.TempDir())
	if _, err := sim.New(sim.WithStore(controlStore), sim.WithWorkers(2)).Stream(bg, m.Requests, nil); err != nil {
		t.Fatal(err)
	}
	want, err := controlStore.Manifest(bg)
	if err != nil {
		t.Fatal(err)
	}

	// Fleet: two hosts, one shared results dir, one shared lease area,
	// both draining the full cell range concurrently. StalePolls is high
	// enough that a live peer is never seized.
	dir := t.TempDir()
	leases := objstore.NewMem()
	cfg := func(host string) Config {
		return Config{Host: host, ShardCells: 2, StalePolls: 10000, Sleep: fastSleep}
	}
	var wg sync.WaitGroup
	sums := make([]*Summary, 2)
	errs := make([]error, 2)
	for i, host := range []string{"a", "b"} {
		wg.Add(1)
		go func(i int, host string) {
			defer wg.Done()
			r := sim.New(sim.WithCacheDir(dir), sim.WithWorkers(2))
			sums[i], errs[i] = Drain(bg, m, r, leases, cfg(host))
		}(i, host)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("host %d: %v", i, err)
		}
	}

	simulated := sums[0].Simulated + sums[1].Simulated
	if simulated != len(m.Requests) {
		t.Fatalf("fleet simulated %d requests for %d unique: double-simulation or a hole", simulated, len(m.Requests))
	}
	if done := sums[0].Claimed + sums[1].Claimed + sums[0].PeerDone + sums[1].PeerDone; done < 4 {
		t.Fatalf("shards unaccounted for: %+v %+v", sums[0], sums[1])
	}
	if sums[0].TakenOver+sums[1].TakenOver != 0 {
		t.Fatalf("live peer seized: %+v %+v", sums[0], sums[1])
	}

	got, err := sim.NewStore(dir).Manifest(bg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Root != want.Root || got.Entries != want.Entries {
		t.Fatalf("fleet store differs from single-host control: %d entries root %s vs %d entries root %s",
			got.Entries, got.Root, want.Entries, want.Root)
	}
}

// TestDrainDisjointRanges: two hosts assigned disjoint cell ranges
// drain their own shards without ever touching the other's, and the
// union covers the grid.
func TestDrainDisjointRanges(t *testing.T) {
	m := expandFleet(t)
	dir := t.TempDir()
	leases := objstore.NewMem()
	a, err := Drain(bg, m, sim.New(sim.WithCacheDir(dir), sim.WithWorkers(2)), leases,
		Config{Host: "a", ShardCells: 2, Cells: Range{0, 4}, Sleep: fastSleep})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Drain(bg, m, sim.New(sim.WithCacheDir(dir), sim.WithWorkers(2)), leases,
		Config{Host: "b", ShardCells: 2, Cells: Range{4, 8}, Sleep: fastSleep})
	if err != nil {
		t.Fatal(err)
	}
	if a.Claimed != 2 || b.Claimed != 2 {
		t.Fatalf("ranges leaked across hosts: %+v %+v", a, b)
	}
	if a.Requests+b.Requests != len(m.Requests) {
		t.Fatalf("ranges own %d+%d requests of %d: FirstUse split broken", a.Requests, b.Requests, len(m.Requests))
	}
	if a.Simulated != a.Requests || b.Simulated != b.Requests {
		t.Fatalf("disjoint ranges shared work: %+v %+v", a, b)
	}
}

// TestDrainStaleTakeover: a claim whose generation token never moves is
// seized with a higher epoch and its shard drained; done claims are
// never seized.
func TestDrainStaleTakeover(t *testing.T) {
	m := expandFleet(t)
	leases := objstore.NewMem()
	grid := GridID(m, 2)

	// A dead host holds shard 0; shard 1 is done under a peer's claim
	// (its requests are deliberately absent from the store — done means
	// done, nobody re-checks).
	plant := func(shard int, cl Claim) {
		cl.Schema, cl.Grid, cl.Shard = ClaimSchema, grid, shard
		data, err := json.Marshal(cl)
		if err != nil {
			t.Fatal(err)
		}
		if err := leases.Put(bg, claimName(grid, shard), data); err != nil {
			t.Fatal(err)
		}
	}
	plant(0, Claim{Holder: "dead", Epoch: 1, Gen: 7})
	plant(1, Claim{Holder: "peer", Epoch: 3, Gen: 2, Done: true})

	sum, err := Drain(bg, m, sim.New(sim.WithCacheDir(t.TempDir()), sim.WithWorkers(2)), leases,
		Config{Host: "b", ShardCells: 2, StalePolls: 3, Sleep: fastSleep})
	if err != nil {
		t.Fatal(err)
	}
	if sum.TakenOver != 1 {
		t.Fatalf("stale claim not seized exactly once: %+v", sum)
	}
	if sum.PeerDone != 1 {
		t.Fatalf("done claim not honored: %+v", sum)
	}
	if sum.Claimed != 3 { // shard 0 (seized) + shards 2, 3 (fresh)
		t.Fatalf("drained %d shards, want 3: %+v", sum.Claimed, sum)
	}

	// The seized claim carries the higher epoch and our host, done.
	data, err := leases.Get(bg, claimName(grid, 0))
	if err != nil {
		t.Fatal(err)
	}
	var cl Claim
	if err := json.Unmarshal(data, &cl); err != nil {
		t.Fatal(err)
	}
	if cl.Holder != "b" || cl.Epoch != 2 || !cl.Done {
		t.Fatalf("seized claim wrong: %+v", cl)
	}
}
