// Package fleet drains one expanded scenario matrix across many hosts
// sharing one object-store bucket, with no coordinator. The grid is cut
// into shards of ShardCells consecutive cells; a host leases a shard by
// creating a claim object with PutIfAbsent in a lease area of the
// shared bucket, simulates the shard's requests through the ordinary
// sim.Runner (so results land in the shared store exactly as a
// single-host run would write them), and marks the claim done. Progress
// is a generation token bumped on every completed request: a challenger
// that watches a claim's (epoch, generation) stand still across enough
// polls seizes the lease with a higher epoch, so a crashed host's shard
// is re-run — resumably, because the finished requests are already in
// the store and come back as hits.
//
// Exactly-once execution falls out of the matrix shape rather than
// locking: scenario.Expand interns requests in cell order, so
// Matrix.FirstUse is nondecreasing and a shard's cells own exactly the
// requests first used by them. Hosts holding disjoint shards therefore
// simulate disjoint request sets, and the union over all shards is the
// whole grid. The Merkle manifest over the results store remains the
// single source of truth: when every shard is done, the store — and its
// root — is byte-identical to a single-host run of the same grid.
package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/objstore"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// ClaimSchema tags the claim object layout. Bump it when Claim changes
// incompatibly; hosts ignore (and eventually seize) claims of a foreign
// schema rather than misreading them.
const ClaimSchema = "fl1"

// Claim is one shard's lease object in the shared bucket's lease area.
//
//repro:wire
type Claim struct {
	Schema string `json:"schema"`
	// Grid identifies the exact expanded matrix (see GridID); a claim
	// for another grid can never collide because the grid is part of
	// the claim's name.
	Grid string `json:"grid"`
	// Shard is the claim's shard index.
	Shard int `json:"shard"`
	// Holder names the host currently draining the shard.
	Holder string `json:"holder"`
	// Epoch counts lease ownership changes: 1 for the first claimant,
	// +1 per stale-lease takeover. A holder that observes a claim with
	// an epoch above its own has lost the lease and must stand down.
	Epoch int `json:"epoch"`
	// Gen is the holder's progress token, bumped once per completed
	// request. Challengers detect staleness by watching (Epoch, Gen)
	// stand still, so liveness needs no clocks on the wire.
	Gen int `json:"gen"`
	// Done marks the shard fully simulated; done claims are never
	// seized.
	Done bool `json:"done"`
}

// GridID fingerprints one expanded matrix for fleet coordination: the
// scenario name, the shard geometry, the simulator version and every
// request key in order. Hosts drain the same grid if and only if their
// IDs match, so a spec edit, a different -shard-cells, different
// overrides or a rebuilt simulator can never split one shard's identity
// across incompatible request sets.
func GridID(m *scenario.Matrix, shardCells int) string {
	h := sha256.New()
	fmt.Fprintf(h, "fleet-grid\x00%s\x00%d\x00%s\x00", m.Spec.Name, shardCells, sim.Version())
	for _, r := range m.Requests {
		io.WriteString(h, sim.Key(r))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// claimName derives the 64-hex object name of one shard's claim, so
// claims live in the same namespace every backend already enforces.
func claimName(grid string, shard int) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("fleet-claim\x00%s\x00%d", grid, shard)))
	return hex.EncodeToString(h[:])
}

// LeaseSpec derives the lease-area store spec from a results-store
// spec: a "leases" subtree of the same bucket, so the fleet needs no
// second deployment — but one that no manifest walk ever reads (the
// manifest visits only the 256 two-hex shard directories), keeping the
// results store byte-identical to a single-host run. mem: stores are
// rejected: each open creates a private map, so a lease area there
// could never be shared.
func LeaseSpec(storeSpec string) (string, error) {
	switch {
	case strings.HasPrefix(storeSpec, "fs:"):
		dir := strings.TrimPrefix(storeSpec, "fs:")
		if dir == "" {
			return "", fmt.Errorf("fleet: store spec %q has no directory", storeSpec)
		}
		return "fs:" + strings.TrimRight(dir, "/") + "/leases", nil
	case strings.HasPrefix(storeSpec, "s3://"):
		return strings.TrimRight(storeSpec, "/") + "/leases", nil
	default:
		return "", fmt.Errorf("fleet: store spec %q cannot host a shared lease area (want fs: or s3://)", storeSpec)
	}
}

// Range is a half-open cell range [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Config parameterizes one host's Drain.
type Config struct {
	// Host names this host in claims it takes. Required.
	Host string
	// ShardCells is the lease granularity in cells. Every host draining
	// a grid must use the same value (it is part of the grid ID).
	// Default 64.
	ShardCells int
	// Cells restricts draining to a cell range. Lo must be
	// shard-aligned and Hi shard-aligned or the matrix total, so a
	// shard can never span the range boundary. The zero Range means the
	// whole matrix.
	Cells Range
	// StalePolls is the number of consecutive no-progress observations
	// of a held claim before this host seizes it. Default 5.
	StalePolls int
	// Sleep paces the poll loop when every remaining shard is held by a
	// live peer. Default: 500ms wall-clock sleep; tests inject
	// something faster. Returning an error aborts the drain.
	Sleep func(ctx context.Context) error
}

// Summary reports what one host's Drain did, in the JSON shape
// `regshared -drain` prints.
//
//repro:wire
type Summary struct {
	Schema     string `json:"schema"`
	Grid       string `json:"grid"`
	Scenario   string `json:"scenario"`
	Host       string `json:"host"`
	Cells      int    `json:"cells"`
	ShardCells int    `json:"shard_cells"`
	Shards     int    `json:"shards"`
	// Claimed counts shards this host drained to done; TakenOver the
	// subset it first seized from a stalled peer; PeerDone the shards
	// another host finished.
	Claimed   int `json:"claimed"`
	TakenOver int `json:"taken_over"`
	PeerDone  int `json:"peer_done"`
	// Requests is the unique request count owned by the cell range;
	// Simulated, StoreHits and MemHits split how this host's share was
	// satisfied.
	Requests  int `json:"requests"`
	Simulated int `json:"simulated"`
	StoreHits int `json:"store_hits"`
	MemHits   int `json:"mem_hits"`
}

// SummarySchema tags the Summary JSON.
const SummarySchema = "fd1"

// drainer carries one Drain invocation's state.
type drainer struct {
	m      *scenario.Matrix
	runner *sim.Runner
	leases objstore.Backend
	cfg    Config
	grid   string

	// shardReqs maps shard index -> indices into m.Requests owned by
	// the shard (FirstUse within the shard's cells).
	shardReqs map[int][]int

	// observed tracks each contested claim's last-seen progress and how
	// many consecutive polls it has stood still.
	observed map[int]claimState

	mu  sync.Mutex // guards sum counters written from Stream sinks
	sum Summary
}

// claimState is a challenger's view of a held claim.
type claimState struct {
	epoch, gen int
	done       bool
	stale      int
}

// Drain drains the cell range of m this host is configured for,
// coordinating with any other hosts draining the same grid through
// claim objects in leases. It returns when every shard in the range is
// done (drained here or by a peer), or with the first error — a context
// cancellation, a backend failure, or a simulation error.
func Drain(ctx context.Context, m *scenario.Matrix, runner *sim.Runner, leases objstore.Backend, cfg Config) (*Summary, error) {
	if cfg.Host == "" {
		return nil, fmt.Errorf("fleet: config needs a host name")
	}
	if cfg.ShardCells == 0 {
		cfg.ShardCells = 64
	}
	if cfg.ShardCells < 1 {
		return nil, fmt.Errorf("fleet: shard size %d must be positive", cfg.ShardCells)
	}
	if cfg.StalePolls == 0 {
		cfg.StalePolls = 5
	}
	if cfg.Sleep == nil {
		cfg.Sleep = func(ctx context.Context) error {
			t := time.NewTimer(500 * time.Millisecond)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return context.Cause(ctx)
			case <-t.C:
				return nil
			}
		}
	}
	total := len(m.Cells)
	if cfg.Cells == (Range{}) {
		cfg.Cells = Range{0, total}
	}
	r := cfg.Cells
	if r.Lo < 0 || r.Hi > total || r.Lo >= r.Hi {
		return nil, fmt.Errorf("fleet: cell range [%d, %d) outside the %d-cell matrix", r.Lo, r.Hi, total)
	}
	if r.Lo%cfg.ShardCells != 0 || (r.Hi%cfg.ShardCells != 0 && r.Hi != total) {
		return nil, fmt.Errorf("fleet: cell range [%d, %d) must align to the %d-cell shard grid (shards are absolute, so a misaligned range would split a lease)",
			r.Lo, r.Hi, cfg.ShardCells)
	}

	d := &drainer{
		m: m, runner: runner, leases: leases, cfg: cfg,
		grid:      GridID(m, cfg.ShardCells),
		shardReqs: make(map[int][]int),
		observed:  make(map[int]claimState),
	}
	d.sum = Summary{
		Schema:     SummarySchema,
		Grid:       d.grid,
		Scenario:   m.Spec.Name,
		Host:       cfg.Host,
		Cells:      r.Hi - r.Lo,
		ShardCells: cfg.ShardCells,
	}

	// Partition the range's requests by owning shard. FirstUse is
	// nondecreasing, so each shard's set is a contiguous slice of the
	// request list and their union covers the range exactly once.
	var pending []int
	for s := r.Lo / cfg.ShardCells; s*cfg.ShardCells < r.Hi; s++ {
		pending = append(pending, s)
	}
	d.sum.Shards = len(pending)
	for i, cell := range m.FirstUse {
		if cell >= r.Lo && cell < r.Hi {
			s := cell / cfg.ShardCells
			d.shardReqs[s] = append(d.shardReqs[s], i)
			d.sum.Requests++
		}
	}

	for len(pending) > 0 {
		progressed := false
		remaining := pending[:0]
		for _, s := range pending {
			finished, err := d.visit(ctx, s)
			if err != nil {
				return nil, err
			}
			if finished {
				progressed = true
			} else {
				remaining = append(remaining, s)
			}
		}
		pending = remaining
		if len(pending) > 0 && !progressed {
			if err := ctx.Err(); err != nil {
				return nil, context.Cause(ctx)
			}
			if err := d.cfg.Sleep(ctx); err != nil {
				return nil, err
			}
		}
	}
	return &d.sum, nil
}

// visit makes one attempt at shard s: acquire it and drain it, observe
// a peer's completed claim, or note a held claim's progress for stale
// detection. It reports whether the shard is finished (by us or a
// peer).
func (d *drainer) visit(ctx context.Context, s int) (bool, error) {
	cl, held, err := d.read(ctx, s)
	if err != nil {
		return false, err
	}
	switch {
	case !held:
		// Unclaimed: race for it. Losing the race is not an error — the
		// winner shows up as a held claim on the next pass.
		cl = Claim{Schema: ClaimSchema, Grid: d.grid, Shard: s, Holder: d.cfg.Host, Epoch: 1}
		won, err := d.write(ctx, s, cl, true)
		if err != nil {
			return false, err
		}
		if !won {
			return false, nil
		}
	case cl.Done:
		d.sum.PeerDone++
		return true, nil
	case cl.Holder == d.cfg.Host:
		// Our own claim from an earlier, interrupted run of this
		// process's host name: treat it as held until it goes stale,
		// then the takeover path below re-acquires it.
		fallthrough
	default:
		st := d.observed[s]
		if st.epoch == cl.Epoch && st.gen == cl.Gen {
			st.stale++
		} else {
			st = claimState{epoch: cl.Epoch, gen: cl.Gen}
		}
		d.observed[s] = st
		if st.stale < d.cfg.StalePolls {
			return false, nil
		}
		// Stale: seize with a higher epoch. Put is last-writer-wins, so
		// re-read to learn whether our takeover stuck before draining.
		cl = Claim{Schema: ClaimSchema, Grid: d.grid, Shard: s, Holder: d.cfg.Host, Epoch: cl.Epoch + 1}
		if _, err := d.write(ctx, s, cl, false); err != nil {
			return false, err
		}
		cur, held, err := d.read(ctx, s)
		if err != nil {
			return false, err
		}
		if !held || cur.Holder != d.cfg.Host || cur.Epoch != cl.Epoch {
			d.observed[s] = claimState{epoch: cur.Epoch, gen: cur.Gen}
			return false, nil
		}
		d.sum.TakenOver++
	}
	delete(d.observed, s)
	return d.drainShard(ctx, s, cl)
}

// drainShard runs the shard's owned requests under the claim cl, which
// this host holds. Every completed request bumps the claim's
// generation after re-checking ownership; losing the lease mid-shard
// cancels the remaining requests and leaves the shard pending.
func (d *drainer) drainShard(ctx context.Context, s int, cl Claim) (bool, error) {
	reqs := make([]sim.Request, len(d.shardReqs[s]))
	for i, at := range d.shardReqs[s] {
		reqs[i] = d.m.Requests[at]
	}

	shardCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	var lost bool
	var sinkErr error
	var mu sync.Mutex
	sink := func(ev sim.Event) {
		mu.Lock()
		defer mu.Unlock()
		if ev.Err != nil || lost || sinkErr != nil {
			return
		}
		d.count(ev)
		ok, err := d.bump(ctx, s, &cl)
		if err != nil {
			sinkErr = err
			cancel(err)
			return
		}
		if !ok {
			lost = true
			cancel(fmt.Errorf("fleet: shard %d lease lost to a takeover", s))
		}
	}
	_, err := d.runner.Stream(shardCtx, reqs, sink)
	if sinkErr != nil {
		return false, sinkErr
	}
	if lost {
		// The seizing host owns the shard now; watch it like any other
		// held claim.
		return false, nil
	}
	if err != nil {
		return false, err
	}

	// Mark done — unless the lease moved while we were finishing up.
	cur, held, err := d.read(ctx, s)
	if err != nil {
		return false, err
	}
	if !held || cur.Holder != d.cfg.Host || cur.Epoch != cl.Epoch {
		return false, nil
	}
	cl.Done = true
	if _, err := d.write(ctx, s, cl, false); err != nil {
		return false, err
	}
	d.sum.Claimed++
	return true, nil
}

// count folds one completion event into the summary counters.
func (d *drainer) count(ev sim.Event) {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch ev.Source {
	case sim.SourceSimulated:
		d.sum.Simulated++
	case sim.SourceStore:
		d.sum.StoreHits++
	case sim.SourceMemory:
		d.sum.MemHits++
	}
}

// bump advances the claim's generation token if this host still holds
// the lease, reporting whether it does.
func (d *drainer) bump(ctx context.Context, s int, cl *Claim) (bool, error) {
	cur, held, err := d.read(ctx, s)
	if err != nil {
		return false, err
	}
	if !held || cur.Holder != d.cfg.Host || cur.Epoch != cl.Epoch {
		return false, nil
	}
	cl.Gen++
	if _, err := d.write(ctx, s, *cl, false); err != nil {
		return false, err
	}
	return true, nil
}

// read fetches and decodes shard s's claim. A missing object, an
// undecodable one or one of a foreign schema or grid reads as unheld.
func (d *drainer) read(ctx context.Context, s int) (Claim, bool, error) {
	data, err := d.leases.Get(ctx, claimName(d.grid, s))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return Claim{}, false, nil
		}
		return Claim{}, false, fmt.Errorf("fleet: reading shard %d claim: %w", s, err)
	}
	var cl Claim
	if err := json.Unmarshal(data, &cl); err != nil {
		return Claim{}, false, nil
	}
	if cl.Schema != ClaimSchema || cl.Grid != d.grid {
		return Claim{}, false, nil
	}
	return cl, true, nil
}

// write stores shard s's claim, via PutIfAbsent when ifAbsent (the
// initial race) and Put otherwise (progress bumps, takeovers, done
// marks).
func (d *drainer) write(ctx context.Context, s int, cl Claim, ifAbsent bool) (bool, error) {
	data, err := json.Marshal(cl)
	if err != nil {
		return false, err
	}
	name := claimName(d.grid, s)
	if ifAbsent {
		won, err := d.leases.PutIfAbsent(ctx, name, data)
		if err != nil {
			return false, fmt.Errorf("fleet: claiming shard %d: %w", s, err)
		}
		return won, nil
	}
	if err := d.leases.Put(ctx, name, data); err != nil {
		return false, fmt.Errorf("fleet: writing shard %d claim: %w", s, err)
	}
	return true, nil
}

// Shards lists the absolute shard indices covering the cell range r of
// an n-cell matrix at the given shard size — what commands print when
// describing a drain before starting it.
func Shards(r Range, n, shardCells int) []int {
	if r == (Range{}) {
		r = Range{0, n}
	}
	var out []int
	for s := r.Lo / shardCells; s*shardCells < r.Hi; s++ {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}
