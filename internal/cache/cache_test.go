package cache

import "testing"

func testHier() *Hierarchy {
	return NewHierarchy(DefaultHierarchyConfig())
}

// TestL1DHitLatency: Table 1's 4-cycle L1D.
func TestL1DHitLatency(t *testing.T) {
	h := testHier()
	h.ReadData(0x100, 0x8000, 0) // miss, fills
	start := uint64(10_000)
	done := h.ReadData(0x100, 0x8000, start)
	if got := done - start; got != 4 {
		t.Fatalf("L1D hit latency = %d, want 4", got)
	}
}

// TestL2HitLatency: an L1 miss hitting in L2 costs L1 + L2 latency.
func TestL2HitLatency(t *testing.T) {
	h := testHier()
	h.ReadData(0x100, 0x8000, 0) // fill both levels
	// Evict from L1 by filling its set: L1 is 64 sets x 8 ways; same-set
	// blocks are 64*64=4096 bytes apart.
	for i := 1; i <= 8; i++ {
		h.ReadData(0x100, 0x8000+uint64(i)*4096, 1000+uint64(i)*500)
	}
	start := uint64(1_000_000)
	done := h.ReadData(0x100, 0x8000, start)
	if got := done - start; got != 4+12 {
		t.Fatalf("L2 hit latency = %d, want 16", got)
	}
}

// TestDRAMLatencyBand: a cold access costs at least L1+L2+DRAM-min.
func TestDRAMLatencyBand(t *testing.T) {
	h := testHier()
	start := uint64(1000) // past the t=0 refresh window
	done := h.ReadData(0x100, 0x100000, start)
	lat := done - start
	if lat < 4+12+75 {
		t.Fatalf("cold read latency = %d, want >= 91", lat)
	}
	if lat > 4+12+185+100 {
		t.Fatalf("cold unloaded read latency = %d, unreasonably high", lat)
	}
}

// TestLRUReplacement: the least-recently-used way is the victim.
func TestLRUReplacement(t *testing.T) {
	c := New(Config{Name: "t", SizeKB: 1, Ways: 2, Latency: 1, MSHRs: 4})
	// 1KB, 2-way, 64B lines -> 8 sets. Same-set stride = 8*64 = 512.
	a, b, x := uint64(0), uint64(512), uint64(1024)
	blk := func(addr uint64) uint64 { return addr / LineBytes }
	c.insert(blk(a), false)
	c.insert(blk(b), false)
	c.lookup(blk(a)) // a is now MRU
	c.insert(blk(x), false)
	if !c.lookup(blk(a)) {
		t.Fatal("MRU block evicted")
	}
	if c.lookup(blk(b)) {
		t.Fatal("LRU block survived")
	}
}

// TestMSHRMerging: a second miss to an in-flight block merges instead of
// issuing a new fill.
func TestMSHRMerging(t *testing.T) {
	h := testHier()
	readsBefore := h.Mem.Reads
	d1 := h.ReadData(0x100, 0x200000, 0)
	d2 := h.ReadData(0x104, 0x200008, 1) // same 64B line, 1 cycle later
	if h.Mem.Reads != readsBefore+1 {
		t.Fatalf("DRAM reads = %d, want 1 (merged)", h.Mem.Reads-readsBefore)
	}
	if d2 > d1+8 {
		t.Fatalf("merged miss completed at %d, primary at %d", d2, d1)
	}
	if h.L1D.MergedMiss == 0 {
		t.Fatal("merge not recorded")
	}
}

// TestWritebackOfDirtyVictims: dirty lines written back on eviction.
func TestWritebackOfDirtyVictims(t *testing.T) {
	h := testHier()
	h.WriteData(0x100, 0x8000, 0)
	// Evict by filling the set.
	for i := 1; i <= 8; i++ {
		h.ReadData(0x100, 0x8000+uint64(i)*4096, uint64(i)*1000)
	}
	if h.L1D.Writebacks == 0 {
		t.Fatal("dirty eviction produced no writeback")
	}
}

// TestStridePrefetcher: a steady stride trains after two confirmations and
// then prefetches `degree` blocks.
func TestStridePrefetcher(t *testing.T) {
	p := NewStridePrefetcher(64, 8)
	const pc = 0x500
	if out := p.Observe(pc, 0x1000); out != nil {
		t.Fatal("prefetched on first access")
	}
	if out := p.Observe(pc, 0x1040); out != nil {
		t.Fatal("prefetched before stride confirmed")
	}
	p.Observe(pc, 0x1080)
	out := p.Observe(pc, 0x10C0)
	if len(out) == 0 {
		t.Fatal("confirmed stride produced no prefetches")
	}
	if len(out) > 8 {
		t.Fatalf("prefetch degree exceeded: %d", len(out))
	}
	// Prefetches must be ahead of the demand address.
	for _, blk := range out {
		if blk*LineBytes <= 0x10C0 {
			t.Fatalf("prefetch %#x behind demand", blk*LineBytes)
		}
	}
}

// TestPrefetcherResetsOnStrideChange: a changed stride needs reconfirming.
func TestPrefetcherResetsOnStrideChange(t *testing.T) {
	p := NewStridePrefetcher(64, 8)
	const pc = 0x700
	p.Observe(pc, 0x1000)
	p.Observe(pc, 0x1040)
	p.Observe(pc, 0x1080)
	if out := p.Observe(pc, 0x5000); out != nil {
		t.Fatal("prefetched across a stride break")
	}
}

// TestPrefetcherImprovesStreamLatency: end-to-end, a streaming read
// pattern should see many L2 hits from prefetches.
func TestPrefetcherImprovesStreamLatency(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	on := NewHierarchy(cfg)
	cfg.PrefEnable = false
	off := NewHierarchy(cfg)

	var latOn, latOff uint64
	clock := uint64(0)
	for i := 0; i < 512; i++ {
		addr := 0x40_0000 + uint64(i)*64
		clock += 200
		latOn += on.ReadData(0x900, addr, clock) - clock
		latOff += off.ReadData(0x900, addr, clock) - clock
	}
	if latOn >= latOff {
		t.Fatalf("prefetcher did not help a pure stream: %d vs %d cycles", latOn, latOff)
	}
}

// TestFetchInstLatency: 1-cycle L1I hit.
func TestFetchInstLatency(t *testing.T) {
	h := testHier()
	h.FetchInst(0x1000, 0)
	start := uint64(5000)
	done := h.FetchInst(0x1000, start)
	if got := done - start; got != 1 {
		t.Fatalf("L1I hit latency = %d, want 1", got)
	}
}
