package cache

import "repro/internal/dram"

// StridePrefetcher is the L2 stride prefetcher of Table 1 (degree 8,
// distance 1). It tracks per-PC strides in a small direct-mapped table and,
// once a stride is confirmed twice, issues `degree` prefetches for
// consecutive strided blocks beyond the demand miss.
type StridePrefetcher struct {
	entries []strideEntry
	degree  int
	out     []uint64 // scratch returned by Observe, reused per call

	Issued uint64
	Useful uint64 // filled blocks later hit by demand (approximate)
}

type strideEntry struct {
	pc     uint64
	last   uint64
	stride int64
	conf   uint8
}

// NewStridePrefetcher builds a prefetcher with the given table size and
// prefetch degree.
func NewStridePrefetcher(tableEntries, degree int) *StridePrefetcher {
	return &StridePrefetcher{
		entries: make([]strideEntry, tableEntries),
		degree:  degree,
		out:     make([]uint64, 0, degree),
	}
}

// Observe trains on a demand access and returns the list of block
// addresses to prefetch (may be empty). The returned slice is scratch
// owned by the prefetcher, valid until the next Observe call.
func (p *StridePrefetcher) Observe(pc, addr uint64) []uint64 {
	if len(p.entries) == 0 {
		return nil
	}
	e := &p.entries[(pc>>2)%uint64(len(p.entries))]
	if e.pc != pc {
		*e = strideEntry{pc: pc, last: addr}
		return nil
	}
	stride := int64(addr) - int64(e.last)
	e.last = addr
	if stride == 0 {
		return nil
	}
	if stride == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 0
		return nil
	}
	if e.conf < 2 {
		return nil
	}
	// Confident: prefetch `degree` strided lines starting one stride out
	// (distance 1). The strided block sequence is monotone, so duplicate
	// blocks are always consecutive: comparing against the previously
	// emitted block (seeded with the demand block) deduplicates exactly.
	out := p.out[:0]
	next := int64(addr)
	prev := addr / LineBytes
	for i := 0; i < p.degree; i++ {
		next += stride
		if next < 0 {
			break
		}
		blk := uint64(next) / LineBytes
		if blk != prev {
			prev = blk
			out = append(out, blk)
		}
	}
	p.out = out
	p.Issued += uint64(len(out))
	return out
}

// Hierarchy composes L1I, L1D, L2 and DRAM into the full memory system.
type Hierarchy struct {
	L1I  *Cache
	L1D  *Cache
	L2   *Cache
	Mem  *dram.Memory
	Pref *StridePrefetcher
}

// HierarchyConfig sizes the full memory system.
type HierarchyConfig struct {
	L1I        Config
	L1D        Config
	L2         Config
	DRAM       dram.Config
	PrefEnable bool
	PrefTable  int
	PrefDegree int
}

// DefaultHierarchyConfig mirrors Table 1.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:  Config{Name: "L1I", SizeKB: 32, Ways: 8, Latency: 1, MSHRs: 16},
		L1D:  Config{Name: "L1D", SizeKB: 32, Ways: 8, Latency: 4, MSHRs: 64, WriteBck: true},
		L2:   Config{Name: "L2", SizeKB: 1024, Ways: 16, Latency: 12, MSHRs: 64, WriteBck: true},
		DRAM: dram.DefaultConfig(),

		PrefEnable: true,
		PrefTable:  256,
		PrefDegree: 8,
	}
}

// NewHierarchy builds the memory system.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	h := &Hierarchy{
		L1I: New(cfg.L1I),
		L1D: New(cfg.L1D),
		L2:  New(cfg.L2),
		Mem: dram.New(cfg.DRAM),
	}
	if cfg.PrefEnable {
		h.Pref = NewStridePrefetcher(cfg.PrefTable, cfg.PrefDegree)
	}
	return h
}

// l2Access handles an access that missed in an L1: probe L2, go to DRAM on
// miss, run the prefetcher on demand accesses. Returns the cycle the line
// is available to the L1.
func (h *Hierarchy) l2Access(pc, addr uint64, now uint64, isWrite bool) uint64 {
	block := addr / LineBytes
	l2Ready := now + h.L2.cfg.Latency

	h.L2.Accesses++
	hit := h.L2.lookup(block)
	if hit {
		// The line may still be in flight: a hit cannot complete before
		// its fill arrives.
		if r, ok := h.L2.mshrLookup(block, now); ok && r > l2Ready {
			h.L2.MergedMiss++
			l2Ready = r
		}
	}

	if h.Pref != nil && !isWrite {
		for _, pblk := range h.Pref.Observe(pc, addr) {
			if !h.L2.lookup(pblk) {
				// Prefetches fill the L2 after a DRAM access but do not
				// delay the demand request (no L2 port constraints).
				fillAt := h.Mem.Read(pblk*LineBytes, now)
				if victim, dirty := h.L2.insert(pblk, false); dirty {
					h.Mem.Write(victim*LineBytes, fillAt)
				}
			} else {
				h.Pref.Useful++
			}
		}
	}

	if hit {
		if isWrite {
			h.L2.markDirty(block)
		}
		return l2Ready
	}
	h.L2.Misses++

	// Merge with an in-flight fill when possible.
	if ready, ok := h.L2.mshrLookup(block, now); ok {
		h.L2.MergedMiss++
		if ready < l2Ready {
			ready = l2Ready
		}
		return ready
	}

	fillAt := h.Mem.Read(block*LineBytes, l2Ready)
	fillAt = h.L2.mshrAllocate(block, now, fillAt)
	if victim, dirty := h.L2.insert(block, isWrite); dirty {
		h.Mem.Write(victim*LineBytes, fillAt)
	}
	if isWrite {
		h.L2.markDirty(block)
	}
	return fillAt
}

// ReadData performs a data load at cycle now and returns the completion
// cycle (the L1D hit latency of 4 cycles is the floor).
func (h *Hierarchy) ReadData(pc, addr uint64, now uint64) uint64 {
	block := addr / LineBytes
	h.L1D.Accesses++
	ready := now + h.L1D.cfg.Latency
	if h.L1D.lookup(block) {
		// A hit on an in-flight line completes when the fill arrives.
		if r, ok := h.L1D.mshrLookup(block, now); ok && r > ready {
			h.L1D.MergedMiss++
			return r
		}
		return ready
	}
	h.L1D.Misses++
	fillAt := h.l2Access(pc, addr, ready, false)
	fillAt = h.L1D.mshrAllocate(block, now, fillAt)
	if victim, dirty := h.L1D.insert(block, false); dirty {
		h.l2Access(pc, victim*LineBytes, fillAt, true)
	}
	return fillAt
}

// WriteData performs a committed store's write at cycle now (write-back,
// write-allocate). Returns the cycle the store is globally performed;
// commit does not wait on it.
func (h *Hierarchy) WriteData(pc, addr uint64, now uint64) uint64 {
	block := addr / LineBytes
	h.L1D.Accesses++
	ready := now + h.L1D.cfg.Latency
	if h.L1D.lookup(block) {
		h.L1D.markDirty(block)
		return ready
	}
	h.L1D.Misses++
	fillAt := h.l2Access(pc, addr, ready, false)
	if victim, dirty := h.L1D.insert(block, true); dirty {
		h.l2Access(pc, victim*LineBytes, fillAt, true)
	}
	return fillAt
}

// FetchInst performs an instruction fetch at cycle now and returns the
// completion cycle (1-cycle L1I hit).
func (h *Hierarchy) FetchInst(addr uint64, now uint64) uint64 {
	block := addr / LineBytes
	h.L1I.Accesses++
	ready := now + h.L1I.cfg.Latency
	if h.L1I.lookup(block) {
		return ready
	}
	h.L1I.Misses++
	fillAt := h.l2Access(addr, addr, ready, false)
	if victim, dirty := h.L1I.insert(block, false); dirty {
		h.l2Access(addr, victim*LineBytes, fillAt, true)
	}
	return fillAt
}
