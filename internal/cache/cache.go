// Package cache implements the paper's cache hierarchy (Table 1): an 8-way
// 32KB L1I (1 cycle), an 8-way 32KB L1D (4 cycles, 64 MSHRs), and a unified
// 16-way 1MB L2 (12 cycles, 64 MSHRs) with a degree-8 distance-1 stride
// prefetcher. All caches use 64B lines and LRU replacement.
//
// The model is latency-resolving rather than event-driven: an access made
// at cycle `now` immediately returns its completion cycle, with MSHR
// occupancy, miss merging and DRAM bank/bus contention folded into that
// completion time. This preserves the latency distribution and bandwidth
// behaviour the paper's mechanisms interact with (STLF latency vs. L1 hit
// latency, miss-level parallelism) at a fraction of the complexity.
package cache

// LineBytes is the cache line size used throughout the hierarchy.
const LineBytes = 64

// Config describes one cache level.
type Config struct {
	Name     string
	SizeKB   int
	Ways     int
	Latency  uint64 // hit latency in cycles
	MSHRs    int
	WriteBck bool
}

type line struct {
	valid bool
	dirty bool
	tag   uint64
	lru   uint32
}

type mshr struct {
	block   uint64
	readyAt uint64
}

// Cache is one level of the hierarchy.
type Cache struct {
	cfg   Config
	sets  int
	lines []line // sets × ways
	clock uint32 // LRU timestamp source

	mshrs []mshr

	// Stats
	Accesses   uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
	MSHRStalls uint64
	MergedMiss uint64
}

// New builds a cache level.
func New(cfg Config) *Cache {
	nlines := cfg.SizeKB * 1024 / LineBytes
	sets := nlines / cfg.Ways
	return &Cache{
		cfg:   cfg,
		sets:  sets,
		lines: make([]line, nlines),
		mshrs: make([]mshr, 0, cfg.MSHRs),
	}
}

func (c *Cache) setOf(block uint64) int { return int(block % uint64(c.sets)) }

// lookup probes for block; hit updates LRU.
func (c *Cache) lookup(block uint64) bool {
	set := c.setOf(block)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		l := &c.lines[base+w]
		if l.valid && l.tag == block {
			c.clock++
			l.lru = c.clock
			return true
		}
	}
	return false
}

// insert fills block, returning (victimBlock, hadDirtyVictim).
func (c *Cache) insert(block uint64, dirty bool) (uint64, bool) {
	set := c.setOf(block)
	base := set * c.cfg.Ways
	victim := base
	for w := 0; w < c.cfg.Ways; w++ {
		l := &c.lines[base+w]
		if l.valid && l.tag == block { // already filled (merged miss)
			l.dirty = l.dirty || dirty
			return 0, false
		}
		if !l.valid {
			victim = base + w
			break
		}
		if l.lru < c.lines[victim].lru {
			victim = base + w
		}
	}
	v := c.lines[victim]
	c.clock++
	c.lines[victim] = line{valid: true, dirty: dirty, tag: block, lru: c.clock}
	if v.valid {
		c.Evictions++
		if v.dirty {
			c.Writebacks++
			return v.tag, true
		}
	}
	return 0, false
}

// markDirty sets the dirty bit if the block is present.
func (c *Cache) markDirty(block uint64) {
	set := c.setOf(block)
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		l := &c.lines[base+w]
		if l.valid && l.tag == block {
			l.dirty = true
			return
		}
	}
}

// mshrLookup returns the in-flight fill for block, if any, and reclaims
// expired MSHRs as a side effect.
func (c *Cache) mshrLookup(block uint64, now uint64) (uint64, bool) {
	live := c.mshrs[:0]
	var ready uint64
	found := false
	for _, m := range c.mshrs {
		if m.readyAt <= now {
			continue // fill completed; MSHR free
		}
		if m.block == block {
			ready = m.readyAt
			found = true
		}
		live = append(live, m)
	}
	c.mshrs = live
	return ready, found
}

// mshrAllocate records an outstanding miss; if all MSHRs are busy the
// request is delayed until the earliest one frees (the paper's cores stall
// allocation when MSHRs are exhausted).
func (c *Cache) mshrAllocate(block uint64, now uint64, fillAt uint64) uint64 {
	if len(c.mshrs) >= c.cfg.MSHRs {
		c.MSHRStalls++
		earliest := c.mshrs[0].readyAt
		idx := 0
		for i, m := range c.mshrs {
			if m.readyAt < earliest {
				earliest = m.readyAt
				idx = i
			}
		}
		// Wait for that MSHR, then retry: the fill completes later.
		delay := earliest - now
		fillAt += delay
		c.mshrs[idx] = mshr{block: block, readyAt: fillAt}
		return fillAt
	}
	c.mshrs = append(c.mshrs, mshr{block: block, readyAt: fillAt})
	return fillAt
}
