package dispatch

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// backendGrid builds a 112-cell scenario (14 ISRB sizes × 8 counter
// widths over one benchmark, very short runs) — the 100+-cell
// acceptance shape for the cross-backend test.
func backendGrid(t *testing.T) *scenario.Spec {
	t.Helper()
	var entries, bits []string
	for e := 1; e <= 14; e++ {
		entries = append(entries, fmt.Sprintf(`{"label": "%d", "patch": {"entries": %d}}`, e, e))
	}
	for b := 1; b <= 8; b++ {
		bits = append(bits, fmt.Sprintf(`{"label": "%db", "patch": {"ctrbits": %d}}`, b, b))
	}
	spec := fmt.Sprintf(`{
	  "name": "backend-grid", "title": "Backend grid",
	  "benchmarks": ["crafty"],
	  "warmup": 200, "measure": 1500,
	  "opt": {"me": true, "smb": true, "tracker": "isrb"},
	  "axes": [
	    {"name": "entries", "values": [%s]},
	    {"name": "bits", "values": [%s]}
	  ],
	  "report": {"kind": "grid", "rowheader": "entries"}
	}`, strings.Join(entries, ","), strings.Join(bits, ","))
	s, err := scenario.ParseBytes([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// countingMux wraps a service handler and counts requests per
// "METHOD /path" — the request-count assertions of the conformance
// suite hang off it.
type countingMux struct {
	inner http.Handler

	mu     sync.Mutex
	counts map[string]int
}

func (c *countingMux) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	c.counts[r.Method+" "+r.URL.Path]++
	c.mu.Unlock()
	c.inner.ServeHTTP(w, r)
}

func (c *countingMux) count(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[key]
}

// TestBackendsBitIdentical is the cross-backend conformance suite: one
// 112-cell scenario run through the local, pool:4, http, batched-pool
// and batched-http (bulk POST /v1/runs) backends produces byte-identical
// RunReports. Everything above the Executor — validation, dedup,
// aggregation — is shared, and the simulator is deterministic, so any
// byte of divergence means a backend corrupted, re-ordered or lossily
// re-encoded a result. The bulk path additionally must coalesce: with
// every cell in flight at once, the 112 cells may cost at most
// ceil(112/batchSize) POST /v1/runs calls and exactly zero POST /v1/run
// calls.
func TestBackendsBitIdentical(t *testing.T) {
	spec := backendGrid(t)
	matrix := spec.MustExpand(scenario.Overrides{})
	if len(matrix.Cells) < 100 {
		t.Fatalf("grid has %d cells, want >= 100", len(matrix.Cells))
	}

	run := func(r *sim.Runner) []byte {
		t.Helper()
		rep, err := spec.MustExpand(scenario.Overrides{}).Run(context.Background(), r, nil)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	local := run(sim.New(sim.WithExecutor(Local{}.Execute)))

	pool := NewPool(4)
	defer pool.Close()
	viaPool := run(sim.New(Options(pool)...))
	if st := pool.Stats(); st.Crashes != 0 {
		t.Fatalf("pool run crashed workers: %+v", st)
	}

	server := httptest.NewServer(NewService(sim.New(), nil).Handler())
	defer server.Close()
	h := NewHTTP(server.URL)
	defer h.Close()
	viaHTTP := run(sim.New(Options(h)...))

	// Batched pool: coalesced stdin frames, per-item outcomes.
	bpool := NewBatcher(NewPool(4), 16, time.Second)
	defer bpool.Close()
	viaPoolBatch := run(sim.New(Options(bpool)...))

	// Batched HTTP: bulk POST /v1/runs behind a counting middleware.
	// Workers are sized so the whole grid is in flight at once, which is
	// what makes the batch-count bound exact rather than best-effort.
	counter := &countingMux{inner: NewService(sim.New(), nil).Handler(), counts: map[string]int{}}
	bulkServer := httptest.NewServer(counter)
	defer bulkServer.Close()
	bh := NewBatcher(NewHTTP(bulkServer.URL), 16, 2*time.Second)
	defer bh.Close()
	viaBulk := run(sim.New(sim.WithExecutor(bh.Execute), sim.WithWorkers(len(matrix.Requests))))

	for _, c := range []struct {
		name string
		got  []byte
	}{
		{"pool:4", viaPool},
		{"http", viaHTTP},
		{"batched pool:4", viaPoolBatch},
		{"batched http (bulk)", viaBulk},
	} {
		if string(c.got) != string(local) {
			t.Errorf("%s report differs from the local report", c.name)
		}
	}

	if n := counter.count("POST /v1/run"); n != 0 {
		t.Errorf("bulk run issued %d POST /v1/run calls, want 0 (everything should coalesce)", n)
	}
	// The wire workload is the deduplicated request list (the 112 cells
	// plus their one shared baseline), not the cell count.
	reqs := len(matrix.Requests)
	maxBulk := (reqs + bh.BatchSize() - 1) / bh.BatchSize()
	if n := counter.count("POST /v1/runs"); n == 0 || n > maxBulk {
		t.Errorf("bulk run issued %d POST /v1/runs calls, want 1..%d", n, maxBulk)
	}
	if st := bh.Stats(); st.Items != reqs {
		t.Errorf("batcher dispatched %d items, want %d", st.Items, reqs)
	}
}
