package dispatch

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// backendGrid builds a 112-cell scenario (14 ISRB sizes × 8 counter
// widths over one benchmark, very short runs) — the 100+-cell
// acceptance shape for the cross-backend test.
func backendGrid(t *testing.T) *scenario.Spec {
	t.Helper()
	var entries, bits []string
	for e := 1; e <= 14; e++ {
		entries = append(entries, fmt.Sprintf(`{"label": "%d", "patch": {"entries": %d}}`, e, e))
	}
	for b := 1; b <= 8; b++ {
		bits = append(bits, fmt.Sprintf(`{"label": "%db", "patch": {"ctrbits": %d}}`, b, b))
	}
	spec := fmt.Sprintf(`{
	  "name": "backend-grid", "title": "Backend grid",
	  "benchmarks": ["crafty"],
	  "warmup": 200, "measure": 1500,
	  "opt": {"me": true, "smb": true, "tracker": "isrb"},
	  "axes": [
	    {"name": "entries", "values": [%s]},
	    {"name": "bits", "values": [%s]}
	  ],
	  "report": {"kind": "grid", "rowheader": "entries"}
	}`, strings.Join(entries, ","), strings.Join(bits, ","))
	s, err := scenario.ParseBytes([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestBackendsBitIdentical is the tentpole acceptance test: one
// 112-cell scenario run through the local, pool:4 and http backends
// produces byte-identical RunReports. Everything above the Executor —
// validation, dedup, aggregation — is shared, and the simulator is
// deterministic, so any byte of divergence means a backend corrupted,
// re-ordered or lossily re-encoded a result.
func TestBackendsBitIdentical(t *testing.T) {
	spec := backendGrid(t)
	matrix := spec.MustExpand(scenario.Overrides{})
	if len(matrix.Cells) < 100 {
		t.Fatalf("grid has %d cells, want >= 100", len(matrix.Cells))
	}

	run := func(r *sim.Runner) []byte {
		t.Helper()
		rep, err := spec.MustExpand(scenario.Overrides{}).Run(context.Background(), r, nil)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	local := run(sim.New(sim.WithExecutor(Local{}.Execute)))

	pool := NewPool(4)
	defer pool.Close()
	viaPool := run(sim.New(Options(pool)...))
	if st := pool.Stats(); st.Crashes != 0 {
		t.Fatalf("pool run crashed workers: %+v", st)
	}

	server := httptest.NewServer(NewService(sim.New(), nil).Handler())
	defer server.Close()
	h := NewHTTP(server.URL)
	defer h.Close()
	viaHTTP := run(sim.New(Options(h)...))

	if string(viaPool) != string(local) {
		t.Error("pool:4 report differs from the local report")
	}
	if string(viaHTTP) != string(local) {
		t.Error("http report differs from the local report")
	}
}
