package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/objstore"
	"repro/internal/sim"
)

// Service is the server side of the HTTP backend: the regshared
// result service. It exposes one sim.Runner — with whatever executor
// and stores the operator configured — over the execution endpoints
//
//	POST /v1/run           one sim.Request in, one sim.Result out
//	POST /v1/runs          {"requests":[...]} in, per-item outcomes out
//	                       in one response — the bulk form the client
//	                       Batcher coalesces into; admission, metrics
//	                       and 429 shedding are accounted per item, so
//	                       a batched workload sheds like the same
//	                       workload sent as individual /v1/run calls
//	POST /v1/stream        {"requests":[...]} in, NDJSON completion
//	                       events out, mirroring sim.Stream, closed by
//	                       a {"done":true,"events":N} trailer
//	GET  /v1/results/{key} a completed result straight from the sharded
//	                       on-disk store, by sim.Key
//
// the federation endpoints (see sim.Manifest and HTTP.Sync)
//
//	GET  /v1/manifest               the store's Merkle root summary
//	GET  /v1/manifest/node?path=…   one tree node with its child hashes
//	GET  /v1/manifest/shard/{shard} one leaf's entry list
//	GET  /v1/store/{name}           one raw envelope, verbatim bytes
//	POST /v1/sync                   accept missing envelopes from a peer
//
// and the observability endpoints
//
//	GET /metrics             service counters, gauges and per-endpoint
//	                         latency aggregates (MetricsSnapshot)
//	GET /v1/requests/recent  the last-N finished requests' stage-stamped
//	                         RequestMetrics, newest first (?n= to trim)
//
// Execution requests pass a bounded admission gate first: at most
// max-inflight execute, at most max-queue wait (dequeued round-robin
// across clients, so one client's sweep cannot starve another), and
// everything beyond that is refused with 429 + Retry-After. Result and
// metrics reads bypass admission — they cost a map lookup, and an
// operator diagnosing an overloaded service needs /metrics to answer
// precisely then.
//
// Requests execute (and deduplicate, and cache) exactly as they would
// in-process, so a result served over the wire is bit-identical to a
// local run of the same request.
type Service struct {
	runner *sim.Runner
	store  *sim.Store
	met    *metrics
	adm    *admission

	recentN     int
	maxInflight int
	maxQueue    int
}

// ServiceOption configures a Service.
type ServiceOption func(*Service)

// WithAdmission bounds the service's execution concurrency and queue.
// maxInflight < 1 selects the default (4×GOMAXPROCS, min 16);
// maxQueue < 0 disables waiting entirely (reject beyond maxInflight).
func WithAdmission(maxInflight, maxQueue int) ServiceOption {
	return func(s *Service) {
		s.maxInflight = maxInflight
		s.maxQueue = maxQueue
	}
}

// WithRecent sizes the /v1/requests/recent ring buffer (default 256).
func WithRecent(n int) ServiceOption {
	return func(s *Service) {
		if n > 0 {
			s.recentN = n
		}
	}
}

// NewService wraps runner. store may be nil: /v1/results then answers
// 404 for every key. When the runner was built with the same store
// (sim.WithStore), every /v1/run result becomes fetchable by key.
func NewService(runner *sim.Runner, store *sim.Store, opts ...ServiceOption) *Service {
	s := &Service{
		runner:   runner,
		store:    store,
		recentN:  256,
		maxQueue: 1024,
	}
	for _, o := range opts {
		o(s)
	}
	s.met = newMetrics(s.recentN)
	s.adm = newAdmission(s.maxInflight, s.maxQueue)
	return s
}

// Handler returns the service's routing handler. Every response carries
// the service's simulator identity, so clients can refuse to mix
// results from a version-skewed server (see simverHeader).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/runs", s.handleRuns)
	mux.HandleFunc("POST /v1/stream", s.handleStream)
	mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	mux.HandleFunc("GET /v1/manifest", s.handleManifest)
	mux.HandleFunc("GET /v1/manifest/node", s.handleManifestNode)
	mux.HandleFunc("GET /v1/manifest/shard/{shard}", s.handleShard)
	mux.HandleFunc("GET /v1/store/{name}", s.handleStoreEntry)
	mux.HandleFunc("POST /v1/sync", s.handleSync)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/requests/recent", s.handleRecent)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(simverHeader, sim.Version())
		mux.ServeHTTP(w, r)
	})
}

// clientHeader lets a client name itself for admission fairness and the
// per-request metrics; without it the remote host stands in.
const clientHeader = "X-Client"

// clientID resolves the submitter identity admission keys on.
func clientID(r *http.Request) string {
	if c := r.Header.Get(clientHeader); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// wireEvent is the NDJSON form of one sim.Event on /v1/stream.
//
//repro:wire
type wireEvent struct {
	Index        int         `json:"index"`
	Key          string      `json:"key,omitempty"`
	Bench        string      `json:"bench"`
	Source       string      `json:"source,omitempty"`
	CyclesPerSec float64     `json:"cycles_per_sec,omitempty"`
	Result       *sim.Result `json:"result,omitempty"`
	Error        string      `json:"error,omitempty"`
	Kind         string      `json:"error_kind,omitempty"`
}

// streamTrailer is the terminal NDJSON line of a complete /v1/stream
// response: {"done":true,"events":N}. Its absence is the one reliable
// sign of truncation — without it, a stream cut by a dying server or a
// broken proxy is byte-indistinguishable from a short but complete one.
//
//repro:wire
type streamTrailer struct {
	Done   bool `json:"done"`
	Events int  `json:"events"`
}

// toWire flattens a completion event for the stream. A non-finite rate
// (which JSON cannot encode — the whole event would be dropped from the
// stream) degrades to zero, the same "rate unknown" value store hits
// report.
func toWire(ev sim.Event) wireEvent {
	cps := ev.CyclesPerSec
	if math.IsInf(cps, 0) || math.IsNaN(cps) {
		cps = 0
	}
	we := wireEvent{
		Index:        ev.Index,
		Key:          ev.Key,
		Bench:        ev.Req.Bench,
		CyclesPerSec: cps,
		Result:       ev.Res,
	}
	if ev.Err != nil {
		we.Error = ev.Err.Error()
		we.Kind = errorKind(ev.Err)
	} else {
		we.Source = ev.Source.String()
	}
	return we
}

// maxRequestBody bounds request decoding; a sim.Request is a few KB,
// a stream batch of thousands still comfortably fits.
const maxRequestBody = 16 << 20

// admit runs the request's track through the admission gate, writing
// the 429 (queue full, with Retry-After) or 503 (canceled while
// waiting) response itself on refusal. A true return means the caller
// holds an execution slot and must release it.
func (s *Service) admit(w http.ResponseWriter, r *http.Request, t *track) bool {
	s.met.queued(t)
	if err := s.adm.acquire(r.Context(), t.rm.Client); err != nil {
		status := http.StatusServiceUnavailable
		if errors.Is(err, ErrOverloaded) {
			status = http.StatusTooManyRequests
			w.Header().Set("Retry-After", strconv.Itoa(s.adm.retryAfter()))
		}
		writeError(w, status, errorKind(err), err.Error())
		s.met.finish(t, status, 0)
		return false
	}
	s.met.dispatched(t)
	return true
}

// handleRun executes one request synchronously.
func (s *Service) handleRun(w http.ResponseWriter, r *http.Request) {
	t := s.met.accept(epRun, clientID(r))
	var req sim.Request
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, kindBadConfig, fmt.Sprintf("decoding request body: %v", err))
		s.met.finish(t, http.StatusBadRequest, 0)
		return
	}
	t.rm.Bench = req.Bench
	if !s.admit(w, r, t) {
		return
	}
	defer s.adm.release()

	// Stream-of-one instead of Run: the completion event carries the
	// provenance (simulated / memory / store) the metrics record.
	var ev sim.Event
	_, err := s.runner.Stream(r.Context(), []sim.Request{req}, func(e sim.Event) { ev = e })
	if err != nil {
		s.met.settled(t, "")
		status := statusFor(err)
		writeError(w, status, errorKind(err), err.Error())
		s.met.finish(t, status, 0)
		return
	}
	t.rm.Key = ev.Key
	s.met.settled(t, ev.Source.String())
	writeJSON(w, ev.Res)
	s.met.finish(t, http.StatusOK, ev.Res.S.Cycles)
}

// handleRuns executes a coalesced batch — the bulk form POST /v1/run
// clients batch into — and answers per-item outcomes in one response.
// Each item runs through admission and the metrics layer as its own
// track (endpoint "runs"): a batch of 40 against a service with 8 slots
// sheds exactly like 40 individual /v1/run calls would, except the
// 429s travel in-band as items with RetryAfterSec instead of per-call
// statuses. The response itself is 200 whenever the batch was readable;
// item failures are data, not transport errors, so one poisoned item
// can never fail its siblings.
func (s *Service) handleRuns(w http.ResponseWriter, r *http.Request) {
	var body bulkRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&body); err != nil {
		t := s.met.accept(epRuns, clientID(r))
		writeError(w, http.StatusBadRequest, kindBadConfig, fmt.Sprintf("decoding request body: %v", err))
		s.met.finish(t, http.StatusBadRequest, 0)
		return
	}
	client := clientID(r)
	items := make([]bulkItem, len(body.Requests))
	var wg sync.WaitGroup
	for i := range body.Requests {
		wg.Add(1)
		go func() {
			defer wg.Done()
			items[i] = s.runOne(r.Context(), client, body.Requests[i])
		}()
	}
	wg.Wait()
	s.met.bulk(len(items))
	writeJSON(w, bulkResponse{Items: items})
}

// runOne runs one bulk item through the same admission/metrics/runner
// path an individual /v1/run takes, returning its wire outcome.
func (s *Service) runOne(ctx context.Context, client string, req sim.Request) bulkItem {
	t := s.met.accept(epRuns, client)
	t.rm.Bench = req.Bench
	s.met.queued(t)
	if err := s.adm.acquire(ctx, client); err != nil {
		status := http.StatusServiceUnavailable
		it := bulkItem{Error: err.Error(), Kind: errorKind(err)}
		if errors.Is(err, ErrOverloaded) {
			status = http.StatusTooManyRequests
			it.RetryAfterSec = s.adm.retryAfter()
		}
		s.met.finish(t, status, 0)
		return it
	}
	defer s.adm.release()
	s.met.dispatched(t)
	var ev sim.Event
	_, err := s.runner.Stream(ctx, []sim.Request{req}, func(e sim.Event) { ev = e })
	if err != nil {
		s.met.settled(t, "")
		s.met.finish(t, statusFor(err), 0)
		return bulkItem{Error: err.Error(), Kind: errorKind(err)}
	}
	t.rm.Key = ev.Key
	s.met.settled(t, ev.Source.String())
	s.met.finish(t, http.StatusOK, ev.Res.S.Cycles)
	return bulkItem{Result: ev.Res}
}

// handleStream executes a batch, streaming one NDJSON event per request
// as it settles — the wire mirror of sim.Stream — and closes a complete
// stream with the {"done":true,"events":N} trailer. Per-request
// failures ride inside their events; the response status is already 200
// by then. The whole batch holds one admission slot: admission is a
// per-connection gate, fairness across interleaved batches comes from
// the runner's own scheduling.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	t := s.met.accept(epStream, clientID(r))
	var body struct {
		Requests []sim.Request `json:"requests"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, kindBadConfig, fmt.Sprintf("decoding request body: %v", err))
		s.met.finish(t, http.StatusBadRequest, 0)
		return
	}
	if !s.admit(w, r, t) {
		return
	}
	defer s.adm.release()
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	// Stream serializes sink calls, so the encoder needs no extra lock.
	// The first failed write means the client is gone; later events are
	// drained without touching the dead connection, and the stream ends
	// early rather than resuming mid-sequence with silent gaps — the
	// missing trailer below is what tells the client.
	var encErr error
	events := 0
	var cycles uint64
	s.runner.Stream(r.Context(), body.Requests, func(ev sim.Event) {
		if encErr != nil {
			return
		}
		if encErr = enc.Encode(toWire(ev)); encErr != nil {
			return
		}
		events++
		if ev.Res != nil {
			cycles += ev.Res.S.Cycles
		}
		if flusher != nil {
			flusher.Flush()
		}
	})
	s.met.settled(t, "")
	t.rm.Events = events
	if encErr == nil {
		// Every event reached the wire: seal the stream. A failed
		// trailer write is the same dead client the comment above
		// covers — and the absent trailer already says "truncated".
		_ = enc.Encode(streamTrailer{Done: true, Events: events})
		if flusher != nil {
			flusher.Flush()
		}
	}
	s.met.finish(t, http.StatusOK, cycles)
}

// handleResult serves a stored result by its sim.Key. A miss is 404
// with kind "not_found" — an un-run key is a plain miss, not a fault.
func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	t := s.met.accept(epResults, clientID(r))
	key := r.PathValue("key")
	t.rm.Key = key
	if s.store == nil {
		writeError(w, http.StatusNotFound, kindNotFound, "no result store configured")
		s.met.finish(t, http.StatusNotFound, 0)
		return
	}
	res, ok := s.store.Load(r.Context(), key)
	if !ok {
		writeError(w, http.StatusNotFound, kindNotFound, fmt.Sprintf("no stored result for key %q", key))
		s.met.finish(t, http.StatusNotFound, 0)
		return
	}
	s.met.settled(t, sim.SourceStore.String())
	writeJSON(w, res)
	s.met.finish(t, http.StatusOK, res.S.Cycles)
}

// storeOr404 writes the no-store refusal and returns false when the
// service has no result store to federate.
func (s *Service) storeOr404(w http.ResponseWriter, t *track) bool {
	if s.store != nil {
		return true
	}
	writeError(w, http.StatusNotFound, kindNotFound, "no result store configured")
	s.met.finish(t, http.StatusNotFound, 0)
	return false
}

// handleManifest serves the store's Merkle summary: root, entry count
// and tree shape, deliberately without the 256 leaf digests — peers
// that agree on the root are done after this one exchange, and peers
// that disagree descend via /v1/manifest/node.
func (s *Service) handleManifest(w http.ResponseWriter, r *http.Request) {
	t := s.met.accept(epManifest, clientID(r))
	if !s.storeOr404(w, t) {
		return
	}
	m, err := s.store.Manifest(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError, kindInternal, err.Error())
		s.met.finish(t, http.StatusInternalServerError, 0)
		return
	}
	writeJSON(w, ManifestSummary{
		Schema:     m.Schema,
		SimVersion: m.SimVersion,
		Root:       m.Root,
		Height:     m.Height,
		Entries:    m.Entries,
	})
	s.met.finish(t, http.StatusOK, 0)
}

// handleManifestNode serves one Merkle tree node by its root-to-node
// path (?path=0110…, empty for the root): the hash plus, for interior
// nodes, the two child hashes a diff walk compares to pick which half
// to descend into.
func (s *Service) handleManifestNode(w http.ResponseWriter, r *http.Request) {
	t := s.met.accept(epManifest, clientID(r))
	if !s.storeOr404(w, t) {
		return
	}
	m, err := s.store.Manifest(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError, kindInternal, err.Error())
		s.met.finish(t, http.StatusInternalServerError, 0)
		return
	}
	node, err := m.Node(r.URL.Query().Get("path"))
	if err != nil {
		writeError(w, http.StatusBadRequest, kindBadConfig, err.Error())
		s.met.finish(t, http.StatusBadRequest, 0)
		return
	}
	writeJSON(w, node)
	s.met.finish(t, http.StatusOK, 0)
}

// handleShard serves one Merkle leaf's entry list — names and content
// digests — so a peer can compute exactly which envelopes it is
// missing from a shard the walk found to differ.
func (s *Service) handleShard(w http.ResponseWriter, r *http.Request) {
	t := s.met.accept(epManifest, clientID(r))
	if !s.storeOr404(w, t) {
		return
	}
	shard := r.PathValue("shard")
	entries, err := s.store.ShardList(r.Context(), shard)
	if err != nil {
		writeError(w, http.StatusBadRequest, kindBadConfig, err.Error())
		s.met.finish(t, http.StatusBadRequest, 0)
		return
	}
	writeJSON(w, shardListing{Shard: shard, Entries: entries})
	s.met.finish(t, http.StatusOK, 0)
}

// handleStoreEntry serves one envelope's raw bytes, verbatim — the
// transfer unit of a sync. Verbatim matters: the envelope's content
// digest appears in the sender's manifest, and only unmodified bytes
// let the receiver's store converge to the same leaf digest.
func (s *Service) handleStoreEntry(w http.ResponseWriter, r *http.Request) {
	t := s.met.accept(epStore, clientID(r))
	if !s.storeOr404(w, t) {
		return
	}
	name := r.PathValue("name")
	data, err := s.store.ReadRaw(r.Context(), name)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		writeError(w, http.StatusNotFound, kindNotFound, fmt.Sprintf("no store entry %s", name))
		s.met.finish(t, http.StatusNotFound, 0)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, kindBadConfig, err.Error())
		s.met.finish(t, http.StatusBadRequest, 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
	s.met.sync(0, 0, 1)
	s.met.finish(t, http.StatusOK, 0)
}

// handleSync accepts envelopes a peer decided this host is missing.
// Every envelope is re-validated and re-addressed by the store itself
// (sim.Store.PutRaw): foreign simulator versions, alien schemas and
// malformed bytes are refused per envelope — counted, not fatal — so
// one bad envelope cannot abort a sync or poison the store.
func (s *Service) handleSync(w http.ResponseWriter, r *http.Request) {
	t := s.met.accept(epSync, clientID(r))
	if !s.storeOr404(w, t) {
		return
	}
	var push syncPush
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&push); err != nil {
		writeError(w, http.StatusBadRequest, kindBadConfig, fmt.Sprintf("decoding sync body: %v", err))
		s.met.finish(t, http.StatusBadRequest, 0)
		return
	}
	var reply syncReply
	for _, env := range push.Envelopes {
		if _, err := s.store.PutRaw(r.Context(), env); err != nil {
			reply.Rejected++
			if len(reply.Errors) < 8 {
				reply.Errors = append(reply.Errors, err.Error())
			}
			continue
		}
		reply.Stored++
	}
	s.met.sync(uint64(reply.Stored), uint64(reply.Rejected), 0)
	writeJSON(w, reply)
	s.met.finish(t, http.StatusOK, 0)
}

// handleMetrics serves the service counters snapshot.
func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var tier objstore.TierStats
	if s.store != nil {
		tier = s.store.TierStats()
	}
	writeJSON(w, s.met.snapshot(s.runner.Counters(), s.adm.depth(), tier))
}

// handleRecent serves the last-N finished requests, newest first.
func (s *Service) handleRecent(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, kindBadConfig, fmt.Sprintf("bad n %q: want a positive integer", q))
			return
		}
		n = v
	}
	writeJSON(w, s.met.recent(n))
}

// statusFor maps the sim error taxonomy onto HTTP statuses: client
// mistakes are 400s, a cancellation (the server shutting down, or the
// client going away mid-run) is 503, an admission refusal 429.
func statusFor(err error) int {
	switch {
	case errors.Is(err, sim.ErrUnknownBenchmark), errors.Is(err, sim.ErrBadConfig):
		return http.StatusBadRequest
	case errors.Is(err, sim.ErrCanceled):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

// writeError emits the service's JSON error shape.
func writeError(w http.ResponseWriter, status int, kind, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// A failed write means the client hung up; there is no one left to
	// report the error to.
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg, "error_kind": kind})
}

// writeJSON emits v as the 200 response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
