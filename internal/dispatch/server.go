package dispatch

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"

	"repro/internal/sim"
)

// Service is the server side of the HTTP backend: the regshared
// result service. It exposes one sim.Runner — with whatever executor
// and stores the operator configured — over three endpoints:
//
//	POST /v1/run           one sim.Request in, one sim.Result out
//	POST /v1/stream        {"requests":[...]} in, NDJSON completion
//	                       events out, mirroring sim.Stream
//	GET  /v1/results/{key} a completed result straight from the sharded
//	                       on-disk store, by sim.Key
//
// Requests execute (and deduplicate, and cache) exactly as they would
// in-process, so a result served over the wire is bit-identical to a
// local run of the same request.
type Service struct {
	runner *sim.Runner
	store  *sim.Store
}

// NewService wraps runner. store may be nil: /v1/results then answers
// 404 for every key. When the runner was built with the same store
// (sim.WithStore), every /v1/run result becomes fetchable by key.
func NewService(runner *sim.Runner, store *sim.Store) *Service {
	return &Service{runner: runner, store: store}
}

// Handler returns the service's routing handler. Every response carries
// the service's simulator identity, so clients can refuse to mix
// results from a version-skewed server (see simverHeader).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/stream", s.handleStream)
	mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(simverHeader, sim.Version())
		mux.ServeHTTP(w, r)
	})
}

// wireEvent is the NDJSON form of one sim.Event on /v1/stream.
//
//repro:wire
type wireEvent struct {
	Index        int         `json:"index"`
	Key          string      `json:"key,omitempty"`
	Bench        string      `json:"bench"`
	Source       string      `json:"source,omitempty"`
	CyclesPerSec float64     `json:"cycles_per_sec,omitempty"`
	Result       *sim.Result `json:"result,omitempty"`
	Error        string      `json:"error,omitempty"`
	Kind         string      `json:"error_kind,omitempty"`
}

// toWire flattens a completion event for the stream. A non-finite rate
// (which JSON cannot encode — the whole event would be dropped from the
// stream) degrades to zero, the same "rate unknown" value store hits
// report.
func toWire(ev sim.Event) wireEvent {
	cps := ev.CyclesPerSec
	if math.IsInf(cps, 0) || math.IsNaN(cps) {
		cps = 0
	}
	we := wireEvent{
		Index:        ev.Index,
		Key:          ev.Key,
		Bench:        ev.Req.Bench,
		CyclesPerSec: cps,
		Result:       ev.Res,
	}
	if ev.Err != nil {
		we.Error = ev.Err.Error()
		we.Kind = errorKind(ev.Err)
	} else {
		we.Source = ev.Source.String()
	}
	return we
}

// maxRequestBody bounds request decoding; a sim.Request is a few KB,
// a stream batch of thousands still comfortably fits.
const maxRequestBody = 16 << 20

// handleRun executes one request synchronously.
func (s *Service) handleRun(w http.ResponseWriter, r *http.Request) {
	var req sim.Request
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, kindBadConfig, fmt.Sprintf("decoding request body: %v", err))
		return
	}
	res, err := s.runner.Run(r.Context(), req)
	if err != nil {
		writeTypedError(w, err)
		return
	}
	writeJSON(w, res)
}

// handleStream executes a batch, streaming one NDJSON event per request
// as it settles — the wire mirror of sim.Stream. Per-request failures
// ride inside their events; the response status is already 200 by then.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Requests []sim.Request `json:"requests"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, kindBadConfig, fmt.Sprintf("decoding request body: %v", err))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	// Stream serializes sink calls, so the encoder needs no extra lock.
	// The first failed write means the client is gone; later events are
	// drained without touching the dead connection, and the stream ends
	// early rather than resuming mid-sequence with silent gaps.
	var encErr error
	s.runner.Stream(r.Context(), body.Requests, func(ev sim.Event) {
		if encErr != nil {
			return
		}
		if encErr = enc.Encode(toWire(ev)); encErr != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	})
}

// handleResult serves a stored result by its sim.Key.
func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if s.store == nil {
		writeError(w, http.StatusNotFound, kindInternal, "no result store configured")
		return
	}
	res, ok := s.store.Load(key)
	if !ok {
		writeError(w, http.StatusNotFound, kindInternal, fmt.Sprintf("no stored result for key %q", key))
		return
	}
	writeJSON(w, res)
}

// writeTypedError maps the sim error taxonomy onto HTTP statuses:
// client mistakes are 400s, a cancellation (the server shutting down,
// or the client going away mid-run) is 503.
func writeTypedError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	kind := errorKind(err)
	switch {
	case errors.Is(err, sim.ErrUnknownBenchmark), errors.Is(err, sim.ErrBadConfig):
		status = http.StatusBadRequest
	case errors.Is(err, sim.ErrCanceled):
		status = http.StatusServiceUnavailable
	}
	writeError(w, status, kind, err.Error())
}

// writeError emits the service's JSON error shape.
func writeError(w http.ResponseWriter, status int, kind, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// A failed write means the client hung up; there is no one left to
	// report the error to.
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg, "error_kind": kind})
}

// writeJSON emits v as the 200 response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
