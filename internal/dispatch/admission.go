package dispatch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/sim"
)

// ErrOverloaded marks a request the service refused at admission: the
// bounded queue in front of the runner was full. Over HTTP it surfaces
// as 429 with a Retry-After header; the client re-wraps it so callers
// can branch with errors.Is and back off (see RetryAfter).
var ErrOverloaded = errors.New("dispatch: service overloaded")

// admission is the bounded request queue in front of the Service's
// runner: at most maxInflight requests execute, at most maxQueue wait,
// and everything past that is rejected with ErrOverloaded. Waiters are
// kept in per-client FIFOs and dequeued round-robin across clients, so
// one client dumping a 10k-cell sweep cannot starve another's
// single-cell request: the newcomer waits behind at most one request
// per other client, not behind the whole sweep.
type admission struct {
	maxInflight int
	maxQueue    int

	mu       sync.Mutex
	inflight int
	queued   int
	clients  []*clientQueue // clients with waiters, round-robin order
	index    map[string]*clientQueue
	rr       int // next clients index to grant from
}

// clientQueue is one client's FIFO of waiting requests.
type clientQueue struct {
	id      string
	waiters []chan struct{}
}

// defaultMaxInflight sizes admission when the operator does not: wide
// enough that the runner (which gates real simulation concurrency at
// its own worker count) stays fed, narrow enough that a flood queues
// instead of piling goroutines onto the runner's semaphore.
func defaultMaxInflight() int {
	return max(16, 4*runtime.GOMAXPROCS(0))
}

// newAdmission builds the gate. maxInflight < 1 selects the default;
// maxQueue < 0 is coerced to 0 (no waiting: beyond maxInflight, reject).
func newAdmission(maxInflight, maxQueue int) *admission {
	if maxInflight < 1 {
		maxInflight = defaultMaxInflight()
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		maxInflight: maxInflight,
		maxQueue:    maxQueue,
		index:       make(map[string]*clientQueue),
	}
}

// acquire blocks until the request may execute, fails fast with
// ErrOverloaded when the queue is full, or gives up when ctx is
// canceled (typed sim.ErrCanceled wrap). Every successful acquire must
// be paired with exactly one release.
func (a *admission) acquire(ctx context.Context, client string) error {
	a.mu.Lock()
	// Direct grant only when nobody is waiting: a newcomer barging past
	// queued requests would defeat the fairness the queue exists for.
	if a.inflight < a.maxInflight && a.queued == 0 {
		a.inflight++
		a.mu.Unlock()
		return nil
	}
	if a.queued >= a.maxQueue {
		queued, inflight := a.queued, a.inflight
		a.mu.Unlock()
		return fmt.Errorf("%w: admission queue full (%d queued, %d in flight)", ErrOverloaded, queued, inflight)
	}
	grant := make(chan struct{})
	q := a.index[client]
	if q == nil {
		q = &clientQueue{id: client}
		a.index[client] = q
		a.clients = append(a.clients, q)
	}
	q.waiters = append(q.waiters, grant)
	a.queued++
	a.mu.Unlock()

	select {
	case <-grant:
		return nil
	case <-ctx.Done():
		if a.removeWaiter(client, grant) {
			return fmt.Errorf("dispatch: admission wait: %w: %w", sim.ErrCanceled, ctxCause(ctx))
		}
		// The grant raced the cancellation and won: the slot is ours,
		// so hand it back before reporting the cancellation.
		a.release()
		return fmt.Errorf("dispatch: admission wait: %w: %w", sim.ErrCanceled, ctxCause(ctx))
	}
}

// release returns an execution slot: either directly to the next queued
// waiter — round-robin across clients — or back to the free pool.
func (a *admission) release() {
	a.mu.Lock()
	if a.queued > 0 {
		if a.rr >= len(a.clients) {
			a.rr = 0
		}
		q := a.clients[a.rr]
		grant := q.waiters[0]
		q.waiters = q.waiters[1:]
		a.queued--
		if len(q.waiters) == 0 {
			a.dropClientLocked(a.rr)
			// The slice shifted left, so rr already points past q.
		} else {
			a.rr++
		}
		a.mu.Unlock()
		// The slot transfers: inflight is unchanged.
		close(grant)
		return
	}
	a.inflight--
	a.mu.Unlock()
}

// removeWaiter withdraws a canceled waiter. It reports false when the
// waiter is gone — i.e. its grant already fired.
func (a *admission) removeWaiter(client string, grant chan struct{}) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	q := a.index[client]
	if q == nil {
		return false
	}
	for i, w := range q.waiters {
		if w == grant {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			a.queued--
			if len(q.waiters) == 0 {
				for j, c := range a.clients {
					if c == q {
						a.dropClientLocked(j)
						break
					}
				}
			}
			return true
		}
	}
	return false
}

// dropClientLocked forgets the emptied client queue at clients[i] and
// keeps the round-robin cursor coherent. Callers hold a.mu.
func (a *admission) dropClientLocked(i int) {
	q := a.clients[i]
	a.clients = append(a.clients[:i], a.clients[i+1:]...)
	delete(a.index, q.id)
	if a.rr > i {
		a.rr--
	}
	if a.rr >= len(a.clients) {
		a.rr = 0
	}
}

// depth reports the current queue depth.
func (a *admission) depth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued
}

// retryAfter estimates, in whole seconds, when a rejected client should
// retry: one drain round of the current queue through the in-flight
// window, clamped to [1, 60].
func (a *admission) retryAfter() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := 1 + a.queued/a.maxInflight
	if s > 60 {
		s = 60
	}
	return s
}
