package dispatch

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/sim"
)

// ErrTruncatedStream marks a /v1/stream response that ended without its
// {"done":true,"events":N} trailer: the server died, a proxy cut the
// connection, or the service hit a write error mid-stream. The events
// received before the cut are valid — the sink already saw them — but
// the batch is incomplete, and callers must not treat it as a full
// result set.
var ErrTruncatedStream = errors.New("dispatch: stream truncated before its trailer")

// HTTP is the client backend for the regshared service: Execute POSTs
// the request to /v1/run and decodes the Result. The server side runs
// its own sim.Runner, so requests from many clients deduplicate and
// share one store there; the client-side runner's own dedup and stores
// still apply first, making the service a second, shared tier.
type HTTP struct {
	base     string
	client   *http.Client
	clientID string
}

// NewHTTP builds a client for the service at base (e.g.
// "http://host:8347"). No request timeout is set — simulations are
// legitimately long — so cancellation comes from the per-call context.
func NewHTTP(base string) *HTTP {
	return &HTTP{base: strings.TrimSuffix(base, "/"), client: &http.Client{}}
}

// SetClientID names this client to the service (the X-Client header):
// the identity admission fairness and the per-request metrics key on.
// Unset, the service falls back to the remote address. Set it before
// the first request; it is not safe to change concurrently with calls.
func (h *HTTP) SetClientID(id string) { h.clientID = id }

// newRequest builds a service request with the shared headers.
func (h *HTTP) newRequest(ctx context.Context, method, path string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, h.base+path, body)
	if err != nil {
		return nil, fmt.Errorf("dispatch: %w", err)
	}
	req.Header.Set(simverHeader, sim.Version())
	if h.clientID != "" {
		req.Header.Set(clientHeader, h.clientID)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return req, nil
}

// checkSimver refuses responses from a version-skewed server. When both
// sides carry a comparable (VCS-derived) simulator identity, a mismatch
// means the service runs different simulator code: its results are not
// this client's results, and caching them locally would poison the
// store's staleness check. Digest-fallback identities (go run, dirty
// trees) name a binary rather than the source, so different processes
// legitimately differ and are not comparable — the operator owns
// version discipline there.
func (h *HTTP) checkSimver(resp *http.Response) error {
	sv := resp.Header.Get(simverHeader)
	if comparableSimver(sv) && comparableSimver(sim.Version()) && sv != sim.Version() {
		return fmt.Errorf("dispatch: %s runs simulator version %s, this client is %s: refusing to mix results",
			h.base, sv, sim.Version())
	}
	return nil
}

// Execute runs req on the remote service.
func (h *HTTP) Execute(ctx context.Context, req sim.Request) (*sim.Result, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("dispatch: encoding request: %w", err)
	}
	hreq, err := h.newRequest(ctx, http.MethodPost, "/v1/run", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	resp, err := h.client.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return nil, canceledErr(req.Bench, ctxCause(ctx))
		}
		return nil, fmt.Errorf("dispatch: %s: %w", h.base, err)
	}
	defer resp.Body.Close()
	if err := h.checkSimver(resp); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeHTTPError(resp)
	}
	var res sim.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return nil, fmt.Errorf("dispatch: decoding result from %s: %w", h.base, err)
	}
	// Drain the encoder's trailing newline so the connection returns to
	// the keep-alive pool instead of being torn down per request.
	io.Copy(io.Discard, resp.Body)
	return &res, nil
}

// ExecuteBatch runs a coalesced batch as one POST /v1/runs call and
// reconstructs per-item typed outcomes. An in-band 429 item keeps its
// Retry-After hint (RetryAfter works on it), so shedding behaves like
// the unbatched path. Only a transport-level failure — connection,
// simver skew, a non-200 status — fails the call as a whole.
func (h *HTTP) ExecuteBatch(ctx context.Context, reqs []sim.Request) ([]BatchItem, error) {
	body, err := json.Marshal(bulkRequest{Requests: reqs})
	if err != nil {
		return nil, fmt.Errorf("dispatch: encoding request batch: %w", err)
	}
	hreq, err := h.newRequest(ctx, http.MethodPost, "/v1/runs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	resp, err := h.client.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return nil, canceledErr("batch", ctxCause(ctx))
		}
		return nil, fmt.Errorf("dispatch: %s: %w", h.base, err)
	}
	defer resp.Body.Close()
	if err := h.checkSimver(resp); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeHTTPError(resp)
	}
	var br bulkResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, fmt.Errorf("dispatch: decoding bulk response from %s: %w", h.base, err)
	}
	if len(br.Items) != len(reqs) {
		return nil, fmt.Errorf("dispatch: %s answered %d items for %d requests", h.base, len(br.Items), len(reqs))
	}
	items := make([]BatchItem, len(reqs))
	for i := range br.Items {
		bi := &br.Items[i]
		switch {
		case bi.Error != "":
			ierr := wireError(bi.Kind, bi.Error)
			if bi.RetryAfterSec > 0 && errors.Is(ierr, ErrOverloaded) {
				ierr = &overloadError{msg: bi.Error, retryAfter: time.Duration(bi.RetryAfterSec) * time.Second}
			}
			items[i] = BatchItem{Err: ierr}
		case bi.Result == nil:
			items[i] = BatchItem{Err: errors.New("dispatch: bulk item carries neither result nor error")}
		default:
			items[i] = BatchItem{Res: bi.Result}
		}
	}
	io.Copy(io.Discard, resp.Body)
	return items, nil
}

// StreamEvent is the client-side form of one /v1/stream completion
// event: the wire event with its (kind, message) error pair already
// reconstructed into the typed taxonomy.
type StreamEvent struct {
	Index        int
	Key          string
	Bench        string
	Source       string
	CyclesPerSec float64
	Result       *sim.Result
	Err          error
}

// Stream runs the batch on the remote service's /v1/stream, invoking
// sink (may be nil) with each completion event as its NDJSON line
// arrives, and returns the number of events received. A response that
// ends without the service's terminal trailer — the server shut down,
// the connection was cut, the service hit a mid-stream write error —
// returns ErrTruncatedStream (wrapped): the delivered events are valid
// but the batch is NOT complete, and a rerun resumes the remainder from
// the service's store. A local cancellation returns the usual
// sim.ErrCanceled wrap instead.
func (h *HTTP) Stream(ctx context.Context, reqs []sim.Request, sink func(StreamEvent)) (int, error) {
	body, err := json.Marshal(struct {
		Requests []sim.Request `json:"requests"`
	}{Requests: reqs})
	if err != nil {
		return 0, fmt.Errorf("dispatch: encoding request batch: %w", err)
	}
	hreq, err := h.newRequest(ctx, http.MethodPost, "/v1/stream", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	resp, err := h.client.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return 0, canceledErr("stream", ctxCause(ctx))
		}
		return 0, fmt.Errorf("dispatch: %s: %w", h.base, err)
	}
	defer resp.Body.Close()
	if err := h.checkSimver(resp); err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, decodeHTTPError(resp)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	seen := 0
	for sc.Scan() {
		// One probe shape decodes both event lines and the trailer.
		var line struct {
			wireEvent
			streamTrailer
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return seen, fmt.Errorf("dispatch: bad stream line from %s: %w", h.base, err)
		}
		if line.Done {
			if line.Events != seen {
				return seen, fmt.Errorf("dispatch: %s: trailer says %d events, received %d: %w",
					h.base, line.Events, seen, ErrTruncatedStream)
			}
			// Drain any keep-alive residue (there should be none).
			io.Copy(io.Discard, resp.Body)
			return seen, nil
		}
		seen++
		if sink != nil {
			sink(fromWire(line.wireEvent))
		}
	}
	if ctx.Err() != nil {
		return seen, canceledErr("stream", ctxCause(ctx))
	}
	if err := sc.Err(); err != nil {
		return seen, fmt.Errorf("dispatch: %s: reading stream: %w: %w", h.base, err, ErrTruncatedStream)
	}
	// Clean EOF without a trailer: the byte-indistinguishable truncation
	// the trailer exists to unmask.
	return seen, fmt.Errorf("dispatch: %s: stream ended after %d of %d events without a trailer: %w",
		h.base, seen, len(reqs), ErrTruncatedStream)
}

// Result fetches a stored result by key from GET /v1/results/{key}.
// A miss returns an error wrapping ErrNotFound.
func (h *HTTP) Result(ctx context.Context, key string) (*sim.Result, error) {
	hreq, err := h.newRequest(ctx, http.MethodGet, "/v1/results/"+key, nil)
	if err != nil {
		return nil, err
	}
	resp, err := h.client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("dispatch: %s: %w", h.base, err)
	}
	defer resp.Body.Close()
	if err := h.checkSimver(resp); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeHTTPError(resp)
	}
	var res sim.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return nil, fmt.Errorf("dispatch: decoding result from %s: %w", h.base, err)
	}
	io.Copy(io.Discard, resp.Body)
	return &res, nil
}

// Metrics fetches the service's GET /metrics snapshot.
func (h *HTTP) Metrics(ctx context.Context) (*MetricsSnapshot, error) {
	hreq, err := h.newRequest(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := h.client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("dispatch: %s: %w", h.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeHTTPError(resp)
	}
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("dispatch: decoding metrics from %s: %w", h.base, err)
	}
	io.Copy(io.Discard, resp.Body)
	return &snap, nil
}

// Close releases idle connections.
func (h *HTTP) Close() error {
	h.client.CloseIdleConnections()
	return nil
}

// fromWire reconstructs a client-side event from its NDJSON form.
func fromWire(we wireEvent) StreamEvent {
	ev := StreamEvent{
		Index:        we.Index,
		Key:          we.Key,
		Bench:        we.Bench,
		Source:       we.Source,
		CyclesPerSec: we.CyclesPerSec,
		Result:       we.Result,
	}
	if we.Error != "" {
		ev.Err = wireError(we.Kind, we.Error)
	}
	return ev
}

// overloadError carries a 429's Retry-After hint alongside the typed
// ErrOverloaded sentinel.
type overloadError struct {
	msg        string
	retryAfter time.Duration
}

func (e *overloadError) Error() string { return e.msg }
func (e *overloadError) Unwrap() error { return ErrOverloaded }

// RetryAfter extracts the service's Retry-After hint from an
// ErrOverloaded returned by this client, and reports whether one was
// present.
func RetryAfter(err error) (time.Duration, bool) {
	var oe *overloadError
	if errors.As(err, &oe) && oe.retryAfter > 0 {
		return oe.retryAfter, true
	}
	return 0, false
}

// decodeHTTPError turns a non-200 service response back into a typed
// error. Responses that are not the service's JSON error shape (a
// proxy's HTML, a truncated body) degrade to a status-code error.
func decodeHTTPError(resp *http.Response) error {
	var we struct {
		Error string `json:"error"`
		Kind  string `json:"error_kind"`
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err := json.Unmarshal(data, &we); err == nil && we.Error != "" {
		if resp.StatusCode == http.StatusTooManyRequests {
			oe := &overloadError{msg: we.Error}
			if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
				oe.retryAfter = time.Duration(s) * time.Second
			}
			return oe
		}
		return wireError(we.Kind, we.Error)
	}
	return fmt.Errorf("dispatch: service returned %s: %s", resp.Status, bytes.TrimSpace(data))
}
